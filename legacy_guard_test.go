package sibylfs

// Legacy-API guard: the deprecated package-level free functions exist only
// so out-of-tree callers keep compiling. First-party drivers — every CLI
// under cmd/ and every example — must use the Session facade. This test
// discovers the deprecated set by scanning this package's doc comments, so
// deprecating another function automatically extends the guard; CI runs it
// as a dedicated step.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// deprecatedFuncs parses the root package's non-test sources and returns
// the exported function names whose doc comment carries a "Deprecated:"
// marker.
func deprecatedFuncs(t *testing.T) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil || !fn.Name.IsExported() || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if strings.Contains(c.Text, "Deprecated:") {
					out[fn.Name.Name] = true
					break
				}
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("found no deprecated free functions; the guard is scanning the wrong place")
	}
	return out
}

// TestNoDeprecatedAPIInCommands fails if any CLI or example calls a
// deprecated sibylfs free function instead of the Session facade.
func TestNoDeprecatedAPIInCommands(t *testing.T) {
	deprecated := deprecatedFuncs(t)
	fset := token.NewFileSet()
	var violations []string
	for _, root := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return err
			}
			// Resolve the local name of the root package import ("repro").
			alias := ""
			for _, imp := range f.Imports {
				if strings.Trim(imp.Path.Value, `"`) != "repro" {
					continue
				}
				if imp.Name != nil {
					alias = imp.Name.Name
				} else {
					alias = "repro"
				}
			}
			if alias == "" {
				return nil
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != alias || !deprecated[sel.Sel.Name] {
					return true
				}
				violations = append(violations,
					fset.Position(sel.Pos()).String()+": "+alias+"."+sel.Sel.Name)
				return true
			})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(violations) > 0 {
		t.Errorf("cmd/ and examples/ must use the Session facade; deprecated free-function uses:\n  %s",
			strings.Join(violations, "\n  "))
	}
}
