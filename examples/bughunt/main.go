// Bughunt replays the paper's most serious survey findings (§7.3.4–§7.3.5)
// against the defect-injected implementations and shows the oracle
// catching each one: the posixovl/VFAT storage leak, the OpenZFS-on-OS-X
// disconnected-directory spin (Fig 8), the OS X pwrite integer underflow,
// and the OpenZFS O_APPEND data-loss bug.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	sibylfs "repro"
	"repro/internal/analysis"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	session := sibylfs.New()

	// The targeted survey scripts from the generated suite.
	suite, err := session.Generate(ctx)
	if err != nil {
		log.Fatal(err)
	}
	var surveys []*sibylfs.Script
	for _, s := range suite {
		if sibylfs.GroupOfName(s.Name) == "survey" {
			surveys = append(surveys, s)
		}
	}
	fmt.Printf("%d targeted survey scripts\n\n", len(surveys))

	// Pick the defect-injected profiles from the catalogue.
	profiles := map[string]bool{
		"posixovl_vfat_1.2":       true,
		"openzfs_1.3.0_osx":       true,
		"hfsplus_osx_10.9.5":      true,
		"openzfs_0.6.3_trusty":    true,
		"hfsplus_linux_trusty":    true,
		"ufs_freebsd_10":          true,
		"sshfs_tmpfs_allow_other": true,
		"ext4":                    true, // the clean control
	}
	for _, p := range sibylfs.SurveyProfiles() {
		if !profiles[p.Name] {
			continue
		}
		spec := sibylfs.SpecFor(p.Platform)
		run := sibylfs.New(sibylfs.WithSpec(spec))
		traces, err := run.Execute(ctx, surveys, sibylfs.MemFS(p))
		if err != nil {
			log.Fatal(err)
		}
		results, err := run.Check(ctx, traces)
		if err != nil {
			log.Fatal(err)
		}
		sum := analysis.Summarise(p.Name, traces, results)
		fmt.Printf("--- %s (checked against the %s model) ---\n", p.Name, spec.Platform)
		if sum.Rejected == 0 {
			fmt.Println("    clean: every trace accepted")
		}
		for _, d := range sum.Deviating {
			fmt.Printf("    [%s] %s\n", d.Severity, d.Test)
			if len(d.Errors) > 0 {
				e := d.Errors[0]
				fmt.Printf("        observed %s, allowed: %v (+%d more steps)\n",
					e.Observed, e.Allowed, len(d.Errors)-1)
			}
		}
		fmt.Println()
	}
}
