// Differential compares two platforms' behaviour for the same tests — the
// paper's "compare versions of a single file system on several different
// operating systems" workflow (§2, §7.3): HFS+ on OS X against HFS+ ported
// to Linux, with each checked against both its native model variant and
// strict POSIX.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	sibylfs "repro"
	"repro/internal/analysis"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	session := sibylfs.New()

	// The command groups where the port's behaviour differs.
	suite, err := session.Generate(ctx)
	if err != nil {
		log.Fatal(err)
	}
	var scripts []*sibylfs.Script
	for _, s := range suite {
		switch sibylfs.GroupOfName(s.Name) {
		case "survey", "chmod", "link":
			scripts = append(scripts, s)
		}
	}
	fmt.Printf("differential run over %d scripts\n\n", len(scripts))

	var hfsOSX, hfsLinux sibylfs.Profile
	for _, p := range sibylfs.SurveyProfiles() {
		switch p.Name {
		case "hfsplus_osx_10.9.5":
			hfsOSX = p
		case "hfsplus_linux_trusty":
			hfsLinux = p
		}
	}

	configs := []sibylfs.Config{
		{Name: "hfsplus_osx vs mac_os_x", Factory: sibylfs.MemFS(hfsOSX), Spec: sibylfs.SpecFor(sibylfs.OSX)},
		{Name: "hfsplus_osx vs posix", Factory: sibylfs.MemFS(hfsOSX), Spec: sibylfs.SpecFor(sibylfs.POSIX)},
		{Name: "hfsplus_linux vs linux", Factory: sibylfs.MemFS(hfsLinux), Spec: sibylfs.SpecFor(sibylfs.Linux)},
		{Name: "hfsplus_linux vs posix", Factory: sibylfs.MemFS(hfsLinux), Spec: sibylfs.SpecFor(sibylfs.POSIX)},
	}
	results, err := session.Survey(ctx, scripts, configs)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Print(r.Summary)
		fmt.Println()
	}

	merged, err := session.MergeSurvey(ctx, results)
	if err != nil {
		log.Fatal(err)
	}
	diffs := merged.Distinguishing()
	fmt.Printf("%d tests behave differently across the four configurations, e.g.:\n", len(diffs))
	for i, test := range diffs {
		if i >= 12 {
			fmt.Printf("  ... and %d more\n", len(diffs)-12)
			break
		}
		fmt.Printf("  %-55s deviates on %v\n", test, merged.DeviationsFor(test))
	}
	fmt.Println("\nThe Linux port of HFS+ refuses chmod (EOPNOTSUPP) and hard links to")
	fmt.Println("symlinks (EPERM) — exactly the deviations §7.3 reports for the port.")
	_ = analysis.SeverityConvention
}
