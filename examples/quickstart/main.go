// Quickstart: the Fig 1 flow end to end, driven the way sfs-run drives it
// — through the Session facade and its sharded, cache-backed checking
// pipeline. A small script suite is executed against a file system under
// test and checked by the oracle twice: the cold run executes everything,
// the warm run is pure cache hits, and both produce byte-identical
// records. Every call takes the context, so Ctrl-C (or a deadline) would
// stop the pipeline between jobs and leave the journal resumable. The
// Fig 4 deviation replay at the end shows what a rejection looks like.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"

	sibylfs "repro"
)

const script = `@type script
# Test rename___rename_emptydir___nonemptydir
mkdir "emptydir" 0o777
mkdir "nonemptydir" 0o777
open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
rename "emptydir" "nonemptydir"
`

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s, err := sibylfs.ParseScript(script)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== test script (Fig 2) ===")
	fmt.Print(s.Render())

	// Drive the script through the checking pipeline (as `sfs-run` does),
	// against a conforming in-memory Linux file system, with a result
	// cache and a JSONL journal. The session carries the whole
	// configuration; each run only names its work.
	dir, err := os.MkdirTemp("", "sfs-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	run := func(label string) sibylfs.PipelineRecord {
		session := sibylfs.New(
			sibylfs.WithSpec(sibylfs.DefaultSpec()),
			sibylfs.WithCacheDir(filepath.Join(dir, "cache")),
			sibylfs.WithJournal(filepath.Join(dir, label+".jsonl")),
		)
		records, stats, err := session.Run(ctx, sibylfs.RunJob{
			Name:    "quickstart vs linux",
			Scripts: []*sibylfs.Script{s},
			Factory: sibylfs.MemFS(sibylfs.LinuxProfile("ext4")),
			FSName:  "ext4",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s run] %s\n", label, stats)
		return records[0]
	}

	fmt.Println("\n=== checked trace, via the pipeline ===")
	rec := run("cold") // executes and checks, fills the cache
	fmt.Print(rec.Checked)

	warm := run("warm") // pure cache hit: same record, no execution
	if warm.Checked != rec.Checked || !warm.Cached {
		log.Fatal("warm run should reproduce the cold record from cache")
	}

	// Now replay the paper's Fig 4: SSHFS/tmpfs returned EPERM for the
	// rename; the oracle rejects it and names the allowed returns.
	bad := `@type trace
# Test rename___rename_emptydir___nonemptydir (SSHFS/tmpfs 2.5, Linux 3.19.1)
1: mkdir "emptydir" 0o777
1: RV_none
1: mkdir "nonemptydir" 0o777
1: RV_none
1: open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
1: RV_file_descriptor(FD 3)
1: rename "emptydir" "nonemptydir"
1: EPERM
`
	bt, err := sibylfs.ParseTrace(bad)
	if err != nil {
		log.Fatal(err)
	}
	session := sibylfs.New(sibylfs.WithSpec(sibylfs.DefaultSpec()))
	br, err := session.CheckOne(ctx, bt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== checked trace of the SSHFS deviation (Fig 4) ===")
	fmt.Print(sibylfs.RenderChecked(bt, br))
}
