// Quickstart: the Fig 1 pipeline end to end on one script — write a test
// script, execute it against a file system under test, and check the
// observed trace with the oracle, printing the checked trace (Figs 2–4).
package main

import (
	"fmt"
	"log"

	sibylfs "repro"
)

const script = `@type script
# Test rename___rename_emptydir___nonemptydir
mkdir "emptydir" 0o777
mkdir "nonemptydir" 0o777
open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
rename "emptydir" "nonemptydir"
`

func main() {
	s, err := sibylfs.ParseScript(script)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== test script (Fig 2) ===")
	fmt.Print(s.Render())

	// Execute against a conforming in-memory Linux file system.
	tr, err := sibylfs.ExecuteOne(s, sibylfs.MemFS(sibylfs.LinuxProfile("ext4")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== observed trace (Fig 3) ===")
	fmt.Print(tr.Render())

	// Check it against the Linux variant of the model.
	r := sibylfs.CheckOne(sibylfs.DefaultSpec(), tr)
	fmt.Println("\n=== checked trace ===")
	fmt.Print(sibylfs.RenderChecked(tr, r))

	// Now replay the paper's Fig 4: SSHFS/tmpfs returned EPERM for the
	// rename; the oracle rejects it and names the allowed returns.
	bad := `@type trace
# Test rename___rename_emptydir___nonemptydir (SSHFS/tmpfs 2.5, Linux 3.19.1)
1: mkdir "emptydir" 0o777
1: RV_none
1: mkdir "nonemptydir" 0o777
1: RV_none
1: open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
1: RV_file_descriptor(FD 3)
1: rename "emptydir" "nonemptydir"
1: EPERM
`
	bt, err := sibylfs.ParseTrace(bad)
	if err != nil {
		log.Fatal(err)
	}
	br := sibylfs.CheckOne(sibylfs.DefaultSpec(), bt)
	fmt.Println("\n=== checked trace of the SSHFS deviation (Fig 4) ===")
	fmt.Print(sibylfs.RenderChecked(bt, br))
}
