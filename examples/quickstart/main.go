// Quickstart: the Fig 1 flow end to end, driven the way sfs-run drives it
// — through the sharded, cache-backed checking pipeline. A small script
// suite is executed against a file system under test and checked by the
// oracle twice: the cold run executes everything, the warm run is pure
// cache hits, and both produce byte-identical records. The Fig 4
// deviation replay at the end shows what a rejection looks like.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	sibylfs "repro"
)

const script = `@type script
# Test rename___rename_emptydir___nonemptydir
mkdir "emptydir" 0o777
mkdir "nonemptydir" 0o777
open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
rename "emptydir" "nonemptydir"
`

func main() {
	s, err := sibylfs.ParseScript(script)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== test script (Fig 2) ===")
	fmt.Print(s.Render())

	// Drive the script through the checking pipeline (as `sfs-run` does),
	// against a conforming in-memory Linux file system, with a result
	// cache and a JSONL sink.
	dir, err := os.MkdirTemp("", "sfs-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cache, err := sibylfs.OpenResultCache(filepath.Join(dir, "cache"))
	if err != nil {
		log.Fatal(err)
	}
	run := func(label string) sibylfs.PipelineRecord {
		sink, err := sibylfs.OpenResultSink(filepath.Join(dir, label+".jsonl"), false)
		if err != nil {
			log.Fatal(err)
		}
		records, stats, err := sibylfs.RunPipeline(sibylfs.PipelineConfig{
			Name:    "quickstart vs linux",
			Scripts: []*sibylfs.Script{s},
			Factory: sibylfs.MemFS(sibylfs.LinuxProfile("ext4")),
			FSName:  "ext4",
			Spec:    sibylfs.DefaultSpec(),
			Cache:   cache,
			Sink:    sink,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sink.Finalize(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s run] %s\n", label, stats)
		return records[0]
	}

	fmt.Println("\n=== checked trace, via the pipeline ===")
	rec := run("cold") // executes and checks, fills the cache
	fmt.Print(rec.Checked)

	warm := run("warm") // pure cache hit: same record, no execution
	if warm.Checked != rec.Checked || !warm.Cached {
		log.Fatal("warm run should reproduce the cold record from cache")
	}

	// Now replay the paper's Fig 4: SSHFS/tmpfs returned EPERM for the
	// rename; the oracle rejects it and names the allowed returns.
	bad := `@type trace
# Test rename___rename_emptydir___nonemptydir (SSHFS/tmpfs 2.5, Linux 3.19.1)
1: mkdir "emptydir" 0o777
1: RV_none
1: mkdir "nonemptydir" 0o777
1: RV_none
1: open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
1: RV_file_descriptor(FD 3)
1: rename "emptydir" "nonemptydir"
1: EPERM
`
	bt, err := sibylfs.ParseTrace(bad)
	if err != nil {
		log.Fatal(err)
	}
	br := sibylfs.CheckOne(sibylfs.DefaultSpec(), bt)
	fmt.Println("\n=== checked trace of the SSHFS deviation (Fig 4) ===")
	fmt.Print(sibylfs.RenderChecked(bt, br))
}
