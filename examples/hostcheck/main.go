// Hostcheck runs a slice of the generated suite against the *real* file
// system of this machine (in a temp-dir jail standing in for the paper's
// chroot jail) and checks the kernel's behaviour against the Linux variant
// of the model — the paper's core use case, §7.2's "standard Linux
// platforms" run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	sibylfs "repro"
	"repro/internal/analysis"
)

func main() {
	sample := flag.Int("sample", 5, "run every Nth host-safe script (1 = all)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Host execution is serial (the kernel's umask is process-global);
	// checking recovers the parallelism per trace via the τ-closure pool.
	executor := sibylfs.New(sibylfs.WithWorkers(1))
	checker := sibylfs.New(sibylfs.WithSpec(sibylfs.DefaultSpec()))

	suite, err := executor.Generate(ctx)
	if err != nil {
		log.Fatal(err)
	}
	all := sibylfs.FilterHostSafe(suite)
	var scripts []*sibylfs.Script
	for i, s := range all {
		if i%*sample == 0 {
			scripts = append(scripts, s)
		}
	}
	fmt.Printf("running %d scripts against the host kernel...\n", len(scripts))

	t0 := time.Now()
	traces, err := executor.Execute(ctx, scripts, sibylfs.HostFS("host"))
	if err != nil {
		log.Fatal(err)
	}
	execTime := time.Since(t0)

	t0 = time.Now()
	results, err := checker.Check(ctx, traces)
	if err != nil {
		log.Fatal(err)
	}
	checkTime := time.Since(t0)

	sum := analysis.Summarise("host vs linux", traces, results)
	fmt.Print(sum)
	fmt.Printf("execution %v, checking %v (%.0f traces/s)\n",
		execTime.Round(time.Millisecond), checkTime.Round(time.Millisecond),
		float64(len(traces))/checkTime.Seconds())

	for _, d := range sum.Deviating {
		fmt.Printf("  [%s] %s\n", d.Severity, d.Test)
	}
	if sum.Rejected <= 2 {
		fmt.Println("\nAs in the paper's §7.2, the only failures (if any) are chroot-jail")
		fmt.Println("artifacts: the jail root is not a real root directory.")
	}
}
