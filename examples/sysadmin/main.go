// Sysadmin reproduces the §7.3.4 case study: an administrator comparing
// SSHFS/tmpfs mount options before deploying a shared mount. The three
// candidate configurations (allow_other alone; allow_other +
// default_permissions; umask=0000) are executed over the permission and
// umask test groups and their deviations from the Linux model compared,
// leading to the paper's conclusion: none is adequate for a shared mount.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	sibylfs "repro"
	"repro/internal/analysis"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	session := sibylfs.New(sibylfs.WithSpec(sibylfs.DefaultSpec()))

	suite, err := session.Generate(ctx)
	if err != nil {
		log.Fatal(err)
	}
	var scripts []*sibylfs.Script
	for i, s := range suite {
		switch sibylfs.GroupOfName(s.Name) {
		case "umask":
			scripts = append(scripts, s)
		case "perm":
			if i%5 == 0 { // a representative slice of the 6k permission tests
				scripts = append(scripts, s)
			}
		case "survey":
			scripts = append(scripts, s)
		}
	}
	fmt.Printf("comparing SSHFS mount options over %d scripts\n\n", len(scripts))

	var candidates []sibylfs.Profile
	for _, p := range sibylfs.SurveyProfiles() {
		switch p.Name {
		case "sshfs_tmpfs_allow_other", "sshfs_tmpfs_default_permissions", "sshfs_tmpfs_umask_0000", "ext4":
			candidates = append(candidates, p)
		}
	}

	var runs []sibylfs.SurveyResult
	for _, p := range candidates {
		traces, err := session.Execute(ctx, scripts, sibylfs.MemFS(p))
		if err != nil {
			log.Fatal(err)
		}
		results, err := session.Check(ctx, traces)
		if err != nil {
			log.Fatal(err)
		}
		sum := analysis.Summarise(p.Name, traces, results)
		runs = append(runs, sibylfs.SurveyResult{Summary: sum})
		fmt.Print(sum)

		permBypass, ownership, umaskIssues := 0, 0, 0
		for _, d := range sum.Deviating {
			switch sibylfs.GroupOfName(d.Test) {
			case "perm":
				permBypass++
			case "umask":
				umaskIssues++
			case "survey":
				ownership++
			}
		}
		switch {
		case permBypass > 0:
			fmt.Printf("  => DANGEROUS for a shared mount: %d permission checks bypassed\n\n", permBypass)
		case umaskIssues > 0 || ownership > 0:
			fmt.Printf("  => safer, but %d umask and %d ownership surprises remain\n\n", umaskIssues, ownership)
		default:
			fmt.Printf("  => behaves like a local file system on these tests\n\n")
		}
	}

	merged, err := session.MergeSurvey(ctx, runs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tests distinguish the candidate configurations.\n", len(merged.Distinguishing()))
	fmt.Println("Conclusion (as in the paper): reject SSHFS/tmpfs for this deployment.")
}
