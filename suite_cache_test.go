package sibylfs

// Test-process caches for the survey fixtures. The hand-written survey
// scripts are cheap to build but expensive to execute-and-check (the
// capacity-fill loops dominate), and several tests examine the same
// profile against the same model variant — so the per-(profile, platform)
// run summaries are memoised. The full generated suite is deliberately NOT
// cached: keeping 21k scripts live inflates every GC mark cycle and
// measurably slows the fingerprint-heavy checker; Generate() itself costs
// only ~0.1s per call.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/testgen"
)

var surveyScriptsOnce struct {
	sync.Once
	scripts []*Script
}

// testSurveyScripts returns the hand-written survey scenarios (§7.3).
// HandwrittenScripts also carries interleave/permission scripts; keep the
// same survey-group filter the tests applied to the full suite.
func testSurveyScripts() []*Script {
	surveyScriptsOnce.Do(func() {
		for _, s := range testgen.HandwrittenScripts() {
			if GroupOfName(s.Name) == "survey" {
				surveyScriptsOnce.scripts = append(surveyScriptsOnce.scripts, s)
			}
		}
	})
	return surveyScriptsOnce.scripts
}

var surveyRunCache = struct {
	sync.Mutex
	runs map[string]*analysis.RunSummary
}{runs: make(map[string]*analysis.RunSummary)}

// runSurveyScripts executes the survey scripts on one memfs profile and
// checks them against spec, memoised on (profile, platform).
func runSurveyScripts(t *testing.T, profName string, spec Spec) *analysis.RunSummary {
	t.Helper()
	key := fmt.Sprintf("%s vs %v", profName, spec.Platform)
	surveyRunCache.Lock()
	defer surveyRunCache.Unlock()
	if s, ok := surveyRunCache.runs[key]; ok {
		return s
	}
	var prof Profile
	found := false
	for _, p := range SurveyProfiles() {
		if p.Name == profName {
			prof, found = p, true
		}
	}
	if !found {
		t.Fatalf("profile %q missing", profName)
	}
	traces, err := Execute(testSurveyScripts(), MemFS(prof), 0)
	if err != nil {
		t.Fatal(err)
	}
	results := Check(spec, traces, 0)
	s := analysis.Summarise(profName, traces, results)
	surveyRunCache.runs[key] = s
	return s
}
