package sibylfs

// Documentation link check: every relative markdown link in the repo's
// documents must resolve to an existing file, and every fragment must
// match a heading anchor in the target document (GitHub slug rules,
// simplified). Keeping this in the test suite means a renamed file or
// section breaks the build, not the reader.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var docFiles = []string{
	"README.md",
	"ARCHITECTURE.md",
	"docs/cli.md",
	"ROADMAP.md",
	"PAPER.md",
	"PAPERS.md",
}

var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// anchorSlug approximates GitHub's heading-anchor generation.
func anchorSlug(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	anchors := make(map[string]bool)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		anchors[anchorSlug(strings.TrimLeft(line, "# "))] = true
	}
	return anchors
}

func TestDocLinksResolve(t *testing.T) {
	for _, doc := range docFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("missing document %s: %v", doc, err)
			continue
		}
		// Strip fenced code blocks: ASCII diagrams and shell examples are
		// not links.
		var kept []string
		inFence := false
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if !inFence {
				kept = append(kept, line)
			}
		}
		for _, m := range linkRE.FindAllStringSubmatch(strings.Join(kept, "\n"), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not checked offline
			}
			file, frag, _ := strings.Cut(target, "#")
			resolved := doc // self-link
			if file != "" {
				resolved = filepath.Join(filepath.Dir(doc), file)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", doc, target, err)
					continue
				}
			}
			if frag != "" && strings.HasSuffix(resolved, ".md") {
				if !anchorsOf(t, resolved)[frag] {
					t.Errorf("%s: link %q: no heading anchor #%s in %s", doc, target, frag, resolved)
				}
			}
		}
	}
}
