package sibylfs

// Pipeline-parity fixtures: the sharded, cache-backed pipeline must
// produce verdicts byte-identical to the direct Execute+Check flow that
// recorded testdata/oracle_golden.json. The per-record Checked text is
// digested in suite order and compared against the same golden SHA the
// monolithic oracle-parity test pins, for both the sequential slice and
// the seeded concurrent universe — so a pipeline cold run, a warm
// cache-hit run and bare sfs-check can never disagree.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func pipelineGolden(t *testing.T, name string, cfg PipelineConfig) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "oracle_golden.json"))
	if err != nil {
		t.Fatalf("missing golden fixtures: %v", err)
	}
	var want map[string]*goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	w, ok := want[name]
	if !ok {
		t.Fatalf("no golden record %q", name)
	}

	records, stats, err := RunPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != len(cfg.Scripts) {
		t.Fatalf("expected a cold run: %s", stats)
	}
	h := sha256.New()
	g := &goldenFile{}
	for _, rec := range records {
		h.Write([]byte(rec.Checked))
		if rec.MaxStates > g.PeakStates {
			g.PeakStates = rec.MaxStates
		}
		g.TauTotal += rec.TauExpansions
		g.SumStatesTotal += rec.SumStates
		g.StepsTotal += rec.Steps
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != w.CheckedSHA {
		t.Errorf("%s: pipeline checked-trace digest %s, want %s", name, got, w.CheckedSHA)
	}
	if g.PeakStates != w.PeakStates || g.TauTotal != w.TauTotal ||
		g.SumStatesTotal != w.SumStatesTotal || g.StepsTotal != w.StepsTotal {
		t.Errorf("%s: peak/τ/sum/steps = %d/%d/%d/%d, want %d/%d/%d/%d",
			name, g.PeakStates, g.TauTotal, g.SumStatesTotal, g.StepsTotal,
			w.PeakStates, w.TauTotal, w.SumStatesTotal, w.StepsTotal)
	}
}

func TestPipelineGoldenParity(t *testing.T) {
	suite := Generate()
	var sel []*Script
	for i := 0; i < len(suite); i += 7 {
		sel = append(sel, suite[i])
	}
	pipelineGolden(t, "seq_slice7", PipelineConfig{
		Name:    "seq_slice7",
		Scripts: sel,
		Factory: MemFS(LinuxProfile("ext4")),
		FSName:  "ext4",
		Spec:    DefaultSpec(),
	})
}

// TestPipelineGoldenParityNoSharedCons re-runs the sequential slice with
// the suite-level cons table ablated: the shared transition memo is an
// execution strategy only, so the checked-trace digest AND the oracle work
// metrics (peak/τ/sum/steps) must match the same golden record the
// memoised run pins. A divergence here means the memo replayed a fan-out
// it had no right to reuse.
func TestPipelineGoldenParityNoSharedCons(t *testing.T) {
	suite := Generate()
	var sel []*Script
	for i := 0; i < len(suite); i += 7 {
		sel = append(sel, suite[i])
	}
	pipelineGolden(t, "seq_slice7", PipelineConfig{
		Name:         "seq_slice7",
		Scripts:      sel,
		Factory:      MemFS(LinuxProfile("ext4")),
		FSName:       "ext4",
		Spec:         DefaultSpec(),
		NoSharedCons: true,
	})
}

func TestPipelineGoldenParityConcurrent(t *testing.T) {
	pipelineGolden(t, "conc_seed1", PipelineConfig{
		Name:       "conc_seed1",
		Scripts:    GenerateConcurrent(),
		Factory:    MemFS(LinuxProfile("ext4")),
		FSName:     "ext4",
		Spec:       DefaultSpec(),
		Concurrent: true,
		SchedSeed:  1,
	})
}
