package sibylfs

// Generation-cache fixtures: a warm session must load the generated suite
// from the cache — regenerating nothing — and the loaded suite must be
// indistinguishable from a fresh generation, names, rendered text and
// precomputed script hashes included.

import (
	"context"
	"testing"

	"repro/internal/pipeline"
)

func TestGenerationCacheWarmStart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	coldTel := NewTelemetryRegistry()
	cold := New(WithCacheDir(dir), WithTelemetry(coldTel))
	first, err := cold.Generate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := coldTel.Counter("testgen.cache_hits").Value(), coldTel.Counter("testgen.cache_misses").Value(); hits != 0 || misses != 1 {
		t.Fatalf("cold run: hits/misses = %d/%d, want 0/1", hits, misses)
	}

	warmTel := NewTelemetryRegistry()
	warm := New(WithCacheDir(dir), WithTelemetry(warmTel))
	second, err := warm.Generate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := warmTel.Counter("testgen.cache_hits").Value(), warmTel.Counter("testgen.cache_misses").Value(); hits != 1 || misses != 0 {
		t.Fatalf("warm run: hits/misses = %d/%d, want 1/0 (suite was regenerated)", hits, misses)
	}

	if len(second) != len(first) {
		t.Fatalf("warm suite has %d scripts, cold %d", len(second), len(first))
	}
	for i := range first {
		if second[i].Name != first[i].Name {
			t.Fatalf("script %d: warm name %q, cold %q", i, second[i].Name, first[i].Name)
		}
		if second[i].Render() != first[i].Render() {
			t.Fatalf("script %q: warm text differs from cold", first[i].Name)
		}
	}

	// The warm session's hash memo must be seeded from the blob with values
	// that agree with ScriptHash — the pipeline cache keys depend on it.
	for _, i := range []int{0, len(second) / 2, len(second) - 1} {
		if got, want := warm.scriptHash(second[i]), pipeline.ScriptHash(second[i]); got != want {
			t.Fatalf("script %q: memoised hash %s, ScriptHash %s", second[i].Name, got, want)
		}
	}

	// The concurrent universe caches under its own key: generating it must
	// not be served the sequential blob.
	conc, err := warm.GenerateConcurrent(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if misses := warmTel.Counter("testgen.cache_misses").Value(); misses != 1 {
		t.Fatalf("concurrent universe: misses = %d, want 1 (distinct key)", misses)
	}
	if len(conc) == 0 || len(conc) == len(second) {
		t.Fatalf("concurrent universe has %d scripts (sequential %d)", len(conc), len(second))
	}
}
