// Package sibylfs is a Go reproduction of SibylFS (SOSP 2015): a rigorous,
// executable specification of POSIX and real-world file-system behaviour
// usable as a test oracle, together with a generated test suite, a test
// executor, implementations under test, and result analysis.
//
// The front door is the Session facade: one option-configured handle
// whose context-aware methods cover the Fig 1 flow end to end —
//
//	s := sibylfs.New(sibylfs.WithSpec(sibylfs.DefaultSpec()))
//	suite, _ := s.Generate(ctx)                             // test scripts
//	traces, _ := s.Execute(ctx, suite, impl)                // drive an FS
//	results, _ := s.Check(ctx, traces)                      // oracle
//
// plus Run (the sharded, cache-backed pipeline), Survey and Fuzz; see
// Session. The package-level Execute/Check/... functions predate the
// facade and survive as deprecated wrappers so existing callers keep
// compiling.
//
// The package re-exports the model's vocabulary via type aliases so
// downstream users never import internal packages directly.
package sibylfs

import (
	"context"

	"repro/internal/checker"
	"repro/internal/exec"
	"repro/internal/fsimpl"
	"repro/internal/testgen"
	"repro/internal/trace"
	"repro/internal/types"
)

// Core vocabulary, re-exported.
type (
	// Spec selects the model variant and trait mix (§4).
	Spec = types.Spec
	// Platform is one of POSIX, Linux, OS X, FreeBSD.
	Platform = types.Platform
	// Errno is an abstract POSIX error number.
	Errno = types.Errno
	// Script is a parsed test script (Fig 2).
	Script = trace.Script
	// Trace is an observed execution (Fig 3).
	Trace = trace.Trace
	// CheckResult is the oracle's verdict on one trace (Fig 4).
	CheckResult = checker.Result
	// StepError is one non-conformant step with its diagnosis.
	StepError = checker.StepError
	// FS is a file system under test.
	FS = fsimpl.FS
	// Factory creates fresh FS instances, one per script.
	Factory = fsimpl.Factory
	// Profile configures the in-memory implementation's behaviour.
	Profile = fsimpl.Profile
	// ConcurrentOptions configure the concurrent executor (seeded
	// deterministic scheduler vs free-running goroutines).
	ConcurrentOptions = exec.ConcurrentOptions
)

// Platform constants.
const (
	POSIX   = types.PlatformPOSIX
	Linux   = types.PlatformLinux
	OSX     = types.PlatformOSX
	FreeBSD = types.PlatformFreeBSD
)

// DefaultSpec is the Linux variant with permissions, root initial process.
func DefaultSpec() Spec { return types.DefaultSpec() }

// SpecFor returns the spec variant for a platform with the standard traits.
func SpecFor(p Platform) Spec {
	return Spec{Platform: p, Permissions: true, RootUser: true}
}

// ParsePlatformName maps a configuration-file or CLI platform name
// ("posix", "linux", "mac_os_x"/"osx", "freebsd") to a Platform.
func ParsePlatformName(s string) (Platform, bool) { return types.ParsePlatform(s) }

// Generate builds the full test suite (§6.1).
//
// Deprecated: use Session.Generate, which is context-aware.
func Generate() []*Script { return testgen.Generate().Scripts }

// GenerateConcurrent builds the multi-process concurrency universe: 2–4
// processes issuing overlapping calls on shared paths. Run it through
// ExecuteConcurrent so the calls genuinely interleave.
//
// Deprecated: use Session.GenerateConcurrent, which is context-aware.
func GenerateConcurrent() []*Script { return testgen.ConcurrentScripts() }

// GenerateCrash builds the crash-consistency universe (crash___ scripts).
// Execute it sequentially against a crash-profiled implementation and
// check with a Spec.Crash model.
//
// Deprecated: use Session.GenerateCrash, which is context-aware.
func GenerateCrash() []*Script { return testgen.CrashScripts() }

// SuiteStats reports the number of scripts per command group.
func SuiteStats(scripts []*Script) map[string]int {
	s := testgen.Suite{Scripts: scripts}
	return s.Stats()
}

// ParseScript parses script concrete syntax.
func ParseScript(text string) (*Script, error) { return trace.ParseScript(text) }

// ParseTrace parses trace concrete syntax.
func ParseTrace(text string) (*Trace, error) { return trace.ParseTrace(text) }

// Execute runs scripts against fresh instances from factory (§6.2).
// workers ≤ 0 selects GOMAXPROCS.
//
// Deprecated: use Session.Execute, which is cancellable and carries the
// worker bound as a session option.
func Execute(scripts []*Script, factory Factory, workers int) ([]*Trace, error) {
	return New(WithWorkers(workers)).Execute(context.Background(), scripts, factory)
}

// ExecuteOne runs a single script.
//
// Deprecated: use Session.Execute with a one-script slice, or
// Session.ExecuteConcurrent for multi-process scripts.
func ExecuteOne(script *Script, factory Factory) (*Trace, error) {
	return exec.Run(context.Background(), script, factory)
}

// ExecuteConcurrent runs scripts with one goroutine per script process, so
// calls from different processes genuinely overlap in the recorded traces.
// With opts.Seeded a deterministic scheduler replays the interleaving
// chosen by opts.Seed; opts.Workers bounds script-level parallelism.
//
// Deprecated: use Session.ExecuteConcurrent, which is cancellable.
func ExecuteConcurrent(scripts []*Script, factory Factory, opts ConcurrentOptions) ([]*Trace, error) {
	return New().ExecuteConcurrent(context.Background(), scripts, factory, opts)
}

// ExecuteOneConcurrent runs a single script concurrently.
//
// Deprecated: use Session.ExecuteConcurrent with a one-script slice.
func ExecuteOneConcurrent(script *Script, factory Factory, opts ConcurrentOptions) (*Trace, error) {
	return exec.RunConcurrent(context.Background(), script, factory, opts)
}

// Check runs the oracle over traces with the given model variant.
// workers ≤ 0 selects GOMAXPROCS.
//
// Deprecated: use Session.Check, which is cancellable and carries spec
// and workers as session options.
func Check(spec Spec, traces []*Trace, workers int) []CheckResult {
	results, _ := New(WithSpec(spec), WithWorkers(workers)).Check(context.Background(), traces)
	return results
}

// CheckOne checks a single trace.
//
// Deprecated: use Session.CheckOne.
func CheckOne(spec Spec, t *Trace) CheckResult {
	return checker.New(spec).Check(t)
}

// RenderChecked produces the checked-trace text of Fig 4.
func RenderChecked(t *Trace, r CheckResult) string {
	return checker.RenderChecked(t, r)
}

// MemFS returns a factory for the in-memory implementation with a profile.
func MemFS(p Profile) Factory { return fsimpl.MemFactory(p) }

// HostFS returns a factory driving the real file system in a temp-dir jail.
func HostFS(name string) Factory { return fsimpl.HostFactory(name) }

// SpecFS returns a factory for the determinized model (a reference
// implementation, as the paper's FUSE mounts of SibylFS).
func SpecFS(name string, spec Spec) Factory { return fsimpl.SpecFactory(name, spec) }

// LinuxProfile, PosixProfile, OSXProfile and FreeBSDProfile are conforming
// baselines; see fsimpl.SurveyProfiles for the defect-injected variants.
func LinuxProfile(name string) Profile   { return fsimpl.LinuxProfile(name) }
func PosixProfile(name string) Profile   { return fsimpl.PosixProfile(name) }
func OSXProfile(name string) Profile     { return fsimpl.OSXProfile(name) }
func FreeBSDProfile(name string) Profile { return fsimpl.FreeBSDProfile(name) }

// SurveyProfiles returns the defect catalogue of §7.3 as memfs profiles.
func SurveyProfiles() []Profile { return fsimpl.SurveyProfiles() }

// Coverage reports model coverage-point statistics accumulated since the
// last reset (§7.2 measures statement coverage of the model this way).
//
// Deprecated: use Session.Coverage — with WithCoverage the figures are
// the session's own instead of process-global.
func Coverage() (hit, total int) { return defaultSession.Coverage() }

// CoverageUnhit lists coverage points never exercised.
//
// Deprecated: use Session.CoverageUnhit.
func CoverageUnhit() []string { return defaultSession.CoverageUnhit() }

// ResetCoverage zeroes the process-global coverage counters — including
// every concurrent session's view of them, which is why it is deprecated.
//
// Deprecated: use Session.ResetCoverage on a session constructed with
// WithCoverage(NewCoverageRegistry()); resetting an isolated registry
// cannot disturb other sessions.
func ResetCoverage() { defaultSession.ResetCoverage() }
