// Package sibylfs is a Go reproduction of SibylFS (SOSP 2015): a rigorous,
// executable specification of POSIX and real-world file-system behaviour
// usable as a test oracle, together with a generated test suite, a test
// executor, implementations under test, and result analysis.
//
// The typical flow mirrors Fig 1 of the paper:
//
//	suite := sibylfs.Generate()                            // test scripts
//	traces, _ := sibylfs.Execute(suite, impl, 0)           // drive an FS
//	results := sibylfs.Check(sibylfs.DefaultSpec(), traces, 0) // oracle
//
// The package re-exports the model's vocabulary via type aliases so
// downstream users never import internal packages directly.
package sibylfs

import (
	"repro/internal/checker"
	"repro/internal/exec"
	"repro/internal/fsimpl"
	"repro/internal/testgen"
	"repro/internal/trace"
	"repro/internal/types"
)

// Core vocabulary, re-exported.
type (
	// Spec selects the model variant and trait mix (§4).
	Spec = types.Spec
	// Platform is one of POSIX, Linux, OS X, FreeBSD.
	Platform = types.Platform
	// Errno is an abstract POSIX error number.
	Errno = types.Errno
	// Script is a parsed test script (Fig 2).
	Script = trace.Script
	// Trace is an observed execution (Fig 3).
	Trace = trace.Trace
	// CheckResult is the oracle's verdict on one trace (Fig 4).
	CheckResult = checker.Result
	// StepError is one non-conformant step with its diagnosis.
	StepError = checker.StepError
	// FS is a file system under test.
	FS = fsimpl.FS
	// Factory creates fresh FS instances, one per script.
	Factory = fsimpl.Factory
	// Profile configures the in-memory implementation's behaviour.
	Profile = fsimpl.Profile
	// ConcurrentOptions configure the concurrent executor (seeded
	// deterministic scheduler vs free-running goroutines).
	ConcurrentOptions = exec.ConcurrentOptions
)

// Platform constants.
const (
	POSIX   = types.PlatformPOSIX
	Linux   = types.PlatformLinux
	OSX     = types.PlatformOSX
	FreeBSD = types.PlatformFreeBSD
)

// DefaultSpec is the Linux variant with permissions, root initial process.
func DefaultSpec() Spec { return types.DefaultSpec() }

// SpecFor returns the spec variant for a platform with the standard traits.
func SpecFor(p Platform) Spec {
	return Spec{Platform: p, Permissions: true, RootUser: true}
}

// ParsePlatformName maps a configuration-file or CLI platform name
// ("posix", "linux", "mac_os_x"/"osx", "freebsd") to a Platform.
func ParsePlatformName(s string) (Platform, bool) { return types.ParsePlatform(s) }

// Generate builds the full test suite (§6.1).
func Generate() []*Script { return testgen.Generate().Scripts }

// GenerateConcurrent builds the multi-process concurrency universe: 2–4
// processes issuing overlapping calls on shared paths. Run it through
// ExecuteConcurrent so the calls genuinely interleave.
func GenerateConcurrent() []*Script { return testgen.ConcurrentScripts() }

// SuiteStats reports the number of scripts per command group.
func SuiteStats(scripts []*Script) map[string]int {
	s := testgen.Suite{Scripts: scripts}
	return s.Stats()
}

// ParseScript parses script concrete syntax.
func ParseScript(text string) (*Script, error) { return trace.ParseScript(text) }

// ParseTrace parses trace concrete syntax.
func ParseTrace(text string) (*Trace, error) { return trace.ParseTrace(text) }

// Execute runs scripts against fresh instances from factory (§6.2).
// workers ≤ 0 selects GOMAXPROCS.
func Execute(scripts []*Script, factory Factory, workers int) ([]*Trace, error) {
	return exec.RunAll(scripts, factory, workers)
}

// ExecuteOne runs a single script.
func ExecuteOne(script *Script, factory Factory) (*Trace, error) {
	return exec.Run(script, factory)
}

// ExecuteConcurrent runs scripts with one goroutine per script process, so
// calls from different processes genuinely overlap in the recorded traces.
// With opts.Seeded a deterministic scheduler replays the interleaving
// chosen by opts.Seed; opts.Workers bounds script-level parallelism.
func ExecuteConcurrent(scripts []*Script, factory Factory, opts ConcurrentOptions) ([]*Trace, error) {
	return exec.RunAllConcurrent(scripts, factory, opts)
}

// ExecuteOneConcurrent runs a single script concurrently.
func ExecuteOneConcurrent(script *Script, factory Factory, opts ConcurrentOptions) (*Trace, error) {
	return exec.RunConcurrent(script, factory, opts)
}

// Check runs the oracle over traces with the given model variant.
// workers ≤ 0 selects GOMAXPROCS.
func Check(spec Spec, traces []*Trace, workers int) []CheckResult {
	return checker.New(spec).CheckAll(traces, workers)
}

// CheckOne checks a single trace.
func CheckOne(spec Spec, t *Trace) CheckResult {
	return checker.New(spec).Check(t)
}

// RenderChecked produces the checked-trace text of Fig 4.
func RenderChecked(t *Trace, r CheckResult) string {
	return checker.RenderChecked(t, r)
}

// MemFS returns a factory for the in-memory implementation with a profile.
func MemFS(p Profile) Factory { return fsimpl.MemFactory(p) }

// HostFS returns a factory driving the real file system in a temp-dir jail.
func HostFS(name string) Factory { return fsimpl.HostFactory(name) }

// SpecFS returns a factory for the determinized model (a reference
// implementation, as the paper's FUSE mounts of SibylFS).
func SpecFS(name string, spec Spec) Factory { return fsimpl.SpecFactory(name, spec) }

// LinuxProfile, PosixProfile, OSXProfile and FreeBSDProfile are conforming
// baselines; see fsimpl.SurveyProfiles for the defect-injected variants.
func LinuxProfile(name string) Profile   { return fsimpl.LinuxProfile(name) }
func PosixProfile(name string) Profile   { return fsimpl.PosixProfile(name) }
func OSXProfile(name string) Profile     { return fsimpl.OSXProfile(name) }
func FreeBSDProfile(name string) Profile { return fsimpl.FreeBSDProfile(name) }

// SurveyProfiles returns the defect catalogue of §7.3 as memfs profiles.
func SurveyProfiles() []Profile { return fsimpl.SurveyProfiles() }

// Coverage reports model coverage-point statistics accumulated since the
// last reset (§7.2 measures statement coverage of the model this way).
func Coverage() (hit, total int) { return covStats() }

// CoverageUnhit lists coverage points never exercised.
func CoverageUnhit() []string { return covUnhit() }

// ResetCoverage zeroes the coverage counters.
func ResetCoverage() { covReset() }
