package sibylfs

// Randomised differential testing — the mode §8 describes as a low-cost
// alternative "(that SibylFS also supports)": seeded random command
// sequences executed on the conforming implementations must always stay
// inside the model's envelope. Any rejection here is a bug in either the
// model or the implementation, found for free.

import (
	"testing"

	"repro/internal/testgen"
)

func TestRandomDifferentialMemfs(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 80
	}
	scripts := testgen.RandomScripts(1, n, 25)
	traces, err := Execute(scripts, MemFS(LinuxProfile("ext4")), 0)
	if err != nil {
		t.Fatal(err)
	}
	results := Check(DefaultSpec(), traces, 0)
	for i, r := range results {
		if !r.Accepted {
			t.Errorf("random script deviates — model or memfs bug:\n%s\n%s",
				scripts[i].Render(), RenderChecked(traces[i], r))
			if i > 3 {
				t.FailNow()
			}
		}
	}
}

func TestRandomDifferentialSpecFS(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 40
	}
	scripts := testgen.RandomScripts(2, n, 20)
	traces, err := Execute(scripts, SpecFS("specfs", DefaultSpec()), 0)
	if err != nil {
		t.Fatal(err)
	}
	results := Check(DefaultSpec(), traces, 0)
	for i, r := range results {
		if !r.Accepted {
			t.Errorf("determinized model outside its own envelope:\n%s\n%s",
				scripts[i].Render(), RenderChecked(traces[i], r))
			if i > 3 {
				t.FailNow()
			}
		}
	}
}

func TestRandomDifferentialHost(t *testing.T) {
	if testing.Short() {
		t.Skip("host run")
	}
	scripts := FilterHostSafe(testgen.RandomScripts(3, 200, 20))
	traces, err := Execute(scripts, HostFS("host"), 1)
	if err != nil {
		t.Fatal(err)
	}
	results := Check(DefaultSpec(), traces, 0)
	bad := 0
	for i, r := range results {
		if !r.Accepted {
			bad++
			if bad <= 3 {
				t.Errorf("random script deviates on the real kernel:\n%s\n%s",
					scripts[i].Render(), RenderChecked(traces[i], r))
			}
		}
	}
	if bad > 0 {
		t.Errorf("%d/%d random host traces rejected", bad, len(results))
	}
}

// TestRandomScriptReplayableAlone: any script of a batch regenerates
// identically on its own from (seed, index) — corpus replay in
// internal/fuzz depends on this per-script independence.
func TestRandomScriptReplayableAlone(t *testing.T) {
	batch := testgen.RandomScripts(21, 10, 12)
	for i, want := range batch {
		got := testgen.RandomScript(21, i, 12)
		if got.Render() != want.Render() {
			t.Fatalf("script %d regenerated alone differs from batch:\n%s\nvs\n%s",
				i, got.Render(), want.Render())
		}
	}
}

func TestRandomScriptsReproducible(t *testing.T) {
	a := testgen.RandomScripts(7, 5, 10)
	b := testgen.RandomScripts(7, 5, 10)
	for i := range a {
		if a[i].Render() != b[i].Render() {
			t.Fatalf("seeded generation not reproducible at script %d", i)
		}
	}
	c := testgen.RandomScripts(8, 5, 10)
	same := 0
	for i := range a {
		if a[i].Render() == c[i].Render() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical scripts")
	}
}
