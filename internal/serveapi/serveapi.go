// Package serveapi is the wire vocabulary of the sfs-serve check
// service — job specs, job statuses and the Go client — kept free of
// the daemon's dependencies so the root sibylfs package can re-export
// the client while internal/serve builds the server on top of the
// Session facade.
package serveapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/pipeline"
)

// JobSpec describes one suite submission: which scripts to run (a
// generated universe or inline script texts), which implementation to
// run them against, and the run configuration. The zero values mean
// "the daemon's defaults" throughout.
type JobSpec struct {
	// Name labels the job in statuses and summaries (default "FS vs
	// PLATFORM", like sfs-run).
	Name string `json:"name,omitempty"`
	// Universe selects the generated suite: "sequential" (default),
	// "concurrent" (multi-process universe, concurrent executor) or
	// "crash" (crash-consistency universe, persistence-aware oracle).
	Universe string `json:"universe,omitempty"`
	// Scripts are inline script texts (the .script format); when set
	// they replace the generated universe as the suite. Universe still
	// selects the executor/oracle mode.
	Scripts []string `json:"scripts,omitempty"`
	// FS names the implementation under test, exactly like sfs-run -fs:
	// a memfs survey profile, "spec:PLATFORM", or any other name for a
	// conforming Linux memfs. "host" is rejected — the daemon shares its
	// process with other tenants' jobs.
	FS string `json:"fs"`
	// Platform overrides the model variant (default: the
	// implementation's native platform).
	Platform string `json:"platform,omitempty"`
	// NoPerms disables the permissions trait.
	NoPerms bool `json:"noperms,omitempty"`
	// Sample keeps every Nth script (≤ 1 = all).
	Sample int `json:"sample,omitempty"`
	// Workers overrides the daemon's per-job pipeline worker bound.
	Workers int `json:"workers,omitempty"`
	// SchedSeed seeds the deterministic scheduler for the concurrent
	// universe (0 = free-running).
	SchedSeed int64 `json:"sched_seed,omitempty"`
	// MaxStateSet caps the oracle's tracked state set (0 = default).
	MaxStateSet int `json:"max_state_set,omitempty"`
	// IsolateCoverage gives the job its own coverage registry. Exact
	// per-tenant coverage attribution serializes model evaluation
	// process-wide (see sibylfs.WithCoverage), so it is opt-in.
	IsolateCoverage bool `json:"isolate_coverage,omitempty"`
}

// Job states, as JobStatus.State reports them.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// TerminalState reports whether a job in state will never change again.
func TerminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobStatus is one job's externally visible state. The work-split
// counters mirror sibylfs.PipelineStats and are populated when the job
// finishes; Records counts observed records and grows while the job
// runs.
type JobStatus struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	Scripts int    `json:"scripts,omitempty"`
	Records int    `json:"records"`

	Jobs      int   `json:"jobs,omitempty"`
	Executed  int   `json:"executed,omitempty"`
	CacheHits int   `json:"cache_hits,omitempty"`
	Resumed   int   `json:"resumed,omitempty"`
	Rejected  int   `json:"rejected,omitempty"`
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
}

// Client talks to an sfs-serve daemon. The zero value is unusable;
// construct with NewClient.
type Client struct {
	// Base is the daemon's root URL ("http://host:port").
	Base string
	// HTTP overrides the transport. Records streams indefinitely, so
	// the default client deliberately has no overall timeout — bound
	// calls with their contexts.
	HTTP *http.Client
}

// NewClient returns a client for the daemon rooted at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// SubmitJob submits spec and returns the accepted job's initial status
// (its ID names the job in every other call).
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	err = c.doJSON(ctx, http.MethodPost, "/v1/jobs", body, &st)
	return st, err
}

// Job fetches one job's current status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists all jobs the daemon knows, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cooperative cancellation; the job settles into the
// "cancelled" state once its in-flight traces drain. Its journal stays
// resumable — a daemon restart does not resurrect a cancelled job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.doJSON(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, nil)
}

// Records streams the job's records as they complete, calling fn once
// per record, and returns when the job finishes (or ctx ends). On a
// finished job it replays the finalized journal — canonical order,
// byte-identical to a local sfs-run of the same suite.
func (c *Client) Records(ctx context.Context, id string, fn func(pipeline.Record)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/records", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec pipeline.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("serveapi: bad record line: %w", err)
		}
		fn(rec)
	}
	return sc.Err()
}

// Result returns a finished job's finalized journal verbatim — the
// exact NDJSON bytes a local sfs-run -jsonl of the same suite produces.
// It fails on a job that is still queued or running.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	st, err := c.Job(ctx, id)
	if err != nil {
		return nil, err
	}
	if !TerminalState(st.State) {
		return nil, fmt.Errorf("serveapi: job %s is %s, not finished", id, st.State)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/records", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Wait polls until the job reaches a terminal state (default poll
// interval 200ms) and returns its final status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if TerminalState(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// doJSON issues one request and decodes a JSON response into out (nil
// out discards the body).
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 300 {
		return readError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(out)
}

// readError turns a non-2xx response into an error carrying the
// server's message.
func readError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("serveapi: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
}
