package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
)

// Version reports the build's identity: the module version when built
// from a tagged module ("(devel)" for tree builds), the VCS revision when
// the toolchain stamped one, and the Go version. It is what -version
// prints and what telemetry snapshots embed, so BENCH_*.json and CI
// stats artifacts say which build produced them.
func Version() string {
	v := "devel"
	var rev, dirty string
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			v = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
	}
	// A stamped module version (a tag or pseudo-version) already embeds the
	// revision; only tree builds need it appended.
	if v == "devel" && rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		v += "-" + rev + dirty
	}
	return v
}

// VersionFlag registers -version on fs. The returned function is called
// after flag parsing: when the flag was set it prints "tool version
// (goversion os/arch)" and exits 0.
func VersionFlag(fs *flag.FlagSet, tool string) func() {
	show := fs.Bool("version", false, "print version and exit")
	return func() {
		if !*show {
			return
		}
		fmt.Printf("%s %s (%s %s/%s)\n", tool, Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		os.Exit(0)
	}
}
