package cliutil

import (
	"fmt"
	"os"

	"repro/internal/telemetry"
)

// StatsHeader is the telemetry snapshot header for tool, stamped with
// the build version (see Version) so stats artifacts say which build
// produced them.
func StatsHeader(tool string) telemetry.Header {
	return telemetry.Header{Tool: tool, Version: Version()}
}

// WriteStats dumps the default telemetry registry to path as indented
// JSON ("-" writes to stdout). Tools accepting -stats-json call it on
// every meaningful exit path — deviations and cancellation included — so
// a failing run still leaves its evidence.
func WriteStats(path, tool string) error {
	if path == "-" {
		return telemetry.Default.WriteJSON(os.Stdout, StatsHeader(tool))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.Default.WriteJSON(f, StatsHeader(tool)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StartDebug serves /metrics (Prometheus text), /stats.json, /debug/vars
// and /debug/pprof on addr, announcing the bound address on stderr (addr
// may be ":0"). Close the returned server on exit.
func StartDebug(addr, tool string) (*telemetry.DebugServer, error) {
	srv, err := telemetry.ServeDebug(addr, telemetry.Default, StatsHeader(tool))
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "%s: debug server listening on http://%s/\n", tool, srv.Addr())
	return srv, nil
}
