// Package cliutil holds the helpers the cmd/ tools share: resolving the
// -fs flag to an implementation under test and loading script
// directories. Keeping them here means a new profile scheme or script
// format touches one place, not one copy per tool.
package cliutil

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	sibylfs "repro"
	"repro/internal/fsimpl"
	"repro/internal/testgen"
	"repro/internal/trace"
	"repro/internal/types"
)

// FSChoice is a resolved -fs argument.
type FSChoice struct {
	Factory fsimpl.Factory
	// Platform is the implementation's native platform (the default model
	// variant to check it against).
	Platform types.Platform
	// Serial means scripts must execute one at a time (hostfs: the
	// kernel's umask is process-global).
	Serial bool
	// HostOnly restricts the run to host-safe scripts.
	HostOnly bool
	// Fallback is true when the name matched no survey profile and a
	// conforming Linux memfs was substituted under it — worth a warning
	// when the caller's purpose is finding defects.
	Fallback bool
}

// PickFS resolves a -fs argument: "host" (the real kernel in a temp-dir
// jail), "spec:PLATFORM" (the determinized model), a memfs
// survey-profile name, or any other name as a conforming Linux memfs
// configuration (Fallback set). ok is false only for an unparsable
// "spec:" platform.
func PickFS(name string) (FSChoice, bool) {
	switch {
	case name == "host":
		return FSChoice{
			Factory:  fsimpl.HostFactory("host"),
			Platform: types.PlatformLinux,
			Serial:   true,
			HostOnly: true,
		}, true
	case strings.HasPrefix(name, "spec:"):
		pl, k := types.ParsePlatform(strings.TrimPrefix(name, "spec:"))
		if !k {
			return FSChoice{}, false
		}
		spec := types.Spec{Platform: pl, Permissions: true, RootUser: true}
		return FSChoice{Factory: fsimpl.SpecFactory(name, spec), Platform: pl}, true
	default:
		for _, p := range fsimpl.SurveyProfiles() {
			if p.Name == name {
				return FSChoice{Factory: fsimpl.MemFactory(p), Platform: p.Platform}, true
			}
		}
		return FSChoice{
			Factory:  fsimpl.MemFactory(fsimpl.LinuxProfile(name)),
			Platform: types.PlatformLinux,
			Fallback: true,
		}, true
	}
}

// Universe names for SessionScripts/LoadScripts.
const (
	UniverseSequential = "sequential"
	UniverseConcurrent = "concurrent"
	UniverseCrash      = "crash"
)

// Universe maps a tool's -concurrent/-crash flags to the universe name,
// rejecting the combination (crash scripts are sequential-executor only).
func Universe(concurrent, crash bool) (string, error) {
	switch {
	case concurrent && crash:
		return "", fmt.Errorf("-concurrent and -crash are mutually exclusive: crash scripts are sequential-executor only")
	case concurrent:
		return UniverseConcurrent, nil
	case crash:
		return UniverseCrash, nil
	default:
		return UniverseSequential, nil
	}
}

// PickCrashFS resolves a -fs argument for a crash-universe run: the same
// names as PickFS, but the resulting implementation simulates persistence
// (memfs: the crash profile; spec:PLATFORM: a Spec.Crash model). "host"
// is rejected — we cannot power-cycle the machine the tests run on.
func PickCrashFS(name string) (FSChoice, error) {
	switch {
	case name == "host":
		return FSChoice{}, fmt.Errorf("-fs host does not support crash simulation (cannot power-cycle the host)")
	case strings.HasPrefix(name, "spec:"):
		pl, k := types.ParsePlatform(strings.TrimPrefix(name, "spec:"))
		if !k {
			return FSChoice{}, fmt.Errorf("unknown platform %q", strings.TrimPrefix(name, "spec:"))
		}
		spec := types.Spec{Platform: pl, Permissions: true, RootUser: true, Crash: true}
		return FSChoice{Factory: fsimpl.SpecFactory(name, spec), Platform: pl}, nil
	default:
		c, _ := PickFS(name)
		for _, p := range fsimpl.SurveyProfiles() {
			if p.Name == name {
				p.Crash = true
				return FSChoice{Factory: fsimpl.MemFactory(p), Platform: p.Platform}, nil
			}
		}
		prof := fsimpl.LinuxProfile(name)
		prof.Crash = true
		c.Factory = fsimpl.MemFactory(prof)
		return c, nil
	}
}

// SessionScripts resolves a tool's -i flag to its script list: a
// directory of .script files when dir is given, otherwise the named
// generated universe served through the session — so a session
// constructed with WithCacheDir loads the suite (and its precomputed
// script hashes) from the generation cache on warm starts instead of
// regenerating.
func SessionScripts(ctx context.Context, s *sibylfs.Session, dir string, universe string) ([]*trace.Script, error) {
	if dir != "" {
		return LoadScripts(dir, universe)
	}
	switch universe {
	case UniverseConcurrent:
		return s.GenerateConcurrent(ctx)
	case UniverseCrash:
		return s.GenerateCrash(ctx)
	default:
		return s.Generate(ctx)
	}
}

// LoadScripts parses every .script file under dir (the file name becomes
// the script name when the header carries none). An empty dir selects
// the named generated universe. It bypasses the generation cache; prefer
// SessionScripts from tools that hold a Session.
func LoadScripts(dir string, universe string) ([]*trace.Script, error) {
	if dir == "" {
		switch universe {
		case UniverseConcurrent:
			return testgen.ConcurrentScripts(), nil
		case UniverseCrash:
			return testgen.CrashScripts(), nil
		default:
			return testgen.Generate().Scripts, nil
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*trace.Script
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".script") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		s, err := trace.ParseScript(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if s.Name == "" {
			s.Name = strings.TrimSuffix(e.Name(), ".script")
		}
		out = append(out, s)
	}
	return out, nil
}
