package cliutil

import (
	"fmt"
	"os"
	"strings"

	sibylfs "repro"
	"repro/internal/telemetry"
)

// StoreUsage is the shared help text for the -store flag.
const StoreUsage = "cache backend: pack (segment store), dir (v1 file-per-key), or an sfs-serve URL (http://HOST:PORT shared fleet store; -cache-dir becomes its local fallback)"

// StoreOptions maps the shared -cache-dir/-store flags to session
// options, identically across every cache-using tool (sfs-run,
// sfs-report, sfs-fuzz):
//
//   - "pack" (the default): a packed cache rooted at -cache-dir; no
//     -cache-dir means no cache, as before.
//   - "dir": the v1 file-per-key backend at -cache-dir.
//   - "http://…" / "https://…": the shared store of the sfs-serve
//     daemon at that URL — usable without any -cache-dir (the fleet
//     cache is remote); with one, the local packed store becomes the
//     unreachable-server fallback.
func StoreOptions(cacheDir, storeName string) ([]sibylfs.Option, error) {
	if strings.HasPrefix(storeName, "http://") || strings.HasPrefix(storeName, "https://") {
		opts := []sibylfs.Option{sibylfs.WithRemoteCache(storeName)}
		if cacheDir != "" {
			opts = append(opts, sibylfs.WithCacheDir(cacheDir))
		}
		return opts, nil
	}
	if cacheDir == "" {
		// No cache root: pack/dir have nowhere to live. Matches the old
		// per-tool behavior of ignoring -store without -cache-dir.
		return nil, nil
	}
	switch storeName {
	case "pack", "":
		return []sibylfs.Option{sibylfs.WithCacheDir(cacheDir)}, nil
	case "dir":
		store, err := sibylfs.OpenDirStore(cacheDir)
		if err != nil {
			return nil, err
		}
		return []sibylfs.Option{sibylfs.WithStore(store)}, nil
	default:
		return nil, fmt.Errorf("unknown store backend %q (want pack, dir or http://HOST:PORT)", storeName)
	}
}

// PrintCacheStats reports the session's result-store contents and the
// run's hit/miss telemetry on stdout — the shared implementation behind
// every tool's -cache-stats flag. Remote (http) stores additionally
// report their wire traffic: remote hits/misses, shipped batches, and
// the degraded paths (fallback reads/writes, dropped writes).
func PrintCacheStats(tool string, session *sibylfs.Session) {
	st, ok := session.CacheStats()
	if !ok {
		fmt.Fprintf(os.Stderr, "%s: -cache-stats: no cache configured (use -cache-dir or -store http://HOST:PORT)\n", tool)
		return
	}
	fmt.Printf("cache: backend=%s entries=%d segments=%d bytes=%d\n",
		st.Backend, st.Entries, st.Segments, st.Bytes)
	if fb, ok := session.CacheFallbackStats(); ok {
		fmt.Printf("cache: v1 read-through fallback: entries=%d bytes=%d\n",
			fb.Entries, fb.Bytes)
	}
	tel := telemetry.Default
	hits := tel.Counter("pipeline.cache_hits").Value()
	misses := tel.Counter("pipeline.cache_misses").Value()
	if total := hits + misses; total > 0 {
		fmt.Printf("cache: %d hits, %d misses (%.1f%% hit rate), %d stores, %d batches, %d fsyncs\n",
			hits, misses, 100*float64(hits)/float64(total),
			tel.Counter("pipeline.cache_stores").Value(),
			tel.Counter("pipeline.store_batches").Value(),
			tel.Counter("pipeline.store_fsyncs").Value())
	}
	if strings.HasPrefix(st.Backend, "http") {
		fmt.Printf("remote: %d gets (%d hits, %d misses), %d batches (%d entries), %d retries, %d errors\n",
			tel.Counter("pipeline.http_gets").Value(),
			tel.Counter("pipeline.http_hits").Value(),
			tel.Counter("pipeline.http_misses").Value(),
			tel.Counter("pipeline.http_batches").Value(),
			tel.Counter("pipeline.http_batch_entries").Value(),
			tel.Counter("pipeline.http_retries").Value(),
			tel.Counter("pipeline.http_errors").Value())
		fmt.Printf("remote: %d fallback reads, %d fallback writes, %d dropped writes\n",
			tel.Counter("pipeline.http_fallback_gets").Value(),
			tel.Counter("pipeline.http_fallback_puts").Value(),
			tel.Counter("pipeline.http_dropped_puts").Value())
	}
}
