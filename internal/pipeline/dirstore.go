package pipeline

import (
	"os"
	"path/filepath"
	"strings"
)

// DirStore is the v1 file-per-key store: one JSON file per key, fanned
// into 256 subdirectories by the key's first byte so directory listings
// stay cheap at suite scale. Writes are atomic and durable (temp file +
// fsync + rename + directory fsync) — which is also why it is slow at
// scale: a cold full-suite run pays one fsync + rename + directory fsync
// per record (~21k of each), and warm runs re-open and re-parse ~21k
// small files. PackStore replaces it as the default; DirStore remains
// for compatibility (opening a v1 cache read-through-migrates, see
// OpenCache) and as the durability baseline in benchmarks.
type DirStore struct {
	dir string
}

// OpenDirStore opens (creating if needed) a file-per-key store rooted at
// dir. Opening sweeps temp files abandoned by killed writers (see
// sweepOrphans); live writers are safe — only files older than orphanAge
// are reclaimed.
func OpenDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if e.IsDir() && len(e.Name()) == 2 {
				sweepOrphans(filepath.Join(dir, e.Name()), ".tmp-")
			}
		}
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store root.
func (d *DirStore) Dir() string { return d.dir }

func (d *DirStore) path(key string) string {
	return filepath.Join(d.dir, key[:2], key[2:]+".json")
}

// Get returns the bytes stored under key; unreadable entries are misses.
func (d *DirStore) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put stores data under key, atomically and durably — every Put is its
// own fsync + rename + directory-fsync transaction, so Flush is a no-op.
func (d *DirStore) Put(key string, data []byte) error {
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return atomicWriteFile(path, ".tmp-*", data)
}

// Flush is a no-op: DirStore pays for durability inside every Put.
func (d *DirStore) Flush() error { return nil }

// Close is a no-op; DirStore holds no open handles between calls.
func (d *DirStore) Close() error { return nil }

// Stats walks the fan-out subdirectories counting entries and bytes.
func (d *DirStore) Stats() StoreStats {
	st := StoreStats{Backend: "dir"}
	subs, err := os.ReadDir(d.dir)
	if err != nil {
		return st
	}
	for _, sub := range subs {
		if !sub.IsDir() || len(sub.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(d.dir, sub.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
				continue
			}
			st.Entries++
			if info, err := f.Info(); err == nil {
				st.Bytes += info.Size()
			}
		}
	}
	return st
}

// hasDirEntries reports whether dir contains a v1 file-per-key layout —
// any two-hex-digit fan-out subdirectory. OpenCache uses it to decide
// whether a DirStore read-through fallback is needed.
func hasDirEntries(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if e.IsDir() && len(e.Name()) == 2 && isHex(e.Name()) {
			return true
		}
	}
	return false
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
