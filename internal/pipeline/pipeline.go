package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checker"
	"repro/internal/cov"
	"repro/internal/exec"
	"repro/internal/fsimpl"
	"repro/internal/osspec"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/types"
)

// Config parameterises one pipeline run.
type Config struct {
	// Name labels the run in summaries ("ext4 vs linux").
	Name string
	// Scripts is the full job list. Sharding selects from it by index, so
	// every shard of a layout must be given the identical list in the
	// identical order (the generated suite is deterministic; sorted script
	// directories are too).
	Scripts []*trace.Script
	// Factory creates the implementation under test, one instance per
	// script; FSName is its cache identity and must change whenever the
	// factory's behaviour does (profile name, "host", "spec:linux", ...).
	Factory fsimpl.Factory
	FSName  string
	// Spec is the model variant checked against.
	Spec types.Spec
	// ModelVersion overrides osspec.ModelVersion in the cache key — tests
	// use it to force invalidation; leave empty otherwise.
	ModelVersion string
	// Workers bounds cross-trace parallelism (≤ 0 selects GOMAXPROCS).
	Workers int
	// TauWorkers bounds within-trace parallelism (checker.TauWorkers).
	// The pipeline default is 1: with Workers saturating the cores across
	// traces, fanning out inside each trace as well only adds scheduling
	// overhead. Raise it for few-trace, heavily concurrent workloads.
	TauWorkers int
	// MaxStateSet caps the checker's tracked state set (0 = the checker
	// default). Part of the cache key: a different cap can change verdicts.
	MaxStateSet int
	// NoSharedCons disables the suite-level cons table that interns
	// transition fan-outs across traces (checker.Memo) — the ablation knob
	// for benchmarks and the parity fixtures. Purely an execution strategy:
	// records are byte-identical either way, so it is NOT part of the
	// cache key.
	NoSharedCons bool
	// HashScript, when non-nil, supplies each script's content hash for key
	// computation instead of ScriptHash (which re-renders the script).
	// Sessions pass a memo fed by the generation cache so warm runs skip
	// re-rendering the whole suite. Must agree with ScriptHash.
	HashScript func(*trace.Script) string
	// Shards/Shard split the job list across invocations or machines:
	// shard K of N takes jobs K, K+N, K+2N, ... Shards ≤ 1 means the whole
	// list; Shard must be in [0, Shards).
	Shards int
	Shard  int
	// Concurrent executes scripts with the concurrent executor;
	// SchedSeed ≠ 0 selects the seeded deterministic scheduler. Both are
	// part of the cache key.
	Concurrent bool
	SchedSeed  int64
	// Cache, when non-nil, skips any job whose key it already holds and
	// stores every fresh result.
	Cache *Cache
	// Sink, when non-nil, receives records as jobs finish and acts as the
	// resume journal: jobs whose key the sink already holds are skipped
	// (their record is reused). Callers own Finalize/Close.
	Sink *Sink
	// Observe, when non-nil, is called once per record as its job
	// completes — cache hits and sink resumes included — so callers can
	// stream progress without buffering the whole run. Calls are
	// serialized but arrive in completion order, which is nondeterministic
	// under parallel workers; the returned slice stays in job order.
	Observe func(Record)
	// Cov, when non-nil, is an isolated coverage registry: each job's
	// execute-and-check runs inside a cov Collect window and its model
	// coverage is attributed to this registry instead of the process-wide
	// one. Windows serialize model evaluation process-wide — prefer nil
	// (shared coverage) for throughput.
	Cov *cov.Registry
	// Log, when non-nil, receives progress lines: a rate-limited status
	// line (at most one per progressInterval — completed/total, cache hit
	// rate, traces/s, ETA) while the run is in flight, plus the final
	// Stats line. Never one line per record: on a warm 21k-trace suite
	// that would dominate wall time through the terminal.
	Log io.Writer
	// Tel receives the run's telemetry — per-phase latency histograms
	// (cache lookup/store, execute, check, journal append) and work
	// counters. nil selects telemetry.Default; sessions pass their own
	// registry (sibylfs.WithTelemetry) for isolation. Purely
	// observational: records are byte-identical whatever registry is
	// installed.
	Tel *telemetry.Registry
}

// progressInterval is the minimum spacing of in-flight progress lines
// (~5 lines/s at most).
const progressInterval = 200 * time.Millisecond

// Stats describes one run's work split.
type Stats struct {
	// Jobs is the number of scripts in this shard; Executed + CacheHits +
	// SinkSkipped = Jobs.
	Jobs        int
	Executed    int
	CacheHits   int
	SinkSkipped int
	Rejected    int
	Elapsed     time.Duration
}

func (st Stats) String() string {
	return fmt.Sprintf("%d jobs: %d executed, %d cache hits, %d resumed, %d rejected in %v",
		st.Jobs, st.Executed, st.CacheHits, st.SinkSkipped, st.Rejected,
		st.Elapsed.Round(time.Millisecond))
}

// Run executes one shard of the suite through the cache-backed pipeline
// and returns this shard's records in job order. The record content is
// deterministic: a cache hit, a sink resume and a fresh execution of the
// same job yield identical records (only Stats and Record.Cached reveal
// the difference).
//
// Cancellation is cooperative: ctx is consulted between jobs and inside
// each job's execute/check. On cancellation Run stops dispatching, waits
// for in-flight jobs, and returns ctx.Err() (wrapped; errors.Is works).
// Every record completed before the cancel has already reached the sink,
// so the JSONL journal stays valid for -resume — the caller just Closes
// the sink instead of Finalizing it.
func Run(ctx context.Context, cfg Config) ([]Record, Stats, error) {
	var st Stats
	if cfg.Factory == nil {
		return nil, st, errors.New("pipeline: Config.Factory is required")
	}
	if cfg.Cache != nil && cfg.FSName == "" {
		return nil, st, errors.New("pipeline: Config.FSName is required when caching")
	}
	if cfg.Shards > 1 && (cfg.Shard < 0 || cfg.Shard >= cfg.Shards) {
		return nil, st, fmt.Errorf("pipeline: shard %d out of range [0,%d)", cfg.Shard, cfg.Shards)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	version := cfg.ModelVersion
	if version == "" {
		version = osspec.ModelVersion
	}
	tel := telemetry.Or(cfg.Tel)
	chk := checker.New(cfg.Spec)
	if cfg.MaxStateSet > 0 {
		chk.MaxStateSet = cfg.MaxStateSet
	}
	chk.TauWorkers = cfg.TauWorkers
	if chk.TauWorkers <= 0 {
		chk.TauWorkers = 1
	}
	chk.Tel = tel
	if !cfg.NoSharedCons {
		// One cons table per Run: a shard is the natural epoch (shards may
		// run on different machines), and the table resets itself if a
		// pathological suite outgrows the in-shard cap.
		chk.Memo = osspec.NewConsTable(0)
	}
	if cfg.Sink != nil {
		cfg.Sink.SetTelemetry(tel)
	}
	if cfg.Cache != nil {
		cfg.Cache.SetTelemetry(tel)
	}

	specHash := SpecHash(version, cfg.Spec)
	configHash := ConfigHash(cfg.FSName, cfg.Concurrent, cfg.SchedSeed, chk.MaxStateSet)

	// Keys for the FULL suite (not just this shard): jobs need theirs, and
	// the sink prunes against the complete set so a resumed sink keeps
	// other shards' records but drops records of edited/removed scripts.
	hashScript := cfg.HashScript
	if hashScript == nil {
		hashScript = ScriptHash
	}
	keys := make([]string, len(cfg.Scripts))
	for i, s := range cfg.Scripts {
		keys[i] = Key(hashScript(s), specHash, configHash)
	}
	if cfg.Sink != nil {
		valid := make(map[string]bool, len(keys))
		for _, k := range keys {
			valid[k] = true
		}
		cfg.Sink.Restrict(valid)
	}

	// Shard selection: stable indices into the shared job list.
	var jobs []int
	for i := range cfg.Scripts {
		if cfg.Shards <= 1 || i%cfg.Shards == cfg.Shard {
			jobs = append(jobs, i)
		}
	}
	st.Jobs = len(jobs)

	start := time.Now()
	_, span := telemetry.StartSpan(ctx, tel, "pipeline.run")
	defer span.End()
	tel.Counter("pipeline.jobs").Add(int64(st.Jobs))
	records := make([]Record, len(jobs))
	errs := make([]error, len(jobs))
	var failed atomic.Bool // first job error stops further work
	var mu sync.Mutex      // st counters + log
	lastProgress := start
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idx {
				if failed.Load() || ctx.Err() != nil {
					continue // drain: completed records stay in sink/cache
				}
				jobStart := time.Now()
				rec, hit, skipped, err := runJob(ctx, cfg, chk, tel, cfg.Scripts[jobs[j]], keys[jobs[j]])
				records[j], errs[j] = rec, err
				if err != nil {
					failed.Store(true)
					continue
				}
				tel.Histogram("pipeline.job_ns").ObserveSince(jobStart)
				mu.Lock()
				switch {
				case skipped:
					st.SinkSkipped++
					tel.Counter("pipeline.resumed").Inc()
				case hit:
					st.CacheHits++
					tel.Counter("pipeline.cache_hits").Inc()
				default:
					st.Executed++
					tel.Counter("pipeline.executed").Inc()
				}
				if !rec.Accepted {
					st.Rejected++
					tel.Counter("pipeline.rejected").Inc()
				}
				if cfg.Observe != nil {
					cfg.Observe(rec)
				}
				if cfg.Log != nil {
					if now := time.Now(); now.Sub(lastProgress) >= progressInterval {
						lastProgress = now
						logProgress(cfg.Log, cfg.Name, st, now.Sub(start))
					}
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for j := range jobs {
		select {
		case idx <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	st.Elapsed = time.Since(start)
	// Group-commit barrier: every exit — success, job error, cancel —
	// passes through here, so each record that reached the cache is
	// durable whenever the resume journal is. On the failure paths the
	// flush is best-effort (the job error wins); on success it is checked.
	var flushErr error
	if cfg.Cache != nil {
		flushErr = cfg.Cache.Flush()
	}
	if chk.Memo != nil {
		cs := chk.Memo.Stats()
		tel.Counter("checker.cons_hits").Add(cs.Hits)
		tel.Counter("checker.cons_misses").Add(cs.Misses)
		tel.Counter("checker.cons_resets").Add(cs.Resets)
		tel.Gauge("checker.cons_retained").SetMax(int64(cs.Retained))
	}
	if err := ctx.Err(); err != nil {
		return nil, st, fmt.Errorf("pipeline: %s: %w", cfg.Name, err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	if flushErr != nil {
		return nil, st, fmt.Errorf("pipeline: %s: cache flush: %w", cfg.Name, flushErr)
	}
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "pipeline: %s: %s\n", cfg.Name, st)
	}
	return records, st, nil
}

// logProgress emits one rate-limited in-flight status line: completion,
// work split, cache hit rate over the jobs resolved so far, throughput
// and a naive remaining/rate ETA.
func logProgress(w io.Writer, name string, st Stats, elapsed time.Duration) {
	done := st.Executed + st.CacheHits + st.SinkSkipped
	if done == 0 || elapsed <= 0 {
		return
	}
	cached := st.CacheHits + st.SinkSkipped
	rate := float64(done) / elapsed.Seconds()
	eta := time.Duration(float64(st.Jobs-done) / rate * float64(time.Second)).Round(time.Second)
	fmt.Fprintf(w, "pipeline: %s: %d/%d traces (%d executed, %d cached %.0f%%, %.0f traces/s, ETA %s)\n",
		name, done, st.Jobs, st.Executed, cached,
		100*float64(cached)/float64(done), rate, eta)
}

// runJob resolves one script to its record: sink journal first, then the
// result cache, then a real execute-and-check (whose record is written
// back to both). With cfg.Cov the execute-and-check runs inside a
// coverage-collection window attributed to that registry. Phase latencies
// (cache lookup/store, execute, check, journal append) land in tel's
// histograms.
func runJob(ctx context.Context, cfg Config, chk *checker.Checker, tel *telemetry.Registry, s *trace.Script, key string) (rec Record, hit, skipped bool, err error) {
	if cfg.Sink != nil {
		if rec, ok := cfg.Sink.Lookup(key); ok {
			rec.Cached = true
			return rec, false, true, nil
		}
	}
	if cfg.Cache != nil {
		lookupStart := time.Now()
		rec, line, ok := cfg.Cache.getRecord(key)
		tel.Histogram("pipeline.cache_lookup_ns").ObserveSince(lookupStart)
		if ok {
			// The stored line IS the canonical journal encoding (Cached is
			// json:"-"), so a hit journals without a re-marshal.
			if cfg.Sink != nil {
				if err := cfg.Sink.AppendEncoded(rec, line); err != nil {
					return rec, true, false, err
				}
			}
			rec.Cached = true
			return rec, true, false, nil
		}
		tel.Counter("pipeline.cache_misses").Inc()
	}
	var t *trace.Trace
	var res checker.Result
	work := func() {
		execStart := time.Now()
		if cfg.Concurrent {
			t, err = exec.RunConcurrent(ctx, s, cfg.Factory, exec.ConcurrentOptions{
				Seeded: cfg.SchedSeed != 0,
				Seed:   cfg.SchedSeed,
			})
		} else {
			t, err = exec.Run(ctx, s, cfg.Factory)
		}
		tel.Histogram("pipeline.execute_ns").ObserveSince(execStart)
		if err == nil {
			checkStart := time.Now()
			res, err = chk.CheckCtx(ctx, t)
			tel.Histogram("pipeline.check_ns").ObserveSince(checkStart)
		}
	}
	if cfg.Cov != nil {
		cfg.Cov.Collect(work)
	} else {
		// Shared-registry runs evaluate under Guard so their hits can never
		// land inside another session's open attribution window.
		cov.Guard(work)
	}
	if err != nil {
		return Record{}, false, false, fmt.Errorf("pipeline: %s: %w", s.Name, err)
	}
	rec = NewRecord(key, t, res)
	if cfg.Cache != nil {
		storeStart := time.Now()
		err := cfg.Cache.PutRecord(rec)
		tel.Histogram("pipeline.cache_store_ns").ObserveSince(storeStart)
		if err != nil {
			return rec, false, false, err
		}
		tel.Counter("pipeline.cache_stores").Inc()
	}
	if cfg.Sink != nil {
		if err := cfg.Sink.Append(rec); err != nil {
			return rec, false, false, err
		}
	}
	return rec, false, false, nil
}
