// Package pipeline is the batch orchestration layer over the Fig 1 flow:
// it shards a suite of test scripts across a pool of workers (parallelism
// *across* traces, complementing the checker's within-trace TauWorkers),
// executes and checks each script, and streams one Record per trace to a
// crash-safe JSONL sink. A content-addressed result cache keyed by
//
//	(script hash, spec/model version hash, run-config hash)
//
// lets re-runs skip every trace whose inputs are unchanged: editing one
// script re-checks only that script, while bumping osspec.ModelVersion (or
// switching spec variant, implementation, executor mode or checker cap)
// invalidates everything. See ARCHITECTURE.md ("The cache key contract")
// for the exact key composition.
//
// The sink doubles as the resume journal: records append as jobs finish,
// a killed run leaves at worst one torn trailing line (dropped on reopen),
// and a resumed run skips every job whose key the sink already holds.
// Finalize rewrites the sink in canonical (name, key) order, so the final
// JSONL is byte-identical regardless of worker count, shard layout,
// cache state, or how many times the run was interrupted.
//
// Sharding composes with resume: `-shards N -shard K` selects every Nth
// job, so N machines (or N sequential invocations resuming into one sink)
// cover the suite exactly once, and ReadRecords/WriteRecords merge shard
// sinks into the same canonical form.
//
// Run takes a context and cancels cooperatively between jobs and inside
// each job's execute/check; because every completed record is already an
// atomic line in the sink, a cancelled run's journal is always a valid
// resume log — finishing it later yields the same canonical bytes as an
// uninterrupted run. Config.Observe streams records as jobs finish, and
// Config.Cov attributes each job's model coverage to an isolated
// cov.Registry instead of the process-wide counters.
//
// cmd/sfs-run is the CLI for this package; sfs-report and internal/fuzz
// reuse the cache and the record stream. sibylfs.Session.Run is the
// public facade.
package pipeline
