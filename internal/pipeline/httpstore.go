package pipeline

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// HTTPStore is a Store served over the wire by an sfs-serve daemon (or
// any server mounting StoreHandler): a fleet of CI clients pointing
// `sfs-run -store http://…` at one daemon share one warm
// content-addressed cache. The protocol is four verbs under /v1/store —
// GET/PUT a single key, POST a framed batch, POST flush — with every
// value CRC-verified end to end (crc32c over key‖value, the same
// checksum pack entries carry on disk).
//
// Semantics against the Store contract:
//
//   - Get checks the local write-behind batch first (read-your-writes),
//     then the server. A 404, a torn or truncated body, or a CRC
//     mismatch is a miss, never an error. When the server is
//     unreachable the optional Fallback store answers instead.
//   - Put appends to a bounded in-memory write-behind batch; crossing
//     the bound ships the batch inline. Put never fails on a network
//     fault — the cache is lossy by contract, and a dead cache server
//     must not kill a fleet's runs.
//   - Flush ships the outstanding batch (with retry/backoff on 5xx and
//     transport errors) and then asks the server to run its own Flush —
//     the group-commit barrier spans both sides. A batch that still
//     fails after retries degrades: it lands in the Fallback store when
//     one is configured, and is dropped (and counted) otherwise.
//
// All degradation is visible in telemetry: pipeline.http_fallback_gets,
// pipeline.http_fallback_puts and pipeline.http_dropped_puts say exactly
// how much traffic the server did not see.
type HTTPStore struct {
	base string
	opts HTTPStoreOptions

	mu       sync.Mutex
	pending  map[string][]byte // write-behind batch, keyed for read-your-writes
	inflight map[string][]byte // batches shipped but not yet acknowledged
	pendSize int
	closed   bool

	tmu sync.RWMutex
	tel *telemetry.Registry
}

// HTTPStoreOptions tune an HTTPStore; the zero value is ready for use.
type HTTPStoreOptions struct {
	// FlushBytes bounds the write-behind batch: crossing it ships the
	// batch inline (default 1 MiB).
	FlushBytes int
	// MaxRetries is how many times a failed request is retried (default
	// 3, so up to 4 attempts).
	MaxRetries int
	// RetryBackoff is the first retry's delay, doubling per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// Fallback is a local store consulted when the server cannot answer:
	// reads fall through to it, and batches that exhaust their retries
	// land in it instead of being dropped. Close closes it.
	Fallback Store
	// Client overrides the HTTP client (default: 30s overall timeout).
	Client *http.Client
}

// OpenHTTPStore validates the base URL ("http://host:port", with or
// without a trailing slash) and returns a remote store speaking the
// /v1/store protocol rooted there. No connection is attempted here — a
// daemon that comes up later is fine.
func OpenHTTPStore(base string, opts HTTPStoreOptions) (*HTTPStore, error) {
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("pipeline: http store: base URL %q must start with http:// or https://", base)
	}
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = 1 << 20
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 50 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPStore{
		base:     strings.TrimRight(base, "/"),
		opts:     opts,
		pending:  make(map[string][]byte),
		inflight: make(map[string][]byte),
		tel:      telemetry.Default,
	}, nil
}

// SetTelemetry attributes the store's remote-traffic metrics to reg
// (nil selects Default); Cache.SetTelemetry forwards through it.
func (h *HTTPStore) SetTelemetry(reg *telemetry.Registry) {
	h.tmu.Lock()
	h.tel = telemetry.Or(reg)
	h.tmu.Unlock()
	if ts, ok := h.opts.Fallback.(telemetrySetter); ok {
		ts.SetTelemetry(reg)
	}
}

func (h *HTTPStore) telemetry() *telemetry.Registry {
	h.tmu.RLock()
	defer h.tmu.RUnlock()
	return h.tel
}

// storeCRCHeader carries the crc32c(key‖value) checksum beside every
// value on the wire; a body that does not match it is treated as torn.
const storeCRCHeader = "X-Sfs-Crc32c"

// wireCRC is the end-to-end checksum: identical to the CRC pack entries
// carry, so a value round-trips server disk → wire → client unchanged
// under one checksum discipline.
func wireCRC(key string, val []byte) uint32 {
	sum := crc32.Checksum([]byte(key), packCRC)
	return crc32.Update(sum, packCRC, val)
}

// Get returns the bytes stored under key: the local write-behind batch
// first, then the server, then the fallback store. Network faults,
// torn bodies and CRC mismatches are misses, never errors.
func (h *HTTPStore) Get(key string) ([]byte, bool) {
	h.mu.Lock()
	if val, ok := h.pending[key]; ok {
		out := append([]byte(nil), val...)
		h.mu.Unlock()
		return out, true
	}
	if val, ok := h.inflight[key]; ok {
		out := append([]byte(nil), val...)
		h.mu.Unlock()
		return out, true
	}
	h.mu.Unlock()

	tel := h.telemetry()
	tel.Counter("pipeline.http_gets").Inc()
	defer tel.Histogram("pipeline.http_get_ns").ObserveSince(time.Now())
	resp, err := h.do(http.MethodGet, "/v1/store/"+key, nil)
	if err != nil {
		return h.fallbackGet(key)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		tel.Counter("pipeline.http_misses").Inc()
		if h.opts.Fallback != nil {
			// Authoritative remote miss, but a local fallback may still
			// hold the entry (e.g. it absorbed a degraded batch earlier).
			if val, ok := h.opts.Fallback.Get(key); ok {
				tel.Counter("pipeline.http_fallback_gets").Inc()
				return val, true
			}
		}
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		return h.fallbackGet(key)
	}
	val, err := io.ReadAll(resp.Body)
	if err != nil {
		// Torn mid-body: the connection died after the status line. A
		// miss re-executes one trace; an error would fail the run.
		tel.Counter("pipeline.http_torn").Inc()
		return nil, false
	}
	want, err := strconv.ParseUint(resp.Header.Get(storeCRCHeader), 16, 32)
	if err != nil || wireCRC(key, val) != uint32(want) {
		tel.Counter("pipeline.store_crc_errors").Inc()
		return nil, false
	}
	tel.Counter("pipeline.http_hits").Inc()
	return val, true
}

func (h *HTTPStore) fallbackGet(key string) ([]byte, bool) {
	tel := h.telemetry()
	tel.Counter("pipeline.http_errors").Inc()
	if h.opts.Fallback == nil {
		return nil, false
	}
	val, ok := h.opts.Fallback.Get(key)
	if ok {
		tel.Counter("pipeline.http_fallback_gets").Inc()
	}
	return val, ok
}

// Put appends the entry to the write-behind batch; crossing FlushBytes
// ships the batch inline. Visibility is immediate (Get consults the
// batch first); durability arrives with Flush. Put never surfaces
// network faults — degraded batches land in the fallback or are
// dropped, both counted.
func (h *HTTPStore) Put(key string, data []byte) error {
	if len(key) == 0 || len(key) > 0xffff {
		return fmt.Errorf("pipeline: http store: bad key length %d", len(key))
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return fmt.Errorf("pipeline: http store: closed")
	}
	if old, ok := h.pending[key]; ok {
		h.pendSize -= len(old)
	}
	val := append([]byte(nil), data...)
	h.pending[key] = val
	h.pendSize += len(val)
	if h.pendSize < h.opts.FlushBytes {
		h.mu.Unlock()
		return nil
	}
	batch := h.takeBatchLocked()
	h.mu.Unlock()
	h.shipBatch(batch)
	return nil
}

// takeBatchLocked moves the pending batch to the inflight set (still
// visible to Get) and returns it; the caller ships it outside the lock.
func (h *HTTPStore) takeBatchLocked() map[string][]byte {
	batch := h.pending
	h.pending = make(map[string][]byte)
	h.pendSize = 0
	for k, v := range batch {
		h.inflight[k] = v
	}
	return batch
}

// releaseBatch drops shipped entries from the inflight set.
func (h *HTTPStore) releaseBatch(batch map[string][]byte) {
	h.mu.Lock()
	for k := range batch {
		delete(h.inflight, k)
	}
	h.mu.Unlock()
}

// shipBatch sends one batch with retry/backoff; on exhausted retries it
// degrades to the fallback store (or drops, counted). The batch wire
// format is the pack entry layout — uint32 crc32c(key‖value), uint16
// keyLen, uint32 valLen, key, value, repeated — so both sides verify
// the same checksum the entries will carry at rest.
func (h *HTTPStore) shipBatch(batch map[string][]byte) {
	defer h.releaseBatch(batch)
	if len(batch) == 0 {
		return
	}
	tel := h.telemetry()
	var buf []byte
	for k, v := range batch {
		buf = binary.BigEndian.AppendUint32(buf, wireCRC(k, v))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(k)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, k...)
		buf = append(buf, v...)
	}
	resp, err := h.do(http.MethodPost, "/v1/store/batch", buf)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode < 300 {
			tel.Counter("pipeline.http_batches").Inc()
			tel.Counter("pipeline.http_batch_entries").Add(int64(len(batch)))
			return
		}
	}
	tel.Counter("pipeline.http_errors").Inc()
	if h.opts.Fallback != nil {
		for k, v := range batch {
			if h.opts.Fallback.Put(k, v) == nil {
				tel.Counter("pipeline.http_fallback_puts").Inc()
			}
		}
		return
	}
	tel.Counter("pipeline.http_dropped_puts").Add(int64(len(batch)))
}

// Flush ships the outstanding batch and runs the server-side Flush —
// the group-commit barrier covers the write-behind buffer, the wire,
// and the server's own store. Degraded batches divert to the fallback
// (then its Flush is the barrier for them); Flush itself only fails on
// a local fallback error, never on remote unavailability.
func (h *HTTPStore) Flush() error {
	h.mu.Lock()
	batch := h.takeBatchLocked()
	h.mu.Unlock()
	tel := h.telemetry()
	flushStart := time.Now()
	h.shipBatch(batch)
	if resp, err := h.do(http.MethodPost, "/v1/store/flush", nil); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	tel.Histogram("pipeline.http_flush_ns").ObserveSince(flushStart)
	if h.opts.Fallback != nil {
		return h.opts.Fallback.Flush()
	}
	return nil
}

// Close flushes and releases the store (closing the fallback).
func (h *HTTPStore) Close() error {
	err := h.Flush()
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	if h.opts.Fallback != nil {
		if cerr := h.opts.Fallback.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Stats asks the server for its store's contents; an unreachable
// server reports zero entries under the "http" backend name (the
// telemetry counters, not Stats, describe degraded traffic).
func (h *HTTPStore) Stats() StoreStats {
	st := StoreStats{Backend: "http"}
	resp, err := h.do(http.MethodGet, "/v1/store/stats", nil)
	if err != nil {
		return st
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return st
	}
	var remote StoreStats
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&remote) != nil {
		return st
	}
	st.Entries = remote.Entries
	st.Segments = remote.Segments
	st.Bytes = remote.Bytes
	if remote.Backend != "" {
		st.Backend = "http/" + remote.Backend
	}
	return st
}

// FallbackStats describes the local fallback store; ok is false when
// none is configured.
func (h *HTTPStore) FallbackStats() (StoreStats, bool) {
	if h.opts.Fallback == nil {
		return StoreStats{}, false
	}
	return h.opts.Fallback.Stats(), true
}

// do issues one request with retry/backoff: transport errors and 5xx
// responses are retried up to MaxRetries times with doubling delay;
// anything else returns as-is for the caller to interpret.
func (h *HTTPStore) do(method, path string, body []byte) (*http.Response, error) {
	tel := h.telemetry()
	backoff := h.opts.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, h.base+path, rd)
		if err != nil {
			return nil, err
		}
		resp, err := h.opts.Client.Do(req)
		if err == nil && resp.StatusCode < 500 {
			return resp, nil
		}
		if err == nil {
			lastErr = fmt.Errorf("pipeline: http store: %s %s: %s", method, path, resp.Status)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		} else {
			lastErr = err
		}
		if attempt >= h.opts.MaxRetries {
			return nil, lastErr
		}
		tel.Counter("pipeline.http_retries").Inc()
		time.Sleep(backoff)
		backoff *= 2
	}
}
