package pipeline

import "repro/internal/telemetry"

// Store is the persistence seam under the result cache: a flat
// content-addressed byte store keyed by hex digest strings. Two local
// implementations exist — PackStore (append-only pack segments with
// group-commit durability, the default) and DirStore (one file per key,
// the v1 layout, kept for compatibility and read-through migration) —
// and the interface is deliberately narrow enough that a remote store
// (HTTP, S3) can plug in behind the same Cache facade for a shared
// fleet-wide cache.
//
// Implementations must be safe for concurrent use: the pipeline's worker
// pool calls Get and Put from many goroutines at once.
type Store interface {
	// Get returns the bytes stored under key; ok is false on a miss.
	// Unreadable, torn or checksum-failing entries are misses — the
	// writer will overwrite them — never errors.
	Get(key string) ([]byte, bool)
	// Put stores data under key. A Put is immediately visible to Get on
	// the same store, but durability may be deferred until the next
	// Flush (the group-commit contract). Overwriting a key is allowed
	// and idempotent by the cache-key contract: the same key always
	// denotes the same bytes.
	Put(key string, data []byte) error
	// Flush makes every completed Put durable — the group-commit
	// barrier. One Flush covers the whole batch of Puts since the last.
	Flush() error
	// Close flushes, persists any index state, and releases resources.
	// The store is unusable afterwards.
	Close() error
	// Stats describes the store's current contents.
	Stats() StoreStats
}

// StoreStats summarises a store's contents for -cache-stats and tests.
type StoreStats struct {
	// Backend names the implementation ("pack", "dir").
	Backend string
	// Entries is the number of live keys.
	Entries int
	// Segments is the number of pack segments (0 for non-segment stores).
	Segments int
	// Bytes is the stored payload footprint: for PackStore the bytes of
	// all segment files (live and superseded entries alike), for
	// DirStore the summed size of the entry files.
	Bytes int64
}

// telemetrySetter is implemented by stores whose I/O metrics can be
// attributed to a specific registry; Cache.SetTelemetry forwards through
// it (remote stores may not implement it, which is fine).
type telemetrySetter interface {
	SetTelemetry(reg *telemetry.Registry)
}
