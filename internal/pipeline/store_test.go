package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/fsimpl"
	"repro/internal/telemetry"
	"repro/internal/testgen"
	"repro/internal/types"
)

// TestStoreRoundTrip pins the Store contract both backends share:
// Put-then-Get returns the bytes verbatim (before AND after a Flush),
// absent keys are plain misses, and overwriting a key is allowed.
func TestStoreRoundTrip(t *testing.T) {
	for _, open := range []struct {
		name string
		open func(dir string) (Store, error)
	}{
		{"pack", func(dir string) (Store, error) { return OpenPackStore(dir) }},
		{"dir", func(dir string) (Store, error) { return OpenDirStore(dir) }},
	} {
		t.Run(open.name, func(t *testing.T) {
			s, err := open.open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			key := testKey(7)
			if _, ok := s.Get(key); ok {
				t.Fatal("miss expected on empty store")
			}
			if err := s.Put(key, []byte("one")); err != nil {
				t.Fatal(err)
			}
			// Read-your-writes: visible before any flush.
			if v, ok := s.Get(key); !ok || string(v) != "one" {
				t.Fatalf("pre-flush get: %q, %v", v, ok)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			if v, ok := s.Get(key); !ok || string(v) != "one" {
				t.Fatalf("post-flush get: %q, %v", v, ok)
			}
			if err := s.Put(key, []byte("two")); err != nil {
				t.Fatal(err)
			}
			if v, ok := s.Get(key); !ok || string(v) != "two" {
				t.Fatalf("overwrite get: %q, %v", v, ok)
			}
			st := s.Stats()
			if st.Entries != 1 {
				t.Fatalf("stats entries = %d, want 1", st.Entries)
			}
		})
	}
}

// TestPackPersistence pins durability across process boundaries: entries
// written and Closed read back from a fresh open, from sidecars (no
// rebuild scan).
func TestPackPersistence(t *testing.T) {
	dir := t.TempDir()
	keys := packFill(t, dir, 50)

	reg := telemetry.NewRegistry()
	old := telemetry.Default
	telemetry.Default = reg
	defer func() { telemetry.Default = old }()

	p, err := OpenPackStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, k := range keys {
		if v, ok := p.Get(k); !ok || !strings.HasSuffix(string(v), k) {
			t.Fatalf("entry %s lost across reopen: %q, %v", k, v, ok)
		}
	}
	if n := reg.Counter("pipeline.index_rebuilds").Value(); n != 0 {
		t.Fatalf("clean reopen scanned %d segments, want sidecar loads only", n)
	}
}

// TestPackRotation forces segment rotation with tiny bounds and checks
// every entry stays readable across the segment boundary and across a
// reopen, and that Stats sees the extra segments.
func TestPackRotation(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPackStoreWith(dir, PackOptions{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 40; i++ {
		k := testKey(i)
		keys = append(keys, k)
		if err := p.Put(k, bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Segments < 2 {
		t.Fatalf("%d segments after overflow, want rotation", st.Segments)
	}
	if st.Entries != len(keys) {
		t.Fatalf("stats entries = %d, want %d", st.Entries, len(keys))
	}
	for i, k := range keys {
		if v, ok := p.Get(k); !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 50)) {
			t.Fatalf("entry %d unreadable after rotation", i)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenPackStoreWith(dir, PackOptions{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for i, k := range keys {
		if v, ok := p2.Get(k); !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 50)) {
			t.Fatalf("entry %d unreadable after rotation+reopen", i)
		}
	}
}

// TestPackOversizeEntry pins the escape hatch: an entry larger than
// MaxSegmentBytes still stores (in a segment of its own).
func TestPackOversizeEntry(t *testing.T) {
	p, err := OpenPackStoreWith(t.TempDir(), PackOptions{MaxSegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	big := bytes.Repeat([]byte("x"), 4096)
	if err := p.Put(testKey(1), big); err != nil {
		t.Fatal(err)
	}
	if v, ok := p.Get(testKey(1)); !ok || !bytes.Equal(v, big) {
		t.Fatal("oversize entry unreadable")
	}
}

// TestPackConcurrency hammers one store from many goroutines — the
// pipeline's worker pool shape — under the race detector.
func TestPackConcurrency(t *testing.T) {
	p, err := OpenPackStoreWith(t.TempDir(), PackOptions{MaxSegmentBytes: 4096, FlushBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := testKey(w*100 + i)
				val := []byte(fmt.Sprintf("worker %d item %d", w, i))
				if err := p.Put(k, val); err != nil {
					t.Error(err)
					return
				}
				if v, ok := p.Get(k); !ok || !bytes.Equal(v, val) {
					t.Errorf("read-your-writes failed for %s", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	if st.Entries != 400 {
		t.Fatalf("entries = %d, want 400", st.Entries)
	}
}

// TestCacheV1ReadThrough pins the migration story: opening a cache over a
// v1 file-per-key directory serves the old entries (through the DirStore
// fallback), writes new entries packed, and a pack entry shadows its v1
// counterpart.
func TestCacheV1ReadThrough(t *testing.T) {
	dir := t.TempDir()

	// Seed a v1 layout the way the old cache wrote it.
	v1, err := OpenDirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	oldKey := testKey(1)
	if err := v1.PutRecord(Record{Key: oldKey, Name: "old", Accepted: true}); err != nil {
		t.Fatal(err)
	}

	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.fallback == nil {
		t.Fatal("v1 layout not detected")
	}
	if rec, ok := c.GetRecord(oldKey); !ok || rec.Name != "old" {
		t.Fatalf("v1 entry not served read-through: %+v, %v", rec, ok)
	}
	newKey := testKey(2)
	if err := c.PutRecord(Record{Key: newKey, Name: "new", Accepted: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The new entry landed packed, not as a v1 file.
	if _, err := os.Stat(filepath.Join(dir, newKey[:2], newKey[2:]+".json")); !os.IsNotExist(err) {
		t.Fatal("new entry written to the v1 layout")
	}
	if _, err := os.Stat(filepath.Join(dir, "pack", "000001.seg")); err != nil {
		t.Fatalf("no pack segment created: %v", err)
	}

	// A fresh open still serves both.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if rec, ok := c2.GetRecord(oldKey); !ok || rec.Name != "old" {
		t.Fatal("v1 entry lost after pack writes")
	}
	if rec, ok := c2.GetRecord(newKey); !ok || rec.Name != "new" {
		t.Fatal("packed entry lost")
	}
}

// TestCacheFreshDirHasNoFallback pins that a fresh (or pack-only) cache
// directory skips the DirStore fallback entirely.
func TestCacheFreshDirHasNoFallback(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.fallback != nil {
		t.Fatal("fallback store opened for a fresh directory")
	}
	if st := c.Stats(); st.Backend != "pack" {
		t.Fatalf("backend = %q, want pack", st.Backend)
	}
}

// storeSuiteConfig builds a small real pipeline config against the
// determinized model (execution is hermetic and fast).
func storeSuiteConfig(t *testing.T, cache *Cache, sink *Sink) Config {
	t.Helper()
	scripts := testgen.Generate().Scripts
	if len(scripts) > 60 {
		scripts = scripts[:60]
	}
	spec := types.Spec{Platform: types.PlatformLinux, Permissions: true}
	return Config{
		Name:    "store-parity",
		Scripts: scripts,
		Factory: fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
		FSName:  "ext4",
		Spec:    spec,
		Workers: 4,
		Cache:   cache,
		Sink:    sink,
	}
}

// TestBackendJSONLParity is the tentpole's acceptance property: the
// finalized JSONL is byte-identical whether the run used PackStore,
// DirStore, or a warm v1 cache served read-through into a pack cache.
func TestBackendJSONLParity(t *testing.T) {
	run := func(t *testing.T, cache *Cache, jsonl string) []byte {
		t.Helper()
		sink, err := OpenSink(jsonl, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := Run(context.Background(), storeSuiteConfig(t, cache, sink)); err != nil {
			t.Fatal(err)
		}
		if err := sink.Finalize(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(jsonl)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// Cold pack-backed run.
	packDir := t.TempDir()
	packCache, err := OpenCache(packDir)
	if err != nil {
		t.Fatal(err)
	}
	packOut := run(t, packCache, filepath.Join(t.TempDir(), "pack.jsonl"))
	if err := packCache.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold dir-backed (v1) run.
	dirDir := t.TempDir()
	dirCache, err := OpenDirCache(dirDir)
	if err != nil {
		t.Fatal(err)
	}
	dirOut := run(t, dirCache, filepath.Join(t.TempDir(), "dir.jsonl"))

	if !bytes.Equal(packOut, dirOut) {
		t.Fatal("finalized JSONL differs between pack and dir backends")
	}

	// Warm run over the v1 cache through the migrating pack cache: every
	// job must come from the fallback (executed = 0) and the bytes must
	// still match.
	migCache, err := OpenCache(dirDir)
	if err != nil {
		t.Fatal(err)
	}
	defer migCache.Close()
	reg := telemetry.NewRegistry()
	sink, err := OpenSink(filepath.Join(t.TempDir(), "mig.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeSuiteConfig(t, migCache, sink)
	cfg.Tel = reg
	if _, st, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	} else if st.Executed != 0 {
		t.Fatalf("warm v1 read-through executed %d jobs, want 0", st.Executed)
	}
	if err := sink.Finalize(); err != nil {
		t.Fatal(err)
	}
	migOut, err := os.ReadFile(sink.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(packOut, migOut) {
		t.Fatal("finalized JSONL differs between cold pack run and v1 read-through run")
	}
	if reg.Counter("pipeline.cache_hits").Value() == 0 {
		t.Fatal("read-through run recorded no cache hits")
	}
}

// TestPipelineFlushesCacheOnCancel pins the group-commit contract at the
// pipeline level: records completed before a cancellation are durable in
// the pack (a fresh open of the same directory sees them) even though the
// run returned ctx.Err and nobody Closed the cache.
func TestPipelineFlushesCacheOnCancel(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeSuiteConfig(t, cache, nil)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	cfg.Observe = func(Record) {
		n++
		if n == 10 {
			cancel()
		}
	}
	_, st, err := Run(ctx, cfg)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if st.Executed == 0 {
		t.Skip("cancelled before any job completed")
	}
	// No Close: simulate the process dying right after Run returns by
	// opening the directory fresh and counting durable entries.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.Stats().Entries; got < st.Executed {
		t.Fatalf("durable entries %d < executed %d: cancel path lost the flush", got, st.Executed)
	}
}
