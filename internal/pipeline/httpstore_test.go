package pipeline

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// storeFixture builds one Store backend for the shared conformance
// suite. corrupt damages the stored entry for key (whose value is val)
// in whatever way that backend can be damaged — deleting the v1 file,
// bit-flipping pack segment bytes, tampering the wire body — after
// which the contract demands a miss, never an error.
type storeFixture struct {
	name  string
	setup func(t *testing.T) (Store, func(t *testing.T, key string, val []byte))
}

func storeFixtures() []storeFixture {
	return []storeFixture{
		{
			name: "dir",
			setup: func(t *testing.T) (Store, func(*testing.T, string, []byte)) {
				d, err := OpenDirStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				corrupt := func(t *testing.T, key string, _ []byte) {
					// The v1 store has no checksums; its corruption mode is
					// an unreadable file, which Get documents as a miss.
					if err := os.Remove(d.path(key)); err != nil {
						t.Fatal(err)
					}
				}
				return d, corrupt
			},
		},
		{
			name: "pack",
			setup: func(t *testing.T) (Store, func(*testing.T, string, []byte)) {
				dir := t.TempDir()
				p, err := OpenPackStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				corrupt := func(t *testing.T, _ string, val []byte) {
					if err := p.Flush(); err != nil {
						t.Fatal(err)
					}
					flipValueOnDisk(t, dir, val)
				}
				return p, corrupt
			},
		},
		{
			name: "http",
			setup: func(t *testing.T) (Store, func(*testing.T, string, []byte)) {
				backing, err := OpenPackStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { backing.Close() })
				var mu sync.Mutex
				tampered := map[string]bool{}
				inner := NewStoreHandler(backing, telemetry.NewRegistry())
				srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					key := strings.TrimPrefix(r.URL.Path, "/v1/store/")
					mu.Lock()
					bad := r.Method == http.MethodGet && tampered[key]
					mu.Unlock()
					if !bad {
						inner.ServeHTTP(w, r)
						return
					}
					// Serve the true CRC header over a bit-flipped body —
					// exactly what a torn cache entry looks like on the wire.
					val, ok := backing.Get(key)
					if !ok {
						http.Error(w, "miss", http.StatusNotFound)
						return
					}
					w.Header().Set(storeCRCHeader, strconv.FormatUint(uint64(wireCRC(key, val)), 16))
					mangled := append([]byte(nil), val...)
					mangled[0] ^= 0x01
					w.Write(mangled)
				}))
				t.Cleanup(srv.Close)
				h, err := OpenHTTPStore(srv.URL, HTTPStoreOptions{})
				if err != nil {
					t.Fatal(err)
				}
				corrupt := func(t *testing.T, key string, _ []byte) {
					if err := h.Flush(); err != nil {
						t.Fatal(err)
					}
					mu.Lock()
					tampered[key] = true
					mu.Unlock()
				}
				return h, corrupt
			},
		},
	}
}

// flipValueOnDisk locates val's bytes inside any file under dir and
// flips one bit — simulated at-rest corruption for checksummed stores.
func flipValueOnDisk(t *testing.T, dir string, val []byte) {
	t.Helper()
	var flipped bool
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || flipped {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		i := bytes.Index(data, val)
		if i < 0 {
			return nil
		}
		data[i] ^= 0x01
		flipped = true
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !flipped {
		t.Fatal("value bytes not found in any file; cannot corrupt")
	}
}

// TestStoreConformance pins the Store contract every backend must obey
// — local pack, v1 dir, and the remote HTTP store all behind one
// table: round-trip, overwrite idempotence, Flush visibility, and
// corruption-is-a-miss (never an error).
func TestStoreConformance(t *testing.T) {
	for _, fx := range storeFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			s, corrupt := fx.setup(t)
			defer s.Close()

			key, val := testKey(1), []byte("conformance value one")
			if _, ok := s.Get(key); ok {
				t.Fatal("miss expected on empty store")
			}
			if err := s.Put(key, val); err != nil {
				t.Fatal(err)
			}
			// Read-your-writes before any Flush.
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, val) {
				t.Fatalf("pre-flush get: %q, %v", got, ok)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, val) {
				t.Fatalf("post-flush get: %q, %v", got, ok)
			}

			// Overwrite idempotence: same bytes again, then new bytes.
			if err := s.Put(key, val); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, val) {
				t.Fatalf("idempotent re-put get: %q, %v", got, ok)
			}
			val2 := []byte("conformance value two")
			if err := s.Put(key, val2); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, val2) {
				t.Fatalf("overwrite get: %q, %v", got, ok)
			}

			// Corruption is a miss, never an error — and other keys are
			// unaffected.
			victim, victimVal := testKey(2), []byte("victim value with unique bytes 0xDECAFBAD")
			if err := s.Put(victim, victimVal); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			corrupt(t, victim, victimVal)
			if got, ok := s.Get(victim); ok {
				t.Fatalf("corrupted entry served as a hit: %q", got)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, val2) {
				t.Fatalf("healthy key lost after corrupting another: %q, %v", got, ok)
			}
		})
	}
}

// fastHTTPOpts keeps fault-path tests quick: one retry, 1ms backoff.
func fastHTTPOpts(fallback Store) HTTPStoreOptions {
	return HTTPStoreOptions{
		MaxRetries:   1,
		RetryBackoff: 1,
		Fallback:     fallback,
	}
}

// TestHTTPStoreServerDownFallback pins the degradation ladder when the
// daemon is unreachable mid-batch: Put and Flush still succeed, the
// batch lands in the local fallback store, and reads are answered from
// it — the run survives, telemetry says what the server never saw.
func TestHTTPStoreServerDownFallback(t *testing.T) {
	srv := httptest.NewServer(NewStoreHandler(mustPack(t), telemetry.NewRegistry()))
	url := srv.URL
	srv.Close() // server is down before the first byte

	fallback, err := OpenPackStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h, err := OpenHTTPStore(url, fastHTTPOpts(fallback))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	h.SetTelemetry(reg)

	key, val := testKey(3), []byte("survives the outage")
	if err := h.Put(key, val); err != nil {
		t.Fatalf("Put must not surface network faults: %v", err)
	}
	if err := h.Flush(); err != nil {
		t.Fatalf("Flush must not surface remote unavailability: %v", err)
	}
	if got, ok := h.Get(key); !ok || !bytes.Equal(got, val) {
		t.Fatalf("fallback read: %q, %v", got, ok)
	}
	if n := reg.Counter("pipeline.http_fallback_puts").Value(); n != 1 {
		t.Fatalf("http_fallback_puts = %d, want 1", n)
	}
	if n := reg.Counter("pipeline.http_fallback_gets").Value(); n == 0 {
		t.Fatal("http_fallback_gets not counted")
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPStoreServerDownNoFallback: with no fallback configured the
// batch is dropped — counted, not fatal — and reads are plain misses.
func TestHTTPStoreServerDownNoFallback(t *testing.T) {
	h, err := OpenHTTPStore("http://127.0.0.1:1", fastHTTPOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	h.SetTelemetry(reg)

	key := testKey(4)
	if err := h.Put(key, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := h.Flush(); err != nil {
		t.Fatalf("Flush must not fail on a dead server: %v", err)
	}
	if _, ok := h.Get(key); ok {
		t.Fatal("dropped entry must read as a miss")
	}
	if n := reg.Counter("pipeline.http_dropped_puts").Value(); n != 1 {
		t.Fatalf("http_dropped_puts = %d, want 1", n)
	}
}

// TestHTTPStoreRetries5xx pins retry/backoff: transient 5xx responses
// are retried with backoff and the request then succeeds; the retries
// are visible in telemetry.
func TestHTTPStoreRetries5xx(t *testing.T) {
	backing := mustPack(t)
	inner := NewStoreHandler(backing, telemetry.NewRegistry())
	var mu sync.Mutex
	failures := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		fail := failures > 0
		if fail {
			failures--
		}
		mu.Unlock()
		if fail {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	h, err := OpenHTTPStore(srv.URL, HTTPStoreOptions{MaxRetries: 3, RetryBackoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	h.SetTelemetry(reg)

	key, val := testKey(5), []byte("after retries")
	if err := h.Put(key, val); err != nil {
		t.Fatal(err)
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := backing.Get(key); !ok {
		t.Fatal("batch did not reach the server after retries")
	}
	if n := reg.Counter("pipeline.http_retries").Value(); n != 2 {
		t.Fatalf("http_retries = %d, want 2", n)
	}
	if n := reg.Counter("pipeline.http_batches").Value(); n != 1 {
		t.Fatalf("http_batches = %d, want 1", n)
	}
}

// TestHTTPStoreTornResponseBody pins the torn-read path: a response
// that dies mid-body (Content-Length promises more than arrives) is a
// miss, never an error, and is counted as pipeline.http_torn.
func TestHTTPStoreTornResponseBody(t *testing.T) {
	backing := mustPack(t)
	inner := NewStoreHandler(backing, telemetry.NewRegistry())
	key, val := testKey(6), []byte("this body will be cut short on the wire")
	if err := backing.Put(key, val); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, key) {
			w.Header().Set(storeCRCHeader, strconv.FormatUint(uint64(wireCRC(key, val)), 16))
			w.Header().Set("Content-Length", strconv.Itoa(len(val)))
			w.Write(val[:len(val)/2]) // connection closes with bytes owed
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	h, err := OpenHTTPStore(srv.URL, fastHTTPOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	h.SetTelemetry(reg)

	if _, ok := h.Get(key); ok {
		t.Fatal("torn body served as a hit")
	}
	if n := reg.Counter("pipeline.http_torn").Value(); n != 1 {
		t.Fatalf("http_torn = %d, want 1", n)
	}
}

// TestHTTPStoreBatchRejectsBadCRC pins the server-side verification:
// a batch whose entry CRC does not match is rejected whole (400) and
// nothing from it is stored.
func TestHTTPStoreBatchRejectsBadCRC(t *testing.T) {
	backing := mustPack(t)
	srv := httptest.NewServer(NewStoreHandler(backing, telemetry.NewRegistry()))
	defer srv.Close()

	key, val := testKey(7), []byte("tampered in transit")
	var buf []byte
	buf = appendBatchEntry(buf, key, val)
	buf[0] ^= 0x01 // break the CRC
	resp, err := http.Post(srv.URL+"/v1/store/batch", "application/octet-stream", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if _, ok := backing.Get(key); ok {
		t.Fatal("CRC-failing batch entry was stored")
	}
}

// appendBatchEntry frames one entry in the batch wire format.
func appendBatchEntry(buf []byte, key string, val []byte) []byte {
	buf = append(buf, byte(wireCRC(key, val)>>24), byte(wireCRC(key, val)>>16), byte(wireCRC(key, val)>>8), byte(wireCRC(key, val)))
	buf = append(buf, byte(len(key)>>8), byte(len(key)))
	buf = append(buf, byte(len(val)>>24), byte(len(val)>>16), byte(len(val)>>8), byte(len(val)))
	buf = append(buf, key...)
	buf = append(buf, val...)
	return buf
}

// TestHTTPStoreStats pins Stats plumbing: the client reports the
// server store's contents under a combined backend name.
func TestHTTPStoreStats(t *testing.T) {
	backing := mustPack(t)
	srv := httptest.NewServer(NewStoreHandler(backing, telemetry.NewRegistry()))
	defer srv.Close()

	h, err := OpenHTTPStore(srv.URL, HTTPStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Put(testKey(8), []byte("counted")); err != nil {
		t.Fatal(err)
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Backend != "http/pack" {
		t.Fatalf("backend = %q, want http/pack", st.Backend)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

func mustPack(t *testing.T) *PackStore {
	t.Helper()
	p, err := OpenPackStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}
