package pipeline

// Cancellation contract of the pipeline: a cancelled run reports
// context.Canceled (wrapped, errors.Is-visible), keeps every completed
// record in the sink journal, and a resumed run completes the suite with
// a finalized file byte-identical to an uninterrupted run's.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/fsimpl"
	"repro/internal/types"
)

func TestRunCancelledKeepsResumableSink(t *testing.T) {
	scripts := testScripts(t, 24)
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.jsonl")
	killed := filepath.Join(dir, "killed.jsonl")
	base := Config{
		Name:    "ctx",
		Scripts: scripts,
		Factory: fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
		FSName:  "ext4",
		Spec:    types.DefaultSpec(),
		Workers: 2,
	}

	// Baseline.
	cfg := base
	sink, err := OpenSink(clean, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sink = sink
	if _, _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if err := sink.Finalize(); err != nil {
		t.Fatal(err)
	}

	// Cancel after the third record lands.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var n int
	cfg = base
	cfg.Observe = func(Record) {
		mu.Lock()
		n++
		if n == 3 {
			cancel()
		}
		mu.Unlock()
	}
	if sink, err = OpenSink(killed, false); err != nil {
		t.Fatal(err)
	}
	cfg.Sink = sink
	_, _, err = Run(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	sink.Close()

	// Resume to completion and finalize.
	if sink, err = OpenSink(killed, true); err != nil {
		t.Fatal(err)
	}
	journaled := sink.Len()
	if journaled < 3 || journaled >= len(scripts) {
		t.Fatalf("journal holds %d records, want a strict partial ≥ 3 of %d", journaled, len(scripts))
	}
	cfg = base
	cfg.Sink = sink
	_, st, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.SinkSkipped != journaled {
		t.Fatalf("resume skipped %d, want %d", st.SinkSkipped, journaled)
	}
	if err := sink.Finalize(); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(killed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed journal differs from the uninterrupted run's")
	}
}
