package pipeline

import (
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// atomicWriteFile writes data to path through a temp file in the same
// directory: write, fsync, chmod 0644, rename, fsync the directory. The
// fsync before rename is what makes the rename a durability barrier — on
// many file systems rename alone only orders metadata, so a crash shortly
// after could surface the *renamed* file with empty or torn content,
// defeating the whole point of the temp-file dance. The chmod undoes
// os.CreateTemp's 0600: cache entries and finalized JSONL are shared
// artifacts (multi-user cache dirs, CI artifact upload), not secrets.
// The directory fsync persists the rename itself.
func atomicWriteFile(path, pattern string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return err
	}
	if err := writeSyncClose(tmp, data); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dir)
}

func writeSyncClose(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// orphanAge is how old an atomic-write temp file must be before the
// open-time sweep reclaims it. A kill between CreateTemp and Rename leaks
// the temp file forever (nothing else knows its random name); the age
// guard keeps the sweep from racing a live writer's in-flight file.
const orphanAge = time.Hour

// sweepOrphans removes abandoned atomic-write temp files: entries of dir
// whose name starts with prefix and whose mtime is older than orphanAge.
// Best-effort hygiene — all errors are ignored; a file that can't be
// statted or removed will be caught by a later open.
func sweepOrphans(dir, prefix string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-orphanAge)
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		info, err := e.Info()
		if err != nil || !info.ModTime().Before(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(dir, e.Name())) == nil {
			telemetry.Default.Counter("pipeline.orphans_swept").Inc()
		}
	}
}
