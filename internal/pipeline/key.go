package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/trace"
	"repro/internal/types"
)

// SpecHash digests the model identity: the model version (bumped on any
// semantic change to the specification — see osspec.ModelVersion) and the
// variant/trait mix the checker is configured with. Two runs share cached
// results only if their SpecHash agrees.
func SpecHash(modelVersion string, spec types.Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "model=%s\nplatform=%s\npermissions=%t\ntimestamps=%t\nrootuser=%t\ncrash=%t\n",
		modelVersion, spec.Platform, spec.Permissions, spec.Timestamps, spec.RootUser, spec.Crash)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ConfigHash digests everything else that can change a verdict: the
// implementation under test, the executor mode (sequential vs concurrent,
// and the scheduler seed when seeded), and the checker's state-set cap.
// Worker counts are deliberately absent — the checker's determinism
// contract guarantees results do not depend on them.
func ConfigHash(fsName string, concurrent bool, schedSeed int64, maxStateSet int) string {
	h := sha256.New()
	fmt.Fprintf(h, "fs=%s\nconcurrent=%t\nseed=%d\ncap=%d\n",
		fsName, concurrent, schedSeed, maxStateSet)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ScriptHash digests a script's rendered text (which includes its name, so
// two identical command sequences under different names cache separately
// and records keep honest names).
func ScriptHash(s *trace.Script) string {
	sum := sha256.Sum256([]byte(s.Render()))
	return hex.EncodeToString(sum[:])[:24]
}

// Key combines the three component hashes into the content address of one
// checked-trace result. The same key always denotes the same verdict
// bytes; that is the whole cache contract.
func Key(scriptHash, specHash, configHash string) string {
	sum := sha256.Sum256([]byte(scriptHash + "\x00" + specHash + "\x00" + configHash))
	return hex.EncodeToString(sum[:])
}
