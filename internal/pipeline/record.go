package pipeline

import (
	"repro/internal/analysis"
	"repro/internal/checker"
	"repro/internal/trace"
)

// RecordError is one checker diagnosis in its serialized form, mirroring
// checker.StepError field for field.
type RecordError struct {
	Line     int      `json:"line"`
	Observed string   `json:"observed"`
	Allowed  []string `json:"allowed,omitempty"`
}

// Record is one checked trace as the pipeline persists it: the cache key,
// the full checker verdict (every Result observable, so summaries need no
// traces in memory), and the rendered checked trace (Fig 4), so `.checked`
// files and diagnosis digests can be produced from cache hits without
// re-execution. Every field is deterministic — no timestamps, durations or
// hit/miss provenance — which is what makes the finalized JSONL
// byte-identical across shard layouts, resumes and cache states.
type Record struct {
	Key      string        `json:"key"`
	Name     string        `json:"name"`
	Accepted bool          `json:"accepted"`
	Errors   []RecordError `json:"errors,omitempty"`
	Steps    int           `json:"steps"`
	// MaxStates, TauExpansions and SumStates are the oracle work metrics of
	// checker.Result, preserved so aggregated summaries match a monolithic
	// in-memory run exactly.
	MaxStates     int    `json:"max_states"`
	TauExpansions int    `json:"tau_expansions"`
	SumStates     int    `json:"sum_states"`
	CapHit        bool   `json:"cap_hit,omitempty"`
	Checked       string `json:"checked"`

	// Cached reports whether this record came from the result cache rather
	// than a fresh execution. Run-local provenance only: never serialized.
	Cached bool `json:"-"`
}

// NewRecord builds the record for one freshly checked trace.
func NewRecord(key string, t *trace.Trace, r checker.Result) Record {
	rec := Record{
		Key:           key,
		Name:          r.Name,
		Accepted:      r.Accepted,
		Steps:         r.Steps,
		MaxStates:     r.MaxStates,
		TauExpansions: r.TauExpansions,
		SumStates:     r.SumStates,
		CapHit:        r.StateSetCapHit,
		Checked:       checker.RenderChecked(t, r),
	}
	if rec.Name == "" {
		rec.Name = t.Name
	}
	for _, e := range r.Errors {
		rec.Errors = append(rec.Errors, RecordError{
			Line: e.Line, Observed: e.Observed, Allowed: e.Allowed,
		})
	}
	return rec
}

// Result reconstitutes the checker verdict the record was built from.
func (rec Record) Result() checker.Result {
	r := checker.Result{
		Name:           rec.Name,
		Accepted:       rec.Accepted,
		Steps:          rec.Steps,
		MaxStates:      rec.MaxStates,
		TauExpansions:  rec.TauExpansions,
		SumStates:      rec.SumStates,
		StateSetCapHit: rec.CapHit,
	}
	for _, e := range rec.Errors {
		r.Errors = append(r.Errors, checker.StepError{
			Line: e.Line, Observed: e.Observed, Allowed: e.Allowed,
		})
	}
	return r
}

// Summarise aggregates records into the standard analysis.RunSummary —
// the bridge that lets sfs-run and sfs-report report from a JSONL sink
// instead of a monolithic in-memory ([]Trace, []Result) pair.
func Summarise(config string, records []Record) *analysis.RunSummary {
	results := make([]checker.Result, len(records))
	for i, rec := range records {
		results[i] = rec.Result()
	}
	return analysis.Summarise(config, nil, results)
}
