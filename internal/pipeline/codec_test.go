package pipeline

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func codecTestRecord() Record {
	rec := Record{Key: "k0", Name: "t_open.script"}
	rec.Errors = []RecordError{
		{Line: 3, Observed: "ENOENT", Allowed: []string{"EACCES", "EPERM"}},
		{Line: 7, Observed: "RV_NONE", Allowed: nil},
	}
	rec.Steps = 12
	rec.MaxStates = 34
	rec.TauExpansions = 5
	rec.SumStates = 99
	rec.CapHit = true
	rec.Checked = "@ t_open.script\nopen \"f\" [O_RDONLY]\nENOENT\n"
	return rec
}

func TestRecordCodecRoundTrip(t *testing.T) {
	rec := codecTestRecord()
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeRecord(rec, line)
	got, gotLine, ok := decodeRecord(data, rec.Key)
	if !ok {
		t.Fatal("decodeRecord: not ok")
	}
	if !bytes.Equal(gotLine, line) {
		t.Fatalf("embedded line mismatch:\n got %q\nwant %q", gotLine, line)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("record mismatch:\n got %+v\nwant %+v", got, rec)
	}
}

func TestRecordCodecBareJSON(t *testing.T) {
	rec := codecTestRecord()
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, gotLine, ok := decodeRecord(line, rec.Key)
	if !ok {
		t.Fatal("decodeRecord on bare JSON: not ok")
	}
	if !bytes.Equal(gotLine, line) {
		t.Fatal("bare JSON entry must return itself as the line")
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("record mismatch:\n got %+v\nwant %+v", got, rec)
	}
}

func TestRecordCodecDamagedBinaryFallsBackToJSON(t *testing.T) {
	rec := codecTestRecord()
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeRecord(rec, line)
	// Truncate into the binary tail: the embedded JSON (which sits right
	// after the magic and length) stays intact and must win.
	for _, cut := range []int{len(data) - 1, len(data) - 10, len(recMagic) + 4 + len(line)} {
		got, gotLine, ok := decodeRecord(data[:cut], rec.Key)
		if !ok {
			t.Fatalf("cut=%d: decode failed despite intact embedded JSON", cut)
		}
		if !bytes.Equal(gotLine, line) {
			t.Fatalf("cut=%d: line mismatch", cut)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("cut=%d: record mismatch", cut)
		}
	}
	// Garbage that is neither framed nor JSON is a miss, not an error.
	if _, _, ok := decodeRecord([]byte("sfsrec1\x00\xff\xff\xff\xff"), "k"); ok {
		t.Fatal("framed garbage decoded as ok")
	}
	if _, _, ok := decodeRecord([]byte("not json"), "k"); ok {
		t.Fatal("non-JSON garbage decoded as ok")
	}
}
