package pipeline

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestCacheEntryPermissions pins the shared-artifact contract: entries
// land world-readable (0644), not with os.CreateTemp's private 0600 —
// a cache directory is meant to be shareable across users and CI stages.
// Checked for both backends: DirStore's per-key files and PackStore's
// segment and sidecar files.
func TestCacheEntryPermissions(t *testing.T) {
	key := strings.Repeat("ab", 32)

	dirDir := t.TempDir()
	d, err := OpenDirStore(dirDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(key, []byte(`{"name":"x"}`)); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(d.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("dir store entry mode %o, want 644", perm)
	}

	packDir := t.TempDir()
	p, err := OpenPackStore(packDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put(key, []byte(`{"name":"x"}`)); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"000001.seg", "000001.idx"} {
		info, err := os.Stat(filepath.Join(packDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if perm := info.Mode().Perm(); perm != 0o644 {
			t.Fatalf("pack store %s mode %o, want 644", name, perm)
		}
	}
}

// TestFinalizedSinkPermissions does the same for the finalized JSONL.
func TestFinalizedSinkPermissions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := WriteRecords(path, []Record{{Key: "k1", Name: "a"}}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("finalized sink mode %o, want 644", perm)
	}
}

// TestOrphanSweepOnOpen simulates a kill between CreateTemp and Rename:
// the leaked temp files (backdated past orphanAge) must be reclaimed the
// next time the cache or sink is opened, while a live writer's fresh temp
// file and ordinary payload files survive untouched.
func TestOrphanSweepOnOpen(t *testing.T) {
	dir := t.TempDir()

	// Cache orphans live in the two-hex-digit fan-out subdirectories.
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(sub, ".tmp-dead123")
	fresh := filepath.Join(sub, ".tmp-live456")
	entry := filepath.Join(sub, "cdef.json")
	for _, p := range []string{old, fresh, entry} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-2 * orphanAge)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatal("stale cache orphan survived OpenCache")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp file (possible live writer) was swept")
	}
	if _, err := os.Stat(entry); err != nil {
		t.Fatal("cache entry was swept")
	}

	// Sink orphans (.jsonl-*, from a kill mid-Finalize) live next to the
	// sink file.
	sinkDir := t.TempDir()
	oldSink := filepath.Join(sinkDir, ".jsonl-dead")
	freshSink := filepath.Join(sinkDir, ".jsonl-live")
	for _, p := range []string{oldSink, freshSink} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Chtimes(oldSink, stale, stale); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSink(filepath.Join(sinkDir, "run.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(oldSink); !os.IsNotExist(err) {
		t.Fatal("stale sink orphan survived OpenSink")
	}
	if _, err := os.Stat(freshSink); err != nil {
		t.Fatal("fresh sink temp file was swept")
	}
}

// packFill writes n deterministic records through a PackStore and closes
// it, returning the keys in write order.
func packFill(t *testing.T, dir string, n int) []string {
	t.Helper()
	p, err := OpenPackStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = testKey(i)
		if err := p.Put(keys[i], []byte(strings.Repeat("v", 64)+keys[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return keys
}

// testKey derives a distinct 64-hex-char key from i (the shape real
// SHA-256 keys have).
func testKey(i int) string {
	return strings.Repeat("0", 60) + string([]byte{
		hexDigit(i >> 12), hexDigit(i >> 8), hexDigit(i >> 4), hexDigit(i),
	})
}

func hexDigit(i int) byte {
	return "0123456789abcdef"[i&0xf]
}

// TestPackTruncatedTailSegment pins crash recovery: a segment whose tail
// was torn mid-append (simulated by truncating into the last entry) loses
// exactly the torn entry — earlier entries still read back verbatim, the
// file is cut back to the last intact boundary, and the lost key is a
// plain miss, never an error or a torn record.
func TestPackTruncatedTailSegment(t *testing.T) {
	dir := t.TempDir()
	keys := packFill(t, dir, 10)

	segPath := filepath.Join(dir, "000001.seg")
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	p, err := OpenPackStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, k := range keys[:9] {
		v, ok := p.Get(k)
		if !ok {
			t.Fatalf("intact entry %s lost after tail truncation", k)
		}
		if string(v) != strings.Repeat("v", 64)+k {
			t.Fatalf("intact entry %s corrupted after tail truncation", k)
		}
	}
	if _, ok := p.Get(keys[9]); ok {
		t.Fatal("torn tail entry served instead of missing")
	}
	// The recovered file must end at an entry boundary so new appends land
	// at a valid offset.
	if err := p.Put(keys[9], []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenPackStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if v, ok := p2.Get(keys[9]); !ok || string(v) != "rewritten" {
		t.Fatalf("re-put after recovery: got %q, %v", v, ok)
	}
}

// TestPackCRCMismatch pins bit-rot handling: flipping one payload byte
// makes that entry (and only that entry) a miss — reads verify the CRC,
// and a mismatch never surfaces a wrong or torn record.
func TestPackCRCMismatch(t *testing.T) {
	dir := t.TempDir()
	keys := packFill(t, dir, 4)

	segPath := filepath.Join(dir, "000001.seg")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the last entry's payload (the file tail is value
	// bytes of keys[3]).
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	p, err := OpenPackStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, ok := p.Get(keys[3]); ok {
		t.Fatal("CRC-mismatched entry served instead of missing")
	}
	for _, k := range keys[:3] {
		if _, ok := p.Get(k); !ok {
			t.Fatalf("clean entry %s became a miss", k)
		}
	}
}

// TestPackMissingIndexRebuild pins sidecar independence: deleting the
// index file costs the next open a scan (pipeline.index_rebuilds), not
// any data — every entry still reads back.
func TestPackMissingIndexRebuild(t *testing.T) {
	dir := t.TempDir()
	keys := packFill(t, dir, 10)
	if err := os.Remove(filepath.Join(dir, "000001.idx")); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPackStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, k := range keys {
		if _, ok := p.Get(k); !ok {
			t.Fatalf("entry %s lost with the sidecar", k)
		}
	}
}

// TestPackCorruptIndexRebuild does the same for a damaged (rather than
// missing) sidecar: the checksum rejects it wholesale and the scan
// rebuilds the index.
func TestPackCorruptIndexRebuild(t *testing.T) {
	dir := t.TempDir()
	keys := packFill(t, dir, 10)
	idxPath := filepath.Join(dir, "000001.idx")
	data, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(idxPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPackStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, k := range keys {
		if _, ok := p.Get(k); !ok {
			t.Fatalf("entry %s lost with the corrupt sidecar", k)
		}
	}
}

// TestPackHeaderlessActiveSegment pins the subtlest crash shape: a
// segment file created but killed before its first group commit (0 bytes,
// or fewer than the magic). The store must restart it — and, critically,
// new appends must re-seed the magic so the *next* recovery scan doesn't
// dismiss the whole segment.
func TestPackHeaderlessActiveSegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "000001.seg"), []byte("sfs"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPackStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if err := p.Put(key, []byte("value")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Force a scan (no sidecar) to prove the re-seeded header is on disk.
	if err := os.Remove(filepath.Join(dir, "000001.idx")); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenPackStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if v, ok := p2.Get(key); !ok || string(v) != "value" {
		t.Fatalf("entry lost after headerless-segment recovery: %q, %v", v, ok)
	}
}

// TestSuiteBlobRoundTrip pins the generation-cache encoding: decode is the
// inverse of encode, the stored hashes are exactly ScriptHash's, and a
// damaged blob reports an error (a cache miss) instead of a partial suite.
func TestSuiteBlobRoundTrip(t *testing.T) {
	a, err := trace.ParseScript("@type script\n# Test alpha\n1: mkdir \"/a\" 0o755\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.ParseScript("@type script\n# Test beta\n1: stat \"/a\"\n")
	if err != nil {
		t.Fatal(err)
	}
	scripts := []*trace.Script{a, b}
	blob, hashes := EncodeSuite(scripts)
	for i, s := range scripts {
		if hashes[i] != ScriptHash(s) {
			t.Fatalf("script %d: stored hash %s, ScriptHash %s", i, hashes[i], ScriptHash(s))
		}
	}
	back, gotHashes, err := DecodeSuite(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(scripts) {
		t.Fatalf("decoded %d scripts, want %d", len(back), len(scripts))
	}
	for i := range scripts {
		if back[i].Name != scripts[i].Name {
			t.Fatalf("script %d: name %q, want %q", i, back[i].Name, scripts[i].Name)
		}
		if back[i].Render() != scripts[i].Render() {
			t.Fatalf("script %d: decoded text differs", i)
		}
		if gotHashes[i] != hashes[i] {
			t.Fatalf("script %d: decoded hash %s, want %s", i, gotHashes[i], hashes[i])
		}
	}
	for _, cut := range []int{0, len(blob) / 2, len(blob) - 1} {
		if _, _, err := DecodeSuite(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}
