package pipeline

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestCacheEntryPermissions pins the shared-artifact contract: entries
// land world-readable (0644), not with os.CreateTemp's private 0600 —
// a cache directory is meant to be shareable across users and CI stages.
func TestCacheEntryPermissions(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	if err := c.PutRecord(Record{Key: key, Name: "x", Accepted: true}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("cache entry mode %o, want 644", perm)
	}
}

// TestFinalizedSinkPermissions does the same for the finalized JSONL.
func TestFinalizedSinkPermissions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := WriteRecords(path, []Record{{Key: "k1", Name: "a"}}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("finalized sink mode %o, want 644", perm)
	}
}

// TestOrphanSweepOnOpen simulates a kill between CreateTemp and Rename:
// the leaked temp files (backdated past orphanAge) must be reclaimed the
// next time the cache or sink is opened, while a live writer's fresh temp
// file and ordinary payload files survive untouched.
func TestOrphanSweepOnOpen(t *testing.T) {
	dir := t.TempDir()

	// Cache orphans live in the two-hex-digit fan-out subdirectories.
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(sub, ".tmp-dead123")
	fresh := filepath.Join(sub, ".tmp-live456")
	entry := filepath.Join(sub, "cdef.json")
	for _, p := range []string{old, fresh, entry} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-2 * orphanAge)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatal("stale cache orphan survived OpenCache")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp file (possible live writer) was swept")
	}
	if _, err := os.Stat(entry); err != nil {
		t.Fatal("cache entry was swept")
	}

	// Sink orphans (.jsonl-*, from a kill mid-Finalize) live next to the
	// sink file.
	sinkDir := t.TempDir()
	oldSink := filepath.Join(sinkDir, ".jsonl-dead")
	freshSink := filepath.Join(sinkDir, ".jsonl-live")
	for _, p := range []string{oldSink, freshSink} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Chtimes(oldSink, stale, stale); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSink(filepath.Join(sinkDir, "run.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(oldSink); !os.IsNotExist(err) {
		t.Fatal("stale sink orphan survived OpenSink")
	}
	if _, err := os.Stat(freshSink); err != nil {
		t.Fatal("fresh sink temp file was swept")
	}
}

// TestSuiteBlobRoundTrip pins the generation-cache encoding: decode is the
// inverse of encode, the stored hashes are exactly ScriptHash's, and a
// damaged blob reports an error (a cache miss) instead of a partial suite.
func TestSuiteBlobRoundTrip(t *testing.T) {
	a, err := trace.ParseScript("@type script\n# Test alpha\n1: mkdir \"/a\" 0o755\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.ParseScript("@type script\n# Test beta\n1: stat \"/a\"\n")
	if err != nil {
		t.Fatal(err)
	}
	scripts := []*trace.Script{a, b}
	blob, hashes := EncodeSuite(scripts)
	for i, s := range scripts {
		if hashes[i] != ScriptHash(s) {
			t.Fatalf("script %d: stored hash %s, ScriptHash %s", i, hashes[i], ScriptHash(s))
		}
	}
	back, gotHashes, err := DecodeSuite(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(scripts) {
		t.Fatalf("decoded %d scripts, want %d", len(back), len(scripts))
	}
	for i := range scripts {
		if back[i].Name != scripts[i].Name {
			t.Fatalf("script %d: name %q, want %q", i, back[i].Name, scripts[i].Name)
		}
		if back[i].Render() != scripts[i].Render() {
			t.Fatalf("script %d: decoded text differs", i)
		}
		if gotHashes[i] != hashes[i] {
			t.Fatalf("script %d: decoded hash %s, want %s", i, gotHashes[i], hashes[i])
		}
	}
	for _, cut := range []int{0, len(blob) / 2, len(blob) - 1} {
		if _, _, err := DecodeSuite(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}
