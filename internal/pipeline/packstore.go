package pipeline

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// PackStore is the default result store: records append to bounded,
// append-only pack segments (git packfile / LevelDB-log style) instead
// of one file per key, and durability is paid per *batch*, not per
// entry. The three design points, each fixing a measured bottleneck of
// the v1 file-per-key layout:
//
//   - Packed segments. A cold full-suite run used to create ~21k small
//     files, each with its own fsync + rename + directory fsync; a warm
//     run re-opened and re-parsed all of them. Here every entry is a
//     length-prefixed, CRC32-guarded append into the current segment,
//     and a read is one pread at a known offset.
//
//   - In-memory index. OpenPackStore loads key → (segment, offset,
//     length, crc) from per-segment index sidecars; a missing, stale or
//     corrupt sidecar degrades to a sequential scan of that segment
//     (pipeline.index_rebuilds), never to an error. A torn tail entry —
//     the only damage a killed append can leave — is detected by its CRC
//     and truncated away.
//
//   - Group commit. Puts from all pipeline workers coalesce into one
//     in-memory tail; a single write + fsync covers the whole batch
//     (pipeline.store_batches / store_fsyncs). Flushes happen on size
//     (FlushBytes), on interval (FlushInterval, via a background
//     flusher), and always on Flush/Close — pipeline.Run flushes at
//     every exit, cancellation included, so the cache is durable
//     whenever the resume journal is.
//
// Entry layout (all integers big-endian):
//
//	uint32 crc32(key ‖ value) | uint16 len(key) | uint32 len(value) | key | value
//
// Segments are named NNNNNN.seg with an 8-byte "sfspack1" header and
// sealed at MaxSegmentBytes; NNNNNN.idx sidecars are written atomically
// on seal and on Close.
type PackStore struct {
	dir  string
	opts PackOptions

	mu       sync.RWMutex
	index    map[string]packLoc
	files    map[int]*os.File // open segment handles (active one is RDWR)
	segSizes map[int]int64    // durable bytes per sealed segment; active tracked below

	active      int   // active segment id (0 = none yet)
	flushedSize int64 // bytes of the active segment already on disk
	idxCovered  int64 // bytes of the active segment its on-disk sidecar covers
	pending     []byte
	closed      bool

	flushOnce sync.Once
	flushDone chan struct{}

	tel *telemetry.Registry
}

// packLoc addresses one value: segment id, value offset, value length,
// and the entry's CRC32 (over key+value), verified on every read.
type packLoc struct {
	seg  int
	off  int64
	vlen uint32
	crc  uint32
}

// PackOptions tune a PackStore; zero values select the defaults.
type PackOptions struct {
	// MaxSegmentBytes seals a segment once it grows past this size
	// (default 64 MiB). An entry larger than the bound still fits: it
	// gets a segment of its own.
	MaxSegmentBytes int64
	// FlushBytes forces a group commit once this many bytes are pending
	// (default 1 MiB).
	FlushBytes int
	// FlushInterval bounds how long a Put can stay buffered before the
	// background flusher commits it (default 50ms).
	FlushInterval time.Duration
}

const (
	packMagic     = "sfspack1"
	packIdxMagic  = "sfspidx1"
	packHeaderLen = 10 // crc32 + keyLen16 + valLen32

	defaultMaxSegmentBytes = 64 << 20
	defaultFlushBytes      = 1 << 20
	defaultFlushInterval   = 50 * time.Millisecond
)

// packCRC is Castagnoli — hardware-accelerated on amd64/arm64, so the
// per-read verify costs far less than the syscalls it replaces.
var packCRC = crc32.MakeTable(crc32.Castagnoli)

// OpenPackStore opens (creating if needed) a packed segment store rooted
// at dir, with default options.
func OpenPackStore(dir string) (*PackStore, error) {
	return OpenPackStoreWith(dir, PackOptions{})
}

// OpenPackStoreWith opens a packed segment store with explicit options
// (tests use tiny segments to force rotation).
func OpenPackStoreWith(dir string, opts PackOptions) (*PackStore, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = defaultMaxSegmentBytes
	}
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = defaultFlushBytes
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = defaultFlushInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sweepOrphans(dir, ".tmp-")
	p := &PackStore{
		dir:       dir,
		opts:      opts,
		index:     make(map[string]packLoc),
		files:     make(map[int]*os.File),
		segSizes:  make(map[int]int64),
		flushDone: make(chan struct{}),
		tel:       telemetry.Default,
	}
	if err := p.load(); err != nil {
		p.closeFiles()
		return nil, err
	}
	go p.flusher()
	return p, nil
}

// SetTelemetry attributes the store's I/O metrics (batch commits,
// fsyncs, index rebuilds, CRC failures) to reg; pipeline.Run installs
// the run's registry here. Open-time events land on telemetry.Default.
func (p *PackStore) SetTelemetry(reg *telemetry.Registry) {
	p.mu.Lock()
	p.tel = telemetry.Or(reg)
	p.mu.Unlock()
}

// Dir returns the store root.
func (p *PackStore) Dir() string { return p.dir }

// load opens every segment, preferring index sidecars and falling back
// to a sequential scan; the last segment becomes the active one if it
// has room.
func (p *PackStore) load() error {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return err
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(name, ".seg"))
		if err != nil || id <= 0 {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for i, id := range ids {
		last := i == len(ids)-1
		if err := p.loadSegment(id, last); err != nil {
			return err
		}
	}
	p.tel.Gauge("pipeline.segments").Set(int64(len(p.files)))
	return nil
}

// loadSegment installs one segment's entries into the index. Sidecar
// first; any mismatch (missing, corrupt, or not covering the file's
// current size) degrades to a scan that verifies every entry's CRC and
// truncates a torn tail off the active segment.
func (p *PackStore) loadSegment(id int, last bool) error {
	path := p.segPath(id)
	flags := os.O_RDONLY
	if last {
		flags = os.O_RDWR
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := info.Size()

	locs, ok := p.readSidecar(id, size)
	if !ok {
		p.tel.Counter("pipeline.index_rebuilds").Inc()
		var logical int64
		locs, logical, err = scanSegment(f, size)
		if err != nil {
			f.Close()
			return err
		}
		if logical < size {
			// Torn or corrupt tail: cut it off so the file again ends at
			// a clean entry boundary (and, for the segment we are about
			// to append to, so new entries land at a valid offset).
			if err := os.Truncate(path, logical); err != nil {
				f.Close()
				return err
			}
			size = logical
		}
		if !last {
			// Repair the sidecar so the next open skips the scan.
			p.writeSidecar(id, locs, size)
		}
	}
	for key, loc := range locs {
		loc.seg = id
		p.index[key] = loc
	}
	p.files[id] = f
	p.segSizes[id] = size
	if last && size < p.opts.MaxSegmentBytes {
		p.active = id
		if ok {
			p.idxCovered = size // current sidecar; barriers skip the rewrite
		}
		if size < int64(len(packMagic)) {
			// The segment never got a durable header (killed before its
			// first commit): restart it from scratch.
			if err := os.Truncate(path, 0); err != nil {
				f.Close()
				return err
			}
			size = 0
			p.pending = append(p.pending[:0], packMagic...)
		}
		p.flushedSize = size
		p.segSizes[id] = size
	}
	return nil
}

func (p *PackStore) segPath(id int) string {
	return filepath.Join(p.dir, fmt.Sprintf("%06d.seg", id))
}

func (p *PackStore) idxPath(id int) string {
	return filepath.Join(p.dir, fmt.Sprintf("%06d.idx", id))
}

// scanSegment walks a segment sequentially, verifying every entry's CRC,
// and returns the recovered locations plus the logical end — the offset
// of the first torn or corrupt entry (everything after it is ignored).
func scanSegment(f *os.File, size int64) (map[string]packLoc, int64, error) {
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		return nil, 0, err
	}
	locs := make(map[string]packLoc)
	if len(data) < len(packMagic) || string(data[:len(packMagic)]) != packMagic {
		return locs, 0, nil // not even a header: treat as empty
	}
	off := int64(len(packMagic))
	for off < size {
		if size-off < packHeaderLen {
			break // torn header
		}
		h := data[off : off+packHeaderLen]
		crc := binary.BigEndian.Uint32(h[0:4])
		klen := int64(binary.BigEndian.Uint16(h[4:6]))
		vlen := int64(binary.BigEndian.Uint32(h[6:10]))
		if klen == 0 || off+packHeaderLen+klen+vlen > size {
			break // torn or nonsense entry
		}
		key := data[off+packHeaderLen : off+packHeaderLen+klen]
		val := data[off+packHeaderLen+klen : off+packHeaderLen+klen+vlen]
		sum := crc32.Checksum(key, packCRC)
		sum = crc32.Update(sum, packCRC, val)
		if sum != crc {
			break // corrupt entry: stop at the last good offset
		}
		locs[string(key)] = packLoc{
			off:  off + packHeaderLen + klen,
			vlen: uint32(vlen),
			crc:  crc,
		}
		off += packHeaderLen + klen + vlen
	}
	return locs, off, nil
}

// Sidecar layout: "sfspidx1", uint64 covered segment size, uint32 count,
// then per entry (uint16 keyLen | uint64 valOff | uint32 valLen |
// uint32 crc | key), and a trailing CRC32 over everything before it.
// Written atomically; validated wholesale on read — any damage means a
// rebuild-by-scan, never a wrong lookup.

func (p *PackStore) writeSidecar(id int, locs map[string]packLoc, covered int64) {
	keys := make([]string, 0, len(locs))
	for k := range locs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := make([]byte, 0, len(packIdxMagic)+12+len(locs)*32)
	buf = append(buf, packIdxMagic...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(covered))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(locs)))
	for _, k := range keys {
		loc := locs[k]
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(k)))
		buf = binary.BigEndian.AppendUint64(buf, uint64(loc.off))
		buf = binary.BigEndian.AppendUint32(buf, loc.vlen)
		buf = binary.BigEndian.AppendUint32(buf, loc.crc)
		buf = append(buf, k...)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, packCRC))
	// Best-effort: a failed sidecar write only costs the next open a scan.
	_ = atomicWriteFile(p.idxPath(id), ".tmp-*", buf)
}

// readSidecar loads a segment's index sidecar; ok is false when the
// sidecar is missing, corrupt, or does not cover the segment's current
// size (e.g. the store was killed after appending but before resealing).
func (p *PackStore) readSidecar(id int, segSize int64) (map[string]packLoc, bool) {
	buf, err := os.ReadFile(p.idxPath(id))
	if err != nil || len(buf) < len(packIdxMagic)+16 {
		return nil, false
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, packCRC) != binary.BigEndian.Uint32(tail) {
		return nil, false
	}
	if string(body[:len(packIdxMagic)]) != packIdxMagic {
		return nil, false
	}
	covered := int64(binary.BigEndian.Uint64(body[8:16]))
	if covered != segSize {
		return nil, false
	}
	count := binary.BigEndian.Uint32(body[16:20])
	locs := make(map[string]packLoc, count)
	off := 20
	for i := uint32(0); i < count; i++ {
		if off+18 > len(body) {
			return nil, false
		}
		klen := int(binary.BigEndian.Uint16(body[off : off+2]))
		valOff := int64(binary.BigEndian.Uint64(body[off+2 : off+10]))
		vlen := binary.BigEndian.Uint32(body[off+10 : off+14])
		crc := binary.BigEndian.Uint32(body[off+14 : off+18])
		off += 18
		if off+klen > len(body) {
			return nil, false
		}
		key := string(body[off : off+klen])
		off += klen
		locs[key] = packLoc{off: valOff, vlen: vlen, crc: crc}
	}
	if off != len(body) {
		return nil, false
	}
	return locs, true
}

// Get returns the bytes stored under key. Reads of already-committed
// entries are one pread; reads of entries still in the group-commit
// buffer are served from memory. Every read re-verifies the entry CRC —
// a mismatch (bit rot, torn concurrent writer) is a miss, never an
// error or a torn record.
func (p *PackStore) Get(key string) ([]byte, bool) {
	p.mu.RLock()
	loc, ok := p.index[key]
	if !ok || p.closed {
		p.mu.RUnlock()
		return nil, false
	}
	if loc.seg == p.active && loc.off >= p.flushedSize {
		// Still pending: copy out under the read lock (flushes and
		// rotations take the write lock, so the buffer is stable here).
		start := loc.off - p.flushedSize
		val := make([]byte, loc.vlen)
		copy(val, p.pending[start:start+int64(loc.vlen)])
		p.mu.RUnlock()
		return p.verify(key, val, loc.crc)
	}
	f := p.files[loc.seg]
	p.mu.RUnlock()
	if f == nil {
		return nil, false
	}
	val := make([]byte, loc.vlen)
	if _, err := f.ReadAt(val, loc.off); err != nil {
		return nil, false
	}
	return p.verify(key, val, loc.crc)
}

func (p *PackStore) verify(key string, val []byte, crc uint32) ([]byte, bool) {
	sum := crc32.Checksum([]byte(key), packCRC)
	sum = crc32.Update(sum, packCRC, val)
	if sum != crc {
		p.mu.RLock()
		tel := p.tel
		p.mu.RUnlock()
		tel.Counter("pipeline.store_crc_errors").Inc()
		return nil, false
	}
	return val, true
}

// Put appends one entry to the active segment's group-commit buffer.
// The entry is immediately visible to Get; durability arrives with the
// next batch commit (size, interval, or an explicit Flush).
func (p *PackStore) Put(key string, data []byte) error {
	if len(key) == 0 || len(key) > 0xffff {
		return fmt.Errorf("pipeline: pack store: bad key length %d", len(key))
	}
	entrySize := int64(packHeaderLen + len(key) + len(data))
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("pipeline: pack store: closed")
	}
	if p.active == 0 || p.flushedSize+int64(len(p.pending))+entrySize > p.opts.MaxSegmentBytes {
		if err := p.rotateLocked(); err != nil {
			return err
		}
	}
	sum := crc32.Checksum([]byte(key), packCRC)
	sum = crc32.Update(sum, packCRC, data)
	off := p.flushedSize + int64(len(p.pending))
	p.pending = binary.BigEndian.AppendUint32(p.pending, sum)
	p.pending = binary.BigEndian.AppendUint16(p.pending, uint16(len(key)))
	p.pending = binary.BigEndian.AppendUint32(p.pending, uint32(len(data)))
	p.pending = append(p.pending, key...)
	p.pending = append(p.pending, data...)
	p.index[key] = packLoc{
		seg:  p.active,
		off:  off + packHeaderLen + int64(len(key)),
		vlen: uint32(len(data)),
		crc:  sum,
	}
	if len(p.pending) >= p.opts.FlushBytes {
		return p.flushLocked()
	}
	return nil
}

// rotateLocked seals the active segment (committing its tail and writing
// its index sidecar) and opens the next one. The very first Put, and any
// Put that would overflow MaxSegmentBytes, lands here.
func (p *PackStore) rotateLocked() error {
	next := 1
	for id := range p.files {
		if id >= next {
			next = id + 1
		}
	}
	if p.active != 0 {
		if err := p.flushLocked(); err != nil {
			return err
		}
		p.segSizes[p.active] = p.flushedSize
		p.writeSidecar(p.active, p.segLocsLocked(p.active), p.flushedSize)
	}
	f, err := os.OpenFile(p.segPath(next), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	p.files[next] = f
	p.active = next
	p.flushedSize = 0
	p.idxCovered = 0
	p.pending = append(p.pending[:0], packMagic...)
	p.tel.Gauge("pipeline.segments").Set(int64(len(p.files)))
	return nil
}

// segLocsLocked collects the index entries that live in segment id (the
// sidecar's content — superseded duplicates are irrelevant by the
// cache-key contract: same key, same bytes).
func (p *PackStore) segLocsLocked(id int) map[string]packLoc {
	locs := make(map[string]packLoc)
	for k, loc := range p.index {
		if loc.seg == id {
			locs[k] = loc
		}
	}
	return locs
}

// flushLocked is the group commit: one write and one fsync cover every
// Put buffered since the last commit.
func (p *PackStore) flushLocked() error {
	if len(p.pending) == 0 || p.active == 0 {
		return nil
	}
	f := p.files[p.active]
	if _, err := f.WriteAt(p.pending, p.flushedSize); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	p.flushedSize += int64(len(p.pending))
	p.segSizes[p.active] = p.flushedSize
	p.pending = p.pending[:0]
	p.tel.Counter("pipeline.store_batches").Inc()
	p.tel.Counter("pipeline.store_fsyncs").Inc()
	return nil
}

// Flush commits every buffered Put — the group-commit barrier.
// pipeline.Run calls it on every exit path (success, failure and
// cancellation), so the store is durable whenever the journal is. The
// explicit barrier also refreshes the active segment's index sidecar:
// sessions are long-lived and may never Close, and without a current
// sidecar every reopen would pay a scan of the active segment.
// (Interval and size flushes skip this — once per batch would be far
// too often for a full index rewrite.)
func (p *PackStore) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if err := p.flushLocked(); err != nil {
		return err
	}
	if p.active != 0 && p.flushedSize > p.idxCovered {
		p.writeSidecar(p.active, p.segLocsLocked(p.active), p.flushedSize)
		p.idxCovered = p.flushedSize
	}
	return nil
}

// flusher is the background interval commit: it bounds how long a Put
// can stay buffered in a process that neither fills FlushBytes nor
// reaches a Flush barrier (e.g. a run killed without cleanup).
func (p *PackStore) flusher() {
	t := time.NewTicker(p.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-p.flushDone:
			return
		case <-t.C:
			p.mu.Lock()
			if !p.closed {
				p.flushLocked() // best-effort; errors surface on Flush/Close
			}
			p.mu.Unlock()
		}
	}
}

// Close flushes, seals the active segment's index sidecar (so the next
// open needs no scan), and closes every segment handle.
func (p *PackStore) Close() error {
	p.flushOnce.Do(func() { close(p.flushDone) })
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	err := p.flushLocked()
	if err == nil && p.active != 0 && p.flushedSize > p.idxCovered {
		p.writeSidecar(p.active, p.segLocsLocked(p.active), p.flushedSize)
	}
	p.closeFiles()
	p.closed = true
	return err
}

func (p *PackStore) closeFiles() {
	for _, f := range p.files {
		f.Close()
	}
}

// Stats reports live keys, segment count and the summed segment bytes
// (pending group-commit bytes included).
func (p *PackStore) Stats() StoreStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := StoreStats{Backend: "pack", Entries: len(p.index), Segments: len(p.files)}
	for id, size := range p.segSizes {
		if id == p.active {
			continue
		}
		st.Bytes += size
	}
	if p.active != 0 {
		st.Bytes += p.flushedSize + int64(len(p.pending))
	}
	return st
}
