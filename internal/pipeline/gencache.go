package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// Generation cache: generated suites stored as content-addressed blobs in
// the result cache (GetRaw/PutRaw), keyed by (testgen version, universe).
// The blob stores each script's rendered text together with its
// precomputed ScriptHash, because the hashes are the expensive part of a
// warm start — pipeline.Run needs every script's content hash for key
// computation, and re-rendering a 21k-script suite costs several times the
// generation it was meant to avoid. A warm load parses the stored text
// (cheaper than generating and re-rendering) and hands the hashes to the
// session's memo, so the run's key pass is pure lookups.

// suiteMagic versions the blob layout; bump on any format change.
const suiteMagic = "sfs-suite-v1"

// GenSuiteKey is the content address of a generated suite: the testgen
// version (bumped whenever generation output changes) and the universe
// name ("sequential", "concurrent"). The "gencache" tag namespaces the key
// away from checked-trace records per GetRaw's contract.
func GenSuiteKey(testgenVersion, universe string) string {
	sum := sha256.Sum256([]byte("gencache\x00" + testgenVersion + "\x00" + universe))
	return hex.EncodeToString(sum[:])
}

// EncodeSuite serializes scripts into a suite blob, rendering each script
// exactly once to derive both its stored text and its content hash. The
// returned hashes are index-aligned with scripts.
func EncodeSuite(scripts []*trace.Script) (blob []byte, hashes []string) {
	var b strings.Builder
	b.WriteString(suiteMagic)
	b.WriteByte('\n')
	b.WriteString(strconv.Itoa(len(scripts)))
	b.WriteByte('\n')
	hashes = make([]string, len(scripts))
	for i, s := range scripts {
		text := s.Render()
		sum := sha256.Sum256([]byte(text))
		hashes[i] = hex.EncodeToString(sum[:])[:24]
		// Header line: hash, text length, then the name (which may itself
		// contain spaces, so it goes last and runs to end of line).
		b.WriteString(hashes[i])
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(len(text)))
		b.WriteByte(' ')
		b.WriteString(s.Name)
		b.WriteByte('\n')
		b.WriteString(text)
	}
	return []byte(b.String()), hashes
}

// DecodeSuite parses a suite blob back into scripts and their content
// hashes. Any structural damage is an error — callers treat it as a cache
// miss and regenerate.
func DecodeSuite(blob []byte) (scripts []*trace.Script, hashes []string, err error) {
	s := string(blob)
	line, rest, ok := strings.Cut(s, "\n")
	if !ok || line != suiteMagic {
		return nil, nil, fmt.Errorf("gencache: bad magic")
	}
	line, rest, ok = strings.Cut(rest, "\n")
	if !ok {
		return nil, nil, fmt.Errorf("gencache: truncated count")
	}
	n, err := strconv.Atoi(line)
	if err != nil || n < 0 {
		return nil, nil, fmt.Errorf("gencache: bad count %q", line)
	}
	scripts = make([]*trace.Script, 0, n)
	hashes = make([]string, 0, n)
	for i := 0; i < n; i++ {
		line, rest, ok = strings.Cut(rest, "\n")
		if !ok {
			return nil, nil, fmt.Errorf("gencache: truncated header at script %d", i)
		}
		hash, tail, ok := strings.Cut(line, " ")
		if !ok {
			return nil, nil, fmt.Errorf("gencache: bad header at script %d", i)
		}
		lenStr, name, ok := strings.Cut(tail, " ")
		if !ok {
			return nil, nil, fmt.Errorf("gencache: bad header at script %d", i)
		}
		textLen, err := strconv.Atoi(lenStr)
		if err != nil || textLen < 0 || textLen > len(rest) {
			return nil, nil, fmt.Errorf("gencache: bad length at script %d", i)
		}
		text := rest[:textLen]
		rest = rest[textLen:]
		sc, err := trace.ParseScript(text)
		if err != nil {
			return nil, nil, fmt.Errorf("gencache: script %d: %w", i, err)
		}
		if sc.Name == "" {
			sc.Name = name
		}
		scripts = append(scripts, sc)
		hashes = append(hashes, hash)
	}
	return scripts, hashes, nil
}
