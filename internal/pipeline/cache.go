package pipeline

import (
	"encoding/json"
	"path/filepath"

	"repro/internal/telemetry"
)

// Cache is the content-addressed result store facade: typed record
// accessors (GetRecord/PutRecord) and raw-blob accessors (GetRaw/PutRaw,
// used by the generation cache and fuzz corpus seeding) over a pluggable
// Store backend. Both pairs funnel through one internal get/put, so a
// backend swap — PackStore, DirStore, some future remote store — changes
// every consumer at once.
//
// A Cache opened on a v1 (file-per-key) directory read-through-migrates:
// old entries are served from the DirStore fallback on a pack miss, and
// every new write lands packed. No rewrite pass, no flag day — the v1
// files simply stop growing.
type Cache struct {
	dir      string
	store    Store
	fallback Store // nil unless a v1 layout was detected at open
	// framed selects the dual record encoding (see codec.go) for
	// PutRecord. DirStore-backed caches write bare JSON — the dir layout
	// is the v1 compatibility format and must stay byte-compatible with
	// what a v1 reader expects. Reads accept both encodings regardless.
	framed bool
}

// OpenCache opens (creating if needed) a cache rooted at dir with the
// default PackStore backend (segments live under dir/pack). If dir holds
// a v1 file-per-key layout, those entries remain readable through a
// DirStore fallback; new writes go to the pack.
func OpenCache(dir string) (*Cache, error) {
	var fallback Store
	if hasDirEntries(dir) {
		d, err := OpenDirStore(dir)
		if err != nil {
			return nil, err
		}
		fallback = d
	}
	store, err := OpenPackStore(packDir(dir))
	if err != nil {
		return nil, err
	}
	return &Cache{dir: dir, store: store, fallback: fallback, framed: true}, nil
}

// OpenDirCache opens a cache forced onto the v1 file-per-key DirStore
// backend — the compatibility path (sfs-run -store dir) and the
// durability baseline in benchmarks.
func OpenDirCache(dir string) (*Cache, error) {
	store, err := OpenDirStore(dir)
	if err != nil {
		return nil, err
	}
	return &Cache{dir: dir, store: store}, nil
}

// NewCache wraps an explicit Store — the seam where an injected backend
// (sibylfs.WithStore; later an HTTP/S3 store) enters the pipeline.
// Records are stored framed unless the backend is a DirStore (which must
// keep producing genuine v1 bytes).
func NewCache(store Store) *Cache {
	_, isDir := store.(*DirStore)
	return &Cache{store: store, framed: !isDir}
}

// packDir is where OpenCache roots the pack segments, beside (never
// colliding with) the two-hex-digit v1 fan-out directories.
func packDir(dir string) string {
	return filepath.Join(dir, "pack")
}

// Dir returns the cache root ("" for a Cache over an injected Store).
func (c *Cache) Dir() string { return c.dir }

// Store returns the primary backend (the fallback, if any, is
// read-only migration plumbing).
func (c *Cache) Store() Store { return c.store }

// get is the single read path under every typed accessor: primary
// store first, then the v1 read-through fallback.
func (c *Cache) get(key string) ([]byte, bool) {
	if data, ok := c.store.Get(key); ok {
		return data, true
	}
	if c.fallback != nil {
		return c.fallback.Get(key)
	}
	return nil, false
}

// put is the single write path under every typed accessor.
func (c *Cache) put(key string, data []byte) error {
	return c.store.Put(key, data)
}

// GetRecord loads the cached record for key; ok is false on a miss.
// Unreadable or unparsable entries count as misses (the writer will
// overwrite them), never as errors.
func (c *Cache) GetRecord(key string) (Record, bool) {
	rec, _, ok := c.getRecord(key)
	return rec, ok
}

// getRecord also returns the record's canonical JSON line — exactly the
// json.Marshal bytes PutRecord wrote — so the pipeline's warm path can
// journal a hit without re-marshalling it (Sink.AppendEncoded). Framed
// entries (codec.go) decode without a JSON parse at all.
func (c *Cache) getRecord(key string) (Record, []byte, bool) {
	data, ok := c.get(key)
	if !ok {
		return Record{}, nil, false
	}
	return decodeRecord(data, key)
}

// PutRecord stores a record under its key.
func (c *Cache) PutRecord(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if c.framed {
		return c.put(rec.Key, encodeRecord(rec, line))
	}
	return c.put(rec.Key, line)
}

// GetRaw and PutRaw expose the store to sibling subsystems that cache
// their own record shapes under the same key discipline (internal/fuzz
// caches attributed coverage-point sets for corpus seeding; the
// generation cache stores rendered suites). Namespacing is the caller's
// job: fold a distinct tag into the key's config hash.
func (c *Cache) GetRaw(key string) ([]byte, bool) {
	return c.get(key)
}

// PutRaw stores raw bytes under key (see GetRaw).
func (c *Cache) PutRaw(key string, data []byte) error {
	return c.put(key, data)
}

// Flush is the group-commit barrier: every completed Put is durable when
// it returns. pipeline.Run flushes on every exit path; long-lived
// callers (fuzz sessions, the generation cache) flush at their own
// boundaries.
func (c *Cache) Flush() error {
	return c.store.Flush()
}

// Close flushes and releases the backend (and the migration fallback).
func (c *Cache) Close() error {
	err := c.store.Close()
	if c.fallback != nil {
		if ferr := c.fallback.Close(); err == nil {
			err = ferr
		}
	}
	return err
}

// SetTelemetry attributes the backend's I/O metrics to reg, for stores
// that support attribution (PackStore does; a nil reg selects Default).
func (c *Cache) SetTelemetry(reg *telemetry.Registry) {
	if ts, ok := c.store.(telemetrySetter); ok {
		ts.SetTelemetry(reg)
	}
}

// Stats describes the primary backend's contents.
func (c *Cache) Stats() StoreStats {
	return c.store.Stats()
}

// FallbackStats describes the v1 read-through fallback's contents; ok is
// false when no v1 layout was detected at open. During a migration the
// primary pack may be near-empty while the fallback holds the suite —
// -cache-stats prints both so the picture is honest.
func (c *Cache) FallbackStats() (StoreStats, bool) {
	if c.fallback == nil {
		return StoreStats{}, false
	}
	return c.fallback.Stats(), true
}
