package pipeline

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// Cache is the content-addressed result store: one JSON file per key,
// fanned into 256 subdirectories by the key's first byte so directory
// listings stay cheap at suite scale (~21k entries). Writes are atomic
// and durable (temp file + fsync + rename + directory fsync), so a killed
// run can never leave a torn entry, and concurrent writers of the same
// key are idempotent — last rename wins with identical content.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir. Opening
// sweeps temp files abandoned by killed writers (see sweepOrphans); live
// writers are safe — only files older than orphanAge are reclaimed.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if e.IsDir() && len(e.Name()) == 2 {
				sweepOrphans(filepath.Join(dir, e.Name()), ".tmp-")
			}
		}
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key[2:]+".json")
}

// GetRecord loads the cached record for key; ok is false on a miss.
// Unreadable or unparsable entries count as misses (the writer will
// overwrite them), never as errors.
func (c *Cache) GetRecord(key string) (Record, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, false
	}
	rec.Key = key
	return rec, true
}

// PutRecord stores a record under its key.
func (c *Cache) PutRecord(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return c.putBytes(c.path(rec.Key), data)
}

// GetRaw and PutRaw expose the store to sibling subsystems that cache
// their own record shapes under the same key discipline (internal/fuzz
// caches attributed coverage-point sets for corpus seeding). Namespacing
// is the caller's job: fold a distinct tag into the key's config hash.
func (c *Cache) GetRaw(key string) ([]byte, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// PutRaw stores raw bytes under key (see GetRaw).
func (c *Cache) PutRaw(key string, data []byte) error {
	return c.putBytes(c.path(key), data)
}

func (c *Cache) putBytes(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return atomicWriteFile(path, ".tmp-*", data)
}
