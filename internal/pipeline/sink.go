package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Sink is the streaming JSONL result file and, at the same time, the
// crash-safe resume journal: records append one line at a time as jobs
// finish, so a killed run keeps everything completed before the kill. On
// reopen with resume, a torn trailing line (the only damage an append-mode
// kill can cause) is truncated away and every intact record is indexed by
// key, letting the next run skip finished work. Append order is completion
// order and therefore nondeterministic; Finalize rewrites the file in
// canonical order before the sink is handed to consumers.
type Sink struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	byKey   map[string]Record
	records []Record
	tel     *telemetry.Registry // nil until SetTelemetry; journal I/O metrics

	// buf is the group-commit buffer: appends coalesce here and reach the
	// file in batches — one write (and one fsync) per batch instead of one
	// write per record. Flushes happen on size (sinkFlushBytes), on
	// interval (the background flusher), and always on Close/Finalize, so
	// every record completed before a cancel is durable in the journal.
	buf       []byte
	flushDone chan struct{}
	stopOnce  sync.Once
}

// sinkFlushBytes forces a batch commit once this much is buffered;
// sinkFlushInterval bounds how long an append can stay buffered (the
// exposure window of a hard kill — a cooperative cancel always flushes).
const (
	sinkFlushBytes    = 1 << 20
	sinkFlushInterval = 25 * time.Millisecond
)

// SetTelemetry attributes the sink's journal I/O (append counts/bytes/
// latency, finalize latency) to reg; pipeline.Run installs the run's
// registry here. Nil disables sink metrics (the sink never falls back to
// Default on its own — a sink may outlive the run that instrumented it).
func (s *Sink) SetTelemetry(reg *telemetry.Registry) {
	s.mu.Lock()
	s.tel = reg
	s.mu.Unlock()
}

// OpenSink opens the JSONL sink at path. With resume true an existing file
// is recovered (intact lines kept, a torn tail truncated); with resume
// false any existing file is replaced. Either way, opening sweeps
// finalize temp files abandoned by a kill mid-Finalize (see sweepOrphans).
func OpenSink(path string, resume bool) (*Sink, error) {
	sweepOrphans(filepath.Dir(path), ".jsonl-")
	s := &Sink{path: path, byKey: make(map[string]Record), flushDone: make(chan struct{})}
	if !resume {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		s.f = f
		go s.flusher()
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	valid := 0 // byte offset of the end of the last intact record
	for len(data[valid:]) > 0 {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // torn tail: no terminating newline
		}
		line := data[valid : valid+nl]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			break // torn or foreign content; drop it and everything after
		}
		if _, dup := s.byKey[rec.Key]; !dup {
			s.byKey[rec.Key] = rec
			s.records = append(s.records, rec)
		}
		valid += nl + 1
	}
	if valid != len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, err
	}
	s.f = f
	go s.flusher()
	return s, nil
}

// Path returns the sink's file path.
func (s *Sink) Path() string { return s.path }

// Restrict drops journaled records whose key is not in valid — the
// resume-time defence against stale results. A sink belongs to one
// (suite, configuration) pair; when a script is edited between runs its
// key changes, and without pruning the old record (same name, old
// verdict) would survive every resume and finalize. Run calls this with
// the key set of the FULL suite (all shards), so records contributed by
// other shards of the same layout are never touched. The journal file
// still holds the stale lines until Finalize rewrites it; the in-memory
// view (Lookup/Records/Finalize) is pruned immediately.
func (s *Sink) Restrict(valid map[string]bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.records[:0]
	for _, rec := range s.records {
		if valid[rec.Key] {
			kept = append(kept, rec)
		} else {
			delete(s.byKey, rec.Key)
		}
	}
	s.records = kept
}

// Lookup returns the already-journaled record for key, if any.
func (s *Sink) Lookup(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byKey[key]
	return rec, ok
}

// Len returns the number of journaled records.
func (s *Sink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Append journals one record through the group-commit buffer: the line
// coalesces with its neighbours and reaches the file in the next batch
// commit (whole lines only, so a kill still tears at most the final
// line of the file). Duplicate keys are dropped silently — they can only
// arise from two shards of the same layout sharing a sink, where both
// would write identical content anyway.
func (s *Sink) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return s.appendLine(rec, data)
}

// AppendEncoded journals a record whose canonical json.Marshal encoding
// the caller already holds — the pipeline's warm path hands the bytes
// straight from the result store, skipping a re-marshal per cache hit.
// line must be exactly json.Marshal(rec) (Finalize re-canonicalizes
// regardless, so a violation could only reach the intermediate journal).
func (s *Sink) AppendEncoded(rec Record, line []byte) error {
	if len(line) == 0 {
		return s.Append(rec)
	}
	return s.appendLine(rec, line)
}

func (s *Sink) appendLine(rec Record, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byKey[rec.Key]; dup {
		return nil
	}
	s.buf = append(s.buf, data...)
	s.buf = append(s.buf, '\n')
	if s.tel != nil {
		s.tel.Counter("journal.appends").Inc()
		s.tel.Counter("journal.bytes").Add(int64(len(data) + 1))
	}
	s.byKey[rec.Key] = rec
	s.records = append(s.records, rec)
	if len(s.buf) >= sinkFlushBytes {
		return s.flushLocked(false)
	}
	return nil
}

// flushLocked is the batch commit: one write covers every append since
// the last flush; sync additionally fsyncs (the Close/Finalize barrier —
// interval and size flushes leave durability to the OS, exactly the
// pre-batching behaviour of per-record appends).
func (s *Sink) flushLocked(fsync bool) error {
	if s.f == nil {
		return nil
	}
	if len(s.buf) > 0 {
		flushStart := time.Now()
		if _, err := s.f.Write(s.buf); err != nil {
			return err
		}
		s.buf = s.buf[:0]
		if s.tel != nil {
			s.tel.Histogram("journal.flush_ns").ObserveSince(flushStart)
			s.tel.Counter("journal.batches").Inc()
		}
	}
	if fsync {
		if err := s.f.Sync(); err != nil {
			return err
		}
		if s.tel != nil {
			s.tel.Counter("journal.fsyncs").Inc()
		}
	}
	return nil
}

// Flush commits the group-commit buffer to the OS (tests and long-lived
// embedders; Close and Finalize flush on their own).
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked(false)
}

// flusher is the background interval commit bounding how long a record
// can stay buffered in a process that is killed without Close.
func (s *Sink) flusher() {
	t := time.NewTicker(sinkFlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.flushDone:
			return
		case <-t.C:
			s.mu.Lock()
			if s.f != nil && len(s.buf) > 0 {
				s.flushLocked(false) // best-effort; errors surface on Close/Finalize
			}
			s.mu.Unlock()
		}
	}
}

func (s *Sink) stopFlusher() {
	s.stopOnce.Do(func() { close(s.flushDone) })
}

// Records returns a copy of every journaled record, in journal order.
func (s *Sink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.records...)
}

// Finalize rewrites the sink file in canonical order and closes the sink.
// After Finalize the file's bytes depend only on the record *set* — not on
// completion order, shard layout, cache hits or how many interrupted runs
// contributed — which is the property the shard-invariance and
// resume-equivalence tests pin.
func (s *Sink) Finalize() error {
	s.stopFlusher()
	s.mu.Lock()
	defer s.mu.Unlock()
	finalizeStart := time.Now()
	if err := s.flushLocked(false); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	s.f = nil
	err := WriteRecords(s.path, s.records)
	if s.tel != nil {
		s.tel.Histogram("journal.finalize_ns").ObserveSince(finalizeStart)
	}
	return err
}

// Close closes the sink without canonicalizing (the journal keeps its
// append order; a later resume or Finalize can still pick it up). The
// group-commit buffer is flushed and fsynced first — Close is the
// cancellation path's exit, and "journal always resumable" requires the
// completed records to actually be on disk.
func (s *Sink) Close() error {
	s.stopFlusher()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.flushLocked(true)
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// sortRecords orders records canonically: by name, key-tiebroken (names
// are unique across the generated suite, but user script directories make
// no such promise).
func sortRecords(records []Record) {
	sort.Slice(records, func(i, j int) bool {
		if records[i].Name != records[j].Name {
			return records[i].Name < records[j].Name
		}
		return records[i].Key < records[j].Key
	})
}

// WriteRecords writes records to path in canonical order, atomically and
// durably (temp file + fsync + rename + directory fsync), world-readable.
func WriteRecords(path string, records []Record) error {
	sorted := append([]Record(nil), records...)
	sortRecords(sorted)
	var buf bytes.Buffer
	for _, rec := range sorted {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return atomicWriteFile(path, ".jsonl-*", buf.Bytes())
}

// ReadRecords loads every record line of a JSONL file, in file order. A
// torn trailing line — one with no terminating newline, the only shape a
// killed append can leave — is ignored; any malformed newline-terminated
// line is corruption and an error (appends write the line and its '\n'
// in one syscall, so a short write can never produce a terminated
// partial line).
func ReadRecords(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Record
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail
		}
		line := data[off : off+nl]
		off += nl + 1
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("pipeline: %s: bad record line: %w", path, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// MergeRecords combines shard sinks into one canonical JSONL file,
// dropping duplicate keys (first occurrence wins; duplicates are
// byte-identical by the cache-key contract).
func MergeRecords(out string, ins ...string) error {
	seen := make(map[string]bool)
	var all []Record
	for _, in := range ins {
		recs, err := ReadRecords(in)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if seen[rec.Key] {
				continue
			}
			seen[rec.Key] = true
			all = append(all, rec)
		}
	}
	return WriteRecords(out, all)
}
