package pipeline

import (
	"encoding/binary"
	"encoding/json"
)

// Framed record encoding — the value format pack-backed caches store
// under a record key. A v1 entry is the record's canonical JSON line and
// nothing else; decoding it costs a full JSON parse per warm hit, which
// dominates the warm path once the store itself is down to one pread.
// A framed entry carries both representations:
//
//	"sfsrec1\x00" | uint32 len(json) | json | binary fields
//
// so a warm hit decodes the flat binary fields (length-prefixed slices,
// no parser) and journals the embedded canonical JSON verbatim
// (Sink.AppendEncoded) — neither a JSON parse nor a re-marshal. The JSON
// is authoritative for every external consumer (journal, Finalize,
// ReadRecords); the binary part is a pure decode accelerator, and any
// damage to it degrades to parsing the embedded JSON, never to a wrong
// record.
//
// DirStore-bound caches (OpenDirCache, sfs-run -store dir) keep writing
// bare JSON: the dir layout IS the v1 compatibility format, and the
// format-compat CI job relies on -store dir producing genuine v1 bytes.
// Reads accept both formats wherever they come from, which is what makes
// v1 read-through migration transparent.

// recMagic tags a framed record entry. Bare-JSON entries start with '{',
// so the tag can never be confused with a v1 record.
const recMagic = "sfsrec1\x00"

// encodeRecord frames rec and its canonical JSON encoding (line must be
// exactly json.Marshal(rec)).
func encodeRecord(rec Record, line []byte) []byte {
	n := len(recMagic) + 4 + len(line) + 4 + len(rec.Name) + 1 + 16 + 4 + len(rec.Checked) + 4
	for _, e := range rec.Errors {
		n += 4 + 4 + len(e.Observed) + 4
		for _, a := range e.Allowed {
			n += 4 + len(a)
		}
	}
	buf := make([]byte, 0, n)
	buf = append(buf, recMagic...)
	buf = appendBytes32(buf, line)
	buf = appendBytes32(buf, []byte(rec.Name))
	var flags byte
	if rec.Accepted {
		flags |= 1
	}
	if rec.CapHit {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(rec.Steps))
	buf = binary.BigEndian.AppendUint32(buf, uint32(rec.MaxStates))
	buf = binary.BigEndian.AppendUint32(buf, uint32(rec.TauExpansions))
	buf = binary.BigEndian.AppendUint32(buf, uint32(rec.SumStates))
	buf = appendBytes32(buf, []byte(rec.Checked))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rec.Errors)))
	for _, e := range rec.Errors {
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.Line))
		buf = appendBytes32(buf, []byte(e.Observed))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Allowed)))
		for _, a := range e.Allowed {
			buf = appendBytes32(buf, []byte(a))
		}
	}
	return buf
}

func appendBytes32(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// decodeRecord decodes a stored record value in either format, returning
// the record and its canonical JSON line. Unparsable data is a miss (ok
// false) — the writer will overwrite it — never an error.
func decodeRecord(data []byte, key string) (Record, []byte, bool) {
	if len(data) < len(recMagic) || string(data[:len(recMagic)]) != recMagic {
		// v1 entry: the value is the JSON line itself.
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			return Record{}, nil, false
		}
		rec.Key = key
		return rec, data, true
	}
	d := decoder{buf: data[len(recMagic):]}
	line := d.bytes32()
	rec := Record{Key: key, Name: string(d.bytes32())}
	flags := d.byte()
	rec.Accepted = flags&1 != 0
	rec.CapHit = flags&2 != 0
	rec.Steps = int(d.uint32())
	rec.MaxStates = int(d.uint32())
	rec.TauExpansions = int(d.uint32())
	rec.SumStates = int(d.uint32())
	rec.Checked = string(d.bytes32())
	if n := d.uint32(); n > 0 && !d.failed {
		rec.Errors = make([]RecordError, 0, n)
		for i := uint32(0); i < n && !d.failed; i++ {
			e := RecordError{Line: int(d.uint32()), Observed: string(d.bytes32())}
			if m := d.uint32(); m > 0 && !d.failed {
				e.Allowed = make([]string, 0, m)
				for j := uint32(0); j < m && !d.failed; j++ {
					e.Allowed = append(e.Allowed, string(d.bytes32()))
				}
			}
			rec.Errors = append(rec.Errors, e)
		}
	}
	if d.failed || len(d.buf) != 0 {
		// Damaged binary part: the embedded JSON (if intact) is still
		// authoritative.
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return Record{}, nil, false
		}
		rec.Key = key
		return rec, line, true
	}
	return rec, line, true
}

// decoder is a bounds-checked cursor over a framed entry; any overrun
// sets failed instead of panicking (stores only ever hand us
// CRC-verified bytes, but the fallback must hold for DirStore entries a
// foreign writer damaged in place).
type decoder struct {
	buf    []byte
	failed bool
}

func (d *decoder) byte() byte {
	if d.failed || len(d.buf) < 1 {
		d.failed = true
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uint32() uint32 {
	if d.failed || len(d.buf) < 4 {
		d.failed = true
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) bytes32() []byte {
	n := d.uint32()
	if d.failed || uint32(len(d.buf)) < n {
		d.failed = true
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}
