package pipeline

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// StoreHandler serves a Store over the /v1/store wire protocol
// HTTPStore speaks — the server side of the shared fleet cache.
// sfs-serve mounts it beside the job API; tests mount it on an
// httptest.Server directly.
//
// Routes (rooted wherever the handler is mounted):
//
//	GET  /v1/store/{key}   value bytes, X-Sfs-Crc32c: crc32c(key‖value)
//	PUT  /v1/store/{key}   store one value (CRC header verified if sent)
//	POST /v1/store/batch   framed entries (pack entry layout), then Flush
//	POST /v1/store/flush   group-commit barrier
//	GET  /v1/store/stats   StoreStats JSON
//
// Keys are hex digests (the cache-key contract); anything else is 400,
// which also keeps path traversal out of the namespace.
type StoreHandler struct {
	store Store
	tel   *telemetry.Registry
}

// NewStoreHandler wraps store; metrics land in reg (nil = Default).
func NewStoreHandler(store Store, reg *telemetry.Registry) *StoreHandler {
	return &StoreHandler{store: store, tel: telemetry.Or(reg)}
}

// maxStoreValueBytes bounds one uploaded value (and one whole batch);
// records and generation blobs are far below it.
const maxStoreValueBytes = 64 << 20

func (sh *StoreHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	// Tolerate both a bare mount ("/v1/store/…" arriving verbatim) and a
	// stripped one (mux passed only the tail).
	if i := strings.Index(path, "/v1/store/"); i >= 0 {
		path = path[i+len("/v1/store/"):]
	} else {
		path = strings.TrimPrefix(path, "/")
	}
	switch {
	case path == "flush" && r.Method == http.MethodPost:
		sh.flush(w)
	case path == "batch" && r.Method == http.MethodPost:
		sh.batch(w, r)
	case path == "stats" && r.Method == http.MethodGet:
		sh.stats(w)
	case isStoreKey(path) && r.Method == http.MethodGet:
		sh.get(w, path)
	case isStoreKey(path) && r.Method == http.MethodPut:
		sh.put(w, r, path)
	default:
		http.Error(w, "bad store path or method", http.StatusBadRequest)
	}
}

// isStoreKey accepts lower-case hex digests — the only keys the cache
// key contract produces.
func isStoreKey(s string) bool {
	if len(s) == 0 || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (sh *StoreHandler) get(w http.ResponseWriter, key string) {
	sh.tel.Counter("pipeline.store_http_gets").Inc()
	val, ok := sh.store.Get(key)
	if !ok {
		http.Error(w, "miss", http.StatusNotFound)
		return
	}
	w.Header().Set(storeCRCHeader, strconv.FormatUint(uint64(wireCRC(key, val)), 16))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(val)))
	w.Write(val)
}

func (sh *StoreHandler) put(w http.ResponseWriter, r *http.Request, key string) {
	val, err := io.ReadAll(io.LimitReader(r.Body, maxStoreValueBytes+1))
	if err != nil {
		http.Error(w, "torn body", http.StatusBadRequest)
		return
	}
	if len(val) > maxStoreValueBytes {
		http.Error(w, "value too large", http.StatusRequestEntityTooLarge)
		return
	}
	if hdr := r.Header.Get(storeCRCHeader); hdr != "" {
		want, err := strconv.ParseUint(hdr, 16, 32)
		if err != nil || wireCRC(key, val) != uint32(want) {
			http.Error(w, "crc mismatch", http.StatusBadRequest)
			return
		}
	}
	if err := sh.store.Put(key, val); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sh.tel.Counter("pipeline.store_http_puts").Inc()
	w.WriteHeader(http.StatusNoContent)
}

// batch decodes a framed entry stream (the pack entry layout), verifies
// every CRC, stores all entries and flushes — one durable round trip
// per client write-behind batch. Any malformed or CRC-failing entry
// fails the whole batch with 400 before anything of it is trusted;
// batches are idempotent (same keys, same bytes), so the client simply
// retries.
func (sh *StoreHandler) batch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxStoreValueBytes+1))
	if err != nil {
		http.Error(w, "torn body", http.StatusBadRequest)
		return
	}
	if len(body) > maxStoreValueBytes {
		http.Error(w, "batch too large", http.StatusRequestEntityTooLarge)
		return
	}
	type entry struct {
		key string
		val []byte
	}
	var entries []entry
	for off := 0; off < len(body); {
		if len(body)-off < packHeaderLen {
			http.Error(w, "torn batch entry header", http.StatusBadRequest)
			return
		}
		crc := binary.BigEndian.Uint32(body[off : off+4])
		klen := int(binary.BigEndian.Uint16(body[off+4 : off+6]))
		vlen := int(binary.BigEndian.Uint32(body[off+6 : off+10]))
		off += int(packHeaderLen)
		if klen == 0 || off+klen+vlen > len(body) {
			http.Error(w, "torn batch entry", http.StatusBadRequest)
			return
		}
		key := string(body[off : off+klen])
		val := body[off+klen : off+klen+vlen]
		off += klen + vlen
		if !isStoreKey(key) {
			http.Error(w, fmt.Sprintf("bad key %q", key), http.StatusBadRequest)
			return
		}
		if wireCRC(key, val) != crc {
			http.Error(w, "crc mismatch in batch", http.StatusBadRequest)
			return
		}
		entries = append(entries, entry{key: key, val: val})
	}
	for _, e := range entries {
		if err := sh.store.Put(e.key, e.val); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if err := sh.store.Flush(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sh.tel.Counter("pipeline.store_http_batches").Inc()
	sh.tel.Counter("pipeline.store_http_puts").Add(int64(len(entries)))
	w.WriteHeader(http.StatusNoContent)
}

func (sh *StoreHandler) flush(w http.ResponseWriter) {
	if err := sh.store.Flush(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sh.tel.Counter("pipeline.store_http_flushes").Inc()
	w.WriteHeader(http.StatusNoContent)
}

func (sh *StoreHandler) stats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sh.store.Stats())
}
