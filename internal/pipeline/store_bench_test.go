package pipeline

import (
	"fmt"
	"testing"
)

// Store microbenchmarks: PackStore vs DirStore on the three operations
// the pipeline actually issues — warm lookups (Get), cold stores with a
// barrier per record (Put+Flush, the v1 durability shape), and cold
// stores amortized through group commit (many Puts, one Flush). The
// pack-vs-dir gap on Put is the tentpole's headline number: DirStore pays
// fsync + rename + directory fsync per record, PackStore pays one fsync
// per batch.

func benchStores(b *testing.B, run func(b *testing.B, open func(dir string) (Store, error))) {
	b.Run("pack", func(b *testing.B) {
		run(b, func(dir string) (Store, error) { return OpenPackStore(dir) })
	})
	b.Run("dir", func(b *testing.B) {
		run(b, func(dir string) (Store, error) { return OpenDirStore(dir) })
	})
}

func benchKey(i int) string {
	return fmt.Sprintf("%064x", i)
}

// benchValue approximates a pipeline record: ~600 bytes of JSON-ish text.
var benchValue = []byte(fmt.Sprintf(`{"name":"bench","key":%q,"checked":%q,"accepted":true}`,
	benchKey(0), string(make([]byte, 512))))

// BenchmarkStoreGet measures warm lookups over a prepopulated store —
// the cache-hit path a warm full-suite run takes ~21k times.
func BenchmarkStoreGet(b *testing.B) {
	benchStores(b, func(b *testing.B, open func(string) (Store, error)) {
		dir := b.TempDir()
		s, err := open(dir)
		if err != nil {
			b.Fatal(err)
		}
		const n = 2048
		for i := 0; i < n; i++ {
			if err := s.Put(benchKey(i), benchValue); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := s.Get(benchKey(i % n)); !ok {
				b.Fatal("miss")
			}
		}
		b.StopTimer()
		s.Close()
	})
}

// BenchmarkStorePut measures the per-record durable store: one Put
// followed by its barrier, the worst case for both backends (DirStore's
// Flush is free but every Put carries its own fsyncs; PackStore pays one
// fsync per barrier).
func BenchmarkStorePut(b *testing.B) {
	benchStores(b, func(b *testing.B, open func(string) (Store, error)) {
		s, err := open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Put(benchKey(i), benchValue); err != nil {
				b.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		s.Close()
	})
}

// BenchmarkStoreBatchPut measures the pipeline's actual cold-run shape:
// a batch of stores with one group-commit barrier at the end (PackStore
// coalesces the whole batch into one write+fsync; DirStore still pays
// per record).
func BenchmarkStoreBatchPut(b *testing.B) {
	const batch = 256
	benchStores(b, func(b *testing.B, open func(string) (Store, error)) {
		s, err := open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				if err := s.Put(benchKey(i*batch+j), benchValue); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		s.Close()
	})
}
