package pipeline

import (
	"context"

	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fsimpl"
	"repro/internal/trace"
	"repro/internal/types"
)

// testScripts builds a small deterministic suite: n variations on a
// mkdir/open/rename theme, each with a unique name and content.
func testScripts(t *testing.T, n int) []*trace.Script {
	t.Helper()
	var out []*trace.Script
	for i := 0; i < n; i++ {
		text := fmt.Sprintf(`@type script
# Test pipe___job_%02d
mkdir "d%d" 0o755
open "d%d/f" [O_CREAT;O_WRONLY] 0o644
rename "d%d" "e%d"
`, i, i, i, i, i)
		s, err := trace.ParseScript(text)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func testConfig(scripts []*trace.Script) Config {
	return Config{
		Name:    "pipe-test",
		Scripts: scripts,
		Factory: fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
		FSName:  "ext4",
		Spec:    types.DefaultSpec(),
		Workers: 2,
	}
}

func TestCacheHitMissInvalidation(t *testing.T) {
	scripts := testScripts(t, 8)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(scripts)
	cfg.Cache = cache

	cold, st, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != len(scripts) || st.CacheHits != 0 {
		t.Fatalf("cold run: executed %d, hits %d, want %d/0", st.Executed, st.CacheHits, len(scripts))
	}

	// Warm: every job is a cache hit and the records are identical.
	warm, st, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != len(scripts) || st.Executed != 0 {
		t.Fatalf("warm run: executed %d, hits %d, want 0/%d", st.Executed, st.CacheHits, len(scripts))
	}
	for i := range cold {
		if !warm[i].Cached {
			t.Errorf("warm record %d not marked cached", i)
		}
		warm[i].Cached = cold[i].Cached
		if fmt.Sprintf("%+v", warm[i]) != fmt.Sprintf("%+v", cold[i]) {
			t.Errorf("record %d differs between cold and warm run", i)
		}
	}

	// A model-version bump invalidates everything.
	bumped := cfg
	bumped.ModelVersion = "test-v2"
	if _, st, err = Run(context.Background(), bumped); err != nil {
		t.Fatal(err)
	}
	if st.Executed != len(scripts) || st.CacheHits != 0 {
		t.Fatalf("after version bump: executed %d, hits %d, want %d/0", st.Executed, st.CacheHits, len(scripts))
	}

	// A spec-variant change invalidates everything too.
	posix := cfg
	posix.Spec = types.Spec{Platform: types.PlatformPOSIX, Permissions: true, RootUser: true}
	if _, st, err = Run(context.Background(), posix); err != nil {
		t.Fatal(err)
	}
	if st.Executed != len(scripts) || st.CacheHits != 0 {
		t.Fatalf("after spec change: executed %d, hits %d, want %d/0", st.Executed, st.CacheHits, len(scripts))
	}

	// Editing one script invalidates only that trace.
	edited := append([]*trace.Script(nil), scripts...)
	mod, err := trace.ParseScript("@type script\n# Test pipe___job_03\nmkdir \"d3\" 0o700\n")
	if err != nil {
		t.Fatal(err)
	}
	edited[3] = mod
	cfg2 := cfg
	cfg2.Scripts = edited
	if _, st, err = Run(context.Background(), cfg2); err != nil {
		t.Fatal(err)
	}
	if st.Executed != 1 || st.CacheHits != len(scripts)-1 {
		t.Fatalf("after one edit: executed %d, hits %d, want 1/%d", st.Executed, st.CacheHits, len(scripts)-1)
	}
}

// finalizedRun runs cfg into a fresh sink at path and finalizes it.
func finalizedRun(t *testing.T, cfg Config, path string, resume bool) Stats {
	t.Helper()
	sink, err := OpenSink(path, resume)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sink = sink
	_, st, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Finalize(); err != nil {
		t.Fatal(err)
	}
	return st
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestShardInvariance(t *testing.T) {
	scripts := testScripts(t, 10)
	dir := t.TempDir()
	cfg := testConfig(scripts)

	// Reference: one unsharded run.
	whole := filepath.Join(dir, "whole.jsonl")
	finalizedRun(t, cfg, whole, false)
	want := readFile(t, whole)

	// Three shards into separate sinks, merged.
	var parts []string
	for k := 0; k < 3; k++ {
		part := filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", k))
		scfg := cfg
		scfg.Shards, scfg.Shard = 3, k
		st := finalizedRun(t, scfg, part, false)
		if st.Jobs == 0 {
			t.Fatalf("shard %d got no jobs", k)
		}
		parts = append(parts, part)
	}
	merged := filepath.Join(dir, "merged.jsonl")
	if err := MergeRecords(merged, parts...); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, merged); string(got) != string(want) {
		t.Errorf("merged 3-shard output differs from unsharded run")
	}

	// Three shard invocations resuming into ONE sink.
	shared := filepath.Join(dir, "shared.jsonl")
	for k := 0; k < 3; k++ {
		scfg := cfg
		scfg.Shards, scfg.Shard = 3, k
		finalizedRun(t, scfg, shared, k > 0)
	}
	if got := readFile(t, shared); string(got) != string(want) {
		t.Errorf("shared-sink 3-shard output differs from unsharded run")
	}

	// A different layout (5 shards) lands on the same bytes too.
	shared5 := filepath.Join(dir, "shared5.jsonl")
	for k := 0; k < 5; k++ {
		scfg := cfg
		scfg.Shards, scfg.Shard = 5, k
		finalizedRun(t, scfg, shared5, k > 0)
	}
	if got := readFile(t, shared5); string(got) != string(want) {
		t.Errorf("5-shard output differs from unsharded run")
	}
}

func TestResumeAfterKill(t *testing.T) {
	scripts := testScripts(t, 9)
	dir := t.TempDir()
	cfg := testConfig(scripts)

	// Reference: uninterrupted run.
	whole := filepath.Join(dir, "whole.jsonl")
	finalizedRun(t, cfg, whole, false)
	want := readFile(t, whole)

	// "Killed" run: journal some records, then chop the file mid-line —
	// exactly what dying inside an append leaves behind.
	killed := filepath.Join(dir, "killed.jsonl")
	sink, err := OpenSink(killed, false)
	if err != nil {
		t.Fatal(err)
	}
	part := cfg
	part.Scripts = scripts[:5] // only some jobs "finished" before the kill
	part.Sink = sink
	if _, _, err := Run(context.Background(), part); err != nil {
		t.Fatal(err)
	}
	sink.Close() // no Finalize: the process died
	data := readFile(t, killed)
	if err := os.WriteFile(killed, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err) // torn trailing record
	}

	// Resume over the full job list.
	st := finalizedRun(t, cfg, killed, true)
	if st.SinkSkipped != 4 { // 5 journaled - 1 torn
		t.Errorf("resume skipped %d jobs, want 4", st.SinkSkipped)
	}
	if st.Executed != len(scripts)-4 {
		t.Errorf("resume executed %d jobs, want %d", st.Executed, len(scripts)-4)
	}
	if got := readFile(t, killed); string(got) != string(want) {
		t.Errorf("resumed run's final JSONL differs from uninterrupted run")
	}
}

// TestResumeAfterScriptEdit pins the stale-record defence: a record for
// an edited (or removed) script must not survive a resumed run — by name
// it describes the same test, so keeping both the old and new verdict
// would corrupt summaries and exit codes.
func TestResumeAfterScriptEdit(t *testing.T) {
	scripts := testScripts(t, 6)
	dir := t.TempDir()
	cfg := testConfig(scripts)

	sinkPath := filepath.Join(dir, "run.jsonl")
	finalizedRun(t, cfg, sinkPath, false)

	// Edit one script, then resume into the same sink.
	edited := append([]*trace.Script(nil), scripts...)
	mod, err := trace.ParseScript("@type script\n# Test pipe___job_02\nmkdir \"d2\" 0o700\n")
	if err != nil {
		t.Fatal(err)
	}
	edited[2] = mod
	ecfg := cfg
	ecfg.Scripts = edited
	st := finalizedRun(t, ecfg, sinkPath, true)
	if st.Executed != 1 || st.SinkSkipped != 5 {
		t.Errorf("resume after edit: executed %d, resumed %d, want 1/5", st.Executed, st.SinkSkipped)
	}

	// The sink must equal a fresh run of the edited suite: same count, no
	// stale record for the old pipe___job_02.
	freshPath := filepath.Join(dir, "fresh.jsonl")
	finalizedRun(t, ecfg, freshPath, false)
	if got, want := string(readFile(t, sinkPath)), string(readFile(t, freshPath)); got != want {
		t.Errorf("resumed-after-edit sink differs from a fresh run of the edited suite")
	}
}

func TestSummariseMatchesRecords(t *testing.T) {
	// A deviating implementation: the spec for the wrong platform.
	scripts := testScripts(t, 6)
	cfg := testConfig(scripts)
	records, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarise("pipe-test", records)
	if sum.Total != len(scripts) {
		t.Fatalf("summary total %d, want %d", sum.Total, len(scripts))
	}
	if sum.Accepted != len(scripts) || sum.Rejected != 0 {
		t.Fatalf("conforming memfs rejected: %+v", sum)
	}
	// Round-trip through JSONL and re-summarise: identical text.
	path := filepath.Join(t.TempDir(), "r.jsonl")
	if err := WriteRecords(path, records); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := Summarise("pipe-test", loaded).String(); got != sum.String() {
		t.Errorf("summary from JSONL differs:\n%s\nvs\n%s", got, sum.String())
	}
}

func TestRecordResultRoundTrip(t *testing.T) {
	scripts := testScripts(t, 1)
	cfg := testConfig(scripts)
	cfg.Spec = types.Spec{Platform: types.PlatformPOSIX, Permissions: true, RootUser: true}
	records, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := records[0]
	r := rec.Result()
	if r.Name != rec.Name || r.Accepted != rec.Accepted || r.Steps != rec.Steps ||
		r.MaxStates != rec.MaxStates || r.TauExpansions != rec.TauExpansions ||
		r.SumStates != rec.SumStates || r.StateSetCapHit != rec.CapHit ||
		len(r.Errors) != len(rec.Errors) {
		t.Errorf("Result() round-trip mismatch: %+v vs %+v", r, rec)
	}
}
