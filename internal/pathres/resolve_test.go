package pathres

import (
	"strings"
	"testing"

	"repro/internal/state"
	"repro/internal/types"
)

// fixture builds the standard test tree:
//
//	/d            (dir)
//	/d/sub        (dir)
//	/d/f          (file)
//	/f            (file)
//	/sf  -> f     (symlink to file)
//	/sd  -> d     (symlink to dir)
//	/sb  -> nope  (broken symlink)
//	/l1  -> l2, /l2 -> l1 (loop)
//	/abs -> /f    (absolute symlink)
func fixture() (*state.Heap, state.DirRef) {
	h := state.NewHeap()
	d := h.AllocDir(h.Root, 0o755, 0, 0)
	h.LinkDir(h.Root, "d", d)
	sub := h.AllocDir(d, 0o755, 0, 0)
	h.LinkDir(d, "sub", sub)
	df := h.AllocFile(0o644, 0, 0)
	h.LinkFile(d, "f", df)
	f := h.AllocFile(0o644, 0, 0)
	h.LinkFile(h.Root, "f", f)
	link := func(name, target string) {
		s := h.AllocSymlink(target, 0o777, 0, 0)
		h.LinkFile(h.Root, name, s)
	}
	link("sf", "f")
	link("sd", "d")
	link("sb", "nope")
	link("l1", "l2")
	link("l2", "l1")
	link("abs", "/f")
	return h, d
}

func resolve(h *state.Heap, cwd state.DirRef, path string, follow Follow) ResName {
	return Resolve(Request{
		Heap: h, Cwd: cwd, CwdValid: true, Path: path,
		Follow: follow, Platform: types.PlatformLinux,
	})
}

func TestResolveBasics(t *testing.T) {
	h, d := fixture()
	cases := []struct {
		path   string
		follow Follow
		want   string // "dir", "file", "none", or an errno name
	}{
		{"", FollowLast, "ENOENT"},
		{"/", FollowLast, "dir"},
		{"//", FollowLast, "dir"},
		{"///", FollowLast, "dir"},
		{"/d", FollowLast, "dir"},
		{"/d/", FollowLast, "dir"},
		{"/d/sub", FollowLast, "dir"},
		{"/d/f", FollowLast, "file"},
		{"/f", NoFollowLast, "file"},
		{"/missing", FollowLast, "none"},
		{"/missing/", FollowLast, "none"},
		{"/nodir/nofile", FollowLast, "ENOENT"},
		{"/f/x", FollowLast, "ENOTDIR"},
		{"/d/.", FollowLast, "dir"},
		{"/d/..", FollowLast, "dir"},
		{"/..", FollowLast, "dir"},
		{"d", FollowLast, "dir"},
		{"d/f", FollowLast, "file"},
	}
	for _, c := range cases {
		got := resolve(h, h.Root, c.path, c.follow)
		if kindOf(got) != c.want {
			t.Errorf("Resolve(%q) = %#v, want %s", c.path, got, c.want)
		}
	}
	_ = d
}

func kindOf(rn ResName) string {
	switch r := rn.(type) {
	case RNDir:
		return "dir"
	case RNFile:
		return "file"
	case RNNone:
		return "none"
	case RNError:
		return r.Err.String()
	}
	return "?"
}

func TestResolveSymlinks(t *testing.T) {
	h, d := fixture()
	// Follow: symlink to file resolves to the target file.
	if r, ok := resolve(h, h.Root, "/sf", FollowLast).(RNFile); !ok || r.IsSymlink {
		t.Errorf("follow /sf = %#v", resolve(h, h.Root, "/sf", FollowLast))
	}
	// NoFollow: the symlink itself.
	if r, ok := resolve(h, h.Root, "/sf", NoFollowLast).(RNFile); !ok || !r.IsSymlink {
		t.Errorf("nofollow /sf = %#v", resolve(h, h.Root, "/sf", NoFollowLast))
	}
	// Symlink mid-path is always followed.
	if r, ok := resolve(h, h.Root, "/sd/f", NoFollowLast).(RNFile); !ok || r.Parent != d {
		t.Errorf("/sd/f = %#v", resolve(h, h.Root, "/sd/f", NoFollowLast))
	}
	// Broken symlink with follow is RNNone (creatable location).
	if _, ok := resolve(h, h.Root, "/sb", FollowLast).(RNNone); !ok {
		t.Errorf("/sb follow = %#v", resolve(h, h.Root, "/sb", FollowLast))
	}
	// Loop gives ELOOP.
	if kindOf(resolve(h, h.Root, "/l1", FollowLast)) != "ELOOP" {
		t.Errorf("/l1 = %#v", resolve(h, h.Root, "/l1", FollowLast))
	}
	// Loop in the middle of a path too.
	if kindOf(resolve(h, h.Root, "/l1/x", NoFollowLast)) != "ELOOP" {
		t.Errorf("/l1/x = %#v", resolve(h, h.Root, "/l1/x", NoFollowLast))
	}
	// Absolute symlink target restarts at the root.
	if _, ok := resolve(h, h.Root, "/abs", FollowLast).(RNFile); !ok {
		t.Errorf("/abs = %#v", resolve(h, h.Root, "/abs", FollowLast))
	}
}

func TestTrailingSlashOnSymlinkNotFollowedForNoFollow(t *testing.T) {
	h, _ := fixture()
	// unlink-style resolution: "sd/" stays an unfollowed symlink leaf; the
	// command layer turns it into ENOTDIR (Linux-observed behaviour).
	r, ok := resolve(h, h.Root, "/sd/", NoFollowLast).(RNFile)
	if !ok || !r.IsSymlink || !r.TrailingSlash {
		t.Errorf("/sd/ nofollow = %#v", resolve(h, h.Root, "/sd/", NoFollowLast))
	}
	// Follow commands resolve through it.
	if _, ok := resolve(h, h.Root, "/sd/", FollowLast).(RNDir); !ok {
		t.Errorf("/sd/ follow = %#v", resolve(h, h.Root, "/sd/", FollowLast))
	}
	// Trailing slash through a symlink to a file ends at the file with the
	// trailing flag set (commands map it to ENOTDIR).
	rf, ok := resolve(h, h.Root, "/sf/", FollowLast).(RNFile)
	if !ok || !rf.TrailingSlash || rf.IsSymlink {
		t.Errorf("/sf/ follow = %#v", resolve(h, h.Root, "/sf/", FollowLast))
	}
}

func TestRelativeResolution(t *testing.T) {
	h, d := fixture()
	if r, ok := resolve(h, d, "f", FollowLast).(RNFile); !ok || r.Parent != d {
		t.Errorf("relative f from /d = %#v", resolve(h, d, "f", FollowLast))
	}
	if r, ok := resolve(h, d, "../f", FollowLast).(RNFile); !ok || r.Parent != h.Root {
		t.Errorf("../f from /d = %#v", resolve(h, d, "../f", FollowLast))
	}
	if _, ok := resolve(h, d, ".", FollowLast).(RNDir); !ok {
		t.Errorf(". from /d = %#v", resolve(h, d, ".", FollowLast))
	}
}

func TestDisconnectedCwd(t *testing.T) {
	h, d := fixture()
	sub, _ := h.Lookup(d, "sub")
	h.UnlinkDir(d, "sub")
	// Relative resolution from an unlinked cwd fails ENOENT.
	got := resolve(h, sub.Dir, "x", FollowLast)
	if kindOf(got) != "ENOENT" {
		t.Errorf("from disconnected cwd: %#v", got)
	}
	// ".." from a disconnected dir also fails.
	got = resolve(h, sub.Dir, "..", FollowLast)
	if kindOf(got) != "ENOENT" {
		t.Errorf(".. from disconnected: %#v", got)
	}
}

func TestNameAndPathLimits(t *testing.T) {
	h, _ := fixture()
	long := strings.Repeat("a", types.NameMax+1)
	if kindOf(resolve(h, h.Root, "/"+long, FollowLast)) != "ENAMETOOLONG" {
		t.Error("long component accepted")
	}
	huge := "/" + strings.Repeat("a/", types.PathMax)
	if kindOf(resolve(h, h.Root, huge, FollowLast)) != "ENAMETOOLONG" {
		t.Error("long path accepted")
	}
	ok := strings.Repeat("b", types.NameMax)
	if kindOf(resolve(h, h.Root, "/"+ok, FollowLast)) != "none" {
		t.Error("max-length component rejected")
	}
}

type denyAll struct{}

func (denyAll) MayExec(*state.Heap, state.DirRef) bool { return false }

func TestExecCheckerDeniesTraversal(t *testing.T) {
	h, _ := fixture()
	got := Resolve(Request{
		Heap: h, Cwd: h.Root, CwdValid: true, Path: "/d/f",
		Follow: FollowLast, Platform: types.PlatformLinux, Exec: denyAll{},
	})
	if kindOf(got) != "EACCES" {
		t.Errorf("denied traversal = %#v", got)
	}
}

func TestErrOf(t *testing.T) {
	if ErrOf(RNError{Err: types.ELOOP}) != types.ELOOP {
		t.Error("ErrOf on error")
	}
	if ErrOf(RNDir{}) != types.EOK {
		t.Error("ErrOf on non-error")
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct {
		path     string
		n        int
		trailing bool
	}{
		{"/a/b", 2, false},
		{"/a/b/", 2, true},
		{"a//b", 2, false},
		{"/", 0, false},
		{"///", 0, false},
		{"a", 1, false},
	}
	for _, c := range cases {
		comps, tr := splitPath(c.path)
		if len(comps) != c.n || tr != c.trailing {
			t.Errorf("splitPath(%q) = %v %v", c.path, comps, tr)
		}
	}
}

func TestResolveIsPure(t *testing.T) {
	h, _ := fixture()
	before := h.NumDirs() + h.NumFiles()
	for _, p := range []string{"/d/f", "/sb", "/l1", "/missing", "/f/x", "/sd/sub"} {
		resolve(h, h.Root, p, FollowLast)
		resolve(h, h.Root, p, NoFollowLast)
	}
	if h.NumDirs()+h.NumFiles() != before {
		t.Error("resolution mutated the heap")
	}
}
