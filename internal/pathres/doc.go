// Package pathres implements the paper's path resolution module (§5): it
// maps a raw path string, a starting directory and a follow-last policy to
// a resolved name (res_name). All the "tricky details" — trailing slashes,
// symlink chains, ELOOP limits, permission checks during traversal — are
// confined here so the file-system module works over clean resolved names.
package pathres
