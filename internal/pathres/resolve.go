package pathres

import (
	"strings"

	"repro/internal/state"
	"repro/internal/types"
)

// ResName is the result of path resolution (res_name in the paper): a
// sealed interface with the four constructors RN_dir, RN_file, RN_none and
// RN_error.
type ResName interface{ isResName() }

// RNDir means the path resolved to a directory.
type RNDir struct {
	Dir state.DirRef
	// Parent and Name locate the entry binding the directory, when the
	// directory was reached through a parent (rename and rmdir need this).
	// HasParent is false for the root and for "." / ".." results.
	Parent    state.DirRef
	Name      string
	HasParent bool
}

// RNFile means the path resolved to a non-directory file.
type RNFile struct {
	Parent state.DirRef
	Name   string
	File   state.FileRef
	// TrailingSlash records that the original path had a trailing slash;
	// command semantics decide what error (if any) that produces, because
	// platforms disagree (§7.3.2 "Path resolution, trailing slashes").
	TrailingSlash bool
	// IsSymlink is set when the entry is an unfollowed symlink.
	IsSymlink bool
}

// RNNone means the final component does not exist in an existing parent
// directory (the useful case for mkdir, open O_CREAT, symlink, rename dst).
type RNNone struct {
	Parent        state.DirRef
	Name          string
	TrailingSlash bool
}

// RNError means resolution failed.
type RNError struct{ Err types.Errno }

func (RNDir) isResName()   {}
func (RNFile) isResName()  {}
func (RNNone) isResName()  {}
func (RNError) isResName() {}

// Follow is the follow-last-symlink policy, determined per command (and,
// for open, per flag set) by the caller.
type Follow int

// Follow policies.
const (
	FollowLast   Follow = iota // stat, open without O_NOFOLLOW, chdir, truncate, ...
	NoFollowLast               // lstat, unlink, readlink, rename, symlink, mkdir, ...
)

// ExecChecker is how the permissions trait hooks into resolution: every
// directory traversed needs search (execute) permission. A nil checker
// disables the checks ("core without permissions").
type ExecChecker interface {
	MayExec(h *state.Heap, d state.DirRef) bool
}

// Request carries the inputs of one resolution.
type Request struct {
	Heap     *state.Heap
	Cwd      state.DirRef
	CwdValid bool // false once the cwd has been unlinked (disconnected)
	Path     string
	Follow   Follow
	Platform types.Platform
	Exec     ExecChecker
}

// Resolve performs path resolution. It is a pure function of the request:
// it never modifies the heap.
func Resolve(req Request) ResName {
	r := &resolver{req: req, depth: 0}
	return r.run()
}

type resolver struct {
	req   Request
	depth int // symlink expansions so far
}

func (r *resolver) run() ResName {
	p := r.req.Path
	if p == "" {
		return RNError{Err: types.ENOENT}
	}
	if len(p) > types.PathMax {
		return RNError{Err: types.ENAMETOOLONG}
	}
	start := r.req.Cwd
	if strings.HasPrefix(p, "/") {
		start = r.req.Heap.Root
	} else {
		cwdOK := r.req.CwdValid &&
			(start == r.req.Heap.Root || r.req.Heap.IsConnected(start))
		if !cwdOK {
			// Relative resolution from a deleted working directory: the
			// kernel can no longer walk from it by name; Linux returns
			// ENOENT. "." may still resolve to the disconnected dir.
			comps, _ := splitPath(p)
			if len(comps) > 0 && comps[0] != "." {
				return RNError{Err: types.ENOENT}
			}
		}
	}
	comps, trailing := splitPath(p)
	if p == "/" || onlySlashes(p) {
		return RNDir{Dir: r.req.Heap.Root}
	}
	return r.walk(start, comps, trailing)
}

// splitPath returns the path components (with "." and ".." preserved) and
// whether the path had a trailing slash. Repeated slashes collapse; POSIX
// makes exactly two leading slashes implementation-defined and all modelled
// platforms treat them as one.
func splitPath(p string) (comps []string, trailing bool) {
	trailing = strings.HasSuffix(p, "/") && !onlySlashes(p)
	for _, c := range strings.Split(p, "/") {
		if c != "" {
			comps = append(comps, c)
		}
	}
	return comps, trailing
}

func onlySlashes(p string) bool {
	for i := 0; i < len(p); i++ {
		if p[i] != '/' {
			return false
		}
	}
	return len(p) > 0
}

// walk resolves comps starting at dir. trailing applies to the final
// component only.
func (r *resolver) walk(dir state.DirRef, comps []string, trailing bool) ResName {
	h := r.req.Heap
	for i := 0; i < len(comps); i++ {
		c := comps[i]
		last := i == len(comps)-1
		if len(c) > types.NameMax {
			return RNError{Err: types.ENAMETOOLONG}
		}
		if r.req.Exec != nil && !r.req.Exec.MayExec(h, dir) {
			return RNError{Err: types.EACCES}
		}
		switch c {
		case ".":
			if last {
				return RNDir{Dir: dir}
			}
			continue
		case "..":
			d := h.Dir(dir)
			if d == nil {
				return RNError{Err: types.ENOENT}
			}
			if dir != h.Root && !h.IsConnected(dir) {
				// ".." from a disconnected directory cannot be resolved by
				// walking the tree; all modelled platforms fail.
				return RNError{Err: types.ENOENT}
			}
			dir = d.Parent
			if last {
				return RNDir{Dir: dir}
			}
			continue
		}
		e, ok := h.Lookup(dir, c)
		if !ok {
			if last {
				return RNNone{Parent: dir, Name: c, TrailingSlash: trailing}
			}
			return RNError{Err: types.ENOENT}
		}
		switch e.Kind {
		case state.EntryDir:
			if last {
				return RNDir{Dir: e.Dir, Parent: dir, Name: c, HasParent: true}
			}
			dir = e.Dir
		case state.EntrySymlink:
			// A trailing slash does NOT force following for no-follow
			// commands (unlink("s/") is ENOTDIR on Linux, not an operation
			// on the target); commands where it does (open, lstat,
			// readlink) select FollowLast themselves.
			follow := !last || r.req.Follow == FollowLast
			if !follow {
				return RNFile{
					Parent: dir, Name: c, File: e.File,
					TrailingSlash: trailing, IsSymlink: true,
				}
			}
			res := r.expandSymlink(dir, e.File, comps[i+1:], last, trailing)
			return res
		case state.EntryFile:
			if !last {
				return RNError{Err: types.ENOTDIR}
			}
			return RNFile{Parent: dir, Name: c, File: e.File, TrailingSlash: trailing}
		}
	}
	return RNDir{Dir: dir}
}

// expandSymlink splices the symlink target in front of the remaining
// components and continues the walk, enforcing the platform's ELOOP limit.
func (r *resolver) expandSymlink(dir state.DirRef, link state.FileRef, rest []string, last, trailing bool) ResName {
	r.depth++
	if r.depth > r.req.Platform.SymlinkLimit() {
		return RNError{Err: types.ELOOP}
	}
	h := r.req.Heap
	f := h.File(link)
	if f == nil || !f.IsSymlink {
		return RNError{Err: types.ENOENT}
	}
	target := string(f.Bytes)
	if target == "" {
		return RNError{Err: types.ENOENT}
	}
	start := dir
	if strings.HasPrefix(target, "/") {
		start = h.Root
	}
	tcomps, ttrail := splitPath(target)
	if onlySlashes(target) {
		// Symlink to "/": continue from the root.
		if len(rest) == 0 {
			return RNDir{Dir: h.Root}
		}
		return r.walk(h.Root, rest, trailing)
	}
	// A trailing slash applies if the symlink was the last component and the
	// original path (or the target itself) ended in a slash.
	comps := append(append([]string(nil), tcomps...), rest...)
	finalTrailing := trailing
	if len(rest) > 0 {
		finalTrailing = trailing
	} else {
		finalTrailing = trailing || ttrail
	}
	if len(comps) == 0 {
		return RNDir{Dir: start}
	}
	return r.walk(start, comps, finalTrailing)
}

// ErrOf extracts the error from an RNError, or EOK for other results.
func ErrOf(rn ResName) types.Errno {
	if e, ok := rn.(RNError); ok {
		return e.Err
	}
	return types.EOK
}
