package testgen

import (
	"repro/internal/trace"
	"repro/internal/types"
)

// HandwrittenScripts are the targeted scenarios from the paper's survey
// (§7.3) plus a few cross-process interleavings: each one reproduces a
// catalogued defect when run against the matching fsimpl profile, and is
// clean on conforming implementations.
func HandwrittenScripts() []*trace.Script {
	var out []*trace.Script

	// Fig 8: the OpenZFS-on-OS-X disconnected-directory spin.
	out = append(out, bare("survey___fig8_disconnected_create",
		call(1, types.Mkdir{Path: "deserted", Perm: 0o700}),
		call(1, types.Chdir{Path: "deserted"}),
		call(1, types.Rmdir{Path: "../deserted"}),
		call(1, types.Open{Path: "party", Flags: types.OCreat | types.ORdonly, Perm: 0o600, HasPerm: true}),
	))

	// §7.3.5: the posixovl/VFAT storage leak. Repeatedly create files with
	// hard links and delete them via rename; on the buggy overlay the
	// replaced link's count is never decremented and its blocks leak, until
	// creation fails ENOENT on a volume that looks empty.
	leak := bare("survey___posixovl_rename_leak")
	data := mkbytes(8192)
	for i := 0; i < 40; i++ {
		fd := types.FD(3 + 2*i)
		leak.Steps = append(leak.Steps,
			call(1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
			call(1, types.Write{FD: fd, Data: data, Size: int64(len(data))}),
			call(1, types.Close{FD: fd}),
			call(1, types.Link{Src: "/f", Dst: "/g"}),
			call(1, types.Stat{Path: "/f"}),
			call(1, types.Open{Path: "/h", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
			call(1, types.Close{FD: fd + 1}),
			call(1, types.Rename{Src: "/h", Dst: "/g"}), // replaces the hard link
			call(1, types.Stat{Path: "/f"}),             // nlink must be back to 1
			call(1, types.Unlink{Path: "/f"}),
			call(1, types.Unlink{Path: "/g"}),
		)
	}
	out = append(out, leak)

	// §7.3.4: pwrite with a negative offset must be EINVAL; the OS X VFS
	// underflows and the process dies of SIGXFSZ (observed as EFBIG here).
	out = append(out, bare("survey___pwrite_negative_offset",
		call(1, types.Open{Path: "/t", Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true}),
		call(1, types.Pwrite{FD: 3, Data: []byte("x"), Size: 1, Off: -1}),
		call(1, types.Close{FD: 3}),
	))

	// §7.3.3: the Linux O_APPEND/pwrite convention.
	out = append(out, bare("survey___o_append_pwrite",
		call(1, types.Open{Path: "/t", Flags: types.OCreat | types.OWronly | types.OAppend, Perm: 0o644, HasPerm: true}),
		call(1, types.Write{FD: 3, Data: []byte("base"), Size: 4}),
		call(1, types.Pwrite{FD: 3, Data: []byte("XY"), Size: 2, Off: 0}),
		call(1, types.Close{FD: 3}),
		call(1, types.Open{Path: "/t", Flags: types.ORdonly}),
		call(1, types.Read{FD: 4, Size: 16}),
		call(1, types.Close{FD: 4}),
	))

	// §7.3.4: OpenZFS 0.6.3 on Trusty does not seek to EOF before writes on
	// O_APPEND descriptors, overwriting data.
	out = append(out, bare("survey___o_append_broken_seek",
		call(1, types.Open{Path: "/t", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
		call(1, types.Write{FD: 3, Data: []byte("precious"), Size: 8}),
		call(1, types.Close{FD: 3}),
		call(1, types.Open{Path: "/t", Flags: types.OWronly | types.OAppend}),
		call(1, types.Write{FD: 4, Data: []byte("XY"), Size: 2}),
		call(1, types.Close{FD: 4}),
		call(1, types.Open{Path: "/t", Flags: types.ORdonly}),
		call(1, types.Read{FD: 5, Size: 16}),
		call(1, types.Close{FD: 5}),
	))

	// §7.3.2: unlink of a directory — EISDIR (Linux/LSB) vs EPERM (POSIX).
	out = append(out, bare("survey___unlink_directory",
		call(1, types.Mkdir{Path: "/d", Perm: 0o755}),
		call(1, types.Unlink{Path: "/d"}),
	))

	// §7.3.2: renaming the root directory — EBUSY/EINVAL vs OS X's EISDIR.
	out = append(out, bare("survey___rename_root",
		call(1, types.Mkdir{Path: "/d", Perm: 0o755}),
		call(1, types.Rename{Src: "/", Dst: "/d/r"}),
	))

	// §7.3.2: FreeBSD's O_CREAT|O_DIRECTORY|O_EXCL on a symlink returns
	// ENOTDIR and replaces the symlink — breaking the errors-don't-change-
	// state invariant. The trailing lstat observes the damage.
	out = append(out, bare("survey___freebsd_symlink_invariant",
		call(1, types.Mkdir{Path: "/target", Perm: 0o755}),
		call(1, types.Symlink{Target: "target", Linkpath: "/sl"}),
		call(1, types.Open{Path: "/sl", Flags: types.OCreat | types.OExcl | types.ODirectory | types.OWronly, Perm: 0o644, HasPerm: true}),
		call(1, types.Lstat{Path: "/sl"}),
	))

	// §7.3.4: HFS+ on Trusty fails every chmod with EOPNOTSUPP.
	out = append(out, bare("survey___chmod_unsupported",
		call(1, types.Open{Path: "/t", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
		call(1, types.Close{FD: 3}),
		call(1, types.Chmod{Path: "/t", Perm: 0o600}),
		call(1, types.Stat{Path: "/t"}),
	))

	// §7.3.2: hard link to a symlink — Linux links the symlink itself,
	// HFS+ on Linux returns EPERM.
	out = append(out, bare("survey___link_to_symlink",
		call(1, types.Open{Path: "/t", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
		call(1, types.Close{FD: 3}),
		call(1, types.Symlink{Target: "t", Linkpath: "/s"}),
		call(1, types.Link{Src: "/s", Dst: "/hl"}),
		call(1, types.Lstat{Path: "/hl"}),
	))

	// §7.3.2: directory link counts (Btrfs/SSHFS report flat nlink=1).
	out = append(out, bare("survey___dir_link_counts",
		call(1, types.Mkdir{Path: "/d", Perm: 0o755}),
		call(1, types.Stat{Path: "/d"}),
		call(1, types.Mkdir{Path: "/d/sub1", Perm: 0o755}),
		call(1, types.Stat{Path: "/d"}),
		call(1, types.Mkdir{Path: "/d/sub2", Perm: 0o755}),
		call(1, types.Stat{Path: "/d"}),
		call(1, types.Rmdir{Path: "/d/sub1"}),
		call(1, types.Stat{Path: "/d"}),
	))

	// §7.3.2: the readlink symlink-to-symlink trailing-slash quirk.
	out = append(out, bare("survey___readlink_chain_trailing",
		call(1, types.Mkdir{Path: "/dir", Perm: 0o755}),
		call(1, types.Symlink{Target: "dir", Linkpath: "/s1"}),
		call(1, types.Symlink{Target: "s1", Linkpath: "/s2"}),
		call(1, types.Readlink{Path: "/s2/"}),
	))

	// §7.3.4: SSHFS creation ownership — files created by a non-root user
	// end up owned by the mount owner (root).
	out = append(out, bare("survey___sshfs_creation_ownership",
		call(1, types.Mkdir{Path: "/shared", Perm: 0o777}),
		call(1, types.Chmod{Path: "/shared", Perm: 0o777}), // umask-proof
		create(2, 1000, 1000),
		call(2, types.Open{Path: "/shared/mine", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
		call(2, types.Close{FD: 3}),
		call(2, types.Stat{Path: "/shared/mine"}),
	))

	// §7.3.4: SSHFS permission bypass with plain allow_other: another user
	// can open a 0600 file it does not own.
	out = append(out, bare("survey___sshfs_allow_other_bypass",
		call(1, types.Mkdir{Path: "/shared", Perm: 0o777}),
		call(1, types.Open{Path: "/shared/secret", Flags: types.OCreat | types.OWronly, Perm: 0o600, HasPerm: true}),
		call(1, types.Write{FD: 3, Data: []byte("top"), Size: 3}),
		call(1, types.Close{FD: 3}),
		call(1, types.Chown{Path: "/shared/secret", Uid: 1000, Gid: 1000}),
		create(2, 1001, 1001),
		call(2, types.Open{Path: "/shared/secret", Flags: types.ORdonly}),
		call(2, types.Read{FD: 3, Size: 3}),
	))

	// Cross-process interleavings beyond permissions.
	out = append(out, bare("interleave___rename_vs_stat",
		call(1, types.Mkdir{Path: "/d", Perm: 0o755}),
		call(1, types.Open{Path: "/d/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
		call(1, types.Close{FD: 3}),
		create(2, 0, 0),
		call(2, types.Stat{Path: "/d/f"}),
		call(1, types.Rename{Src: "/d/f", Dst: "/d/g"}),
		call(2, types.Stat{Path: "/d/f"}),
		call(2, types.Stat{Path: "/d/g"}),
	))
	out = append(out, bare("interleave___unlink_while_open",
		call(1, types.Open{Path: "/t", Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true}),
		call(1, types.Write{FD: 3, Data: []byte("keep"), Size: 4}),
		create(2, 0, 0),
		call(2, types.Unlink{Path: "/t"}),
		call(1, types.Pread{FD: 3, Size: 4, Off: 0}),
		call(1, types.Close{FD: 3}),
		call(1, types.Stat{Path: "/t"}),
	))
	out = append(out, bare("interleave___cwd_per_process",
		call(1, types.Mkdir{Path: "/a", Perm: 0o755}),
		call(1, types.Mkdir{Path: "/b", Perm: 0o755}),
		create(2, 0, 0),
		call(1, types.Chdir{Path: "/a"}),
		call(2, types.Chdir{Path: "/b"}),
		call(1, types.Open{Path: "f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
		call(1, types.Close{FD: 3}),
		call(2, types.Stat{Path: "f"}),
		call(2, types.Stat{Path: "/a/f"}),
	))

	// rmdir under restrictive parents: EACCES (unwritable parent), the
	// sticky-bit EPERM, and rmdir(".") of a disconnected directory.
	out = append(out, bare("perm___rmdir_unwritable_parent",
		call(1, types.Mkdir{Path: "/p", Perm: 0o755}),
		call(1, types.Mkdir{Path: "/p/victim", Perm: 0o755}),
		call(1, types.Chmod{Path: "/p", Perm: 0o555}),
		create(2, 1000, 1000),
		call(2, types.Rmdir{Path: "/p/victim"}),
		call(1, types.Lstat{Path: "/p/victim"}),
	))
	out = append(out, bare("perm___rmdir_sticky_parent",
		call(1, types.Mkdir{Path: "/p", Perm: 0o1777}),
		call(1, types.Mkdir{Path: "/p/victim", Perm: 0o755}),
		create(2, 1000, 1000),
		call(2, types.Rmdir{Path: "/p/victim"}),
		call(1, types.Lstat{Path: "/p/victim"}),
	))
	out = append(out, bare("survey___rmdir_disconnected_dot",
		call(1, types.Mkdir{Path: "/gone", Perm: 0o755}),
		call(1, types.Chdir{Path: "/gone"}),
		call(1, types.Rmdir{Path: "/gone"}),
		call(1, types.Rmdir{Path: "."}),
	))

	// Process destruction mid-script (the 2% of unreached model lines in
	// §7.2 includes process destruction — we test it).
	out = append(out, bare("interleave___destroy_with_open_fds",
		create(2, 0, 0),
		call(2, types.Open{Path: "/t", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
		call(2, types.Write{FD: 3, Data: []byte("x"), Size: 1}),
		trace.Step{Label: types.DestroyLabel{Pid: 2}},
		call(1, types.Stat{Path: "/t"}),
	))

	return out
}
