package testgen

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/types"
)

func TestConcurrentScriptsWellFormed(t *testing.T) {
	scripts := ConcurrentScripts()
	if len(scripts) < 10 {
		t.Fatalf("only %d concurrent scripts", len(scripts))
	}
	multiProc := 0
	multiUid := 0
	for _, s := range scripts {
		if !strings.HasPrefix(s.Name, "conc___") {
			t.Errorf("%s: not in the conc group", s.Name)
		}
		live := map[types.Pid]bool{1: true}
		uids := map[types.Uid]bool{}
		procs := map[types.Pid]bool{1: true}
		for _, st := range s.Steps {
			switch l := st.Label.(type) {
			case types.CreateLabel:
				if live[l.Pid] {
					t.Fatalf("%s: create of live pid %d", s.Name, l.Pid)
				}
				live[l.Pid] = true
				procs[l.Pid] = true
				uids[l.Uid] = true
			case types.DestroyLabel:
				if !live[l.Pid] {
					t.Fatalf("%s: destroy of dead pid %d", s.Name, l.Pid)
				}
				delete(live, l.Pid)
			case types.CallLabel:
				if !live[l.Pid] {
					t.Fatalf("%s: call from dead pid %d", s.Name, l.Pid)
				}
			case types.ReturnLabel, types.TauLabel:
				t.Fatalf("%s: script carries a %T", s.Name, l)
			}
		}
		if len(procs) > 4 {
			t.Errorf("%s: %d processes, universe is specified as 2–4", s.Name, len(procs))
		}
		if len(procs) >= 2 {
			multiProc++
		}
		if len(uids) >= 2 {
			multiUid++
		}
		// Round-trip through the concrete syntax: the fuzzer mutates these
		// as parsed scripts, so rendering must be stable.
		rt, err := trace.ParseScript(s.Render())
		if err != nil {
			t.Fatalf("%s: unparseable: %v", s.Name, err)
		}
		if rt.Render() != s.Render() {
			t.Errorf("%s: render round-trip unstable", s.Name)
		}
	}
	if multiProc != len(scripts) {
		t.Errorf("%d/%d scripts are multi-process; all must be", multiProc, len(scripts))
	}
	if multiUid == 0 {
		t.Error("no script exercises distinct uids (permission races missing)")
	}
}

func TestConcurrentScriptsShareContendedPaths(t *testing.T) {
	// Every script must have at least one path touched by two different
	// processes — otherwise there is nothing to race on.
	for _, s := range ConcurrentScripts() {
		touched := map[string]map[types.Pid]bool{}
		for _, st := range s.Steps {
			cl, ok := st.Label.(types.CallLabel)
			if !ok {
				continue
			}
			for _, p := range cmdPaths(cl.Cmd) {
				if touched[p] == nil {
					touched[p] = map[types.Pid]bool{}
				}
				touched[p][cl.Pid] = true
			}
		}
		shared := false
		for _, pids := range touched {
			if len(pids) >= 2 {
				shared = true
				break
			}
		}
		if !shared {
			t.Errorf("%s: no path contended by ≥ 2 processes", s.Name)
		}
	}
}

// cmdPaths extracts the path arguments of a command.
func cmdPaths(c types.Command) []string {
	switch v := c.(type) {
	case types.Mkdir:
		return []string{v.Path}
	case types.Rmdir:
		return []string{v.Path}
	case types.Unlink:
		return []string{v.Path}
	case types.Link:
		return []string{v.Src, v.Dst}
	case types.Rename:
		return []string{v.Src, v.Dst}
	case types.Symlink:
		return []string{v.Linkpath}
	case types.Readlink:
		return []string{v.Path}
	case types.Stat:
		return []string{v.Path}
	case types.Lstat:
		return []string{v.Path}
	case types.Truncate:
		return []string{v.Path}
	case types.Chmod:
		return []string{v.Path}
	case types.Chown:
		return []string{v.Path}
	case types.Chdir:
		return []string{v.Path}
	case types.Open:
		return []string{v.Path}
	case types.Opendir:
		return []string{v.Path}
	}
	return nil
}
