package testgen

import (
	"math/rand"

	"repro/internal/trace"
	"repro/internal/types"
)

// RandomScripts implements the randomised testing mode the paper lists as
// supported future work (§8 "Differential testing", §9): seeded random
// command sequences over a small name universe, so collisions with
// existing objects are frequent. Each script draws from an independent RNG
// derived from (seed, index), so any script is reproducible on its own —
// the property corpus replay in internal/fuzz depends on.
func RandomScripts(seed int64, n, callsPerScript int) []*trace.Script {
	out := make([]*trace.Script, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, RandomScript(seed, i, callsPerScript))
	}
	return out
}

// RandomScript regenerates script number index of the sequence RandomScripts
// produces for seed, without generating the scripts before it.
func RandomScript(seed int64, index, callsPerScript int) *trace.Script {
	r := rand.New(rand.NewSource(ScriptSeed(seed, index)))
	s := &trace.Script{Name: caseName("random", itoa(seed), itoa(int64(index)))}
	g := NewCmdGen(r)
	for j := 0; j < callsPerScript; j++ {
		s.Steps = append(s.Steps, call(1, g.Command()))
	}
	return s
}

// ScriptSeed derives the per-script RNG seed from the suite seed and the
// script index with a splitmix64 finalizer, so nearby (seed, index) pairs
// yield uncorrelated streams.
func ScriptSeed(seed int64, index int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(index) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// CmdGen draws random commands, tracking handle allocations so that
// descriptor-based calls mostly target live handles. It backs RandomScript
// and is exported for the fuzzer's mutation operators, which share the
// same name/flag/perm universes.
type CmdGen struct {
	r      *rand.Rand
	nextFD types.FD
	nextDH types.DH
	fds    []types.FD
	dhs    []types.DH
}

// NewCmdGen returns a generator drawing from r, with handle numbering
// starting at the executor's first descriptor (FD 3, DH 1).
func NewCmdGen(r *rand.Rand) *CmdGen {
	return &CmdGen{r: r, nextFD: 3, nextDH: 1}
}

// SeedHandles primes the live-handle pools, for mutating into an existing
// script that has already allocated descriptors.
func (g *CmdGen) SeedHandles(fds []types.FD, dhs []types.DH) {
	g.fds = append(g.fds, fds...)
	for _, fd := range fds {
		if fd >= g.nextFD {
			g.nextFD = fd + 1
		}
	}
	g.dhs = append(g.dhs, dhs...)
	for _, dh := range dhs {
		if dh >= g.nextDH {
			g.nextDH = dh + 1
		}
	}
}

var randNames = []string{
	"/a", "/b", "/c", "/d", "/d/x", "/d/y", "/d/z", "/e", "/e/w",
	"a", "b", "d/x", "e/w", "/d/", "/a/", ".", "..", "/", "",
	"/s1", "/s2", "/d/../a", "//b",
}

// Path draws from the small name universe (§6.1's idea: few names, many
// collisions).
func (g *CmdGen) Path() string { return randNames[g.r.Intn(len(randNames))] }

var randPerms = []types.Perm{0o777, 0o755, 0o700, 0o644, 0o600, 0o000, 0o1777}

// Perm draws a creation/chmod mode from the suite's permission universe.
func (g *CmdGen) Perm() types.Perm {
	return randPerms[g.r.Intn(len(randPerms))]
}

// FD draws a mostly-plausible file descriptor, sometimes junk.
func (g *CmdGen) FD() types.FD {
	if len(g.fds) > 0 && g.r.Intn(4) != 0 {
		return g.fds[g.r.Intn(len(g.fds))]
	}
	return types.FD(g.r.Intn(10))
}

// DH draws a mostly-plausible directory handle, sometimes junk.
func (g *CmdGen) DH() types.DH {
	if len(g.dhs) > 0 && g.r.Intn(4) != 0 {
		return g.dhs[g.r.Intn(len(g.dhs))]
	}
	return types.DH(g.r.Intn(4))
}

// Data draws a short lowercase payload.
func (g *CmdGen) Data() []byte {
	n := g.r.Intn(16)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + g.r.Intn(26))
	}
	return b
}

// Flags draws an open flag combination from the full 9-bit matrix.
func (g *CmdGen) Flags() types.OpenFlags {
	return types.OpenFlags(g.r.Intn(1 << 9))
}

// Command draws one random call, tracking handle allocations so that
// descriptor-based calls mostly target live handles.
func (g *CmdGen) Command() types.Command {
	switch g.r.Intn(20) {
	case 0:
		return types.Mkdir{Path: g.Path(), Perm: g.Perm()}
	case 1:
		return types.Rmdir{Path: g.Path()}
	case 2:
		return types.Unlink{Path: g.Path()}
	case 3:
		return types.Link{Src: g.Path(), Dst: g.Path()}
	case 4:
		return types.Rename{Src: g.Path(), Dst: g.Path()}
	case 5:
		return types.Symlink{Target: g.Path(), Linkpath: g.Path()}
	case 6:
		return types.Readlink{Path: g.Path()}
	case 7:
		return types.Stat{Path: g.Path()}
	case 8:
		return types.Lstat{Path: g.Path()}
	case 9:
		return types.Truncate{Path: g.Path(), Len: int64(g.r.Intn(12) - 2)}
	case 10:
		return types.Chmod{Path: g.Path(), Perm: g.Perm()}
	case 11:
		return types.Chdir{Path: g.Path()}
	case 12:
		// open may allocate; assume success for numbering (failed opens
		// leave a gap, which is fine — misuse is part of the test).
		fd := g.nextFD
		g.nextFD++
		g.fds = append(g.fds, fd)
		return types.Open{
			Path:    g.Path(),
			Flags:   g.Flags(),
			Perm:    g.Perm(),
			HasPerm: true,
		}
	case 13:
		return types.Close{FD: g.FD()}
	case 14:
		data := g.Data()
		return types.Write{FD: g.FD(), Data: data, Size: int64(len(data))}
	case 15:
		return types.Read{FD: g.FD(), Size: int64(g.r.Intn(20))}
	case 16:
		return types.Lseek{FD: g.FD(), Off: int64(g.r.Intn(20) - 4), Whence: types.SeekWhence(g.r.Intn(3))}
	case 17:
		dh := g.nextDH
		g.nextDH++
		g.dhs = append(g.dhs, dh)
		return types.Opendir{Path: g.Path()}
	case 18:
		return types.Readdir{DH: g.DH()}
	default:
		return types.Closedir{DH: g.DH()}
	}
}
