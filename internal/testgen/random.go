package testgen

import (
	"math/rand"

	"repro/internal/trace"
	"repro/internal/types"
)

// RandomScripts implements the randomised testing mode the paper lists as
// supported future work (§8 "Differential testing", §9): seeded random
// command sequences over a small name universe, so collisions with
// existing objects are frequent. Scripts are reproducible from the seed.
func RandomScripts(seed int64, n, callsPerScript int) []*trace.Script {
	r := rand.New(rand.NewSource(seed))
	out := make([]*trace.Script, 0, n)
	for i := 0; i < n; i++ {
		s := &trace.Script{Name: caseName("random", itoa(seed), itoa(int64(i)))}
		g := &randGen{r: r, nextFD: 3, nextDH: 1}
		for j := 0; j < callsPerScript; j++ {
			s.Steps = append(s.Steps, call(1, g.command()))
		}
		out = append(out, s)
	}
	return out
}

type randGen struct {
	r      *rand.Rand
	nextFD types.FD
	nextDH types.DH
	fds    []types.FD
	dhs    []types.DH
}

var randNames = []string{
	"/a", "/b", "/c", "/d", "/d/x", "/d/y", "/d/z", "/e", "/e/w",
	"a", "b", "d/x", "e/w", "/d/", "/a/", ".", "..", "/", "",
	"/s1", "/s2", "/d/../a", "//b",
}

func (g *randGen) path() string { return randNames[g.r.Intn(len(randNames))] }

func (g *randGen) perm() types.Perm {
	perms := []types.Perm{0o777, 0o755, 0o700, 0o644, 0o600, 0o000, 0o1777}
	return perms[g.r.Intn(len(perms))]
}

func (g *randGen) fd() types.FD {
	// Mostly plausible descriptors, sometimes junk.
	if len(g.fds) > 0 && g.r.Intn(4) != 0 {
		return g.fds[g.r.Intn(len(g.fds))]
	}
	return types.FD(g.r.Intn(10))
}

func (g *randGen) dh() types.DH {
	if len(g.dhs) > 0 && g.r.Intn(4) != 0 {
		return g.dhs[g.r.Intn(len(g.dhs))]
	}
	return types.DH(g.r.Intn(4))
}

func (g *randGen) data() []byte {
	n := g.r.Intn(16)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + g.r.Intn(26))
	}
	return b
}

// command draws one random call, tracking handle allocations so that
// descriptor-based calls mostly target live handles.
func (g *randGen) command() types.Command {
	switch g.r.Intn(20) {
	case 0:
		return types.Mkdir{Path: g.path(), Perm: g.perm()}
	case 1:
		return types.Rmdir{Path: g.path()}
	case 2:
		return types.Unlink{Path: g.path()}
	case 3:
		return types.Link{Src: g.path(), Dst: g.path()}
	case 4:
		return types.Rename{Src: g.path(), Dst: g.path()}
	case 5:
		return types.Symlink{Target: g.path(), Linkpath: g.path()}
	case 6:
		return types.Readlink{Path: g.path()}
	case 7:
		return types.Stat{Path: g.path()}
	case 8:
		return types.Lstat{Path: g.path()}
	case 9:
		return types.Truncate{Path: g.path(), Len: int64(g.r.Intn(12) - 2)}
	case 10:
		return types.Chmod{Path: g.path(), Perm: g.perm()}
	case 11:
		return types.Chdir{Path: g.path()}
	case 12:
		// open may allocate; assume success for numbering (failed opens
		// leave a gap, which is fine — misuse is part of the test).
		fd := g.nextFD
		g.nextFD++
		g.fds = append(g.fds, fd)
		return types.Open{
			Path:    g.path(),
			Flags:   types.OpenFlags(g.r.Intn(1 << 9)),
			Perm:    g.perm(),
			HasPerm: true,
		}
	case 13:
		return types.Close{FD: g.fd()}
	case 14:
		data := g.data()
		return types.Write{FD: g.fd(), Data: data, Size: int64(len(data))}
	case 15:
		return types.Read{FD: g.fd(), Size: int64(g.r.Intn(20))}
	case 16:
		return types.Lseek{FD: g.fd(), Off: int64(g.r.Intn(20) - 4), Whence: types.SeekWhence(g.r.Intn(3))}
	case 17:
		dh := g.nextDH
		g.nextDH++
		g.dhs = append(g.dhs, dh)
		return types.Opendir{Path: g.path()}
	case 18:
		return types.Readdir{DH: g.dh()}
	default:
		return types.Closedir{DH: g.dh()}
	}
}
