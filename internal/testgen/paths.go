package testgen

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/types"
)

// PathCase is one equivalence class of paths (§6.1): the class name
// records the properties (resolved type, trailing slash, leading slashes,
// symlink component, ...) and Path is the representative member, resolved
// against the standard fixture below.
type PathCase struct {
	Class string
	Path  string
}

// PathCases are the equivalence classes over single paths. The classes
// cover: the empty path; 1, 2 and ≥3 leading slashes; trailing slashes;
// resolved type ∈ {file, empty dir, non-empty dir, symlink-to-file,
// symlink-to-dir, broken symlink, symlink loop, nonexistent, resolution
// error}; "." and ".." forms; relative and absolute forms; and the
// missing-file-in-missing-directory case the paper calls out as an
// initially-missed RN_error class.
var PathCases = []PathCase{
	{"empty", ""},
	{"root", "/"},
	{"root_2slash", "//"},
	{"root_3slash", "///"},
	{"file", "/f_reg"},
	{"file_rel", "f_reg"},
	{"file_trailing", "/f_reg/"},
	{"file_in_nonempty", "/d_nonempty/f"},
	{"hardlink", "/f_hard"},
	{"dir_empty", "/d_empty"},
	{"dir_empty_trailing", "/d_empty/"},
	{"dir_nonempty", "/d_nonempty"},
	{"dir_nested", "/d_nonempty/d"},
	{"dir_dot", "/d_empty/."},
	{"dir_dotdot", "/d_empty/.."},
	{"symlink_file", "/s_file"},
	{"symlink_file_trailing", "/s_file/"},
	{"symlink_dir", "/s_dir"},
	{"symlink_dir_trailing", "/s_dir/"},
	{"symlink_broken", "/s_broken"},
	{"symlink_loop", "/s_loop1"},
	{"symlink_chain", "/s_chain"},
	{"under_file", "/f_reg/x"},
	{"missing", "/nonexist"},
	{"missing_trailing", "/nonexist/"},
	{"missing_in_missing", "/nodir/nofile"},
	{"missing_in_dir", "/d_empty/new"},
	{"missing_rel", "d_empty/new2"},
}

// TargetCases are the equivalence classes for symlink targets (the target
// is stored verbatim, so fewer properties matter: emptiness, absoluteness,
// existence, kind).
var TargetCases = []PathCase{
	{"empty", ""},
	{"rel_file", "f_reg"},
	{"rel_dir", "d_nonempty"},
	{"rel_missing", "nonexist"},
	{"abs_file", "/f_reg"},
	{"dot", "."},
	{"loop_self", "s_new"},
	{"trailing", "d_nonempty/"},
	{"abs_missing", "/nodir/x"},
	{"dotdot", ".."},
}

// Fixture returns the setup steps building the standard initial state
// every combinatorial script starts from. Symlink targets are relative so
// the scripts also run inside hostfs's jail.
func Fixture() []trace.Step {
	calls := []types.Command{
		types.Mkdir{Path: "/d_empty", Perm: 0o755},
		types.Mkdir{Path: "/d_nonempty", Perm: 0o755},
		types.Mkdir{Path: "/d_nonempty/d", Perm: 0o755},
		types.Open{Path: "/d_nonempty/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true},
		types.Close{FD: 3},
		types.Open{Path: "/f_reg", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true},
		types.Write{FD: 4, Data: []byte("data"), Size: 4},
		types.Close{FD: 4},
		types.Link{Src: "/f_reg", Dst: "/f_hard"},
		types.Symlink{Target: "f_reg", Linkpath: "/s_file"},
		types.Symlink{Target: "d_nonempty", Linkpath: "/s_dir"},
		types.Symlink{Target: "nonexist", Linkpath: "/s_broken"},
		types.Symlink{Target: "s_loop2", Linkpath: "/s_loop1"},
		types.Symlink{Target: "s_loop1", Linkpath: "/s_loop2"},
		types.Symlink{Target: "s_file", Linkpath: "/s_chain"},
	}
	steps := make([]trace.Step, len(calls))
	for i, c := range calls {
		steps[i] = trace.Step{Label: types.CallLabel{Pid: 1, Cmd: c}}
	}
	return steps
}

// script assembles a named script from the fixture plus extra steps.
func script(name string, extra ...types.Command) *trace.Script {
	s := &trace.Script{Name: name, Steps: Fixture()}
	for _, c := range extra {
		s.Steps = append(s.Steps, trace.Step{Label: types.CallLabel{Pid: 1, Cmd: c}})
	}
	return s
}

// bare assembles a script with no fixture (for sequence tests that build
// their own state).
func bare(name string, steps ...trace.Step) *trace.Script {
	return &trace.Script{Name: name, Steps: steps}
}

func call(pid types.Pid, c types.Command) trace.Step {
	return trace.Step{Label: types.CallLabel{Pid: pid, Cmd: c}}
}

func create(pid types.Pid, uid types.Uid, gid types.Gid) trace.Step {
	return trace.Step{Label: types.CreateLabel{Pid: pid, Uid: uid, Gid: gid}}
}

func caseName(group string, parts ...string) string {
	n := group
	for _, p := range parts {
		n += "___" + p
	}
	return n
}

var _ = fmt.Sprintf // keep fmt for generators in sibling files
