package testgen

import (
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/types"
)

// Version identifies the generator's output and keys the generation cache
// (pipeline.GenSuiteKey): bump it whenever any change alters the generated
// suite — scripts added, removed, reordered, renamed or rendered
// differently — or stale cached suites will be replayed as current.
const Version = "1"

// Suite is the generated test suite with per-group counts (the paper's
// suite has 21 070 scripts; ours is tuned to the same order — see
// TestTable61SuiteSize).
type Suite struct {
	Scripts []*trace.Script
}

// Generate builds the full suite: combinatorial single-path and two-path
// tests, the open flag matrix, read/write sequences, directory-stream
// tests, multi-process permission tests, and the hand-written survey
// scenarios.
func Generate() *Suite {
	// Generation is paid on every cold invocation (ROADMAP item 5 wants
	// it cached); the Default-registry histogram is what attributes that
	// cost in stats-JSON dumps. Generation is deterministic, so telemetry
	// here can never influence suite content.
	start := time.Now()
	s := &Suite{}
	s.Scripts = append(s.Scripts, SinglePathScripts()...)
	s.Scripts = append(s.Scripts, TwoPathScripts()...)
	s.Scripts = append(s.Scripts, SymlinkScripts()...)
	s.Scripts = append(s.Scripts, OpenScripts()...)
	s.Scripts = append(s.Scripts, ReadWriteScripts()...)
	s.Scripts = append(s.Scripts, DirStreamScripts()...)
	s.Scripts = append(s.Scripts, PermissionScripts()...)
	s.Scripts = append(s.Scripts, HandwrittenScripts()...)
	telemetry.Default.Histogram("testgen.generate_ns").ObserveSince(start)
	telemetry.Default.Counter("testgen.scripts").Add(int64(len(s.Scripts)))
	return s
}

// GroupOf extracts the command group from a script name
// ("rename___a___b" → "rename").
func GroupOf(name string) string {
	if i := strings.Index(name, "___"); i >= 0 {
		return name[:i]
	}
	return name
}

// Stats counts scripts per group.
func (s *Suite) Stats() map[string]int {
	m := make(map[string]int)
	for _, sc := range s.Scripts {
		m[GroupOf(sc.Name)]++
	}
	return m
}

// Groups returns group names sorted.
func (s *Suite) Groups() []string {
	m := s.Stats()
	out := make([]string, 0, len(m))
	for g := range m {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// SinglePathScripts generates the combinatorial tests for commands taking
// one path argument.
func SinglePathScripts() []*trace.Script {
	var out []*trace.Script
	for _, pc := range PathCases {
		out = append(out,
			script(caseName("stat", pc.Class), types.Stat{Path: pc.Path}),
			script(caseName("lstat", pc.Class), types.Lstat{Path: pc.Path}),
			script(caseName("rmdir", pc.Class), types.Rmdir{Path: pc.Path}),
			script(caseName("unlink", pc.Class), types.Unlink{Path: pc.Path}),
			script(caseName("opendir", pc.Class), types.Opendir{Path: pc.Path}),
			script(caseName("readlink", pc.Class), types.Readlink{Path: pc.Path}),
			// chdir followed by a relative operation, to observe the cwd.
			script(caseName("chdir", pc.Class),
				types.Chdir{Path: pc.Path},
				types.Stat{Path: "f_reg"},
			),
		)
		for _, perm := range []types.Perm{0o755, 0o700, 0o777, 0o000} {
			out = append(out, script(caseName("mkdir", pc.Class, perm.String()),
				types.Mkdir{Path: pc.Path, Perm: perm},
				types.Stat{Path: pc.Path},
			))
		}
		for _, ln := range []int64{0, 1, 2, 4096, -1} {
			out = append(out, script(caseName("truncate", pc.Class, itoa(ln)),
				types.Truncate{Path: pc.Path, Len: ln},
				types.Stat{Path: pc.Path},
			))
		}
		for _, perm := range []types.Perm{0o644, 0o755, 0o000, 0o4755} {
			out = append(out, script(caseName("chmod", pc.Class, perm.String()),
				types.Chmod{Path: pc.Path, Perm: perm},
				types.Stat{Path: pc.Path},
			))
		}
		out = append(out, script(caseName("chown", pc.Class),
			types.Chown{Path: pc.Path, Uid: 0, Gid: 0},
		))
	}
	return out
}

// TwoPathScripts generates the full product of path classes for link and
// rename — the commands where the paper's combinatorial approach yields
// the most tests (≈2 500 for rename against OpenGroup's ≈50). The product
// also covers the two-path relations of §6.1: equal paths (same class),
// hard links to the same file (file × hardlink), and proper-prefix pairs
// (dir_nonempty × file_in_nonempty).
func TwoPathScripts() []*trace.Script {
	var out []*trace.Script
	for _, a := range PathCases {
		for _, b := range PathCases {
			out = append(out, script(caseName("rename", a.Class, b.Class),
				types.Rename{Src: a.Path, Dst: b.Path},
				types.Stat{Path: a.Path},
				types.Stat{Path: b.Path},
			))
			out = append(out, script(caseName("link", a.Class, b.Class),
				types.Link{Src: a.Path, Dst: b.Path},
				types.Lstat{Path: b.Path},
			))
		}
	}
	return out
}

// SymlinkScripts generates target × linkpath combinations.
func SymlinkScripts() []*trace.Script {
	var out []*trace.Script
	for _, tgt := range TargetCases {
		for _, lp := range PathCases {
			out = append(out, script(caseName("symlink", tgt.Class, lp.Class),
				types.Symlink{Target: tgt.Path, Linkpath: lp.Path},
				types.Lstat{Path: lp.Path},
				types.Readlink{Path: lp.Path},
			))
		}
	}
	return out
}

func itoa(n int64) string {
	if n < 0 {
		return "neg" + itoa(-n)
	}
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
