// Package testgen generates the test suite (§6.1): combinatorial tests
// built by equivalence partitioning over path properties and flag
// bitfields, plus hand-written sequence tests for read/write, directory
// streams, permissions, and the survey scenarios of §7.3. The oracle makes
// intended outcomes unnecessary: scripts only set up state and issue calls.
package testgen
