package testgen

import (
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/types"
)

// CrashScripts generates the crash-consistency universe: sequential pid-1
// workloads that mutate the tree with and without sync barriers, crash at
// chosen points with chosen survivor counts, and then observe what the
// remounted file system actually kept. The oracle ignores the crash
// label's keep count and admits every ordered pending-log prefix; the
// post-crash observations are what prune the state set down to the
// implementation's actual choice — so a backend that persists something no
// prefix explains deviates.
//
// Crash scripts are sequential-executor only (a crash is a whole-machine
// event with no per-process program order) and require Spec.Crash plus a
// crash-profiled implementation.
func CrashScripts() []*trace.Script {
	start := time.Now()
	var out []*trace.Script
	out = append(out, crashWriteScripts()...)
	out = append(out, crashBarrierScripts()...)
	out = append(out, crashRenameScripts()...)
	out = append(out, crashUnlinkScripts()...)
	out = append(out, crashTreeScripts()...)
	out = append(out, crashOSyncScripts()...)
	out = append(out, crashDoubleScripts()...)
	telemetry.Default.Histogram("testgen.generate_ns").ObserveSince(start)
	telemetry.Default.Counter("testgen.scripts").Add(int64(len(out)))
	return out
}

func crash(keep int) trace.Step {
	return trace.Step{Label: types.CrashLabel{Keep: keep}}
}

// crashKeeps are the survivor counts exercised per crash point: nothing
// beyond the durable image, one effect, a few, and "more than pending"
// (clamped to everything — equivalent to crashing after an implicit
// flush of the whole log).
var crashKeeps = []int{0, 1, 2, 8}

// crashObserve is the standard post-crash probe for one file: visibility,
// then content through a fresh descriptor (fd numbering restarts at 3 in
// the remounted initial process).
func crashObserve(path string) []trace.Step {
	return []trace.Step{
		call(1, types.Stat{Path: path}),
		call(1, types.Open{Path: path, Flags: types.ORdonly}),
		call(1, types.Read{FD: 3, Size: 64}),
		call(1, types.Close{FD: 3}),
	}
}

// crashWriteScripts: create + write with no barrier, crash with each keep
// count. Any prefix — no file, empty file, written file — is admissible;
// the observation pins which one the implementation chose.
func crashWriteScripts() []*trace.Script {
	var out []*trace.Script
	for _, k := range crashKeeps {
		s := bare(caseName("crash", "write_nosync", itoa(int64(k))),
			call(1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
			call(1, types.Write{FD: 3, Data: []byte("payload"), Size: 7}),
			call(1, types.Close{FD: 3}),
			crash(k),
		)
		s.Steps = append(s.Steps, crashObserve("/f")...)
		out = append(out, s)

		// Same workload with an fsync barrier before the crash: every
		// admissible state now contains the written file.
		s = bare(caseName("crash", "write_fsync", itoa(int64(k))),
			call(1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
			call(1, types.Write{FD: 3, Data: []byte("payload"), Size: 7}),
			call(1, types.Fsync{FD: 3}),
			call(1, types.Close{FD: 3}),
			crash(k),
		)
		s.Steps = append(s.Steps, crashObserve("/f")...)
		out = append(out, s)
	}
	return out
}

// crashBarrierScripts: effects on both sides of a sync — the pre-barrier
// directory must survive every crash, the post-barrier one may not.
func crashBarrierScripts() []*trace.Script {
	var out []*trace.Script
	for _, k := range crashKeeps {
		s := bare(caseName("crash", "sync_split", itoa(int64(k))),
			call(1, types.Mkdir{Path: "/before", Perm: 0o755}),
			call(1, types.Sync{}),
			call(1, types.Mkdir{Path: "/after", Perm: 0o755}),
			crash(k),
			call(1, types.Stat{Path: "/before"}),
			call(1, types.Stat{Path: "/after"}),
		)
		out = append(out, s)

		// fsync(fd) as the barrier: the model's flush is a global barrier,
		// so syncing one file's descriptor also persists the directory.
		s = bare(caseName("crash", "fsync_split", itoa(int64(k))),
			call(1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
			call(1, types.Write{FD: 3, Data: []byte("a"), Size: 1}),
			call(1, types.Mkdir{Path: "/before", Perm: 0o755}),
			call(1, types.Fsync{FD: 3}),
			call(1, types.Mkdir{Path: "/after", Perm: 0o755}),
			call(1, types.Close{FD: 3}),
			crash(k),
			call(1, types.Stat{Path: "/before"}),
			call(1, types.Stat{Path: "/after"}),
		)
		s.Steps = append(s.Steps, crashObserve("/f")...)
		out = append(out, s)
	}
	return out
}

// crashRenameScripts: the classic atomic-replace-via-rename pattern, with
// and without the fsync the pattern requires. Observations cover both the
// temporary and final names.
func crashRenameScripts() []*trace.Script {
	var out []*trace.Script
	for _, k := range crashKeeps {
		for _, synced := range []bool{false, true} {
			variant := "nosync"
			if synced {
				variant = "fsync"
			}
			s := bare(caseName("crash", "rename_"+variant, itoa(int64(k))),
				call(1, types.Open{Path: "/tmp1", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
				call(1, types.Write{FD: 3, Data: []byte("new"), Size: 3}),
			)
			if synced {
				s.Steps = append(s.Steps, call(1, types.Fsync{FD: 3}))
			}
			s.Steps = append(s.Steps,
				call(1, types.Close{FD: 3}),
				call(1, types.Rename{Src: "/tmp1", Dst: "/dst"}),
			)
			if synced {
				s.Steps = append(s.Steps, call(1, types.Sync{}))
			}
			s.Steps = append(s.Steps, crash(k), call(1, types.Stat{Path: "/tmp1"}))
			s.Steps = append(s.Steps, crashObserve("/dst")...)
			out = append(out, s)
		}
	}
	return out
}

// crashUnlinkScripts: a synced file is unlinked and the machine crashes —
// the file is back in any state where the unlink had not persisted.
func crashUnlinkScripts() []*trace.Script {
	var out []*trace.Script
	for _, k := range crashKeeps {
		s := bare(caseName("crash", "unlink", itoa(int64(k))),
			call(1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
			call(1, types.Write{FD: 3, Data: []byte("x"), Size: 1}),
			call(1, types.Close{FD: 3}),
			call(1, types.Sync{}),
			call(1, types.Unlink{Path: "/f"}),
			crash(k),
			call(1, types.Stat{Path: "/f"}),
		)
		out = append(out, s)
	}
	return out
}

// crashTreeScripts: a multi-step tree build crashes midway; the ordered-log
// model admits exactly the build prefixes, which a readdir then observes.
func crashTreeScripts() []*trace.Script {
	var out []*trace.Script
	for _, k := range crashKeeps {
		s := bare(caseName("crash", "tree", itoa(int64(k))),
			call(1, types.Mkdir{Path: "/d", Perm: 0o755}),
			call(1, types.Mkdir{Path: "/d/a", Perm: 0o755}),
			call(1, types.Mkdir{Path: "/d/b", Perm: 0o755}),
			call(1, types.Mkdir{Path: "/d/c", Perm: 0o755}),
			crash(k),
			call(1, types.Stat{Path: "/d"}),
			call(1, types.Stat{Path: "/d/a"}),
			call(1, types.Stat{Path: "/d/b"}),
			call(1, types.Stat{Path: "/d/c"}),
		)
		out = append(out, s)
	}
	return out
}

// crashOSyncScripts: writes through an O_SYNC descriptor self-flush, so the
// written data survives every crash with no explicit fsync — the behaviour
// the dormant-flag satellite pinned down.
func crashOSyncScripts() []*trace.Script {
	var out []*trace.Script
	for _, k := range crashKeeps {
		s := bare(caseName("crash", "osync_write", itoa(int64(k))),
			call(1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly | types.OSync, Perm: 0o644, HasPerm: true}),
			call(1, types.Write{FD: 3, Data: []byte("sync"), Size: 4}),
			call(1, types.Close{FD: 3}),
			crash(k),
		)
		s.Steps = append(s.Steps, crashObserve("/f")...)
		out = append(out, s)
	}
	return out
}

// crashDoubleScripts: two crashes in one script — the remounted state is
// itself durable, so a second immediate crash must be a no-op, and effects
// between the crashes feed a fresh pending log.
func crashDoubleScripts() []*trace.Script {
	var out []*trace.Script
	for _, k := range crashKeeps {
		s := bare(caseName("crash", "double", itoa(int64(k))),
			call(1, types.Mkdir{Path: "/d1", Perm: 0o755}),
			crash(k),
			crash(0),
			call(1, types.Stat{Path: "/d1"}),
			call(1, types.Mkdir{Path: "/d2", Perm: 0o755}),
			crash(k),
			call(1, types.Stat{Path: "/d1"}),
			call(1, types.Stat{Path: "/d2"}),
		)
		out = append(out, s)
	}
	return out
}
