package testgen

import (
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/types"
)

// ConcurrentScripts generates the multi-process universe: 2–4 processes
// issuing overlapping create/mkdir/rename/unlink/open calls on shared
// paths, plus permission races between distinct uids. Run sequentially the
// scripts are ordinary multi-process tests; run through the concurrent
// executor their calls genuinely interleave, which is what finally
// stresses the oracle's τ-closure and the MaxStates metric of §7.1
// (§3: "the nondeterminism arising from concurrent OS calls").
//
// The scripts avoid directory streams: readdir nondeterminism is covered
// by DirStreamScripts, and mixing it with call interleaving would multiply
// envelope sizes without testing anything new.
func ConcurrentScripts() []*trace.Script {
	start := time.Now()
	var out []*trace.Script
	out = append(out, concMkdirRaces()...)
	out = append(out, concExclCreateRaces()...)
	out = append(out, concUnlinkCreateRaces()...)
	out = append(out, concRenameRaces()...)
	out = append(out, concTreeRaces()...)
	out = append(out, concPermissionRaces()...)
	telemetry.Default.Histogram("testgen.generate_ns").ObserveSince(start)
	telemetry.Default.Counter("testgen.scripts").Add(int64(len(out)))
	return out
}

// concPids returns pids 1..n, emitting creates for 2..n (pid 1 is the
// harness's implicit root process).
func concPids(s *trace.Script, n int, uid types.Uid, gid types.Gid) []types.Pid {
	pids := []types.Pid{1}
	for p := 2; p <= n; p++ {
		s.Steps = append(s.Steps, create(types.Pid(p), uid, gid))
		pids = append(pids, types.Pid(p))
	}
	return pids
}

func destroyAll(s *trace.Script, pids []types.Pid) {
	for _, p := range pids {
		if p == 1 {
			continue
		}
		s.Steps = append(s.Steps, trace.Step{Label: types.DestroyLabel{Pid: p}})
	}
}

// concMkdirRaces: n processes race to create the same directory, then each
// builds a distinct child under it. Exactly one mkdir of the shared path
// may succeed; every interleaving of the children is allowed.
func concMkdirRaces() []*trace.Script {
	var out []*trace.Script
	for n := 2; n <= 4; n++ {
		s := bare(caseName("conc", "mkdir_race", itoa(int64(n))))
		pids := concPids(s, n, types.RootUid, types.RootGid)
		for _, p := range pids {
			sub := "/r/c" + itoa(int64(p))
			s.Steps = append(s.Steps,
				call(p, types.Mkdir{Path: "/r", Perm: 0o755}),
				call(p, types.Mkdir{Path: sub, Perm: 0o755}),
				call(p, types.Stat{Path: "/r"}),
				call(p, types.Stat{Path: sub}),
			)
		}
		destroyAll(s, pids)
		out = append(out, s)
	}
	return out
}

// concExclCreateRaces: n processes race an O_CREAT|O_EXCL open of one
// path; at most one wins. Each then writes through its (per-process) first
// descriptor — EBADF for the losers, whose open allocated nothing.
func concExclCreateRaces() []*trace.Script {
	var out []*trace.Script
	for n := 2; n <= 4; n++ {
		s := bare(caseName("conc", "excl_create_race", itoa(int64(n))))
		pids := concPids(s, n, types.RootUid, types.RootGid)
		for _, p := range pids {
			data := []byte{byte('a' + int(p))}
			s.Steps = append(s.Steps,
				call(p, types.Open{Path: "/f", Flags: types.OCreat | types.OExcl | types.OWronly, Perm: 0o644, HasPerm: true}),
				call(p, types.Write{FD: 3, Data: data, Size: 1}),
				call(p, types.Close{FD: 3}),
				call(p, types.Stat{Path: "/f"}),
			)
		}
		destroyAll(s, pids)
		out = append(out, s)
	}
	return out
}

// concUnlinkCreateRaces: a creator repeatedly makes a file while an
// unlinker races to remove it and an observer stats it — every answer
// (present, absent, just-created) is some linearisation.
func concUnlinkCreateRaces() []*trace.Script {
	var out []*trace.Script
	for _, rounds := range []int{1, 2, 3} {
		s := bare(caseName("conc", "unlink_create_race", itoa(int64(rounds))))
		pids := concPids(s, 3, types.RootUid, types.RootGid)
		creator, unlinker, observer := pids[0], pids[1], pids[2]
		for i := 0; i < rounds; i++ {
			s.Steps = append(s.Steps,
				call(creator, types.Open{Path: "/shared", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
				call(creator, types.Close{FD: types.FD(3 + i)}),
			)
			s.Steps = append(s.Steps,
				call(unlinker, types.Unlink{Path: "/shared"}),
			)
			s.Steps = append(s.Steps,
				call(observer, types.Stat{Path: "/shared"}),
				call(observer, types.Lstat{Path: "/shared"}),
			)
		}
		destroyAll(s, pids)
		out = append(out, s)
	}
	return out
}

// concRenameRaces: two processes race renames over a shared name while a
// third observes both endpoints.
func concRenameRaces() []*trace.Script {
	var out []*trace.Script
	for _, variant := range []struct {
		tag        string
		aSrc, aDst string
		bSrc, bDst string
	}{
		{"chain", "/m", "/n", "/n", "/o"},
		{"swap", "/m", "/n", "/n", "/m"},
		{"same_dst", "/m", "/t", "/n", "/t"},
	} {
		s := bare(caseName("conc", "rename_race", variant.tag))
		pids := concPids(s, 3, types.RootUid, types.RootGid)
		a, b, obs := pids[0], pids[1], pids[2]
		s.Steps = append(s.Steps,
			call(a, types.Mkdir{Path: variant.aSrc, Perm: 0o755}),
			call(a, types.Rename{Src: variant.aSrc, Dst: variant.aDst}),
			call(a, types.Stat{Path: variant.aDst}),
		)
		s.Steps = append(s.Steps,
			call(b, types.Mkdir{Path: variant.bSrc, Perm: 0o755}),
			call(b, types.Rename{Src: variant.bSrc, Dst: variant.bDst}),
			call(b, types.Stat{Path: variant.bDst}),
		)
		s.Steps = append(s.Steps,
			call(obs, types.Stat{Path: variant.aSrc}),
			call(obs, types.Stat{Path: variant.bDst}),
		)
		destroyAll(s, pids)
		out = append(out, s)
	}
	return out
}

// concTreeRaces: one process grows a small tree while another tears it
// down — mkdir/rmdir and the ENOTEMPTY/ENOENT races between them.
func concTreeRaces() []*trace.Script {
	var out []*trace.Script
	for n := 2; n <= 3; n++ {
		s := bare(caseName("conc", "tree_race", itoa(int64(n))))
		pids := concPids(s, n, types.RootUid, types.RootGid)
		builder := pids[0]
		s.Steps = append(s.Steps,
			call(builder, types.Mkdir{Path: "/d", Perm: 0o755}),
			call(builder, types.Mkdir{Path: "/d/sub", Perm: 0o755}),
			call(builder, types.Symlink{Target: "sub", Linkpath: "/d/link"}),
		)
		for _, p := range pids[1:] {
			s.Steps = append(s.Steps,
				call(p, types.Rmdir{Path: "/d/sub"}),
				call(p, types.Unlink{Path: "/d/link"}),
				call(p, types.Rmdir{Path: "/d"}),
				call(p, types.Stat{Path: "/d"}),
			)
		}
		destroyAll(s, pids)
		out = append(out, s)
	}
	return out
}

// concPermissionRaces: root flips the arena's mode while non-root
// processes with distinct uids race operations inside it — whether each
// call lands before or after the chmod decides EACCES vs success, and the
// oracle must track both.
func concPermissionRaces() []*trace.Script {
	var out []*trace.Script
	for _, mode := range []types.Perm{0o700, 0o755, 0o777, 0o000} {
		s := bare(caseName("conc", "perm_race", mode.String()))
		s.Steps = append(s.Steps,
			call(1, types.Mkdir{Path: "/p", Perm: 0o777}),
			call(1, types.Chmod{Path: "/p", Perm: mode}),
			call(1, types.Stat{Path: "/p"}),
		)
		// Two distinct non-root identities racing the chmod.
		s.Steps = append(s.Steps, create(2, 1000, 1000))
		s.Steps = append(s.Steps,
			call(2, types.Mkdir{Path: "/p/mine", Perm: 0o755}),
			call(2, types.Stat{Path: "/p/mine"}),
		)
		s.Steps = append(s.Steps, create(3, 1002, 1002))
		s.Steps = append(s.Steps,
			call(3, types.Open{Path: "/p/theirs", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
			call(3, types.Close{FD: 3}),
			call(3, types.Stat{Path: "/p"}),
		)
		destroyAll(s, []types.Pid{1, 2, 3})
		out = append(out, s)
	}
	return out
}
