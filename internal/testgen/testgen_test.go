package testgen

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/types"
)

func TestSuiteSizeAndGroups(t *testing.T) {
	s := Generate()
	if len(s.Scripts) < 20000 {
		t.Fatalf("suite has %d scripts; the paper's has 21 070", len(s.Scripts))
	}
	stats := s.Stats()
	// rename must dominate two-path testing, as in §6.1 (≈2 500 in the
	// paper vs OpenGroup's ≈50).
	if stats["rename"] < 500 {
		t.Errorf("rename tests = %d", stats["rename"])
	}
	// open has the largest group (flag bitfield).
	max := ""
	for g, n := range stats {
		if max == "" || n > stats[max] {
			max = g
		}
	}
	if max != "open" && max != "perm" {
		t.Errorf("largest group = %s; expected open or perm to dominate", max)
	}
	for _, g := range []string{"stat", "lstat", "unlink", "rmdir", "mkdir", "link",
		"symlink", "readlink", "open", "read", "write", "pread", "pwrite",
		"lseek", "readdir", "perm", "umask", "survey", "truncate", "chmod"} {
		if stats[g] == 0 {
			t.Errorf("group %s has no tests", g)
		}
	}
}

func TestScriptNamesUnique(t *testing.T) {
	s := Generate()
	seen := make(map[string]bool, len(s.Scripts))
	for _, sc := range s.Scripts {
		if seen[sc.Name] {
			t.Fatalf("duplicate script name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
}

func TestScriptsRenderAndReparse(t *testing.T) {
	s := Generate()
	for i := 0; i < len(s.Scripts); i += 211 {
		sc := s.Scripts[i]
		re, err := trace.ParseScript(sc.Render())
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if len(re.Steps) != len(sc.Steps) {
			t.Fatalf("%s: %d steps reparsed as %d", sc.Name, len(sc.Steps), len(re.Steps))
		}
	}
}

func TestFixtureUsesRelativeSymlinkTargets(t *testing.T) {
	for _, st := range Fixture() {
		call, ok := st.Label.(types.CallLabel)
		if !ok {
			continue
		}
		if sl, ok := call.Cmd.(types.Symlink); ok {
			if strings.HasPrefix(sl.Target, "/") {
				t.Errorf("fixture symlink %q has absolute target %q (breaks the host jail)", sl.Linkpath, sl.Target)
			}
		}
	}
}

func TestGroupOf(t *testing.T) {
	cases := map[string]string{
		"rename___a___b": "rename",
		"open___x":       "open",
		"plain":          "plain",
	}
	for in, want := range cases {
		if got := GroupOf(in); got != want {
			t.Errorf("GroupOf(%q) = %q", in, got)
		}
	}
}

func TestPathCasesCoverProperties(t *testing.T) {
	// The equivalence classes must include the §6.1 property combinations:
	// trailing slash, 0/1/2/3 leading slashes, empty path, each resolved
	// type, a symlink component, and the missing-in-missing RN_error case.
	var (
		hasEmpty, hasTrailing, has2Slash, has3Slash, hasRel bool
		hasLoop, hasBroken, hasMissMiss, hasUnderFile       bool
	)
	for _, pc := range PathCases {
		switch {
		case pc.Path == "":
			hasEmpty = true
		case pc.Path == "//":
			has2Slash = true
		case pc.Path == "///":
			has3Slash = true
		}
		if strings.HasSuffix(pc.Path, "/") && strings.Trim(pc.Path, "/") != "" {
			hasTrailing = true
		}
		if pc.Path != "" && !strings.HasPrefix(pc.Path, "/") {
			hasRel = true
		}
		switch pc.Class {
		case "symlink_loop":
			hasLoop = true
		case "symlink_broken":
			hasBroken = true
		case "missing_in_missing":
			hasMissMiss = true
		case "under_file":
			hasUnderFile = true
		}
	}
	for name, ok := range map[string]bool{
		"empty": hasEmpty, "trailing": hasTrailing, "2slash": has2Slash,
		"3slash": has3Slash, "relative": hasRel, "loop": hasLoop,
		"broken": hasBroken, "missing_in_missing": hasMissMiss,
		"under_file": hasUnderFile,
	} {
		if !ok {
			t.Errorf("path classes missing the %s property", name)
		}
	}
}

func TestPermissionScriptsSwitchCredentials(t *testing.T) {
	found := 0
	for _, sc := range PermissionScripts() {
		for _, st := range sc.Steps {
			if c, ok := st.Label.(types.CreateLabel); ok && c.Uid != 0 {
				found++
				break
			}
		}
	}
	if found < 1000 {
		t.Errorf("only %d permission scripts switch credentials", found)
	}
}

func TestHandwrittenSurveyScenarios(t *testing.T) {
	names := map[string]bool{}
	for _, sc := range HandwrittenScripts() {
		names[sc.Name] = true
	}
	for _, want := range []string{
		"survey___fig8_disconnected_create",
		"survey___posixovl_rename_leak",
		"survey___pwrite_negative_offset",
		"survey___o_append_pwrite",
		"survey___freebsd_symlink_invariant",
		"survey___unlink_directory",
		"survey___rename_root",
	} {
		if !names[want] {
			t.Errorf("missing survey scenario %q", want)
		}
	}
}

func TestFig8ScriptMatchesPaper(t *testing.T) {
	var fig8 *trace.Script
	for _, sc := range HandwrittenScripts() {
		if sc.Name == "survey___fig8_disconnected_create" {
			fig8 = sc
		}
	}
	if fig8 == nil {
		t.Fatal("fig8 script missing")
	}
	ops := []string{"mkdir", "chdir", "rmdir", "open"}
	if len(fig8.Steps) != len(ops) {
		t.Fatalf("fig8 has %d steps", len(fig8.Steps))
	}
	for i, st := range fig8.Steps {
		call := st.Label.(types.CallLabel)
		if call.Cmd.Op() != ops[i] {
			t.Errorf("step %d = %s, want %s", i, call.Cmd.Op(), ops[i])
		}
	}
}
