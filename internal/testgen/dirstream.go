package testgen

import (
	"repro/internal/trace"
	"repro/internal/types"
)

// DirStreamScripts generates opendir/readdir/rewinddir/closedir tests,
// including the concurrent-modification scenarios that motivate the
// model's must/may machinery (§3): entries removed after the handle opens,
// entries added, remove-then-re-add, and modification from a second
// process.
func DirStreamScripts() []*trace.Script {
	var out []*trace.Script

	// mkEntries builds /d with n entries e0..e{n-1}.
	mk := func(n int) []trace.Step {
		steps := []trace.Step{call(1, types.Mkdir{Path: "/d", Perm: 0o755})}
		for i := 0; i < n; i++ {
			steps = append(steps,
				call(1, types.Open{Path: "/d/e" + itoa(int64(i)), Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
				call(1, types.Close{FD: types.FD(3 + i)}),
			)
		}
		return steps
	}
	reads := func(dh types.DH, n int) []trace.Step {
		var steps []trace.Step
		for i := 0; i < n; i++ {
			steps = append(steps, call(1, types.Readdir{DH: dh}))
		}
		return steps
	}

	// Plain full enumeration for several directory sizes.
	for _, n := range []int{0, 1, 2, 3, 5, 8} {
		steps := append(mk(n), call(1, types.Opendir{Path: "/d"}))
		steps = append(steps, reads(1, n+1)...)
		steps = append(steps, call(1, types.Closedir{DH: 1}))
		out = append(out, bare(caseName("readdir", "full", itoa(int64(n))), steps...))
	}

	// Modification patterns between readdir calls, over a 3-entry dir.
	type pat struct {
		name string
		mid  []trace.Step // steps between the first and later readdirs
	}
	pats := []pat{
		{"delete_unreturned", []trace.Step{call(1, types.Unlink{Path: "/d/e2"})}},
		{"delete_two", []trace.Step{
			call(1, types.Unlink{Path: "/d/e1"}),
			call(1, types.Unlink{Path: "/d/e2"}),
		}},
		{"add_entry", []trace.Step{
			call(1, types.Open{Path: "/d/new", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
			call(1, types.Close{FD: 6}),
		}},
		{"delete_readd", []trace.Step{
			call(1, types.Unlink{Path: "/d/e2"}),
			call(1, types.Open{Path: "/d/e2", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
			call(1, types.Close{FD: 6}),
		}},
		{"rename_within", []trace.Step{call(1, types.Rename{Src: "/d/e0", Dst: "/d/renamed"})}},
		{"rename_out", []trace.Step{call(1, types.Rename{Src: "/d/e0", Dst: "/moved"})}},
		{"empty_all", []trace.Step{
			call(1, types.Unlink{Path: "/d/e0"}),
			call(1, types.Unlink{Path: "/d/e1"}),
			call(1, types.Unlink{Path: "/d/e2"}),
		}},
	}
	for _, p := range pats {
		for _, firstReads := range []int{0, 1, 2} {
			steps := append(mk(3), call(1, types.Opendir{Path: "/d"}))
			steps = append(steps, reads(1, firstReads)...)
			steps = append(steps, p.mid...)
			steps = append(steps, reads(1, 5)...)
			steps = append(steps, call(1, types.Closedir{DH: 1}))
			out = append(out, bare(caseName("readdir", p.name, itoa(int64(firstReads))), steps...))
		}
	}

	// rewinddir resets the stream against current contents.
	for _, mid := range []pat{
		{"after_delete", []trace.Step{call(1, types.Unlink{Path: "/d/e0"})}},
		{"after_add", []trace.Step{
			call(1, types.Open{Path: "/d/x", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
			call(1, types.Close{FD: 6}),
		}},
		{"plain", nil},
	} {
		steps := append(mk(3), call(1, types.Opendir{Path: "/d"}))
		steps = append(steps, reads(1, 2)...)
		steps = append(steps, mid.mid...)
		steps = append(steps, call(1, types.Rewinddir{DH: 1}))
		steps = append(steps, reads(1, 5)...)
		steps = append(steps, call(1, types.Closedir{DH: 1}))
		out = append(out, bare(caseName("rewinddir", mid.name), steps...))
	}

	// Two handles on the same directory are independent streams.
	{
		steps := append(mk(2),
			call(1, types.Opendir{Path: "/d"}),
			call(1, types.Opendir{Path: "/d"}),
		)
		steps = append(steps,
			call(1, types.Readdir{DH: 1}),
			call(1, types.Readdir{DH: 2}),
			call(1, types.Readdir{DH: 1}),
			call(1, types.Readdir{DH: 2}),
			call(1, types.Readdir{DH: 1}),
			call(1, types.Readdir{DH: 2}),
			call(1, types.Closedir{DH: 1}),
			call(1, types.Closedir{DH: 2}),
		)
		out = append(out, bare(caseName("readdir", "two_handles"), steps...))
	}

	// A second process modifies the directory mid-stream (§6.3: interleaved
	// calls from multiple processes are within scope).
	{
		steps := append(mk(3),
			call(1, types.Opendir{Path: "/d"}),
			call(1, types.Readdir{DH: 1}),
			create(2, 0, 0),
			call(2, types.Unlink{Path: "/d/e1"}),
			call(1, types.Readdir{DH: 1}),
			call(1, types.Readdir{DH: 1}),
			call(1, types.Readdir{DH: 1}),
			call(1, types.Closedir{DH: 1}),
		)
		out = append(out, bare(caseName("readdir", "cross_process_delete"), steps...))
	}

	// Misuse: operations on bad/closed handles.
	out = append(out,
		bare(caseName("dirbad", "readdir_never_opened"), call(1, types.Readdir{DH: 7})),
		bare(caseName("dirbad", "closedir_never_opened"), call(1, types.Closedir{DH: 7})),
		bare(caseName("dirbad", "rewind_never_opened"), call(1, types.Rewinddir{DH: 7})),
		bare(caseName("dirbad", "readdir_after_close"),
			call(1, types.Mkdir{Path: "/d", Perm: 0o755}),
			call(1, types.Opendir{Path: "/d"}),
			call(1, types.Closedir{DH: 1}),
			call(1, types.Readdir{DH: 1}),
		),
	)
	return out
}
