package testgen

import (
	"repro/internal/trace"
	"repro/internal/types"
)

// PermissionScripts generates the multi-process permission tests: a root
// process builds state and sets modes/ownership, then a second non-root
// process attempts an operation. This is where interleaved calls from
// multiple processes matter ("important when modelling and testing
// permissions", §1.2). The matrix is operation × object mode × parent mode
// × caller identity.
func PermissionScripts() []*trace.Script {
	var out []*trace.Script

	const (
		owner  types.Uid = 1000
		member types.Uid = 1001 // in the object's group
		other  types.Uid = 1002
		grp    types.Gid = 500
	)
	callers := []struct {
		tag string
		uid types.Uid
		gid types.Gid
	}{
		{"owner", owner, grp},
		{"owner_other_group", owner, 999},
		{"group_primary", member, grp},
		{"group_supplementary", member, 999}, // reaches grp via add_user_to_group
		{"other", other, 999},
		{"root", 0, 0},
	}
	objModes := []types.Perm{0o000, 0o100, 0o200, 0o400, 0o700, 0o070, 0o007, 0o777}
	parentModes := []types.Perm{0o777, 0o755, 0o555, 0o333, 0o111, 0o444, 0o000, 0o1777}

	type op struct {
		tag   string
		steps func() []trace.Step // performed by pid 2
	}
	ops := []op{
		{"open_read", func() []trace.Step {
			return []trace.Step{call(2, types.Open{Path: "/p/obj", Flags: types.ORdonly})}
		}},
		{"open_write", func() []trace.Step {
			return []trace.Step{call(2, types.Open{Path: "/p/obj", Flags: types.OWronly})}
		}},
		{"open_rdwr", func() []trace.Step {
			return []trace.Step{call(2, types.Open{Path: "/p/obj", Flags: types.ORdwr})}
		}},
		{"creat_in_parent", func() []trace.Step {
			return []trace.Step{call(2, types.Open{Path: "/p/new", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})}
		}},
		{"unlink", func() []trace.Step {
			return []trace.Step{call(2, types.Unlink{Path: "/p/obj"})}
		}},
		{"mkdir_in_parent", func() []trace.Step {
			return []trace.Step{call(2, types.Mkdir{Path: "/p/nd", Perm: 0o755})}
		}},
		{"rename_within", func() []trace.Step {
			return []trace.Step{call(2, types.Rename{Src: "/p/obj", Dst: "/p/obj2"})}
		}},
		{"rename_out", func() []trace.Step {
			return []trace.Step{call(2, types.Rename{Src: "/p/obj", Dst: "/obj_moved"})}
		}},
		{"link_from", func() []trace.Step {
			return []trace.Step{call(2, types.Link{Src: "/p/obj", Dst: "/p/hard"})}
		}},
		{"symlink_in_parent", func() []trace.Step {
			return []trace.Step{call(2, types.Symlink{Target: "obj", Linkpath: "/p/sl"})}
		}},
		{"truncate", func() []trace.Step {
			return []trace.Step{call(2, types.Truncate{Path: "/p/obj", Len: 1})}
		}},
		{"stat_through_parent", func() []trace.Step {
			return []trace.Step{call(2, types.Stat{Path: "/p/obj"})}
		}},
		{"chmod_obj", func() []trace.Step {
			return []trace.Step{call(2, types.Chmod{Path: "/p/obj", Perm: 0o600})}
		}},
		{"chdir_parent", func() []trace.Step {
			return []trace.Step{
				call(2, types.Chdir{Path: "/p"}),
				call(2, types.Stat{Path: "obj"}),
			}
		}},
		{"opendir_parent", func() []trace.Step {
			return []trace.Step{
				call(2, types.Opendir{Path: "/p"}),
				call(2, types.Readdir{DH: 1}),
			}
		}},
		{"chown_obj", func() []trace.Step {
			return []trace.Step{call(2, types.Chown{Path: "/p/obj", Uid: 1000, Gid: 500})}
		}},
		{"mkdir_then_rmdir", func() []trace.Step {
			return []trace.Step{
				call(2, types.Mkdir{Path: "/p/tmp", Perm: 0o755}),
				call(2, types.Rmdir{Path: "/p/tmp"}),
			}
		}},
	}

	for _, o := range ops {
		for _, om := range objModes {
			for _, pm := range parentModes {
				for _, c := range callers {
					steps := []trace.Step{
						// Root (pid 1) builds the arena.
						call(1, types.AddUserToGroup{Uid: member, Gid: grp}),
						call(1, types.Mkdir{Path: "/p", Perm: 0o777}),
						call(1, types.Open{Path: "/p/obj", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
						call(1, types.Write{FD: 3, Data: []byte("x"), Size: 1}),
						call(1, types.Close{FD: 3}),
						call(1, types.Chown{Path: "/p/obj", Uid: owner, Gid: grp}),
						call(1, types.Chmod{Path: "/p/obj", Perm: om}),
						call(1, types.Chown{Path: "/p", Uid: owner, Gid: grp}),
						call(1, types.Chmod{Path: "/p", Perm: pm}),
						create(2, c.uid, c.gid),
					}
					steps = append(steps, o.steps()...)
					// Root observes the final state.
					steps = append(steps,
						call(1, types.Lstat{Path: "/p/obj"}),
						call(1, types.Lstat{Path: "/p"}),
					)
					out = append(out, bare(
						caseName("perm", o.tag, om.String(), pm.String(), c.tag),
						steps...,
					))
				}
			}
		}
	}

	// Umask behaviour: creation modes under different umasks (§7.3.4's
	// SSHFS findings are about exactly this interaction).
	for _, um := range []types.Perm{0o000, 0o022, 0o077, 0o777} {
		for _, req := range []types.Perm{0o777, 0o644, 0o600} {
			out = append(out, bare(caseName("umask", "file", um.String(), req.String()),
				call(1, types.Umask{Mask: um}),
				call(1, types.Open{Path: "/u", Flags: types.OCreat | types.OWronly, Perm: req, HasPerm: true}),
				call(1, types.Close{FD: 3}),
				call(1, types.Stat{Path: "/u"}),
			))
			out = append(out, bare(caseName("umask", "dir", um.String(), req.String()),
				call(1, types.Umask{Mask: um}),
				call(1, types.Mkdir{Path: "/ud", Perm: req}),
				call(1, types.Stat{Path: "/ud"}),
			))
			out = append(out, bare(caseName("umask", "symlink", um.String(), req.String()),
				call(1, types.Umask{Mask: um}),
				call(1, types.Symlink{Target: "t", Linkpath: "/us"}),
				call(1, types.Lstat{Path: "/us"}),
			))
		}
	}
	return out
}
