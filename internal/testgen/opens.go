package testgen

import (
	"strings"

	"repro/internal/trace"
	"repro/internal/types"
)

// openFlagCombos enumerates the open flag matrix: every access mode times
// every subset of {O_CREAT, O_EXCL, O_TRUNC, O_APPEND, O_DIRECTORY}, with
// and without O_NOFOLLOW — open has by far the largest combinatorial space
// (§6.1: "the open function has an especially large number of tests
// because one argument is a bitfield of open flags").
func openFlagCombos() []types.OpenFlags {
	access := []types.OpenFlags{types.ORdonly, types.OWronly, types.ORdwr}
	extras := []types.OpenFlags{
		types.OCreat, types.OExcl, types.OTrunc, types.OAppend, types.ODirectory,
	}
	var out []types.OpenFlags
	for _, a := range access {
		for mask := 0; mask < 1<<len(extras); mask++ {
			f := a
			for i, e := range extras {
				if mask&(1<<i) != 0 {
					f |= e
				}
			}
			out = append(out, f, f|types.ONofollow)
		}
	}
	return out
}

func flagsTag(f types.OpenFlags) string {
	s := f.String()
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	s = strings.ReplaceAll(s, ";", "_")
	if s == "" {
		s = "O_RDONLY"
	}
	return s
}

// OpenScripts generates the open matrix: path classes × flag combinations,
// with two creation modes for O_CREAT combinations. Each script stats the
// path afterwards so creation/truncation effects are observed, and closes
// the descriptor if one was returned (close of FD 5 — the fixture used
// 3 and 4 — is EBADF when open failed, itself a useful observation).
func OpenScripts() []*trace.Script {
	var out []*trace.Script
	for _, pc := range PathCases {
		for _, fl := range openFlagCombos() {
			perms := []types.Perm{0o644}
			if fl.Has(types.OCreat) {
				perms = []types.Perm{0o644, 0o000, 0o700}
			}
			for _, perm := range perms {
				cmd := types.Open{Path: pc.Path, Flags: fl, Perm: perm, HasPerm: fl.Has(types.OCreat)}
				out = append(out, script(
					caseName("open", pc.Class, flagsTag(fl), perm.String()),
					cmd,
					types.Lstat{Path: pc.Path},
					types.Close{FD: 5},
				))
			}
		}
	}
	return out
}
