package testgen

import (
	"sort"

	"repro/internal/trace"
	"repro/internal/types"
)

// ReadWriteScripts generates the sequence tests for read, write, pread,
// pwrite and lseek — the calls §6.1 says are "inherently hard to test
// combinatorially", so the suite enumerates parameterised sequences
// instead: initial content × open mode × operation × size × offset, plus
// longer chained sequences.
func ReadWriteScripts() []*trace.Script {
	var out []*trace.Script

	contents := []struct {
		tag  string
		data string
	}{
		{"empty", ""},
		{"small", "hello world"},
		{"page", string(mkbytes(4096))},
	}
	modes := []struct {
		tag string
		fl  types.OpenFlags
	}{
		{"rdwr", types.ORdwr},
		{"rdonly", types.ORdonly},
		{"wronly", types.OWronly},
		{"append", types.OWronly | types.OAppend},
		{"rdwr_append", types.ORdwr | types.OAppend},
	}
	sizes := []int64{0, 1, 5, 64, 4096}
	offsets := []int64{0, 3, 100, 4096, -2}

	// setup opens /t with given content; FD numbering: 3 = creator (closed),
	// 4 = the descriptor under test.
	setup := func(data string, fl types.OpenFlags) []trace.Step {
		steps := []trace.Step{
			call(1, types.Open{Path: "/t", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
		}
		if data != "" {
			steps = append(steps, call(1, types.Write{FD: 3, Data: []byte(data), Size: int64(len(data))}))
		}
		steps = append(steps,
			call(1, types.Close{FD: 3}),
			call(1, types.Open{Path: "/t", Flags: fl}),
		)
		return steps
	}
	finish := []trace.Step{
		call(1, types.Stat{Path: "/t"}),
		call(1, types.Close{FD: 4}),
	}

	for _, ct := range contents {
		for _, m := range modes {
			for _, sz := range sizes {
				out = append(out, bare(
					caseName("read", ct.tag, m.tag, itoa(sz)),
					append(append(setup(ct.data, m.fl),
						call(1, types.Read{FD: 4, Size: sz}),
						call(1, types.Read{FD: 4, Size: sz}),
					), finish...)...,
				))
				data := string(mkpat(int(sz)))
				out = append(out, bare(
					caseName("write", ct.tag, m.tag, itoa(sz)),
					append(append(setup(ct.data, m.fl),
						call(1, types.Write{FD: 4, Data: []byte(data), Size: sz}),
						call(1, types.Write{FD: 4, Data: []byte(data), Size: sz}),
					), finish...)...,
				))
				for _, off := range offsets {
					out = append(out, bare(
						caseName("pread", ct.tag, m.tag, itoa(sz), itoa(off)),
						append(append(setup(ct.data, m.fl),
							call(1, types.Pread{FD: 4, Size: sz, Off: off}),
						), finish...)...,
					))
					out = append(out, bare(
						caseName("pwrite", ct.tag, m.tag, itoa(sz), itoa(off)),
						append(append(setup(ct.data, m.fl),
							call(1, types.Pwrite{FD: 4, Data: []byte(data), Size: sz, Off: off}),
							call(1, types.Pread{FD: 4, Size: sz + 4, Off: 0}),
						), finish...)...,
					))
				}
			}
			// lseek: every whence × a spread of offsets, then a read to
			// observe the new position.
			for _, wh := range []types.SeekWhence{types.SeekSet, types.SeekCur, types.SeekEnd} {
				for _, off := range []int64{0, 2, 4096, -1, -100} {
					out = append(out, bare(
						caseName("lseek", ct.tag, m.tag, wh.String(), itoa(off)),
						append(append(setup(ct.data, m.fl),
							call(1, types.Lseek{FD: 4, Off: off, Whence: wh}),
							call(1, types.Read{FD: 4, Size: 4}),
						), finish...)...,
					))
				}
			}
		}
	}

	// Chained sequences: interleavings of write/seek/read/truncate that
	// exercise offset bookkeeping across calls.
	out = append(out, rwChains()...)
	// Descriptor-misuse tests: operations on closed and never-opened fds.
	out = append(out, fdMisuse()...)
	return out
}

func rwChains() []*trace.Script {
	var out []*trace.Script
	type stepgen func() []trace.Step
	chains := map[string][]trace.Step{
		"write_seek_read": {
			call(1, types.Write{FD: 4, Data: []byte("abcdef"), Size: 6}),
			call(1, types.Lseek{FD: 4, Off: 0, Whence: types.SeekSet}),
			call(1, types.Read{FD: 4, Size: 6}),
		},
		"write_overwrite": {
			call(1, types.Write{FD: 4, Data: []byte("abcdef"), Size: 6}),
			call(1, types.Lseek{FD: 4, Off: 2, Whence: types.SeekSet}),
			call(1, types.Write{FD: 4, Data: []byte("XY"), Size: 2}),
			call(1, types.Pread{FD: 4, Size: 6, Off: 0}),
		},
		"sparse_seek_write": {
			call(1, types.Lseek{FD: 4, Off: 10, Whence: types.SeekSet}),
			call(1, types.Write{FD: 4, Data: []byte("Z"), Size: 1}),
			call(1, types.Pread{FD: 4, Size: 11, Off: 0}),
		},
		"truncate_shrink_read": {
			call(1, types.Write{FD: 4, Data: []byte("abcdef"), Size: 6}),
			call(1, types.Truncate{Path: "/t", Len: 3}),
			call(1, types.Pread{FD: 4, Size: 6, Off: 0}),
		},
		"truncate_grow_read": {
			call(1, types.Write{FD: 4, Data: []byte("ab"), Size: 2}),
			call(1, types.Truncate{Path: "/t", Len: 5}),
			call(1, types.Pread{FD: 4, Size: 5, Off: 0}),
		},
		"append_interleave": {
			call(1, types.Write{FD: 4, Data: []byte("one"), Size: 3}),
			call(1, types.Pwrite{FD: 4, Data: []byte("two"), Size: 3, Off: 0}),
			call(1, types.Write{FD: 4, Data: []byte("three"), Size: 5}),
			call(1, types.Pread{FD: 4, Size: 16, Off: 0}),
		},
		"two_fds_share_file": {
			call(1, types.Open{Path: "/t", Flags: types.ORdonly}),
			call(1, types.Write{FD: 4, Data: []byte("shared"), Size: 6}),
			call(1, types.Read{FD: 5, Size: 6}),
			call(1, types.Close{FD: 5}),
		},
		"unlinked_but_open": {
			call(1, types.Write{FD: 4, Data: []byte("ghost"), Size: 5}),
			call(1, types.Unlink{Path: "/t"}),
			call(1, types.Pread{FD: 4, Size: 5, Off: 0}),
			call(1, types.Stat{Path: "/t"}),
		},
		"otrunc_reopen": {
			call(1, types.Write{FD: 4, Data: []byte("gone"), Size: 4}),
			call(1, types.Open{Path: "/t", Flags: types.OWronly | types.OTrunc}),
			call(1, types.Pread{FD: 4, Size: 4, Off: 0}),
			call(1, types.Close{FD: 5}),
		},
	}
	modes := []struct {
		tag string
		fl  types.OpenFlags
	}{
		{"rdwr", types.ORdwr},
		{"append", types.ORdwr | types.OAppend},
	}
	var _ stepgen
	// Iterate the chain table in sorted order: map range order would
	// shuffle the suite between runs, and downstream consumers (bench
	// slicing, golden fixtures, diffing two sfs-test runs) rely on
	// Generate being deterministic.
	chainNames := make([]string, 0, len(chains))
	for name := range chains {
		chainNames = append(chainNames, name)
	}
	sort.Strings(chainNames)
	for _, name := range chainNames {
		chain := chains[name]
		for _, m := range modes {
			steps := []trace.Step{
				call(1, types.Open{Path: "/t", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
				call(1, types.Close{FD: 3}),
				call(1, types.Open{Path: "/t", Flags: m.fl}),
			}
			steps = append(steps, chain...)
			steps = append(steps,
				call(1, types.Stat{Path: "/t"}),
				call(1, types.Close{FD: 4}),
			)
			out = append(out, bare(caseName("rwchain", name, m.tag), steps...))
		}
	}
	return out
}

func fdMisuse() []*trace.Script {
	var out []*trace.Script
	ops := map[string]types.Command{
		"read":   types.Read{FD: 9, Size: 4},
		"write":  types.Write{FD: 9, Data: []byte("x"), Size: 1},
		"write0": types.Write{FD: 9, Data: nil, Size: 0},
		"pread":  types.Pread{FD: 9, Size: 4, Off: 0},
		"pwrite": types.Pwrite{FD: 9, Data: []byte("x"), Size: 1, Off: 0},
		"lseek":  types.Lseek{FD: 9, Off: 0, Whence: types.SeekSet},
		"close":  types.Close{FD: 9},
	}
	opNames := make([]string, 0, len(ops))
	for name := range ops {
		opNames = append(opNames, name)
	}
	sort.Strings(opNames)
	for _, name := range opNames {
		op := ops[name]
		out = append(out, bare(caseName("fdbad", name, "never_opened"), call(1, op)))
		out = append(out, bare(caseName("fdbad", name, "after_close"),
			call(1, types.Open{Path: "/t", Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true}),
			call(1, types.Close{FD: 3}),
			call(1, remapFD(op, 3)),
		))
	}
	// Reads/writes through a directory descriptor.
	out = append(out, bare(caseName("fdbad", "read", "dir_fd"),
		call(1, types.Mkdir{Path: "/d", Perm: 0o755}),
		call(1, types.Open{Path: "/d", Flags: types.ORdonly}),
		call(1, types.Read{FD: 3, Size: 4}),
		call(1, types.Write{FD: 3, Data: []byte("x"), Size: 1}),
		call(1, types.Close{FD: 3}),
	))
	return out
}

// remapFD rewrites the descriptor of an fd command (for after-close tests).
func remapFD(c types.Command, fd types.FD) types.Command {
	switch v := c.(type) {
	case types.Read:
		v.FD = fd
		return v
	case types.Write:
		v.FD = fd
		return v
	case types.Pread:
		v.FD = fd
		return v
	case types.Pwrite:
		v.FD = fd
		return v
	case types.Lseek:
		v.FD = fd
		return v
	case types.Close:
		v.FD = fd
		return v
	}
	return c
}

func mkbytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}

func mkpat(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('A' + i%26)
	}
	return b
}
