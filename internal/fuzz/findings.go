package fuzz

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/checker"
	"repro/internal/cov"
	"repro/internal/trace"
	"repro/internal/types"
)

// FindingKind distinguishes what the fuzzer caught.
type FindingKind int

const (
	// KindDeviation is an oracle-rejected trace: the implementation left
	// the model's envelope.
	KindDeviation FindingKind = iota
	// KindCrash is a panic inside the implementation or the model while
	// processing the input.
	KindCrash
)

func (k FindingKind) String() string {
	if k == KindCrash {
		return "crash"
	}
	return "deviation"
}

// Finding is one fuzzer-discovered defect, already minimized.
type Finding struct {
	Name     string
	Kind     FindingKind
	Script   *trace.Script // minimized reproducer
	Original *trace.Script // the candidate as first caught
	Trace    *trace.Trace  // trace of the minimized script (deviations)
	Result   checker.Result
	Sig      string
	// Dups counts further candidates that minimized to this signature.
	Dups int
	// PanicValue holds the recovered value for crashes.
	PanicValue string
}

// findingSig collapses a minimized reproducer to a dedup key: the command
// kinds in order plus the oracle's observed-vs-allowed diagnosis. Argument
// variants of the same root cause (chmod "/a" vs chmod "/b") share a key.
func findingSig(s *trace.Script, r checker.Result) string {
	var b strings.Builder
	for _, st := range s.Steps {
		switch l := st.Label.(type) {
		case types.CallLabel:
			b.WriteString(l.Cmd.Op())
		case types.CreateLabel:
			b.WriteString("create")
		case types.DestroyLabel:
			b.WriteString("destroy")
		}
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "%s/%s;", e.Observed, strings.Join(e.Allowed, " "))
	}
	return b.String()
}

// rawDeviationKey is the pre-minimization dedup key: for each failing
// step, the command kind that failed with its observed/allowed diagnosis.
// Candidates re-triggering a known defect share it regardless of the
// surrounding noise steps, so they skip re-minimization; distinct defects
// that collide (same op, same diagnosis, different state context) merge
// into one finding, which is the usual fuzzer trade.
func rawDeviationKey(t *trace.Trace, r checker.Result) string {
	opAt := make(map[int]string, len(t.Steps))
	for _, st := range t.Steps {
		if cl, ok := st.Label.(types.CallLabel); ok {
			// Errors are usually observed on the return that follows the
			// call, but the checker can also diagnose the call line itself
			// (no transition allowed); cover both.
			opAt[st.Line] = cl.Cmd.Op()
			opAt[st.Line+1] = cl.Cmd.Op()
		}
	}
	var b strings.Builder
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "%s:%s/%s;", opAt[e.Line], e.Observed, strings.Join(e.Allowed, " "))
	}
	return b.String()
}

// findingName derives a stable short name from the signature, so the same
// root cause gets the same file names across fuzzing sessions.
func findingName(kind FindingKind, sig string) string {
	h := sha1.Sum([]byte(sig))
	return "fuzz___" + kind.String() + "_" + hex.EncodeToString(h[:4])
}

// Report renders findings through the analysis pipeline: a RunSummary with
// severity classification (§7.3's taxonomy) and process-global
// model-coverage figures, plus the HTML index. Sessions with an isolated
// coverage registry use ReportWith instead, stamping the registry's
// figures. Crashes carry no checkable trace and are appended as synthetic
// critical deviations.
func Report(config string, findings []*Finding) (*analysis.RunSummary, string, error) {
	hit, total := cov.Stats()
	return ReportWith(config, findings, hit, total)
}

// ReportWith is Report with explicit model-coverage figures.
func ReportWith(config string, findings []*Finding, covHit, covTotal int) (*analysis.RunSummary, string, error) {
	var traces []*trace.Trace
	var results []checker.Result
	for _, f := range findings {
		if f.Kind == KindCrash {
			traces = append(traces, &trace.Trace{Name: f.Name})
			results = append(results, checker.Result{
				Name:     f.Name,
				Accepted: false,
				Errors: []checker.StepError{{
					// EINTR is the harness's hang/crash marker (Fig 8);
					// Classify maps it to critical.
					Observed: "EINTR",
					Allowed:  nil,
				}},
			})
			continue
		}
		traces = append(traces, f.Trace)
		results = append(results, f.Result)
	}
	sum := analysis.Summarise(config, traces, results)
	sum.CovHit, sum.CovTotal = covHit, covTotal
	html, err := analysis.RenderIndexHTML(sum)
	if err != nil {
		return sum, "", err
	}
	return sum, html, nil
}

// saveFinding persists a finding under dir/findings: the minimized
// reproducer as a .script and, for deviations, the Fig 4 checked trace.
func saveFinding(dir string, f *Finding) error {
	fdir := filepath.Join(dir, "findings")
	if err := os.MkdirAll(fdir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(fdir, f.Name+".script"),
		[]byte(f.Script.Render()), 0o644); err != nil {
		return err
	}
	if f.Kind == KindDeviation && f.Trace != nil {
		checked := checker.RenderChecked(f.Trace, f.Result)
		return os.WriteFile(filepath.Join(fdir, f.Name+".checked.txt"),
			[]byte(checked), 0o644)
	}
	if f.Kind == KindCrash {
		return os.WriteFile(filepath.Join(fdir, f.Name+".panic.txt"),
			[]byte(f.PanicValue), 0o644)
	}
	return nil
}
