package fuzz

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/checker"
	"repro/internal/cov"
	"repro/internal/exec"
	"repro/internal/fsimpl"
	"repro/internal/osspec"
	"repro/internal/pipeline"
	"repro/internal/reduce"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/types"
)

// Config parameterises one fuzzing session.
type Config struct {
	// Name labels the session in reports (e.g. "fuzz hfsplus_linux_trusty
	// vs linux").
	Name string
	// Factory creates the implementation under test, one instance per run.
	Factory fsimpl.Factory
	// Spec is the model variant the oracle checks against.
	Spec types.Spec
	// Seed makes the session reproducible (with Workers = 1).
	Seed int64
	// Workers is the number of parallel fuzzing goroutines
	// (≤ 0 selects GOMAXPROCS).
	Workers int
	// Duration bounds wall-clock time; zero means no time bound. It is
	// sugar for a context deadline: Run derives a sub-context with this
	// timeout, so the bound covers the whole session — corpus seeding
	// included, unlike the pre-context engine, whose clock started after
	// seeding. Callers that already deadline or cancel their ctx can
	// leave it zero.
	Duration time.Duration
	// MaxRuns bounds the number of candidate executions; zero means no
	// bound. At least one of Duration, MaxRuns, or a ctx deadline must be
	// set, or the session would never end.
	MaxRuns int64
	// MaxSteps caps candidate script length (default 30).
	MaxSteps int
	// CorpusDir persists the corpus (and findings) for resumption; empty
	// keeps everything in memory.
	CorpusDir string
	// Concurrent executes candidates with the concurrent executor instead
	// of the sequential one: script processes run under the seeded
	// deterministic scheduler (seed = Seed), so mutated multi-process
	// scripts genuinely interleave while every candidate's trace stays
	// reproducible for the session seed. Seed the corpus with multi-process
	// scripts (e.g. testgen.ConcurrentScripts) to make this bite.
	Concurrent bool
	// Crash enables the durability mutation operators: candidates gain
	// fsync/sync barriers and crash labels (power cycles), so the fuzzer
	// explores the persistence model's admissible-state envelope. It
	// requires a crash-capable Factory (a crash-profiled memfs or a
	// Spec.Crash SpecFS) and a Spec with Crash set, and is mutually
	// exclusive with Concurrent — crash labels are sequential-executor
	// only. Seed the corpus with testgen.CrashScripts to start the loop
	// inside the crash universe.
	Crash bool
	// Seeds are extra initial inputs offered to the corpus at startup.
	Seeds []*trace.Script
	// ResultCache, when non-nil, memoises corpus seeding on the pipeline's
	// content-addressed store: a reloaded corpus entry whose attributed
	// replay is cached (keyed by script, osspec.ModelVersion + Spec, and a
	// fuzz-seed config hash derived from Name and the executor mode) is
	// admitted with its cached point set instead of being re-executed and
	// re-checked. Only clean, accepted replays are cached — deviating
	// entries re-run every session so their findings are re-reported. Name
	// is the implementation identity in the key: keep it stable across
	// sessions (sfs-fuzz derives it from -fs/-spec) or hits never occur.
	ResultCache *pipeline.Cache
	// KeepCoverage leaves the session's coverage counters as they are
	// instead of resetting them at session start.
	KeepCoverage bool
	// Registry, when non-nil, is an isolated coverage registry: every
	// candidate evaluation is attributed (exclusive cov windows) and
	// merged into it, the corpus guidance polls it instead of the
	// process-global counters, and Reset/KeepCoverage never touch the
	// global state. Isolation serializes candidate evaluation across
	// workers — prefer nil (the process-global registry) for raw
	// throughput, a private registry when several sessions share one
	// process.
	Registry *cov.Registry
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Tel receives the session's telemetry (iteration throughput, corpus
	// size, findings, per-candidate latency); nil selects
	// telemetry.Default. Purely observational.
	Tel *telemetry.Registry
}

// Result is the outcome of one fuzzing session.
type Result struct {
	Runs       int64
	ExecErrors int64
	Crashes    int64
	// CorpusSize is the final number of corpus entries; NewEntries counts
	// those admitted during this session's loop (excluding reloaded ones).
	CorpusSize int
	NewEntries int
	// InitialCovHit is the number of model coverage points hit after
	// seeding/corpus reload, before any mutation ran — resumed sessions
	// start strictly ahead of empty ones.
	InitialCovHit int
	// CachedSeeds counts seed scripts whose replay was skipped at session
	// start because the result cache held their attributed point set
	// (Config.ResultCache); the corpus's usual admission rules still
	// decide which of them become entries.
	CachedSeeds int
	// CovHit/CovTotal are the session-end model coverage figures (§7.2).
	CovHit   int
	CovTotal int
	Findings []*Finding
	// Summary/HTML are the findings rendered through internal/analysis.
	Summary *analysis.RunSummary
	HTML    string
	Elapsed time.Duration
}

// Run executes one fuzzing session. The session ends when ctx is
// cancelled or deadlined, or when MaxRuns candidates have executed —
// cancellation is the normal way a time-bounded session stops, not an
// error: the corpus and findings collected so far are reported as usual.
// Config.Duration, when set, is applied as a deadline on a sub-context.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Factory == nil {
		return nil, errors.New("fuzz: Config.Factory is required")
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}
	if _, bounded := ctx.Deadline(); !bounded && cfg.MaxRuns <= 0 {
		return nil, errors.New("fuzz: set Config.Duration, Config.MaxRuns, or a context deadline")
	}
	if cfg.Crash && cfg.Concurrent {
		return nil, errors.New("fuzz: Config.Crash and Config.Concurrent are mutually exclusive (crash labels are sequential-executor only)")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 30
	}
	if cfg.Name == "" {
		cfg.Name = "fuzz"
	}

	tel := telemetry.Or(cfg.Tel)
	e := &engine{
		cfg:     cfg,
		check:   checker.New(cfg.Spec),
		corpus:  NewCorpus(),
		tracker: cov.NewTracker(),
		reg:     cfg.Registry,
		tel:     tel,
		bySig:   make(map[string]*Finding),
		rawSeen: make(map[string]*Finding),
	}
	e.check.Tel = cfg.Tel // nil keeps the checker on Default, like the engine
	if !cfg.KeepCoverage {
		if e.reg != nil {
			e.reg.Reset()
		} else {
			cov.Reset()
		}
	}

	seedSpan := tel.Span("fuzz.seed")
	if err := e.seed(ctx); err != nil {
		return nil, err
	}
	seedSpan.End()
	tel.Counter("fuzz.cached_seeds").Add(int64(e.cachedSeeds))
	initialHit := e.covHitCount()
	e.logf("fuzz: start corpus=%d coverage=%d points (%d seeds from cache)",
		e.corpus.Len(), initialHit, e.cachedSeeds)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e.worker(ctx, id)
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	e.progress(done)

	if cfg.ResultCache != nil {
		// Group-commit barrier: the attributed-seed entries written during
		// this session must be durable before it reports (cancellation is
		// the *normal* end of a fuzz session, so this is the main exit).
		if err := cfg.ResultCache.Flush(); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Runs:          e.runs.Load(),
		ExecErrors:    e.execErrs.Load(),
		Crashes:       e.crashes.Load(),
		InitialCovHit: initialHit,
		CachedSeeds:   e.cachedSeeds,
		Elapsed:       time.Since(start),
	}
	e.mu.Lock()
	res.CorpusSize = e.corpus.Len()
	res.NewEntries = e.newEntries
	res.Findings = append(res.Findings, e.findings...)
	e.mu.Unlock()
	res.CovHit, res.CovTotal = e.covStats()
	tel.Gauge("fuzz.corpus_size").Set(int64(res.CorpusSize))
	tel.Gauge("fuzz.findings").Set(int64(len(res.Findings)))
	tel.Gauge("fuzz.coverage_points").Set(int64(res.CovHit))

	sum, html, err := ReportWith(cfg.Name, res.Findings, res.CovHit, res.CovTotal)
	if err != nil {
		return nil, err
	}
	res.Summary, res.HTML = sum, html
	e.logf("fuzz: done runs=%d corpus=%d (+%d) coverage=%d/%d findings=%d crashes=%d in %v",
		res.Runs, res.CorpusSize, res.NewEntries, res.CovHit, res.CovTotal,
		len(res.Findings), res.Crashes, res.Elapsed.Round(time.Millisecond))
	return res, nil
}

// engine is the shared state of one session.
type engine struct {
	cfg   Config
	check *checker.Checker

	mu         sync.Mutex // corpus, findings, newEntries
	corpus     *Corpus
	findings   []*Finding
	bySig      map[string]*Finding
	rawSeen    map[string]*Finding // pre-minimization dedup (see reportDeviation)
	newEntries int
	// cachedSeeds is only written during single-threaded seeding.
	cachedSeeds int

	tracker *cov.Tracker // Attribute serializes internally
	// reg is the isolated coverage registry, nil for the process-global
	// counters (Config.Registry).
	reg *cov.Registry
	// tel is the resolved telemetry registry (never nil).
	tel      *telemetry.Registry
	runs     atomic.Int64
	seq      atomic.Int64
	execErrs atomic.Int64
	crashes  atomic.Int64
}

// covHitCount is the corpus guidance's "anything new?" figure: the
// session registry's in isolated mode, the process-global one otherwise.
func (e *engine) covHitCount() int {
	if e.reg != nil {
		return e.reg.HitCount()
	}
	return cov.HitCount()
}

// covStats reports the session's (hit, total) coverage figures.
func (e *engine) covStats() (int, int) {
	if e.reg != nil {
		return e.reg.Stats()
	}
	return cov.Stats()
}

func (e *engine) logf(format string, args ...any) {
	if e.cfg.Log != nil {
		fmt.Fprintf(e.cfg.Log, format+"\n", args...)
	}
}

// runScript executes one candidate with the configured executor mode.
// Candidates run to completion even when the session context is cancelled
// (they are short); the worker loop is where cancellation is observed.
func (e *engine) runScript(s *trace.Script) (*trace.Trace, error) {
	if e.cfg.Concurrent {
		return exec.RunConcurrent(context.Background(), s, e.cfg.Factory,
			exec.ConcurrentOptions{Seeded: true, Seed: e.cfg.Seed})
	}
	return exec.Run(context.Background(), s, e.cfg.Factory)
}

// seed loads the persisted corpus (if any) and the configured seed
// scripts, replaying each through attributed execution so the corpus keys
// and the session's coverage counters reflect the current model. With a
// ResultCache, entries whose clean attributed replay is already cached
// skip the replay entirely: the cached point set is admitted directly and
// force-marked in the counters, so a warm resumed session starts in
// seconds regardless of corpus size. A cancelled ctx stops seeding early
// (graceful shutdown, as in the worker loop) — the session then reports
// over whatever was admitted.
func (e *engine) seed(ctx context.Context) error {
	var scripts []*trace.Script
	if e.cfg.CorpusDir != "" {
		loaded, err := LoadScripts(e.cfg.CorpusDir)
		if err != nil {
			return err
		}
		scripts = append(scripts, loaded...)
	}
	scripts = append(scripts, e.cfg.Seeds...)
	for _, s := range scripts {
		if ctx.Err() != nil {
			return nil
		}
		if !validLifecycle(s) {
			continue
		}
		if !e.cfg.Crash && hasCrashLabel(s) {
			// A crash corpus reloaded into a non-crash session: the factory
			// cannot power-cycle, so the replay could only error.
			continue
		}
		if points, ok := e.cachedSeed(s); ok {
			e.admitCached(s, points)
			e.cachedSeeds++
			continue
		}
		e.offer(s, false)
	}
	return nil
}

// seedRecord is the cached shape of one clean seed replay.
type seedRecord struct {
	Points []string `json:"points"`
}

// seedKey addresses one script's replay under the current session
// semantics: the model version and variant, and the fuzz-seed config
// (implementation identity via Config.Name, executor mode). The
// "fuzz-seed|" tag namespaces these entries away from pipeline records
// sharing the same cache directory.
func (e *engine) seedKey(s *trace.Script) string {
	seed := int64(0)
	if e.cfg.Concurrent {
		seed = e.cfg.Seed
	}
	cfgHash := pipeline.ConfigHash("fuzz-seed|"+e.cfg.Name, e.cfg.Concurrent, seed, e.check.MaxStateSet)
	return pipeline.Key(pipeline.ScriptHash(s), pipeline.SpecHash(osspec.ModelVersion, e.cfg.Spec), cfgHash)
}

// cachedSeed looks up a script's cached clean replay.
func (e *engine) cachedSeed(s *trace.Script) ([]string, bool) {
	if e.cfg.ResultCache == nil {
		return nil, false
	}
	data, ok := e.cfg.ResultCache.GetRaw(e.seedKey(s))
	if !ok {
		return nil, false
	}
	var rec seedRecord
	if err := json.Unmarshal(data, &rec); err != nil || len(rec.Points) == 0 {
		return nil, false
	}
	return rec.Points, true
}

// putSeed stores a clean replay's attributed point set.
func (e *engine) putSeed(s *trace.Script, points []string) {
	data, err := json.Marshal(seedRecord{Points: points})
	if err == nil {
		err = e.cfg.ResultCache.PutRaw(e.seedKey(s), data)
	}
	if err != nil {
		e.logf("fuzz: caching seed replay: %v", err)
	}
}

// admitCached admits a seed with its cached point set, mirroring offer's
// admission and persistence paths but skipping execution, checking and
// attribution. The points are force-marked in the session's counters so
// its coverage view matches what a real replay would have left.
func (e *engine) admitCached(s *trace.Script, points []string) {
	if e.reg != nil {
		e.reg.ForceHit(points)
	} else {
		cov.ForceHit(points)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	_, admitted, replaced, evicted := e.corpus.Admit(s, points)
	if (admitted || replaced) && e.cfg.CorpusDir != "" {
		if err := SaveScript(e.cfg.CorpusDir, s); err != nil {
			e.logf("fuzz: persisting corpus entry: %v", err)
		}
		if evicted != nil {
			if err := RemoveScript(e.cfg.CorpusDir, evicted); err != nil {
				e.logf("fuzz: removing superseded corpus entry: %v", err)
			}
		}
	}
}

// worker is one fuzzing goroutine: its RNG stream is derived from the
// session seed and worker id, so a single-worker session is fully
// deterministic. The loop ends when ctx is done (deadline or caller
// cancellation — both are graceful session ends) or MaxRuns is reached.
func (e *engine) worker(ctx context.Context, id int) {
	r := rand.New(rand.NewSource(workerSeed(e.cfg.Seed, id)))
	m := &mutator{r: r, maxSteps: e.cfg.MaxSteps, crash: e.cfg.Crash}
	for {
		seq := e.seq.Add(1)
		if e.cfg.MaxRuns > 0 && seq > e.cfg.MaxRuns {
			return
		}
		select {
		case <-ctx.Done():
			return
		default:
		}
		e.step(r, m, seq)
		e.runs.Add(1)
		e.tel.Counter("fuzz.runs").Inc()
	}
}

func workerSeed(seed int64, id int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(id)*0xd1342543de82ef95 + 1
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return int64(z ^ (z >> 31))
}

// step runs one fuzzing iteration.
func (e *engine) step(r *rand.Rand, m *mutator, seq int64) {
	parent, donor := e.pick(r)
	var cand *trace.Script
	if parent == nil {
		cand = m.fresh(e.cfg.Seed, int(seq))
	} else {
		cand = m.mutate(parent, donor)
		cand.Name = candidateName(seq)
	}

	before := e.covHitCount()
	candStart := time.Now()
	tr, res, crash, err := e.execCheck(cand)
	e.tel.Histogram("fuzz.exec_check_ns").ObserveSince(candStart)
	switch {
	case crash != "":
		e.crashes.Add(1)
		e.tel.Counter("fuzz.crashes").Inc()
		e.reportCrash(cand, crash)
	case err != nil:
		e.execErrs.Add(1)
		e.tel.Counter("fuzz.exec_errors").Inc()
	case !res.Accepted:
		e.reportDeviation(cand, tr, res)
	case e.covHitCount() > before || r.Intn(64) == 0:
		// The cheap pre-filter only sees *globally* new points, which a
		// deviating run may have claimed first even though no corpus entry
		// holds them — so a small slice of accepted runs is attributed
		// unconditionally, letting the corpus eventually absorb points
		// first reached along defect paths.
		e.offer(cand, true)
	}
}

// execCheck is the fast path: execute and check once under cov.Guard (so
// its hits never land in a concurrent attribution window), catching
// panics from the implementation or the model. In isolated-registry mode
// the run is attributed instead and its point set merged into the
// registry — that is what keeps the registry's HitCount moving for the
// guidance pre-filter, at the cost of serializing candidate evaluation.
func (e *engine) execCheck(s *trace.Script) (tr *trace.Trace, res checker.Result, crash string, err error) {
	defer func() {
		if p := recover(); p != nil {
			crash = fmt.Sprintf("%v", p)
		}
	}()
	run := func() {
		tr, err = e.runScript(s)
		if err == nil {
			res = e.check.Check(tr)
		}
	}
	if e.reg != nil {
		e.reg.AddHits(e.tracker.Attribute(run))
	} else {
		cov.Guard(run)
	}
	return tr, res, "", err
}

// pick chooses a parent entry (weighted by coverage-point rarity) and an
// independent donor for splicing. Roughly one candidate in ten is
// generated from scratch instead, so exploration never stops; an empty
// corpus always generates fresh inputs.
func (e *engine) pick(r *rand.Rand) (parent, donor *trace.Script) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.corpus.Len()
	if n == 0 || r.Intn(10) == 0 {
		return nil, nil
	}
	entries := e.corpus.Entries()
	weights, total := e.corpus.Weights()
	x := r.Float64() * total
	idx := n - 1
	for i, w := range weights {
		if x < w {
			idx = i
			break
		}
		x -= w
	}
	parent = entries[idx].Script
	donor = entries[r.Intn(n)].Script
	return parent, donor
}

// offer attributes the script's exact coverage-point set (re-running it in
// an exclusive cov.Tracker window) and admits it to the corpus if it hits
// a point no existing entry hits. Scripts whose attributed re-run deviates
// are routed to the findings path instead (e.g. loaded corpus entries that
// deviate under a different profile than they were collected on). Clean
// replays of scripts that enter the corpus are memoised in the result
// cache (when configured) so the next session's seeding skips them.
func (e *engine) offer(s *trace.Script, fromLoop bool) {
	var tr *trace.Trace
	var res checker.Result
	var runErr error
	var crash string
	points := e.tracker.Attribute(func() {
		defer func() {
			if p := recover(); p != nil {
				crash = fmt.Sprintf("%v", p)
			}
		}()
		tr, runErr = e.runScript(s)
		if runErr == nil {
			res = e.check.Check(tr)
		}
	})
	if e.reg != nil {
		e.reg.AddHits(points)
	}
	if crash != "" {
		// E.g. a reloaded corpus replayed against a different profile that
		// panics on it: a finding, not a session abort.
		e.crashes.Add(1)
		e.reportCrash(s, crash)
		return
	}
	if runErr != nil {
		e.execErrs.Add(1)
		return
	}
	if !res.Accepted {
		e.reportDeviation(s, tr, res)
		return
	}
	e.mu.Lock()
	entry, admitted, replaced, evicted := e.corpus.Admit(s, points)
	if admitted {
		e.tel.Counter("fuzz.corpus_admitted").Inc()
		e.tel.Gauge("fuzz.corpus_size").Set(int64(e.corpus.Len()))
	}
	if admitted && fromLoop {
		e.newEntries++
	}
	if (admitted || replaced) && e.cfg.ResultCache != nil {
		// Cache the clean attributed replay of everything that enters the
		// corpus: the next session's seeding admits it without re-running.
		e.putSeed(s, points)
	}
	if (admitted || replaced) && e.cfg.CorpusDir != "" {
		// Persist while still holding e.mu: a save racing a concurrent
		// replace of the same signature could otherwise re-create the
		// just-evicted file after its removal, and nothing would ever
		// delete it again. Admissions are rare, so the I/O under the lock
		// does not matter.
		if err := SaveScript(e.cfg.CorpusDir, s); err != nil {
			e.logf("fuzz: persisting corpus entry: %v", err)
		}
		if evicted != nil {
			if err := RemoveScript(e.cfg.CorpusDir, evicted); err != nil {
				e.logf("fuzz: removing superseded corpus entry: %v", err)
			}
		}
	}
	e.mu.Unlock()
	if admitted && fromLoop {
		e.logf("fuzz: corpus +%s (%d points, %d steps)", entry.Sig, len(entry.Points), len(s.Steps))
	}
}

// reportDeviation minimizes an oracle-rejected candidate and records the
// finding, deduplicating by minimized signature. Minimization costs many
// oracle executions, and on defect-heavy targets most deviating candidates
// re-discover a known root cause — so a cheap pre-minimization key (the
// failing ops with their observed/allowed diagnoses) short-circuits
// duplicates before ddmin runs.
func (e *engine) reportDeviation(cand *trace.Script, tr *trace.Trace, res checker.Result) {
	e.tel.Counter("fuzz.deviations").Inc()
	rawKey := rawDeviationKey(tr, res)
	e.mu.Lock()
	if f, ok := e.rawSeen[rawKey]; ok {
		f.Dups++
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()

	min, err := reduce.MinimizeWith(cand, e.guardedDeviates)
	if err != nil {
		min = cand
	}
	trMin, resMin := tr, res
	if min != cand {
		if tr2, res2, crash, err2 := e.execCheck(min); crash == "" && err2 == nil && !res2.Accepted {
			trMin, resMin = tr2, res2
		} else {
			min = cand // minimization went nondeterministic; keep the original
		}
	}
	sig := findingSig(min, resMin)
	name := findingName(KindDeviation, sig)
	if min == cand {
		// Don't rename the caller's script in place (cand may be a
		// user-supplied Config.Seeds entry that was already minimal).
		min = copyScript(cand)
	}
	min.Name = name
	trMin.Name = name
	resMin.Name = name

	e.mu.Lock()
	if f, ok := e.bySig[sig]; ok {
		f.Dups++
		e.rawSeen[rawKey] = f
		e.mu.Unlock()
		return
	}
	f := &Finding{
		Name:     name,
		Kind:     KindDeviation,
		Script:   min,
		Original: cand,
		Trace:    trMin,
		Result:   resMin,
		Sig:      sig,
	}
	e.bySig[sig] = f
	e.rawSeen[rawKey] = f
	e.findings = append(e.findings, f)
	e.mu.Unlock()

	e.logf("fuzz: DEVIATION %s (%d steps, observed %s)", name, len(min.Steps), observedOf(resMin))
	if e.cfg.CorpusDir != "" {
		if err := saveFinding(e.cfg.CorpusDir, f); err != nil {
			e.logf("fuzz: persisting finding: %v", err)
		}
	}
}

// reportCrash minimizes a panicking candidate with a panic-preserving
// oracle and records it.
func (e *engine) reportCrash(cand *trace.Script, panicVal string) {
	min, err := reduce.MinimizeWith(cand, func(s *trace.Script) (bad bool, oerr error) {
		_, _, crash, runErr := e.execCheck(s)
		if runErr != nil {
			return false, nil // an unexecutable shrink is not the crash
		}
		return crash != "", nil
	})
	if err != nil {
		min = cand
	}
	sig := "panic|" + panicVal + "|" + findingSig(min, checker.Result{})
	name := findingName(KindCrash, sig)
	if min == cand {
		min = copyScript(cand)
	}
	min.Name = name

	e.mu.Lock()
	if f, ok := e.bySig[sig]; ok {
		f.Dups++
		e.mu.Unlock()
		return
	}
	f := &Finding{
		Name:       name,
		Kind:       KindCrash,
		Script:     min,
		Original:   cand,
		Sig:        sig,
		PanicValue: panicVal,
	}
	e.bySig[sig] = f
	e.findings = append(e.findings, f)
	e.mu.Unlock()

	e.logf("fuzz: CRASH %s: %s", name, panicVal)
	if e.cfg.CorpusDir != "" {
		if err := saveFinding(e.cfg.CorpusDir, f); err != nil {
			e.logf("fuzz: persisting finding: %v", err)
		}
	}
}

// guardedDeviates is the minimization oracle: execute + check under
// cov.Guard, so reduction probes cannot pollute attribution windows.
func (e *engine) guardedDeviates(s *trace.Script) (bad bool, err error) {
	_, res, crash, err := e.execCheck(s)
	if err != nil {
		return false, nil // shrinks that fail to execute don't deviate
	}
	if crash != "" {
		return false, nil // crash shrink belongs to the crash oracle
	}
	return !res.Accepted, nil
}

func observedOf(r checker.Result) string {
	if len(r.Errors) == 0 {
		return "?"
	}
	return r.Errors[0].Observed
}

// progress emits a status line every few seconds until done closes.
func (e *engine) progress(done <-chan struct{}) {
	if e.cfg.Log == nil {
		<-done
		return
	}
	t := time.NewTicker(5 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			e.mu.Lock()
			corpus, findings := e.corpus.Len(), len(e.findings)
			e.mu.Unlock()
			e.tel.Gauge("fuzz.corpus_size").Set(int64(corpus))
			e.tel.Gauge("fuzz.findings").Set(int64(findings))
			e.tel.Gauge("fuzz.coverage_points").Set(int64(e.covHitCount()))
			e.logf("fuzz: runs=%d corpus=%d coverage=%d findings=%d",
				e.runs.Load(), corpus, e.covHitCount(), findings)
		}
	}
}
