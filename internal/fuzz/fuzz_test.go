package fuzz

import (
	"context"

	"math/rand"
	"strings"
	"testing"

	"repro/internal/fsimpl"
	"repro/internal/testgen"
	"repro/internal/trace"
	"repro/internal/types"
)

func linuxSpec() types.Spec { return types.DefaultSpec() }

// ---- corpus semantics ----

func TestCorpusAdmitAndDedup(t *testing.T) {
	c := NewCorpus()
	s1 := testgen.RandomScript(1, 0, 8)
	s2 := testgen.RandomScript(1, 1, 4)
	s3 := testgen.RandomScript(1, 2, 2)

	if _, admitted, _, _ := c.Admit(s1, []string{"p/a", "p/b"}); !admitted {
		t.Fatal("first input with fresh points not admitted")
	}
	// No new point → rejected.
	if _, admitted, _, _ := c.Admit(s2, []string{"p/a"}); admitted {
		t.Error("input covering only seen points admitted")
	}
	// New point → admitted.
	if _, admitted, _, _ := c.Admit(s2, []string{"p/a", "p/c"}); !admitted {
		t.Error("input with a new point rejected")
	}
	if c.Len() != 2 || c.SeenCount() != 3 {
		t.Fatalf("corpus = %d entries / %d points, want 2 / 3", c.Len(), c.SeenCount())
	}
	// Identical point set, shorter script → replaces in place.
	e, admitted, replaced, evicted := c.Admit(s3, []string{"p/b", "p/a"}) // order must not matter
	if admitted || !replaced {
		t.Fatalf("same-signature shorter script: admitted=%v replaced=%v, want replace", admitted, replaced)
	}
	if e.Script != s3 {
		t.Error("replacement kept the longer script")
	}
	if evicted != s1 {
		t.Error("replacement did not report the superseded script as evicted")
	}
	if c.Len() != 2 {
		t.Errorf("replacement grew the corpus to %d", c.Len())
	}
	// Identical point set, longer script → dropped.
	if _, admitted, replaced, _ := c.Admit(s1, []string{"p/a", "p/b"}); admitted || replaced {
		t.Error("longer same-signature script admitted or replaced")
	}
	// Empty attribution never enters.
	if _, admitted, _, _ := c.Admit(s1, nil); admitted {
		t.Error("empty point set admitted")
	}
}

func TestCorpusRarityFavoursSoleHolders(t *testing.T) {
	c := NewCorpus()
	e1, _, _, _ := c.Admit(testgen.RandomScript(2, 0, 3), []string{"p/common"})
	e2, _, _, _ := c.Admit(testgen.RandomScript(2, 1, 3), []string{"p/common", "p/rare"})
	if c.Rarity(e2) <= c.Rarity(e1) {
		t.Errorf("rarity(e2)=%v ≤ rarity(e1)=%v; sole holder of p/rare should score higher",
			c.Rarity(e2), c.Rarity(e1))
	}
}

// ---- mutator validity ----

// TestMutatorProducesParsableScripts: every mutation product must render
// and re-parse to the same script (so corpus persistence round-trips) and
// keep the process lifecycle well-formed (so rejections are real
// deviations, not harness artifacts).
func TestMutatorProducesParsableScripts(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	m := &mutator{r: r, maxSteps: 30}
	parent := testgen.RandomScript(99, 0, 12)
	donor := testgen.RandomScript(99, 1, 12)
	for i := 0; i < 500; i++ {
		cand := m.mutate(parent, donor)
		if len(cand.Steps) == 0 || len(cand.Steps) > 30 {
			t.Fatalf("iteration %d: %d steps out of bounds", i, len(cand.Steps))
		}
		if !validLifecycle(cand) {
			t.Fatalf("iteration %d: ill-formed process lifecycle:\n%s", i, cand.Render())
		}
		text := cand.Render()
		back, err := trace.ParseScript(text)
		if err != nil {
			t.Fatalf("iteration %d: mutated script does not parse: %v\n%s", i, err, text)
		}
		if back.Render() != text {
			t.Fatalf("iteration %d: render/parse round-trip changed the script:\n%s\nvs\n%s",
				i, text, back.Render())
		}
		// Evolve: occasionally adopt the mutant as the next parent.
		if i%7 == 0 {
			parent = cand
		}
	}
}

func TestValidLifecycle(t *testing.T) {
	callStep := func(pid types.Pid) trace.Step {
		return trace.Step{Label: types.CallLabel{Pid: pid, Cmd: types.Stat{Path: "/"}}}
	}
	ok := &trace.Script{Steps: []trace.Step{
		callStep(1),
		{Label: types.CreateLabel{Pid: 2, Uid: 1, Gid: 1}},
		callStep(2),
		{Label: types.DestroyLabel{Pid: 2}},
	}}
	if !validLifecycle(ok) {
		t.Error("well-formed script rejected")
	}
	for name, bad := range map[string]*trace.Script{
		"call from unknown pid":  {Steps: []trace.Step{callStep(3)}},
		"call after destroy":     {Steps: []trace.Step{{Label: types.CreateLabel{Pid: 2}}, {Label: types.DestroyLabel{Pid: 2}}, callStep(2)}},
		"duplicate create":       {Steps: []trace.Step{{Label: types.CreateLabel{Pid: 2}}, {Label: types.CreateLabel{Pid: 2}}}},
		"destroy of unknown pid": {Steps: []trace.Step{{Label: types.DestroyLabel{Pid: 5}}}},
		"return label in script": {Steps: []trace.Step{{Label: types.ReturnLabel{Pid: 1, Ret: types.RvNone{}}}}},
	} {
		if validLifecycle(bad) {
			t.Errorf("%s accepted", name)
		}
	}
}

// ---- engine behaviour ----

// TestFuzzDeterministic: one worker, same seed and run budget ⇒ identical
// schedule, corpus and coverage.
func TestFuzzDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(context.Background(), Config{
			Factory: fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
			Spec:    linuxSpec(),
			Seed:    7,
			Workers: 1,
			MaxRuns: 400,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Runs != b.Runs || a.CorpusSize != b.CorpusSize || a.CovHit != b.CovHit ||
		len(a.Findings) != len(b.Findings) {
		t.Fatalf("runs %d/%d corpus %d/%d cov %d/%d findings %d/%d differ",
			a.Runs, b.Runs, a.CorpusSize, b.CorpusSize, a.CovHit, b.CovHit,
			len(a.Findings), len(b.Findings))
	}
	if a.CorpusSize == 0 {
		t.Fatal("no corpus entries admitted in 400 runs")
	}
}

// TestFuzzFindsAndMinimizesDeviation is the end-to-end acceptance check:
// fuzzing the HFS+-on-Trusty defect profile (§7.3: chmod fails
// EOPNOTSUPP, link-to-symlink fails EPERM) against the Linux model must
// surface a deviation and minimize it to its essence.
func TestFuzzFindsAndMinimizesDeviation(t *testing.T) {
	var prof fsimpl.Profile
	for _, p := range fsimpl.SurveyProfiles() {
		if p.Name == "hfsplus_linux_trusty" {
			prof = p
		}
	}
	if prof.Name == "" {
		t.Fatal("survey profile missing")
	}
	res, err := Run(context.Background(), Config{
		Name:    "fuzz hfsplus_linux_trusty vs linux",
		Factory: fsimpl.MemFactory(prof),
		Spec:    linuxSpec(),
		Seed:    3,
		Workers: 2,
		MaxRuns: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("no deviations found on a defect-injected profile")
	}
	foundChmod := false
	for _, f := range res.Findings {
		if f.Kind != KindDeviation {
			continue
		}
		if len(f.Script.Steps) >= len(f.Original.Steps) && len(f.Original.Steps) > 2 {
			t.Errorf("%s: not minimized (%d steps from %d)", f.Name, len(f.Script.Steps), len(f.Original.Steps))
		}
		for _, e := range f.Result.Errors {
			if e.Observed == "EOPNOTSUPP" && len(f.Script.Steps) <= 2 {
				foundChmod = true
			}
		}
	}
	if !foundChmod {
		t.Error("chmod-EOPNOTSUPP defect not found and minimized to ≤ 2 steps")
	}
	// Findings render through the analysis pipeline.
	if res.Summary == nil || res.Summary.Rejected == 0 {
		t.Fatal("analysis summary missing the deviations")
	}
	if res.Summary.CovTotal == 0 {
		t.Error("summary carries no coverage figures")
	}
	if !strings.Contains(res.HTML, "Model coverage") || !strings.Contains(res.HTML, "fuzz___") {
		t.Error("HTML report missing coverage or findings")
	}
}

// TestFuzzCorpusPersistAndResume: a session persists its corpus; a
// resumed session reloads it and starts with strictly more initial model
// coverage than a cold one.
func TestFuzzCorpusPersistAndResume(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Factory:   fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
		Spec:      linuxSpec(),
		Seed:      11,
		Workers:   1,
		MaxRuns:   400,
		CorpusDir: dir,
	}
	first, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.InitialCovHit != 0 {
		t.Errorf("cold session started with coverage %d, want 0", first.InitialCovHit)
	}
	if first.CorpusSize == 0 {
		t.Fatal("first session admitted nothing")
	}

	cfg.Seed = 12 // a different schedule, same persisted corpus
	second, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.CorpusSize == 0 {
		t.Fatal("resumed session has an empty corpus")
	}
	if second.InitialCovHit <= first.InitialCovHit {
		t.Errorf("resumed initial coverage %d not strictly above cold start %d",
			second.InitialCovHit, first.InitialCovHit)
	}
	// The reloaded corpus replays to at least the coverage it was
	// collected at (entries are re-attributed, not trusted).
	if second.InitialCovHit > first.CovHit {
		t.Errorf("resumed initial coverage %d exceeds what the first session reached (%d)",
			second.InitialCovHit, first.CovHit)
	}
}

// TestFuzzSeedScriptsEnterCorpus: configured seed inputs are attributed
// and admitted before the loop starts.
func TestFuzzSeedScriptsEnterCorpus(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Factory: fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
		Spec:    linuxSpec(),
		Seed:    5,
		Workers: 1,
		MaxRuns: 1, // practically no fuzzing: corpus comes from the seeds
		Seeds:   testgen.RandomScripts(42, 10, 15),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CorpusSize == 0 {
		t.Fatal("seed scripts not admitted")
	}
	if res.InitialCovHit == 0 {
		t.Fatal("seed replay hit no coverage points")
	}
}

// TestFuzzConfigValidation: missing factory or missing stop condition are
// rejected.
func TestFuzzConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Spec: linuxSpec(), MaxRuns: 1}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := Run(context.Background(), Config{Factory: fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")), Spec: linuxSpec()}); err == nil {
		t.Error("unbounded session accepted")
	}
}
