package fuzz

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Entry is one corpus input: a script together with the exact set of model
// coverage points its checked execution hits. Entries are keyed by that
// set — two scripts covering identical points occupy one slot, the shorter
// script winning.
type Entry struct {
	Script *trace.Script
	Points []string // sorted coverage-point ids
	Sig    string   // hash of Points, the corpus key
}

// PointsSig hashes a sorted point set into the corpus key.
func PointsSig(points []string) string {
	h := sha1.Sum([]byte(strings.Join(points, "\n")))
	return hex.EncodeToString(h[:8])
}

// Corpus is the in-memory corpus: entries keyed by coverage signature,
// plus the union of covered points and per-point reference counts (how
// many entries hit each point — the scheduler favours entries holding
// rare points).
type Corpus struct {
	entries []*Entry
	bySig   map[string]int
	seen    map[string]bool
	refs    map[string]int
	// weights caches each entry's rarity score for the scheduler; it is
	// rebuilt lazily after an admission changes the refcounts (the
	// scheduler consults it on every iteration, admissions are rare).
	weights      []float64
	weightsTotal float64
	weightsStale bool
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{
		bySig: make(map[string]int),
		seen:  make(map[string]bool),
		refs:  make(map[string]int),
	}
}

// Len returns the number of entries.
func (c *Corpus) Len() int { return len(c.entries) }

// Entries returns the backing slice (not a copy; callers must not mutate).
func (c *Corpus) Entries() []*Entry { return c.entries }

// Seen reports whether a coverage point is covered by some entry.
func (c *Corpus) Seen(point string) bool { return c.seen[point] }

// SeenCount returns the number of distinct points the corpus covers.
func (c *Corpus) SeenCount() int { return len(c.seen) }

// Rarity scores an entry: the sum over its points of 1/refcount, so an
// entry that is the sole holder of a point scores at least 1 for it.
func (c *Corpus) Rarity(e *Entry) float64 {
	var w float64
	for _, p := range e.Points {
		if n := c.refs[p]; n > 0 {
			w += 1 / float64(n)
		}
	}
	return w
}

// Admit offers a script with its attributed point set to the corpus.
// The input is admitted iff it hits at least one point no existing entry
// hits. Independently, if an entry with the identical point set already
// exists, the shorter script replaces the longer one (dedup keeps the
// cheapest representative per signature); the superseded script is
// returned as evicted so persisted copies can be deleted.
func (c *Corpus) Admit(s *trace.Script, points []string) (e *Entry, admitted, replaced bool, evicted *trace.Script) {
	if len(points) == 0 {
		return nil, false, false, nil
	}
	sorted := append([]string(nil), points...)
	sort.Strings(sorted)
	sig := PointsSig(sorted)
	if i, ok := c.bySig[sig]; ok {
		old := c.entries[i]
		if len(s.Steps) < len(old.Script.Steps) {
			evicted = old.Script
			old.Script = s
			return old, false, true, evicted
		}
		return old, false, false, nil
	}
	fresh := false
	for _, p := range sorted {
		if !c.seen[p] {
			fresh = true
			break
		}
	}
	if !fresh {
		return nil, false, false, nil
	}
	e = &Entry{Script: s, Points: sorted, Sig: sig}
	c.bySig[sig] = len(c.entries)
	c.entries = append(c.entries, e)
	for _, p := range sorted {
		c.seen[p] = true
		c.refs[p]++
	}
	c.weightsStale = true
	return e, true, false, nil
}

// Weights returns the per-entry rarity scores and their sum, rebuilding
// the cache only after an admission invalidated it. The slice is owned by
// the corpus; callers must not mutate it and must hold whatever lock
// guards the corpus while using it.
func (c *Corpus) Weights() ([]float64, float64) {
	if c.weightsStale || len(c.weights) != len(c.entries) {
		c.weights = c.weights[:0]
		c.weightsTotal = 0
		for _, e := range c.entries {
			w := c.Rarity(e)
			if w <= 0 {
				w = 1e-9
			}
			c.weights = append(c.weights, w)
			c.weightsTotal += w
		}
		c.weightsStale = false
	}
	return c.weights, c.weightsTotal
}

// ---- On-disk persistence ----
//
// A corpus directory holds one .script file per entry, named by a hash of
// the script text (not the coverage signature: coverage is recomputed on
// load, so files survive model evolution). Findings live in a findings/
// subdirectory and are not reloaded as corpus entries.

// scriptFileName names an entry file by its rendered content.
func scriptFileName(s *trace.Script) string {
	h := sha1.Sum([]byte(s.Render()))
	return hex.EncodeToString(h[:8]) + ".script"
}

// SaveScript writes one corpus script under dir.
func SaveScript(dir string, s *trace.Script) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, scriptFileName(s))
	return os.WriteFile(path, []byte(s.Render()), 0o644)
}

// RemoveScript deletes a superseded corpus script's file, if present.
func RemoveScript(dir string, s *trace.Script) error {
	err := os.Remove(filepath.Join(dir, scriptFileName(s)))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// LoadScripts parses every .script file directly under dir, in sorted
// filename order (so corpus replay is deterministic). A missing directory
// is an empty corpus, not an error.
func LoadScripts(dir string) ([]*trace.Script, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, de := range entries {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".script") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	var out []*trace.Script
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		s, err := trace.ParseScript(string(data))
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus file %s: %w", name, err)
		}
		if s.Name == "" {
			s.Name = strings.TrimSuffix(name, ".script")
		}
		out = append(out, s)
	}
	return out, nil
}
