package fuzz

// Crash-mode fuzzing: the durability operators (fsync/sync barriers,
// crash labels) must produce well-formed, parsable candidates, and a
// short crash session must reach model coverage a plain session cannot —
// the persistence transitions only crash scripts exercise.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cov"
	"repro/internal/fsimpl"
	"repro/internal/testgen"
	"repro/internal/trace"
	"repro/internal/types"
)

func crashFuzzProfile() fsimpl.Profile {
	p := fsimpl.LinuxProfile("ext4")
	p.Crash = true
	return p
}

func crashFuzzSpec() types.Spec {
	sp := types.DefaultSpec()
	sp.Crash = true
	return sp
}

// TestMutatorCrashOps: with Crash on, mutation products stay lifecycle-
// valid and render/parse round-trip — including across crash labels, which
// reset process liveness — and the operator mix actually reaches both new
// step kinds (barriers and crashes).
func TestMutatorCrashOps(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	m := &mutator{r: r, maxSteps: 30, crash: true}
	parent := testgen.RandomScript(17, 0, 12)
	donor := testgen.RandomScript(17, 1, 12)
	sawCrash, sawBarrier := false, false
	for i := 0; i < 500; i++ {
		cand := m.mutate(parent, donor)
		if !validLifecycle(cand) {
			t.Fatalf("iteration %d: ill-formed lifecycle:\n%s", i, cand.Render())
		}
		text := cand.Render()
		back, err := trace.ParseScript(text)
		if err != nil {
			t.Fatalf("iteration %d: crash mutant does not parse: %v\n%s", i, err, text)
		}
		if back.Render() != text {
			t.Fatalf("iteration %d: render/parse round-trip changed the script:\n%s", i, text)
		}
		for _, st := range cand.Steps {
			switch l := st.Label.(type) {
			case types.CrashLabel:
				sawCrash = true
			case types.CallLabel:
				switch l.Cmd.(type) {
				case types.Fsync, types.Sync:
					sawBarrier = true
				}
			}
		}
		if i%7 == 0 {
			parent = cand
		}
	}
	if !sawCrash {
		t.Error("500 crash-mode mutations produced no crash label")
	}
	if !sawBarrier {
		t.Error("500 crash-mode mutations produced no fsync/sync barrier")
	}
}

// TestValidLifecycleCrash pins the reset semantics: a crash kills every
// process except the remounted initial one.
func TestValidLifecycleCrash(t *testing.T) {
	call := func(pid types.Pid) trace.Step {
		return trace.Step{Label: types.CallLabel{Pid: pid, Cmd: types.Stat{Path: "/"}}}
	}
	crash := trace.Step{Label: types.CrashLabel{Keep: 0}}
	create2 := trace.Step{Label: types.CreateLabel{Pid: 2, Uid: 1, Gid: 1}}

	for name, s := range map[string]*trace.Script{
		"crash alone":             {Steps: []trace.Step{crash}},
		"call 1 after crash":      {Steps: []trace.Step{call(1), crash, call(1)}},
		"recreate pid after":      {Steps: []trace.Step{create2, call(2), crash, create2, call(2)}},
		"double crash":            {Steps: []trace.Step{crash, crash, call(1)}},
		"create same pid twice ×": {Steps: []trace.Step{create2, crash, create2}},
	} {
		if !validLifecycle(s) {
			t.Errorf("%s: rejected, want accepted", name)
		}
	}
	for name, s := range map[string]*trace.Script{
		"call from dead pid":    {Steps: []trace.Step{create2, crash, call(2)}},
		"destroy of dead pid":   {Steps: []trace.Step{create2, crash, {Label: types.DestroyLabel{Pid: 2}}}},
		"duplicate create only": {Steps: []trace.Step{create2, create2}},
	} {
		if validLifecycle(s) {
			t.Errorf("%s: accepted, want rejected", name)
		}
	}
}

// TestFuzzCrashConfigValidation: crash candidates are sequential-executor
// only, so Crash+Concurrent must be rejected up front.
func TestFuzzCrashConfigValidation(t *testing.T) {
	_, err := Run(context.Background(), Config{
		Factory:    fsimpl.MemFactory(crashFuzzProfile()),
		Spec:       crashFuzzSpec(),
		Crash:      true,
		Concurrent: true,
		MaxRuns:    1,
	})
	if err == nil {
		t.Fatal("Crash+Concurrent session accepted")
	}
}

// TestFuzzCrashCoverageGain is the smoke test of the satellite: a short
// crash session reaches the persistence transition (osspec/trans/crash)
// that an identically-budgeted plain session cannot, and its corpus
// absorbs crash-labelled entries.
func TestFuzzCrashCoverageGain(t *testing.T) {
	run := func(crash bool, prof fsimpl.Profile, spec types.Spec, seeds []*trace.Script) (*Result, *cov.Registry) {
		reg := cov.NewRegistry()
		res, err := Run(context.Background(), Config{
			Name:     "crash-smoke",
			Factory:  fsimpl.MemFactory(prof),
			Spec:     spec,
			Seed:     23,
			Workers:  1,
			MaxRuns:  150,
			Crash:    crash,
			Seeds:    seeds,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, reg
	}
	hit := func(reg *cov.Registry, point string) bool {
		for _, unhit := range reg.Unhit() {
			if unhit == point {
				return false
			}
		}
		return true
	}

	seeds := testgen.CrashScripts()[:4]
	crashRes, crashReg := run(true, crashFuzzProfile(), crashFuzzSpec(), seeds)
	plainRes, plainReg := run(false, fsimpl.LinuxProfile("ext4"), types.DefaultSpec(), nil)

	if !hit(crashReg, "osspec/trans/crash") {
		t.Error("crash session never exercised the model's crash transition")
	}
	if hit(plainReg, "osspec/trans/crash") {
		t.Error("plain session exercised the crash transition — the gate leaks")
	}
	if crashRes.Runs == 0 || plainRes.Runs == 0 {
		t.Fatalf("sessions did not run: crash=%d plain=%d", crashRes.Runs, plainRes.Runs)
	}
	if crashRes.CorpusSize == 0 {
		t.Error("crash session admitted no corpus entries")
	}
}

// TestFuzzCrashSeedFilter: a crash-labelled corpus reloaded into a
// non-crash session is skipped at seeding (the factory cannot power-cycle)
// instead of erroring on every replay.
func TestFuzzCrashSeedFilter(t *testing.T) {
	crashSeed := &trace.Script{Name: "crash___seed", Steps: []trace.Step{
		{Label: types.CallLabel{Pid: 1, Cmd: types.Mkdir{Path: "/d", Perm: 0o755}}},
		{Label: types.CrashLabel{Keep: 0}},
	}}
	res, err := Run(context.Background(), Config{
		Factory: fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
		Spec:    types.DefaultSpec(),
		Seed:    9,
		Workers: 1,
		MaxRuns: 1,
		Seeds:   []*trace.Script{crashSeed},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecErrors != 0 {
		t.Errorf("crash seed reached the non-crash executor: %d exec errors", res.ExecErrors)
	}
	// The skipped seed replays nothing, so seeding leaves coverage at zero
	// (the session's one fresh candidate runs after the figure is taken).
	if res.InitialCovHit != 0 {
		t.Errorf("crash seed was replayed at seeding: initial coverage %d, want 0", res.InitialCovHit)
	}
}
