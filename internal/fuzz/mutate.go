package fuzz

import (
	"fmt"
	"math/rand"

	"repro/internal/testgen"
	"repro/internal/trace"
	"repro/internal/types"
)

// mutator derives candidate scripts from corpus entries by script-level
// edits: step insertion/deletion/swap/duplication, tail truncation,
// splicing with another entry, and argument mutation drawing on the
// testgen name/flag/perm universes. Every product is well-formed with
// respect to the process lifecycle (calls only from live pids), so a
// rejected candidate always reflects a real spec deviation rather than a
// malformed-script artifact.
type mutator struct {
	r        *rand.Rand
	maxSteps int
	// crash enables the durability operators (Config.Crash): inserting
	// fsync/sync barriers and inserting/moving/deleting crash labels. A
	// crash label kills every process and descriptor, so the lifecycle
	// bookkeeping below treats it as a reset to the initial process.
	crash bool
}

// mutate produces a candidate from parent, optionally splicing in donor.
// It stacks 1–3 random operators, validates the result, and falls back to
// a plain copy of the parent if every attempt comes out ill-formed (the
// caller's argument mutation of a copy is always safe).
func (m *mutator) mutate(parent, donor *trace.Script) *trace.Script {
	ops := 7
	if m.crash {
		ops = 10 // widen the draw with the durability operators
	}
	for attempt := 0; attempt < 4; attempt++ {
		cand := copyScript(parent)
		for n := 1 + m.r.Intn(3); n > 0; n-- {
			switch m.r.Intn(ops) {
			case 0:
				m.insertCall(cand)
			case 1:
				m.deleteStep(cand)
			case 2:
				m.swapSteps(cand)
			case 3:
				m.dupStep(cand)
			case 4:
				m.truncateTail(cand)
			case 5:
				if donor != nil {
					cand = m.splice(cand, donor)
				} else {
					m.insertCall(cand)
				}
			case 6:
				m.mutateArgs(cand)
			case 7:
				m.insertBarrier(cand)
			case 8:
				m.insertCrash(cand)
			default:
				m.tweakCrash(cand)
			}
		}
		m.clamp(cand)
		if len(cand.Steps) > 0 && validLifecycle(cand) {
			return cand
		}
	}
	cand := copyScript(parent)
	m.mutateArgs(cand)
	return cand
}

// fresh generates a from-scratch random script (corpus bootstrap and the
// scheduler's exploration slice), reproducible from (seed, index).
func (m *mutator) fresh(seed int64, index int) *trace.Script {
	calls := 5 + m.r.Intn(20)
	if calls > m.maxSteps {
		calls = m.maxSteps
	}
	return testgen.RandomScript(seed, index, calls)
}

func copyScript(s *trace.Script) *trace.Script {
	out := &trace.Script{Name: s.Name}
	out.Steps = append(out.Steps, s.Steps...)
	return out
}

// cmdGen builds a command generator primed with the descriptors the script
// plausibly has live, so inserted calls mostly target real handles.
func (m *mutator) cmdGen(s *trace.Script) *testgen.CmdGen {
	g := testgen.NewCmdGen(m.r)
	var fds []types.FD
	var dhs []types.DH
	nextFD, nextDH := types.FD(3), types.DH(1)
	for _, st := range s.Steps {
		switch l := st.Label.(type) {
		case types.CallLabel:
			switch l.Cmd.(type) {
			case types.Open:
				fds = append(fds, nextFD)
				nextFD++
			case types.Opendir:
				dhs = append(dhs, nextDH)
				nextDH++
			}
		case types.CrashLabel:
			// The power cycle closes every handle; the remounted initial
			// process allocates from scratch.
			fds, dhs = nil, nil
			nextFD, nextDH = 3, 1
		}
	}
	g.SeedHandles(fds, dhs)
	return g
}

// livePidAt picks a pid that is alive at step position pos (process 1 is
// implicitly created by the harness).
func livePidAt(s *trace.Script, pos int, r *rand.Rand) types.Pid {
	live := map[types.Pid]bool{1: true}
	for i := 0; i < pos && i < len(s.Steps); i++ {
		switch l := s.Steps[i].Label.(type) {
		case types.CreateLabel:
			live[l.Pid] = true
		case types.DestroyLabel:
			delete(live, l.Pid)
		case types.CrashLabel:
			live = map[types.Pid]bool{1: true}
		}
	}
	pids := make([]types.Pid, 0, len(live))
	for p := range live {
		pids = append(pids, p)
	}
	if len(pids) == 0 {
		return 1
	}
	// Deterministic order before the random draw (map iteration is not).
	for i := 1; i < len(pids); i++ {
		for j := i; j > 0 && pids[j] < pids[j-1]; j-- {
			pids[j], pids[j-1] = pids[j-1], pids[j]
		}
	}
	return pids[r.Intn(len(pids))]
}

func (m *mutator) insertCall(s *trace.Script) {
	pos := m.r.Intn(len(s.Steps) + 1)
	pid := livePidAt(s, pos, m.r)
	cmd := m.randomCommand(s)
	st := trace.Step{Label: types.CallLabel{Pid: pid, Cmd: cmd}}
	s.Steps = append(s.Steps[:pos], append([]trace.Step{st}, s.Steps[pos:]...)...)
}

// insertBarrier inserts a durability barrier — fsync on a plausibly-live
// descriptor, or sync — moving the durable image so a later crash label
// partitions the script's effects.
func (m *mutator) insertBarrier(s *trace.Script) {
	pos := m.r.Intn(len(s.Steps) + 1)
	pid := livePidAt(s, pos, m.r)
	var cmd types.Command
	if m.r.Intn(3) == 0 {
		cmd = types.Sync{}
	} else {
		cmd = types.Fsync{FD: m.cmdGen(s).FD()}
	}
	st := trace.Step{Label: types.CallLabel{Pid: pid, Cmd: cmd}}
	s.Steps = append(s.Steps[:pos], append([]trace.Step{st}, s.Steps[pos:]...)...)
}

// insertCrash drops a power cycle into the script. Small Keep values bias
// towards losing recent effects — the interesting durability frontier.
func (m *mutator) insertCrash(s *trace.Script) {
	pos := m.r.Intn(len(s.Steps) + 1)
	st := trace.Step{Label: types.CrashLabel{Keep: m.r.Intn(4)}}
	s.Steps = append(s.Steps[:pos], append([]trace.Step{st}, s.Steps[pos:]...)...)
}

// tweakCrash moves, deletes, or re-draws the Keep of an existing crash
// label; with none present it inserts one instead.
func (m *mutator) tweakCrash(s *trace.Script) {
	var crashes []int
	for i, st := range s.Steps {
		if _, ok := st.Label.(types.CrashLabel); ok {
			crashes = append(crashes, i)
		}
	}
	if len(crashes) == 0 {
		m.insertCrash(s)
		return
	}
	i := crashes[m.r.Intn(len(crashes))]
	switch m.r.Intn(3) {
	case 0: // delete
		s.Steps = append(s.Steps[:i], s.Steps[i+1:]...)
	case 1: // move
		st := s.Steps[i]
		s.Steps = append(s.Steps[:i], s.Steps[i+1:]...)
		pos := m.r.Intn(len(s.Steps) + 1)
		s.Steps = append(s.Steps[:pos], append([]trace.Step{st}, s.Steps[pos:]...)...)
	default: // re-draw Keep
		s.Steps[i].Label = types.CrashLabel{Keep: m.r.Intn(4)}
	}
}

// hasCrashLabel reports whether the script contains a crash label — such
// scripts need a crash-capable implementation and a Spec.Crash model.
func hasCrashLabel(s *trace.Script) bool {
	for _, st := range s.Steps {
		if _, ok := st.Label.(types.CrashLabel); ok {
			return true
		}
	}
	return false
}

// randomCommand draws an inserted call: usually from the shared testgen
// universe, sometimes one of the fuzz-only extensions (pread/pwrite with
// boundary offsets, umask) that the random generator does not emit — the
// §7.3.4 pwrite defects are only reachable through these.
func (m *mutator) randomCommand(s *trace.Script) types.Command {
	g := m.cmdGen(s)
	switch m.r.Intn(10) {
	case 0:
		data := g.Data()
		return types.Pwrite{FD: g.FD(), Data: data, Size: int64(len(data)),
			Off: int64(m.r.Intn(12) - 4)}
	case 1:
		return types.Pread{FD: g.FD(), Size: int64(m.r.Intn(20)),
			Off: int64(m.r.Intn(12) - 4)}
	case 2:
		return types.Umask{Mask: g.Perm()}
	default:
		return g.Command()
	}
}

func (m *mutator) deleteStep(s *trace.Script) {
	if len(s.Steps) < 2 {
		return
	}
	i := m.r.Intn(len(s.Steps))
	s.Steps = append(s.Steps[:i], s.Steps[i+1:]...)
}

func (m *mutator) swapSteps(s *trace.Script) {
	if len(s.Steps) < 2 {
		return
	}
	i, j := m.r.Intn(len(s.Steps)), m.r.Intn(len(s.Steps))
	s.Steps[i], s.Steps[j] = s.Steps[j], s.Steps[i]
}

func (m *mutator) dupStep(s *trace.Script) {
	if len(s.Steps) == 0 {
		return
	}
	i := m.r.Intn(len(s.Steps))
	st := s.Steps[i]
	s.Steps = append(s.Steps[:i], append([]trace.Step{st}, s.Steps[i:]...)...)
}

func (m *mutator) truncateTail(s *trace.Script) {
	if len(s.Steps) < 2 {
		return
	}
	s.Steps = s.Steps[:1+m.r.Intn(len(s.Steps)-1)]
}

// splice keeps a prefix of a and appends a suffix of b — crossover between
// corpus entries.
func (m *mutator) splice(a, b *trace.Script) *trace.Script {
	out := &trace.Script{Name: a.Name}
	out.Steps = append(out.Steps, a.Steps[:m.r.Intn(len(a.Steps)+1)]...)
	if len(b.Steps) > 0 {
		out.Steps = append(out.Steps, b.Steps[m.r.Intn(len(b.Steps)):]...)
	}
	return out
}

// mutateArgs regenerates one argument of one random call step.
func (m *mutator) mutateArgs(s *trace.Script) {
	var calls []int
	for i, st := range s.Steps {
		if _, ok := st.Label.(types.CallLabel); ok {
			calls = append(calls, i)
		}
	}
	if len(calls) == 0 {
		return
	}
	i := calls[m.r.Intn(len(calls))]
	cl := s.Steps[i].Label.(types.CallLabel)
	g := m.cmdGen(s)
	cl.Cmd = mutateCommand(m.r, g, cl.Cmd)
	s.Steps[i].Label = cl
}

// mutateCommand rewrites one field of cmd with a fresh draw from the
// testgen universes, preserving the command kind.
func mutateCommand(r *rand.Rand, g *testgen.CmdGen, cmd types.Command) types.Command {
	switch c := cmd.(type) {
	case types.Mkdir:
		if r.Intn(2) == 0 {
			c.Path = g.Path()
		} else {
			c.Perm = g.Perm()
		}
		return c
	case types.Rmdir:
		c.Path = g.Path()
		return c
	case types.Unlink:
		c.Path = g.Path()
		return c
	case types.Link:
		if r.Intn(2) == 0 {
			c.Src = g.Path()
		} else {
			c.Dst = g.Path()
		}
		return c
	case types.Rename:
		if r.Intn(2) == 0 {
			c.Src = g.Path()
		} else {
			c.Dst = g.Path()
		}
		return c
	case types.Symlink:
		if r.Intn(2) == 0 {
			c.Target = g.Path()
		} else {
			c.Linkpath = g.Path()
		}
		return c
	case types.Readlink:
		c.Path = g.Path()
		return c
	case types.Stat:
		c.Path = g.Path()
		return c
	case types.Lstat:
		c.Path = g.Path()
		return c
	case types.Truncate:
		if r.Intn(2) == 0 {
			c.Path = g.Path()
		} else {
			c.Len = int64(r.Intn(12) - 2)
		}
		return c
	case types.Chmod:
		if r.Intn(2) == 0 {
			c.Path = g.Path()
		} else {
			c.Perm = g.Perm()
		}
		return c
	case types.Chown:
		c.Path = g.Path()
		return c
	case types.Chdir:
		c.Path = g.Path()
		return c
	case types.Open:
		switch r.Intn(3) {
		case 0:
			c.Path = g.Path()
		case 1:
			c.Flags = g.Flags()
		default:
			c.Perm = g.Perm()
		}
		return c
	case types.Close:
		c.FD = g.FD()
		return c
	case types.Read:
		if r.Intn(2) == 0 {
			c.FD = g.FD()
		} else {
			c.Size = int64(r.Intn(20))
		}
		return c
	case types.Write:
		if r.Intn(2) == 0 {
			c.FD = g.FD()
		} else {
			c.Data = g.Data()
			c.Size = int64(len(c.Data))
		}
		return c
	case types.Pread:
		if r.Intn(2) == 0 {
			c.FD = g.FD()
		} else {
			c.Off = int64(r.Intn(12) - 4)
		}
		return c
	case types.Pwrite:
		if r.Intn(2) == 0 {
			c.FD = g.FD()
		} else {
			c.Off = int64(r.Intn(12) - 4)
		}
		return c
	case types.Lseek:
		switch r.Intn(3) {
		case 0:
			c.FD = g.FD()
		case 1:
			c.Off = int64(r.Intn(20) - 4)
		default:
			c.Whence = types.SeekWhence(r.Intn(3))
		}
		return c
	case types.Opendir:
		c.Path = g.Path()
		return c
	case types.Readdir:
		c.DH = g.DH()
		return c
	case types.Rewinddir:
		c.DH = g.DH()
		return c
	case types.Closedir:
		c.DH = g.DH()
		return c
	case types.Umask:
		c.Mask = g.Perm()
		return c
	case types.Fsync:
		c.FD = g.FD()
		return c
	default:
		return cmd
	}
}

// clamp bounds the candidate's length.
func (m *mutator) clamp(s *trace.Script) {
	if m.maxSteps > 0 && len(s.Steps) > m.maxSteps {
		s.Steps = s.Steps[:m.maxSteps]
	}
}

// validLifecycle checks process well-formedness: every call targets a live
// pid (1 is implicitly alive), create does not duplicate a live pid, and
// destroy targets a live pid. A crash label kills every process and
// remounts with a fresh initial process, so liveness resets to {1} — a
// call from a pre-crash pid after the crash is ill-formed. Mutation
// products violating this would be rejected by the model as harness
// artifacts, not file-system deviations.
func validLifecycle(s *trace.Script) bool {
	live := map[types.Pid]bool{1: true}
	for _, st := range s.Steps {
		switch l := st.Label.(type) {
		case types.CallLabel:
			if !live[l.Pid] {
				return false
			}
		case types.CreateLabel:
			if live[l.Pid] {
				return false
			}
			live[l.Pid] = true
		case types.DestroyLabel:
			if !live[l.Pid] {
				return false
			}
			delete(live, l.Pid)
		case types.CrashLabel:
			live = map[types.Pid]bool{1: true}
		case types.ReturnLabel, types.TauLabel:
			return false // scripts never carry these
		}
	}
	return true
}

// candidateName labels a mutated script by its run sequence number.
func candidateName(seq int64) string { return fmt.Sprintf("fuzz___cand_%d", seq) }
