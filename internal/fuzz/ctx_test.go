package fuzz

// Cancellation contract of the fuzzer: context cancellation is the normal
// end of a session — results collected so far are reported, never an
// error.

import (
	"context"
	"testing"

	"repro/internal/cov"
	"repro/internal/fsimpl"
	"repro/internal/types"
)

func TestRunCancelledContextEndsGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, Config{
		Factory: fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
		Spec:    types.DefaultSpec(),
		MaxRuns: 1000,
		Workers: 2,
		Seed:    1,
	})
	if err != nil {
		t.Fatalf("cancelled session errored: %v", err)
	}
	if res.Runs != 0 {
		t.Fatalf("pre-cancelled session still ran %d candidates", res.Runs)
	}
}

// TestRunRegistryIsolation: a session with a private registry leaves
// another registry's counters untouched and records its own coverage.
func TestRunRegistryIsolation(t *testing.T) {
	regA := cov.NewRegistry()
	regB := cov.NewRegistry()
	res, err := Run(context.Background(), Config{
		Factory:  fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
		Spec:     types.DefaultSpec(),
		MaxRuns:  300,
		Workers:  2,
		Seed:     1,
		Registry: regA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CovHit == 0 {
		t.Fatal("isolated session attributed no coverage")
	}
	if hitA, _ := regA.Stats(); hitA != res.CovHit {
		t.Fatalf("result CovHit %d != registry hits %d", res.CovHit, hitA)
	}
	if hitB, _ := regB.Stats(); hitB != 0 {
		t.Fatalf("bystander registry saw %d hits", hitB)
	}
}
