package fuzz

import (
	"context"

	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fsimpl"
	"repro/internal/pipeline"
	"repro/internal/types"
)

// cacheTestConfig is a short deterministic session against the conforming
// ext4 memfs.
func cacheTestConfig(t *testing.T, corpusDir string, cache *pipeline.Cache) Config {
	t.Helper()
	return Config{
		Name:        "fuzz-cache-test",
		Factory:     fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
		Spec:        types.DefaultSpec(),
		Seed:        7,
		Workers:     1,
		MaxRuns:     150,
		Duration:    time.Minute, // generous bound; MaxRuns stops first
		CorpusDir:   corpusDir,
		ResultCache: cache,
	}
}

// TestSeedCacheEquivalence grows a corpus, then resumes it twice — once
// replaying every entry, once admitting from the result cache — and
// demands the two sessions start from an identical corpus and identical
// global coverage. The cached path must be an optimisation, never a
// semantic change.
func TestSeedCacheEquivalence(t *testing.T) {
	base := t.TempDir()
	corpusA := filepath.Join(base, "corpus-a")
	corpusB := filepath.Join(base, "corpus-b")
	cache, err := pipeline.OpenCache(filepath.Join(base, "cache"))
	if err != nil {
		t.Fatal(err)
	}

	// Session 1: grow a corpus, populating the cache as seeds are offered.
	res1, err := Run(context.Background(), cacheTestConfig(t, corpusA, cache))
	if err != nil {
		t.Fatal(err)
	}
	if res1.CorpusSize == 0 {
		t.Fatal("session 1 admitted nothing; the equivalence check would be vacuous")
	}
	if res1.CachedSeeds != 0 {
		t.Fatalf("session 1 reported %d cached seeds on a cold cache", res1.CachedSeeds)
	}

	// Mirror the corpus directory so both resumed sessions load the same
	// entries (session B must not see cache entries? it must — the cache is
	// the point; B gets no cache handle instead).
	if err := copyDir(corpusA, corpusB); err != nil {
		t.Fatal(err)
	}

	// Session 2a: resume WITH the cache; MaxRuns=1 keeps mutation noise out.
	cfgA := cacheTestConfig(t, corpusA, cache)
	cfgA.MaxRuns = 1
	resA, err := Run(context.Background(), cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if resA.CachedSeeds == 0 {
		t.Error("resumed session admitted no seeds from cache")
	}

	// Session 2b: resume WITHOUT the cache (full replay).
	cfgB := cacheTestConfig(t, corpusB, nil)
	cfgB.MaxRuns = 1
	resB, err := Run(context.Background(), cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if resB.CachedSeeds != 0 {
		t.Fatalf("cache-less session reported %d cached seeds", resB.CachedSeeds)
	}

	if resA.InitialCovHit != resB.InitialCovHit {
		t.Errorf("cached seeding reached %d initial coverage points, replayed seeding %d",
			resA.InitialCovHit, resB.InitialCovHit)
	}
	if resA.CorpusSize != resB.CorpusSize {
		t.Errorf("cached seeding built corpus of %d, replayed seeding %d",
			resA.CorpusSize, resB.CorpusSize)
	}
}

func copyDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			if err := copyDir(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
				return err
			}
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
