// Package fuzz is a coverage-guided mutation fuzzer over test scripts —
// the feedback loop the paper leaves as future work (§8 randomised /
// differential testing, §9 automatic test-case reduction), built from the
// repo's existing parts: seeded random generation (internal/testgen),
// model coverage points (internal/cov), the executor (internal/exec), the
// oracle (internal/checker) and ddmin reduction (internal/reduce).
//
// The loop is the classic greybox one: a scheduler picks a corpus entry
// (weighted towards entries holding rare coverage points), mutation
// operators derive a candidate script, the executor drives it against the
// implementation under test, and the oracle checks the observed trace
// against the model. Candidates that hit model coverage points no corpus
// entry hits are admitted (the corpus is keyed by coverage-point set);
// oracle-rejected traces are minimized with delta debugging and recorded
// as findings, rendered through internal/analysis. The corpus persists to
// disk so successive runs resume where the last one stopped.
//
// Coverage attribution is exact even with parallel workers: the fast path
// (execute + check, no attribution) runs under cov.Guard, and the rare
// re-run that attributes a promising candidate's exact point set runs in a
// cov.Tracker window that excludes all guarded evaluation. With
// Config.Registry the session instead attributes every candidate and
// merges the point sets into that isolated registry — several sessions
// can then fuzz in one process without polluting each other's counters,
// at the cost of serializing candidate evaluation.
//
// A session ends when its context is done (Config.Duration is sugar for a
// deadline) or MaxRuns is reached; cancellation is the normal end of a
// time-bounded session, reported over whatever was found, never an error.
package fuzz
