package fuzz

// Fuzz integration with the concurrent universe: mutation operators must
// keep multi-process scripts well-formed (create-before-call,
// destroy-after-last-use) and renderable, and a concurrent-mode session
// against a conforming target must come out clean.

import (
	"context"

	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/fsimpl"
	"repro/internal/testgen"
	"repro/internal/trace"
	"repro/internal/types"
)

// checkProcessInvariants asserts explicitly what validLifecycle implies:
// every pid's calls fall between its create (pid 1 is implicitly alive)
// and its destroy, and no label mentions a destroyed pid again.
func checkProcessInvariants(t *testing.T, s *trace.Script) {
	t.Helper()
	created := map[types.Pid]bool{1: true}
	destroyed := map[types.Pid]bool{}
	for i, st := range s.Steps {
		switch l := st.Label.(type) {
		case types.CallLabel:
			if !created[l.Pid] {
				t.Fatalf("step %d: call from pid %d before create:\n%s", i, l.Pid, s.Render())
			}
			if destroyed[l.Pid] {
				t.Fatalf("step %d: call from pid %d after destroy:\n%s", i, l.Pid, s.Render())
			}
		case types.CreateLabel:
			if created[l.Pid] && !destroyed[l.Pid] {
				t.Fatalf("step %d: duplicate create of pid %d:\n%s", i, l.Pid, s.Render())
			}
			created[l.Pid] = true
			destroyed[l.Pid] = false
		case types.DestroyLabel:
			if !created[l.Pid] || destroyed[l.Pid] {
				t.Fatalf("step %d: destroy of dead pid %d:\n%s", i, l.Pid, s.Render())
			}
			destroyed[l.Pid] = true
		case types.ReturnLabel, types.TauLabel:
			t.Fatalf("step %d: mutated script carries a %T:\n%s", i, l, s.Render())
		}
	}
}

func TestMutatorPreservesConcurrentInvariants(t *testing.T) {
	seeds := testgen.ConcurrentScripts()
	r := rand.New(rand.NewSource(11))
	m := &mutator{r: r, maxSteps: 40}
	parent := seeds[0]
	for i := 0; i < 600; i++ {
		donor := seeds[r.Intn(len(seeds))]
		cand := m.mutate(parent, donor)
		if len(cand.Steps) == 0 {
			t.Fatal("empty mutation product")
		}
		if !validLifecycle(cand) {
			t.Fatalf("mutation %d: lifecycle-invalid product:\n%s", i, cand.Render())
		}
		checkProcessInvariants(t, cand)
		// Concrete-syntax round trip: a corpus entry must persist and
		// reload without loss.
		rt, err := trace.ParseScript(cand.Render())
		if err != nil {
			t.Fatalf("mutation %d: unparseable product: %v\n%s", i, err, cand.Render())
		}
		if rt.Render() != cand.Render() {
			t.Fatalf("mutation %d: render round-trip unstable:\n%s", i, cand.Render())
		}
		// Walk the corpus like the scheduler would: mutate the mutant
		// sometimes, hop to a fresh seed otherwise.
		if r.Intn(3) == 0 {
			parent = seeds[r.Intn(len(seeds))]
		} else {
			parent = cand
		}
	}
}

// TestConcurrentSessionCleanOnConformingTarget runs a short deterministic
// concurrent-mode session against the conforming Linux memfs: mutated
// multi-process scripts interleave under the seeded scheduler, and none
// may produce a deviation or crash.
func TestConcurrentSessionCleanOnConformingTarget(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Name:       "conc-smoke",
		Factory:    fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
		Spec:       types.DefaultSpec(),
		Seed:       5,
		Workers:    1,
		MaxRuns:    150,
		MaxSteps:   25,
		Concurrent: true,
		Seeds:      testgen.ConcurrentScripts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes > 0 {
		t.Fatalf("%d crashes in concurrent session", res.Crashes)
	}
	for _, f := range res.Findings {
		t.Errorf("deviation on conforming target: %s\n%s", f.Name, checker.RenderChecked(f.Trace, f.Result))
	}
	if res.Runs < 150 {
		t.Errorf("only %d runs completed", res.Runs)
	}
}
