package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create: second lookup returned a new handle")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 4 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax = %d, want 9", got)
	}
}

// TestCounterConcurrentExact: counters must be exact under contention, not
// merely racy approximations — run with -race.
func TestCounterConcurrentExact(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix hoisted and by-name access: both must hit the same cell.
			c := r.Counter("hot")
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					r.Counter("hot").Inc()
				}
				r.Histogram("lat").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hot").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramBuckets(t *testing.T) {
	// Bounds are 1µs·2^i; values land in the first bucket whose bound they
	// do not exceed.
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0},
		{1000, 0},                     // exactly the first bound
		{1001, 1},                     // just past it
		{2000, 1},                     // second bound
		{2001, 2},                     // just past
		{1000 << 27, histBuckets - 1}, // last finite bound
		{1000<<27 + 1, histBuckets},   // overflow
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	h := &Histogram{}
	h.Observe(-5) // clamps to 0
	if got := h.Max(); got != 0 {
		t.Fatalf("negative observation raised max to %d", got)
	}
	h.Observe(1500)
	if got, want := h.Count(), int64(2); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), int64(1500); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if got, want := h.Max(), int64(1500); got != want {
		t.Fatalf("max = %d, want %d", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 100 observations spread across two buckets: 50 at ~1.5µs (bucket 1),
	// 50 at ~3µs (bucket 2).
	for i := 0; i < 50; i++ {
		h.Observe(1500)
		h.Observe(3000)
	}
	p25, p75 := h.Quantile(0.25), h.Quantile(0.75)
	// p25 must interpolate inside (1000, 2000], p75 inside (2000, 4000] —
	// but the upper edge is tightened to the observed max (3000).
	if p25 <= 1000 || p25 > 2000 {
		t.Errorf("p25 = %d, want in (1000, 2000]", p25)
	}
	if p75 <= 2000 || p75 > 3000 {
		t.Errorf("p75 = %d, want in (2000, 3000]", p75)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantile not monotone at the extremes")
	}
	if got, want := h.Quantile(1), h.Max(); got > want {
		t.Errorf("p100 = %d exceeds max %d", got, want)
	}
	// Overflow bucket reports the observed maximum exactly.
	o := &Histogram{}
	huge := int64(1000<<27) * 3
	o.Observe(huge)
	if got := o.Quantile(0.99); got != huge {
		t.Errorf("overflow p99 = %d, want max %d", got, huge)
	}
}

func TestRegistryIsolationAndReset(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(5)
	if got := b.Counter("x").Value(); got != 0 {
		t.Fatalf("registry b saw registry a's counter: %d", got)
	}
	a.Gauge("g").Set(3)
	a.Histogram("h").Observe(100)
	a.Reset()
	if a.Counter("x").Value() != 0 || a.Gauge("g").Value() != 0 || a.Histogram("h").Count() != 0 {
		t.Fatal("Reset left nonzero metrics")
	}
	// Handles created before Reset stay live.
	a.Counter("x").Inc()
	if got := a.Counter("x").Value(); got != 1 {
		t.Fatalf("post-Reset counter = %d, want 1", got)
	}
}

func TestFuncSnapshot(t *testing.T) {
	r := NewRegistry()
	v := int64(10)
	r.Func("engine.total", func() int64 { return v })
	if got := r.Snapshot().Gauges["engine.total"]; got != 10 {
		t.Fatalf("func gauge = %d, want 10", got)
	}
	v = 20
	if got := r.Snapshot().Gauges["engine.total"]; got != 20 {
		t.Fatalf("func gauge = %d, want live 20", got)
	}
	r.Reset()
	if got := r.Snapshot().Gauges["engine.total"]; got != 20 {
		t.Fatalf("Reset zeroed a Func readout: %d", got)
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	var events []SpanEvent
	r.OnSpanEnd(func(e SpanEvent) { events = append(events, e) })

	root := r.Span("run")
	child := root.Child("check")
	if got, want := child.Path(), "run/check"; got != want {
		t.Fatalf("child path = %q, want %q", got, want)
	}
	child.End()
	root.End()

	if r.Histogram("span.run/check").Count() != 1 || r.Histogram("span.run").Count() != 1 {
		t.Fatal("span durations not recorded as histograms")
	}
	if len(events) != 2 || events[0].Path != "run/check" || events[1].Path != "run" {
		t.Fatalf("span events = %+v", events)
	}

	// Context plumbing: StartSpan nests under the context's span.
	ctx, outer := StartSpan(context.Background(), r, "outer")
	_, inner := StartSpan(ctx, r, "inner")
	if got, want := inner.Path(), "outer/inner"; got != want {
		t.Fatalf("ctx-nested path = %q, want %q", got, want)
	}
	inner.End()
	outer.End()

	// Nil spans are always-off, never panic.
	var nilSpan *Span
	nilSpan.Child("x").End()
	if nilSpan.Path() != "" {
		t.Fatal("nil span path")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.jobs").Add(3)
	r.Histogram("pipeline.job_ns").Observe(5000)
	var buf strings.Builder
	if err := r.WriteJSON(&buf, Header{Tool: "test-tool", Version: "v1.2.3"}); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &snap); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if snap.Tool != "test-tool" || snap.Version != "v1.2.3" {
		t.Fatalf("header = %q/%q", snap.Tool, snap.Version)
	}
	if snap.Counters["pipeline.jobs"] != 3 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	h := snap.Hists["pipeline.job_ns"]
	if h.Count != 1 || h.Sum != 5000 || h.Max != 5000 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
	if len(h.Buckets) != 1 || h.Buckets[0].Le != 8000 || h.Buckets[0].Count != 1 {
		t.Fatalf("buckets = %+v", h.Buckets)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("checker.traces").Add(7)
	r.Gauge("fuzz.corpus_size").Set(4)
	h := r.Histogram("journal.append_ns")
	h.Observe(1500)
	h.Observe(3000)
	h.Observe(int64(1000<<27) * 2) // overflow
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sfs_checker_traces counter\nsfs_checker_traces 7\n",
		"# TYPE sfs_fuzz_corpus_size gauge\nsfs_fuzz_corpus_size 4\n",
		"# TYPE sfs_journal_append_ns histogram\n",
		`sfs_journal_append_ns_bucket{le="2000"} 1`,
		`sfs_journal_append_ns_bucket{le="4000"} 2`, // cumulative
		`sfs_journal_append_ns_bucket{le="+Inf"} 3`, // overflow folded in
		"sfs_journal_append_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	srv, err := ServeDebug("127.0.0.1:0", r, Header{Tool: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	if out := get("/metrics"); !strings.Contains(out, "sfs_c 1") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/stats.json"); !strings.Contains(out, `"tool": "t"`) {
		t.Errorf("/stats.json missing header:\n%s", out)
	}
	get("/debug/pprof/")
	get("/debug/vars")
}

func TestOr(t *testing.T) {
	if Or(nil) != Default {
		t.Fatal("Or(nil) != Default")
	}
	r := NewRegistry()
	if Or(r) != r {
		t.Fatal("Or(r) != r")
	}
}

func TestObserveSince(t *testing.T) {
	h := &Histogram{}
	h.ObserveSince(time.Now().Add(-2 * time.Millisecond))
	if h.Count() != 1 || h.Max() < int64(time.Millisecond) {
		t.Fatalf("ObserveSince recorded count=%d max=%d", h.Count(), h.Max())
	}
}
