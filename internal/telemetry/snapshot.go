package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// Header identifies the producing tool in a serialized snapshot; CLIs
// fill it from cliutil.Version.
type Header struct {
	Tool    string `json:"tool,omitempty"`
	Version string `json:"version,omitempty"`
}

// Snapshot is a point-in-time, JSON-marshalable view of a registry. It is
// the standing machine-readable stats format: sfs-run -stats-json and
// sfs-report emit it, BENCH_*.json evidence embeds it, and /stats.json
// serves it live.
type Snapshot struct {
	Tool      string    `json:"tool,omitempty"`
	Version   string    `json:"version,omitempty"`
	GoVersion string    `json:"go_version"`
	Time      time.Time `json:"time"`
	// UptimeSec is the registry's age — for the Default registry,
	// effectively the process uptime.
	UptimeSec float64 `json:"uptime_sec"`

	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"histograms,omitempty"`
}

// HistSnapshot is one histogram's serialized form. All values are in the
// histogram's native unit — nanoseconds for every duration histogram the
// stack records.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	// Buckets lists the non-empty buckets as (inclusive upper bound,
	// non-cumulative count) pairs; the overflow bucket has Le = -1.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Snapshot captures the registry's current figures. Registered Funcs are
// evaluated and reported as gauges; empty metrics are included (a zero
// counter is information), torn in-flight observations are tolerated.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		GoVersion: runtime.Version(),
		Time:      time.Now(),
		UptimeSec: time.Since(r.created).Seconds(),
		Counters:  make(map[string]int64),
		Gauges:    make(map[string]int64),
		Hists:     make(map[string]HistSnapshot),
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.RUnlock()

	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, fn := range funcs {
		snap.Gauges[name] = fn()
	}
	for name, h := range hists {
		snap.Hists[name] = snapshotHist(h)
	}
	return snap
}

func snapshotHist(h *Histogram) HistSnapshot {
	hs := HistSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i <= histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(-1)
		if i < histBuckets {
			le = histBound(i)
		}
		hs.Buckets = append(hs.Buckets, BucketCount{Le: le, Count: n})
	}
	return hs
}

// WriteJSON writes the registry's snapshot to w as indented JSON, stamped
// with the header.
func (r *Registry) WriteJSON(w io.Writer, h Header) error {
	snap := r.Snapshot()
	snap.Tool, snap.Version = h.Tool, h.Version
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (a hand-rolled writer — the package stays dependency-free).
// Metric names are prefixed "sfs_" and sanitized; duration histograms
// keep their nanosecond unit and carry a "_ns" suffix convention at the
// recording site, not here.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	for _, name := range sortedKeys(snap.Counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Hists) {
		hs := snap.Hists[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum int64
		for _, bc := range hs.Buckets {
			if bc.Le < 0 {
				continue // overflow: folded into +Inf below
			}
			cum += bc.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, bc.Le, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, hs.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", pn, hs.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", pn, hs.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName sanitizes a metric name for the Prometheus exposition format.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("sfs_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
