package telemetry

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of finite buckets; one overflow cell follows.
// Bounds are exponential: bucket i holds values ≤ 1µs·2^i (in nanoseconds
// for durations — the only unit the stack records today), spanning 1µs to
// ~134s, which covers everything from a single cache lookup to a full
// cold suite run.
const histBuckets = 28

// histBound returns the inclusive upper bound of finite bucket i.
func histBound(i int) int64 { return 1000 << uint(i) }

// Histogram is a fixed-bucket latency histogram: exponential bounds,
// atomic per-bucket counts, and percentile estimation by linear
// interpolation inside the landing bucket. Observations are lock-free;
// snapshots are only weakly consistent (count/sum/buckets may be torn by
// a few in-flight observations), which is fine for telemetry.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets + 1]atomic.Int64
}

// Observe records one value (nanoseconds, for durations).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveSince records the duration elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// bucketOf locates v's bucket by binary search over the exponential
// bounds (equivalently: the bit length of v/1000).
func bucketOf(v int64) int {
	lo, hi := 0, histBuckets
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= histBound(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // histBuckets = overflow
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the target rank and interpolating linearly between its bounds.
// The overflow bucket reports the observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i == histBuckets {
				return h.max.Load()
			}
			lower := int64(0)
			if i > 0 {
				lower = histBound(i - 1)
			}
			upper := histBound(i)
			if m := h.max.Load(); upper > m {
				// No observation exceeded max; tighten the bucket.
				upper = m
			}
			if upper < lower {
				return lower
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + int64(frac*float64(upper-lower))
		}
		cum += n
	}
	return h.max.Load()
}

// reset zeroes the histogram (Registry.Reset).
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}
