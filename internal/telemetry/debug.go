package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// DebugServer is the -debug-addr HTTP endpoint: live /metrics (Prometheus
// text), /stats.json (Snapshot JSON), /debug/vars (expvar) and
// /debug/pprof/* (CPU, heap, goroutine, block profiles) for the registry
// it serves.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// expvarOnce guards the process-global expvar publication: expvar.Publish
// panics on duplicate names, and a process may open several debug servers
// over its lifetime (tests do).
var expvarOnce sync.Once

// ServeDebug starts the debug HTTP server on addr (e.g. "localhost:6060";
// ":0" picks a free port — read it back with Addr). The server runs until
// Close; handler errors never affect the instrumented run.
func ServeDebug(addr string, reg *Registry, h Header) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	expvarOnce.Do(func() {
		// Also visible under /debug/vars, next to memstats and cmdline.
		// First server wins the slot; later registries are still fully
		// served by their own /stats.json.
		expvar.Publish("sfs_telemetry", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "%s debug endpoint\n\n/metrics\n/stats.json\n/debug/vars\n/debug/pprof/\n", h.Tool)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w, h)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go ds.srv.Serve(ln)
	return ds, nil
}

// Addr returns the server's bound address (resolves ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }
