// Package telemetry is the dependency-free observability layer under the
// whole checking stack: atomic counters and gauges, fixed-bucket latency
// histograms with percentile estimation, lightweight nested spans, and a
// Registry tying them together with machine-readable snapshots
// (Snapshot/WriteJSON), a hand-rolled Prometheus text exposition
// (WritePrometheus) and a -debug-addr HTTP server (ServeDebug: /metrics,
// /stats.json, expvar, net/http/pprof).
//
// Ownership follows the Session model from internal/cov: the package-level
// Default registry backs legacy paths and single-session CLIs, while a
// library embedding several sessions gives each its own registry
// (sibylfs.WithTelemetry) and their figures never bleed. Engine-global
// readouts that cannot be attributed per session (state-engine clone and
// hash counts) register themselves on Default as Funcs and are documented
// as process-wide.
//
// Telemetry is always on and must stay effectively free: counters are
// single atomic adds, histograms three atomic adds and a bounds walk, and
// nothing here may ever alter checked-trace output — the golden parity
// tests pin that enabling an isolated registry leaves finalized JSONL
// byte-identical.
package telemetry
