package telemetry

import (
	"context"
	"time"
)

// Span is a lightweight timing scope. Spans nest: a child's path is
// "parent/child", and ending a span records its duration into the
// registry's "span.<path>" histogram and streams a SpanEvent to the
// registry's OnSpanEnd observer (the seam TUI-style progress hangs off).
// Spans are not retained individually — a million per run cost a million
// histogram observations, nothing more.
//
// All methods are nil-safe: a nil *Span is an always-off span, so call
// sites never need their own guards.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
}

// SpanEvent describes one ended span.
type SpanEvent struct {
	// Path is the slash-joined nesting path ("session.run/execute").
	Path     string
	Start    time.Time
	Duration time.Duration
}

// Span starts a new root span.
func (r *Registry) Span(name string) *Span {
	return &Span{reg: r, path: name, start: time.Now()}
}

// OnSpanEnd installs fn as the registry's span-event observer (nil
// removes it). fn is called synchronously from End and must be fast and
// must not call back into span creation on the same goroutine chain it
// observes.
func (r *Registry) OnSpanEnd(fn func(SpanEvent)) {
	r.spanMu.Lock()
	r.onSpan = fn
	r.spanMu.Unlock()
}

func (r *Registry) spanObserver() func(SpanEvent) {
	r.spanMu.RLock()
	fn := r.onSpan
	r.spanMu.RUnlock()
	return fn
}

// Child starts a nested span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, path: s.path + "/" + name, start: time.Now()}
}

// End finishes the span, recording its duration. Safe to call once.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.Histogram("span." + s.path).Observe(int64(d))
	if fn := s.reg.spanObserver(); fn != nil {
		fn(SpanEvent{Path: s.path, Start: s.start, Duration: d})
	}
	return d
}

// Path returns the span's nesting path ("" for nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s, so layers below can nest under
// it without threading *Span parameters through every signature.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan starts a span named name in r, nested under ctx's span when
// one is present (the child records into r regardless of which registry
// the parent belonged to). The returned context carries the new span.
func StartSpan(ctx context.Context, r *Registry, name string) (context.Context, *Span) {
	var s *Span
	if parent := SpanFromContext(ctx); parent != nil {
		s = &Span{reg: r, path: parent.path + "/" + name, start: time.Now()}
	} else {
		s = r.Span(name)
	}
	return ContextWithSpan(ctx, s), s
}
