package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (corpus size, live workers, ...).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is greater (a high-water mark).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry owns a named set of counters, gauges, histograms and span
// streams. Metric handles are created on first use and live for the
// registry's lifetime; Counter/Gauge/Histogram are cheap enough to call on
// hot paths, but hot loops should still hoist the handle out.
//
// The package-level Default registry backs every path not configured with
// an explicit registry. Isolated registries (one per sibylfs.Session) never
// see each other's figures; Funcs registered on Default that read
// process-global engine counters are the documented exception.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64

	spanMu sync.RWMutex
	onSpan func(SpanEvent)

	created time.Time
}

// Default is the process-wide registry: legacy call paths and
// single-session CLIs record here.
var Default = NewRegistry()

// NewRegistry returns a fresh, isolated registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
		created:  time.Now(),
	}
}

// Or returns r, or Default when r is nil — the resolution every
// instrumented layer applies to its optional registry configuration.
func Or(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return Default
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Func registers a named external readout, snapshotted as a gauge. Used
// for process-global engine counters (state-engine clones, hash computes)
// that cannot be attributed to one registry; registering the same name
// again replaces the previous readout.
func (r *Registry) Func(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Reset zeroes every counter, gauge and histogram (registered Funcs read
// live state and are untouched). Tests and long-lived daemons use it; the
// handles stay valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// sortedKeys returns m's keys in sorted order (deterministic snapshots).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
