package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	sibylfs "repro"
	"repro/internal/cliutil"
	"repro/internal/serveapi"
	"repro/internal/telemetry"
)

// inlineScripts builds n small script texts — the inline-suite form a
// JobSpec carries over the wire.
func inlineScripts(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf(`@type script
# Test serve___job_%03d
mkdir "d%d" 0o755
open "d%d/f" [O_CREAT;O_WRONLY] 0o644
stat "d%d/f"
rename "d%d" "e%d"
unlink "e%d/f"
rmdir "e%d"
`, i, i, i, i, i, i, i, i))
	}
	return out
}

// localJournal runs the same inline suite through a plain local Session
// — the reference sfs-run would produce — and returns the finalized
// journal bytes.
func localJournal(t *testing.T, name string, texts []string, workers int) []byte {
	t.Helper()
	pl, ok := sibylfs.ParsePlatformName("linux")
	if !ok {
		t.Fatal("linux platform missing")
	}
	spec := sibylfs.SpecFor(pl)
	spec.Permissions = true
	var scripts []*sibylfs.Script
	for i, text := range texts {
		sc, err := sibylfs.ParseScript(text)
		if err != nil {
			t.Fatalf("scripts[%d]: %v", i, err)
		}
		scripts = append(scripts, sc)
	}
	fs, ok := cliutil.PickFS("ext4")
	if !ok {
		t.Fatal("ext4 profile missing")
	}
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	session := sibylfs.New(
		sibylfs.WithSpec(spec),
		sibylfs.WithWorkers(workers),
		sibylfs.WithJournal(journal),
		sibylfs.WithTelemetry(telemetry.NewRegistry()),
	)
	_, _, err := session.Run(context.Background(), sibylfs.RunJob{
		Name:    name,
		Scripts: scripts,
		Factory: fs.Factory,
		FSName:  "ext4",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t *testing.T, dataDir string, jobs, workers int) (*Server, *serveapi.Client, func()) {
	t.Helper()
	srv, err := New(Options{
		DataDir: dataDir,
		Jobs:    jobs,
		Workers: workers,
		Tel:     telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	stop := func() {
		hs.Close()
		srv.Close()
	}
	return srv, serveapi.NewClient(hs.URL), stop
}

// TestServeParityColdWarm pins end-to-end service parity: a suite
// submitted to the daemon finalizes byte-identical to a local sfs-run
// of the same suite — cold, and again warm from the shared store with
// zero executions.
func TestServeParityColdWarm(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	texts := inlineScripts(12)
	want := localJournal(t, "parity", texts, 2)

	_, client, stop := newTestServer(t, t.TempDir(), 1, 2)
	defer stop()

	spec := serveapi.JobSpec{Name: "parity", FS: "ext4", Scripts: texts, Workers: 2}
	st, err := client.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := client.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cold.State != serveapi.StateDone {
		t.Fatalf("cold job state = %s (%s)", cold.State, cold.Error)
	}
	if cold.Executed != len(texts) || cold.CacheHits != 0 {
		t.Fatalf("cold split: executed %d, hits %d, want %d/0", cold.Executed, cold.CacheHits, len(texts))
	}
	got, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cold serve result differs from local run (%d vs %d bytes)", len(got), len(want))
	}

	// Warm resubmission: everything is served from the shared store.
	st2, err := client.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := client.Wait(ctx, st2.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != serveapi.StateDone {
		t.Fatalf("warm job state = %s (%s)", warm.State, warm.Error)
	}
	if warm.Executed != 0 || warm.CacheHits != len(texts) {
		t.Fatalf("warm split: executed %d, hits %d, want 0/%d", warm.Executed, warm.CacheHits, len(texts))
	}
	got2, err := client.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatal("warm serve result differs from local run")
	}
}

// TestServeRecordsStream pins the live NDJSON stream: a subscriber that
// attaches while the job runs sees every record and returns when the
// job settles.
func TestServeRecordsStream(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	texts := inlineScripts(10)
	_, client, stop := newTestServer(t, t.TempDir(), 1, 1)
	defer stop()

	st, err := client.SubmitJob(ctx, serveapi.JobSpec{FS: "ext4", Scripts: texts})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	if err := client.Records(ctx, st.ID, func(_ sibylfs.PipelineRecord) { seen++ }); err != nil {
		t.Fatal(err)
	}
	if seen != len(texts) {
		t.Fatalf("streamed %d records, want %d", seen, len(texts))
	}
	final, err := client.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serveapi.StateDone || final.Records != len(texts) {
		t.Fatalf("final status: %s with %d records", final.State, final.Records)
	}
}

// TestServeRestartResume pins the crash-recovery contract. The on-disk
// state of a daemon killed mid-job is fabricated directly — a job
// directory holding the spec, a non-terminal status, and a journal
// covering a prefix of the suite — so the test is deterministic no
// matter how fast the suite runs. A daemon started on that data
// directory must re-enqueue the job, skip every journaled trace, and
// finalize byte-identical to a local run of the whole suite.
func TestServeRestartResume(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	texts := inlineScripts(160)
	const prefix = 40
	dataDir := t.TempDir()

	spec := serveapi.JobSpec{Name: "resume", FS: "ext4", Scripts: texts, Workers: 1}
	id := "000000000001-0001"
	jobDir := filepath.Join(dataDir, "jobs", id)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	specData, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, "job.json"), specData, 0o644); err != nil {
		t.Fatal(err)
	}
	running := serveapi.JobStatus{ID: id, Name: "resume", State: serveapi.StateRunning, Records: prefix}
	statusData, err := json.Marshal(running)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, "status.json"), statusData, 0o644); err != nil {
		t.Fatal(err)
	}
	// The journal a killed daemon left behind: the first `prefix` traces,
	// completed and durably journaled.
	partial := localJournal(t, "resume", texts[:prefix], 1)
	if err := os.WriteFile(filepath.Join(jobDir, "run.jsonl"), partial, 0o644); err != nil {
		t.Fatal(err)
	}

	_, client, stop := newTestServer(t, dataDir, 1, 1)
	defer stop()
	final, err := client.Wait(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serveapi.StateDone {
		t.Fatalf("resumed job state = %s (%s)", final.State, final.Error)
	}
	if final.Resumed != prefix {
		t.Fatalf("resume skipped %d traces, want the %d journaled ones", final.Resumed, prefix)
	}
	if final.Executed != len(texts)-prefix {
		t.Fatalf("resumed job executed %d traces, want %d", final.Executed, len(texts)-prefix)
	}
	got, err := client.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	want := localJournal(t, "resume", texts, 1)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from local run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestServeCloseMidJobRequeues pins the shutdown path end to end: a
// daemon Closed with a job in flight leaves it non-terminal on disk (a
// shutdown is not a cancel), and the next daemon life finishes it with
// the full, byte-identical result.
func TestServeCloseMidJobRequeues(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	texts := inlineScripts(200)
	dataDir := t.TempDir()

	_, client, stop := newTestServer(t, dataDir, 1, 1)
	st, err := client.SubmitJob(ctx, serveapi.JobSpec{Name: "requeue", FS: "ext4", Scripts: texts, Workers: 1})
	if err != nil {
		stop()
		t.Fatal(err)
	}
	stop() // drain immediately: the job is queued or mid-run, never cancelled

	_, client2, stop2 := newTestServer(t, dataDir, 1, 1)
	defer stop2()
	final, err := client2.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serveapi.StateDone {
		t.Fatalf("requeued job state = %s (%s)", final.State, final.Error)
	}
	got, err := client2.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := localJournal(t, "requeue", texts, 1)
	if !bytes.Equal(got, want) {
		t.Fatalf("requeued result differs from local run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestServeCancel pins API cancellation: a cancelled job settles
// terminally and a daemon restart does NOT resurrect it.
func TestServeCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	texts := inlineScripts(160)
	dataDir := t.TempDir()

	_, client, stop := newTestServer(t, dataDir, 1, 1)
	st, err := client.SubmitJob(ctx, serveapi.JobSpec{FS: "ext4", Scripts: texts, Workers: 1})
	if err != nil {
		stop()
		t.Fatal(err)
	}
	if err := client.Cancel(ctx, st.ID); err != nil {
		stop()
		t.Fatal(err)
	}
	final, err := client.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		stop()
		t.Fatal(err)
	}
	if final.State != serveapi.StateCancelled && final.State != serveapi.StateDone {
		stop()
		t.Fatalf("state after cancel = %s", final.State)
	}
	stop()

	srv2, err := New(Options{DataDir: dataDir, Jobs: 1, Tel: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	j, ok := srv2.job(st.ID)
	if !ok {
		t.Fatal("restarted daemon forgot the job")
	}
	if !j.terminal() {
		t.Fatalf("terminal job resurrected as %q", j.status().State)
	}
}

// TestSubmitValidation pins the rejection surface: bad specs never
// reach a queue.
func TestSubmitValidation(t *testing.T) {
	srv, err := New(Options{DataDir: t.TempDir(), Jobs: 1, Tel: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, tc := range []struct {
		name string
		spec serveapi.JobSpec
	}{
		{"empty fs", serveapi.JobSpec{}},
		{"host jailed", serveapi.JobSpec{FS: "host"}},
		{"bad universe", serveapi.JobSpec{FS: "ext4", Universe: "galactic"}},
		{"bad platform", serveapi.JobSpec{FS: "ext4", Platform: "plan9"}},
		{"bad script", serveapi.JobSpec{FS: "ext4", Scripts: []string{"not a script"}}},
	} {
		if _, err := srv.Submit(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestSchedulerSteal pins the work-stealing discipline: an idle worker
// drains its own deque front-first, then steals from the back of the
// longest other deque.
func TestSchedulerSteal(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc := newSched(2, reg)
	mk := func(id string) *job { return newJob(id, serveapi.JobSpec{}, "") }
	j1, j2, j3, j4 := mk("1"), mk("2"), mk("3"), mk("4")
	// Round-robin lands these as q0=[j1,j3], q1=[j2,j4].
	for _, j := range []*job{j1, j2, j3, j4} {
		sc.push(j)
	}
	if g, _ := sc.pop(0); g != j1 {
		t.Fatalf("pop(0) = %s, want own-front j1", g.id)
	}
	if g, _ := sc.pop(0); g != j3 {
		t.Fatalf("pop(0) = %s, want own-front j3", g.id)
	}
	if g, _ := sc.pop(0); g != j4 {
		t.Fatalf("pop(0) = %s, want steal from the BACK of q1 (j4)", g.id)
	}
	if n := reg.Counter("serve.steals").Value(); n != 1 {
		t.Fatalf("steals = %d, want 1", n)
	}
	if g, _ := sc.pop(1); g != j2 {
		t.Fatalf("pop(1) = %s, want j2", g.id)
	}
	sc.close()
	if _, ok := sc.pop(0); ok {
		t.Fatal("pop after close must report no work")
	}
}
