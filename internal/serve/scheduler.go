package serve

import (
	"sync"

	"repro/internal/telemetry"
)

// sched is the daemon's work-stealing job scheduler: one deque per
// worker, round-robin submission, and idle workers stealing from the
// back of the longest other deque. Jobs are coarse units (whole
// suites), so a single mutex over all deques costs nothing while
// keeping the stealing decision — which queue is longest — exact.
type sched struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]*job
	next   int // round-robin submission target
	closed bool
	tel    *telemetry.Registry
}

func newSched(workers int, tel *telemetry.Registry) *sched {
	sc := &sched{queues: make([][]*job, workers), tel: tel}
	sc.cond = sync.NewCond(&sc.mu)
	return sc
}

// push enqueues j on the next deque round-robin and wakes a worker.
func (sc *sched) push(j *job) {
	sc.mu.Lock()
	sc.queues[sc.next] = append(sc.queues[sc.next], j)
	sc.next = (sc.next + 1) % len(sc.queues)
	sc.tel.Gauge("serve.queue_depth").Set(int64(sc.depthLocked()))
	sc.mu.Unlock()
	sc.cond.Broadcast()
}

// pop blocks until a job is available for worker (its own deque's
// front first, then a steal from the back of the longest other deque)
// or the scheduler closes; ok is false on close.
func (sc *sched) pop(worker int) (*job, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for {
		if j, ok := sc.takeLocked(worker); ok {
			sc.tel.Gauge("serve.queue_depth").Set(int64(sc.depthLocked()))
			return j, true
		}
		if sc.closed {
			return nil, false
		}
		sc.cond.Wait()
	}
}

func (sc *sched) takeLocked(worker int) (*job, bool) {
	if q := sc.queues[worker]; len(q) > 0 {
		j := q[0]
		sc.queues[worker] = q[1:]
		return j, true
	}
	victim, best := -1, 0
	for i, q := range sc.queues {
		if i != worker && len(q) > best {
			victim, best = i, len(q)
		}
	}
	if victim < 0 {
		return nil, false
	}
	q := sc.queues[victim]
	j := q[len(q)-1]
	sc.queues[victim] = q[:len(q)-1]
	sc.tel.Counter("serve.steals").Inc()
	return j, true
}

func (sc *sched) depthLocked() int {
	n := 0
	for _, q := range sc.queues {
		n += len(q)
	}
	return n
}

// close wakes every blocked worker with "no more work".
func (sc *sched) close() {
	sc.mu.Lock()
	sc.closed = true
	sc.mu.Unlock()
	sc.cond.Broadcast()
}
