package serve

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/serveapi"
	"repro/internal/telemetry"
)

// job is one submitted suite run. Everything mutable is guarded by mu;
// cond broadcasts on every record append and state change, which is
// what the NDJSON streaming handler blocks on.
type job struct {
	id   string
	spec serveapi.JobSpec
	dir  string

	mu   sync.Mutex
	cond *sync.Cond

	state   string
	errMsg  string
	scripts int
	recs    []pipeline.Record
	stats   pipeline.Stats
	elapsed time.Duration

	// cancelled distinguishes an API cancel (terminal) from a daemon
	// shutdown (job stays queued on disk and resumes on restart).
	cancelled bool
	cancel    context.CancelFunc // non-nil while running

	// tel is the job's isolated telemetry registry (per-tenant metrics,
	// served at /v1/jobs/{id}/stats); set when the job starts running.
	tel *telemetry.Registry
}

func newJob(id string, spec serveapi.JobSpec, dir string) *job {
	j := &job{id: id, spec: spec, dir: dir, state: serveapi.StateQueued}
	j.cond = sync.NewCond(&j.mu)
	return j
}

func (j *job) journalPath() string { return filepath.Join(j.dir, "run.jsonl") }
func (j *job) specPath() string    { return filepath.Join(j.dir, "job.json") }
func (j *job) statusPath() string  { return filepath.Join(j.dir, "status.json") }

// status snapshots the externally visible state.
func (j *job) status() serveapi.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *job) statusLocked() serveapi.JobStatus {
	return serveapi.JobStatus{
		ID:        j.id,
		Name:      j.spec.Name,
		State:     j.state,
		Error:     j.errMsg,
		Scripts:   j.scripts,
		Records:   len(j.recs),
		Jobs:      j.stats.Jobs,
		Executed:  j.stats.Executed,
		CacheHits: j.stats.CacheHits,
		Resumed:   j.stats.SinkSkipped,
		Rejected:  j.stats.Rejected,
		ElapsedMS: j.elapsed.Milliseconds(),
	}
}

// observe is the job's WithObserver hook: records arrive in completion
// order — cache hits and journal resumes included — and every append
// wakes the streaming handlers.
func (j *job) observe(rec pipeline.Record) {
	j.mu.Lock()
	j.recs = append(j.recs, rec)
	j.mu.Unlock()
	j.cond.Broadcast()
}

// setState transitions the job and persists the new status; terminal
// transitions are what a restarted daemon reads to decide what to
// resume (non-terminal states on disk mean "re-enqueue me").
func (j *job) setState(state, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	if state != serveapi.StateRunning {
		j.cancel = nil
	}
	st := j.statusLocked()
	j.mu.Unlock()
	j.persistStatus(st)
	j.cond.Broadcast()
}

// persistStatus writes the status snapshot beside the journal. A torn
// write parses as garbage, which recovery treats as non-terminal — the
// job is re-enqueued, and resume makes that cheap.
func (j *job) persistStatus(st serveapi.JobStatus) {
	data, err := json.Marshal(st)
	if err != nil {
		return
	}
	_ = os.WriteFile(j.statusPath(), append(data, '\n'), 0o644)
}

// requestCancel flags an API cancel and cancels the run context (a
// queued job settles immediately; a running one drains cooperatively).
func (j *job) requestCancel() {
	j.mu.Lock()
	j.cancelled = true
	cancel := j.cancel
	queued := j.state == serveapi.StateQueued
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if queued {
		j.setState(serveapi.StateCancelled, "")
	}
}

func (j *job) wasCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// terminal reports whether the job has settled.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return serveapi.TerminalState(j.state)
}
