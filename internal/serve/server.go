// Package serve is the check-as-a-service daemon behind cmd/sfs-serve:
// an HTTP front end (JSON + NDJSON streaming, stdlib only) over the
// Session facade. Clients submit suite specs as jobs; a work-stealing
// scheduler fans the jobs across worker goroutines, each driving an
// isolated Session with a per-job resumable journal under the data
// directory; and the daemon's content-addressed result store is
// exported over /v1/store so a fleet of sfs-run clients shares one
// warm cache. A killed daemon restarted on the same data directory
// re-enqueues its unfinished jobs and resumes them from their
// journals without re-executing completed traces.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	sibylfs "repro"
	"repro/internal/cliutil"
	"repro/internal/pipeline"
	"repro/internal/serveapi"
	"repro/internal/telemetry"
)

// Options configure a Server.
type Options struct {
	// DataDir is the daemon's root: the shared result store lives under
	// DataDir/cache, per-job state and journals under DataDir/jobs/<id>.
	// Required.
	DataDir string
	// Jobs is how many jobs run concurrently — the scheduler's worker
	// count (default 2).
	Jobs int
	// Workers bounds each job's pipeline worker pool (default:
	// GOMAXPROCS split evenly across the job slots, at least 1). A
	// job spec's Workers field overrides it per job.
	Workers int
	// Log receives progress lines (job transitions); nil is silent.
	Log io.Writer
	// Tel receives the daemon's serve.* metrics (nil = telemetry.Default,
	// which is what -debug-addr serves).
	Tel *telemetry.Registry
}

// Server is the daemon: construct with New, mount Handler on an
// http.Server, Close to drain. Safe for concurrent use.
type Server struct {
	opts  Options
	tel   *telemetry.Registry
	store pipeline.Store
	mux   *http.ServeMux
	sched *sched

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	seq    int
	closed bool
}

// New opens (creating if needed) the data directory, recovers
// unfinished jobs from a previous life, and starts the job workers.
func New(opts Options) (*Server, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("serve: DataDir is required")
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 2
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0) / opts.Jobs
		if opts.Workers < 1 {
			opts.Workers = 1
		}
	}
	if err := os.MkdirAll(filepath.Join(opts.DataDir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	store, err := pipeline.OpenPackStore(filepath.Join(opts.DataDir, "cache"))
	if err != nil {
		return nil, err
	}
	tel := telemetry.Or(opts.Tel)
	s := &Server{
		opts:  opts,
		tel:   tel,
		store: store,
		sched: newSched(opts.Jobs, tel),
		jobs:  make(map[string]*job),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.buildMux()
	if err := s.recoverJobs(); err != nil {
		store.Close()
		return nil, err
	}
	for w := 0; w < opts.Jobs; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s, nil
}

// Store exposes the daemon's shared result store (tests use it to
// inspect the cache the /v1/store API serves).
func (s *Server) Store() pipeline.Store { return s.store }

// recoverJobs scans DataDir/jobs: terminal jobs are kept for status
// and record queries, anything else — queued or mid-run when the
// previous daemon died — is re-enqueued. Resume is journal-driven:
// the re-run session opens the job's journal WithResume and skips
// every completed trace.
func (s *Server) recoverJobs() error {
	dir := filepath.Join(s.opts.DataDir, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		jdir := filepath.Join(dir, id)
		specData, err := os.ReadFile(filepath.Join(jdir, "job.json"))
		if err != nil {
			continue // half-created submission: nothing to resume
		}
		var spec serveapi.JobSpec
		if json.Unmarshal(specData, &spec) != nil {
			continue
		}
		j := newJob(id, spec, jdir)
		var st serveapi.JobStatus
		if data, err := os.ReadFile(j.statusPath()); err == nil && json.Unmarshal(data, &st) == nil {
			if serveapi.TerminalState(st.State) {
				j.state = st.State
				j.errMsg = st.Error
				j.scripts = st.Scripts
				j.stats = pipeline.Stats{
					Jobs:        st.Jobs,
					Executed:    st.Executed,
					CacheHits:   st.CacheHits,
					SinkSkipped: st.Resumed,
					Rejected:    st.Rejected,
				}
				j.elapsed = time.Duration(st.ElapsedMS) * time.Millisecond
			}
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		if !serveapi.TerminalState(j.state) {
			j.state = serveapi.StateQueued
			s.tel.Counter("serve.jobs_recovered").Inc()
			s.logf("serve: recovered job %s (%s), re-enqueued", id, spec.FS)
			s.sched.push(j)
		}
	}
	// Jobs were created with time-ordered IDs, so lexicographic order is
	// submission order across daemon lives.
	sortStrings(s.order)
	return nil
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for k := i; k > 0 && ss[k] < ss[k-1]; k-- {
			ss[k], ss[k-1] = ss[k-1], ss[k]
		}
	}
}

// Close drains the daemon: no new submissions, running jobs cancel
// cooperatively (their journals stay resumable and their on-disk state
// stays non-terminal, so the next daemon life picks them up), workers
// exit, and the shared store flushes durably.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.sched.close()
	s.cancel()
	s.wg.Wait()
	return s.store.Close()
}

// worker is one scheduler worker: pop (or steal) a job, run it to a
// settled state, repeat until close.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	for {
		j, ok := s.sched.pop(id)
		if !ok {
			return
		}
		if j.terminal() {
			continue // cancelled while queued
		}
		s.tel.Gauge("serve.active_jobs").Add(1)
		start := time.Now()
		s.runJob(j)
		s.tel.Histogram("serve.job_ns").ObserveSince(start)
		s.tel.Gauge("serve.active_jobs").Add(-1)
	}
}

// runPlan is a validated job spec, resolved to the things a Session
// needs. Building it has no side effects, so Submit uses it to reject
// bad specs at the door and the worker rebuilds it at run time.
type runPlan struct {
	fs       cliutil.FSChoice
	spec     sibylfs.Spec
	universe string
	name     string
	workers  int
	inline   []*sibylfs.Script
}

func (s *Server) plan(spec serveapi.JobSpec) (runPlan, error) {
	var p runPlan
	switch spec.Universe {
	case "", cliutil.UniverseSequential:
		p.universe = cliutil.UniverseSequential
	case cliutil.UniverseConcurrent, cliutil.UniverseCrash:
		p.universe = spec.Universe
	default:
		return p, fmt.Errorf("unknown universe %q (want sequential, concurrent or crash)", spec.Universe)
	}
	if spec.FS == "" {
		return p, fmt.Errorf("fs is required")
	}
	if spec.FS == "host" {
		return p, fmt.Errorf("fs \"host\" is not served: host runs are serial and jail the daemon's own process — run them locally with sfs-run")
	}
	if p.universe == cliutil.UniverseCrash {
		fs, err := cliutil.PickCrashFS(spec.FS)
		if err != nil {
			return p, err
		}
		p.fs = fs
	} else {
		fs, ok := cliutil.PickFS(spec.FS)
		if !ok {
			return p, fmt.Errorf("unknown fs %q", spec.FS)
		}
		p.fs = fs
	}
	platform := p.fs.Platform
	if spec.Platform != "" {
		pl, ok := sibylfs.ParsePlatformName(spec.Platform)
		if !ok {
			return p, fmt.Errorf("unknown platform %q", spec.Platform)
		}
		platform = pl
	}
	p.spec = sibylfs.SpecFor(platform)
	p.spec.Permissions = !spec.NoPerms
	p.spec.Crash = p.universe == cliutil.UniverseCrash
	for i, text := range spec.Scripts {
		sc, err := sibylfs.ParseScript(text)
		if err != nil {
			return p, fmt.Errorf("scripts[%d]: %v", i, err)
		}
		if sc.Name == "" {
			sc.Name = fmt.Sprintf("inline-%04d", i)
		}
		p.inline = append(p.inline, sc)
	}
	p.name = spec.Name
	if p.name == "" {
		p.name = fmt.Sprintf("%s vs %s", spec.FS, platform)
	}
	p.workers = s.opts.Workers
	if spec.Workers > 0 {
		p.workers = spec.Workers
	}
	return p, nil
}

// runJob drives one job through an isolated Session: its own telemetry
// registry (per-tenant metrics), its own resumable journal, the shared
// result store, and a cancellable context parented on the daemon's.
func (s *Server) runJob(j *job) {
	plan, err := s.plan(j.spec)
	if err != nil {
		s.finishJob(j, serveapi.StateFailed, err.Error())
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	j.mu.Lock()
	if serveapi.TerminalState(j.state) {
		j.mu.Unlock()
		return
	}
	j.state = serveapi.StateRunning
	j.cancel = cancel
	j.tel = telemetry.NewRegistry()
	tel := j.tel
	j.mu.Unlock()
	j.persistStatus(j.status())
	j.cond.Broadcast()
	s.logf("serve: job %s running: %s", j.id, plan.name)

	opts := []sibylfs.Option{
		sibylfs.WithSpec(plan.spec),
		sibylfs.WithWorkers(plan.workers),
		sibylfs.WithStore(s.store),
		sibylfs.WithJournal(j.journalPath()),
		sibylfs.WithResume(),
		sibylfs.WithTelemetry(tel),
		sibylfs.WithObserver(j.observe),
	}
	if j.spec.MaxStateSet > 0 {
		opts = append(opts, sibylfs.WithMaxStateSet(j.spec.MaxStateSet))
	}
	if j.spec.IsolateCoverage {
		opts = append(opts, sibylfs.WithCoverage(sibylfs.NewCoverageRegistry()))
	}
	session := sibylfs.New(opts...)

	start := time.Now()
	scripts := plan.inline
	if len(scripts) == 0 {
		scripts, err = cliutil.SessionScripts(ctx, session, "", plan.universe)
	}
	if err == nil {
		if n := j.spec.Sample; n > 1 {
			var sel []*sibylfs.Script
			for i := 0; i < len(scripts); i += n {
				sel = append(sel, scripts[i])
			}
			scripts = sel
		}
		j.mu.Lock()
		j.scripts = len(scripts)
		j.mu.Unlock()
		var stats sibylfs.PipelineStats
		_, stats, err = session.Run(ctx, sibylfs.RunJob{
			Name:       plan.name,
			Scripts:    scripts,
			Factory:    plan.fs.Factory,
			FSName:     j.spec.FS,
			Concurrent: plan.universe == cliutil.UniverseConcurrent,
			SchedSeed:  j.spec.SchedSeed,
		})
		j.mu.Lock()
		j.stats = stats
		j.elapsed = time.Since(start)
		j.mu.Unlock()
	}
	switch {
	case err == nil:
		s.finishJob(j, serveapi.StateDone, "")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if j.wasCancelled() {
			s.finishJob(j, serveapi.StateCancelled, "")
		} else {
			// Daemon shutdown mid-job: the journal holds every completed
			// record and the on-disk state goes back to queued, so the next
			// daemon life re-enqueues and resumes it.
			j.setState(serveapi.StateQueued, "")
			s.logf("serve: job %s interrupted by shutdown; journal resumable", j.id)
		}
	default:
		s.finishJob(j, serveapi.StateFailed, err.Error())
	}
}

func (s *Server) finishJob(j *job, state, errMsg string) {
	j.setState(state, errMsg)
	switch state {
	case serveapi.StateDone:
		s.tel.Counter("serve.jobs_done").Inc()
	case serveapi.StateFailed:
		s.tel.Counter("serve.jobs_failed").Inc()
	case serveapi.StateCancelled:
		s.tel.Counter("serve.jobs_cancelled").Inc()
	}
	s.logf("serve: job %s %s %s", j.id, state, errMsg)
}

// Submit validates spec, persists it under a fresh job directory and
// enqueues it; the returned status carries the job ID.
func (s *Server) Submit(spec serveapi.JobSpec) (serveapi.JobStatus, error) {
	if _, err := s.plan(spec); err != nil {
		return serveapi.JobStatus{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return serveapi.JobStatus{}, fmt.Errorf("serve: shutting down")
	}
	s.seq++
	// Time-prefixed IDs sort by submission across daemon lives; the
	// sequence number breaks same-millisecond ties within one life.
	id := fmt.Sprintf("%012x-%04x", time.Now().UnixMilli(), s.seq&0xffff)
	dir := filepath.Join(s.opts.DataDir, "jobs", id)
	j := newJob(id, spec, dir)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return serveapi.JobStatus{}, err
	}
	specData, err := json.Marshal(spec)
	if err != nil {
		return serveapi.JobStatus{}, err
	}
	if err := os.WriteFile(j.specPath(), append(specData, '\n'), 0o644); err != nil {
		return serveapi.JobStatus{}, err
	}
	st := j.status()
	j.persistStatus(st)
	s.tel.Counter("serve.jobs").Inc()
	s.logf("serve: job %s queued: %s on %s", id, spec.FS, spec.Universe)
	s.sched.push(j)
	return st, nil
}

func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, format+"\n", args...)
	}
}
