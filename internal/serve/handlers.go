package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/pipeline"
	"repro/internal/serveapi"
	"repro/internal/telemetry"
)

// buildMux wires the daemon's routes:
//
//	POST /v1/jobs                submit a suite spec, returns JobStatus
//	GET  /v1/jobs                list jobs, oldest first
//	GET  /v1/jobs/{id}           one job's status
//	GET  /v1/jobs/{id}/records   NDJSON records: live stream while the
//	                             job runs, the finalized journal once done
//	GET  /v1/jobs/{id}/stats     the job's isolated telemetry snapshot
//	POST /v1/jobs/{id}/cancel    cooperative cancellation
//	/v1/store/...                the shared result store (StoreHandler)
//	GET  /v1/healthz             liveness probe
func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.withJob(s.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/records", s.withJob(s.handleRecords))
	mux.HandleFunc("GET /v1/jobs/{id}/stats", s.withJob(s.handleJobStats))
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.withJob(s.handleCancel))
	mux.Handle("/v1/store/", pipeline.NewStoreHandler(s.store, s.tel))
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	s.mux = mux
}

// Handler returns the daemon's HTTP handler, wrapped in the request
// metrics middleware (serve.http_requests, serve.http_ns).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.tel.Counter("serve.http_requests").Inc()
		start := time.Now()
		s.mux.ServeHTTP(w, r)
		s.tel.Histogram("serve.http_ns").ObserveSince(start)
	})
}

func (s *Server) withJob(fn func(http.ResponseWriter, *http.Request, *job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown job", http.StatusNotFound)
			return
		}
		fn(w, r, j)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec serveapi.JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&spec); err != nil {
		http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]serveapi.JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.job(id); ok {
			out = append(out, j.status())
		}
	}
	writeJSON(w, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, j *job) {
	writeJSON(w, j.status())
}

func (s *Server) handleJobStats(w http.ResponseWriter, r *http.Request, j *job) {
	j.mu.Lock()
	tel := j.tel
	j.mu.Unlock()
	if tel == nil {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "{}\n")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tel.WriteJSON(w, telemetry.Header{Tool: "sfs-serve"})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, j *job) {
	j.requestCancel()
	w.WriteHeader(http.StatusNoContent)
}

// handleRecords streams the job's records as NDJSON. A settled job
// replays its journal file — for a successful job that is the
// finalized, canonically ordered JSONL, byte-identical to a local
// sfs-run of the same suite. A live job streams records in completion
// order as they arrive (cache hits and resumes included) and ends the
// stream when the job settles.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if j.terminal() {
		data, err := os.ReadFile(j.journalPath())
		if err != nil {
			// Settled without a journal (failed before the sink opened, or
			// cancelled while queued): replay the in-memory records.
			enc := json.NewEncoder(w)
			j.mu.Lock()
			recs := append([]pipeline.Record(nil), j.recs...)
			j.mu.Unlock()
			for _, rec := range recs {
				enc.Encode(rec)
			}
			return
		}
		w.Write(data)
		return
	}

	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// A client disconnect must unblock the cond wait below.
	go func() {
		<-r.Context().Done()
		j.cond.Broadcast()
	}()
	sent := 0
	for {
		j.mu.Lock()
		for sent >= len(j.recs) && !serveapi.TerminalState(j.state) && r.Context().Err() == nil {
			j.cond.Wait()
		}
		batch := j.recs[sent:]
		sent = len(j.recs)
		settled := serveapi.TerminalState(j.state)
		j.mu.Unlock()
		if r.Context().Err() != nil {
			return
		}
		for _, rec := range batch {
			if enc.Encode(rec) != nil {
				return
			}
		}
		if fl != nil {
			fl.Flush()
		}
		if settled {
			return
		}
	}
}
