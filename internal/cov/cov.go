package cov

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The point *universe* is process-global: model packages register their
// coverage points at package init (var hit = cov.Point("fsspec/rename/
// subdir")), and those registrations — and the counters behind them — live
// in the Default registry. Hit sites compiled into the model always feed
// Default. A Registry is an isolated *view*: its counters accumulate only
// what is explicitly attributed to it (Collect windows, AddHits merges),
// so two concurrent sessions each owning a registry read disjoint figures
// even though the raw hits share the Default counters.
type Registry struct {
	mu     sync.Mutex
	points map[string]*uint64
	// numHit counts points whose counter went 0→1 since the last Reset,
	// so HitCount is O(1) — the fuzzer polls it once per run.
	numHit atomic.Int64
}

// NewRegistry returns an empty isolated registry. Its point universe is
// the Default registry's (Stats/Unhit denominators match process-wide
// figures); its counters start at zero and only move via Collect,
// AddHits and ForceHit.
func NewRegistry() *Registry {
	return &Registry{points: make(map[string]*uint64)}
}

// Default is the process-wide live registry: Point registers here, and
// every cov.Hit site in the model increments one of its counters. The
// package-level functions (Stats, Unhit, Reset, ...) are its methods —
// kept for the model packages and for callers content with shared,
// process-global coverage.
var Default = NewRegistry()

// attrMu coordinates exact attribution over the Default counters:
// Tracker.Attribute and Registry.Collect hold the write side, Guard the
// read side. It is process-global because the raw counters are — a
// window is only exact if no unwindowed model evaluation runs inside it.
var attrMu sync.RWMutex

// Point registers a coverage point in the Default registry and returns its
// counter. Call at package init (var hit = cov.Point("fsspec/rename/subdir"))
// so the denominator is complete even before any checking runs.
func Point(id string) *uint64 {
	d := Default
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.points[id]; ok {
		return c
	}
	c := new(uint64)
	d.points[id] = c
	return c
}

// Hit increments a Default-registry counter. Safe for concurrent use.
func Hit(c *uint64) {
	if atomic.AddUint64(c, 1) == 1 {
		Default.numHit.Add(1)
	}
}

// HitCount returns the number of distinct points hit since the last Reset,
// in O(1). It is monotone between Resets, which is what the fuzzer's
// cheap "did this run reach anything new globally?" pre-filter relies on.
func (r *Registry) HitCount() int { return int(r.numHit.Load()) }

// HitCount is Default.HitCount.
func HitCount() int { return Default.HitCount() }

// Guard runs f on the shared side of the attribution lock: f's coverage
// hits can never land inside a concurrently open Tracker.Attribute or
// Registry.Collect window. Multiple Guard calls proceed in parallel with
// each other. Evaluations whose hits need no attribution (the fuzzer's
// fast path, minimization probes) run under Guard so concurrent
// attribution stays exact.
func Guard(f func()) {
	attrMu.RLock()
	defer attrMu.RUnlock()
	f()
}

// universe snapshots the Default registry's point table: sorted ids with
// their live counters.
func universe() (ids []string, ctrs []*uint64) {
	d := Default
	d.mu.Lock()
	defer d.mu.Unlock()
	ids = make([]string, 0, len(d.points))
	for id := range d.points {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ctrs = make([]*uint64, len(ids))
	for i, id := range ids {
		ctrs[i] = d.points[id]
	}
	return ids, ctrs
}

// Collect runs f inside an exclusive attribution window and merges the
// per-point hit deltas of the Default counters during f into r, returning
// the sorted ids of the points f hit. This is how a session-owned registry
// accumulates coverage even though the model's hit sites are bound to
// Default at init: the window excludes every other Collect/Attribute
// window and all Guard'ed evaluation, so the delta belongs to f alone.
// Windows serialize process-wide — isolation trades attribution-side
// parallelism for exactness. On the Default registry itself Collect only
// reports the hit set (the hits already landed in its counters).
func (r *Registry) Collect(f func()) []string {
	attrMu.Lock()
	defer attrMu.Unlock()
	ids, ctrs := universe()
	base := make([]uint64, len(ctrs))
	for i, c := range ctrs {
		base[i] = atomic.LoadUint64(c)
	}
	f()
	var hit []string
	for i, c := range ctrs {
		// Compare before subtracting: a Reset racing the window could make
		// the counter smaller than its base, and an unsigned delta would
		// wrap to ~2^64 false hits.
		if cur := atomic.LoadUint64(c); cur > base[i] {
			hit = append(hit, ids[i])
			if r != Default {
				r.add(ids[i], cur-base[i])
			}
		}
	}
	return hit
}

// add merges delta hits of one point into r's own counter.
func (r *Registry) add(id string, delta uint64) {
	r.mu.Lock()
	c, ok := r.points[id]
	if !ok {
		c = new(uint64)
		r.points[id] = c
	}
	r.mu.Unlock()
	if atomic.AddUint64(c, delta) == delta {
		r.numHit.Add(1)
	}
}

// AddHits marks each id as hit once in r — merging an attributed point
// set (a Tracker.Attribute result, a cached seed replay) into an isolated
// registry. Ids outside the registered universe are ignored, as in
// ForceHit.
func (r *Registry) AddHits(ids []string) {
	d := Default
	d.mu.Lock()
	known := make([]string, 0, len(ids))
	for _, id := range ids {
		if _, ok := d.points[id]; ok {
			known = append(known, id)
		}
	}
	d.mu.Unlock()
	for _, id := range known {
		r.add(id, 1)
	}
}

// Tracker attributes coverage to individual runs: Attribute(f) returns
// exactly the points hit during f. Concurrent Attribute calls (from
// parallel fuzz workers) serialize against each other and against Guard
// sections, so the delta is exact provided all other model evaluation in
// the process runs under Guard. A Tracker may be reused across runs; it is
// not safe for concurrent use by itself (each worker keeps its own, or
// serializes externally — Attribute's internal lock already serializes the
// windows).
type Tracker struct {
	ids  []string
	ctrs []*uint64
	base []uint64
}

// NewTracker returns a Tracker over the points registered so far.
func NewTracker() *Tracker { return &Tracker{} }

// refresh (re)builds the point table; points register at package init, but
// a Tracker built before an import completes would otherwise miss some.
func (t *Tracker) refresh() {
	d := Default
	d.mu.Lock()
	n := len(d.points)
	d.mu.Unlock()
	if len(t.ids) == n {
		return
	}
	t.ids, t.ctrs = universe()
	t.base = make([]uint64, len(t.ids))
}

// Attribute runs f inside an exclusive attribution window and returns the
// sorted ids of the coverage points f hit.
func (t *Tracker) Attribute(f func()) []string {
	attrMu.Lock()
	defer attrMu.Unlock()
	t.refresh()
	for i, c := range t.ctrs {
		t.base[i] = atomic.LoadUint64(c)
	}
	f()
	var hit []string
	for i, c := range t.ctrs {
		if atomic.LoadUint64(c) > t.base[i] {
			hit = append(hit, t.ids[i])
		}
	}
	return hit
}

// ForceHit marks the named registered points as hit in the Default
// registry without evaluating anything — for callers replaying a *cached*
// attribution (the fuzzer's corpus seeding skips re-executing entries
// whose point sets the result cache already holds, but the global counters
// must still reflect them or the "globally new coverage?" pre-filter would
// mis-fire all session). Unknown ids are ignored: a cache recorded against
// an older model may name points that no longer exist. Runs on the shared
// side of the attribution lock, so hits never land inside an open
// Attribute window.
func ForceHit(ids []string) {
	attrMu.RLock()
	defer attrMu.RUnlock()
	d := Default
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, id := range ids {
		if c, ok := d.points[id]; ok {
			Hit(c)
		}
	}
}

// ForceHit on an isolated registry is AddHits; on Default it is the
// package-level ForceHit.
func (r *Registry) ForceHit(ids []string) {
	if r == Default {
		ForceHit(ids)
		return
	}
	r.AddHits(ids)
}

// Snapshot returns r's hit counts for every point of the registered
// universe, sorted by id. Points r never saw report zero.
func (r *Registry) Snapshot() (ids []string, counts []uint64) {
	ids, _ = universe()
	counts = make([]uint64, len(ids))
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, id := range ids {
		if c, ok := r.points[id]; ok {
			counts[i] = atomic.LoadUint64(c)
		}
	}
	return ids, counts
}

// Snapshot is Default.Snapshot.
func Snapshot() (ids []string, counts []uint64) { return Default.Snapshot() }

// Stats returns (hit, total) point counts.
func (r *Registry) Stats() (hit, total int) {
	ids, counts := r.Snapshot()
	for i := range ids {
		total++
		if counts[i] > 0 {
			hit++
		}
	}
	return hit, total
}

// Stats is Default.Stats.
func Stats() (hit, total int) { return Default.Stats() }

// Reset zeroes r's counters (between experiment runs). Resetting an
// isolated registry never touches the Default counters — the footgun the
// old package-global Reset was for concurrent sessions.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.points {
		atomic.StoreUint64(c, 0)
	}
	r.numHit.Store(0)
}

// Reset is Default.Reset — it zeroes the process-global counters.
func Reset() { Default.Reset() }

// Unhit returns the ids of registered points r has never seen hit.
func (r *Registry) Unhit() []string {
	ids, counts := r.Snapshot()
	var out []string
	for i, id := range ids {
		if counts[i] == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Unhit is Default.Unhit.
func Unhit() []string { return Default.Unhit() }
