package cov

import (
	"sort"
	"sync"
	"sync/atomic"
)

var (
	mu     sync.Mutex
	points = make(map[string]*uint64)
	// numHit counts points whose counter went 0→1 since the last Reset,
	// so HitCount is O(1) — the fuzzer polls it once per run.
	numHit atomic.Int64

	// attrMu coordinates exact attribution: Tracker.Attribute holds the
	// write side, Guard the read side.
	attrMu sync.RWMutex
)

// Point registers a coverage point and returns its counter. Call at package
// init (var hit = cov.Point("fsspec/rename/subdir")) so the denominator is
// complete even before any checking runs.
func Point(id string) *uint64 {
	mu.Lock()
	defer mu.Unlock()
	if c, ok := points[id]; ok {
		return c
	}
	c := new(uint64)
	points[id] = c
	return c
}

// Hit increments a counter. Safe for concurrent use.
func Hit(c *uint64) {
	if atomic.AddUint64(c, 1) == 1 {
		numHit.Add(1)
	}
}

// HitCount returns the number of distinct points hit since the last Reset,
// in O(1). It is monotone between Resets, which is what the fuzzer's
// cheap "did this run reach anything new globally?" pre-filter relies on.
func HitCount() int { return int(numHit.Load()) }

// Guard runs f on the shared side of the attribution lock: f's coverage
// hits can never land inside a concurrently open Tracker.Attribute window.
// Multiple Guard calls proceed in parallel with each other. Evaluations
// whose hits need no attribution (the fuzzer's fast path, minimization
// probes) run under Guard so concurrent attribution stays exact.
func Guard(f func()) {
	attrMu.RLock()
	defer attrMu.RUnlock()
	f()
}

// Tracker attributes coverage to individual runs: Attribute(f) returns
// exactly the points hit during f. Concurrent Attribute calls (from
// parallel fuzz workers) serialize against each other and against Guard
// sections, so the delta is exact provided all other model evaluation in
// the process runs under Guard. A Tracker may be reused across runs; it is
// not safe for concurrent use by itself (each worker keeps its own, or
// serializes externally — Attribute's internal lock already serializes the
// windows).
type Tracker struct {
	ids  []string
	ctrs []*uint64
	base []uint64
}

// NewTracker returns a Tracker over the points registered so far.
func NewTracker() *Tracker { return &Tracker{} }

// refresh (re)builds the point table; points register at package init, but
// a Tracker built before an import completes would otherwise miss some.
func (t *Tracker) refresh() {
	mu.Lock()
	defer mu.Unlock()
	if len(t.ids) == len(points) {
		return
	}
	t.ids = t.ids[:0]
	for id := range points {
		t.ids = append(t.ids, id)
	}
	sort.Strings(t.ids)
	t.ctrs = make([]*uint64, len(t.ids))
	for i, id := range t.ids {
		t.ctrs[i] = points[id]
	}
	t.base = make([]uint64, len(t.ids))
}

// Attribute runs f inside an exclusive attribution window and returns the
// sorted ids of the coverage points f hit.
func (t *Tracker) Attribute(f func()) []string {
	attrMu.Lock()
	defer attrMu.Unlock()
	t.refresh()
	for i, c := range t.ctrs {
		t.base[i] = atomic.LoadUint64(c)
	}
	f()
	var hit []string
	for i, c := range t.ctrs {
		if atomic.LoadUint64(c) > t.base[i] {
			hit = append(hit, t.ids[i])
		}
	}
	return hit
}

// ForceHit marks the named registered points as hit without evaluating
// anything — for callers replaying a *cached* attribution (the fuzzer's
// corpus seeding skips re-executing entries whose point sets the result
// cache already holds, but the global counters must still reflect them or
// the "globally new coverage?" pre-filter would mis-fire all session).
// Unknown ids are ignored: a cache recorded against an older model may
// name points that no longer exist. Runs on the shared side of the
// attribution lock, so hits never land inside an open Attribute window.
func ForceHit(ids []string) {
	attrMu.RLock()
	defer attrMu.RUnlock()
	mu.Lock()
	defer mu.Unlock()
	for _, id := range ids {
		if c, ok := points[id]; ok {
			Hit(c)
		}
	}
}

// Snapshot returns hit counts for every registered point, sorted by id.
func Snapshot() (ids []string, counts []uint64) {
	mu.Lock()
	defer mu.Unlock()
	ids = make([]string, 0, len(points))
	for id := range points {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	counts = make([]uint64, len(ids))
	for i, id := range ids {
		counts[i] = atomic.LoadUint64(points[id])
	}
	return ids, counts
}

// Stats returns (hit, total) point counts.
func Stats() (hit, total int) {
	ids, counts := Snapshot()
	for i := range ids {
		total++
		if counts[i] > 0 {
			hit++
		}
	}
	return hit, total
}

// Reset zeroes all counters (between experiment runs).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, c := range points {
		atomic.StoreUint64(c, 0)
	}
	numHit.Store(0)
}

// Unhit returns the ids of registered points that have never been hit.
func Unhit() []string {
	ids, counts := Snapshot()
	var out []string
	for i, id := range ids {
		if counts[i] == 0 {
			out = append(out, id)
		}
	}
	return out
}
