// Package cov instruments the specification with named coverage points so
// that test-suite coverage of the *model* can be measured, as §7.2 of the
// paper does (their suite reaches 98% of the model). Spec code registers
// points at init time and hits them during evaluation; the report divides
// hit points by registered points.
package cov

import (
	"sort"
	"sync"
	"sync/atomic"
)

var (
	mu     sync.Mutex
	points = make(map[string]*uint64)
)

// Point registers a coverage point and returns its counter. Call at package
// init (var hit = cov.Point("fsspec/rename/subdir")) so the denominator is
// complete even before any checking runs.
func Point(id string) *uint64 {
	mu.Lock()
	defer mu.Unlock()
	if c, ok := points[id]; ok {
		return c
	}
	c := new(uint64)
	points[id] = c
	return c
}

// Hit increments a counter. Safe for concurrent use.
func Hit(c *uint64) { atomic.AddUint64(c, 1) }

// Snapshot returns hit counts for every registered point, sorted by id.
func Snapshot() (ids []string, counts []uint64) {
	mu.Lock()
	defer mu.Unlock()
	ids = make([]string, 0, len(points))
	for id := range points {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	counts = make([]uint64, len(ids))
	for i, id := range ids {
		counts[i] = atomic.LoadUint64(points[id])
	}
	return ids, counts
}

// Stats returns (hit, total) point counts.
func Stats() (hit, total int) {
	ids, counts := Snapshot()
	for i := range ids {
		total++
		if counts[i] > 0 {
			hit++
		}
	}
	return hit, total
}

// Reset zeroes all counters (between experiment runs).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, c := range points {
		atomic.StoreUint64(c, 0)
	}
}

// Unhit returns the ids of registered points that have never been hit.
func Unhit() []string {
	ids, counts := Snapshot()
	var out []string
	for i, id := range ids {
		if counts[i] == 0 {
			out = append(out, id)
		}
	}
	return out
}
