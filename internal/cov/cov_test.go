package cov

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPointRegistrationAndHits(t *testing.T) {
	Reset()
	a := Point("test/a")
	b := Point("test/b")
	if a == b {
		t.Fatal("distinct ids share a counter")
	}
	if again := Point("test/a"); again != a {
		t.Fatal("re-registration returned a new counter")
	}
	Hit(a)
	Hit(a)
	hit, total := Stats()
	if total < 2 {
		t.Fatalf("total = %d", total)
	}
	if hit < 1 {
		t.Fatalf("hit = %d", hit)
	}
	found := false
	for _, id := range Unhit() {
		if id == "test/b" {
			found = true
		}
		if id == "test/a" {
			t.Error("hit point listed as unhit")
		}
	}
	if !found {
		t.Error("unhit point not listed")
	}
}

func TestResetZeroes(t *testing.T) {
	p := Point("test/reset")
	Hit(p)
	Reset()
	ids, counts := Snapshot()
	for i, id := range ids {
		if id == "test/reset" && counts[i] != 0 {
			t.Error("reset did not zero the counter")
		}
	}
}

func TestHitCount(t *testing.T) {
	Reset()
	if HitCount() != 0 {
		t.Fatalf("HitCount after Reset = %d", HitCount())
	}
	a := Point("test/hitcount_a")
	b := Point("test/hitcount_b")
	Hit(a)
	Hit(a) // repeat hits do not re-count the point
	before := HitCount()
	Hit(b)
	if HitCount() != before+1 {
		t.Errorf("HitCount = %d, want %d", HitCount(), before+1)
	}
	hit, _ := Stats()
	if HitCount() != hit {
		t.Errorf("HitCount = %d disagrees with Stats hit = %d", HitCount(), hit)
	}
}

func TestTrackerAttribute(t *testing.T) {
	Reset()
	a := Point("test/track_a")
	b := Point("test/track_b")
	Hit(a) // pre-existing global hits must not leak into the delta
	tr := NewTracker()
	got := tr.Attribute(func() { Hit(b); Hit(b) })
	if !reflect.DeepEqual(got, []string{"test/track_b"}) {
		t.Errorf("delta = %v, want [test/track_b]", got)
	}
	// A reused tracker attributes the next run independently.
	got = tr.Attribute(func() { Hit(a) })
	if !reflect.DeepEqual(got, []string{"test/track_a"}) {
		t.Errorf("second delta = %v, want [test/track_a]", got)
	}
	if got = tr.Attribute(func() {}); got != nil {
		t.Errorf("empty run delta = %v, want nil", got)
	}
}

// TestTrackerExcludesGuardedHits is the concurrency contract: hits made
// under Guard never land inside an open attribution window, so parallel
// fuzz workers get exact per-run deltas.
func TestTrackerExcludesGuardedHits(t *testing.T) {
	Reset()
	noise := Point("test/track_noise")
	mine := Point("test/track_mine")
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				Guard(func() { Hit(noise) })
			}
		}()
	}
	tr := NewTracker()
	for i := 0; i < 200; i++ {
		got := tr.Attribute(func() { Hit(mine) })
		if !reflect.DeepEqual(got, []string{"test/track_mine"}) {
			t.Errorf("iteration %d: delta = %v, want [test/track_mine]", i, got)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestConcurrentHits(t *testing.T) {
	Reset()
	p := Point("test/conc")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				Hit(p)
			}
		}()
	}
	wg.Wait()
	ids, counts := Snapshot()
	for i, id := range ids {
		if id == "test/conc" && counts[i] != 8000 {
			t.Errorf("count = %d, want 8000", counts[i])
		}
	}
}
