package cov

import (
	"sync"
	"testing"
)

func TestPointRegistrationAndHits(t *testing.T) {
	Reset()
	a := Point("test/a")
	b := Point("test/b")
	if a == b {
		t.Fatal("distinct ids share a counter")
	}
	if again := Point("test/a"); again != a {
		t.Fatal("re-registration returned a new counter")
	}
	Hit(a)
	Hit(a)
	hit, total := Stats()
	if total < 2 {
		t.Fatalf("total = %d", total)
	}
	if hit < 1 {
		t.Fatalf("hit = %d", hit)
	}
	found := false
	for _, id := range Unhit() {
		if id == "test/b" {
			found = true
		}
		if id == "test/a" {
			t.Error("hit point listed as unhit")
		}
	}
	if !found {
		t.Error("unhit point not listed")
	}
}

func TestResetZeroes(t *testing.T) {
	p := Point("test/reset")
	Hit(p)
	Reset()
	ids, counts := Snapshot()
	for i, id := range ids {
		if id == "test/reset" && counts[i] != 0 {
			t.Error("reset did not zero the counter")
		}
	}
}

func TestConcurrentHits(t *testing.T) {
	Reset()
	p := Point("test/conc")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				Hit(p)
			}
		}()
	}
	wg.Wait()
	ids, counts := Snapshot()
	for i, id := range ids {
		if id == "test/conc" && counts[i] != 8000 {
			t.Errorf("count = %d, want 8000", counts[i])
		}
	}
}
