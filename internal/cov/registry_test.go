package cov

import (
	"sync"
	"sync/atomic"
	"testing"
)

// regPoints registers test-only points once (the universe is process
// global and append-only).
var (
	regA = Point("covtest/registry/a")
	regB = Point("covtest/registry/b")
)

func TestRegistryCollectDelta(t *testing.T) {
	r := NewRegistry()
	hit := r.Collect(func() {
		Hit(regA)
		Hit(regA)
		Hit(regB)
	})
	if len(hit) != 2 {
		t.Fatalf("Collect reported %v, want the two test points", hit)
	}
	ids, counts := r.Snapshot()
	byID := make(map[string]uint64, len(ids))
	for i, id := range ids {
		byID[id] = counts[i]
	}
	if byID["covtest/registry/a"] != 2 || byID["covtest/registry/b"] != 1 {
		t.Fatalf("registry holds a=%d b=%d, want 2/1", byID["covtest/registry/a"], byID["covtest/registry/b"])
	}
	if got := r.HitCount(); got != 2 {
		t.Fatalf("HitCount = %d, want 2", got)
	}
}

func TestRegistryResetIsolation(t *testing.T) {
	r := NewRegistry()
	r.Collect(func() { Hit(regA) })
	before := atomic.LoadUint64(regA)
	r.Reset()
	if hit, _ := r.Stats(); hit != 0 {
		t.Fatalf("registry hit count %d after Reset", hit)
	}
	if after := atomic.LoadUint64(regA); after != before {
		t.Fatalf("isolated Reset changed the Default counter: %d -> %d", before, after)
	}
}

// TestRegistryConcurrentCollect: concurrent Collect windows on distinct
// registries never bleed into each other — each window's delta lands only
// in its own registry, exactly.
func TestRegistryConcurrentCollect(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			r1.Collect(func() { Hit(regA) })
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			r2.Collect(func() { Hit(regB) })
		}
	}()
	wg.Wait()
	count := func(r *Registry, want string) uint64 {
		ids, counts := r.Snapshot()
		for i, id := range ids {
			if id == want {
				return counts[i]
			}
		}
		return 0
	}
	if got := count(r1, "covtest/registry/a"); got != iters {
		t.Errorf("r1 a = %d, want %d", got, iters)
	}
	if got := count(r1, "covtest/registry/b"); got != 0 {
		t.Errorf("r1 bled %d hits of b", got)
	}
	if got := count(r2, "covtest/registry/b"); got != iters {
		t.Errorf("r2 b = %d, want %d", got, iters)
	}
	if got := count(r2, "covtest/registry/a"); got != 0 {
		t.Errorf("r2 bled %d hits of a", got)
	}
}

func TestRegistryAddHits(t *testing.T) {
	r := NewRegistry()
	r.AddHits([]string{"covtest/registry/a", "covtest/registry/a", "no/such/point"})
	ids, counts := r.Snapshot()
	for i, id := range ids {
		switch id {
		case "covtest/registry/a":
			if counts[i] != 2 {
				t.Fatalf("a = %d, want 2", counts[i])
			}
		case "no/such/point":
			t.Fatal("unknown id entered the registry")
		}
	}
	if got := r.HitCount(); got != 1 {
		t.Fatalf("HitCount = %d, want 1", got)
	}
}
