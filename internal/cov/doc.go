// Package cov instruments the specification with named coverage points so
// that test-suite coverage of the *model* can be measured, as §7.2 of the
// paper does (their suite reaches 98% of the model). Spec code registers
// points at init time and hits them during evaluation; the report divides
// hit points by registered points.
//
// Counters are instance-based: the Default Registry holds the live
// counters every compiled-in hit site feeds (Point registers there at
// init), and the package-level functions are its methods. Additional
// Registry instances are isolated per-session views — sibylfs.Session
// owns or shares one — whose counts accumulate only through explicit
// attribution (Collect windows, AddHits merges), so two concurrent
// sessions never see each other's coverage and resetting one cannot
// disturb another.
//
// Per-run attribution for coverage-guided fuzzing (internal/fuzz) uses
// the same mechanism: a Tracker snapshots the Default counters around one
// evaluation and returns exactly the points that run hit. Exactness under
// concurrency comes from a reader/writer discipline: evaluations that do
// not need attribution run inside Guard (shared side); Tracker.Attribute
// and Registry.Collect windows take the exclusive side, so no foreign hit
// can land inside an open window.
package cov
