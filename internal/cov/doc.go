// Package cov instruments the specification with named coverage points so
// that test-suite coverage of the *model* can be measured, as §7.2 of the
// paper does (their suite reaches 98% of the model). Spec code registers
// points at init time and hits them during evaluation; the report divides
// hit points by registered points.
//
// Beyond the global counters, the package supports per-run attribution for
// coverage-guided fuzzing (internal/fuzz): a Tracker snapshots the counters
// around one evaluation and returns exactly the points that run hit.
// Exactness under concurrency comes from a reader/writer discipline:
// evaluations that do not need attribution run inside Guard (shared side),
// attribution windows take the exclusive side, so no foreign hit can land
// inside an open window.
package cov
