package osspec

// ModelVersion identifies the semantics of the executable specification for
// result-caching purposes (internal/pipeline, internal/fuzz). Cached checker
// verdicts are keyed on it: bump the version whenever a change to the model
// (osspec, fsspec, pathres, state) or to the checker's verdict semantics can
// alter any checked-trace output, and every previously cached result is
// invalidated at once. Pure performance work (hash-consing, parallelism,
// COW layout) must NOT bump it — the determinism contract says those leave
// output byte-identical, and the golden fixtures in testdata/ enforce that.
//
// The format is "v<N>"; there is no semantic content beyond inequality.
const ModelVersion = "v1"
