// Package osspec is the paper's "POSIX API module" (§5): it defines the
// labelled transition system whose states model the operating system —
// processes, file-descriptor tables, open file descriptions, directory
// handles, users and groups — and whose transition function os_trans maps a
// state and a label to a finite set of next states. It glues path
// resolution and the file-system module together and owns all per-process
// data structures.
package osspec

import (
	"fmt"
	"sort"

	"repro/internal/state"
	"repro/internal/types"
)

// FidRef identifies an open file description (ty_fid); several descriptors
// (across processes) may share one description, e.g. after fork — the model
// keeps the indirection even though the test harness never shares them.
type FidRef int

// FidState is the state of an open file description (fid_state).
type FidState struct {
	IsDir    bool
	File     state.FileRef
	Dir      state.DirRef
	Offset   int64
	Append   bool
	Readable bool
	Writable bool
	Refs     int
}

// DirHandleState models an open directory stream with the paper's must/may
// machinery (§3, "Directory listing nondeterminism"): Must holds entries
// that a complete sequence of readdir calls must still return; May holds
// entries that may or may not be returned (added or removed since the
// handle was opened). LastSeen is the directory contents at the previous
// readdir, used to fold concurrent modifications into Must/May.
type DirHandleState struct {
	Dir      state.DirRef
	Must     map[string]bool
	May      map[string]bool
	Returned map[string]bool
	LastSeen map[string]bool
}

// RunKind is a process's run state.
type RunKind int

// Run states: running (may issue a call), calling (call issued, not yet
// processed — pre-τ), returning (processed, awaiting the return label).
const (
	RsRunning RunKind = iota
	RsCalling
	RsReturning
)

// ProcState is per_process_state: everything the OS tracks per process.
type ProcState struct {
	Cwd      state.DirRef
	CwdValid bool
	Umask    types.Perm
	Euid     types.Uid
	Egid     types.Gid
	Fds      map[types.FD]FidRef
	Dhs      map[types.DH]*DirHandleState
	NextFD   types.FD
	NextDH   types.DH

	Run        RunKind
	PendingCmd types.Command // valid in RsCalling
	PendingRet Pending       // valid in RsReturning
}

// OsState is ty_os_state: one abstract model state of the whole system.
type OsState struct {
	H       *state.Heap
	Fids    map[FidRef]*FidState
	NextFid FidRef
	Procs   map[types.Pid]*ProcState
	// Groups maps gid → set of member uids (oss_group_table).
	Groups map[types.Gid]map[types.Uid]bool
	Spec   types.Spec
}

// InitialPid is the process every script starts with.
const InitialPid types.Pid = 1

// NewOsState builds the model's initial state: an empty file system and a
// single process whose credentials follow the spec's RootUser flag.
func NewOsState(spec types.Spec) *OsState {
	s := &OsState{
		H:       state.NewHeap(),
		Fids:    make(map[FidRef]*FidState),
		NextFid: 1,
		Procs:   make(map[types.Pid]*ProcState),
		Groups:  make(map[types.Gid]map[types.Uid]bool),
		Spec:    spec,
	}
	uid, gid := types.RootUid, types.RootGid
	if !spec.RootUser {
		uid, gid = 1000, 1000
	}
	s.addProcess(InitialPid, uid, gid)
	return s
}

func (s *OsState) addProcess(pid types.Pid, uid types.Uid, gid types.Gid) {
	s.Procs[pid] = &ProcState{
		Cwd:      s.H.Root,
		CwdValid: true,
		Umask:    0o022,
		Euid:     uid,
		Egid:     gid,
		Fds:      make(map[types.FD]FidRef),
		Dhs:      make(map[types.DH]*DirHandleState),
		NextFD:   3, // 0-2 are the std streams, outside the model's scope
		NextDH:   1,
		Run:      RsRunning,
	}
}

// Clone deep-copies the state; the checker branches the state set on every
// nondeterministic choice (§3 "Concurrency nondeterminism via state sets").
func (s *OsState) Clone() *OsState {
	c := &OsState{
		H:       s.H.Clone(),
		Fids:    make(map[FidRef]*FidState, len(s.Fids)),
		NextFid: s.NextFid,
		Procs:   make(map[types.Pid]*ProcState, len(s.Procs)),
		Groups:  make(map[types.Gid]map[types.Uid]bool, len(s.Groups)),
		Spec:    s.Spec,
	}
	for r, f := range s.Fids {
		nf := *f
		c.Fids[r] = &nf
	}
	for pid, p := range s.Procs {
		np := &ProcState{
			Cwd:      p.Cwd,
			CwdValid: p.CwdValid,
			Umask:    p.Umask,
			Euid:     p.Euid,
			Egid:     p.Egid,
			Fds:      make(map[types.FD]FidRef, len(p.Fds)),
			Dhs:      make(map[types.DH]*DirHandleState, len(p.Dhs)),
			NextFD:   p.NextFD,
			NextDH:   p.NextDH,
			Run:      p.Run,
			// Commands and pendings are immutable values; share them.
			PendingCmd: p.PendingCmd,
			PendingRet: p.PendingRet,
		}
		for fd, fid := range p.Fds {
			np.Fds[fd] = fid
		}
		for dh, h := range p.Dhs {
			np.Dhs[dh] = h.clone()
		}
		c.Procs[pid] = np
	}
	for gid, members := range s.Groups {
		m := make(map[types.Uid]bool, len(members))
		for u := range members {
			m[u] = true
		}
		c.Groups[gid] = m
	}
	return c
}

func (d *DirHandleState) clone() *DirHandleState {
	return &DirHandleState{
		Dir:      d.Dir,
		Must:     cloneSet(d.Must),
		May:      cloneSet(d.May),
		Returned: cloneSet(d.Returned),
		LastSeen: cloneSet(d.LastSeen),
	}
}

func cloneSet(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k := range m {
		c[k] = true
	}
	return c
}

// InGroup reports whether uid is a member of gid (supplementary groups).
func (s *OsState) InGroup(uid types.Uid, gid types.Gid) bool {
	m, ok := s.Groups[gid]
	return ok && m[uid]
}

// Fingerprint summarises the state for deduplication of the checker's state
// set. Two states with the same fingerprint are behaviourally equivalent
// for our purposes (the summary covers the tree, file contents, fds and
// process run states).
func (s *OsState) Fingerprint() string {
	var b []byte
	b = append(b, s.fsFingerprint()...)
	pids := make([]int, 0, len(s.Procs))
	for pid := range s.Procs {
		pids = append(pids, int(pid))
	}
	sort.Ints(pids)
	for _, pid := range pids {
		p := s.Procs[types.Pid(pid)]
		b = append(b, fmt.Sprintf("|p%d:%d,%d,%d,cwd%d,%v,run%d", pid, p.Euid, p.Egid, p.Umask, p.Cwd, p.CwdValid, p.Run)...)
		if p.Run == RsReturning && p.PendingRet != nil {
			b = append(b, p.PendingRet.Describe()...)
		}
		fds := make([]int, 0, len(p.Fds))
		for fd := range p.Fds {
			fds = append(fds, int(fd))
		}
		sort.Ints(fds)
		for _, fd := range fds {
			fid := s.Fids[p.Fds[types.FD(fd)]]
			b = append(b, fmt.Sprintf(";fd%d=f%d,d%d,o%d", fd, fid.File, fid.Dir, fid.Offset)...)
		}
		dhs := make([]int, 0, len(p.Dhs))
		for dh := range p.Dhs {
			dhs = append(dhs, int(dh))
		}
		sort.Ints(dhs)
		for _, dh := range dhs {
			h := p.Dhs[types.DH(dh)]
			b = append(b, fmt.Sprintf(";dh%d=%d,m%v,y%v,r%v", dh, h.Dir, sortedKeys(h.Must), sortedKeys(h.May), sortedKeys(h.Returned))...)
		}
	}
	return string(b)
}

func (s *OsState) fsFingerprint() string {
	var b []byte
	drs := make([]int, 0, len(s.H.Dirs))
	for d := range s.H.Dirs {
		drs = append(drs, int(d))
	}
	sort.Ints(drs)
	for _, dr := range drs {
		d := s.H.Dirs[state.DirRef(dr)]
		b = append(b, fmt.Sprintf("|d%d,p%d,%o,%d,%d:", dr, d.Parent, d.Perm, d.Uid, d.Gid)...)
		for _, n := range s.H.EntryNames(state.DirRef(dr)) {
			e := d.Entries[n]
			b = append(b, fmt.Sprintf("%s=%d/%d/%d;", n, e.Kind, e.File, e.Dir)...)
		}
	}
	frs := make([]int, 0, len(s.H.Files))
	for f := range s.H.Files {
		frs = append(frs, int(f))
	}
	sort.Ints(frs)
	for _, fr := range frs {
		f := s.H.Files[state.FileRef(fr)]
		b = append(b, fmt.Sprintf("|f%d,%d,%v,%o,%d,%d:%q", fr, f.Nlink, f.IsSymlink, f.Perm, f.Uid, f.Gid, f.Bytes)...)
	}
	return string(b)
}

func sortedKeys(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
