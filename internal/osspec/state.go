package osspec

import (
	"fmt"
	"sort"

	"repro/internal/state"
	"repro/internal/types"
)

// FidRef identifies an open file description (ty_fid); several descriptors
// (across processes) may share one description, e.g. after fork — the model
// keeps the indirection even though the test harness never shares them.
type FidRef int

// cowTok is the OS layer's ownership token, mirroring the heap's: an
// object is mutable in place only while its owner equals the state's
// current token.
type cowTok struct{ _ byte }

// FidState is the state of an open file description (fid_state). Mutate
// only through OsState.mutFid.
type FidState struct {
	IsDir    bool
	File     state.FileRef
	Dir      state.DirRef
	Offset   int64
	Append   bool
	Readable bool
	Writable bool
	Sync     bool // O_SYNC: writes through this description self-flush
	Refs     int

	owner *cowTok
}

// DirHandleState models an open directory stream with the paper's must/may
// machinery (§3, "Directory listing nondeterminism"): Must holds entries
// that a complete sequence of readdir calls must still return; May holds
// entries that may or may not be returned (added or removed since the
// handle was opened). LastSeen is the directory contents at the previous
// readdir, used to fold concurrent modifications into Must/May.
//
// Mutate only through OsState.mutDh. Must/May/LastSeen are replaced
// wholesale by their writers (opendir, rewinddir, readdir's Finalize), so a
// copy-on-write handle shares them; Returned is updated in place and is
// cloned when the handle is copied.
type DirHandleState struct {
	Dir      state.DirRef
	Must     map[string]bool
	May      map[string]bool
	Returned map[string]bool
	LastSeen map[string]bool

	owner *cowTok
}

// RunKind is a process's run state.
type RunKind int

// Run states: running (may issue a call), calling (call issued, not yet
// processed — pre-τ), returning (processed, awaiting the return label).
const (
	RsRunning RunKind = iota
	RsCalling
	RsReturning
)

// ProcState is per_process_state: everything the OS tracks per process.
// Mutate only through OsState.mutProc / mutFds / mutDhs / mutDh.
type ProcState struct {
	Cwd      state.DirRef
	CwdValid bool
	Umask    types.Perm
	Euid     types.Uid
	Egid     types.Gid
	Fds      map[types.FD]FidRef
	Dhs      map[types.DH]*DirHandleState
	NextFD   types.FD
	NextDH   types.DH

	Run        RunKind
	PendingCmd types.Command // valid in RsCalling
	PendingRet Pending       // valid in RsReturning

	owner   *cowTok
	ownsFds bool
	ownsDhs bool
}

// OsState is ty_os_state: one abstract model state of the whole system.
// The process, open-file and group tables are copy-on-write; read them
// freely, write through the mut* accessors.
type OsState struct {
	H       *state.Heap
	fids    map[FidRef]*FidState
	NextFid FidRef
	procs   map[types.Pid]*ProcState
	// groups maps gid → set of member uids (oss_group_table).
	groups map[types.Gid]map[types.Uid]bool
	Spec   types.Spec

	// Persistence layer (Spec.Crash only; both stay nil/empty otherwise).
	// durable is the last-synced file-system image; pend holds one frozen
	// heap snapshot per unsynced durable effect, in the order the effects
	// landed. Crash states are exactly durable plus the pend prefixes —
	// see CrashStates. Snapshots are O(1) COW clones, so the log costs a
	// header per effect, not a tree copy.
	durable *state.Heap
	pend    []*state.Heap

	tok        *cowTok
	ownsFids   bool
	ownsProcs  bool
	ownsGroups bool
	ownsPend   bool
	frozen     bool

	// hv memoises the non-heap part of Hash (procs, fds, dir handles);
	// every mut* accessor invalidates it.
	hv   uint64
	hvOK bool
}

// InitialPid is the process every script starts with.
const InitialPid types.Pid = 1

// NewOsState builds the model's initial state: an empty file system and a
// single process whose credentials follow the spec's RootUser flag.
func NewOsState(spec types.Spec) *OsState {
	s := &OsState{
		H:          state.NewHeap(),
		fids:       make(map[FidRef]*FidState),
		NextFid:    1,
		procs:      make(map[types.Pid]*ProcState),
		groups:     make(map[types.Gid]map[types.Uid]bool),
		Spec:       spec,
		tok:        &cowTok{},
		ownsFids:   true,
		ownsProcs:  true,
		ownsGroups: true,
		ownsPend:   true,
	}
	uid, gid := types.RootUid, types.RootGid
	if !spec.RootUser {
		uid, gid = 1000, 1000
	}
	s.addProcess(InitialPid, uid, gid)
	if spec.Crash {
		// The empty initial file system is durable by definition.
		s.durable = snapshotHeap(s.H)
	}
	return s
}

func (s *OsState) addProcess(pid types.Pid, uid types.Uid, gid types.Gid) {
	s.dirty()
	s.mutProcsMap()[pid] = &ProcState{
		Cwd:      s.H.Root,
		CwdValid: true,
		Umask:    0o022,
		Euid:     uid,
		Egid:     gid,
		Fds:      make(map[types.FD]FidRef),
		Dhs:      make(map[types.DH]*DirHandleState),
		NextFD:   3, // 0-2 are the std streams, outside the model's scope
		NextDH:   1,
		Run:      RsRunning,
		owner:    s.ensureTok(),
		ownsFds:  true,
		ownsDhs:  true,
	}
}

// Proc returns the per-process state for pid (nil if absent), read-only.
func (s *OsState) Proc(pid types.Pid) *ProcState { return s.procs[pid] }

// Fid returns the open-file description for ref (nil if absent), read-only.
func (s *OsState) Fid(ref FidRef) *FidState { return s.fids[ref] }

// NumFids reports the number of open file descriptions.
func (s *OsState) NumFids() int { return len(s.fids) }

// Pids returns every live pid in ascending order.
func (s *OsState) Pids() []types.Pid {
	out := make([]types.Pid, 0, len(s.procs))
	for pid := range s.procs {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone shares the state copy-on-write: O(1), no table or object is copied
// until one side writes. The source is frozen first, so cloning a frozen
// state is a pure read — which is what lets the checker fan os_trans out
// across goroutines over one shared frontier state.
func (s *OsState) Clone() *OsState {
	s.Freeze()
	stateClones.Add(1)
	return &OsState{
		H:       s.H.Clone(),
		fids:    s.fids,
		NextFid: s.NextFid,
		procs:   s.procs,
		groups:  s.groups,
		Spec:    s.Spec,
		durable: s.durable,
		pend:    s.pend,
		hv:      s.hv,
		hvOK:    s.hvOK,
	}
}

// Freeze relinquishes in-place mutation rights (here and in the heap) so
// every future write copies. Idempotent; a frozen state tolerates
// concurrent readers and cloners. It does not compute the hash — call
// Hash() first (still single-threaded) if concurrent readers will need it.
func (s *OsState) Freeze() {
	if s.frozen {
		return
	}
	s.H.Freeze()
	s.tok = nil
	s.ownsFids, s.ownsProcs, s.ownsGroups, s.ownsPend = false, false, false, false
	s.frozen = true
}

// InGroup reports whether uid is a member of gid (supplementary groups).
func (s *OsState) InGroup(uid types.Uid, gid types.Gid) bool {
	m, ok := s.groups[gid]
	return ok && m[uid]
}

// Fingerprint summarises the state for deduplication of the checker's state
// set. Two states with the same fingerprint are behaviourally equivalent
// for our purposes (the summary covers the tree, file contents, fds and
// process run states). The hot path uses Hash + StateEqual instead; this
// string rendering is the readable specification of the same contract, and
// the property tests hold the two implementations to it.
func (s *OsState) Fingerprint() string {
	var b []byte
	b = append(b, s.fsFingerprint()...)
	for _, pid := range s.Pids() {
		p := s.procs[pid]
		b = append(b, fmt.Sprintf("|p%d:%d,%d,%d,cwd%d,%v,run%d", pid, p.Euid, p.Egid, p.Umask, p.Cwd, p.CwdValid, p.Run)...)
		if p.Run == RsReturning && p.PendingRet != nil {
			b = append(b, p.PendingRet.Describe()...)
		}
		fds := make([]int, 0, len(p.Fds))
		for fd := range p.Fds {
			fds = append(fds, int(fd))
		}
		sort.Ints(fds)
		for _, fd := range fds {
			fid := s.fids[p.Fds[types.FD(fd)]]
			b = append(b, fmt.Sprintf(";fd%d=f%d,d%d,o%d", fd, fid.File, fid.Dir, fid.Offset)...)
		}
		dhs := make([]int, 0, len(p.Dhs))
		for dh := range p.Dhs {
			dhs = append(dhs, int(dh))
		}
		sort.Ints(dhs)
		for _, dh := range dhs {
			h := p.Dhs[types.DH(dh)]
			b = append(b, fmt.Sprintf(";dh%d=%d,m%v,y%v,r%v", dh, h.Dir, sortedKeys(h.Must), sortedKeys(h.May), sortedKeys(h.Returned))...)
		}
	}
	if s.durable != nil {
		// Crash mode: the durable image and pending-effect log are part of
		// the state's identity (two states with equal live trees but
		// different persistence histories admit different crash states).
		b = append(b, "|durable:"...)
		b = append(b, heapFingerprint(s.durable)...)
		for i, p := range s.pend {
			b = append(b, fmt.Sprintf("|pend%d:", i)...)
			b = append(b, heapFingerprint(p)...)
		}
	}
	return string(b)
}

func (s *OsState) fsFingerprint() string { return heapFingerprint(s.H) }

func heapFingerprint(h *state.Heap) string {
	var b []byte
	for _, dr := range h.SortedDirRefs() {
		d := h.Dir(dr)
		b = append(b, fmt.Sprintf("|d%d,p%d,%o,%d,%d:", dr, d.Parent, d.Perm, d.Uid, d.Gid)...)
		for _, n := range h.EntryNames(dr) {
			e := d.Entries[n]
			b = append(b, fmt.Sprintf("%s=%d/%d/%d;", n, e.Kind, e.File, e.Dir)...)
		}
	}
	for _, fr := range h.SortedFileRefs() {
		f := h.File(fr)
		b = append(b, fmt.Sprintf("|f%d,%d,%v,%o,%d,%d:%q", fr, f.Nlink, f.IsSymlink, f.Perm, f.Uid, f.Gid, f.Bytes)...)
	}
	return string(b)
}

func sortedKeys(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
