package osspec

// Property tests for the persistence layer (Spec.Crash): randomized
// clone-mutate-fsync walks assert that
//
//	(a) immediately after a sync barrier the crash-state set is a
//	    singleton whose tree equals the live image,
//	(b) every tree the walk observed since the last barrier is admitted
//	    as some crash state (no durable prefix is ever dropped), and
//	(c) the enumeration is invariant under the τ-closure worker count
//	    and the ConsTable on/off — the knobs the checker varies.
//
// Plus the O_SYNC regression pin: the flag used to parse and then do
// nothing; these tests fail if it goes dormant again.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/state"
	"repro/internal/types"
)

func crashSpec() types.Spec {
	sp := types.DefaultSpec()
	sp.Crash = true
	return sp
}

// treeContents renders the file tree reachable from the root — and only
// the tree: processes, descriptors and orphaned files are volatile, so
// two states with equal treeContents are crash-equivalent.
func treeContents(s *OsState) string {
	var b strings.Builder
	var walk func(d state.DirRef, path string)
	walk = func(d state.DirRef, path string) {
		dir := s.H.Dir(d)
		for _, name := range s.H.EntryNames(d) {
			e := dir.Entries[name]
			child := path + "/" + name
			switch e.Kind {
			case state.EntryDir:
				fmt.Fprintf(&b, "%s/\n", child)
				walk(e.Dir, child)
			case state.EntrySymlink:
				fmt.Fprintf(&b, "%s -> %q\n", child, string(s.H.File(e.File).Bytes))
			case state.EntryFile:
				fmt.Fprintf(&b, "%s = %q\n", child, string(s.H.File(e.File).Bytes))
			}
		}
	}
	walk(s.H.Root, "")
	return b.String()
}

// stepCmd runs one complete call → τ → return transition sequence,
// deterministically preferring a success return, and reports the chosen
// return value alongside the post-return state.
func stepCmd(t *testing.T, s *OsState, pid types.Pid, cmd types.Command) (*OsState, types.RetValue) {
	t.Helper()
	called := Trans(s, types.CallLabel{Pid: pid, Cmd: cmd})
	if len(called) == 0 {
		t.Fatalf("call %s not enabled", cmd)
	}
	cands := TauFor(called[0], pid)
	if len(cands) == 0 {
		t.Fatalf("no τ successors for %s", cmd)
	}
	for _, cand := range cands {
		rvs := ConcreteReturns(cand, pid)
		for _, rv := range rvs {
			if _, isErr := rv.(types.RvErr); isErr {
				continue
			}
			if after := Trans(cand, types.ReturnLabel{Pid: pid, Ret: rv}); len(after) > 0 {
				return after[0], rv
			}
		}
	}
	// No success anywhere: take the first allowed error return.
	rvs := ConcreteReturns(cands[0], pid)
	if len(rvs) == 0 {
		t.Fatalf("no allowed returns for %s", cmd)
	}
	after := Trans(cands[0], types.ReturnLabel{Pid: pid, Ret: rvs[0]})
	if len(after) == 0 {
		t.Fatalf("return %s not enabled for %s", rvs[0], cmd)
	}
	return after[0], rvs[0]
}

// crashContents collects the deduplicated tree renderings of every crash
// state, in enumeration order.
func crashContents(s *OsState) []string {
	var out []string
	for _, cs := range CrashStates(s) {
		out = append(out, treeContents(cs))
	}
	return out
}

// randomCrashWalk drives a randomized clone-mutate-fsync walk under the
// crash spec: mutating calls on a small path/fd vocabulary, interleaved
// with fsync/sync barriers. It maintains the test's own shadow trail —
// every distinct tree observed since the last barrier, oldest first —
// and checks properties (a) and (b) at every step.
func randomCrashWalk(t *testing.T, seed int64, steps int) *OsState {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cur := NewOsState(crashSpec())
	// Prologue: one open descriptor to write through, one O_SYNC-free.
	cur, _ = stepCmd(t, cur, InitialPid, types.Open{Path: "/w", Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true})
	trail := []string{treeContents(cur)}
	barrier := func() { trail = trail[len(trail)-1:] }
	if cur.PendingEffects() != 1 {
		// The open created /w: exactly one pending effect so far.
		t.Fatalf("after open: %d pending effects, want 1", cur.PendingEffects())
	}
	paths := []string{"/a", "/b", "/a/x", "/c"}
	for i := 0; i < steps; i++ {
		var cmd types.Command
		switch rng.Intn(10) {
		case 0:
			cmd = types.Mkdir{Path: paths[rng.Intn(len(paths))], Perm: 0o755}
		case 1:
			cmd = types.Open{Path: paths[rng.Intn(len(paths))], Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}
		case 2:
			cmd = types.Write{FD: 3, Data: []byte{byte('a' + i%26)}, Size: 1}
		case 3:
			cmd = types.Unlink{Path: paths[rng.Intn(len(paths))]}
		case 4:
			cmd = types.Rename{Src: paths[rng.Intn(len(paths))], Dst: paths[rng.Intn(len(paths))]}
		case 5:
			cmd = types.Symlink{Target: "/a", Linkpath: paths[rng.Intn(len(paths))]}
		case 6:
			cmd = types.Truncate{Path: "/w", Len: int64(rng.Intn(3))}
		case 7:
			cmd = types.Fsync{FD: 3}
		default:
			cmd = types.Sync{}
		}
		var rv types.RetValue
		cur, rv = stepCmd(t, cur, InitialPid, cmd)
		_, failed := rv.(types.RvErr)
		if tc := treeContents(cur); tc != trail[len(trail)-1] {
			trail = append(trail, tc)
		}
		switch cmd.(type) {
		case types.Fsync, types.Sync:
			if !failed {
				barrier()
				// Property (a): post-barrier the crash set is the singleton
				// live image, and nothing is pending.
				if n := cur.PendingEffects(); n != 0 {
					t.Fatalf("seed %d step %d: %d pending effects after %s", seed, i, n, cmd)
				}
				got := crashContents(cur)
				if len(got) != 1 {
					t.Fatalf("seed %d step %d: %d crash states after %s, want 1", seed, i, len(got), cmd)
				}
				if got[0] != treeContents(cur) {
					t.Fatalf("seed %d step %d: post-%s crash state differs from live image:\n%s\nvs\n%s",
						seed, i, cmd, got[0], treeContents(cur))
				}
			}
		}
		// Property (b): every tree the walk observed since the last barrier
		// must be admitted as some crash state.
		got := make(map[string]bool)
		for _, tc := range crashContents(cur) {
			got[tc] = true
		}
		for _, want := range trail {
			if !got[want] {
				t.Fatalf("seed %d step %d (%s): observed durable prefix not admitted as a crash state:\n%s",
					seed, i, cmd, want)
			}
		}
		// Structural bound: at most durable + one per pending effect.
		if len(got) > cur.PendingEffects()+1 {
			t.Fatalf("seed %d step %d: %d distinct crash states from %d pending effects",
				seed, i, len(got), cur.PendingEffects())
		}
	}
	return cur
}

func TestCrashWalkProperties(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		randomCrashWalk(t, seed, 40)
	}
}

// TestCrashStatesKnownWorkloads pins hand-computed crash-state sets for
// small workloads — independent of the pending-log plumbing, these are
// the sets the ordered-global-log model must produce.
func TestCrashStatesKnownWorkloads(t *testing.T) {
	s := NewOsState(crashSpec())
	if got := crashContents(s); len(got) != 1 || got[0] != "" {
		t.Fatalf("initial state crash set: %q, want one empty tree", got)
	}

	// mkdir /a; mkdir /b with no barrier: {}, {a}, {a,b}.
	s, _ = stepCmd(t, s, InitialPid, types.Mkdir{Path: "/a", Perm: 0o755})
	s, _ = stepCmd(t, s, InitialPid, types.Mkdir{Path: "/b", Perm: 0o755})
	got := crashContents(s)
	want := []string{"", "/a/\n", "/a/\n/b/\n"}
	if len(got) != len(want) {
		t.Fatalf("mkdir-mkdir crash set has %d states, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("crash state %d:\n%q\nwant\n%q", i, got[i], want[i])
		}
	}

	// sync; mkdir /c: {a,b}, {a,b,c} — the pre-barrier prefix states are gone.
	s, _ = stepCmd(t, s, InitialPid, types.Sync{})
	s, _ = stepCmd(t, s, InitialPid, types.Mkdir{Path: "/c", Perm: 0o755})
	got = crashContents(s)
	want = []string{"/a/\n/b/\n", "/a/\n/b/\n/c/\n"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("post-sync crash set: %q, want %q", got, want)
	}

	// Unlink of a synced file may un-happen: create+sync /f, unlink it —
	// the crash set holds both the file present and absent.
	s = NewOsState(crashSpec())
	s, _ = stepCmd(t, s, InitialPid, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
	s, _ = stepCmd(t, s, InitialPid, types.Write{FD: 3, Data: []byte("x"), Size: 1})
	s, _ = stepCmd(t, s, InitialPid, types.Close{FD: 3})
	s, _ = stepCmd(t, s, InitialPid, types.Sync{})
	s, _ = stepCmd(t, s, InitialPid, types.Unlink{Path: "/f"})
	got = crashContents(s)
	if len(got) != 2 || got[0] != "/f = \"x\"\n" || got[1] != "" {
		t.Fatalf("unlink crash set: %q", got)
	}
}

// TestCrashStateIsRemounted pins the remount semantics: fresh initial
// process only, no descriptors, no pending effects, and orphaned files
// (open but unlinked at the crash) swept.
func TestCrashStateIsRemounted(t *testing.T) {
	s := NewOsState(crashSpec())
	s, _ = stepCmd(t, s, InitialPid, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
	s, _ = stepCmd(t, s, InitialPid, types.Write{FD: 3, Data: []byte("x"), Size: 1})
	s, _ = stepCmd(t, s, InitialPid, types.Sync{})
	s, _ = stepCmd(t, s, InitialPid, types.Unlink{Path: "/f"})
	s, _ = stepCmd(t, s, InitialPid, types.Sync{})
	// The file is unlinked but still open: alive in the live state, an
	// orphan in every crash state.
	for _, cs := range CrashStates(s) {
		if n := cs.PendingEffects(); n != 0 {
			t.Fatalf("crash state has %d pending effects", n)
		}
		if len(cs.procs) != 1 || cs.procs[InitialPid] == nil {
			t.Fatalf("crash state processes: %v, want fresh pid %d only", len(cs.procs), InitialPid)
		}
		if len(cs.procs[InitialPid].Fds) != 0 {
			t.Fatal("crash state kept descriptors across the power cycle")
		}
		for _, fr := range cs.H.SortedFileRefs() {
			if f := cs.H.File(fr); f != nil && f.Nlink == 0 {
				t.Fatal("orphaned file survived the remount sweep")
			}
		}
		// A crash state is itself durable: crashing it again is a no-op.
		again := CrashStates(cs)
		if len(again) != 1 || treeContents(again[0]) != treeContents(cs) {
			t.Fatal("re-crashing a crash state changed it")
		}
	}
}

// TestCrashEnumerationKnobInvariance is property (c): the crash-state
// enumeration commutes with the checker's performance knobs — τ-closure
// worker count and the ConsTable — none of which may change results.
func TestCrashEnumerationKnobInvariance(t *testing.T) {
	// Build a state with genuinely concurrent in-flight calls, so the
	// τ-closure has real work: two extra processes with pending mkdirs.
	base := NewOsState(crashSpec())
	base, _ = stepCmd(t, base, InitialPid, types.Mkdir{Path: "/a", Perm: 0o755})
	for _, pid := range []types.Pid{2, 3} {
		created := Trans(base, types.CreateLabel{Pid: pid, Uid: 0, Gid: 0})
		if len(created) == 0 {
			t.Fatal("create not enabled")
		}
		base = created[0]
	}
	called := Trans(base, types.CallLabel{Pid: 2, Cmd: types.Mkdir{Path: "/p2", Perm: 0o755}})
	called = Trans(called[0], types.CallLabel{Pid: 3, Cmd: types.Mkdir{Path: "/p3", Perm: 0o755}})
	pre := called[0]

	enumerate := func(workers int, memo *ConsTable) []string {
		closure, _, _ := TauClosureWith([]*OsState{pre}, ClosureOpts{Dedup: true, Workers: workers, Memo: memo})
		var fps []string
		for _, s := range closure {
			for _, cs := range CrashStates(s) {
				fps = append(fps, cs.Fingerprint())
			}
		}
		sort.Strings(fps)
		return fps
	}

	ref := enumerate(1, nil)
	if len(ref) == 0 {
		t.Fatal("no crash states enumerated")
	}
	table := NewConsTable(0)
	for _, cfg := range []struct {
		name    string
		workers int
		memo    *ConsTable
	}{
		{"workers=4", 4, nil},
		{"memo cold", 1, table},
		{"memo warm", 1, table},
		{"workers=4 memo warm", 4, table},
	} {
		got := enumerate(cfg.workers, cfg.memo)
		if len(got) != len(ref) {
			t.Fatalf("%s: %d crash states, reference %d", cfg.name, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: crash state %d fingerprint diverged:\n%s\nvs\n%s", cfg.name, i, got[i], ref[i])
			}
		}
	}
}

// TestOSyncWritesSelfFlush is the dormant-flag regression pin: O_SYNC was
// parsed into OpenFlags and then ignored everywhere. A write through an
// O_SYNC descriptor must now act as its own barrier — if the flag goes
// dormant again, the with/without runs below become indistinguishable and
// both subtests fail.
func TestOSyncWritesSelfFlush(t *testing.T) {
	run := func(flags types.OpenFlags) *OsState {
		s := NewOsState(crashSpec())
		s, _ = stepCmd(t, s, InitialPid, types.Open{Path: "/f", Flags: flags, Perm: 0o644, HasPerm: true})
		s, _ = stepCmd(t, s, InitialPid, types.Sync{})
		s, rv := stepCmd(t, s, InitialPid, types.Write{FD: 3, Data: []byte("x"), Size: 1})
		if n, ok := rv.(types.RvNum); !ok || n.N != 1 {
			t.Fatalf("write returned %s", rv)
		}
		return s
	}
	withSync := run(types.OCreat | types.OWronly | types.OSync)
	if n := withSync.PendingEffects(); n != 0 {
		t.Fatalf("O_SYNC write left %d pending effects, want 0 (flag dormant again?)", n)
	}
	if got := crashContents(withSync); len(got) != 1 || got[0] != "/f = \"x\"\n" {
		t.Fatalf("O_SYNC crash set: %q, want exactly the written file", got)
	}
	without := run(types.OCreat | types.OWronly)
	if n := without.PendingEffects(); n == 0 {
		t.Fatal("plain write self-flushed: O_SYNC semantics leaked to every descriptor")
	}
	if got := crashContents(without); len(got) != 2 {
		t.Fatalf("plain-write crash set: %q, want durable-empty plus written", got)
	}
}

// TestCrashTrackingOffByDefault pins the golden-fixture safety property:
// without Spec.Crash nothing persistence-related exists — no durable
// image, no crash states, and fingerprints carry no persistence suffix.
func TestCrashTrackingOffByDefault(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s, _ = stepCmd(t, s, InitialPid, types.Mkdir{Path: "/a", Perm: 0o755})
	if s.DurableImage() != nil || s.PendingEffects() != 0 {
		t.Fatal("crash tracking active without Spec.Crash")
	}
	if CrashStates(s) != nil {
		t.Fatal("CrashStates enumerated without Spec.Crash")
	}
	if strings.Contains(s.Fingerprint(), "durable") {
		t.Fatal("fingerprint carries persistence state outside crash mode")
	}
}
