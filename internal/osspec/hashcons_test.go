package osspec

// Property tests for hash-consed state identity: across randomized
// clone-and-mutate walks of the transition system,
//
//	StateEqual(a, b)  ⇔  a.Fingerprint() == b.Fingerprint()
//	fingerprints equal ⇒ hashes equal
//
// so the hash/equality engine merges exactly the states the legacy
// fingerprint-string deduplication merged — the invariant the checker's
// byte-identical-output guarantee rests on.

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// randomWalkStates drives one random command walk and returns every state
// it passed through: pre-τ (calling), candidate (returning, with pending
// patterns of all kinds) and post-return states, plus multi-process
// create/destroy branches — a deliberately diverse population.
func randomWalkStates(rng *rand.Rand, steps int) []*OsState {
	cmds := func() types.Command {
		paths := []string{"/a", "/b", "/a/x", "/a/y", "/missing/z", "/s"}
		p := paths[rng.Intn(len(paths))]
		switch rng.Intn(12) {
		case 0:
			return types.Mkdir{Path: p, Perm: 0o755}
		case 1:
			return types.Open{Path: p, Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true}
		case 2:
			return types.Write{FD: types.FD(3 + rng.Intn(3)), Data: []byte("payload"), Size: 7}
		case 3:
			return types.Read{FD: types.FD(3 + rng.Intn(3)), Size: 4}
		case 4:
			return types.Unlink{Path: p}
		case 5:
			return types.Rename{Src: "/a", Dst: "/b"}
		case 6:
			return types.Chmod{Path: p, Perm: 0o700}
		case 7:
			return types.Symlink{Target: "/a", Linkpath: p}
		case 8:
			return types.Opendir{Path: "/a"}
		case 9:
			return types.Readdir{DH: types.DH(1)}
		case 10:
			return types.Lseek{FD: types.FD(3 + rng.Intn(3)), Off: int64(rng.Intn(5)), Whence: types.SeekSet}
		default:
			return types.Close{FD: types.FD(3 + rng.Intn(4))}
		}
	}
	pool := []*OsState{NewOsState(types.DefaultSpec())}
	cur := pool[0]
	nextPid := types.Pid(2)
	for i := 0; i < steps; i++ {
		if rng.Intn(8) == 0 {
			if created := Trans(cur, types.CreateLabel{Pid: nextPid, Uid: 0, Gid: 0}); len(created) > 0 {
				nextPid++
				cur = created[0]
				pool = append(pool, cur)
				continue
			}
		}
		pid := InitialPid
		if nextPid > 2 && rng.Intn(3) == 0 {
			pid = types.Pid(2 + rng.Intn(int(nextPid)-2))
		}
		called := Trans(cur, types.CallLabel{Pid: pid, Cmd: cmds()})
		if len(called) == 0 {
			continue
		}
		pool = append(pool, called...)
		cands := TauFor(called[0], pid)
		if len(cands) == 0 {
			cur = called[0]
			continue
		}
		pool = append(pool, cands...)
		cand := cands[rng.Intn(len(cands))]
		rvs := ConcreteReturns(cand, pid)
		if len(rvs) == 0 {
			continue
		}
		after := Trans(cand, types.ReturnLabel{Pid: pid, Ret: rvs[rng.Intn(len(rvs))]})
		if len(after) == 0 {
			continue
		}
		cur = after[0]
		pool = append(pool, cur)
	}
	return pool
}

// TestHashEqualityMatchesFingerprintContract compares every pair in the
// random pool: equality and hashing must agree with the fingerprint
// rendering in both directions.
func TestHashEqualityMatchesFingerprintContract(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pool := randomWalkStates(rng, 25)
		fps := make([]string, len(pool))
		for i, s := range pool {
			fps[i] = s.Fingerprint()
		}
		for i := 0; i < len(pool); i++ {
			for j := i; j < len(pool); j++ {
				fpEq := fps[i] == fps[j]
				eq := StateEqual(pool[i], pool[j])
				if fpEq != eq {
					t.Fatalf("seed %d: StateEqual=%v but fingerprint-equal=%v\nA: %s\nB: %s",
						seed, eq, fpEq, fps[i], fps[j])
				}
				if fpEq && pool[i].Hash() != pool[j].Hash() {
					t.Fatalf("seed %d: fingerprint-equal states hash %x vs %x\nfp: %s",
						seed, pool[i].Hash(), pool[j].Hash(), fps[i])
				}
			}
		}
	}
}

// TestHashMemoNeverGoesStale re-derives each pooled state's hash with a
// cold memo and compares: a mutation path that forgot to invalidate the
// memoised hash would surface here.
func TestHashMemoNeverGoesStale(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, s := range randomWalkStates(rng, 40) {
		memo := s.Hash()
		s.hvOK = false
		if cold := s.Hash(); cold != memo {
			t.Fatalf("stale hash memo: %x vs cold %x\nstate: %s", memo, cold, s.Fingerprint())
		}
	}
}

// TestCloneMutatePairs pins the clone/mutate contract directly: a clone is
// indistinguishable from its source, and a mutation separates the pair
// under fingerprint, equality and (with overwhelming probability) hash.
func TestCloneMutatePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 10; round++ {
		pool := randomWalkStates(rng, 15)
		s := pool[rng.Intn(len(pool))]
		c := s.Clone()
		if !StateEqual(s, c) || s.Hash() != c.Hash() || s.Fingerprint() != c.Fingerprint() {
			t.Fatal("clone distinguishable from source")
		}
		// Mutate the clone through a real transition (the only supported
		// mutation path) and require the pair to separate consistently.
		called := Trans(c, types.CallLabel{Pid: InitialPid, Cmd: types.Mkdir{Path: "/zz", Perm: 0o700}})
		if len(called) == 0 {
			continue
		}
		m := called[0]
		fpSep := m.Fingerprint() != s.Fingerprint()
		if !fpSep {
			t.Fatal("call label failed to change the fingerprint")
		}
		if StateEqual(m, s) {
			t.Fatal("mutated clone still StateEqual to source")
		}
		if m.Hash() == s.Hash() {
			t.Fatalf("mutated clone collided with source hash %x", s.Hash())
		}
		// And the source must be untouched by the clone's mutation.
		if s.Fingerprint() != c.Fingerprint() {
			t.Fatal("mutating a transition successor leaked into the source")
		}
	}
}

// TestStateSetMergesExactlyFingerprintDuplicates checks the set facade:
// adding the pool twice keeps exactly one representative per fingerprint.
func TestStateSetMergesExactlyFingerprintDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pool := randomWalkStates(rng, 30)
	distinct := make(map[string]bool)
	for _, s := range pool {
		distinct[s.Fingerprint()] = true
	}
	set := NewStateSet(len(pool))
	for _, s := range pool {
		set.Add(s)
	}
	for _, s := range pool {
		if set.Add(s.Clone()) {
			t.Fatal("a clone of a pooled state was not recognised as duplicate")
		}
	}
	if set.Len() != len(distinct) {
		t.Fatalf("set kept %d states, fingerprint count is %d", set.Len(), len(distinct))
	}
}
