package osspec

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/state"
	"repro/internal/types"
)

// Pending describes the set of return values a process in RsReturning may
// observe, together with any return-value-dependent state update. This is
// the "continuation" refinement the paper describes for large reads and
// writes (§3): rather than enumerating one next state per byte count, the
// state carries a pattern abstracted on the return value; matching the
// observed value finalises a single next state.
type Pending interface {
	// Match reports whether rv is an allowed return.
	Match(s *OsState, rv types.RetValue) bool
	// Finalize applies the rv-dependent effects to s (offset advances,
	// readdir bookkeeping). Called only after a successful Match on a
	// clone of the state.
	Finalize(s *OsState, rv types.RetValue)
	// Describe renders the allowed values for diagnostics ("allowed are
	// only: ...", Fig 4).
	Describe() string
}

// PendingExact allows exactly one return value with no further effects
// (those were already applied when the candidate state was built).
type PendingExact struct{ Rv types.RetValue }

// Match implements Pending.
func (p PendingExact) Match(_ *OsState, rv types.RetValue) bool { return p.Rv.Equal(rv) }

// Finalize implements Pending.
func (p PendingExact) Finalize(*OsState, types.RetValue) {}

// Describe implements Pending.
func (p PendingExact) Describe() string { return p.Rv.String() }

// PendingAny allows any return value: the POSIX special states for
// undefined / unspecified / implementation-defined behaviour (§1.1). The
// state is conservatively left unchanged.
type PendingAny struct{ Why string }

// Match implements Pending.
func (PendingAny) Match(*OsState, types.RetValue) bool { return true }

// Finalize implements Pending.
func (PendingAny) Finalize(*OsState, types.RetValue) {}

// Describe implements Pending.
func (p PendingAny) Describe() string { return "anything (" + p.Why + ")" }

// PendingReadPrefix allows RV_bytes(b) for any prefix b of Data — the
// paper's short-read looseness — advancing the description offset by the
// observed length when Seq is set (read vs pread).
type PendingReadPrefix struct {
	Pid  types.Pid
	Fid  FidRef
	Data []byte
	Seq  bool // advance the offset (read, not pread)
}

// Match implements Pending. A zero-length read of a non-empty range is not
// allowed (it would signal EOF); zero is allowed when Data is empty.
func (p PendingReadPrefix) Match(_ *OsState, rv types.RetValue) bool {
	b, ok := rv.(types.RvBytes)
	if !ok {
		return false
	}
	if len(b.Data) > len(p.Data) {
		return false
	}
	if len(b.Data) == 0 {
		return len(p.Data) == 0
	}
	return bytes.Equal(b.Data, p.Data[:len(b.Data)])
}

// Finalize implements Pending.
func (p PendingReadPrefix) Finalize(s *OsState, rv types.RetValue) {
	b := rv.(types.RvBytes)
	if p.Seq {
		if fid := s.mutFid(p.Fid); fid != nil {
			fid.Offset += int64(len(b.Data))
		}
	}
}

// Describe implements Pending.
func (p PendingReadPrefix) Describe() string {
	return fmt.Sprintf("RV_bytes(any non-empty prefix of %q)", string(p.Data))
}

// PendingWriteUpTo allows RV_num(n) for 1 ≤ n ≤ len(Data) (or exactly 0 for
// empty writes) — the short-write looseness — writing the n-byte prefix at
// the chosen position and advancing the offset for sequential writes.
type PendingWriteUpTo struct {
	Pid    types.Pid
	Fid    FidRef
	Data   []byte
	At     int64 // write position; -1 = append to end of file
	Seq    bool  // advance the offset (write, not pwrite)
	SetOff bool  // for append mode, reposition offset at new EOF
}

// Match implements Pending.
func (p PendingWriteUpTo) Match(_ *OsState, rv types.RetValue) bool {
	n, ok := rv.(types.RvNum)
	if !ok {
		return false
	}
	if len(p.Data) == 0 {
		return n.N == 0
	}
	return n.N >= 1 && n.N <= int64(len(p.Data))
}

// Finalize implements Pending.
func (p PendingWriteUpTo) Finalize(s *OsState, rv types.RetValue) {
	applyWriteEffect(s, p.Fid, p.Data, rv.(types.RvNum).N, p.At, p.Seq)
}

// applyWriteEffect writes the first n bytes of data at position at (-1 =
// append to the current EOF) through the open description fid, advancing
// its offset for sequential writes. Shared by the complete-write τ effect
// and the short-write return-time continuation.
func applyWriteEffect(s *OsState, fidRef FidRef, data []byte, n, at int64, seq bool) {
	if n == 0 {
		return // a zero-length write has no effect (it does not extend)
	}
	fid := s.fids[fidRef]
	if fid == nil {
		return
	}
	f := s.H.MutFile(fid.File)
	if f == nil {
		return
	}
	if at < 0 {
		at = int64(len(f.Bytes))
	}
	end := at + n
	if int64(len(f.Bytes)) < end {
		f.Bytes = append(f.Bytes, make([]byte, end-int64(len(f.Bytes)))...)
	}
	copy(f.Bytes[at:end], data[:n])
	if seq {
		s.mutFid(fidRef).Offset = end
	}
	if fid.Sync {
		// O_SYNC: the write is durable before the call returns. Note the
		// content effect above must land first so the flushed image holds
		// it; in the global-barrier model this also flushes any older
		// pending effects (see persist.go).
		s.persistNote()
		s.flushPending()
	}
}

// Describe implements Pending.
func (p PendingWriteUpTo) Describe() string {
	if len(p.Data) == 0 {
		return "RV_num(0)"
	}
	return fmt.Sprintf("RV_num(1..%d)", len(p.Data))
}

// PendingReaddir allows RV_readdir(n) for any n in the handle's must/may
// sets, or RV_readdir_end exactly when the must set is empty (§3,
// "Directory listing nondeterminism by hand-crafted specification"). The
// handle is refreshed against the directory's current contents on each
// call, folding concurrent additions/removals into the may set.
type PendingReaddir struct {
	Pid types.Pid
	DH  types.DH
}

func (p PendingReaddir) handle(s *OsState) *DirHandleState {
	proc, ok := s.procs[p.Pid]
	if !ok {
		return nil
	}
	return proc.Dhs[p.DH]
}

// Match implements Pending.
func (p PendingReaddir) Match(s *OsState, rv types.RetValue) bool {
	h := p.handle(s)
	if h == nil {
		return false
	}
	must, may := refreshedSets(s, h)
	switch v := rv.(type) {
	case types.RvDirent:
		if v.End {
			return len(must) == 0
		}
		return must[v.Name] || may[v.Name]
	}
	return false
}

// Finalize implements Pending.
func (p PendingReaddir) Finalize(s *OsState, rv types.RetValue) {
	h := s.mutDh(p.Pid, p.DH)
	if h == nil {
		return
	}
	must, may := refreshedSets(s, h)
	h.Must, h.May = must, may
	h.LastSeen = currentEntries(s, h.Dir)
	v := rv.(types.RvDirent)
	if v.End {
		return
	}
	h.Returned[v.Name] = true
	delete(h.Must, v.Name)
	delete(h.May, v.Name)
}

// Describe implements Pending.
func (p PendingReaddir) Describe() string {
	return fmt.Sprintf("RV_readdir(entry of DH %d) or RV_readdir_end", int(p.DH))
}

// DescribeAgainst renders the concrete allowed entries for diagnostics.
func (p PendingReaddir) DescribeAgainst(s *OsState) string {
	h := p.handle(s)
	if h == nil {
		return p.Describe()
	}
	must, may := refreshedSets(s, h)
	var names []string
	for n := range must {
		names = append(names, fmt.Sprintf("%q", n))
	}
	for n := range may {
		names = append(names, fmt.Sprintf("%q?", n))
	}
	sort.Strings(names)
	opts := "RV_readdir{" + strings.Join(names, ", ") + "}"
	if len(must) == 0 {
		opts += " or RV_readdir_end"
	}
	return opts
}

// currentEntries snapshots the names now present in dir.
func currentEntries(s *OsState, dir state.DirRef) map[string]bool {
	m := make(map[string]bool)
	for _, n := range s.H.EntryNames(dir) {
		m[n] = true
	}
	return m
}

// refreshedSets folds directory changes since LastSeen into fresh must/may
// sets, per the paper's semantics: unreturned entries that disappeared move
// from must to may (they may still be returned); new entries appear in may;
// entries stable since the snapshot stay in must.
func refreshedSets(s *OsState, h *DirHandleState) (must, may map[string]bool) {
	cur := currentEntries(s, h.Dir)
	must = cloneSet(h.Must)
	may = cloneSet(h.May)
	for n := range h.LastSeen {
		if !cur[n] {
			if must[n] {
				delete(must, n)
				may[n] = true
			}
		}
	}
	for n := range cur {
		if !h.LastSeen[n] && !must[n] && !h.Returned[n] {
			may[n] = true
		}
	}
	// An entry that was returned and later re-added may be returned again.
	for n := range cur {
		if h.Returned[n] && !h.LastSeen[n] {
			may[n] = true
		}
	}
	return must, may
}
