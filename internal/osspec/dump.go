package osspec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/state"
	"repro/internal/types"
)

// Dump renders a human-readable description of one model state — the
// backing of the model-debugging tool of §2, which "takes a trace and
// produces a description of the real-world states that were being tracked
// by SibylFS at every step".
func (s *OsState) Dump() string {
	var b strings.Builder
	b.WriteString("file system:\n")
	s.dumpDir(&b, s.H.Root, "/", 1)

	pids := make([]int, 0, len(s.procs))
	for pid := range s.procs {
		pids = append(pids, int(pid))
	}
	sort.Ints(pids)
	for _, pid := range pids {
		p := s.procs[types.Pid(pid)]
		fmt.Fprintf(&b, "process %d: uid=%d gid=%d umask=%04o cwd=dir#%d", pid, p.Euid, p.Egid, p.Umask, p.Cwd)
		switch p.Run {
		case RsRunning:
			b.WriteString(" [running]")
		case RsCalling:
			fmt.Fprintf(&b, " [calling %s]", p.PendingCmd)
		case RsReturning:
			fmt.Fprintf(&b, " [returning: %s]", p.PendingRet.Describe())
		}
		b.WriteByte('\n')
		fds := make([]int, 0, len(p.Fds))
		for fd := range p.Fds {
			fds = append(fds, int(fd))
		}
		sort.Ints(fds)
		for _, fd := range fds {
			fid := s.fids[p.Fds[types.FD(fd)]]
			if fid.IsDir {
				fmt.Fprintf(&b, "  fd %d -> dir#%d\n", fd, fid.Dir)
			} else {
				fmt.Fprintf(&b, "  fd %d -> file#%d off=%d append=%v rw=%v%v\n",
					fd, fid.File, fid.Offset, fid.Append, fid.Readable, fid.Writable)
			}
		}
		dhs := make([]int, 0, len(p.Dhs))
		for dh := range p.Dhs {
			dhs = append(dhs, int(dh))
		}
		sort.Ints(dhs)
		for _, dh := range dhs {
			h := p.Dhs[types.DH(dh)]
			fmt.Fprintf(&b, "  dh %d -> dir#%d must=%v may=%v returned=%v\n",
				dh, h.Dir, sortedKeys(h.Must), sortedKeys(h.May), sortedKeys(h.Returned))
		}
	}
	return b.String()
}

func (s *OsState) dumpDir(b *strings.Builder, d state.DirRef, path string, depth int) {
	if depth > 16 {
		fmt.Fprintf(b, "%s... (depth limit)\n", strings.Repeat("  ", depth))
		return
	}
	dir := s.H.Dir(d)
	if dir == nil {
		return
	}
	fmt.Fprintf(b, "  %-30s dir#%d mode=%04o uid=%d gid=%d\n", path, d, dir.Perm, dir.Uid, dir.Gid)
	for _, name := range s.H.EntryNames(d) {
		e := dir.Entries[name]
		child := path + name
		switch e.Kind {
		case state.EntryDir:
			s.dumpDir(b, e.Dir, child+"/", depth+1)
		case state.EntrySymlink:
			f := s.H.File(e.File)
			fmt.Fprintf(b, "  %-30s symlink#%d -> %q\n", child, e.File, string(f.Bytes))
		case state.EntryFile:
			f := s.H.File(e.File)
			fmt.Fprintf(b, "  %-30s file#%d %d bytes mode=%04o nlink=%d\n",
				child, e.File, len(f.Bytes), f.Perm, f.Nlink)
		}
	}
}
