// Package osspec is the paper's "POSIX API module" (§5): it defines the
// labelled transition system whose states model the operating system —
// processes, file-descriptor tables, open file descriptions, directory
// handles, users and groups — and whose transition function os_trans maps a
// state and a label to a finite set of next states. It glues path
// resolution and the file-system module together and owns all per-process
// data structures.
//
// States are copy-on-write: Clone is O(1) and a transition copies only the
// tables and objects it actually writes (via the mut* accessors in cow.go),
// so the checker can carry hundreds of candidate states through a τ-closure
// without deep-copying the world per successor. State identity is decided
// by a memoised 64-bit hash (hashcons.go) confirmed by StateEqual — the
// same observational contract as the legacy Fingerprint string, which is
// retained as the executable specification of that contract.
package osspec
