package osspec

import (
	"testing"

	"repro/internal/types"
)

func callRet(t *testing.T, s *OsState, pid types.Pid, cmd types.Command) ([]*OsState, []types.RetValue) {
	t.Helper()
	called := Trans(s, types.CallLabel{Pid: pid, Cmd: cmd})
	if len(called) != 1 {
		t.Fatalf("call %v: %d successors", cmd, len(called))
	}
	cands := TauFor(called[0], pid)
	if len(cands) == 0 {
		t.Fatalf("tau %v: no successors", cmd)
	}
	var rvs []types.RetValue
	for _, c := range cands {
		rvs = append(rvs, ConcreteReturns(c, pid)...)
	}
	return cands, rvs
}

// run drives one command to completion, choosing the first successful
// return (or the first return at all), and returns the advanced state.
func run(t *testing.T, s *OsState, pid types.Pid, cmd types.Command) (*OsState, types.RetValue) {
	t.Helper()
	cands, _ := callRet(t, s, pid, cmd)
	var best *OsState
	var bestRv types.RetValue
	for _, c := range cands {
		for _, rv := range ConcreteReturns(c, pid) {
			after := Trans(c, types.ReturnLabel{Pid: pid, Ret: rv})
			if len(after) == 0 {
				continue
			}
			if bestRv == nil || (types.IsError(bestRv) && !types.IsError(rv)) {
				best, bestRv = after[0], rv
			}
		}
	}
	if best == nil {
		t.Fatalf("command %v produced no completable return", cmd)
	}
	return best, bestRv
}

func TestCallBlocksProcess(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	called := Trans(s, types.CallLabel{Pid: 1, Cmd: types.Stat{Path: "/"}})
	if len(called) != 1 {
		t.Fatal("call failed")
	}
	// A second call from the same (now blocked) process is not allowed.
	if got := Trans(called[0], types.CallLabel{Pid: 1, Cmd: types.Stat{Path: "/"}}); len(got) != 0 {
		t.Error("blocked process accepted a second call")
	}
	// But a different process may call (receptivity).
	created := Trans(called[0], types.CreateLabel{Pid: 2, Uid: 0, Gid: 0})
	if len(created) != 1 {
		t.Fatal("create failed")
	}
	if got := Trans(created[0], types.CallLabel{Pid: 2, Cmd: types.Stat{Path: "/"}}); len(got) != 1 {
		t.Error("receptivity violated")
	}
}

func TestTauProcessesAnyCallingProcess(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s2 := Trans(s, types.CreateLabel{Pid: 2, Uid: 0, Gid: 0})[0]
	a := Trans(s2, types.CallLabel{Pid: 1, Cmd: types.Mkdir{Path: "/a", Perm: 0o755}})[0]
	b := Trans(a, types.CallLabel{Pid: 2, Cmd: types.Mkdir{Path: "/b", Perm: 0o755}})[0]
	// τ may process either pending call: two distinct successors.
	succ := Trans(b, types.TauLabel{})
	if len(succ) != 2 {
		t.Fatalf("tau successors = %d, want 2 (concurrency nondeterminism)", len(succ))
	}
}

func TestMkdirThroughLTS(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s, rv := run(t, s, 1, types.Mkdir{Path: "/d", Perm: 0o777})
	if !rv.Equal(types.RvNone{}) {
		t.Fatalf("mkdir returned %v", rv)
	}
	if _, ok := s.H.Lookup(s.H.Root, "d"); !ok {
		t.Fatal("directory missing after return")
	}
}

func TestOpenReadWriteLifecycle(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s, rv := run(t, s, 1, types.Open{Path: "/f", Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true})
	fd := rv.(types.RvFD).FD
	if fd != 3 {
		t.Fatalf("first fd = %d, want 3", fd)
	}
	s, rv = run(t, s, 1, types.Write{FD: fd, Data: []byte("hello"), Size: 5})
	if n := rv.(types.RvNum).N; n != 5 {
		t.Fatalf("write returned %d", n)
	}
	s, rv = run(t, s, 1, types.Lseek{FD: fd, Off: 0, Whence: types.SeekSet})
	if n := rv.(types.RvNum).N; n != 0 {
		t.Fatalf("lseek returned %d", n)
	}
	s, rv = run(t, s, 1, types.Read{FD: fd, Size: 5})
	if b := rv.(types.RvBytes); string(b.Data) != "hello" {
		t.Fatalf("read returned %q", b.Data)
	}
	s, rv = run(t, s, 1, types.Close{FD: fd})
	if !rv.Equal(types.RvNone{}) {
		t.Fatalf("close returned %v", rv)
	}
	// After close the descriptor is dead.
	_, rvs := callRet(t, s, 1, types.Read{FD: fd, Size: 1})
	if len(rvs) != 1 || !rvs[0].Equal(types.RvErr{Err: types.EBADF}) {
		t.Fatalf("read after close allows %v", rvs)
	}
}

func TestShortReadLooseness(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s, rv := run(t, s, 1, types.Open{Path: "/f", Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true})
	fd := rv.(types.RvFD).FD
	s, _ = run(t, s, 1, types.Write{FD: fd, Data: []byte("abcdef"), Size: 6})
	s, _ = run(t, s, 1, types.Lseek{FD: fd, Off: 0, Whence: types.SeekSet})
	// The model must accept ANY non-empty prefix.
	called := Trans(s, types.CallLabel{Pid: 1, Cmd: types.Read{FD: fd, Size: 6}})[0]
	cand := TauFor(called, 1)[0]
	for _, data := range []string{"a", "abc", "abcdef"} {
		after := Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvBytes{Data: []byte(data)}})
		if len(after) != 1 {
			t.Errorf("prefix %q not accepted", data)
			continue
		}
		// The offset advanced by exactly the observed amount.
		p := after[0].procs[1]
		fid := after[0].fids[p.Fds[fd]]
		if fid.Offset != int64(len(data)) {
			t.Errorf("offset after %q = %d", data, fid.Offset)
		}
	}
	// Wrong data and empty reads are rejected.
	for _, bad := range []types.RetValue{
		types.RvBytes{Data: []byte("x")},
		types.RvBytes{Data: nil},
		types.RvNum{N: 3},
	} {
		if after := Trans(cand, types.ReturnLabel{Pid: 1, Ret: bad}); len(after) != 0 {
			t.Errorf("bad return %v accepted", bad)
		}
	}
}

func TestShortWriteLooseness(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s, rv := run(t, s, 1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
	fd := rv.(types.RvFD).FD
	called := Trans(s, types.CallLabel{Pid: 1, Cmd: types.Write{FD: fd, Data: []byte("abcd"), Size: 4}})[0]
	// τ branches into the complete write (effect applied at the τ point)
	// and the short-write continuation (effect at return-match time); the
	// union of candidates must allow exactly n ∈ 1..4.
	cands := TauFor(called, 1)
	trans := func(rv types.RetValue) []*OsState {
		var after []*OsState
		for _, cand := range cands {
			after = append(after, Trans(cand, types.ReturnLabel{Pid: 1, Ret: rv})...)
		}
		return after
	}
	for n := int64(1); n <= 4; n++ {
		after := trans(types.RvNum{N: n})
		if len(after) != 1 {
			t.Errorf("write of %d bytes allowed by %d candidate states, want 1", n, len(after))
			continue
		}
		p := after[0].procs[1]
		fid := after[0].fids[p.Fds[fd]]
		f := after[0].H.File(fid.File)
		if int64(len(f.Bytes)) != n {
			t.Errorf("file length after write(%d) = %d", n, len(f.Bytes))
		}
	}
	if after := trans(types.RvNum{N: 0}); len(after) != 0 {
		t.Error("zero write of non-empty data accepted")
	}
	if after := trans(types.RvNum{N: 5}); len(after) != 0 {
		t.Error("over-long write accepted")
	}
}

func TestReaddirMustMay(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s, _ = run(t, s, 1, types.Mkdir{Path: "/d", Perm: 0o755})
	for _, n := range []string{"a", "b", "c"} {
		var rv types.RetValue
		s, rv = run(t, s, 1, types.Open{Path: "/d/" + n, Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
		s, _ = run(t, s, 1, types.Close{FD: rv.(types.RvFD).FD})
	}
	s, rv := run(t, s, 1, types.Opendir{Path: "/d"})
	dh := rv.(types.RvDH).DH

	// Any of a,b,c may come first; end is not allowed while must is
	// non-empty.
	called := Trans(s, types.CallLabel{Pid: 1, Cmd: types.Readdir{DH: dh}})[0]
	cand := TauFor(called, 1)[0]
	for _, n := range []string{"a", "b", "c"} {
		if len(Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{Name: n}})) != 1 {
			t.Errorf("entry %q rejected", n)
		}
	}
	if len(Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{End: true}})) != 0 {
		t.Error("premature end-of-directory accepted")
	}
	if len(Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{Name: "zz"}})) != 0 {
		t.Error("phantom entry accepted")
	}

	// Take "b"; it must not be returned again.
	s = Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{Name: "b"}})[0]
	called = Trans(s, types.CallLabel{Pid: 1, Cmd: types.Readdir{DH: dh}})[0]
	cand = TauFor(called, 1)[0]
	if len(Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{Name: "b"}})) != 0 {
		t.Error("entry returned twice")
	}
}

func TestReaddirConcurrentDeletion(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s, _ = run(t, s, 1, types.Mkdir{Path: "/d", Perm: 0o755})
	for _, n := range []string{"a", "b"} {
		var rv types.RetValue
		s, rv = run(t, s, 1, types.Open{Path: "/d/" + n, Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
		s, _ = run(t, s, 1, types.Close{FD: rv.(types.RvFD).FD})
	}
	s, rv := run(t, s, 1, types.Opendir{Path: "/d"})
	dh := rv.(types.RvDH).DH

	// Delete "a" before any readdir: it becomes may — both returning it
	// and skipping to only "b" are allowed.
	s, _ = run(t, s, 1, types.Unlink{Path: "/d/a"})
	called := Trans(s, types.CallLabel{Pid: 1, Cmd: types.Readdir{DH: dh}})[0]
	cand := TauFor(called, 1)[0]
	if len(Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{Name: "a"}})) != 1 {
		t.Error("deleted-but-unreturned entry must be allowed (may set)")
	}
	sB := Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{Name: "b"}})
	if len(sB) != 1 {
		t.Fatal("remaining entry rejected")
	}
	// After "b", end is allowed (must is empty; "a" is only may).
	called = Trans(sB[0], types.CallLabel{Pid: 1, Cmd: types.Readdir{DH: dh}})[0]
	cand = TauFor(called, 1)[0]
	if len(Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{End: true}})) != 1 {
		t.Error("end not allowed though must is drained")
	}
	// ... and "a" may also still be returned.
	if len(Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{Name: "a"}})) != 1 {
		t.Error("may entry rejected after drain")
	}
}

func TestReaddirAddition(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s, _ = run(t, s, 1, types.Mkdir{Path: "/d", Perm: 0o755})
	s, rv := run(t, s, 1, types.Opendir{Path: "/d"})
	dh := rv.(types.RvDH).DH
	// Add an entry after opendir: returning it and not returning it are
	// both allowed.
	s, rv = run(t, s, 1, types.Open{Path: "/d/new", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
	s, _ = run(t, s, 1, types.Close{FD: rv.(types.RvFD).FD})
	called := Trans(s, types.CallLabel{Pid: 1, Cmd: types.Readdir{DH: dh}})[0]
	cand := TauFor(called, 1)[0]
	if len(Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{Name: "new"}})) != 1 {
		t.Error("added entry not in may set")
	}
	if len(Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{End: true}})) != 1 {
		t.Error("end not allowed though must is empty")
	}
}

func TestRewinddirResets(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s, _ = run(t, s, 1, types.Mkdir{Path: "/d", Perm: 0o755})
	s, rv := run(t, s, 1, types.Open{Path: "/d/a", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
	s, _ = run(t, s, 1, types.Close{FD: rv.(types.RvFD).FD})
	s, rv = run(t, s, 1, types.Opendir{Path: "/d"})
	dh := rv.(types.RvDH).DH
	s, rv = run(t, s, 1, types.Readdir{DH: dh})
	if d := rv.(types.RvDirent); d.End || d.Name != "a" {
		t.Fatalf("first readdir = %v", rv)
	}
	s, _ = run(t, s, 1, types.Rewinddir{DH: dh})
	// After rewind, "a" must be returned again.
	called := Trans(s, types.CallLabel{Pid: 1, Cmd: types.Readdir{DH: dh}})[0]
	cand := TauFor(called, 1)[0]
	if len(Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{End: true}})) != 0 {
		t.Error("end accepted right after rewind of non-empty dir")
	}
	if len(Trans(cand, types.ReturnLabel{Pid: 1, Ret: types.RvDirent{Name: "a"}})) != 1 {
		t.Error("entry rejected after rewind")
	}
}

func TestUmaskAffectsCreation(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s, rv := run(t, s, 1, types.Umask{Mask: 0o077})
	if p := rv.(types.RvPerm).Perm; p != 0o022 {
		t.Fatalf("old umask = %v", p)
	}
	s, _ = run(t, s, 1, types.Mkdir{Path: "/d", Perm: 0o777})
	e, _ := s.H.Lookup(s.H.Root, "d")
	if s.H.Dir(e.Dir).Perm != 0o700 {
		t.Errorf("perm = %o, want 700", s.H.Dir(e.Dir).Perm)
	}
}

func TestProcessDestroyClosesFds(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s = Trans(s, types.CreateLabel{Pid: 2, Uid: 0, Gid: 0})[0]
	s, rv := run(t, s, 2, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
	_ = rv
	if len(s.fids) != 1 {
		t.Fatalf("fids = %d", len(s.fids))
	}
	s = Trans(s, types.DestroyLabel{Pid: 2})[0]
	if len(s.fids) != 0 {
		t.Error("descriptors leaked across destroy")
	}
	if _, ok := s.procs[2]; ok {
		t.Error("process survived destroy")
	}
}

func TestPerProcessCwd(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s = Trans(s, types.CreateLabel{Pid: 2, Uid: 0, Gid: 0})[0]
	s, _ = run(t, s, 1, types.Mkdir{Path: "/a", Perm: 0o755})
	s, _ = run(t, s, 1, types.Chdir{Path: "/a"})
	if s.procs[1].Cwd == s.procs[2].Cwd {
		t.Error("chdir leaked across processes")
	}
	// pid 1 creates relative; pid 2 must not see it relative to its cwd.
	s, _ = run(t, s, 1, types.Mkdir{Path: "rel", Perm: 0o755})
	_, rvs := callRet(t, s, 2, types.Stat{Path: "rel"})
	if len(rvs) != 1 || !rvs[0].Equal(types.RvErr{Err: types.ENOENT}) {
		t.Errorf("pid2 stat rel = %v", rvs)
	}
}

func TestFingerprintDistinguishesStates(t *testing.T) {
	a := NewOsState(types.DefaultSpec())
	b := a.Clone()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	b2, _ := run(t, b, 1, types.Mkdir{Path: "/x", Perm: 0o755})
	if a.Fingerprint() == b2.Fingerprint() {
		t.Error("different states share a fingerprint")
	}
}

func TestCloneIndependenceOsState(t *testing.T) {
	s := NewOsState(types.DefaultSpec())
	s, rv := run(t, s, 1, types.Open{Path: "/f", Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true})
	fd := rv.(types.RvFD).FD
	c := s.Clone()
	c.mutProc(1).Umask = 0o777
	c.mutFid(c.procs[1].Fds[fd]).Offset = 99
	c.addGroupMember(5, 7)
	if s.procs[1].Umask == 0o777 {
		t.Error("umask shared")
	}
	if s.fids[s.procs[1].Fds[fd]].Offset == 99 {
		t.Error("fid shared")
	}
	if _, ok := s.groups[5]; ok {
		t.Error("groups shared")
	}
}

func TestFig8SequenceInModel(t *testing.T) {
	// mkdir deserted; chdir; rmdir ../deserted; open party O_CREAT —
	// the model requires ENOENT (conforming behaviour), never a hang.
	s := NewOsState(types.DefaultSpec())
	s, _ = run(t, s, 1, types.Mkdir{Path: "deserted", Perm: 0o700})
	s, _ = run(t, s, 1, types.Chdir{Path: "deserted"})
	s, rv := run(t, s, 1, types.Rmdir{Path: "../deserted"})
	if !rv.Equal(types.RvNone{}) {
		t.Fatalf("rmdir of cwd = %v", rv)
	}
	_, rvs := callRet(t, s, 1, types.Open{Path: "party", Flags: types.OCreat | types.ORdonly, Perm: 0o600, HasPerm: true})
	if len(rvs) != 1 || !rvs[0].Equal(types.RvErr{Err: types.ENOENT}) {
		t.Errorf("create in disconnected cwd allows %v, want exactly ENOENT", rvs)
	}
}

func TestPendingDescribe(t *testing.T) {
	if got := (PendingExact{Rv: types.RvNone{}}).Describe(); got != "RV_none" {
		t.Errorf("exact describe = %q", got)
	}
	if d := (PendingReadPrefix{Data: []byte("ab")}).Describe(); d == "" {
		t.Error("read describe empty")
	}
	if got := (PendingWriteUpTo{Data: []byte("abc")}).Describe(); got != "RV_num(1..3)" {
		t.Errorf("write describe = %q", got)
	}
	if got := (PendingWriteUpTo{}).Describe(); got != "RV_num(0)" {
		t.Errorf("empty write describe = %q", got)
	}
}
