package osspec

// Hash-consed state identity. Hash is a 64-bit digest of exactly the
// observational content the legacy Fingerprint string renders — the file
// system (delegated to the heap's incremental hash), and per process the
// credentials, cwd, run state, pending-return description, resolved
// descriptor table and directory-handle sets. Fields Fingerprint omits
// (group table, allocation counters, descriptor capability flags, pending
// commands, LastSeen snapshots) are omitted here too: dedup must merge the
// same states the string dedup merged, or checker statistics drift.
//
// Hash is an accelerator, not an identity: StateSet buckets by hash and
// confirms candidates with StateEqual, so a collision can never merge two
// distinguishable states.

import (
	"repro/internal/state"
)

const (
	seedProc = 0x8f14e45fceea1681
	seedPend = 0x3b9d3f2e6c1d82a7
	seedFd   = 0x517cc1b727220a95
	seedDh   = 0x2545f4914f6cdd1d
	seedMust = 0x9561e1f1a2b3c4d5
	seedMay  = 0x6a09e667f3bcc909
	seedRet  = 0xbb67ae8584caa73b
	seedDur  = 0x7f4a7c159e3779b9
)

// Hash returns the state's 64-bit identity digest. The non-heap part is
// memoised (mut* accessors invalidate it); the heap part is maintained
// incrementally by the heap itself, so hashing a freshly cloned-and-
// mutated state re-hashes only what the transition touched. Computing the
// hash mutates memoisation fields: hash a state before sharing it across
// goroutines (the checker's serial merge points do).
func (s *OsState) Hash() uint64 {
	if !s.hvOK {
		s.hv = s.osHash()
		s.hvOK = true
	}
	h := state.Mix(s.hv, s.H.Hash())
	if s.durable != nil {
		// Crash mode folds the persistence history in (order-sensitive:
		// the pending log is ordered). Heap hashes are maintained
		// incrementally, so this is O(len(pend)) mixes, not tree walks.
		h = state.Mix(h, seedDur)
		h = state.Mix(h, s.durable.Hash())
		for _, p := range s.pend {
			h = state.Mix(h, p.Hash())
		}
	}
	return h
}

func (s *OsState) osHash() uint64 {
	var acc uint64
	for pid, p := range s.procs {
		v := state.Mix(seedProc, uint64(pid))
		v = state.Mix(v, uint64(p.Euid))
		v = state.Mix(v, uint64(p.Egid))
		v = state.Mix(v, uint64(p.Umask))
		v = state.Mix(v, uint64(p.Cwd))
		v = state.Mix(v, boolU64(p.CwdValid))
		v = state.Mix(v, uint64(p.Run))
		if p.Run == RsReturning && p.PendingRet != nil {
			v = state.Mix(v, state.HashString(seedPend, p.PendingRet.Describe()))
		}
		var fdAcc uint64
		for fd, ref := range p.Fds {
			fv := state.Mix(seedFd, uint64(fd))
			if fid := s.fids[ref]; fid != nil {
				fv = state.Mix(fv, uint64(fid.File))
				fv = state.Mix(fv, uint64(fid.Dir))
				fv = state.Mix(fv, uint64(fid.Offset))
			}
			fdAcc ^= state.Mix(0, fv)
		}
		v = state.Mix(v, fdAcc)
		var dhAcc uint64
		for dh, h := range p.Dhs {
			dv := state.Mix(seedDh, uint64(dh))
			dv = state.Mix(dv, uint64(h.Dir))
			dv = state.Mix(dv, setHash(seedMust, h.Must))
			dv = state.Mix(dv, setHash(seedMay, h.May))
			dv = state.Mix(dv, setHash(seedRet, h.Returned))
			dhAcc ^= state.Mix(0, dv)
		}
		v = state.Mix(v, dhAcc)
		acc ^= state.Mix(0, v)
	}
	return acc
}

func setHash(seed uint64, m map[string]bool) uint64 {
	var acc uint64
	for k := range m {
		acc ^= state.HashString(seed, k)
	}
	return acc
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// StateEqual reports observational equality per the Fingerprint contract:
// it distinguishes two states exactly when their Fingerprint strings
// differ. Structurally shared (pointer-equal) components compare in O(1),
// which makes confirming a duplicate cheap for copy-on-write siblings.
func StateEqual(a, b *OsState) bool {
	if a == b {
		return true
	}
	if len(a.procs) != len(b.procs) {
		return false
	}
	for pid, pa := range a.procs {
		pb := b.procs[pid]
		if pb == nil {
			return false
		}
		if pa.Euid != pb.Euid || pa.Egid != pb.Egid || pa.Umask != pb.Umask ||
			pa.Cwd != pb.Cwd || pa.CwdValid != pb.CwdValid || pa.Run != pb.Run {
			return false
		}
		if pa.Run == RsReturning && !pendingEqual(pa.PendingRet, pb.PendingRet) {
			return false
		}
		if len(pa.Fds) != len(pb.Fds) {
			return false
		}
		for fd, ra := range pa.Fds {
			rb, ok := pb.Fds[fd]
			if !ok {
				return false
			}
			fa, fb := a.fids[ra], b.fids[rb]
			if (fa == nil) != (fb == nil) {
				return false
			}
			if fa != nil && (fa.File != fb.File || fa.Dir != fb.Dir || fa.Offset != fb.Offset) {
				return false
			}
		}
		if len(pa.Dhs) != len(pb.Dhs) {
			return false
		}
		for dh, ha := range pa.Dhs {
			hb, ok := pb.Dhs[dh]
			if !ok {
				return false
			}
			if ha == hb {
				continue
			}
			if ha.Dir != hb.Dir || !setEqual(ha.Must, hb.Must) ||
				!setEqual(ha.May, hb.May) || !setEqual(ha.Returned, hb.Returned) {
				return false
			}
		}
	}
	if (a.durable == nil) != (b.durable == nil) {
		return false
	}
	if a.durable != nil {
		if len(a.pend) != len(b.pend) {
			return false
		}
		if !state.HeapEqual(a.durable, b.durable) {
			return false
		}
		for i := range a.pend {
			if !state.HeapEqual(a.pend[i], b.pend[i]) {
				return false
			}
		}
	}
	return state.HeapEqual(a.H, b.H)
}

// pendingEqual follows the fingerprint contract to the letter: pendings
// are identified by their rendered description (a nil pending renders as
// the empty string).
func pendingEqual(a, b Pending) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Describe() == b.Describe()
}

func setEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// StateSet is a deduplicating set of states keyed by Hash and confirmed by
// StateEqual — the replacement for fingerprint-string deduplication.
// Not safe for concurrent use; the checker's merge points are serial.
type StateSet struct {
	buckets map[uint64][]*OsState
	n       int
}

// NewStateSet returns an empty set sized for capacity states.
func NewStateSet(capacity int) *StateSet {
	return &StateSet{buckets: make(map[uint64][]*OsState, capacity)}
}

// Add inserts s unless an equal state is already present; it reports
// whether s was new. Hashing memoises into s (see Hash).
func (ss *StateSet) Add(s *OsState) bool {
	h := s.Hash()
	bucket := ss.buckets[h]
	for _, t := range bucket {
		if StateEqual(t, s) {
			return false
		}
	}
	ss.buckets[h] = append(bucket, s)
	ss.n++
	return true
}

// Len reports the number of distinct states added.
func (ss *StateSet) Len() int { return ss.n }

// Reset empties the set, keeping its bucket storage for reuse — the
// checker's per-trace scratch sets are reset once per step instead of
// reallocated (ROADMAP item 5's arena lever: the bucket map was the
// dominant per-step allocation on the cold path). An already-empty set
// returns immediately: clear() sweeps the map's full bucket capacity
// regardless of population, and defensive double-Resets are common.
func (ss *StateSet) Reset() {
	if ss.n == 0 {
		return
	}
	clear(ss.buckets)
	ss.n = 0
}
