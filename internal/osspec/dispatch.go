package osspec

import (
	"repro/internal/fsspec"
	"repro/internal/state"
	"repro/internal/types"
)

// ctxFor builds the file-system module's evaluation context for one
// process: the process's view of the world (cwd, umask, credentials) plus
// the shared heap and spec.
func ctxFor(s *OsState, pid types.Pid) *fsspec.Ctx {
	p := s.procs[pid]
	return &fsspec.Ctx{
		Spec:     s.Spec,
		H:        s.H,
		Cwd:      p.Cwd,
		CwdValid: p.CwdValid,
		Umask:    p.Umask,
		Euid:     p.Euid,
		Egid:     p.Egid,
		InGroup:  s.InGroup,
	}
}

// fromResult converts a file-system module Result into LTS successors.
func fromResult(s *OsState, pid types.Pid, res fsspec.Result) []*OsState {
	if res.Undefined {
		return []*OsState{succPending(s, pid, PendingAny{Why: "implementation-defined"}, nil)}
	}
	out := succErrors(s, pid, res.Errors)
	for _, ok := range res.Oks {
		apply := ok.Apply
		var f func(*OsState)
		if apply != nil {
			f = func(c *OsState) { apply(c.H) }
		}
		out = append(out, succExact(s, pid, ok.Ret, f))
	}
	return out
}

// dispatch is the per-command core of os_trans's τ step: it evaluates cmd
// for process pid in state s and returns the successor states.
func dispatch(s *OsState, pid types.Pid, cmd types.Command) []*OsState {
	c := ctxFor(s, pid)
	switch cm := cmd.(type) {
	// Path-based commands: delegate to the file-system module.
	case types.Mkdir:
		return fromResult(s, pid, fsspec.MkdirSpec(c, cm))
	case types.Rmdir:
		return fromResult(s, pid, fsspec.RmdirSpec(c, cm))
	case types.Link:
		return fromResult(s, pid, fsspec.LinkSpec(c, cm))
	case types.Unlink:
		return fromResult(s, pid, fsspec.UnlinkSpec(c, cm))
	case types.Rename:
		return fromResult(s, pid, fsspec.RenameSpec(c, cm))
	case types.Symlink:
		return fromResult(s, pid, fsspec.SymlinkSpec(c, cm))
	case types.Readlink:
		return fromResult(s, pid, fsspec.ReadlinkSpec(c, cm))
	case types.Stat:
		return fromResult(s, pid, fsspec.StatSpec(c, cm))
	case types.Lstat:
		return fromResult(s, pid, fsspec.LstatSpec(c, cm))
	case types.Truncate:
		return fromResult(s, pid, fsspec.TruncateSpec(c, cm))
	case types.Chmod:
		return fromResult(s, pid, fsspec.ChmodSpec(c, cm))
	case types.Chown:
		return fromResult(s, pid, fsspec.ChownSpec(c, cm))

	// Commands that touch per-process OS state.
	case types.Chdir:
		dir, res := fsspec.ChdirSpec(c, cm)
		if len(res.Oks) > 0 {
			return []*OsState{succExact(s, pid, types.RvNone{}, func(cl *OsState) {
				p := cl.mutProc(pid)
				p.Cwd = dir
				p.CwdValid = true
			})}
		}
		return fromResult(s, pid, res)
	case types.Umask:
		old := s.procs[pid].Umask
		mask := cm.Mask & types.PermMask
		return []*OsState{succExact(s, pid, types.RvPerm{Perm: old}, func(cl *OsState) {
			cl.mutProc(pid).Umask = mask
		})}
	case types.AddUserToGroup:
		return []*OsState{succExact(s, pid, types.RvNone{}, func(cl *OsState) {
			cl.addGroupMember(cm.Gid, cm.Uid)
		})}

	// Descriptor-based commands.
	case types.Open:
		return openCall(s, pid, cm)
	case types.Close:
		return closeCall(s, pid, cm)
	case types.Read:
		return readCall(s, pid, cm.FD, cm.Size, -1, true)
	case types.Pread:
		return readCall(s, pid, cm.FD, cm.Size, cm.Off, false)
	case types.Write:
		return writeCall(s, pid, cm.FD, cm.Data, cm.Size, -1, true)
	case types.Pwrite:
		return writeCall(s, pid, cm.FD, cm.Data, cm.Size, cm.Off, false)
	case types.Lseek:
		return lseekCall(s, pid, cm)
	case types.Fsync:
		return fsyncCall(s, pid, cm)
	case types.Sync:
		return syncCall(s, pid)

	// Directory-stream commands.
	case types.Opendir:
		return opendirCall(s, pid, cm)
	case types.Readdir:
		return readdirCall(s, pid, cm)
	case types.Closedir:
		return closedirCall(s, pid, cm)
	case types.Rewinddir:
		return rewinddirCall(s, pid, cm)
	}
	// Unknown command: treat as undefined behaviour rather than crashing
	// the oracle (forward compatibility with extended scripts).
	return []*OsState{succPending(s, pid, PendingAny{Why: "unmodelled command"}, nil)}
}

// closeFD drops one descriptor, releasing the description and any
// unreferenced, fully-unlinked file object.
func (s *OsState) closeFD(pid types.Pid, fd types.FD) {
	p := s.procs[pid]
	if p == nil {
		return
	}
	fidRef, ok := p.Fds[fd]
	if !ok {
		return
	}
	delete(s.mutFds(pid), fd)
	fid := s.mutFid(fidRef)
	if fid == nil {
		return
	}
	fid.Refs--
	if fid.Refs > 0 {
		return
	}
	s.dirty()
	delete(s.mutFidsMap(), fidRef)
	if !fid.IsDir {
		if f := s.H.File(fid.File); f != nil && f.Nlink == 0 && !anyFidFor(s, fid.File) {
			s.H.FreeFile(fid.File)
		}
	}
}

func anyFidFor(s *OsState, f state.FileRef) bool {
	for _, fid := range s.fids {
		if !fid.IsDir && fid.File == f {
			return true
		}
	}
	return false
}
