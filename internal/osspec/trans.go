package osspec

import (
	"repro/internal/cov"
	"repro/internal/types"
)

var (
	covTransCall    = cov.Point("osspec/trans/call")
	covTransReturn  = cov.Point("osspec/trans/return")
	covTransTau     = cov.Point("osspec/trans/tau")
	covTransCreate  = cov.Point("osspec/trans/create")
	covTransDestroy = cov.Point("osspec/trans/destroy")
	covTransCrash   = cov.Point("osspec/trans/crash")
	covTransBadPid  = cov.Point("osspec/trans/bad_pid")
)

// Trans is os_trans: the transition function of the LTS. Given a state and
// a label it returns the finite set of possible next states; an empty
// result means the label is not allowed from this state. The function
// never mutates s.
func Trans(s *OsState, lbl types.Label) []*OsState {
	switch l := lbl.(type) {
	case types.CallLabel:
		cov.Hit(covTransCall)
		p, ok := s.procs[l.Pid]
		if !ok || p.Run != RsRunning {
			cov.Hit(covTransBadPid)
			return nil
		}
		// Receptivity: a running process may always issue a call; the call
		// blocks the process until its return.
		c := s.Clone()
		cp := c.mutProc(l.Pid)
		cp.Run = RsCalling
		cp.PendingCmd = l.Cmd
		return []*OsState{c}

	case types.TauLabel:
		cov.Hit(covTransTau)
		// An internal step processes the pending call of any one calling
		// process — the concurrency nondeterminism of §3. Deterministic pid
		// order so a memoised fan-out replays exactly what a fresh
		// computation would produce.
		var out []*OsState
		for _, pid := range CallingPids(s) {
			out = append(out, processCall(s, pid, s.procs[pid].PendingCmd)...)
		}
		return out

	case types.ReturnLabel:
		cov.Hit(covTransReturn)
		p, ok := s.procs[l.Pid]
		if !ok || p.Run != RsReturning || p.PendingRet == nil {
			cov.Hit(covTransBadPid)
			return nil
		}
		if !p.PendingRet.Match(s, l.Ret) {
			return nil
		}
		c := s.Clone()
		cp := c.mutProc(l.Pid)
		pend := cp.PendingRet
		cp.Run = RsRunning
		cp.PendingRet = nil
		cp.PendingCmd = nil
		pend.Finalize(c, l.Ret)
		c.persistNote()
		return []*OsState{c}

	case types.CreateLabel:
		cov.Hit(covTransCreate)
		if _, exists := s.procs[l.Pid]; exists {
			return nil
		}
		c := s.Clone()
		c.addProcess(l.Pid, l.Uid, l.Gid)
		return []*OsState{c}

	case types.DestroyLabel:
		cov.Hit(covTransDestroy)
		p, ok := s.procs[l.Pid]
		if !ok || p.Run != RsRunning {
			return nil
		}
		c := s.Clone()
		fds := make([]types.FD, 0, len(p.Fds))
		for fd := range p.Fds {
			fds = append(fds, fd)
		}
		for _, fd := range fds {
			c.closeFD(l.Pid, fd)
		}
		c.dirty()
		delete(c.mutProcsMap(), l.Pid)
		c.persistNote()
		return []*OsState{c}

	case types.CrashLabel:
		cov.Hit(covTransCrash)
		// The oracle ignores l.Keep: a single crash label admits every
		// durable state the persistence model allows here, and later
		// observations prune the set. Outside crash mode the label is
		// simply not enabled, which surfaces misconfigured runs as an
		// immediate deviation instead of silently passing.
		return CrashStates(s)
	}
	return nil
}

// processCall evaluates the pending command of pid against s, returning one
// successor per allowed behaviour, each in RsReturning with the pending
// return recorded. s itself is not mutated.
func processCall(s *OsState, pid types.Pid, cmd types.Command) []*OsState {
	return dispatch(s, pid, cmd)
}

// succExact builds a successor where pid will return exactly rv; apply (if
// non-nil) mutates the successor before it is frozen.
func succExact(s *OsState, pid types.Pid, rv types.RetValue, apply func(*OsState)) *OsState {
	c := s.Clone()
	if apply != nil {
		apply(c)
		c.persistNote()
	}
	p := c.mutProc(pid)
	p.Run = RsReturning
	p.PendingRet = PendingExact{Rv: rv}
	return c
}

// succPending builds a successor with an arbitrary pending pattern; apply
// (if non-nil) mutates the successor first.
func succPending(s *OsState, pid types.Pid, pend Pending, apply func(*OsState)) *OsState {
	c := s.Clone()
	if apply != nil {
		apply(c)
		c.persistNote()
	}
	p := c.mutProc(pid)
	p.Run = RsReturning
	p.PendingRet = pend
	return c
}

// succErrors builds one successor per allowed errno (error returns leave
// the file-system state unchanged — the paper's proved invariant).
func succErrors(s *OsState, pid types.Pid, errs types.ErrnoSet) []*OsState {
	out := make([]*OsState, 0, len(errs))
	for _, e := range errs.Sorted() {
		out = append(out, succExact(s, pid, types.RvErr{Err: e}, nil))
	}
	return out
}
