package osspec

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// This file checks, by randomised property testing, the two sanity
// theorems the paper proved in HOL4/Isabelle for a previous model version
// (§1 "Contributions"):
//
//	(a) libc calls that result in an error do not change the abstract
//	    file-system state;
//	(b) in the absence of resource-limit failures, whether a call succeeds
//	    or fails is deterministic.

// randomCommand draws a command over a small path universe so collisions
// (existing files, dirs, symlinks) are frequent.
func randomCommand(r *rand.Rand) types.Command {
	paths := []string{
		"/a", "/b", "/d", "/d/x", "/d/y", "/s", "/missing", "/d/../a",
		"a", "d/x", "/d/", "/a/", "",
	}
	p := func() string { return paths[r.Intn(len(paths))] }
	switch r.Intn(12) {
	case 0:
		return types.Mkdir{Path: p(), Perm: types.Perm(r.Intn(0o1000))}
	case 1:
		return types.Rmdir{Path: p()}
	case 2:
		return types.Unlink{Path: p()}
	case 3:
		return types.Link{Src: p(), Dst: p()}
	case 4:
		return types.Rename{Src: p(), Dst: p()}
	case 5:
		return types.Symlink{Target: p(), Linkpath: p()}
	case 6:
		return types.Stat{Path: p()}
	case 7:
		return types.Lstat{Path: p()}
	case 8:
		return types.Truncate{Path: p(), Len: int64(r.Intn(10) - 2)}
	case 9:
		return types.Chmod{Path: p(), Perm: types.Perm(r.Intn(0o1000))}
	case 10:
		return types.Readlink{Path: p()}
	default:
		return types.Open{
			Path:    p(),
			Flags:   types.OpenFlags(r.Intn(1 << 10)),
			Perm:    types.Perm(r.Intn(0o1000)),
			HasPerm: true,
		}
	}
}

// randomState builds a state by executing a few random successful commands.
func randomState(t *testing.T, r *rand.Rand) *OsState {
	s := NewOsState(types.DefaultSpec())
	s, _ = run(t, s, 1, types.Mkdir{Path: "/d", Perm: 0o755})
	s, rv := run(t, s, 1, types.Open{Path: "/a", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
	s, _ = run(t, s, 1, types.Close{FD: rv.(types.RvFD).FD})
	s, _ = run(t, s, 1, types.Symlink{Target: "a", Linkpath: "/s"})
	for i := 0; i < r.Intn(4); i++ {
		cmd := randomCommand(r)
		called := Trans(s, types.CallLabel{Pid: 1, Cmd: cmd})
		if len(called) == 0 {
			continue
		}
		cands := TauFor(called[0], 1)
		if len(cands) == 0 {
			continue
		}
		for _, c := range cands {
			for _, rv := range ConcreteReturns(c, 1) {
				if after := Trans(c, types.ReturnLabel{Pid: 1, Ret: rv}); len(after) > 0 {
					s = after[0]
					goto next
				}
			}
		}
	next:
	}
	return s
}

// TestTheoremErrorsPreserveState: every error candidate state has the same
// file-system fingerprint as the pre-call state.
func TestTheoremErrorsPreserveState(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		s := randomState(t, r)
		cmd := randomCommand(r)
		before := s.fsFingerprint()
		called := Trans(s, types.CallLabel{Pid: 1, Cmd: cmd})
		if len(called) == 0 {
			continue
		}
		for _, cand := range TauFor(called[0], 1) {
			p := cand.procs[1]
			pe, ok := p.PendingRet.(PendingExact)
			if !ok || !types.IsError(pe.Rv) {
				continue
			}
			after := Trans(cand, types.ReturnLabel{Pid: 1, Ret: pe.Rv})
			if len(after) != 1 {
				t.Fatalf("error return did not complete: %v %v", cmd, pe.Rv)
			}
			if after[0].fsFingerprint() != before {
				t.Fatalf("trial %d: error %v of %v changed the state", trial, pe.Rv, cmd)
			}
		}
	}
}

// TestTheoremSuccessDeterministic: for a fixed state and call, the model
// never allows both a success and an error (the error envelope and the
// success outcome are mutually exclusive), except for the documented
// implementation-defined cases (PendingAny) and the zero-length-write
// looseness.
func TestTheoremSuccessDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		s := randomState(t, r)
		cmd := randomCommand(r)
		called := Trans(s, types.CallLabel{Pid: 1, Cmd: cmd})
		if len(called) == 0 {
			continue
		}
		successes, errors, anys := 0, 0, 0
		for _, cand := range TauFor(called[0], 1) {
			switch pend := cand.procs[1].PendingRet.(type) {
			case PendingExact:
				if types.IsError(pend.Rv) {
					errors++
				} else {
					successes++
				}
			case PendingAny:
				anys++
			default:
				successes++
			}
		}
		if anys > 0 {
			continue // implementation-defined: exempt
		}
		if w, ok := cmd.(types.Open); ok && w.Flags.Has(types.OWronly) && w.Flags.Has(types.ORdwr) {
			continue
		}
		if successes > 0 && errors > 0 {
			t.Fatalf("trial %d: %v allows both success and failure", trial, cmd)
		}
	}
}

// TestTheoremCheckingIsPure: Trans never mutates its input state.
func TestTheoremCheckingIsPure(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		s := randomState(t, r)
		fp := s.Fingerprint()
		cmd := randomCommand(r)
		called := Trans(s, types.CallLabel{Pid: 1, Cmd: cmd})
		if len(called) > 0 {
			TauFor(called[0], 1)
		}
		Trans(s, types.TauLabel{})
		Trans(s, types.ReturnLabel{Pid: 1, Ret: types.RvNone{}})
		if s.Fingerprint() != fp {
			t.Fatalf("trial %d: Trans mutated its input on %v", trial, cmd)
		}
	}
}
