package osspec

import (
	"testing"

	"repro/internal/types"
)

// TestConsTableInternsAndConverges pins the table's core contract: a Put
// followed by a Get of the same (source, key) pair returns the identical
// slice, a racing second Put of the pair converges on the first winner's
// successors, and the counters attribute hits and misses correctly.
func TestConsTableInternsAndConverges(t *testing.T) {
	src := NewOsState(types.DefaultSpec())
	src.Hash()
	src.Freeze()
	tbl := NewConsTable(0)

	lbl := types.CallLabel{Pid: InitialPid, Cmd: types.Mkdir{Path: "/a", Perm: 0o755}}
	key := LabelKey(lbl)
	if _, ok := tbl.Get(src, key); ok {
		t.Fatal("empty table reported a hit")
	}
	succs := Trans(src, lbl)
	if len(succs) == 0 {
		t.Fatal("mkdir produced no successors")
	}
	won := tbl.Put(src, key, succs)
	if len(won) != len(succs) || won[0] != succs[0] {
		t.Fatal("first Put did not intern its own successors")
	}
	for _, ns := range won {
		if !ns.frozen {
			t.Fatal("Put published an unfrozen successor")
		}
		if !ns.hvOK {
			t.Fatal("Put published an unhashed successor")
		}
	}
	got, ok := tbl.Get(src, key)
	if !ok || got[0] != succs[0] {
		t.Fatal("Get did not return the interned slice")
	}
	// A racing loser must converge on the winner's objects, not keep its
	// own equal-but-distinct recomputation.
	dup := Trans(src, lbl)
	if again := tbl.Put(src, key, dup); again[0] != succs[0] {
		t.Fatal("second Put kept the loser's successors")
	}
	st := tbl.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if st.Retained != len(succs) {
		t.Fatalf("retained %d states, want %d", st.Retained, len(succs))
	}
}

// TestConsTableEpochReset pins the memory bound: once retained successors
// would pass the cap, the table drops the whole epoch, so live heap
// objects held by the table never exceed cap plus one fan-out.
func TestConsTableEpochReset(t *testing.T) {
	src := NewOsState(types.DefaultSpec())
	src.Hash()
	src.Freeze()
	const cap = 4
	tbl := NewConsTable(cap)
	// Distinct labels produce distinct entries from the same source.
	paths := []string{"/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h"}
	maxFan := 0
	for _, p := range paths {
		lbl := types.CallLabel{Pid: InitialPid, Cmd: types.Mkdir{Path: p, Perm: 0o755}}
		succs := Trans(src, lbl)
		if len(succs) > maxFan {
			maxFan = len(succs)
		}
		tbl.Put(src, LabelKey(lbl), succs)
		if got := tbl.Stats().Retained; got > cap+maxFan {
			t.Fatalf("retained %d states, cap %d + fan-out %d", got, cap, maxFan)
		}
	}
	st := tbl.Stats()
	if st.Resets == 0 {
		t.Fatalf("no epoch reset after %d puts against cap %d", len(paths), cap)
	}
	// The shard-boundary hook empties the table unconditionally.
	tbl.Reset()
	if st := tbl.Stats(); st.Retained != 0 {
		t.Fatalf("Reset left %d retained states", st.Retained)
	}
	if _, ok := tbl.Get(src, LabelKey(types.CallLabel{Pid: InitialPid, Cmd: types.Mkdir{Path: "/a", Perm: 0o755}})); ok {
		t.Fatal("Reset left an entry behind")
	}
}

// TestLabelKeyInjectiveAcrossKinds spot-checks the type-tag discipline:
// labels of different kinds can never share a key, and the τ-expansion
// sentinel cannot collide with any rendered label.
func TestLabelKeyInjectiveAcrossKinds(t *testing.T) {
	keys := map[string]string{}
	for name, lbl := range map[string]types.Label{
		"call":    types.CallLabel{Pid: 1, Cmd: types.Mkdir{Path: "/a", Perm: 0o755}},
		"ret":     types.ReturnLabel{Pid: 1, Ret: types.RvNone{}},
		"tau":     types.TauLabel{},
		"create":  types.CreateLabel{Pid: 2, Uid: 0, Gid: 0},
		"destroy": types.DestroyLabel{Pid: 2},
	} {
		k := LabelKey(lbl)
		if k == tauExpandKey {
			t.Fatalf("%s label collides with the τ-expansion sentinel", name)
		}
		if prev, dup := keys[k]; dup {
			t.Fatalf("labels %s and %s share key %q", prev, name, k)
		}
		keys[k] = name
	}
}
