package osspec

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// stateClones counts OsState.Clone calls process-wide — like the heap
// counters in internal/state, deltas around a run attribute the COW
// traffic a workload generates. telemetry.Default exposes it as a gauge.
var stateClones atomic.Int64

// StateClones returns the process-wide count of OsState COW clones.
func StateClones() int64 { return stateClones.Load() }

func init() {
	telemetry.Default.Func("osspec.state_clones", StateClones)
}
