package osspec

import (
	"sort"

	"repro/internal/types"
)

// ConcreteReturns enumerates representative concrete return values allowed
// by pid's pending pattern in s: the exact value for exact pendings, the
// full read/write for prefix patterns, and every currently-allowed entry
// (plus end-of-stream when legal) for readdir. Used by the determinized
// model (fsimpl.SpecFS) and by recovery.
func ConcreteReturns(s *OsState, pid types.Pid) []types.RetValue {
	p, ok := s.procs[pid]
	if !ok || p.Run != RsReturning || p.PendingRet == nil {
		return nil
	}
	switch pend := p.PendingRet.(type) {
	case PendingExact:
		return []types.RetValue{pend.Rv}
	case PendingAny:
		return []types.RetValue{types.RvNone{}}
	case PendingReadPrefix:
		return []types.RetValue{types.RvBytes{Data: pend.Data}}
	case PendingWriteUpTo:
		return []types.RetValue{types.RvNum{N: int64(len(pend.Data))}}
	case PendingReaddir:
		h := pend.handle(s)
		if h == nil {
			return []types.RetValue{types.RvDirent{End: true}}
		}
		must, _ := refreshedSets(s, h)
		var names []string
		for n := range must {
			names = append(names, n)
		}
		sort.Strings(names)
		var out []types.RetValue
		for _, n := range names {
			out = append(out, types.RvDirent{Name: n})
		}
		if len(must) == 0 {
			out = append(out, types.RvDirent{End: true})
		}
		return out
	}
	return nil
}
