package osspec

import (
	"repro/internal/cov"
	"repro/internal/fsspec"
	"repro/internal/types"
)

var (
	covOpenFd       = cov.Point("osspec/open/fd_alloc")
	covCloseBad     = cov.Point("osspec/close/ebadf")
	covCloseOk      = cov.Point("osspec/close/ok")
	covReadBad      = cov.Point("osspec/read/ebadf")
	covReadDir      = cov.Point("osspec/read/eisdir")
	covReadNeg      = cov.Point("osspec/read/einval")
	covReadOk       = cov.Point("osspec/read/ok")
	covWriteBad     = cov.Point("osspec/write/ebadf")
	covWriteZero    = cov.Point("osspec/write/zero_len")
	covWriteNeg     = cov.Point("osspec/write/einval")
	covWriteOk      = cov.Point("osspec/write/ok")
	covPwriteAppend = cov.Point("osspec/pwrite/linux_append")
	covLseekBad     = cov.Point("osspec/lseek/ebadf")
	covLseekInval   = cov.Point("osspec/lseek/einval")
	covLseekOk      = cov.Point("osspec/lseek/ok")
)

// openCall implements open(2): the file-system module decides the envelope
// and the success shape; the OS layer allocates the descriptor.
func openCall(s *OsState, pid types.Pid, cmd types.Open) []*OsState {
	d := fsspec.OpenSpec(ctxFor(s, pid), cmd)
	if d.Undefined {
		return []*OsState{succPending(s, pid, PendingAny{Why: "open flags undefined"}, nil)}
	}
	if len(d.Errs) > 0 {
		return succErrors(s, pid, d.Errs)
	}
	cov.Hit(covOpenFd)
	fd := s.procs[pid].NextFD
	return []*OsState{succExact(s, pid, types.RvFD{FD: fd}, func(c *OsState) {
		p := c.mutProc(pid)
		fid := c.NextFid
		c.NextFid++
		fs := &FidState{
			Append:   d.Append,
			Readable: d.Readable,
			Writable: d.Writable,
			Sync:     cmd.Flags.Has(types.OSync),
			Refs:     1,
			owner:    c.ensureTok(),
		}
		switch {
		case d.OpenDir:
			fs.IsDir = true
			fs.Dir = d.Dir
		case d.OpenExisting:
			fs.File = d.File
			if d.Truncate {
				fsspec.ResizeFile(c.H, d.File, 0)
			}
		case d.Create:
			f := c.H.AllocFile(d.CreatePerm, p.Euid, p.Egid)
			c.H.LinkFile(d.Parent, d.Name, f)
			fs.File = f
		}
		c.mutFidsMap()[fid] = fs
		c.mutFds(pid)[fd] = fid
		p.NextFD++
	})}
}

// closeCall implements close(2). Close of an unknown descriptor is EBADF;
// close itself never fails otherwise in the model (EINTR is out of scope).
func closeCall(s *OsState, pid types.Pid, cmd types.Close) []*OsState {
	p := s.procs[pid]
	if _, ok := p.Fds[cmd.FD]; !ok {
		cov.Hit(covCloseBad)
		return succErrors(s, pid, types.NewErrnoSet(types.EBADF))
	}
	cov.Hit(covCloseOk)
	return []*OsState{succExact(s, pid, types.RvNone{}, func(c *OsState) {
		c.closeFD(pid, cmd.FD)
	})}
}

// readCall implements read (at = -1, seq) and pread (at ≥ 0 given, !seq).
func readCall(s *OsState, pid types.Pid, fd types.FD, size, at int64, seq bool) []*OsState {
	p := s.procs[pid]
	fidRef, ok := p.Fds[fd]
	if !ok {
		cov.Hit(covReadBad)
		return succErrors(s, pid, types.NewErrnoSet(types.EBADF))
	}
	fid := s.fids[fidRef]
	// Error conditions combine with the parallel-combinator looseness: the
	// kernel may report whichever failing check it tests first.
	errs := types.NewErrnoSet()
	if fid.IsDir {
		cov.Hit(covReadDir)
		errs.Add(types.EISDIR)
	} else if !fid.Readable {
		cov.Hit(covReadBad)
		errs.Add(types.EBADF)
	}
	if size < 0 {
		cov.Hit(covReadNeg)
		errs.Add(types.EINVAL)
	}
	if !seq && at < 0 {
		// pread with a negative offset is EINVAL per POSIX (the OS X VFS
		// underflow in §7.3.4 deviates from this for pwrite; pread is
		// analogous).
		cov.Hit(covReadNeg)
		errs.Add(types.EINVAL)
	}
	if len(errs) > 0 {
		return succErrors(s, pid, errs)
	}
	f := s.H.File(fid.File)
	pos := fid.Offset
	if !seq {
		pos = at
	}
	var avail []byte
	if f != nil && pos < int64(len(f.Bytes)) {
		end := pos + size
		if end > int64(len(f.Bytes)) {
			end = int64(len(f.Bytes))
		}
		avail = append([]byte(nil), f.Bytes[pos:end]...)
	}
	cov.Hit(covReadOk)
	return []*OsState{succPending(s, pid, PendingReadPrefix{
		Pid: pid, Fid: fidRef, Data: avail, Seq: seq,
	}, nil)}
}

// writeCall implements write (at = -1, seq) and pwrite (at given, !seq).
func writeCall(s *OsState, pid types.Pid, fd types.FD, data []byte, size, at int64, seq bool) []*OsState {
	p := s.procs[pid]
	if size >= 0 && size < int64(len(data)) {
		data = data[:size]
	}
	fidRef, ok := p.Fds[fd]
	if !ok {
		cov.Hit(covWriteBad)
		return succErrors(s, pid, types.NewErrnoSet(types.EBADF))
	}
	fid := s.fids[fidRef]
	errs := types.NewErrnoSet()
	badMode := fid.IsDir || !fid.Writable
	if badMode {
		if len(data) == 0 && seq {
			// Writing zero bytes to a read-only descriptor: POSIX leaves
			// this implementation-defined; Linux returns 0 (§7.2 lists it
			// among the divergences). Allow both.
			cov.Hit(covWriteZero)
			return []*OsState{
				succExact(s, pid, types.RvNum{N: 0}, nil),
				succExact(s, pid, types.RvErr{Err: types.EBADF}, nil),
			}
		}
		cov.Hit(covWriteBad)
		errs.Add(types.EBADF)
	}
	if size < 0 {
		cov.Hit(covWriteNeg)
		errs.Add(types.EINVAL)
	}
	if !seq && at < 0 {
		// pwrite with a negative offset: EINVAL per POSIX. The OS X VFS
		// integer-underflow defect (§7.3.4) is an implementation bug the
		// oracle must flag, so every variant keeps EINVAL.
		cov.Hit(covWriteNeg)
		errs.Add(types.EINVAL)
	}
	if len(errs) > 0 {
		if badMode && len(data) == 0 {
			// Zero-length pwrite on a read-only fd: Linux still reports
			// the offset error first when the offset is bad, else 0.
			return append(succErrors(s, pid, errs),
				succExact(s, pid, types.RvNum{N: 0}, nil))
		}
		return succErrors(s, pid, errs)
	}
	pos := at
	if seq {
		if fid.Append {
			pos = -1 // append: position determined at apply time (EOF)
		} else {
			pos = fid.Offset
		}
	} else if fid.Append && s.Spec.Platform == types.PlatformLinux {
		// Linux platform convention (§7.3.3): pwrite on an O_APPEND
		// descriptor ignores the offset and appends. POSIX-conforming
		// systems write at the given offset.
		cov.Hit(covPwriteAppend)
		pos = -1
	}
	cov.Hit(covWriteOk)
	// The complete write applies its content effect here, at the τ point —
	// so with concurrent calls the effect order is the τ interleaving the
	// checker's closure explores, not the order returns happen to be
	// observed in. (The continuation refinement of §3 applies effects at
	// return-match time, which pins effect order to return order; for the
	// overwhelmingly common full-length write that loses legal concurrent
	// outcomes, e.g. "last writer wins" where the last writer's return is
	// observed first.)
	data = append([]byte(nil), data...)
	full := succExact(s, pid, types.RvNum{N: int64(len(data))}, func(c *OsState) {
		applyWriteEffect(c, fidRef, data, int64(len(data)), pos, seq)
	})
	out := []*OsState{full}
	if len(data) > 1 {
		// Short writes (1 ≤ n < len) keep the return-value continuation:
		// the byte count is unknown until observed, so the effect lands at
		// return-match time — the paper's refinement, scoped to the loose
		// short-write path only.
		out = append(out, succPending(s, pid, PendingWriteUpTo{
			Pid: pid, Fid: fidRef, Data: data[:len(data)-1], At: pos, Seq: seq,
		}, nil))
	}
	return out
}

// lseekCall implements lseek(2).
func lseekCall(s *OsState, pid types.Pid, cmd types.Lseek) []*OsState {
	p := s.procs[pid]
	fidRef, ok := p.Fds[cmd.FD]
	if !ok {
		cov.Hit(covLseekBad)
		return succErrors(s, pid, types.NewErrnoSet(types.EBADF))
	}
	fid := s.fids[fidRef]
	var base int64
	switch cmd.Whence {
	case types.SeekSet:
		base = 0
	case types.SeekCur:
		base = fid.Offset
	case types.SeekEnd:
		if f := s.H.File(fid.File); f != nil {
			base = int64(len(f.Bytes))
		}
	default:
		cov.Hit(covLseekInval)
		return succErrors(s, pid, types.NewErrnoSet(types.EINVAL))
	}
	target := base + cmd.Off
	if target < 0 {
		cov.Hit(covLseekInval)
		return succErrors(s, pid, types.NewErrnoSet(types.EINVAL))
	}
	cov.Hit(covLseekOk)
	return []*OsState{succExact(s, pid, types.RvNum{N: target}, func(c *OsState) {
		if f := c.mutFid(fidRef); f != nil {
			f.Offset = target
		}
	})}
}
