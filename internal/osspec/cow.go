package osspec

// Copy-on-write plumbing for OsState. The pattern mirrors the heap's: the
// state owns a table or object exactly when the object's owner token equals
// the state's current token; Clone/Freeze drop the token, making every
// surviving reference copy on first write. All transition code mutates
// through these accessors — writing through a pointer obtained before a
// Clone would corrupt the structural sharing.

import (
	"repro/internal/types"
)

// dirty invalidates the memoised hash; every mutation path lands here.
func (s *OsState) dirty() { s.hvOK = false }

func (s *OsState) ensureTok() *cowTok {
	if s.tok == nil {
		s.tok = &cowTok{}
		s.frozen = false
	}
	return s.tok
}

// mutProcsMap makes the pid→process table private (shallow copy) for
// structural changes: process creation and destruction.
func (s *OsState) mutProcsMap() map[types.Pid]*ProcState {
	if !s.ownsProcs {
		m := make(map[types.Pid]*ProcState, len(s.procs)+1)
		for pid, p := range s.procs {
			m[pid] = p
		}
		s.procs = m
		s.ownsProcs = true
		s.frozen = false
	}
	return s.procs
}

// mutFidsMap makes the open-file table private for structural changes:
// description allocation and release.
func (s *OsState) mutFidsMap() map[FidRef]*FidState {
	if !s.ownsFids {
		m := make(map[FidRef]*FidState, len(s.fids)+1)
		for r, f := range s.fids {
			m[r] = f
		}
		s.fids = m
		s.ownsFids = true
		s.frozen = false
	}
	return s.fids
}

// mutProc returns a ProcState that is safe to mutate, copying it (sharing
// its fd/handle tables copy-on-write) unless this state already owns it.
func (s *OsState) mutProc(pid types.Pid) *ProcState {
	p := s.procs[pid]
	if p == nil {
		return nil
	}
	s.dirty()
	if s.tok != nil && p.owner == s.tok {
		return p
	}
	np := &ProcState{
		Cwd:      p.Cwd,
		CwdValid: p.CwdValid,
		Umask:    p.Umask,
		Euid:     p.Euid,
		Egid:     p.Egid,
		Fds:      p.Fds,
		Dhs:      p.Dhs,
		NextFD:   p.NextFD,
		NextDH:   p.NextDH,
		Run:      p.Run,
		// Commands and pendings are immutable values; share them.
		PendingCmd: p.PendingCmd,
		PendingRet: p.PendingRet,
		owner:      s.ensureTok(),
	}
	s.mutProcsMap()[pid] = np
	return np
}

// mutFds returns pid's descriptor table ready for insertion/deletion.
func (s *OsState) mutFds(pid types.Pid) map[types.FD]FidRef {
	p := s.mutProc(pid)
	if !p.ownsFds {
		m := make(map[types.FD]FidRef, len(p.Fds)+1)
		for fd, r := range p.Fds {
			m[fd] = r
		}
		p.Fds = m
		p.ownsFds = true
	}
	return p.Fds
}

// mutDhs returns pid's directory-handle table ready for insertion/deletion.
func (s *OsState) mutDhs(pid types.Pid) map[types.DH]*DirHandleState {
	p := s.mutProc(pid)
	if !p.ownsDhs {
		m := make(map[types.DH]*DirHandleState, len(p.Dhs)+1)
		for dh, h := range p.Dhs {
			m[dh] = h
		}
		p.Dhs = m
		p.ownsDhs = true
	}
	return p.Dhs
}

// mutDh returns a directory-handle state safe to mutate. Must/May/LastSeen
// are shared (their writers replace them wholesale); Returned is cloned
// because readdir marks entries returned in place.
func (s *OsState) mutDh(pid types.Pid, dh types.DH) *DirHandleState {
	dhs := s.mutDhs(pid)
	h := dhs[dh]
	if h == nil {
		return nil
	}
	if h.owner == s.tok {
		return h
	}
	nh := &DirHandleState{
		Dir:      h.Dir,
		Must:     h.Must,
		May:      h.May,
		Returned: cloneSet(h.Returned),
		LastSeen: h.LastSeen,
		owner:    s.tok,
	}
	dhs[dh] = nh
	return nh
}

// mutFid returns an open-file description safe to mutate.
func (s *OsState) mutFid(r FidRef) *FidState {
	f := s.fids[r]
	if f == nil {
		return nil
	}
	s.dirty()
	if s.tok != nil && f.owner == s.tok {
		return f
	}
	nf := *f
	nf.owner = s.ensureTok()
	s.mutFidsMap()[r] = &nf
	return &nf
}

// addGroupMember records uid as a member of gid, copy-on-write on both the
// outer table and the member set.
func (s *OsState) addGroupMember(gid types.Gid, uid types.Uid) {
	if !s.ownsGroups {
		m := make(map[types.Gid]map[types.Uid]bool, len(s.groups)+1)
		for g, set := range s.groups {
			m[g] = set
		}
		s.groups = m
		s.ownsGroups = true
		s.frozen = false
	}
	set := make(map[types.Uid]bool, len(s.groups[gid])+1)
	for u := range s.groups[gid] {
		set[u] = true
	}
	set[uid] = true
	s.groups[gid] = set
}

func cloneSet(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k := range m {
		c[k] = true
	}
	return c
}
