package osspec

import (
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// ConsTable memoises transition fan-outs across traces. The key observation
// (ROADMAP item 5): every combinatorial script opens with the identical
// fixture prelude, so the same states recur suite-wide — the per-trace
// hash-cons tables recompute the same clones and digests tens of thousands
// of times per run. The table interns the successor set of a (source state,
// label) pair once per shard and replays it for every later trace that
// reaches the same state.
//
// Entries are keyed by the source state's *pointer identity*, not by
// StateEqual: StateEqual deliberately ignores fields Trans depends on
// (pending commands, allocation counters, descriptor capability flags,
// LastSeen snapshots — ignorable within one trace, where merged states
// never differ in them, but not across traces). Pointer identity makes a
// replay trivially sound — it is Trans applied to that very object — and
// still captures the suite-wide sharing: the checker publishes one initial
// state per run, interned successors feed back into every trace's state
// set, so all traces walk the same object graph along shared script
// prefixes and divergence re-interns fresh objects at the first new label.
//
// Concurrency: safe for concurrent use. Successor states are published
// only hashed and frozen (Hash() then Freeze()), after which Hash,
// StateEqual and Clone on them are pure reads. Callers must treat returned
// successor slices as immutable.
//
// Memory is bounded by an epoch reset: once the retained-state count
// passes the cap the whole table is cleared (the shared initial state
// lives outside the table, so the next trace re-seeds the hot fixture
// prefix within a few steps — a reset costs one trace's worth of
// recomputation, not a shard's).
type ConsTable struct {
	mu sync.RWMutex
	m  map[consKey][]*OsState
	// retained counts the *OsState pointers the table keeps alive (the
	// interned successors); the epoch reset triggers when it passes cap.
	retained int
	cap      int

	hits   atomic.Int64
	misses atomic.Int64
	resets atomic.Int64
}

type consKey struct {
	src *OsState
	lbl string
}

// DefaultConsCap bounds the states a ConsTable may retain before an epoch
// reset. 64k states is ~tens of MB of copy-on-write structure — far above
// what one suite's shared fixture prefix needs, far below a leak.
const DefaultConsCap = 1 << 16

// NewConsTable returns an empty table; maxStates ≤ 0 selects
// DefaultConsCap.
func NewConsTable(maxStates int) *ConsTable {
	if maxStates <= 0 {
		maxStates = DefaultConsCap
	}
	return &ConsTable{m: make(map[consKey][]*OsState), cap: maxStates}
}

// Get returns the interned successors of (src, key) and whether the pair
// was present.
func (t *ConsTable) Get(src *OsState, key string) ([]*OsState, bool) {
	t.mu.RLock()
	succs, ok := t.m[consKey{src, key}]
	t.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		return succs, true
	}
	t.misses.Add(1)
	return nil, false
}

// Put interns succs as the fan-out of (src, key), hashing and freezing
// every successor first (the publication protocol that makes later shared
// reads race-free), and returns the canonical slice: when a concurrent Put
// of the same pair won the race, the winner's (identical) successors are
// returned so every caller converges on the same interned objects. src
// must already be frozen.
func (t *ConsTable) Put(src *OsState, key string, succs []*OsState) []*OsState {
	for _, ns := range succs {
		ns.Hash()
		ns.Freeze()
	}
	k := consKey{src, key}
	t.mu.Lock()
	if won, dup := t.m[k]; dup {
		t.mu.Unlock()
		return won
	}
	if t.retained+len(succs) > t.cap && t.retained > 0 {
		// Epoch reset: drop everything rather than evict piecemeal. The
		// table regrows from the live frontier within one trace.
		t.m = make(map[consKey][]*OsState)
		t.retained = 0
		t.resets.Add(1)
	}
	t.m[k] = succs
	t.retained += len(succs)
	t.mu.Unlock()
	return succs
}

// Reset clears the table to an empty epoch (the shard boundary hook).
func (t *ConsTable) Reset() {
	t.mu.Lock()
	if t.retained > 0 || len(t.m) > 0 {
		t.m = make(map[consKey][]*OsState)
		t.retained = 0
		t.resets.Add(1)
	}
	t.mu.Unlock()
}

// ConsStats is a snapshot of a table's effectiveness counters.
type ConsStats struct {
	Hits, Misses, Resets int64
	Retained             int
}

// Stats snapshots the table's counters (telemetry; never affects results).
func (t *ConsTable) Stats() ConsStats {
	t.mu.RLock()
	retained := t.retained
	t.mu.RUnlock()
	return ConsStats{
		Hits:     t.hits.Load(),
		Misses:   t.misses.Load(),
		Resets:   t.resets.Load(),
		Retained: retained,
	}
}

// tauExpandKey is the ConsTable key for the whole-state τ expansion
// (expandOne: every calling pid's fan-out, concatenated in pid order).
// NUL-prefixed so it can never collide with a rendered label key.
const tauExpandKey = "\x00tau*"

// LabelKey renders lbl as a ConsTable key. A leading type tag keeps the
// key space injective across label kinds even where the human renderings
// could overlap.
func LabelKey(lbl types.Label) string {
	switch l := lbl.(type) {
	case types.CallLabel:
		return "c" + strconv.Itoa(int(l.Pid)) + "\x00" + l.Cmd.String()
	case types.ReturnLabel:
		return "r" + strconv.Itoa(int(l.Pid)) + "\x00" + l.Ret.String()
	case types.TauLabel:
		return "t"
	case types.CreateLabel:
		return "n" + strconv.Itoa(int(l.Pid)) + "," + strconv.Itoa(int(l.Uid)) + "," + strconv.Itoa(int(l.Gid))
	case types.DestroyLabel:
		return "d" + strconv.Itoa(int(l.Pid))
	case types.CrashLabel:
		// One key for every keep count: the oracle ignores Keep (it admits
		// the whole crash-state set), so the fan-outs are identical.
		return "x"
	}
	return "?" + lbl.String()
}
