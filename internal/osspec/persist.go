package osspec

// The persistence layer (crash-consistency extension). With Spec.Crash set,
// every OsState carries a durable file-system image alongside the live heap,
// plus a log of pending (volatile) effects: one frozen COW heap snapshot per
// transition that changed the file system since the last sync barrier.
// fsync/sync (and O_SYNC descriptors) flush the log into the durable image;
// CrashStates enumerates the durable states a power failure may leave
// behind — the durable image plus every pending-log prefix, remounted.
//
// The model is deliberately the strict "ordered global log" one: effects
// persist in the order they were applied, and any sync barrier flushes the
// whole log (fsync(fd) is not scoped to fd's file). Real file systems are
// allowed to reorder unrelated writes; a spec that admits only ordered
// prefixes is *stricter*, so an implementation that reorders would be
// flagged — which is exactly the conservative default an oracle should
// start from (cf. the FERRITE line of work on weaker persistency models).

import (
	"sync/atomic"

	"repro/internal/state"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// crashStatesEnumerated counts remounted candidate states built by
// CrashStates process-wide, before deduplication (PR-6 style engine-global
// counter, like osspec.state_clones).
var crashStatesEnumerated atomic.Int64

// CrashStatesEnumerated returns the process-wide count of crash candidate
// states enumerated.
func CrashStatesEnumerated() int64 { return crashStatesEnumerated.Load() }

func init() {
	telemetry.Default.Func("osspec.crash_states", CrashStatesEnumerated)
}

// persistNote records a pending durable effect: called after a transition's
// effects have been applied, it appends a snapshot of the live heap to the
// pending log iff the file system actually changed. No-op outside crash
// mode. The hash comparison is an accelerator only — unequal hashes prove a
// change, equal hashes are confirmed with HeapEqual so a collision can
// never drop an effect.
func (s *OsState) persistNote() {
	if s.durable == nil {
		return
	}
	last := s.durable
	if n := len(s.pend); n > 0 {
		last = s.pend[n-1]
	}
	if s.H.Hash() == last.Hash() && state.HeapEqual(s.H, last) {
		return
	}
	s.appendPend(snapshotHeap(s.H))
}

// snapshotHeap takes an O(1) frozen copy of h. Freezing the copy up front
// makes every later read (Hash, Clone at remount time) a pure read, so
// snapshots can be shared across the checker's τ-closure workers.
func snapshotHeap(h *state.Heap) *state.Heap {
	c := h.Clone()
	c.Freeze()
	return c
}

// appendPend appends one snapshot copy-on-write: the backing array is
// copied the first time this state (rather than an ancestor) extends it.
func (s *OsState) appendPend(h *state.Heap) {
	if !s.ownsPend {
		np := make([]*state.Heap, len(s.pend), len(s.pend)+1)
		copy(np, s.pend)
		s.pend = np
		s.ownsPend = true
		s.frozen = false
	}
	s.pend = append(s.pend, h)
}

// flushPending is the sync barrier: the live image becomes durable and the
// pending log empties. Models fsync/sync and each O_SYNC write. No-op when
// nothing is pending (in particular outside crash mode).
func (s *OsState) flushPending() {
	if s.durable == nil || len(s.pend) == 0 {
		return
	}
	s.durable = snapshotHeap(s.H)
	s.pend = nil
	s.ownsPend = true
}

// PendingEffects reports the number of unsynced durable effects (0 outside
// crash mode).
func (s *OsState) PendingEffects() int { return len(s.pend) }

// DurableImage returns the last-synced heap image (nil outside crash mode).
// The returned heap is frozen; callers must not mutate it.
func (s *OsState) DurableImage() *state.Heap { return s.durable }

// PendingImage returns the heap snapshot after the first i+1 pending
// effects (i in [0, PendingEffects())). Frozen; read-only.
func (s *OsState) PendingImage(i int) *state.Heap { return s.pend[i] }

// CrashStates enumerates the durable states a crash at this point may leave
// behind: the durable image plus each pending-log prefix, each remounted
// (fresh process table, no descriptors, orphaned inodes swept) and deduped
// through the hash-consed StateSet. Returns nil outside crash mode. The
// result order is deterministic: shortest surviving prefix first.
func CrashStates(s *OsState) []*OsState {
	if s.durable == nil {
		return nil
	}
	candidates := make([]*state.Heap, 0, len(s.pend)+1)
	candidates = append(candidates, s.durable)
	candidates = append(candidates, s.pend...)
	seen := NewStateSet(len(candidates))
	out := make([]*OsState, 0, len(candidates))
	for _, h := range candidates {
		crashStatesEnumerated.Add(1)
		rs := remountState(h, s.Spec)
		if seen.Add(rs) {
			out = append(out, rs)
		}
	}
	return out
}

// CrashWithKeep returns the remounted state in which exactly the first
// keep pending effects survived (keep clamped to the log length) — the
// deterministic counterpart of CrashStates, used by the determinized model
// (fsimpl.SpecFS) to mirror the executor's chosen crash outcome. Returns
// nil outside crash mode.
func CrashWithKeep(s *OsState, keep int) *OsState {
	if s.durable == nil {
		return nil
	}
	if keep < 0 {
		keep = 0
	}
	if keep > len(s.pend) {
		keep = len(s.pend)
	}
	h := s.durable
	if keep > 0 {
		h = s.pend[keep-1]
	}
	crashStatesEnumerated.Add(1)
	return remountState(h, s.Spec)
}

// remountState builds the post-remount model state for one durable heap
// image: the same file tree, a fresh initial process (the pre-crash process
// table, descriptors and directory handles die with the power), and no
// pending effects — the chosen image is durable by construction. Files with
// no remaining links were reachable only through (now dead) descriptors, so
// the remount sweeps them, as fsck would.
func remountState(h *state.Heap, spec types.Spec) *OsState {
	s := &OsState{
		H:          h.Clone(),
		fids:       make(map[FidRef]*FidState),
		NextFid:    1,
		procs:      make(map[types.Pid]*ProcState),
		groups:     make(map[types.Gid]map[types.Uid]bool),
		Spec:       spec,
		tok:        &cowTok{},
		ownsFids:   true,
		ownsProcs:  true,
		ownsGroups: true,
		ownsPend:   true,
	}
	for _, fr := range s.H.SortedFileRefs() {
		if f := s.H.File(fr); f != nil && f.Nlink == 0 {
			s.H.FreeFile(fr)
		}
	}
	uid, gid := types.RootUid, types.RootGid
	if !spec.RootUser {
		uid, gid = 1000, 1000
	}
	s.addProcess(InitialPid, uid, gid)
	s.durable = snapshotHeap(s.H)
	return s
}

// fsyncCall implements fsync(2): EBADF on an unknown descriptor, otherwise
// a sync barrier (the model flushes the whole pending log — see the package
// comment above for why per-file granularity is intentionally absent).
func fsyncCall(s *OsState, pid types.Pid, cmd types.Fsync) []*OsState {
	p := s.procs[pid]
	if _, ok := p.Fds[cmd.FD]; !ok {
		return succErrors(s, pid, types.NewErrnoSet(types.EBADF))
	}
	return []*OsState{succExact(s, pid, types.RvNone{}, func(c *OsState) {
		c.flushPending()
	})}
}

// syncCall implements sync(): flush everything; never fails.
func syncCall(s *OsState, pid types.Pid) []*OsState {
	return []*OsState{succExact(s, pid, types.RvNone{}, func(c *OsState) {
		c.flushPending()
	})}
}
