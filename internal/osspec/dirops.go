package osspec

import (
	"repro/internal/cov"
	"repro/internal/fsspec"
	"repro/internal/types"
)

var (
	covOpendirAlloc = cov.Point("osspec/opendir/alloc")
	covReaddirBad   = cov.Point("osspec/readdir/ebadf")
	covReaddirOk    = cov.Point("osspec/readdir/ok")
	covClosedirBad  = cov.Point("osspec/closedir/ebadf")
	covClosedirOk   = cov.Point("osspec/closedir/ok")
	covRewindBad    = cov.Point("osspec/rewinddir/ebadf")
	covRewindOk     = cov.Point("osspec/rewinddir/ok")
)

// opendirCall implements opendir(3): the file-system module validates the
// path; the OS layer allocates the handle and takes the must-set snapshot.
func opendirCall(s *OsState, pid types.Pid, cmd types.Opendir) []*OsState {
	dir, res := fsspec.OpendirSpec(ctxFor(s, pid), cmd)
	if len(res.Oks) == 0 {
		return fromResult(s, pid, res)
	}
	cov.Hit(covOpendirAlloc)
	dh := s.procs[pid].NextDH
	return []*OsState{succExact(s, pid, types.RvDH{DH: dh}, func(c *OsState) {
		p := c.mutProc(pid)
		snap := currentEntries(c, dir)
		c.mutDhs(pid)[dh] = &DirHandleState{
			Dir:      dir,
			Must:     cloneSet(snap),
			May:      make(map[string]bool),
			Returned: make(map[string]bool),
			LastSeen: snap,
			owner:    c.ensureTok(),
		}
		p.NextDH++
	})}
}

// readdirCall implements readdir(3): the successor carries the must/may
// pattern; the concrete entry (or end-of-stream) observed in the trace
// resolves the nondeterminism at the next step, exactly as described in §3.
func readdirCall(s *OsState, pid types.Pid, cmd types.Readdir) []*OsState {
	p := s.procs[pid]
	if _, ok := p.Dhs[cmd.DH]; !ok {
		cov.Hit(covReaddirBad)
		return succErrors(s, pid, types.NewErrnoSet(types.EBADF))
	}
	cov.Hit(covReaddirOk)
	return []*OsState{succPending(s, pid, PendingReaddir{Pid: pid, DH: cmd.DH}, nil)}
}

// closedirCall implements closedir(3).
func closedirCall(s *OsState, pid types.Pid, cmd types.Closedir) []*OsState {
	p := s.procs[pid]
	if _, ok := p.Dhs[cmd.DH]; !ok {
		cov.Hit(covClosedirBad)
		return succErrors(s, pid, types.NewErrnoSet(types.EBADF))
	}
	cov.Hit(covClosedirOk)
	return []*OsState{succExact(s, pid, types.RvNone{}, func(c *OsState) {
		delete(c.mutDhs(pid), cmd.DH)
	})}
}

// rewinddirCall implements rewinddir(3): the stream restarts from the
// directory's current contents; previous bookkeeping is discarded.
func rewinddirCall(s *OsState, pid types.Pid, cmd types.Rewinddir) []*OsState {
	p := s.procs[pid]
	if _, ok := p.Dhs[cmd.DH]; !ok {
		cov.Hit(covRewindBad)
		return succErrors(s, pid, types.NewErrnoSet(types.EBADF))
	}
	cov.Hit(covRewindOk)
	return []*OsState{succExact(s, pid, types.RvNone{}, func(c *OsState) {
		h := c.mutDh(pid, cmd.DH)
		snap := currentEntries(c, h.Dir)
		h.Must = cloneSet(snap)
		h.May = make(map[string]bool)
		h.Returned = make(map[string]bool)
		h.LastSeen = snap
	})}
}
