package osspec

import (
	"sort"

	"repro/internal/types"
)

// TauFor processes the pending call of exactly pid (the checker linearises
// call processing at return time, which is sound for traces where each
// return is observed: the τ can occur at any point between call and return,
// and choosing the latest allowed point never excludes behaviour for the
// sequentially-executed traces the harness produces — §6.3).
func TauFor(s *OsState, pid types.Pid) []*OsState {
	p, ok := s.Procs[pid]
	if !ok || p.Run != RsCalling {
		return nil
	}
	return processCall(s, pid, p.PendingCmd)
}

// CallingPids lists the processes of s with an unprocessed pending call,
// in deterministic order.
func CallingPids(s *OsState) []types.Pid {
	var pids []types.Pid
	for pid, p := range s.Procs {
		if p.Run == RsCalling {
			pids = append(pids, pid)
		}
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}

// TauClosure returns every state reachable from the set by zero or more τ
// steps: all orders in which the pending calls of the calling processes
// may have been processed in the kernel. Pre-τ states stay in the set (a
// τ may not have happened yet from the real system's point of view). With
// dedup, states are collapsed by fingerprint so equivalent interleavings
// merge; without it the closure still terminates because every τ step
// moves one process out of RsCalling, bounding the depth. cap > 0 stops
// further rounds once the set reaches it, but at least one round always
// runs and nothing generated is dropped: truncating would preferentially
// evict the τ-advanced states — the only ones able to match an observed
// return — since the pre-τ originals sit at the front, and skipping the
// first round would leave a cap-saturated set with no advanced states at
// all. expansions counts the τ-successors generated.
func TauClosure(states []*OsState, dedup bool, cap int) (out []*OsState, expansions int) {
	out = append(make([]*OsState, 0, len(states)), states...)
	var seen map[string]bool
	if dedup {
		seen = make(map[string]bool, len(out))
		for _, s := range out {
			seen[s.Fingerprint()] = true
		}
	}
	for frontier := out; len(frontier) > 0; {
		var next []*OsState
		for _, s := range frontier {
			for _, pid := range CallingPids(s) {
				for _, ns := range TauFor(s, pid) {
					expansions++
					if seen != nil {
						fp := ns.Fingerprint()
						if seen[fp] {
							continue
						}
						seen[fp] = true
					}
					next = append(next, ns)
				}
			}
		}
		out = append(out, next...)
		frontier = next
		if cap > 0 && len(out) >= cap {
			break
		}
	}
	return out, expansions
}

// AllowedReturn describes the return value(s) a state in RsReturning allows
// for pid, for diagnostics.
func AllowedReturn(s *OsState, pid types.Pid) (string, bool) {
	p, ok := s.Procs[pid]
	if !ok || p.Run != RsReturning || p.PendingRet == nil {
		return "", false
	}
	if rd, ok := p.PendingRet.(PendingReaddir); ok {
		return rd.DescribeAgainst(s), true
	}
	return p.PendingRet.Describe(), true
}

// RecoverReturns synthesises successor states as if an allowed return value
// had been observed — the Fig 4 behaviour ("continuing with EEXIST,
// ENOTEMPTY") that lets the checker proceed past a non-conformant step.
func RecoverReturns(s *OsState, pid types.Pid) []*OsState {
	p, ok := s.Procs[pid]
	if !ok || p.Run != RsReturning || p.PendingRet == nil {
		return nil
	}
	var rvs []types.RetValue
	switch pend := p.PendingRet.(type) {
	case PendingExact:
		rvs = []types.RetValue{pend.Rv}
	case PendingAny:
		rvs = []types.RetValue{types.RvNone{}}
	case PendingReadPrefix:
		rvs = []types.RetValue{types.RvBytes{Data: pend.Data}}
	case PendingWriteUpTo:
		rvs = []types.RetValue{types.RvNum{N: int64(len(pend.Data))}}
	case PendingReaddir:
		h := pend.handle(s)
		if h == nil {
			rvs = []types.RetValue{types.RvDirent{End: true}}
			break
		}
		must, _ := refreshedSets(s, h)
		if len(must) == 0 {
			rvs = append(rvs, types.RvDirent{End: true})
		}
		for n := range must {
			rvs = append(rvs, types.RvDirent{Name: n})
		}
	default:
		rvs = []types.RetValue{types.RvNone{}}
	}
	var out []*OsState
	for _, rv := range rvs {
		out = append(out, Trans(s, types.ReturnLabel{Pid: pid, Ret: rv})...)
	}
	return out
}

// ResetToRunning returns a copy of s with pid forced back to the running
// state, discarding any pending call — the last-resort recovery when no
// state can explain an observation at all.
func ResetToRunning(s *OsState, pid types.Pid) *OsState {
	c := s.Clone()
	if p, ok := c.Procs[pid]; ok {
		p.Run = RsRunning
		p.PendingCmd = nil
		p.PendingRet = nil
	}
	return c
}
