package osspec

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/types"
)

// TauFor processes the pending call of exactly pid (the checker linearises
// call processing at return time, which is sound for traces where each
// return is observed: the τ can occur at any point between call and return,
// and choosing the latest allowed point never excludes behaviour for the
// sequentially-executed traces the harness produces — §6.3).
func TauFor(s *OsState, pid types.Pid) []*OsState {
	p, ok := s.procs[pid]
	if !ok || p.Run != RsCalling {
		return nil
	}
	return processCall(s, pid, p.PendingCmd)
}

// CallingPids lists the processes of s with an unprocessed pending call,
// in deterministic order.
func CallingPids(s *OsState) []types.Pid {
	var pids []types.Pid
	for pid, p := range s.procs {
		if p.Run == RsCalling {
			pids = append(pids, pid)
		}
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}

// ClosureOpts configures TauClosureWith.
type ClosureOpts struct {
	// Dedup collapses states by identity (Hash confirmed by StateEqual) so
	// equivalent interleavings merge. Always on in real checking; off only
	// for the ablation benchmarks.
	Dedup bool
	// Cap > 0 stops further expansion rounds once the closure reaches it.
	Cap int
	// Workers bounds the goroutines expanding one frontier (≤ 0 selects
	// GOMAXPROCS). Results are byte-identical for every worker count: the
	// per-state transition fan-out runs in parallel, but successors are
	// merged — and duplicates decided — in the sequential order.
	Workers int
	// Ctx, when non-nil, is consulted between expansion rounds: a
	// cancelled context stops the closure early and returns whatever has
	// been computed. Callers that pass a Ctx must treat the result as
	// unusable once Ctx is cancelled (the checker abandons the trace).
	Ctx context.Context
	// Stats, when non-nil, receives the closure's work split (telemetry;
	// never affects results).
	Stats *ClosureStats
	// Memo, when non-nil, interns each state's τ fan-out in the suite-level
	// ConsTable: traces sharing a prefix (every combinatorial script does)
	// replay interned successors instead of re-running the spec. Implies
	// the same successors Dedup-hashing would produce; only meaningful with
	// Dedup on.
	Memo *ConsTable
	// Scratch, when non-nil, is a caller-owned dedup set reused across
	// closures instead of allocating one per call (it is Reset on entry).
	// The caller must not touch it while the closure runs and must not
	// reuse it before abandoning the returned states of earlier calls'
	// in-progress use. Ignored without Dedup.
	Scratch *StateSet
}

// ClosureStats describes how one τ-closure spent its effort.
type ClosureStats struct {
	// Rounds is the number of frontier-expansion rounds run.
	Rounds int
	// ParallelRounds counts rounds whose frontier was large enough to fan
	// across the worker pool; the rest stayed on the caller's goroutine
	// (a fan-out "stall" — the workers had nothing to chew on).
	ParallelRounds int
}

// tauParallelMin is the frontier size below which fanning out goroutines
// costs more than it saves; small closures (every sequential trace) stay
// on the caller's goroutine.
const tauParallelMin = 16

// TauClosure returns every state reachable from the set by zero or more τ
// steps, single-threaded. See TauClosureWith.
func TauClosure(states []*OsState, dedup bool, cap int) (out []*OsState, expansions int) {
	out, expansions, _ = TauClosureWith(states, ClosureOpts{Dedup: dedup, Cap: cap, Workers: 1})
	return out, expansions
}

// TauClosureWith returns every state reachable from the set by zero or
// more τ steps: all orders in which the pending calls of the calling
// processes may have been processed in the kernel. Pre-τ states stay in
// the set (a τ may not have happened yet from the real system's point of
// view). With dedup, states are collapsed by hash-consed identity so
// equivalent interleavings merge; without it the closure still terminates
// because every τ step moves one process out of RsCalling, bounding the
// depth. Cap > 0 stops further rounds once the set reaches it (capHit
// reports a cut-short closure), but at least one round always runs and
// nothing generated is dropped: truncating would preferentially evict the
// τ-advanced states — the only ones able to match an observed return —
// since the pre-τ originals sit at the front, and skipping the first round
// would leave a cap-saturated set with no advanced states at all.
// expansions counts the τ-successors generated, before deduplication.
func TauClosureWith(states []*OsState, o ClosureOpts) (out []*OsState, expansions int, capHit bool) {
	out = append(make([]*OsState, 0, len(states)), states...)
	var set *StateSet
	if o.Dedup {
		if o.Scratch != nil {
			set = o.Scratch
			set.Reset()
		} else {
			set = NewStateSet(len(out))
		}
		for _, s := range out {
			set.Add(s)
		}
	}
	// Freeze the seed states: the parallel rounds clone them from several
	// goroutines, which is only a pure read once frozen (and hashed, which
	// Add just did).
	for _, s := range out {
		s.Freeze()
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for frontier := out; len(frontier) > 0; {
		if o.Ctx != nil && o.Ctx.Err() != nil {
			return out, expansions, capHit
		}
		if o.Stats != nil {
			o.Stats.Rounds++
			if workers > 1 && len(frontier) >= tauParallelMin {
				o.Stats.ParallelRounds++
			}
		}
		// The serial case (every sequential trace, and the pipeline's
		// TauWorkers=1 default) iterates the frontier directly instead of
		// materialising MapStates' per-state result table — the table was
		// a leading per-step allocation once the cons table absorbed the
		// transition work itself.
		var groups [][]*OsState
		if workers > 1 && len(frontier) >= tauParallelMin {
			groups = MapStates(frontier, workers, func(s *OsState) []*OsState {
				return expandOne(s, o.Dedup, o.Memo)
			})
		}
		var next []*OsState
		for i, s := range frontier {
			var succs []*OsState
			if groups != nil {
				succs = groups[i]
			} else {
				succs = expandOne(s, o.Dedup, o.Memo)
			}
			for _, ns := range succs {
				expansions++
				if set != nil && !set.Add(ns) {
					continue
				}
				ns.Freeze()
				next = append(next, ns)
			}
		}
		out = append(out, next...)
		frontier = next
		if o.Cap > 0 && len(out) >= o.Cap {
			// Only flag a truncation when a further round could actually
			// have produced states: a frontier with no pending calls left
			// means the closure is already complete despite the cap.
			// (Conservative the other way: survivors whose successors
			// would all have deduplicated away still count as a hit.)
			for _, s := range next {
				if hasCallingProc(s) {
					capHit = true
					break
				}
			}
			break
		}
	}
	return out, expansions, capHit
}

// hasCallingProc reports whether any process of s still holds an
// unprocessed pending call (an allocation-free CallingPids != empty).
func hasCallingProc(s *OsState) bool {
	for _, p := range s.procs {
		if p.Run == RsCalling {
			return true
		}
	}
	return false
}

// UnionStates applies fn to every state and concatenates the results in
// source order — the checker's transition union. The serial case (≤ 1
// worker, or a set below tauParallelMin) streams straight into the output
// slice; the parallel case fans out via MapStates and concatenates the
// ordered result table, so the output is byte-identical either way.
func UnionStates(states []*OsState, workers int, fn func(*OsState) []*OsState) []*OsState {
	var next []*OsState
	if workers <= 1 || len(states) < tauParallelMin {
		for _, s := range states {
			next = append(next, fn(s)...)
		}
		return next
	}
	for _, group := range MapStates(states, workers, fn) {
		next = append(next, group...)
	}
	return next
}

// MapStates applies fn to every state, fanning the calls across workers
// (≤ 1, or fewer states than tauParallelMin, stays on the caller's
// goroutine) while keeping the result deterministically ordered: slot i
// holds exactly fn(states[i]). The states must be frozen — each may be
// read by any worker. Shared by the τ-closure and the checker's
// transition union.
func MapStates(states []*OsState, workers int, fn func(*OsState) []*OsState) [][]*OsState {
	results := make([][]*OsState, len(states))
	if workers <= 1 || len(states) < tauParallelMin {
		for i, s := range states {
			results[i] = fn(s)
		}
		return results
	}
	if workers > len(states) {
		workers = len(states)
	}
	var wg sync.WaitGroup
	idx := make(chan int, len(states))
	for i := range states {
		idx <- i
	}
	close(idx)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = fn(states[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// expandOne generates s's τ-successors and (when deduplicating) pre-hashes
// them on the worker, so the serial merge only compares digests. With a
// memo, the whole fan-out is interned per source state and replayed for
// equal states in later traces; interned successors are already hashed and
// frozen, and the returned slice must not be mutated.
func expandOne(s *OsState, hash bool, memo *ConsTable) []*OsState {
	if memo != nil {
		if succs, ok := memo.Get(s, tauExpandKey); ok {
			return succs
		}
	}
	var out []*OsState
	for _, pid := range CallingPids(s) {
		out = append(out, TauFor(s, pid)...)
	}
	if memo != nil {
		return memo.Put(s, tauExpandKey, out) // hashes and freezes out
	}
	if hash {
		for _, ns := range out {
			ns.Hash()
		}
	}
	return out
}

// AllowedReturn describes the return value(s) a state in RsReturning allows
// for pid, for diagnostics.
func AllowedReturn(s *OsState, pid types.Pid) (string, bool) {
	p, ok := s.procs[pid]
	if !ok || p.Run != RsReturning || p.PendingRet == nil {
		return "", false
	}
	if rd, ok := p.PendingRet.(PendingReaddir); ok {
		return rd.DescribeAgainst(s), true
	}
	return p.PendingRet.Describe(), true
}

// RecoverReturns synthesises successor states as if an allowed return value
// had been observed — the Fig 4 behaviour ("continuing with EEXIST,
// ENOTEMPTY") that lets the checker proceed past a non-conformant step.
func RecoverReturns(s *OsState, pid types.Pid) []*OsState {
	p, ok := s.procs[pid]
	if !ok || p.Run != RsReturning || p.PendingRet == nil {
		return nil
	}
	var rvs []types.RetValue
	switch pend := p.PendingRet.(type) {
	case PendingExact:
		rvs = []types.RetValue{pend.Rv}
	case PendingAny:
		rvs = []types.RetValue{types.RvNone{}}
	case PendingReadPrefix:
		rvs = []types.RetValue{types.RvBytes{Data: pend.Data}}
	case PendingWriteUpTo:
		rvs = []types.RetValue{types.RvNum{N: int64(len(pend.Data))}}
	case PendingReaddir:
		h := pend.handle(s)
		if h == nil {
			rvs = []types.RetValue{types.RvDirent{End: true}}
			break
		}
		must, _ := refreshedSets(s, h)
		if len(must) == 0 {
			rvs = append(rvs, types.RvDirent{End: true})
		}
		for n := range must {
			rvs = append(rvs, types.RvDirent{Name: n})
		}
	default:
		rvs = []types.RetValue{types.RvNone{}}
	}
	var out []*OsState
	for _, rv := range rvs {
		out = append(out, Trans(s, types.ReturnLabel{Pid: pid, Ret: rv})...)
	}
	return out
}

// ResetToRunning returns a copy of s with pid forced back to the running
// state, discarding any pending call — the last-resort recovery when no
// state can explain an observation at all.
func ResetToRunning(s *OsState, pid types.Pid) *OsState {
	c := s.Clone()
	if p := c.mutProc(pid); p != nil {
		p.Run = RsRunning
		p.PendingCmd = nil
		p.PendingRet = nil
	}
	return c
}
