package osspec

import "repro/internal/types"

// TauFor processes the pending call of exactly pid (the checker linearises
// call processing at return time, which is sound for traces where each
// return is observed: the τ can occur at any point between call and return,
// and choosing the latest allowed point never excludes behaviour for the
// sequentially-executed traces the harness produces — §6.3).
func TauFor(s *OsState, pid types.Pid) []*OsState {
	p, ok := s.Procs[pid]
	if !ok || p.Run != RsCalling {
		return nil
	}
	return processCall(s, pid, p.PendingCmd)
}

// AllowedReturn describes the return value(s) a state in RsReturning allows
// for pid, for diagnostics.
func AllowedReturn(s *OsState, pid types.Pid) (string, bool) {
	p, ok := s.Procs[pid]
	if !ok || p.Run != RsReturning || p.PendingRet == nil {
		return "", false
	}
	if rd, ok := p.PendingRet.(PendingReaddir); ok {
		return rd.DescribeAgainst(s), true
	}
	return p.PendingRet.Describe(), true
}

// RecoverReturns synthesises successor states as if an allowed return value
// had been observed — the Fig 4 behaviour ("continuing with EEXIST,
// ENOTEMPTY") that lets the checker proceed past a non-conformant step.
func RecoverReturns(s *OsState, pid types.Pid) []*OsState {
	p, ok := s.Procs[pid]
	if !ok || p.Run != RsReturning || p.PendingRet == nil {
		return nil
	}
	var rvs []types.RetValue
	switch pend := p.PendingRet.(type) {
	case PendingExact:
		rvs = []types.RetValue{pend.Rv}
	case PendingAny:
		rvs = []types.RetValue{types.RvNone{}}
	case PendingReadPrefix:
		rvs = []types.RetValue{types.RvBytes{Data: pend.Data}}
	case PendingWriteUpTo:
		rvs = []types.RetValue{types.RvNum{N: int64(len(pend.Data))}}
	case PendingReaddir:
		h := pend.handle(s)
		if h == nil {
			rvs = []types.RetValue{types.RvDirent{End: true}}
			break
		}
		must, _ := refreshedSets(s, h)
		if len(must) == 0 {
			rvs = append(rvs, types.RvDirent{End: true})
		}
		for n := range must {
			rvs = append(rvs, types.RvDirent{Name: n})
		}
	default:
		rvs = []types.RetValue{types.RvNone{}}
	}
	var out []*OsState
	for _, rv := range rvs {
		out = append(out, Trans(s, types.ReturnLabel{Pid: pid, Ret: rv})...)
	}
	return out
}

// ResetToRunning returns a copy of s with pid forced back to the running
// state, discarding any pending call — the last-resort recovery when no
// state can explain an observation at all.
func ResetToRunning(s *OsState, pid types.Pid) *OsState {
	c := s.Clone()
	if p, ok := c.Procs[pid]; ok {
		p.Run = RsRunning
		p.PendingCmd = nil
		p.PendingRet = nil
	}
	return c
}
