package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestParseScriptFig2(t *testing.T) {
	text := `@type script
# Test rename___rename_emptydir___nonemptydir
mkdir "emptydir" 0o777
mkdir "nonemptydir" 0o777
open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
rename "emptydir" "nonemptydir"
`
	s, err := ParseScript(text)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "rename___rename_emptydir___nonemptydir" {
		t.Errorf("name = %q", s.Name)
	}
	if len(s.Steps) != 4 {
		t.Fatalf("steps = %d", len(s.Steps))
	}
	call, ok := s.Steps[2].Label.(types.CallLabel)
	if !ok {
		t.Fatalf("step 2 is %T", s.Steps[2].Label)
	}
	open, ok := call.Cmd.(types.Open)
	if !ok || !open.Flags.Has(types.OCreat) || !open.Flags.Has(types.OWronly) || open.Perm != 0o666 {
		t.Errorf("open parsed wrong: %+v", open)
	}
}

func TestParseTraceFig3(t *testing.T) {
	text := `@type trace
# Test rename___rename_emptydir___nonemptydir
1: mkdir "emptydir" 0o777
1: RV_none
1: rename "emptydir" "nonemptydir"
1: EPERM
`
	tr, err := ParseTrace(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != 4 {
		t.Fatalf("steps = %d", len(tr.Steps))
	}
	ret, ok := tr.Steps[3].Label.(types.ReturnLabel)
	if !ok {
		t.Fatalf("step 3 is %T", tr.Steps[3].Label)
	}
	if e, ok := ret.Ret.(types.RvErr); !ok || e.Err != types.EPERM {
		t.Errorf("return parsed wrong: %v", ret.Ret)
	}
}

func TestParseHeaderEnforced(t *testing.T) {
	if _, err := ParseScript("mkdir \"d\" 0o777\n"); err == nil {
		t.Error("missing header accepted")
	}
	if _, err := ParseScript("@type trace\n"); err == nil {
		t.Error("wrong header accepted")
	}
}

// TestLabelRoundtrip: every command and return value survives a
// render→parse cycle (the paper's tooling depends on stable trace syntax).
func TestLabelRoundtrip(t *testing.T) {
	labels := []types.Label{
		types.CallLabel{Pid: 1, Cmd: types.Mkdir{Path: "a b", Perm: 0o750}},
		types.CallLabel{Pid: 2, Cmd: types.Rmdir{Path: "/x/"}},
		types.CallLabel{Pid: 1, Cmd: types.Link{Src: "a", Dst: "b"}},
		types.CallLabel{Pid: 1, Cmd: types.Unlink{Path: `we"ird`}},
		types.CallLabel{Pid: 1, Cmd: types.Rename{Src: "", Dst: "//"}},
		types.CallLabel{Pid: 1, Cmd: types.Symlink{Target: "t", Linkpath: "l"}},
		types.CallLabel{Pid: 1, Cmd: types.Readlink{Path: "s"}},
		types.CallLabel{Pid: 1, Cmd: types.Stat{Path: "p"}},
		types.CallLabel{Pid: 1, Cmd: types.Lstat{Path: "p"}},
		types.CallLabel{Pid: 1, Cmd: types.Chdir{Path: "d"}},
		types.CallLabel{Pid: 1, Cmd: types.Chmod{Path: "p", Perm: 0o4755}},
		types.CallLabel{Pid: 1, Cmd: types.Chown{Path: "p", Uid: 5, Gid: 6}},
		types.CallLabel{Pid: 1, Cmd: types.Truncate{Path: "p", Len: -3}},
		types.CallLabel{Pid: 1, Cmd: types.Umask{Mask: 0o22}},
		types.CallLabel{Pid: 1, Cmd: types.Open{Path: "f", Flags: types.ORdwr | types.OAppend}},
		types.CallLabel{Pid: 1, Cmd: types.Open{Path: "f", Flags: types.OCreat, Perm: 0o600, HasPerm: true}},
		types.CallLabel{Pid: 1, Cmd: types.Close{FD: 9}},
		types.CallLabel{Pid: 1, Cmd: types.Read{FD: 3, Size: 10}},
		types.CallLabel{Pid: 1, Cmd: types.Write{FD: 3, Data: []byte("x\ny"), Size: 3}},
		types.CallLabel{Pid: 1, Cmd: types.Pread{FD: 3, Size: 4, Off: -2}},
		types.CallLabel{Pid: 1, Cmd: types.Pwrite{FD: 3, Data: []byte{0}, Size: 1, Off: 7}},
		types.CallLabel{Pid: 1, Cmd: types.Lseek{FD: 3, Off: -5, Whence: types.SeekCur}},
		types.CallLabel{Pid: 1, Cmd: types.Opendir{Path: "d"}},
		types.CallLabel{Pid: 1, Cmd: types.Readdir{DH: 2}},
		types.CallLabel{Pid: 1, Cmd: types.Closedir{DH: 2}},
		types.CallLabel{Pid: 1, Cmd: types.Rewinddir{DH: 2}},
		types.CallLabel{Pid: 1, Cmd: types.AddUserToGroup{Uid: 7, Gid: 8}},
		types.ReturnLabel{Pid: 1, Ret: types.RvNone{}},
		types.ReturnLabel{Pid: 4, Ret: types.RvNum{N: -1}},
		types.ReturnLabel{Pid: 1, Ret: types.RvBytes{Data: []byte("a\"b")}},
		types.ReturnLabel{Pid: 1, Ret: types.RvErr{Err: types.ENOTEMPTY}},
		types.ReturnLabel{Pid: 1, Ret: types.RvFD{FD: 3}},
		types.ReturnLabel{Pid: 1, Ret: types.RvDH{DH: 1}},
		types.ReturnLabel{Pid: 1, Ret: types.RvDirent{Name: "e"}},
		types.ReturnLabel{Pid: 1, Ret: types.RvDirent{End: true}},
		types.ReturnLabel{Pid: 1, Ret: types.RvPerm{Perm: 0o77}},
		types.ReturnLabel{Pid: 1, Ret: types.RvStats{Stats: types.Stats{
			Kind: types.KindSymlink, Perm: 0o777, Size: 5, Nlink: 2, Uid: 3, Gid: 4,
		}}},
		types.CreateLabel{Pid: 2, Uid: 1000, Gid: 1000},
		types.DestroyLabel{Pid: 2},
		types.TauLabel{},
	}
	for _, l := range labels {
		line := renderLabel(l)
		got, err := ParseLabel(line)
		if err != nil {
			t.Errorf("parse %q: %v", line, err)
			continue
		}
		if got.String() != l.String() {
			t.Errorf("roundtrip %q -> %q", l, got)
		}
	}
}

func TestScriptRenderParseRoundtrip(t *testing.T) {
	s := &Script{Name: "demo", Steps: []Step{
		{Label: types.CallLabel{Pid: 1, Cmd: types.Mkdir{Path: "d", Perm: 0o755}}},
		{Label: types.CreateLabel{Pid: 2, Uid: 1, Gid: 1}},
		{Label: types.CallLabel{Pid: 2, Cmd: types.Stat{Path: "d"}}},
		{Label: types.DestroyLabel{Pid: 2}},
	}}
	got, err := ParseScript(s.Render())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "demo" || len(got.Steps) != 4 {
		t.Fatalf("roundtrip lost data: %+v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`mkdir "unterminated`,
		`mkdir "d"`,
		`mkdir "d" 0o777 extra`,
		`frobnicate "d"`,
		`open "f" O_CREAT`,
		`close (XX 3)`,
		`lseek (FD 3) 0 SEEK_HOLE`,
		`1: RV_num(abc)`,
	}
	for _, line := range bad {
		if _, err := ParseLabel(line); err == nil {
			t.Errorf("ParseLabel(%q) unexpectedly succeeded", line)
		}
	}
}

func TestStatsRecordParsing(t *testing.T) {
	st, err := parseStatsRecord("{ st_kind=S_IFDIR; st_perm=0o755; st_size=0; st_nlink=3; st_uid=1; st_gid=2 }")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != types.KindDir || st.Perm != 0o755 || st.Nlink != 3 || st.Uid != 1 || st.Gid != 2 {
		t.Errorf("parsed %+v", st)
	}
	if _, err := parseStatsRecord("{ st_weird=1 }"); err == nil {
		t.Error("unknown field accepted")
	}
}

// Property: rendering any string through a write command and parsing it
// back preserves the data exactly (quoting is sound).
func TestQuotingProperty(t *testing.T) {
	f := func(data []byte) bool {
		l := types.CallLabel{Pid: 1, Cmd: types.Write{FD: 3, Data: data, Size: int64(len(data))}}
		got, err := ParseLabel(renderLabel(l))
		if err != nil {
			return false
		}
		call, ok := got.(types.CallLabel)
		if !ok {
			return false
		}
		w, ok := call.Cmd.(types.Write)
		return ok && string(w.Data) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizerEdgeCases(t *testing.T) {
	toks, err := tokenize(`a "b c" [X;Y] (FD 3) { k=v } end`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", `"b c"`, "[X;Y]", "(FD 3)", "{ k=v }", "end"}
	if len(toks) != len(want) {
		t.Fatalf("toks = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("tok %d = %q want %q", i, toks[i], want[i])
		}
	}
	for _, bad := range []string{`"unterminated`, "[unterminated", "(unterminated", "{unterminated"} {
		if _, err := tokenize(bad); err == nil {
			t.Errorf("tokenize(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestRenderContainsHeader(t *testing.T) {
	s := &Script{Name: "n"}
	if !strings.HasPrefix(s.Render(), "@type script\n") {
		t.Error("script header missing")
	}
	tr := &Trace{Name: "n"}
	if !strings.HasPrefix(tr.Render(), "@type trace\n") {
		t.Error("trace header missing")
	}
}
