package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// tokenize splits a script/trace line into tokens: quoted strings (kept
// with their quotes), bracketed flag lists ("[O_CREAT;O_WRONLY]"),
// parenthesised handles ("(FD 3)"), stats records ("{ ... }") and plain
// words. The concrete syntax is simple enough for a hand-rolled scanner.
func tokenize(line string) ([]string, error) {
	var toks []string
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '"':
			j := i + 1
			for j < n {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("unterminated string")
			}
			toks = append(toks, line[i:j+1])
			i = j + 1
		case c == '[':
			j := strings.IndexByte(line[i:], ']')
			if j < 0 {
				return nil, fmt.Errorf("unterminated flag list")
			}
			toks = append(toks, line[i:i+j+1])
			i += j + 1
		case c == '(':
			j := strings.IndexByte(line[i:], ')')
			if j < 0 {
				return nil, fmt.Errorf("unterminated handle")
			}
			toks = append(toks, line[i:i+j+1])
			i += j + 1
		case c == '{':
			j := strings.IndexByte(line[i:], '}')
			if j < 0 {
				return nil, fmt.Errorf("unterminated record")
			}
			toks = append(toks, line[i:i+j+1])
			i += j + 1
		default:
			j := i
			for j < n && line[j] != ' ' && line[j] != '\t' {
				// A word containing '(' runs to the matching ')', so
				// "RV_file_descriptor(FD 3)" is a single token.
				if line[j] == '(' {
					k := strings.IndexByte(line[j:], ')')
					if k < 0 {
						return nil, fmt.Errorf("unterminated parenthesis")
					}
					j += k + 1
					continue
				}
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		}
	}
	return toks, nil
}

func unquote(tok string) (string, error) {
	if len(tok) < 2 || tok[0] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", tok)
	}
	return strconv.Unquote(tok)
}

func parseInt(tok string) (int64, error) {
	return strconv.ParseInt(tok, 10, 64)
}

// parsePerm accepts "0oNNN" (trace syntax) and plain octal/decimal.
func parsePerm(tok string) (uint32, error) {
	s := tok
	base := 10
	if strings.HasPrefix(s, "0o") || strings.HasPrefix(s, "0O") {
		s = s[2:]
		base = 8
	} else if strings.HasPrefix(s, "0") && len(s) > 1 {
		s = s[1:]
		base = 8
	}
	v, err := strconv.ParseUint(s, base, 32)
	if err != nil {
		return 0, fmt.Errorf("bad permission %q: %v", tok, err)
	}
	return uint32(v), nil
}

// parseHandle accepts "(FD 3)" or "(DH 2)", returning the kind and number.
func parseHandle(tok string) (kind string, n int64, err error) {
	if len(tok) < 2 || tok[0] != '(' || tok[len(tok)-1] != ')' {
		return "", 0, fmt.Errorf("expected handle, got %q", tok)
	}
	parts := strings.Fields(tok[1 : len(tok)-1])
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("malformed handle %q", tok)
	}
	n, err = strconv.ParseInt(parts[1], 10, 64)
	return parts[0], n, err
}
