package trace

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Step is one label of a script or trace, with its source line for
// diagnostics.
type Step struct {
	Label types.Label
	Line  int
}

// Script is a parsed test script: the calls (and process events) to drive
// against a file system under test.
type Script struct {
	Name  string
	Steps []Step
}

// Trace is a parsed trace: the full sequence of call and return labels
// observed when a script was executed (Fig 3).
type Trace struct {
	Name  string
	Steps []Step
}

// Render prints a script in concrete syntax.
func (s *Script) Render() string {
	var b strings.Builder
	b.WriteString("@type script\n")
	if s.Name != "" {
		fmt.Fprintf(&b, "# Test %s\n", s.Name)
	}
	for _, st := range s.Steps {
		b.WriteString(renderLabel(st.Label))
		b.WriteByte('\n')
	}
	return b.String()
}

// Render prints a trace in concrete syntax.
func (t *Trace) Render() string {
	var b strings.Builder
	b.WriteString("@type trace\n")
	if t.Name != "" {
		fmt.Fprintf(&b, "# Test %s\n", t.Name)
	}
	for _, st := range t.Steps {
		b.WriteString(renderLabel(st.Label))
		b.WriteByte('\n')
	}
	return b.String()
}

func renderLabel(l types.Label) string {
	if l == nil {
		return "# unknown label"
	}
	// Every label kind's String renders exactly the concrete trace syntax.
	return l.String()
}
