// Package trace defines the concrete syntax of test scripts and traces
// (Figs 2–4 of the paper) and their parser and printer.
//
// A script is a header line "@type script" followed by commands, one per
// line. A command line may carry a process prefix ("2: mkdir ..."); without
// one it belongs to process 1. "create PID UID GID" and "destroy PID"
// manage processes. Comments start with '#'.
//
// A trace is a header line "@type trace" followed by alternating call and
// return lines; both carry the pid prefix. Return lines hold a return value
// ("RV_none", "RV_num(3)", ...) or an error name ("ENOENT").
package trace
