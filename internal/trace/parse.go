package trace

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// ParseScript parses script concrete syntax (Fig 2).
func ParseScript(text string) (*Script, error) {
	s := &Script{}
	err := parseLines(text, "script", func(line int, lbl types.Label) {
		s.Steps = append(s.Steps, Step{Label: lbl, Line: line})
	}, &s.Name)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// ParseTrace parses trace concrete syntax (Fig 3).
func ParseTrace(text string) (*Trace, error) {
	t := &Trace{}
	err := parseLines(text, "trace", func(line int, lbl types.Label) {
		t.Steps = append(t.Steps, Step{Label: lbl, Line: line})
	}, &t.Name)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func parseLines(text, want string, emit func(int, types.Label), name *string) error {
	lines := strings.Split(text, "\n")
	sawHeader := false
	for i, raw := range lines {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "@type") {
			got := strings.TrimSpace(strings.TrimPrefix(line, "@type"))
			if got != want {
				return fmt.Errorf("line %d: expected @type %s, got %q", lineNo, want, got)
			}
			sawHeader = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			c := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if strings.HasPrefix(c, "Test ") && *name == "" {
				*name = strings.TrimPrefix(c, "Test ")
			}
			continue
		}
		if !sawHeader {
			return fmt.Errorf("line %d: missing @type %s header", lineNo, want)
		}
		lbl, err := ParseLabel(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		emit(lineNo, lbl)
	}
	return nil
}

// ParseLabel parses one call, return, create, destroy or tau line.
func ParseLabel(line string) (types.Label, error) {
	toks, err := tokenize(line)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty label")
	}
	switch toks[0] {
	case "tau":
		return types.TauLabel{}, nil
	case "crash":
		if len(toks) != 2 {
			return nil, fmt.Errorf("crash needs KEEP (pending effects surviving)")
		}
		keep, err := parseInt(toks[1])
		if err != nil || keep < 0 {
			return nil, fmt.Errorf("bad crash keep count")
		}
		return types.CrashLabel{Keep: int(keep)}, nil
	case "create":
		if len(toks) != 4 {
			return nil, fmt.Errorf("create needs PID UID GID")
		}
		pid, e1 := parseInt(toks[1])
		uid, e2 := parseInt(toks[2])
		gid, e3 := parseInt(toks[3])
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, fmt.Errorf("bad create arguments")
		}
		return types.CreateLabel{Pid: types.Pid(pid), Uid: types.Uid(uid), Gid: types.Gid(gid)}, nil
	case "destroy":
		if len(toks) != 2 {
			return nil, fmt.Errorf("destroy needs PID")
		}
		pid, err := parseInt(toks[1])
		if err != nil {
			return nil, fmt.Errorf("bad destroy pid")
		}
		return types.DestroyLabel{Pid: types.Pid(pid)}, nil
	}

	// "PID:" prefix; default pid 1 for bare command lines.
	pid := types.Pid(1)
	rest := toks
	if strings.HasSuffix(toks[0], ":") {
		n, err := strconv.ParseInt(strings.TrimSuffix(toks[0], ":"), 10, 32)
		if err == nil {
			pid = types.Pid(n)
			rest = toks[1:]
		}
	}
	if len(rest) == 0 {
		return nil, fmt.Errorf("missing command or return value")
	}
	if rv, ok, err := parseRetValue(rest); ok || err != nil {
		if err != nil {
			return nil, err
		}
		return types.ReturnLabel{Pid: pid, Ret: rv}, nil
	}
	cmd, err := parseCommand(rest)
	if err != nil {
		return nil, err
	}
	return types.CallLabel{Pid: pid, Cmd: cmd}, nil
}

// parseRetValue recognises return-value tokens; ok=false means the tokens
// are not a return value (so should be parsed as a command).
func parseRetValue(toks []string) (types.RetValue, bool, error) {
	t0 := toks[0]
	if e, ok := types.ParseErrno(t0); ok {
		return types.RvErr{Err: e}, true, nil
	}
	switch {
	case t0 == "RV_none":
		return types.RvNone{}, true, nil
	case t0 == "RV_readdir_end":
		return types.RvDirent{End: true}, true, nil
	case strings.HasPrefix(t0, "RV_num("):
		inner := strings.TrimSuffix(strings.TrimPrefix(t0, "RV_num("), ")")
		n, err := parseInt(inner)
		if err != nil {
			return nil, true, fmt.Errorf("bad RV_num: %v", err)
		}
		return types.RvNum{N: n}, true, nil
	case strings.HasPrefix(t0, "RV_bytes("):
		inner := strings.TrimSuffix(strings.TrimPrefix(t0, "RV_bytes("), ")")
		s, err := strconv.Unquote(inner)
		if err != nil {
			return nil, true, fmt.Errorf("bad RV_bytes: %v", err)
		}
		return types.RvBytes{Data: []byte(s)}, true, nil
	case strings.HasPrefix(t0, "RV_readdir("):
		inner := strings.TrimSuffix(strings.TrimPrefix(t0, "RV_readdir("), ")")
		s, err := strconv.Unquote(inner)
		if err != nil {
			return nil, true, fmt.Errorf("bad RV_readdir: %v", err)
		}
		return types.RvDirent{Name: s}, true, nil
	case strings.HasPrefix(t0, "RV_file_descriptor("):
		inner := "(" + strings.TrimSuffix(strings.TrimPrefix(t0, "RV_file_descriptor("), ")") + ")"
		kind, n, err := parseHandle(inner)
		if err != nil || kind != "FD" {
			return nil, true, fmt.Errorf("bad RV_file_descriptor")
		}
		return types.RvFD{FD: types.FD(n)}, true, nil
	case strings.HasPrefix(t0, "RV_dir_handle("):
		inner := "(" + strings.TrimSuffix(strings.TrimPrefix(t0, "RV_dir_handle("), ")") + ")"
		kind, n, err := parseHandle(inner)
		if err != nil || kind != "DH" {
			return nil, true, fmt.Errorf("bad RV_dir_handle")
		}
		return types.RvDH{DH: types.DH(n)}, true, nil
	case strings.HasPrefix(t0, "RV_perm("):
		inner := strings.TrimSuffix(strings.TrimPrefix(t0, "RV_perm("), ")")
		p, err := parsePerm(inner)
		if err != nil {
			return nil, true, err
		}
		return types.RvPerm{Perm: types.Perm(p)}, true, nil
	case t0 == "RV_stats":
		if len(toks) < 2 {
			return nil, true, fmt.Errorf("RV_stats needs a record")
		}
		st, err := parseStatsRecord(toks[1])
		if err != nil {
			return nil, true, err
		}
		return types.RvStats{Stats: st}, true, nil
	}
	return nil, false, nil
}

// parseStatsRecord parses "{ st_kind=S_IFREG; st_perm=0o644; ... }".
func parseStatsRecord(tok string) (types.Stats, error) {
	var st types.Stats
	if len(tok) < 2 || tok[0] != '{' || tok[len(tok)-1] != '}' {
		return st, fmt.Errorf("expected stats record, got %q", tok)
	}
	body := tok[1 : len(tok)-1]
	for _, field := range strings.Split(body, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			return st, fmt.Errorf("bad stats field %q", field)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "st_kind":
			switch val {
			case "S_IFREG":
				st.Kind = types.KindFile
			case "S_IFDIR":
				st.Kind = types.KindDir
			case "S_IFLNK":
				st.Kind = types.KindSymlink
			default:
				return st, fmt.Errorf("bad st_kind %q", val)
			}
		case "st_perm":
			p, err := parsePerm(val)
			if err != nil {
				return st, err
			}
			st.Perm = types.Perm(p)
		case "st_size":
			n, err := parseInt(val)
			if err != nil {
				return st, err
			}
			st.Size = n
		case "st_nlink":
			n, err := parseInt(val)
			if err != nil {
				return st, err
			}
			st.Nlink = int(n)
		case "st_uid":
			n, err := parseInt(val)
			if err != nil {
				return st, err
			}
			st.Uid = types.Uid(n)
		case "st_gid":
			n, err := parseInt(val)
			if err != nil {
				return st, err
			}
			st.Gid = types.Gid(n)
		case "st_ino":
			n, err := parseInt(val)
			if err != nil {
				return st, err
			}
			st.Ino = n
		default:
			return st, fmt.Errorf("unknown stats field %q", key)
		}
	}
	return st, nil
}

// parseCommand parses a libc command invocation.
func parseCommand(toks []string) (types.Command, error) {
	op := toks[0]
	args := toks[1:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: expected %d arguments, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case "mkdir":
		if err := need(2); err != nil {
			return nil, err
		}
		p, err := unquote(args[0])
		if err != nil {
			return nil, err
		}
		perm, err := parsePerm(args[1])
		if err != nil {
			return nil, err
		}
		return types.Mkdir{Path: p, Perm: types.Perm(perm)}, nil
	case "rmdir", "unlink", "stat", "lstat", "opendir", "chdir", "readlink":
		if err := need(1); err != nil {
			return nil, err
		}
		p, err := unquote(args[0])
		if err != nil {
			return nil, err
		}
		switch op {
		case "rmdir":
			return types.Rmdir{Path: p}, nil
		case "unlink":
			return types.Unlink{Path: p}, nil
		case "stat":
			return types.Stat{Path: p}, nil
		case "lstat":
			return types.Lstat{Path: p}, nil
		case "opendir":
			return types.Opendir{Path: p}, nil
		case "chdir":
			return types.Chdir{Path: p}, nil
		default:
			return types.Readlink{Path: p}, nil
		}
	case "link", "rename", "symlink":
		if err := need(2); err != nil {
			return nil, err
		}
		a, err := unquote(args[0])
		if err != nil {
			return nil, err
		}
		b, err := unquote(args[1])
		if err != nil {
			return nil, err
		}
		switch op {
		case "link":
			return types.Link{Src: a, Dst: b}, nil
		case "rename":
			return types.Rename{Src: a, Dst: b}, nil
		default:
			return types.Symlink{Target: a, Linkpath: b}, nil
		}
	case "open":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("open: expected 2 or 3 arguments")
		}
		p, err := unquote(args[0])
		if err != nil {
			return nil, err
		}
		fl, ok := types.ParseOpenFlags(args[1])
		if !ok {
			return nil, fmt.Errorf("open: bad flags %q", args[1])
		}
		cmd := types.Open{Path: p, Flags: fl}
		if len(args) == 3 {
			perm, err := parsePerm(args[2])
			if err != nil {
				return nil, err
			}
			cmd.Perm = types.Perm(perm)
			cmd.HasPerm = true
		}
		return cmd, nil
	case "close", "readdir", "closedir", "rewinddir":
		if err := need(1); err != nil {
			return nil, err
		}
		kind, n, err := parseHandle(args[0])
		if err != nil {
			return nil, err
		}
		switch op {
		case "close":
			if kind != "FD" {
				return nil, fmt.Errorf("close needs (FD n)")
			}
			return types.Close{FD: types.FD(n)}, nil
		case "readdir":
			if kind != "DH" {
				return nil, fmt.Errorf("readdir needs (DH n)")
			}
			return types.Readdir{DH: types.DH(n)}, nil
		case "closedir":
			if kind != "DH" {
				return nil, fmt.Errorf("closedir needs (DH n)")
			}
			return types.Closedir{DH: types.DH(n)}, nil
		default:
			if kind != "DH" {
				return nil, fmt.Errorf("rewinddir needs (DH n)")
			}
			return types.Rewinddir{DH: types.DH(n)}, nil
		}
	case "read":
		if err := need(2); err != nil {
			return nil, err
		}
		_, fd, err := parseHandle(args[0])
		if err != nil {
			return nil, err
		}
		n, err := parseInt(args[1])
		if err != nil {
			return nil, err
		}
		return types.Read{FD: types.FD(fd), Size: n}, nil
	case "pread":
		if err := need(3); err != nil {
			return nil, err
		}
		_, fd, err := parseHandle(args[0])
		if err != nil {
			return nil, err
		}
		n, err := parseInt(args[1])
		if err != nil {
			return nil, err
		}
		off, err := parseInt(args[2])
		if err != nil {
			return nil, err
		}
		return types.Pread{FD: types.FD(fd), Size: n, Off: off}, nil
	case "write":
		if err := need(3); err != nil {
			return nil, err
		}
		_, fd, err := parseHandle(args[0])
		if err != nil {
			return nil, err
		}
		data, err := unquote(args[1])
		if err != nil {
			return nil, err
		}
		n, err := parseInt(args[2])
		if err != nil {
			return nil, err
		}
		return types.Write{FD: types.FD(fd), Data: []byte(data), Size: n}, nil
	case "pwrite":
		if err := need(4); err != nil {
			return nil, err
		}
		_, fd, err := parseHandle(args[0])
		if err != nil {
			return nil, err
		}
		data, err := unquote(args[1])
		if err != nil {
			return nil, err
		}
		n, err := parseInt(args[2])
		if err != nil {
			return nil, err
		}
		off, err := parseInt(args[3])
		if err != nil {
			return nil, err
		}
		return types.Pwrite{FD: types.FD(fd), Data: []byte(data), Size: n, Off: off}, nil
	case "lseek":
		if err := need(3); err != nil {
			return nil, err
		}
		_, fd, err := parseHandle(args[0])
		if err != nil {
			return nil, err
		}
		off, err := parseInt(args[1])
		if err != nil {
			return nil, err
		}
		w, ok := types.ParseSeekWhence(args[2])
		if !ok {
			return nil, fmt.Errorf("lseek: bad whence %q", args[2])
		}
		return types.Lseek{FD: types.FD(fd), Off: off, Whence: w}, nil
	case "truncate":
		if err := need(2); err != nil {
			return nil, err
		}
		p, err := unquote(args[0])
		if err != nil {
			return nil, err
		}
		n, err := parseInt(args[1])
		if err != nil {
			return nil, err
		}
		return types.Truncate{Path: p, Len: n}, nil
	case "chmod":
		if err := need(2); err != nil {
			return nil, err
		}
		p, err := unquote(args[0])
		if err != nil {
			return nil, err
		}
		perm, err := parsePerm(args[1])
		if err != nil {
			return nil, err
		}
		return types.Chmod{Path: p, Perm: types.Perm(perm)}, nil
	case "chown":
		if err := need(3); err != nil {
			return nil, err
		}
		p, err := unquote(args[0])
		if err != nil {
			return nil, err
		}
		uid, err := parseInt(args[1])
		if err != nil {
			return nil, err
		}
		gid, err := parseInt(args[2])
		if err != nil {
			return nil, err
		}
		return types.Chown{Path: p, Uid: types.Uid(uid), Gid: types.Gid(gid)}, nil
	case "fsync":
		if err := need(1); err != nil {
			return nil, err
		}
		kind, fd, err := parseHandle(args[0])
		if err != nil || kind != "FD" {
			return nil, fmt.Errorf("fsync needs (FD n)")
		}
		return types.Fsync{FD: types.FD(fd)}, nil
	case "sync":
		if err := need(0); err != nil {
			return nil, err
		}
		return types.Sync{}, nil
	case "umask":
		if err := need(1); err != nil {
			return nil, err
		}
		perm, err := parsePerm(args[0])
		if err != nil {
			return nil, err
		}
		return types.Umask{Mask: types.Perm(perm)}, nil
	case "add_user_to_group":
		if err := need(2); err != nil {
			return nil, err
		}
		uid, err := parseInt(args[0])
		if err != nil {
			return nil, err
		}
		gid, err := parseInt(args[1])
		if err != nil {
			return nil, err
		}
		return types.AddUserToGroup{Uid: types.Uid(uid), Gid: types.Gid(gid)}, nil
	}
	return nil, fmt.Errorf("unknown command %q", op)
}
