package core

import (
	"repro/internal/checker"
	"repro/internal/osspec"
	"repro/internal/trace"
	"repro/internal/types"
)

// Oracle is the SibylFS test oracle for one model variant.
type Oracle struct {
	chk *checker.Checker
}

// NewOracle builds the oracle for a spec variant.
func NewOracle(spec types.Spec) *Oracle {
	return &Oracle{chk: checker.New(spec)}
}

// Spec reports the variant this oracle checks against.
func (o *Oracle) Spec() types.Spec { return o.chk.Spec }

// Check decides whether a trace is allowed by the model.
func (o *Oracle) Check(t *trace.Trace) checker.Result { return o.chk.Check(t) }

// CheckAll checks traces concurrently.
func (o *Oracle) CheckAll(ts []*trace.Trace, workers int) []checker.Result {
	return o.chk.CheckAll(ts, workers)
}

// InitialState exposes the LTS's start state (for tools that walk the
// model directly, like the model-debugging aid of §2).
func (o *Oracle) InitialState() *osspec.OsState {
	return osspec.NewOsState(o.chk.Spec)
}

// Step applies os_trans to a single state (model debugging).
func (o *Oracle) Step(s *osspec.OsState, lbl types.Label) []*osspec.OsState {
	return osspec.Trans(s, lbl)
}
