// Package core ties the specification layers into the single artefact the
// paper calls "SibylFS": the executable model usable as a test oracle. The
// substance lives in the layered packages — state (directory/file heap),
// pathres (path resolution), fsspec (per-command semantics), osspec (the
// labelled transition system) and checker (state-set trace checking) — and
// core exposes the oracle as one value, which is what the public sibylfs
// package and the cmd/ tools build on.
package core
