package types

import "strconv"

// Pid identifies a process in the model of processes and the operating
// system (§1.1).
type Pid int

// FD is a per-process file descriptor.
type FD int

// DH is a per-process directory handle as returned by opendir.
type DH int

// Command is the Go encoding of the Lem variant type ty_os_command: one
// constructor per libc function in the model's scope. Go has no algebraic
// data types, so Command is a sealed interface implemented by one small
// struct per libc call; consumers dispatch with a type switch and treat an
// unknown variant as a programming error.
type Command interface {
	// Op returns the libc function name ("rename", "open", ...).
	Op() string
	// String renders the command in trace syntax (Fig 2 of the paper).
	String() string
	// isCommand prevents implementations outside this package.
	isCommand()
}

// The command variants, mirroring §1.1's list of calls in scope.
type (
	// Close models close(fd).
	Close struct{ FD FD }
	// Closedir models closedir(dh).
	Closedir struct{ DH DH }
	// Chdir models chdir(path).
	Chdir struct{ Path string }
	// Chmod models chmod(path, perm).
	Chmod struct {
		Path string
		Perm Perm
	}
	// Chown models chown(path, uid, gid).
	Chown struct {
		Path string
		Uid  Uid
		Gid  Gid
	}
	// Link models link(src, dst).
	Link struct{ Src, Dst string }
	// Lseek models lseek(fd, off, whence).
	Lseek struct {
		FD     FD
		Off    int64
		Whence SeekWhence
	}
	// Lstat models lstat(path).
	Lstat struct{ Path string }
	// Mkdir models mkdir(path, perm).
	Mkdir struct {
		Path string
		Perm Perm
	}
	// Open models open(path, flags[, perm]).
	Open struct {
		Path    string
		Flags   OpenFlags
		Perm    Perm
		HasPerm bool
	}
	// Opendir models opendir(path).
	Opendir struct{ Path string }
	// Pread models pread(fd, size, off).
	Pread struct {
		FD   FD
		Size int64
		Off  int64
	}
	// Pwrite models pwrite(fd, data, size, off).
	Pwrite struct {
		FD   FD
		Data []byte
		Size int64
		Off  int64
	}
	// Read models read(fd, size).
	Read struct {
		FD   FD
		Size int64
	}
	// Readdir models readdir(dh).
	Readdir struct{ DH DH }
	// Readlink models readlink(path).
	Readlink struct{ Path string }
	// Rename models rename(src, dst).
	Rename struct{ Src, Dst string }
	// Rewinddir models rewinddir(dh).
	Rewinddir struct{ DH DH }
	// Rmdir models rmdir(path).
	Rmdir struct{ Path string }
	// Stat models stat(path).
	Stat struct{ Path string }
	// Symlink models symlink(target, linkpath).
	Symlink struct{ Target, Linkpath string }
	// Truncate models truncate(path, len).
	Truncate struct {
		Path string
		Len  int64
	}
	// Unlink models unlink(path).
	Unlink struct{ Path string }
	// Write models write(fd, data, size).
	Write struct {
		FD   FD
		Data []byte
		Size int64
	}
	// Fsync models fsync(fd): flush the descriptor's pending effects to
	// durable storage. The model treats it as a global barrier (see the
	// "Crash consistency" section of ARCHITECTURE.md).
	Fsync struct{ FD FD }
	// Sync models sync(): flush all pending effects to durable storage.
	Sync struct{}
	// Umask models umask(mask).
	Umask struct{ Mask Perm }
	// AddUserToGroup extends the model of users and groups; it is part of
	// the test harness vocabulary rather than libc proper.
	AddUserToGroup struct {
		Uid Uid
		Gid Gid
	}
)

func (Close) isCommand()          {}
func (Closedir) isCommand()       {}
func (Chdir) isCommand()          {}
func (Chmod) isCommand()          {}
func (Chown) isCommand()          {}
func (Link) isCommand()           {}
func (Lseek) isCommand()          {}
func (Lstat) isCommand()          {}
func (Mkdir) isCommand()          {}
func (Open) isCommand()           {}
func (Opendir) isCommand()        {}
func (Pread) isCommand()          {}
func (Pwrite) isCommand()         {}
func (Read) isCommand()           {}
func (Readdir) isCommand()        {}
func (Readlink) isCommand()       {}
func (Rename) isCommand()         {}
func (Rewinddir) isCommand()      {}
func (Rmdir) isCommand()          {}
func (Stat) isCommand()           {}
func (Symlink) isCommand()        {}
func (Truncate) isCommand()       {}
func (Unlink) isCommand()         {}
func (Write) isCommand()          {}
func (Fsync) isCommand()          {}
func (Sync) isCommand()           {}
func (Umask) isCommand()          {}
func (AddUserToGroup) isCommand() {}

// Op implementations.
func (Close) Op() string          { return "close" }
func (Closedir) Op() string       { return "closedir" }
func (Chdir) Op() string          { return "chdir" }
func (Chmod) Op() string          { return "chmod" }
func (Chown) Op() string          { return "chown" }
func (Link) Op() string           { return "link" }
func (Lseek) Op() string          { return "lseek" }
func (Lstat) Op() string          { return "lstat" }
func (Mkdir) Op() string          { return "mkdir" }
func (Open) Op() string           { return "open" }
func (Opendir) Op() string        { return "opendir" }
func (Pread) Op() string          { return "pread" }
func (Pwrite) Op() string         { return "pwrite" }
func (Read) Op() string           { return "read" }
func (Readdir) Op() string        { return "readdir" }
func (Readlink) Op() string       { return "readlink" }
func (Rename) Op() string         { return "rename" }
func (Rewinddir) Op() string      { return "rewinddir" }
func (Rmdir) Op() string          { return "rmdir" }
func (Stat) Op() string           { return "stat" }
func (Symlink) Op() string        { return "symlink" }
func (Truncate) Op() string       { return "truncate" }
func (Unlink) Op() string         { return "unlink" }
func (Write) Op() string          { return "write" }
func (Fsync) Op() string          { return "fsync" }
func (Sync) Op() string           { return "sync" }
func (Umask) Op() string          { return "umask" }
func (AddUserToGroup) Op() string { return "add_user_to_group" }

func q(s string) string { return strconv.Quote(s) }

// String implementations render the trace-file syntax of Fig 2.
func (c Close) String() string    { return "close (FD " + strconv.Itoa(int(c.FD)) + ")" }
func (c Closedir) String() string { return "closedir (DH " + strconv.Itoa(int(c.DH)) + ")" }
func (c Chdir) String() string    { return "chdir " + q(c.Path) }
func (c Chmod) String() string    { return "chmod " + q(c.Path) + " " + c.Perm.String() }
func (c Chown) String() string {
	return "chown " + q(c.Path) + " " + strconv.Itoa(int(c.Uid)) + " " + strconv.Itoa(int(c.Gid))
}
func (c Link) String() string { return "link " + q(c.Src) + " " + q(c.Dst) }
func (c Lseek) String() string {
	return "lseek (FD " + strconv.Itoa(int(c.FD)) + ") " + strconv.FormatInt(c.Off, 10) + " " + c.Whence.String()
}
func (c Lstat) String() string { return "lstat " + q(c.Path) }
func (c Mkdir) String() string { return "mkdir " + q(c.Path) + " " + c.Perm.String() }
func (c Open) String() string {
	if c.HasPerm {
		return "open " + q(c.Path) + " " + c.Flags.String() + " " + c.Perm.String()
	}
	return "open " + q(c.Path) + " " + c.Flags.String()
}
func (c Opendir) String() string { return "opendir " + q(c.Path) }
func (c Pread) String() string {
	return "pread (FD " + strconv.Itoa(int(c.FD)) + ") " + strconv.FormatInt(c.Size, 10) + " " + strconv.FormatInt(c.Off, 10)
}
func (c Pwrite) String() string {
	return "pwrite (FD " + strconv.Itoa(int(c.FD)) + ") " + q(string(c.Data)) + " " + strconv.FormatInt(c.Size, 10) + " " + strconv.FormatInt(c.Off, 10)
}
func (c Read) String() string {
	return "read (FD " + strconv.Itoa(int(c.FD)) + ") " + strconv.FormatInt(c.Size, 10)
}
func (c Readdir) String() string { return "readdir (DH " + strconv.Itoa(int(c.DH)) + ")" }
func (c Readlink) String() string {
	return "readlink " + q(c.Path)
}
func (c Rename) String() string    { return "rename " + q(c.Src) + " " + q(c.Dst) }
func (c Rewinddir) String() string { return "rewinddir (DH " + strconv.Itoa(int(c.DH)) + ")" }
func (c Rmdir) String() string     { return "rmdir " + q(c.Path) }
func (c Stat) String() string      { return "stat " + q(c.Path) }
func (c Symlink) String() string {
	return "symlink " + q(c.Target) + " " + q(c.Linkpath)
}
func (c Truncate) String() string {
	return "truncate " + q(c.Path) + " " + strconv.FormatInt(c.Len, 10)
}
func (c Unlink) String() string { return "unlink " + q(c.Path) }
func (c Write) String() string {
	return "write (FD " + strconv.Itoa(int(c.FD)) + ") " + q(string(c.Data)) + " " + strconv.FormatInt(c.Size, 10)
}
func (c Fsync) String() string { return "fsync (FD " + strconv.Itoa(int(c.FD)) + ")" }
func (Sync) String() string    { return "sync" }
func (c Umask) String() string { return "umask " + c.Mask.String() }
func (c AddUserToGroup) String() string {
	return "add_user_to_group " + strconv.Itoa(int(c.Uid)) + " " + strconv.Itoa(int(c.Gid))
}
