// Package types defines the abstract vocabulary of the SibylFS model:
// error numbers, open flags, file kinds, permissions, libc commands
// (ty_os_command in the paper), transition labels (os_label) and return
// values. It corresponds to the "Types" part of the Lem specification
// (Fig 7 of the paper).
package types
