package types

// Platform selects the variant of the model being checked against
// (contribution point 2 of the paper): the strict POSIX envelope, or the
// observed real-world behaviour of Linux, OS X or FreeBSD.
type Platform int

// The four primary modes supported by SibylFS.
const (
	PlatformPOSIX Platform = iota
	PlatformLinux
	PlatformOSX
	PlatformFreeBSD
)

// String returns the name used in configuration files and reports.
func (p Platform) String() string {
	switch p {
	case PlatformPOSIX:
		return "posix"
	case PlatformLinux:
		return "linux"
	case PlatformOSX:
		return "mac_os_x"
	case PlatformFreeBSD:
		return "freebsd"
	}
	return "unknown"
}

// ParsePlatform maps a configuration name to a Platform.
func ParsePlatform(s string) (Platform, bool) {
	switch s {
	case "posix":
		return PlatformPOSIX, true
	case "linux":
		return PlatformLinux, true
	case "mac_os_x", "osx", "darwin":
		return PlatformOSX, true
	case "freebsd":
		return PlatformFreeBSD, true
	}
	return 0, false
}

// SymlinkLimit is the maximum number of symlink expansions during one path
// resolution before ELOOP, per platform.
func (p Platform) SymlinkLimit() int {
	switch p {
	case PlatformLinux:
		return 40
	default:
		return 32
	}
}

// Spec bundles the model variant and the trait mix-ins (§4 "Traits"): the
// permissions trait can be disabled ("core without permissions"), and
// checking can assume the initial process runs as root.
type Spec struct {
	Platform    Platform
	Permissions bool // false = all files accessible by all users
	Timestamps  bool // reserved; timestamp checking is untested in the paper too
	RootUser    bool // initial process runs with uid 0
	Crash       bool // track durable vs pending state; admit crash labels
}

// DefaultSpec is the configuration used throughout the test suite: the
// Linux variant with the permissions trait mixed in and a root initial
// process, matching the paper's standard Linux platform runs.
func DefaultSpec() Spec {
	return Spec{Platform: PlatformLinux, Permissions: true, RootUser: true}
}

// NameMax and PathMax are the component and path length limits used for
// ENAMETOOLONG checks; all modelled platforms use these values.
const (
	NameMax = 255
	PathMax = 4096
)
