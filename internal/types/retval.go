package types

import (
	"bytes"
	"strconv"
)

// RetValue is the Go encoding of error_or_value ret_value: what a libc call
// returns to the process. Like Command, it is a sealed interface standing
// in for a Lem variant type.
type RetValue interface {
	// String renders the value in trace syntax (Fig 3).
	String() string
	// Equal reports whether two return values are the same observation.
	Equal(RetValue) bool
	isRetValue()
}

// RvNone is a successful call with no interesting value ("RV_none").
type RvNone struct{}

// RvNum is a successful call returning an integer (byte counts, offsets).
type RvNum struct{ N int64 }

// RvBytes is a successful read returning data.
type RvBytes struct{ Data []byte }

// RvStats is a successful stat/lstat.
type RvStats struct{ Stats Stats }

// RvFD is a successful open returning a file descriptor.
type RvFD struct{ FD FD }

// RvDH is a successful opendir returning a directory handle.
type RvDH struct{ DH DH }

// RvDirent is a successful readdir returning one name; End marks
// end-of-directory (readdir returned NULL).
type RvDirent struct {
	Name string
	End  bool
}

// RvErr is an error return.
type RvErr struct{ Err Errno }

// RvPerm is the previous mask returned by umask.
type RvPerm struct{ Perm Perm }

func (RvNone) isRetValue()   {}
func (RvNum) isRetValue()    {}
func (RvBytes) isRetValue()  {}
func (RvStats) isRetValue()  {}
func (RvFD) isRetValue()     {}
func (RvDH) isRetValue()     {}
func (RvDirent) isRetValue() {}
func (RvErr) isRetValue()    {}
func (RvPerm) isRetValue()   {}

func (RvNone) String() string    { return "RV_none" }
func (v RvNum) String() string   { return "RV_num(" + strconv.FormatInt(v.N, 10) + ")" }
func (v RvBytes) String() string { return "RV_bytes(" + strconv.Quote(string(v.Data)) + ")" }
func (v RvStats) String() string { return "RV_stats " + v.Stats.String() }
func (v RvFD) String() string    { return "RV_file_descriptor(FD " + strconv.Itoa(int(v.FD)) + ")" }
func (v RvDH) String() string    { return "RV_dir_handle(DH " + strconv.Itoa(int(v.DH)) + ")" }
func (v RvDirent) String() string {
	if v.End {
		return "RV_readdir_end"
	}
	return "RV_readdir(" + strconv.Quote(v.Name) + ")"
}
func (v RvErr) String() string  { return v.Err.String() }
func (v RvPerm) String() string { return "RV_perm(" + v.Perm.String() + ")" }

// Equal implementations compare observations structurally.
func (RvNone) Equal(o RetValue) bool { _, ok := o.(RvNone); return ok }
func (v RvNum) Equal(o RetValue) bool {
	w, ok := o.(RvNum)
	return ok && v.N == w.N
}
func (v RvBytes) Equal(o RetValue) bool {
	w, ok := o.(RvBytes)
	return ok && bytes.Equal(v.Data, w.Data)
}
func (v RvStats) Equal(o RetValue) bool {
	w, ok := o.(RvStats)
	return ok && v.Stats == w.Stats
}
func (v RvFD) Equal(o RetValue) bool {
	w, ok := o.(RvFD)
	return ok && v.FD == w.FD
}
func (v RvDH) Equal(o RetValue) bool {
	w, ok := o.(RvDH)
	return ok && v.DH == w.DH
}
func (v RvDirent) Equal(o RetValue) bool {
	w, ok := o.(RvDirent)
	return ok && v.End == w.End && v.Name == w.Name
}
func (v RvErr) Equal(o RetValue) bool {
	w, ok := o.(RvErr)
	return ok && v.Err == w.Err
}
func (v RvPerm) Equal(o RetValue) bool {
	w, ok := o.(RvPerm)
	return ok && v.Perm == w.Perm
}

// IsError reports whether rv is an error return.
func IsError(rv RetValue) bool {
	_, ok := rv.(RvErr)
	return ok
}
