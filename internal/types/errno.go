package types

import "fmt"

// Errno is an abstract POSIX error number. The model works with symbolic
// errors, not platform-specific integer values, because the oracle compares
// names observed in traces, not raw integers.
type Errno int

// Error numbers used by the specification. The list covers every error the
// file-system portion of POSIX (and the Linux/OS X/FreeBSD variants) can
// produce for the calls in scope.
const (
	EOK Errno = iota // not an error; internal sentinel, never returned
	EPERM
	ENOENT
	EINTR
	EIO
	EBADF
	EACCES
	EBUSY
	EEXIST
	EXDEV
	ENOTDIR
	EISDIR
	EINVAL
	ENFILE
	EMFILE
	ETXTBSY
	EFBIG
	ENOSPC
	ESPIPE
	EROFS
	EMLINK
	EPIPE
	ENAMETOOLONG
	ENOTEMPTY
	ELOOP
	EOVERFLOW
	EOPNOTSUPP
	ERANGE
	EDQUOT
	ENOSYS
)

var errnoNames = map[Errno]string{
	EOK:          "RV_none",
	EPERM:        "EPERM",
	ENOENT:       "ENOENT",
	EINTR:        "EINTR",
	EIO:          "EIO",
	EBADF:        "EBADF",
	EACCES:       "EACCES",
	EBUSY:        "EBUSY",
	EEXIST:       "EEXIST",
	EXDEV:        "EXDEV",
	ENOTDIR:      "ENOTDIR",
	EISDIR:       "EISDIR",
	EINVAL:       "EINVAL",
	ENFILE:       "ENFILE",
	EMFILE:       "EMFILE",
	ETXTBSY:      "ETXTBSY",
	EFBIG:        "EFBIG",
	ENOSPC:       "ENOSPC",
	ESPIPE:       "ESPIPE",
	EROFS:        "EROFS",
	EMLINK:       "EMLINK",
	EPIPE:        "EPIPE",
	ENAMETOOLONG: "ENAMETOOLONG",
	ENOTEMPTY:    "ENOTEMPTY",
	ELOOP:        "ELOOP",
	EOVERFLOW:    "EOVERFLOW",
	EOPNOTSUPP:   "EOPNOTSUPP",
	ERANGE:       "ERANGE",
	EDQUOT:       "EDQUOT",
	ENOSYS:       "ENOSYS",
}

var errnoByName = func() map[string]Errno {
	m := make(map[string]Errno, len(errnoNames))
	for e, n := range errnoNames {
		m[n] = e
	}
	return m
}()

// String returns the conventional upper-case POSIX name of the error.
func (e Errno) String() string {
	if n, ok := errnoNames[e]; ok {
		return n
	}
	return fmt.Sprintf("E?%d", int(e))
}

// ParseErrno maps a POSIX error name (e.g. "ENOENT") to its Errno. The
// second result reports whether the name was recognised.
func ParseErrno(name string) (Errno, bool) {
	e, ok := errnoByName[name]
	if !ok || e == EOK {
		return 0, false
	}
	return e, true
}

// ErrnoSet is a set of error numbers, used by the specification combinators
// to accumulate the envelope of allowed errors for a call (§4 of the paper).
type ErrnoSet map[Errno]struct{}

// NewErrnoSet builds a set from the given errors.
func NewErrnoSet(es ...Errno) ErrnoSet {
	s := make(ErrnoSet, len(es))
	for _, e := range es {
		s[e] = struct{}{}
	}
	return s
}

// Add inserts the given errors into the set.
func (s ErrnoSet) Add(es ...Errno) {
	for _, e := range es {
		s[e] = struct{}{}
	}
}

// Has reports whether e is in the set.
func (s ErrnoSet) Has(e Errno) bool { _, ok := s[e]; return ok }

// Union adds every element of other to s and returns s.
func (s ErrnoSet) Union(other ErrnoSet) ErrnoSet {
	for e := range other {
		s[e] = struct{}{}
	}
	return s
}

// Sorted returns the elements in ascending numeric order (which matches the
// declaration order above and gives deterministic diagnostics).
func (s ErrnoSet) Sorted() []Errno {
	out := make([]Errno, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Clone returns a copy of the set.
func (s ErrnoSet) Clone() ErrnoSet {
	c := make(ErrnoSet, len(s))
	for e := range s {
		c[e] = struct{}{}
	}
	return c
}
