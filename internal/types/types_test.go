package types

import (
	"testing"
	"testing/quick"
)

func TestErrnoStringRoundtrip(t *testing.T) {
	for e := EPERM; e <= ENOSYS; e++ {
		name := e.String()
		got, ok := ParseErrno(name)
		if !ok {
			t.Fatalf("ParseErrno(%q) failed", name)
		}
		if got != e {
			t.Errorf("roundtrip %v -> %q -> %v", e, name, got)
		}
	}
}

func TestParseErrnoRejectsUnknown(t *testing.T) {
	for _, bad := range []string{"", "EWHAT", "RV_none", "enoent"} {
		if _, ok := ParseErrno(bad); ok {
			t.Errorf("ParseErrno(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestErrnoSetBasics(t *testing.T) {
	s := NewErrnoSet(ENOENT, EEXIST)
	if !s.Has(ENOENT) || !s.Has(EEXIST) || s.Has(EPERM) {
		t.Fatalf("membership wrong: %v", s)
	}
	s.Add(EPERM, EACCES)
	if len(s) != 4 {
		t.Fatalf("Add variadic: %v", s)
	}
	u := NewErrnoSet(ELOOP).Union(s)
	if len(u) != 5 {
		t.Fatalf("Union: %v", u)
	}
	sorted := u.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatalf("Sorted not ascending: %v", sorted)
		}
	}
	c := u.Clone()
	c.Add(EIO)
	if u.Has(EIO) {
		t.Fatal("Clone is not independent")
	}
}

func TestErrnoSetSortedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		s := NewErrnoSet()
		for _, r := range raw {
			s.Add(Errno(int(r)%int(ENOSYS) + 1))
		}
		sorted := s.Sorted()
		if len(sorted) != len(s) {
			return false
		}
		for i := 1; i < len(sorted); i++ {
			if sorted[i-1] >= sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpenFlagsAccessors(t *testing.T) {
	cases := []struct {
		f      OpenFlags
		rd, wr bool
	}{
		{ORdonly, true, false},
		{OWronly, false, true},
		{ORdwr, true, true},
		{OWronly | OAppend, false, true},
		{ORdonly | OCreat, true, false},
	}
	for _, c := range cases {
		if c.f.Readable() != c.rd || c.f.Writable() != c.wr {
			t.Errorf("%v: Readable=%v Writable=%v", c.f, c.f.Readable(), c.f.Writable())
		}
	}
}

func TestOpenFlagsStringParseRoundtrip(t *testing.T) {
	combos := []OpenFlags{
		ORdonly,
		OWronly | OCreat,
		ORdwr | OCreat | OExcl | OTrunc | OAppend,
		ORdonly | ODirectory | ONofollow,
	}
	for _, f := range combos {
		s := f.String()
		got, ok := ParseOpenFlags(s)
		if !ok || got != f {
			t.Errorf("roundtrip %v -> %q -> %v (%v)", f, s, got, ok)
		}
	}
}

func TestParseOpenFlagsErrors(t *testing.T) {
	for _, bad := range []string{"O_CREAT", "[O_WHAT]", "(O_CREAT)"} {
		if _, ok := ParseOpenFlags(bad); ok {
			t.Errorf("ParseOpenFlags(%q) unexpectedly succeeded", bad)
		}
	}
	if f, ok := ParseOpenFlags("[]"); !ok || f != ORdonly {
		t.Errorf("empty flag list should be O_RDONLY")
	}
}

func TestSeekWhenceRoundtrip(t *testing.T) {
	for _, w := range []SeekWhence{SeekSet, SeekCur, SeekEnd} {
		got, ok := ParseSeekWhence(w.String())
		if !ok || got != w {
			t.Errorf("roundtrip %v", w)
		}
	}
	if _, ok := ParseSeekWhence("SEEK_HOLE"); ok {
		t.Error("unknown whence accepted")
	}
}

func TestAccessRequestMasks(t *testing.T) {
	cases := []struct {
		req   AccessRequest
		class int
		mask  Perm
	}{
		{AccessRead, 0, 0o400},
		{AccessWrite, 0, 0o200},
		{AccessExec, 0, 0o100},
		{AccessRead, 1, 0o040},
		{AccessWrite, 2, 0o002},
		{AccessExec, 2, 0o001},
	}
	for _, c := range cases {
		if got := c.req.Mask(c.class); got != c.mask {
			t.Errorf("Mask(%v,%d) = %o, want %o", c.req, c.class, got, c.mask)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Kind: KindFile, Perm: 0o644, Size: 3, Nlink: 1}
	want := "{ st_kind=S_IFREG; st_perm=0o644; st_size=3; st_nlink=1; st_uid=0; st_gid=0 }"
	if s.String() != want {
		t.Errorf("got %q want %q", s.String(), want)
	}
}

func TestCommandStrings(t *testing.T) {
	cases := []struct {
		cmd  Command
		want string
	}{
		{Mkdir{Path: "d", Perm: 0o777}, `mkdir "d" 0o777`},
		{Open{Path: "f", Flags: OCreat | OWronly, Perm: 0o666, HasPerm: true}, `open "f" [O_CREAT;O_WRONLY] 0o666`},
		{Rename{Src: "a", Dst: "b"}, `rename "a" "b"`},
		{Close{FD: 3}, "close (FD 3)"},
		{Readdir{DH: 1}, "readdir (DH 1)"},
		{Lseek{FD: 4, Off: -1, Whence: SeekEnd}, "lseek (FD 4) -1 SEEK_END"},
		{Write{FD: 3, Data: []byte("hi"), Size: 2}, `write (FD 3) "hi" 2`},
		{Symlink{Target: "t", Linkpath: "l"}, `symlink "t" "l"`},
	}
	for _, c := range cases {
		if got := c.cmd.String(); got != c.want {
			t.Errorf("%T: got %q want %q", c.cmd, got, c.want)
		}
	}
}

func TestCommandOpNames(t *testing.T) {
	cmds := []Command{
		Close{}, Closedir{}, Chdir{}, Chmod{}, Chown{}, Link{}, Lseek{},
		Lstat{}, Mkdir{}, Open{}, Opendir{}, Pread{}, Pwrite{}, Read{},
		Readdir{}, Readlink{}, Rename{}, Rewinddir{}, Rmdir{}, Stat{},
		Symlink{}, Truncate{}, Unlink{}, Write{}, Umask{}, AddUserToGroup{},
	}
	seen := map[string]bool{}
	for _, c := range cmds {
		op := c.Op()
		if op == "" || seen[op] {
			t.Errorf("bad or duplicate op %q for %T", op, c)
		}
		seen[op] = true
	}
}

func TestRetValueEquality(t *testing.T) {
	cases := []struct {
		a, b  RetValue
		equal bool
	}{
		{RvNone{}, RvNone{}, true},
		{RvNone{}, RvNum{N: 0}, false},
		{RvNum{N: 3}, RvNum{N: 3}, true},
		{RvNum{N: 3}, RvNum{N: 4}, false},
		{RvBytes{Data: []byte("ab")}, RvBytes{Data: []byte("ab")}, true},
		{RvBytes{Data: []byte("ab")}, RvBytes{Data: []byte("ac")}, false},
		{RvErr{Err: ENOENT}, RvErr{Err: ENOENT}, true},
		{RvErr{Err: ENOENT}, RvErr{Err: EPERM}, false},
		{RvDirent{Name: "x"}, RvDirent{Name: "x"}, true},
		{RvDirent{End: true}, RvDirent{Name: "x"}, false},
		{RvFD{FD: 3}, RvFD{FD: 3}, true},
		{RvDH{DH: 1}, RvDH{DH: 2}, false},
		{RvStats{Stats: Stats{Size: 1}}, RvStats{Stats: Stats{Size: 1}}, true},
		{RvStats{Stats: Stats{Size: 1}}, RvStats{Stats: Stats{Size: 2}}, false},
		{RvPerm{Perm: 0o22}, RvPerm{Perm: 0o22}, true},
	}
	for i, c := range cases {
		if c.a.Equal(c.b) != c.equal {
			t.Errorf("case %d: %v vs %v", i, c.a, c.b)
		}
	}
}

func TestIsError(t *testing.T) {
	if !IsError(RvErr{Err: EIO}) || IsError(RvNone{}) {
		t.Fatal("IsError misclassifies")
	}
}

func TestPlatformParsing(t *testing.T) {
	for _, p := range []Platform{PlatformPOSIX, PlatformLinux, PlatformOSX, PlatformFreeBSD} {
		got, ok := ParsePlatform(p.String())
		if !ok || got != p {
			t.Errorf("roundtrip %v", p)
		}
	}
	if _, ok := ParsePlatform("plan9"); ok {
		t.Error("unknown platform accepted")
	}
}

func TestSymlinkLimits(t *testing.T) {
	if PlatformLinux.SymlinkLimit() != 40 {
		t.Error("linux limit should be 40")
	}
	if PlatformOSX.SymlinkLimit() != 32 || PlatformFreeBSD.SymlinkLimit() != 32 {
		t.Error("BSD limits should be 32")
	}
}

func TestLabelStrings(t *testing.T) {
	cases := []struct {
		l    Label
		want string
	}{
		{CallLabel{Pid: 2, Cmd: Stat{Path: "x"}}, `2: stat "x"`},
		{ReturnLabel{Pid: 1, Ret: RvNone{}}, "1: RV_none"},
		{CreateLabel{Pid: 3, Uid: 10, Gid: 20}, "create 3 10 20"},
		{DestroyLabel{Pid: 3}, "destroy 3"},
		{TauLabel{}, "tau"},
	}
	for _, c := range cases {
		if got := c.l.String(); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
}
