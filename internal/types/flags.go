package types

import (
	"sort"
	"strings"
)

// OpenFlags is the bitfield of flags accepted by open(2). The values are
// abstract (they do not match any particular kernel's encoding); traces use
// the symbolic names.
type OpenFlags uint32

const (
	ORdonly    OpenFlags = 0         // O_RDONLY is the absence of O_WRONLY/O_RDWR
	OWronly    OpenFlags = 1 << iota // O_WRONLY
	ORdwr                            // O_RDWR
	OCreat                           // O_CREAT
	OExcl                            // O_EXCL
	OTrunc                           // O_TRUNC
	OAppend                          // O_APPEND
	ODirectory                       // O_DIRECTORY
	ONofollow                        // O_NOFOLLOW
	OCloexec                         // O_CLOEXEC
	ONonblock                        // O_NONBLOCK
	OSync                            // O_SYNC
	ONoctty                          // O_NOCTTY
)

var openFlagNames = []struct {
	f OpenFlags
	n string
}{
	{OWronly, "O_WRONLY"},
	{ORdwr, "O_RDWR"},
	{OCreat, "O_CREAT"},
	{OExcl, "O_EXCL"},
	{OTrunc, "O_TRUNC"},
	{OAppend, "O_APPEND"},
	{ODirectory, "O_DIRECTORY"},
	{ONofollow, "O_NOFOLLOW"},
	{OCloexec, "O_CLOEXEC"},
	{ONonblock, "O_NONBLOCK"},
	{OSync, "O_SYNC"},
	{ONoctty, "O_NOCTTY"},
}

// Has reports whether all bits of g are set in f.
func (f OpenFlags) Has(g OpenFlags) bool { return f&g == g }

// AccessMode extracts the access-mode portion (O_RDONLY, O_WRONLY or
// O_RDWR). A flag word with both O_WRONLY and O_RDWR set is invalid; the
// spec treats it as O_RDWR on Linux and as EINVAL on POSIX.
func (f OpenFlags) AccessMode() OpenFlags { return f & (OWronly | ORdwr) }

// Readable reports whether the access mode permits reading.
func (f OpenFlags) Readable() bool { return f.AccessMode() == ORdonly || f.Has(ORdwr) }

// Writable reports whether the access mode permits writing.
func (f OpenFlags) Writable() bool { return f.Has(OWronly) || f.Has(ORdwr) }

// String renders the flag set in trace syntax: "[O_CREAT;O_WRONLY]".
func (f OpenFlags) String() string {
	var parts []string
	if f.AccessMode() == ORdonly {
		parts = append(parts, "O_RDONLY")
	}
	for _, fn := range openFlagNames {
		if f.Has(fn.f) {
			parts = append(parts, fn.n)
		}
	}
	sort.Strings(parts)
	return "[" + strings.Join(parts, ";") + "]"
}

// ParseOpenFlags parses trace syntax such as "[O_CREAT;O_WRONLY]".
func ParseOpenFlags(s string) (OpenFlags, bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, false
	}
	s = s[1 : len(s)-1]
	var f OpenFlags
	if s == "" {
		return f, true
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "O_RDONLY" {
			continue
		}
		found := false
		for _, fn := range openFlagNames {
			if fn.n == part {
				f |= fn.f
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return f, true
}

// SeekWhence is the third argument of lseek.
type SeekWhence int

const (
	SeekSet SeekWhence = iota // SEEK_SET
	SeekCur                   // SEEK_CUR
	SeekEnd                   // SEEK_END
)

// String renders the whence in trace syntax.
func (w SeekWhence) String() string {
	switch w {
	case SeekSet:
		return "SEEK_SET"
	case SeekCur:
		return "SEEK_CUR"
	case SeekEnd:
		return "SEEK_END"
	}
	return "SEEK_?"
}

// ParseSeekWhence parses trace syntax for the lseek whence argument.
func ParseSeekWhence(s string) (SeekWhence, bool) {
	switch s {
	case "SEEK_SET":
		return SeekSet, true
	case "SEEK_CUR":
		return SeekCur, true
	case "SEEK_END":
		return SeekEnd, true
	}
	return 0, false
}
