package types

import (
	"fmt"
	"strconv"
)

// Uid and Gid identify users and groups in the model of users/groups that
// the permissions trait works over (§1.1 of the paper).
type Uid int

// Gid is a group identifier.
type Gid int

// RootUid is the superuser; permission checks are bypassed for it.
const RootUid Uid = 0

// RootGid is the superuser's primary group.
const RootGid Gid = 0

// Perm is a file mode as passed to mkdir/open/chmod: the low nine bits are
// the usual rwxrwxrwx triplet plus setuid/setgid/sticky above them.
type Perm uint32

// Permission bit masks.
const (
	PermIRUSR Perm = 0o400
	PermIWUSR Perm = 0o200
	PermIXUSR Perm = 0o100
	PermIRGRP Perm = 0o040
	PermIWGRP Perm = 0o020
	PermIXGRP Perm = 0o010
	PermIROTH Perm = 0o004
	PermIWOTH Perm = 0o002
	PermIXOTH Perm = 0o001
	PermISUID Perm = 0o4000
	PermISGID Perm = 0o2000
	PermISVTX Perm = 0o1000

	// PermMask covers every bit chmod can set.
	PermMask Perm = 0o7777
)

// String renders the permission in the octal form used by trace files.
func (p Perm) String() string { return "0o" + strconv.FormatUint(uint64(uint32(p)), 8) }

// AccessRequest names the kind of access a permission check is for.
type AccessRequest int

// Access kinds checked by the permissions trait.
const (
	AccessRead AccessRequest = iota
	AccessWrite
	AccessExec
)

// Mask returns the permission bits corresponding to the request for the
// given ownership class (0 = owner, 1 = group, 2 = other).
func (a AccessRequest) Mask(class int) Perm {
	var base Perm
	switch a {
	case AccessRead:
		base = PermIROTH
	case AccessWrite:
		base = PermIWOTH
	case AccessExec:
		base = PermIXOTH
	}
	shift := uint((2 - class) * 3)
	return base << shift
}

// FileKind distinguishes the kinds of object a path can resolve to.
type FileKind int

// Kinds of file-system object within the model's scope. POSIX has more
// (FIFOs, devices, sockets) but they are outside the paper's scope (§1.2).
const (
	KindFile FileKind = iota
	KindDir
	KindSymlink
)

// String returns the trace name of the kind (matching stat output fields).
func (k FileKind) String() string {
	switch k {
	case KindFile:
		return "S_IFREG"
	case KindDir:
		return "S_IFDIR"
	case KindSymlink:
		return "S_IFLNK"
	}
	return "S_IF?"
}

// Stats is the subset of struct stat the model exposes through stat, lstat
// and fstat.
type Stats struct {
	Kind  FileKind
	Perm  Perm
	Size  int64
	Nlink int
	Uid   Uid
	Gid   Gid
	Ino   int64
}

// String renders stats in trace syntax, e.g.
// "{ st_kind=S_IFREG; st_perm=0o644; st_size=3; st_nlink=1; st_uid=0; st_gid=0 }".
func (s Stats) String() string {
	return fmt.Sprintf("{ st_kind=%s; st_perm=%s; st_size=%d; st_nlink=%d; st_uid=%d; st_gid=%d }",
		s.Kind, s.Perm, s.Size, s.Nlink, int(s.Uid), int(s.Gid))
}
