package types

import "strconv"

// Label is the Go encoding of os_label (§5): the alphabet of the labelled
// transition system. A trace is a sequence of labels.
type Label interface {
	// String renders the label in trace syntax.
	String() string
	isLabel()
}

// CallLabel is OS_CALL(pid, cmd): process pid invokes a libc function.
type CallLabel struct {
	Pid Pid
	Cmd Command
}

// ReturnLabel is OS_RETURN(pid, rv): a value is returned to process pid.
type ReturnLabel struct {
	Pid Pid
	Ret RetValue
}

// CreateLabel is OS_CREATE(pid, uid, gid): a new process appears.
type CreateLabel struct {
	Pid Pid
	Uid Uid
	Gid Gid
}

// DestroyLabel is OS_DESTROY(pid): a process disappears.
type DestroyLabel struct{ Pid Pid }

// TauLabel is OS_TAU: an internal transition (the in-kernel processing of a
// pending call).
type TauLabel struct{}

// CrashLabel is the crash-consistency extension: the system loses power and
// is remounted. Keep tells the implementation under test how many pending
// (volatile, unsynced) effects survive the crash, in log order; the oracle
// ignores Keep and admits every durable state consistent with the pending
// log, so a single crash label checks the whole admissible set.
type CrashLabel struct{ Keep int }

func (CallLabel) isLabel()    {}
func (ReturnLabel) isLabel()  {}
func (CreateLabel) isLabel()  {}
func (DestroyLabel) isLabel() {}
func (TauLabel) isLabel()     {}
func (CrashLabel) isLabel()   {}

func (l CallLabel) String() string   { return strconv.Itoa(int(l.Pid)) + ": " + l.Cmd.String() }
func (l ReturnLabel) String() string { return strconv.Itoa(int(l.Pid)) + ": " + l.Ret.String() }
func (l CreateLabel) String() string {
	return "create " + strconv.Itoa(int(l.Pid)) + " " + strconv.Itoa(int(l.Uid)) + " " + strconv.Itoa(int(l.Gid))
}
func (l DestroyLabel) String() string { return "destroy " + strconv.Itoa(int(l.Pid)) }
func (TauLabel) String() string       { return "tau" }
func (l CrashLabel) String() string   { return "crash " + strconv.Itoa(l.Keep) }
