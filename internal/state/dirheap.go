// Package state implements the paper's "state module": a simple model of
// directory and file contents, expressed over abstract directory and file
// references rather than blocks or inodes (§5, "State module"). The API
// permits arbitrary linking and unlinking, so it can represent disconnected
// files and directories (reachable through an open descriptor but absent
// from the tree), which several survey defects depend on (Fig 8).
package state

import (
	"sort"

	"repro/internal/types"
)

// DirRef identifies a directory in the heap (dh_dir_ref in the paper).
type DirRef int

// FileRef identifies a file in the heap (dh_file_ref).
type FileRef int

// EntryKind distinguishes what a directory entry points at.
type EntryKind int

// Directory entries point at files, subdirectories, or symlinks. Symlinks
// are stored as files whose contents are the link target, flagged as
// symlinks in the entry and in the file metadata.
const (
	EntryFile EntryKind = iota
	EntryDir
	EntrySymlink
)

// Entry is one name→object binding inside a directory.
type Entry struct {
	Kind EntryKind
	File FileRef // valid when Kind is EntryFile or EntrySymlink
	Dir  DirRef  // valid when Kind is EntryDir
}

// Dir is the model of a directory: a finite map from names to entries plus
// the metadata the permissions and stat traits need. Parent supports ".."
// resolution; the root's parent is itself.
type Dir struct {
	Entries map[string]Entry
	Parent  DirRef
	Perm    types.Perm
	Uid     types.Uid
	Gid     types.Gid
}

// File is the model of a non-directory file: a byte array plus metadata.
// Symlink files carry IsSymlink=true and store the target path in Bytes.
type File struct {
	Bytes     []byte
	Nlink     int
	IsSymlink bool
	Perm      types.Perm
	Uid       types.Uid
	Gid       types.Gid
}

// Heap is dir_heap_state_fs: the finite maps from references to objects,
// plus the distinguished root.
type Heap struct {
	Dirs  map[DirRef]*Dir
	Files map[FileRef]*File
	Root  DirRef

	nextDir  DirRef
	nextFile FileRef
}

// NewHeap returns a heap containing only an empty root directory owned by
// root:root with mode 0o755, matching the paper's empty initial file system.
func NewHeap() *Heap {
	h := &Heap{
		Dirs:     make(map[DirRef]*Dir),
		Files:    make(map[FileRef]*File),
		Root:     1,
		nextDir:  2,
		nextFile: 1,
	}
	h.Dirs[h.Root] = &Dir{
		Entries: make(map[string]Entry),
		Parent:  h.Root,
		Perm:    0o755,
		Uid:     types.RootUid,
		Gid:     types.RootGid,
	}
	return h
}

// Clone deep-copies the heap. The checker relies on cloning to branch the
// state set at nondeterministic points (§3); states in the test suite hold
// a handful of small files, so a straightforward deep copy is cheap (and
// is benchmarked in bench_test.go).
func (h *Heap) Clone() *Heap {
	c := &Heap{
		Dirs:     make(map[DirRef]*Dir, len(h.Dirs)),
		Files:    make(map[FileRef]*File, len(h.Files)),
		Root:     h.Root,
		nextDir:  h.nextDir,
		nextFile: h.nextFile,
	}
	for r, d := range h.Dirs {
		nd := &Dir{
			Entries: make(map[string]Entry, len(d.Entries)),
			Parent:  d.Parent,
			Perm:    d.Perm,
			Uid:     d.Uid,
			Gid:     d.Gid,
		}
		for n, e := range d.Entries {
			nd.Entries[n] = e
		}
		c.Dirs[r] = nd
	}
	for r, f := range h.Files {
		nf := &File{
			Bytes:     append([]byte(nil), f.Bytes...),
			Nlink:     f.Nlink,
			IsSymlink: f.IsSymlink,
			Perm:      f.Perm,
			Uid:       f.Uid,
			Gid:       f.Gid,
		}
		c.Files[r] = nf
	}
	return c
}

// AllocDir creates a fresh, empty, unlinked directory and returns its
// reference. The caller links it into a parent (or leaves it disconnected).
func (h *Heap) AllocDir(parent DirRef, perm types.Perm, uid types.Uid, gid types.Gid) DirRef {
	r := h.nextDir
	h.nextDir++
	h.Dirs[r] = &Dir{
		Entries: make(map[string]Entry),
		Parent:  parent,
		Perm:    perm,
		Uid:     uid,
		Gid:     gid,
	}
	return r
}

// AllocFile creates a fresh empty file with link count zero.
func (h *Heap) AllocFile(perm types.Perm, uid types.Uid, gid types.Gid) FileRef {
	r := h.nextFile
	h.nextFile++
	h.Files[r] = &File{Nlink: 0, Perm: perm, Uid: uid, Gid: gid}
	return r
}

// AllocSymlink creates a symlink file whose contents are the target path.
// Symlink permissions are platform-dependent (0o777 on Linux); the caller
// supplies them.
func (h *Heap) AllocSymlink(target string, perm types.Perm, uid types.Uid, gid types.Gid) FileRef {
	r := h.AllocFile(perm, uid, gid)
	f := h.Files[r]
	f.Bytes = []byte(target)
	f.IsSymlink = true
	return r
}

// Lookup returns the entry bound to name in dir.
func (h *Heap) Lookup(dir DirRef, name string) (Entry, bool) {
	d, ok := h.Dirs[dir]
	if !ok {
		return Entry{}, false
	}
	e, ok := d.Entries[name]
	return e, ok
}

// LinkFile binds name in dir to the file f and bumps its link count.
func (h *Heap) LinkFile(dir DirRef, name string, f FileRef) {
	kind := EntryFile
	if h.Files[f].IsSymlink {
		kind = EntrySymlink
	}
	h.Dirs[dir].Entries[name] = Entry{Kind: kind, File: f}
	h.Files[f].Nlink++
}

// UnlinkFile removes the binding of name in dir and decrements the file's
// link count. Files with zero links and no open descriptors are garbage
// collected by the OS layer, not here: the heap permits disconnected files.
func (h *Heap) UnlinkFile(dir DirRef, name string) {
	d := h.Dirs[dir]
	e := d.Entries[name]
	delete(d.Entries, name)
	if f, ok := h.Files[e.File]; ok {
		f.Nlink--
	}
}

// LinkDir binds name in dir to the directory sub and reparents it.
func (h *Heap) LinkDir(dir DirRef, name string, sub DirRef) {
	h.Dirs[dir].Entries[name] = Entry{Kind: EntryDir, Dir: sub}
	h.Dirs[sub].Parent = dir
}

// UnlinkDir removes the binding of name in dir. The subdirectory object
// survives, disconnected, which is exactly what the Fig 8 OpenZFS scenario
// (rmdir of the current working directory) requires.
func (h *Heap) UnlinkDir(dir DirRef, name string) {
	delete(h.Dirs[dir].Entries, name)
}

// FreeFile removes a file object from the heap. Called by the OS layer
// when the last link and last open descriptor are gone.
func (h *Heap) FreeFile(f FileRef) { delete(h.Files, f) }

// EntryNames returns the names in dir in sorted order (sorting only for
// deterministic iteration in the Go implementation; the model makes no
// ordering promise — readdir ordering nondeterminism is handled by the
// must/may machinery in the OS layer).
func (h *Heap) EntryNames(dir DirRef) []string {
	d, ok := h.Dirs[dir]
	if !ok {
		return nil
	}
	names := make([]string, 0, len(d.Entries))
	for n := range d.Entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsEmptyDir reports whether dir has no entries.
func (h *Heap) IsEmptyDir(dir DirRef) bool {
	d, ok := h.Dirs[dir]
	return ok && len(d.Entries) == 0
}

// IsAncestor reports whether a is a proper ancestor of b in the current
// tree (used by rename's subdirectory check).
func (h *Heap) IsAncestor(a, b DirRef) bool {
	if a == b {
		return false
	}
	cur := b
	for {
		d, ok := h.Dirs[cur]
		if !ok {
			return false
		}
		if d.Parent == cur {
			return false // reached root (or a disconnected self-parent)
		}
		cur = d.Parent
		if cur == a {
			return true
		}
	}
}

// IsConnected reports whether dir is reachable from the root by walking
// parents. Disconnected directories (rmdir'd while open or while being a
// process's cwd) report false.
func (h *Heap) IsConnected(dir DirRef) bool {
	seen := make(map[DirRef]bool)
	cur := dir
	for {
		if cur == h.Root {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		d, ok := h.Dirs[cur]
		if !ok || d.Parent == cur {
			return false
		}
		// The parent must actually still contain this directory; after
		// UnlinkDir the child keeps a stale Parent pointer.
		p, ok := h.Dirs[d.Parent]
		if !ok {
			return false
		}
		found := false
		for _, e := range p.Entries {
			if e.Kind == EntryDir && e.Dir == cur {
				found = true
				break
			}
		}
		if !found {
			return false
		}
		cur = d.Parent
	}
}

// DirLinkCount computes the POSIX st_nlink of a directory: 2 (self "." and
// the parent's entry) plus one per subdirectory ("..") — the convention the
// paper's "core behaviour" survey checks (Btrfs does not maintain it).
func (h *Heap) DirLinkCount(dir DirRef) int {
	d, ok := h.Dirs[dir]
	if !ok {
		return 0
	}
	n := 2
	for _, e := range d.Entries {
		if e.Kind == EntryDir {
			n++
		}
	}
	return n
}

// NameOfDirIn finds the name under which child is linked in parent.
func (h *Heap) NameOfDirIn(parent, child DirRef) (string, bool) {
	p, ok := h.Dirs[parent]
	if !ok {
		return "", false
	}
	for n, e := range p.Entries {
		if e.Kind == EntryDir && e.Dir == child {
			return n, true
		}
	}
	return "", false
}
