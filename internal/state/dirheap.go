package state

import (
	"sort"

	"repro/internal/types"
)

// DirRef identifies a directory in the heap (dh_dir_ref in the paper).
type DirRef int

// FileRef identifies a file in the heap (dh_file_ref).
type FileRef int

// EntryKind distinguishes what a directory entry points at.
type EntryKind int

// Directory entries point at files, subdirectories, or symlinks. Symlinks
// are stored as files whose contents are the link target, flagged as
// symlinks in the entry and in the file metadata.
const (
	EntryFile EntryKind = iota
	EntryDir
	EntrySymlink
)

// Entry is one name→object binding inside a directory.
type Entry struct {
	Kind EntryKind
	File FileRef // valid when Kind is EntryFile or EntrySymlink
	Dir  DirRef  // valid when Kind is EntryDir
}

// cowTok is an ownership token: an object is mutable in place exactly when
// its owner pointer equals the heap's current token. Freezing (or cloning)
// a heap drops its token, so every surviving reference copies on write.
type cowTok struct{ _ byte }

// Dir is the model of a directory: a finite map from names to entries plus
// the metadata the permissions and stat traits need. Parent supports ".."
// resolution; the root's parent is itself. Mutate only through MutDir.
type Dir struct {
	Entries map[string]Entry
	Parent  DirRef
	Perm    types.Perm
	Uid     types.Uid
	Gid     types.Gid

	owner *cowTok
	hv    uint64 // memoised heap-hash contribution (valid when hvOK)
	hvOK  bool
}

// File is the model of a non-directory file: a byte array plus metadata.
// Symlink files carry IsSymlink=true and store the target path in Bytes.
// Mutate only through MutFile.
type File struct {
	Bytes     []byte
	Nlink     int
	IsSymlink bool
	Perm      types.Perm
	Uid       types.Uid
	Gid       types.Gid

	owner *cowTok
	hv    uint64
	hvOK  bool
}

// Heap is dir_heap_state_fs: the finite maps from references to objects,
// plus the distinguished root.
type Heap struct {
	dirs  map[DirRef]*Dir
	files map[FileRef]*File
	Root  DirRef

	nextDir  DirRef
	nextFile FileRef

	tok      *cowTok // nil: this heap owns no objects (fresh clone / frozen)
	ownsMaps bool
	frozen   bool

	// hash is the XOR of the contributions of every object NOT in a dirty
	// set; flushHash folds the dirty objects back in. Incremental: a
	// mutation XORs the object's old contribution out once and defers the
	// new contribution to the next flush.
	hash       uint64
	dirtyDirs  map[DirRef]struct{}
	dirtyFiles map[FileRef]struct{}
}

// NewHeap returns a heap containing only an empty root directory owned by
// root:root with mode 0o755, matching the paper's empty initial file system.
func NewHeap() *Heap {
	h := &Heap{
		dirs:     make(map[DirRef]*Dir),
		files:    make(map[FileRef]*File),
		Root:     1,
		nextDir:  2,
		nextFile: 1,
		tok:      &cowTok{},
		ownsMaps: true,
	}
	h.dirs[h.Root] = &Dir{
		Entries: make(map[string]Entry),
		Parent:  h.Root,
		Perm:    0o755,
		Uid:     types.RootUid,
		Gid:     types.RootGid,
		owner:   h.tok,
	}
	h.markDirtyDir(h.Root)
	return h
}

// Clone shares the heap copy-on-write: O(1), no object is copied until one
// side writes. The source is frozen first (it gives up in-place mutation
// rights), so cloning a frozen heap is a pure read — the checker relies on
// that to fan Trans out across goroutines over a shared frontier state.
func (h *Heap) Clone() *Heap {
	h.Freeze()
	heapClones.Add(1)
	return &Heap{
		dirs:     h.dirs,
		files:    h.files,
		Root:     h.Root,
		nextDir:  h.nextDir,
		nextFile: h.nextFile,
		hash:     h.hash,
	}
}

// Freeze flushes the incremental hash and relinquishes object ownership so
// every future mutation (on this heap or any clone) copies on write.
// Idempotent; a frozen heap is safe for concurrent readers and cloners.
func (h *Heap) Freeze() {
	if h.frozen {
		return
	}
	h.flushHash()
	h.tok = nil
	h.ownsMaps = false
	h.frozen = true
}

// ensureTok gives the heap an ownership token for newly written objects.
func (h *Heap) ensureTok() *cowTok {
	if h.tok == nil {
		h.tok = &cowTok{}
	}
	return h.tok
}

// ensureMaps makes the ref→object tables private to this heap (a shallow,
// pointers-only copy) so structural changes don't leak into clones.
func (h *Heap) ensureMaps() {
	if h.ownsMaps {
		return
	}
	dirs := make(map[DirRef]*Dir, len(h.dirs))
	for r, d := range h.dirs {
		dirs[r] = d
	}
	files := make(map[FileRef]*File, len(h.files))
	for r, f := range h.files {
		files[r] = f
	}
	h.dirs, h.files = dirs, files
	h.ownsMaps = true
	h.frozen = false
}

// Dir returns the directory object for r, or nil. The result is read-only:
// use MutDir to change it.
func (h *Heap) Dir(r DirRef) *Dir { return h.dirs[r] }

// File returns the file object for r, or nil. Read-only; use MutFile.
func (h *Heap) File(r FileRef) *File { return h.files[r] }

// NumDirs reports the number of directory objects (including disconnected
// ones).
func (h *Heap) NumDirs() int { return len(h.dirs) }

// NumFiles reports the number of file objects.
func (h *Heap) NumFiles() int { return len(h.files) }

// SortedDirRefs returns every directory reference in ascending order.
func (h *Heap) SortedDirRefs() []DirRef {
	out := make([]DirRef, 0, len(h.dirs))
	for r := range h.dirs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortedFileRefs returns every file reference in ascending order.
func (h *Heap) SortedFileRefs() []FileRef {
	out := make([]FileRef, 0, len(h.files))
	for r := range h.files {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MutDir returns a directory object that is safe to mutate: the object is
// copied first unless this heap exclusively owns it, and its contribution
// is retired from the incremental hash until the next flush.
func (h *Heap) MutDir(r DirRef) *Dir {
	d := h.dirs[r]
	if d == nil {
		return nil
	}
	h.unhashDir(r, d)
	if h.tok == nil || d.owner != h.tok {
		objectCopies.Add(1)
		h.ensureMaps()
		entries := make(map[string]Entry, len(d.Entries))
		for n, e := range d.Entries {
			entries[n] = e
		}
		nd := &Dir{
			Entries: entries,
			Parent:  d.Parent,
			Perm:    d.Perm,
			Uid:     d.Uid,
			Gid:     d.Gid,
			owner:   h.ensureTok(),
		}
		h.dirs[r] = nd
		return nd
	}
	d.hvOK = false
	return d
}

// MutFile is MutDir for file objects.
func (h *Heap) MutFile(r FileRef) *File {
	f := h.files[r]
	if f == nil {
		return nil
	}
	h.unhashFile(r, f)
	if h.tok == nil || f.owner != h.tok {
		objectCopies.Add(1)
		h.ensureMaps()
		nf := &File{
			Bytes:     append([]byte(nil), f.Bytes...),
			Nlink:     f.Nlink,
			IsSymlink: f.IsSymlink,
			Perm:      f.Perm,
			Uid:       f.Uid,
			Gid:       f.Gid,
			owner:     h.ensureTok(),
		}
		h.files[r] = nf
		return nf
	}
	f.hvOK = false
	return f
}

// AllocDir creates a fresh, empty, unlinked directory and returns its
// reference. The caller links it into a parent (or leaves it disconnected).
func (h *Heap) AllocDir(parent DirRef, perm types.Perm, uid types.Uid, gid types.Gid) DirRef {
	h.ensureMaps()
	r := h.nextDir
	h.nextDir++
	h.dirs[r] = &Dir{
		Entries: make(map[string]Entry),
		Parent:  parent,
		Perm:    perm,
		Uid:     uid,
		Gid:     gid,
		owner:   h.ensureTok(),
	}
	h.markDirtyDir(r)
	return r
}

// AllocFile creates a fresh empty file with link count zero.
func (h *Heap) AllocFile(perm types.Perm, uid types.Uid, gid types.Gid) FileRef {
	h.ensureMaps()
	r := h.nextFile
	h.nextFile++
	h.files[r] = &File{Nlink: 0, Perm: perm, Uid: uid, Gid: gid, owner: h.ensureTok()}
	h.markDirtyFile(r)
	return r
}

// AllocSymlink creates a symlink file whose contents are the target path.
// Symlink permissions are platform-dependent (0o777 on Linux); the caller
// supplies them.
func (h *Heap) AllocSymlink(target string, perm types.Perm, uid types.Uid, gid types.Gid) FileRef {
	r := h.AllocFile(perm, uid, gid)
	f := h.files[r] // freshly allocated: owned and dirty, mutable in place
	f.Bytes = []byte(target)
	f.IsSymlink = true
	return r
}

// Lookup returns the entry bound to name in dir.
func (h *Heap) Lookup(dir DirRef, name string) (Entry, bool) {
	d := h.dirs[dir]
	if d == nil {
		return Entry{}, false
	}
	e, ok := d.Entries[name]
	return e, ok
}

// LinkFile binds name in dir to the file f and bumps its link count.
func (h *Heap) LinkFile(dir DirRef, name string, f FileRef) {
	kind := EntryFile
	if h.files[f].IsSymlink {
		kind = EntrySymlink
	}
	h.MutDir(dir).Entries[name] = Entry{Kind: kind, File: f}
	h.MutFile(f).Nlink++
}

// UnlinkFile removes the binding of name in dir and decrements the file's
// link count. Files with zero links and no open descriptors are garbage
// collected by the OS layer, not here: the heap permits disconnected files.
func (h *Heap) UnlinkFile(dir DirRef, name string) {
	d := h.MutDir(dir)
	e := d.Entries[name]
	delete(d.Entries, name)
	if f := h.MutFile(e.File); f != nil {
		f.Nlink--
	}
}

// LinkDir binds name in dir to the directory sub and reparents it.
func (h *Heap) LinkDir(dir DirRef, name string, sub DirRef) {
	h.MutDir(dir).Entries[name] = Entry{Kind: EntryDir, Dir: sub}
	h.MutDir(sub).Parent = dir
}

// UnlinkDir removes the binding of name in dir. The subdirectory object
// survives, disconnected, which is exactly what the Fig 8 OpenZFS scenario
// (rmdir of the current working directory) requires.
func (h *Heap) UnlinkDir(dir DirRef, name string) {
	delete(h.MutDir(dir).Entries, name)
}

// FreeFile removes a file object from the heap. Called by the OS layer
// when the last link and last open descriptor are gone.
func (h *Heap) FreeFile(f FileRef) {
	fl := h.files[f]
	if fl == nil {
		return
	}
	if _, dirty := h.dirtyFiles[f]; dirty {
		delete(h.dirtyFiles, f)
	} else {
		h.hash ^= fileContrib(f, fl)
	}
	h.ensureMaps()
	delete(h.files, f)
}

// EntryNames returns the names in dir in sorted order (sorting only for
// deterministic iteration in the Go implementation; the model makes no
// ordering promise — readdir ordering nondeterminism is handled by the
// must/may machinery in the OS layer).
func (h *Heap) EntryNames(dir DirRef) []string {
	d := h.dirs[dir]
	if d == nil {
		return nil
	}
	names := make([]string, 0, len(d.Entries))
	for n := range d.Entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsEmptyDir reports whether dir has no entries.
func (h *Heap) IsEmptyDir(dir DirRef) bool {
	d := h.dirs[dir]
	return d != nil && len(d.Entries) == 0
}

// IsAncestor reports whether a is a proper ancestor of b in the current
// tree (used by rename's subdirectory check).
func (h *Heap) IsAncestor(a, b DirRef) bool {
	if a == b {
		return false
	}
	cur := b
	for {
		d := h.dirs[cur]
		if d == nil {
			return false
		}
		if d.Parent == cur {
			return false // reached root (or a disconnected self-parent)
		}
		cur = d.Parent
		if cur == a {
			return true
		}
	}
}

// IsConnected reports whether dir is reachable from the root by walking
// parents. Disconnected directories (rmdir'd while open or while being a
// process's cwd) report false.
func (h *Heap) IsConnected(dir DirRef) bool {
	seen := make(map[DirRef]bool)
	cur := dir
	for {
		if cur == h.Root {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		d := h.dirs[cur]
		if d == nil || d.Parent == cur {
			return false
		}
		// The parent must actually still contain this directory; after
		// UnlinkDir the child keeps a stale Parent pointer.
		p := h.dirs[d.Parent]
		if p == nil {
			return false
		}
		found := false
		for _, e := range p.Entries {
			if e.Kind == EntryDir && e.Dir == cur {
				found = true
				break
			}
		}
		if !found {
			return false
		}
		cur = d.Parent
	}
}

// DirLinkCount computes the POSIX st_nlink of a directory: 2 (self "." and
// the parent's entry) plus one per subdirectory ("..") — the convention the
// paper's "core behaviour" survey checks (Btrfs does not maintain it).
func (h *Heap) DirLinkCount(dir DirRef) int {
	d := h.dirs[dir]
	if d == nil {
		return 0
	}
	n := 2
	for _, e := range d.Entries {
		if e.Kind == EntryDir {
			n++
		}
	}
	return n
}

// NameOfDirIn finds the name under which child is linked in parent.
func (h *Heap) NameOfDirIn(parent, child DirRef) (string, bool) {
	p := h.dirs[parent]
	if p == nil {
		return "", false
	}
	for n, e := range p.Entries {
		if e.Kind == EntryDir && e.Dir == child {
			return n, true
		}
	}
	return "", false
}
