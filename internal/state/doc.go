// Package state implements the paper's "state module": a simple model of
// directory and file contents, expressed over abstract directory and file
// references rather than blocks or inodes (§5, "State module"). The API
// permits arbitrary linking and unlinking, so it can represent disconnected
// files and directories (reachable through an open descriptor but absent
// from the tree), which several survey defects depend on (Fig 8).
//
// The heap is copy-on-write with structural sharing: Clone is O(1), both
// sides share the directory/file objects and the tables that hold them, and
// a mutation copies only the table (shallowly, on the first write) and the
// one object it touches. All mutation therefore has to go through the heap:
// reads use Dir/File/Lookup, writes use MutDir/MutFile or the structural
// operations (Alloc*/Link*/Unlink*/Free*). Writing through a stale *Dir or
// *File obtained before a Clone corrupts the sharing — don't hold them
// across clones.
//
// Each object carries a memoised 64-bit content hash, and the heap folds
// the per-object hashes into one incrementally maintained value (Hash):
// after a clone, hashing a mutated heap re-hashes only the objects the
// mutation touched. The checker's state identity test rides on this.
package state
