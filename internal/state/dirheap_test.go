package state

import (
	"testing"
	"testing/quick"
)

func TestNewHeapRoot(t *testing.T) {
	h := NewHeap()
	root := h.Dir(h.Root)
	if root == nil {
		t.Fatal("root missing")
	}
	if root.Parent != h.Root {
		t.Error("root parent must be itself")
	}
	if root.Perm != 0o755 || len(root.Entries) != 0 {
		t.Errorf("root = %+v", root)
	}
}

func TestLinkUnlinkFile(t *testing.T) {
	h := NewHeap()
	f := h.AllocFile(0o644, 0, 0)
	if h.File(f).Nlink != 0 {
		t.Fatal("fresh file should have nlink 0")
	}
	h.LinkFile(h.Root, "a", f)
	h.LinkFile(h.Root, "b", f)
	if h.File(f).Nlink != 2 {
		t.Fatalf("nlink = %d", h.File(f).Nlink)
	}
	e, ok := h.Lookup(h.Root, "a")
	if !ok || e.Kind != EntryFile || e.File != f {
		t.Fatalf("lookup a = %+v %v", e, ok)
	}
	h.UnlinkFile(h.Root, "a")
	if h.File(f).Nlink != 1 {
		t.Fatalf("nlink after unlink = %d", h.File(f).Nlink)
	}
	if _, ok := h.Lookup(h.Root, "a"); ok {
		t.Error("entry a survived unlink")
	}
}

func TestSymlinkEntryKind(t *testing.T) {
	h := NewHeap()
	s := h.AllocSymlink("target", 0o777, 0, 0)
	h.LinkFile(h.Root, "s", s)
	e, _ := h.Lookup(h.Root, "s")
	if e.Kind != EntrySymlink {
		t.Errorf("kind = %v", e.Kind)
	}
	if string(h.File(s).Bytes) != "target" || !h.File(s).IsSymlink {
		t.Errorf("symlink body wrong: %+v", h.File(s))
	}
}

func TestDirTreeOps(t *testing.T) {
	h := NewHeap()
	d1 := h.AllocDir(h.Root, 0o755, 0, 0)
	h.LinkDir(h.Root, "d1", d1)
	d2 := h.AllocDir(d1, 0o755, 0, 0)
	h.LinkDir(d1, "d2", d2)

	if !h.IsAncestor(h.Root, d2) || !h.IsAncestor(d1, d2) {
		t.Error("ancestry wrong")
	}
	if h.IsAncestor(d2, d1) || h.IsAncestor(d1, d1) {
		t.Error("ancestry not strict")
	}
	if !h.IsConnected(d2) {
		t.Error("d2 should be connected")
	}
	name, ok := h.NameOfDirIn(d1, d2)
	if !ok || name != "d2" {
		t.Errorf("NameOfDirIn = %q %v", name, ok)
	}

	h.UnlinkDir(d1, "d2")
	if h.IsConnected(d2) {
		t.Error("d2 should be disconnected after unlink")
	}
	if h.IsConnected(d1) != true {
		t.Error("d1 still connected")
	}
}

func TestDirLinkCount(t *testing.T) {
	h := NewHeap()
	d := h.AllocDir(h.Root, 0o755, 0, 0)
	h.LinkDir(h.Root, "d", d)
	if got := h.DirLinkCount(d); got != 2 {
		t.Errorf("empty dir nlink = %d, want 2", got)
	}
	s1 := h.AllocDir(d, 0o755, 0, 0)
	h.LinkDir(d, "s1", s1)
	s2 := h.AllocDir(d, 0o755, 0, 0)
	h.LinkDir(d, "s2", s2)
	f := h.AllocFile(0o644, 0, 0)
	h.LinkFile(d, "f", f)
	if got := h.DirLinkCount(d); got != 4 {
		t.Errorf("dir with 2 subdirs nlink = %d, want 4", got)
	}
}

func TestEntryNamesSorted(t *testing.T) {
	h := NewHeap()
	for _, n := range []string{"zz", "aa", "mm"} {
		f := h.AllocFile(0o644, 0, 0)
		h.LinkFile(h.Root, n, f)
	}
	names := h.EntryNames(h.Root)
	if len(names) != 3 || names[0] != "aa" || names[2] != "zz" {
		t.Errorf("names = %v", names)
	}
}

func TestIsEmptyDir(t *testing.T) {
	h := NewHeap()
	if !h.IsEmptyDir(h.Root) {
		t.Error("fresh root should be empty")
	}
	f := h.AllocFile(0o644, 0, 0)
	h.LinkFile(h.Root, "f", f)
	if h.IsEmptyDir(h.Root) {
		t.Error("root with entry should be non-empty")
	}
	if h.IsEmptyDir(DirRef(999)) {
		t.Error("missing dir reported empty")
	}
}

// TestCloneIndependence: mutating a clone never affects the original — the
// state-set checker depends on this completely.
func TestCloneIndependence(t *testing.T) {
	h := NewHeap()
	d := h.AllocDir(h.Root, 0o755, 0, 0)
	h.LinkDir(h.Root, "d", d)
	f := h.AllocFile(0o644, 0, 0)
	h.MutFile(f).Bytes = []byte("original")
	h.LinkFile(d, "f", f)

	c := h.Clone()
	c.MutFile(f).Bytes[0] = 'X'
	c.UnlinkFile(d, "f")
	c.MutDir(d).Perm = 0o000
	nd := c.AllocDir(c.Root, 0o700, 1, 1)
	c.LinkDir(c.Root, "new", nd)

	if string(h.File(f).Bytes) != "original" {
		t.Error("clone shares file bytes")
	}
	if _, ok := h.Lookup(d, "f"); !ok {
		t.Error("clone unlink affected original")
	}
	if h.Dir(d).Perm != 0o755 {
		t.Error("clone shares dir struct")
	}
	if _, ok := h.Lookup(h.Root, "new"); ok {
		t.Error("clone alloc affected original")
	}
}

// Property: allocation in a clone mirrors allocation in the original
// (reference numbering is deterministic), which lets mutation closures
// captured against one heap apply to any clone.
func TestCloneAllocDeterminism(t *testing.T) {
	f := func(nFiles uint8) bool {
		h := NewHeap()
		for i := 0; i < int(nFiles%8); i++ {
			h.AllocFile(0o644, 0, 0)
		}
		c := h.Clone()
		return h.AllocFile(0o600, 0, 0) == c.AllocFile(0o600, 0, 0) &&
			h.AllocDir(h.Root, 0o755, 0, 0) == c.AllocDir(c.Root, 0o755, 0, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisconnectedSelfLoopSafe(t *testing.T) {
	h := NewHeap()
	d := h.AllocDir(h.Root, 0o755, 0, 0)
	h.LinkDir(h.Root, "d", d)
	h.UnlinkDir(h.Root, "d")
	// The disconnected dir's parent pointer is stale; walks must not loop.
	if h.IsConnected(d) {
		t.Error("unlinked dir reported connected")
	}
	if h.IsAncestor(d, h.Root) {
		t.Error("phantom ancestry")
	}
}

func TestFreeFile(t *testing.T) {
	h := NewHeap()
	f := h.AllocFile(0o644, 0, 0)
	h.FreeFile(f)
	if h.File(f) != nil {
		t.Error("file survived FreeFile")
	}
}
