package state

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// Engine counters: process-global by design — COW heaps flow between
// goroutines and sessions, so per-session attribution would mean
// threading a registry through every OsState. They answer the profiling
// questions ("how many clones did this run cost, how often did the
// incremental hash actually recompute content") as deltas around a run.
// telemetry.Default exposes them as gauges via init below.
var (
	heapClones   atomic.Int64 // Heap.Clone calls (O(1) COW shares)
	objectCopies atomic.Int64 // Dir/File objects copied on first write
	hashComputes atomic.Int64 // content hashes computed (memo misses)
)

// HeapClones returns the process-wide count of COW heap clones.
func HeapClones() int64 { return heapClones.Load() }

// ObjectCopies returns the process-wide count of Dir/File objects
// physically copied by copy-on-write.
func ObjectCopies() int64 { return objectCopies.Load() }

// HashComputes returns the process-wide count of per-object content-hash
// computations (memoisation misses).
func HashComputes() int64 { return hashComputes.Load() }

func init() {
	telemetry.Default.Func("state.heap_clones", HeapClones)
	telemetry.Default.Func("state.object_copies", ObjectCopies)
	telemetry.Default.Func("state.hash_computes", HashComputes)
}
