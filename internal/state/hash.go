package state

// Hash-consing support: every Dir/File memoises a 64-bit contribution
// (a mix of its reference and its semantic content — exactly the fields
// the checker's state fingerprint renders), and the heap XORs the
// contributions together. XOR makes the fold order-free, so no sorting is
// needed, and incremental: retiring one object's old value and folding in
// its new one are both O(1) once the per-object hash is known.
//
// Hashes are an accelerator, not an identity: the checker buckets states
// by hash and confirms with the structural HeapEqual/StateEqual, so a
// collision can never merge two semantically distinct states.

// Seeds distinguishing the object kinds and field groups, so e.g. a file
// and a directory with the same numeric fields cannot cancel.
const (
	seedDir   = 0xd6e8feb86659fd93
	seedFile  = 0xa2f9b1d28e3c7a41
	seedEntry = 0x9e3779b97f4a7c15
)

// fmix64 is the splitmix64 finaliser: a cheap bijective scrambler.
func fmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mix folds v into h (order-sensitive).
func Mix(h, v uint64) uint64 {
	return fmix64(h ^ (v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)))
}

// HashBytes is FNV-1a 64 over b, seeded.
func HashBytes(seed uint64, b []byte) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// HashString is HashBytes for strings without allocation.
func HashString(seed uint64, s string) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// dirContent hashes a directory's semantic content together with its ref.
func dirContent(r DirRef, d *Dir) uint64 {
	hashComputes.Add(1)
	v := Mix(seedDir, uint64(r))
	v = Mix(v, uint64(d.Parent))
	v = Mix(v, uint64(d.Perm))
	v = Mix(v, uint64(d.Uid))
	v = Mix(v, uint64(d.Gid))
	var es uint64
	for n, e := range d.Entries {
		ev := HashString(seedEntry, n)
		ev = Mix(ev, uint64(e.Kind))
		ev = Mix(ev, uint64(e.File))
		ev = Mix(ev, uint64(e.Dir))
		es ^= fmix64(ev)
	}
	return fmix64(Mix(v, es))
}

// fileContent hashes a file's semantic content together with its ref.
func fileContent(r FileRef, f *File) uint64 {
	hashComputes.Add(1)
	v := Mix(seedFile, uint64(r))
	v = Mix(v, uint64(f.Nlink))
	v = Mix(v, b2u(f.IsSymlink))
	v = Mix(v, uint64(f.Perm))
	v = Mix(v, uint64(f.Uid))
	v = Mix(v, uint64(f.Gid))
	v = Mix(v, HashBytes(seedFile, f.Bytes))
	return fmix64(v)
}

// dirContrib returns (and caches, when this heap owns the object) the
// directory's heap-hash contribution.
func (h *Heap) dirContrib(r DirRef, d *Dir) uint64 {
	if d.hvOK {
		return d.hv
	}
	v := dirContent(r, d)
	if h.tok != nil && d.owner == h.tok {
		d.hv, d.hvOK = v, true
	}
	return v
}

func (h *Heap) fileContrib(r FileRef, f *File) uint64 {
	if f.hvOK {
		return f.hv
	}
	v := fileContent(r, f)
	if h.tok != nil && f.owner == h.tok {
		f.hv, f.hvOK = v, true
	}
	return v
}

// fileContrib without a heap receiver, for FreeFile's retire path.
func fileContrib(r FileRef, f *File) uint64 {
	if f.hvOK {
		return f.hv
	}
	return fileContent(r, f)
}

func (h *Heap) markDirtyDir(r DirRef) {
	if h.dirtyDirs == nil {
		h.dirtyDirs = make(map[DirRef]struct{})
	}
	h.dirtyDirs[r] = struct{}{}
}

func (h *Heap) markDirtyFile(r FileRef) {
	if h.dirtyFiles == nil {
		h.dirtyFiles = make(map[FileRef]struct{})
	}
	h.dirtyFiles[r] = struct{}{}
}

// unhashDir retires r's current contribution ahead of a mutation; no-op if
// the object is already dirty (its contribution is not folded in).
func (h *Heap) unhashDir(r DirRef, d *Dir) {
	if _, dirty := h.dirtyDirs[r]; dirty {
		return
	}
	h.hash ^= h.dirContrib(r, d)
	h.markDirtyDir(r)
}

func (h *Heap) unhashFile(r FileRef, f *File) {
	if _, dirty := h.dirtyFiles[r]; dirty {
		return
	}
	h.hash ^= h.fileContrib(r, f)
	h.markDirtyFile(r)
}

// flushHash folds every dirty object's contribution back into the hash.
func (h *Heap) flushHash() {
	for r := range h.dirtyDirs {
		if d := h.dirs[r]; d != nil {
			h.hash ^= h.dirContrib(r, d)
		}
	}
	for r := range h.dirtyFiles {
		if f := h.files[r]; f != nil {
			h.hash ^= h.fileContrib(r, f)
		}
	}
	h.dirtyDirs, h.dirtyFiles = nil, nil
}

// Hash returns the incremental 64-bit digest of the heap's semantic
// content (every directory and file, connected or not — the same fields
// the checker fingerprint renders). Flushes pending contributions, so it
// mutates bookkeeping: hash frozen heaps before sharing them (Freeze does).
func (h *Heap) Hash() uint64 {
	if len(h.dirtyDirs) > 0 || len(h.dirtyFiles) > 0 {
		h.flushHash()
	}
	return h.hash
}

// HeapEqual reports semantic equality of two heaps: same references bound
// to directories and files with equal metadata, entries and contents.
// Shared (pointer-equal) objects compare in O(1) — the common case for
// copy-on-write siblings. Allocation counters are ignored, matching the
// fingerprint contract: two states differing only in how many refs they
// ever allocated are behaviourally identical.
func HeapEqual(a, b *Heap) bool {
	if a == b {
		return true
	}
	if len(a.dirs) != len(b.dirs) || len(a.files) != len(b.files) {
		return false
	}
	for r, da := range a.dirs {
		db := b.dirs[r]
		if db == nil {
			return false
		}
		if da == db {
			continue
		}
		if da.Parent != db.Parent || da.Perm != db.Perm || da.Uid != db.Uid || da.Gid != db.Gid {
			return false
		}
		if len(da.Entries) != len(db.Entries) {
			return false
		}
		for n, ea := range da.Entries {
			if eb, ok := db.Entries[n]; !ok || ea != eb {
				return false
			}
		}
	}
	for r, fa := range a.files {
		fb := b.files[r]
		if fb == nil {
			return false
		}
		if fa == fb {
			continue
		}
		if fa.Nlink != fb.Nlink || fa.IsSymlink != fb.IsSymlink ||
			fa.Perm != fb.Perm || fa.Uid != fb.Uid || fa.Gid != fb.Gid {
			return false
		}
		if len(fa.Bytes) != len(fb.Bytes) {
			return false
		}
		for i := range fa.Bytes {
			if fa.Bytes[i] != fb.Bytes[i] {
				return false
			}
		}
	}
	return true
}
