package state

import (
	"fmt"
	"math/rand"
	"testing"
)

// recomputeHash folds every object's contribution from scratch — the value
// the incrementally maintained Heap.Hash must always agree with.
func recomputeHash(h *Heap) uint64 {
	var acc uint64
	for r, d := range h.dirs {
		acc ^= dirContent(r, d)
	}
	for r, f := range h.files {
		acc ^= fileContent(r, f)
	}
	return acc
}

// TestHeapHashIncrementalMatchesRecompute drives random mutation/clone
// interleavings and checks after every step that the incrementally
// maintained hash equals a from-scratch recomputation — the core invariant
// behind hash-consed state identity.
func TestHeapHashIncrementalMatchesRecompute(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := NewHeap()
		dirs := []DirRef{h.Root}
		var files []FileRef
		clones := []*Heap{h}
		cdirs := [][]DirRef{dirs}
		cfiles := [][]FileRef{files}
		for step := 0; step < 60; step++ {
			i := rng.Intn(len(clones))
			if rng.Intn(5) == 0 && len(clones) < 6 {
				c := clones[i].Clone()
				clones = append(clones, c)
				cdirs = append(cdirs, append([]DirRef(nil), cdirs[i]...))
				cfiles = append(cfiles, append([]FileRef(nil), cfiles[i]...))
				continue
			}
			randomHeapOp(rng, clones[i], &cdirs[i], &cfiles[i])
			if got, want := clones[i].Hash(), recomputeHash(clones[i]); got != want {
				t.Fatalf("seed %d step %d: incremental hash %x, recompute %x", seed, step, got, want)
			}
		}
		// Every clone must also still agree (mutating one side must not
		// have corrupted another's hash bookkeeping).
		for j, c := range clones {
			if got, want := c.Hash(), recomputeHash(c); got != want {
				t.Fatalf("seed %d clone %d: incremental hash %x, recompute %x", seed, j, got, want)
			}
		}
	}
}

// randomHeapOp applies one random structural or content mutation.
func randomHeapOp(rng *rand.Rand, h *Heap, dirs *[]DirRef, files *[]FileRef) {
	pick := func(n int) int { return rng.Intn(n) }
	switch rng.Intn(8) {
	case 0:
		d := h.AllocDir(h.Root, 0o755, 0, 0)
		h.LinkDir((*dirs)[pick(len(*dirs))], fmt.Sprintf("d%d", d), d)
		*dirs = append(*dirs, d)
	case 1:
		f := h.AllocFile(0o644, 0, 0)
		h.LinkFile((*dirs)[pick(len(*dirs))], fmt.Sprintf("f%d", f), f)
		*files = append(*files, f)
	case 2:
		if len(*files) > 0 {
			f := (*files)[pick(len(*files))]
			if h.File(f) != nil {
				h.MutFile(f).Bytes = append(h.MutFile(f).Bytes, byte(rng.Intn(256)))
			}
		}
	case 3:
		d := (*dirs)[pick(len(*dirs))]
		h.MutDir(d).Perm = 0o700
	case 4:
		if len(*files) > 0 {
			f := (*files)[pick(len(*files))]
			if fl := h.File(f); fl != nil {
				mf := h.MutFile(f)
				mf.Uid, mf.Gid = 7, 8
			}
		}
	case 5:
		d := (*dirs)[pick(len(*dirs))]
		for _, n := range h.EntryNames(d) {
			if e, _ := h.Lookup(d, n); e.Kind == EntryFile {
				h.UnlinkFile(d, n)
				break
			}
		}
	case 6:
		s := h.AllocSymlink(fmt.Sprintf("t%d", rng.Intn(10)), 0o777, 0, 0)
		h.LinkFile((*dirs)[pick(len(*dirs))], fmt.Sprintf("s%d", s), s)
		*files = append(*files, s)
	case 7:
		for _, f := range *files {
			if fl := h.File(f); fl != nil && fl.Nlink == 0 {
				h.FreeFile(f)
				break
			}
		}
	}
}

// TestHeapEqualImpliesHashEqual builds the same content along two different
// mutation paths and checks HeapEqual ⇒ Hash equal (the property dedup
// correctness rests on: equal states must land in the same bucket).
func TestHeapEqualImpliesHashEqual(t *testing.T) {
	build := func(order []int) *Heap {
		h := NewHeap()
		var d DirRef
		var f FileRef
		for _, op := range order {
			switch op {
			case 0:
				d = h.AllocDir(h.Root, 0o755, 0, 0)
				h.LinkDir(h.Root, "d", d)
			case 1:
				f = h.AllocFile(0o644, 0, 0)
				h.LinkFile(h.Root, "f", f)
			case 2:
				h.MutFile(f).Bytes = []byte("hello")
			case 3:
				h.MutDir(d).Perm = 0o700
			}
		}
		return h
	}
	// Same ops, different interleavings of independent mutations; also run
	// one variant through a clone to mix sharing into the comparison.
	a := build([]int{0, 1, 2, 3})
	b := build([]int{0, 1, 3, 2})
	bc := b.Clone()
	if !HeapEqual(a, b) || !HeapEqual(a, bc) {
		t.Fatal("construction orders should yield equal heaps")
	}
	if a.Hash() != b.Hash() || a.Hash() != bc.Hash() {
		t.Errorf("equal heaps hash differently: %x %x %x", a.Hash(), b.Hash(), bc.Hash())
	}
	// And a genuinely different heap must not compare equal.
	c := build([]int{0, 1, 2})
	if HeapEqual(a, c) {
		t.Error("different heaps reported equal")
	}
}

// TestCloneSharingIsLazy pins the COW contract: a clone shares object
// pointers until written, and writing copies exactly the touched object.
func TestCloneSharingIsLazy(t *testing.T) {
	h := NewHeap()
	d := h.AllocDir(h.Root, 0o755, 0, 0)
	h.LinkDir(h.Root, "d", d)
	f := h.AllocFile(0o644, 0, 0)
	h.LinkFile(d, "f", f)

	c := h.Clone()
	if c.Dir(d) != h.Dir(d) || c.File(f) != h.File(f) {
		t.Fatal("clone did not share objects")
	}
	c.MutFile(f).Bytes = []byte("x")
	if c.File(f) == h.File(f) {
		t.Error("write did not copy the file object")
	}
	if c.Dir(d) != h.Dir(d) {
		t.Error("writing a file copied an untouched directory")
	}
	if string(h.File(f).Bytes) != "" {
		t.Error("write leaked into the clone's sibling")
	}
}
