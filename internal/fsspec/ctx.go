package fsspec

import (
	"repro/internal/pathres"
	"repro/internal/state"
	"repro/internal/types"
)

// Ctx carries everything command evaluation needs: the spec variant, the
// heap, and the calling process's view (cwd, umask, credentials). It is
// built by the OS layer for each transition.
type Ctx struct {
	Spec     types.Spec
	H        *state.Heap
	Cwd      state.DirRef
	CwdValid bool
	Umask    types.Perm
	Euid     types.Uid
	Egid     types.Gid
	// InGroup reports supplementary group membership; nil means only the
	// primary gid counts.
	InGroup func(types.Uid, types.Gid) bool
}

// Outcome is one allowed successful behaviour: the value returned and the
// state mutation it entails. Apply operates on whichever heap the checker
// chooses to advance (references are stable across clones), and may be nil
// for read-only commands.
type Outcome struct {
	Ret   types.RetValue
	Apply func(h *state.Heap)
}

// Result is the finite set of allowed behaviours of one command in one
// state: error returns (which never change the state — the paper's proved
// invariant) plus successful outcomes. Undefined marks POSIX
// undefined/unspecified behaviour ("special states"): any observation is
// allowed.
type Result struct {
	Errors    types.ErrnoSet
	Oks       []Outcome
	Undefined bool
}

// ErrResult builds a Result allowing exactly the given errors.
func ErrResult(es ...types.Errno) Result {
	return Result{Errors: types.NewErrnoSet(es...)}
}

// OkResult builds a Result with a single successful outcome.
func OkResult(rv types.RetValue, apply func(h *state.Heap)) Result {
	return Result{Errors: types.NewErrnoSet(), Oks: []Outcome{{Ret: rv, Apply: apply}}}
}

// UndefinedResult marks implementation-defined / undefined behaviour.
func UndefinedResult() Result { return Result{Undefined: true} }

// Check is one conceptual check a command performs; it returns the set of
// errors the check may raise (empty when the check passes). Checks are pure.
type Check func() types.ErrnoSet

// Par is the parallel combinator ||| of Fig 6: the checks are conceptually
// carried out in parallel and the resulting error may come from any of
// them, with no priority between the individual checks.
func Par(checks ...Check) types.ErrnoSet {
	u := types.NewErrnoSet()
	for _, c := range checks {
		u.Union(c())
	}
	return u
}

// none is the passing check result.
func none() types.ErrnoSet { return types.NewErrnoSet() }

// raise builds a failing check result.
func raise(es ...types.Errno) types.ErrnoSet { return types.NewErrnoSet(es...) }

// when returns a check that raises the given errors iff cond holds.
func when(cond bool, es ...types.Errno) Check {
	return func() types.ErrnoSet {
		if cond {
			return raise(es...)
		}
		return none()
	}
}

// finish turns an accumulated error set into a Result: if any check raised,
// the command must return one of the raised errors; otherwise the success
// outcome applies.
func finish(errs types.ErrnoSet, ok Outcome) Result {
	if len(errs) > 0 {
		return Result{Errors: errs}
	}
	return Result{Errors: types.NewErrnoSet(), Oks: []Outcome{ok}}
}

// Resolve runs path resolution with this context's heap, cwd and
// permissions trait.
func (c *Ctx) Resolve(path string, follow pathres.Follow) pathres.ResName {
	var exec pathres.ExecChecker
	if c.Spec.Permissions {
		exec = execChecker{c}
	}
	return pathres.Resolve(pathres.Request{
		Heap:     c.H,
		Cwd:      c.Cwd,
		CwdValid: c.CwdValid,
		Path:     path,
		Follow:   follow,
		Platform: c.Spec.Platform,
		Exec:     exec,
	})
}

// execChecker adapts the permissions trait to path resolution's search
// checks.
type execChecker struct{ c *Ctx }

func (e execChecker) MayExec(h *state.Heap, d state.DirRef) bool {
	dir := h.Dir(d)
	if dir == nil {
		return false
	}
	return e.c.Access(dir.Uid, dir.Gid, dir.Perm, types.AccessExec)
}

// Access implements the permissions trait's core algorithm: owner / group /
// other class selection then mode-bit test, with a root bypass. With the
// trait disabled every access is allowed ("core without permissions").
func (c *Ctx) Access(uid types.Uid, gid types.Gid, perm types.Perm, req types.AccessRequest) bool {
	if !c.Spec.Permissions {
		return true
	}
	if c.Euid == types.RootUid {
		return true
	}
	class := 2 // other
	switch {
	case uid == c.Euid:
		class = 0
	case gid == c.Egid || (c.InGroup != nil && c.InGroup(c.Euid, gid)):
		class = 1
	}
	return perm&req.Mask(class) != 0
}

// dirAccess checks an access request against a directory object.
func (c *Ctx) dirAccess(d state.DirRef, req types.AccessRequest) bool {
	dir := c.H.Dir(d)
	if dir == nil {
		return false
	}
	return c.Access(dir.Uid, dir.Gid, dir.Perm, req)
}

// fileAccess checks an access request against a file object.
func (c *Ctx) fileAccess(f state.FileRef, req types.AccessRequest) bool {
	fl := c.H.File(f)
	if fl == nil {
		return false
	}
	return c.Access(fl.Uid, fl.Gid, fl.Perm, req)
}

// stickyDenies implements the sticky-bit restriction on unlink/rename/rmdir
// within a sticky parent: a non-root caller must own either the parent or
// the object being removed.
func (c *Ctx) stickyDenies(parent state.DirRef, objUid types.Uid) bool {
	if !c.Spec.Permissions || c.Euid == types.RootUid {
		return false
	}
	d := c.H.Dir(parent)
	if d == nil {
		return false
	}
	if d.Perm&types.PermISVTX == 0 {
		return false
	}
	return c.Euid != d.Uid && c.Euid != objUid
}

// effPerm applies the process umask to a requested creation mode.
func (c *Ctx) effPerm(p types.Perm) types.Perm {
	return (p &^ c.Umask) & types.PermMask
}

// parentGone reports whether the would-be parent directory has been
// unlinked from the tree: creating entries in a disconnected directory
// fails ENOENT on all modelled platforms (the conforming behaviour that the
// Fig 8 OpenZFS defect violates by spinning instead).
func (c *Ctx) parentGone(d state.DirRef) bool {
	if c.H.Dir(d) == nil {
		return true
	}
	return !c.H.IsConnected(d)
}

// isLinux, isOSX etc. shorten platform dispatch in the command files.
func (c *Ctx) isLinux() bool   { return c.Spec.Platform == types.PlatformLinux }
func (c *Ctx) isOSX() bool     { return c.Spec.Platform == types.PlatformOSX }
func (c *Ctx) isFreeBSD() bool { return c.Spec.Platform == types.PlatformFreeBSD }
func (c *Ctx) isPOSIX() bool   { return c.Spec.Platform == types.PlatformPOSIX }
