package fsspec

import (
	"repro/internal/cov"
	"repro/internal/pathres"
	"repro/internal/state"
	"repro/internal/types"
)

var (
	covMkdirErr      = cov.Point("fsspec/mkdir/resolve_error")
	covMkdirExists   = cov.Point("fsspec/mkdir/exists")
	covMkdirPerm     = cov.Point("fsspec/mkdir/parent_perm")
	covMkdirOk       = cov.Point("fsspec/mkdir/ok")
	covRmdirErr      = cov.Point("fsspec/rmdir/resolve_error")
	covRmdirNotDir   = cov.Point("fsspec/rmdir/not_dir")
	covRmdirNone     = cov.Point("fsspec/rmdir/missing")
	covRmdirRoot     = cov.Point("fsspec/rmdir/root")
	covRmdirDot      = cov.Point("fsspec/rmdir/dot")
	covRmdirNotEmpty = cov.Point("fsspec/rmdir/not_empty")
	covRmdirPerm     = cov.Point("fsspec/rmdir/perm")
	covRmdirSticky   = cov.Point("fsspec/rmdir/sticky")
	covRmdirOk       = cov.Point("fsspec/rmdir/ok")
	covRmdirDisc     = cov.Point("fsspec/rmdir/disconnected")
)

// MkdirSpec gives the behaviour of mkdir(path, perm).
func MkdirSpec(c *Ctx, cmd types.Mkdir) Result {
	rn := c.Resolve(cmd.Path, pathres.NoFollowLast)
	switch r := rn.(type) {
	case pathres.RNError:
		cov.Hit(covMkdirErr)
		return ErrResult(r.Err)
	case pathres.RNDir:
		cov.Hit(covMkdirExists)
		return ErrResult(types.EEXIST)
	case pathres.RNFile:
		cov.Hit(covMkdirExists)
		if r.TrailingSlash && !r.IsSymlink {
			// "f/" where f is a file: POSIX wants ENOTDIR; Linux returns
			// EEXIST for mkdir. Keep the envelope loose for both.
			return ErrResult(types.EEXIST, types.ENOTDIR)
		}
		return ErrResult(types.EEXIST)
	case pathres.RNNone:
		errs := Par(
			when(!c.dirAccess(r.Parent, types.AccessWrite), types.EACCES),
			when(!c.dirAccess(r.Parent, types.AccessExec), types.EACCES),
			when(c.parentGone(r.Parent), types.ENOENT),
		)
		if len(errs) > 0 {
			cov.Hit(covMkdirPerm)
		} else {
			cov.Hit(covMkdirOk)
		}
		parent, name, perm := r.Parent, r.Name, c.effPerm(cmd.Perm)
		uid, gid := c.Euid, c.Egid
		return finish(errs, Outcome{
			Ret: types.RvNone{},
			Apply: func(h *state.Heap) {
				nd := h.AllocDir(parent, perm, uid, gid)
				h.LinkDir(parent, name, nd)
			},
		})
	}
	panic("fsspec: unreachable mkdir result")
}

// RmdirSpec gives the behaviour of rmdir(path).
func RmdirSpec(c *Ctx, cmd types.Rmdir) Result {
	rn := c.Resolve(cmd.Path, pathres.NoFollowLast)
	switch r := rn.(type) {
	case pathres.RNError:
		cov.Hit(covRmdirErr)
		return ErrResult(r.Err)
	case pathres.RNFile:
		cov.Hit(covRmdirNotDir)
		return ErrResult(types.ENOTDIR)
	case pathres.RNNone:
		cov.Hit(covRmdirNone)
		return ErrResult(types.ENOENT)
	case pathres.RNDir:
		h := c.H
		if r.Dir == h.Root {
			cov.Hit(covRmdirRoot)
			// Removing the root: POSIX allows EBUSY; Linux returns EBUSY,
			// OS X EBUSY or EINVAL. Keep both in the envelope.
			return ErrResult(types.EBUSY, types.EINVAL)
		}
		if !r.HasParent {
			// The path resolved via "." or "..": rmdir(".") is EINVAL per
			// POSIX; a disconnected directory gives ENOENT.
			if !h.IsConnected(r.Dir) {
				cov.Hit(covRmdirDisc)
				return ErrResult(types.ENOENT, types.EINVAL)
			}
			cov.Hit(covRmdirDot)
			return ErrResult(types.EINVAL, types.ENOTEMPTY, types.EBUSY)
		}
		dirObj := h.Dir(r.Dir)
		errs := Par(
			func() types.ErrnoSet {
				if !h.IsEmptyDir(r.Dir) {
					cov.Hit(covRmdirNotEmpty)
					// POSIX allows either ENOTEMPTY or EEXIST here.
					return raise(types.ENOTEMPTY, types.EEXIST)
				}
				return none()
			},
			when(!c.dirAccess(r.Parent, types.AccessWrite), types.EACCES),
			when(!c.dirAccess(r.Parent, types.AccessExec), types.EACCES),
			func() types.ErrnoSet {
				if c.stickyDenies(r.Parent, dirObj.Uid) {
					cov.Hit(covRmdirSticky)
					return raise(types.EACCES, types.EPERM)
				}
				return none()
			},
		)
		if errs.Has(types.EACCES) || errs.Has(types.EPERM) {
			cov.Hit(covRmdirPerm)
		}
		if len(errs) == 0 {
			cov.Hit(covRmdirOk)
		}
		parent, name := r.Parent, r.Name
		return finish(errs, Outcome{
			Ret: types.RvNone{},
			Apply: func(h *state.Heap) {
				h.UnlinkDir(parent, name)
			},
		})
	}
	panic("fsspec: unreachable rmdir result")
}
