package fsspec

import (
	"testing"

	"repro/internal/state"
	"repro/internal/types"
)

// ctx builds an evaluation context over the standard fixture:
// /d (dir), /d/f (file), /e (empty dir), /f (file "data"), /s -> f,
// /sd -> d, /sb -> nope.
func ctx(t *testing.T, spec types.Spec) (*Ctx, map[string]interface{}) {
	t.Helper()
	h := state.NewHeap()
	refs := map[string]interface{}{}
	d := h.AllocDir(h.Root, 0o755, 0, 0)
	h.LinkDir(h.Root, "d", d)
	refs["d"] = d
	e := h.AllocDir(h.Root, 0o755, 0, 0)
	h.LinkDir(h.Root, "e", e)
	refs["e"] = e
	df := h.AllocFile(0o644, 0, 0)
	h.LinkFile(d, "f", df)
	refs["d/f"] = df
	f := h.AllocFile(0o644, 0, 0)
	h.MutFile(f).Bytes = []byte("data")
	h.LinkFile(h.Root, "f", f)
	refs["f"] = f
	s := h.AllocSymlink("f", 0o777, 0, 0)
	h.LinkFile(h.Root, "s", s)
	sd := h.AllocSymlink("d", 0o777, 0, 0)
	h.LinkFile(h.Root, "sd", sd)
	sb := h.AllocSymlink("nope", 0o777, 0, 0)
	h.LinkFile(h.Root, "sb", sb)
	return &Ctx{
		Spec: spec, H: h, Cwd: h.Root, CwdValid: true,
		Umask: 0o022, Euid: types.RootUid, Egid: types.RootGid,
	}, refs
}

func linuxCtx(t *testing.T) *Ctx {
	c, _ := ctx(t, types.DefaultSpec())
	return c
}

func errsOf(r Result) types.ErrnoSet { return r.Errors }

func mustOk(t *testing.T, r Result) Outcome {
	t.Helper()
	if len(r.Errors) > 0 || len(r.Oks) != 1 {
		t.Fatalf("expected single success, got errs=%v oks=%d", r.Errors.Sorted(), len(r.Oks))
	}
	return r.Oks[0]
}

func mustErrs(t *testing.T, r Result, want ...types.Errno) {
	t.Helper()
	if len(r.Oks) != 0 {
		t.Fatalf("expected errors %v, got a success", want)
	}
	if len(r.Errors) != len(want) {
		t.Fatalf("errors = %v, want %v", r.Errors.Sorted(), want)
	}
	for _, e := range want {
		if !r.Errors.Has(e) {
			t.Fatalf("errors = %v, want %v", r.Errors.Sorted(), want)
		}
	}
}

func TestMkdirSpec(t *testing.T) {
	c := linuxCtx(t)
	ok := mustOk(t, MkdirSpec(c, types.Mkdir{Path: "/new", Perm: 0o777}))
	ok.Apply(c.H)
	e, found := c.H.Lookup(c.H.Root, "new")
	if !found || e.Kind != state.EntryDir {
		t.Fatal("mkdir did not create the directory")
	}
	// umask 0o022 applied.
	if c.H.Dir(e.Dir).Perm != 0o755 {
		t.Errorf("perm = %o, want 755", c.H.Dir(e.Dir).Perm)
	}
	mustErrs(t, MkdirSpec(c, types.Mkdir{Path: "/d", Perm: 0o777}), types.EEXIST)
	mustErrs(t, MkdirSpec(c, types.Mkdir{Path: "/f", Perm: 0o777}), types.EEXIST)
	mustErrs(t, MkdirSpec(c, types.Mkdir{Path: "/nodir/x", Perm: 0o777}), types.ENOENT)
	mustErrs(t, MkdirSpec(c, types.Mkdir{Path: "", Perm: 0o777}), types.ENOENT)
	// mkdir over a symlink (even broken) is EEXIST.
	mustErrs(t, MkdirSpec(c, types.Mkdir{Path: "/sb", Perm: 0o777}), types.EEXIST)
}

func TestRmdirSpec(t *testing.T) {
	c := linuxCtx(t)
	mustErrs(t, RmdirSpec(c, types.Rmdir{Path: "/f"}), types.ENOTDIR)
	mustErrs(t, RmdirSpec(c, types.Rmdir{Path: "/missing"}), types.ENOENT)
	r := RmdirSpec(c, types.Rmdir{Path: "/"})
	if !r.Errors.Has(types.EBUSY) {
		t.Errorf("rmdir / = %v", r.Errors.Sorted())
	}
	// Non-empty: POSIX allows ENOTEMPTY or EEXIST.
	r = RmdirSpec(c, types.Rmdir{Path: "/d"})
	if !r.Errors.Has(types.ENOTEMPTY) || !r.Errors.Has(types.EEXIST) {
		t.Errorf("rmdir nonempty = %v", r.Errors.Sorted())
	}
	ok := mustOk(t, RmdirSpec(c, types.Rmdir{Path: "/e"}))
	ok.Apply(c.H)
	if _, found := c.H.Lookup(c.H.Root, "e"); found {
		t.Error("rmdir did not remove the directory")
	}
	// rmdir(".") is EINVAL-ish.
	r = RmdirSpec(c, types.Rmdir{Path: "/d/."})
	if !r.Errors.Has(types.EINVAL) {
		t.Errorf("rmdir . = %v", r.Errors.Sorted())
	}
}

func TestRenameSpecFig6Checks(t *testing.T) {
	c := linuxCtx(t)

	// Same object: successful no-op.
	r := RenameSpec(c, types.Rename{Src: "/f", Dst: "/f"})
	if len(r.Oks) != 1 {
		t.Fatalf("same-object rename: %v", r.Errors.Sorted())
	}

	// The Fig 4 case: empty dir onto non-empty dir allows exactly
	// EEXIST/ENOTEMPTY.
	mustErrs(t, RenameSpec(c, types.Rename{Src: "/e", Dst: "/d"}),
		types.EEXIST, types.ENOTEMPTY)

	// file onto dir: EISDIR. dir onto file: ENOTDIR.
	mustErrs(t, RenameSpec(c, types.Rename{Src: "/f", Dst: "/e"}), types.EISDIR)
	mustErrs(t, RenameSpec(c, types.Rename{Src: "/e", Dst: "/f"}), types.ENOTDIR)

	// Source missing: ENOENT.
	mustErrs(t, RenameSpec(c, types.Rename{Src: "/missing", Dst: "/x"}), types.ENOENT)

	// Renaming a directory into its own subtree: EINVAL.
	sub := c.H.AllocDir(c.H.Dir(c.H.Root).Entries["d"].Dir, 0o755, 0, 0)
	c.H.LinkDir(c.H.Dir(c.H.Root).Entries["d"].Dir, "sub", sub)
	mustErrs(t, RenameSpec(c, types.Rename{Src: "/d", Dst: "/d/sub/x"}), types.EINVAL)

	// Renaming the root: EBUSY/EINVAL (POSIX/Linux).
	r = RenameSpec(c, types.Rename{Src: "/", Dst: "/e/r"})
	if !r.Errors.Has(types.EBUSY) || !r.Errors.Has(types.EINVAL) {
		t.Errorf("rename root = %v", r.Errors.Sorted())
	}

	// Trailing slash on a file source: ENOTDIR, checked before same-object.
	mustErrs(t, RenameSpec(c, types.Rename{Src: "/f/", Dst: "/f"}), types.ENOTDIR)
	mustErrs(t, RenameSpec(c, types.Rename{Src: "/f", Dst: "/f/"}), types.ENOTDIR)
	// file onto "dir/": ENOTDIR, not EISDIR (Linux-observed).
	mustErrs(t, RenameSpec(c, types.Rename{Src: "/f", Dst: "/e/"}), types.ENOTDIR)
}

func TestRenameSpecMove(t *testing.T) {
	c := linuxCtx(t)
	ok := mustOk(t, RenameSpec(c, types.Rename{Src: "/f", Dst: "/e/moved"}))
	ok.Apply(c.H)
	if _, found := c.H.Lookup(c.H.Root, "f"); found {
		t.Error("source survived rename")
	}
	e := c.H.Dir(c.H.Root).Entries["e"].Dir
	if _, found := c.H.Lookup(e, "moved"); !found {
		t.Error("destination missing after rename")
	}
}

func TestRenameReplacesFile(t *testing.T) {
	c, refs := ctx(t, types.DefaultSpec())
	fRef := refs["f"].(state.FileRef)
	before := c.H.File(fRef).Nlink
	ok := mustOk(t, RenameSpec(c, types.Rename{Src: "/d/f", Dst: "/f"}))
	ok.Apply(c.H)
	if got := c.H.File(fRef).Nlink; got != before-1 {
		t.Errorf("replaced file nlink = %d, want %d (the posixovl leak check)", got, before-1)
	}
}

func TestOsxRenameRootAllowsEISDIR(t *testing.T) {
	c, _ := ctx(t, types.Spec{Platform: types.PlatformOSX, Permissions: true, RootUser: true})
	r := RenameSpec(c, types.Rename{Src: "/", Dst: "/e/r"})
	if !r.Errors.Has(types.EISDIR) {
		t.Errorf("OS X rename root should allow EISDIR: %v", r.Errors.Sorted())
	}
}

func TestLinkSpec(t *testing.T) {
	c := linuxCtx(t)
	ok := mustOk(t, LinkSpec(c, types.Link{Src: "/f", Dst: "/f2"}))
	ok.Apply(c.H)
	e, _ := c.H.Lookup(c.H.Root, "f2")
	if c.H.File(e.File).Nlink != 2 {
		t.Errorf("nlink = %d", c.H.File(e.File).Nlink)
	}
	mustErrs(t, LinkSpec(c, types.Link{Src: "/d", Dst: "/d2"}), types.EPERM)
	mustErrs(t, LinkSpec(c, types.Link{Src: "/missing", Dst: "/x"}), types.ENOENT)
	mustErrs(t, LinkSpec(c, types.Link{Src: "/f", Dst: "/f2"}), types.EEXIST)
	// Linux links the symlink itself.
	ok = mustOk(t, LinkSpec(c, types.Link{Src: "/s", Dst: "/s2"}))
	ok.Apply(c.H)
	e, _ = c.H.Lookup(c.H.Root, "s2")
	if e.Kind != state.EntrySymlink {
		t.Error("Linux link should hard-link the symlink itself")
	}
	// POSIX leaves symlink sources implementation-defined.
	pc, _ := ctx(t, types.Spec{Platform: types.PlatformPOSIX, Permissions: true, RootUser: true})
	if r := LinkSpec(pc, types.Link{Src: "/s", Dst: "/s2"}); !r.Undefined {
		t.Error("POSIX link-to-symlink should be a special state")
	}
	// The §7.3.2 Linux quirk: trailing-slash file destination allows EEXIST.
	r := LinkSpec(c, types.Link{Src: "/d", Dst: "/f/"})
	if !r.Errors.Has(types.EEXIST) || !r.Errors.Has(types.ENOTDIR) {
		t.Errorf("link dir onto f/ = %v", r.Errors.Sorted())
	}
}

func TestUnlinkSpec(t *testing.T) {
	c := linuxCtx(t)
	ok := mustOk(t, UnlinkSpec(c, types.Unlink{Path: "/f"}))
	ok.Apply(c.H)
	if _, found := c.H.Lookup(c.H.Root, "f"); found {
		t.Error("unlink left the entry")
	}
	mustErrs(t, UnlinkSpec(c, types.Unlink{Path: "/missing"}), types.ENOENT)
	// Platform split on unlinking a directory.
	mustErrs(t, UnlinkSpec(c, types.Unlink{Path: "/d"}), types.EISDIR)
	oc, _ := ctx(t, types.Spec{Platform: types.PlatformOSX, Permissions: true, RootUser: true})
	mustErrs(t, UnlinkSpec(oc, types.Unlink{Path: "/d"}), types.EPERM)
	pc, _ := ctx(t, types.Spec{Platform: types.PlatformPOSIX, Permissions: true, RootUser: true})
	r := UnlinkSpec(pc, types.Unlink{Path: "/d"})
	if !r.Errors.Has(types.EPERM) || !r.Errors.Has(types.EISDIR) {
		t.Errorf("POSIX unlink dir = %v", r.Errors.Sorted())
	}
	// Unlinking an unfollowed symlink removes the link, not the target.
	c2 := linuxCtx(t)
	ok = mustOk(t, UnlinkSpec(c2, types.Unlink{Path: "/s"}))
	ok.Apply(c2.H)
	if _, found := c2.H.Lookup(c2.H.Root, "f"); !found {
		t.Error("unlink of symlink removed the target")
	}
}

func TestSymlinkReadlinkSpec(t *testing.T) {
	c := linuxCtx(t)
	ok := mustOk(t, SymlinkSpec(c, types.Symlink{Target: "anywhere", Linkpath: "/nl"}))
	ok.Apply(c.H)
	r := mustOk(t, ReadlinkSpec(c, types.Readlink{Path: "/nl"}))
	if b, okb := r.Ret.(types.RvBytes); !okb || string(b.Data) != "anywhere" {
		t.Errorf("readlink = %v", r.Ret)
	}
	mustErrs(t, SymlinkSpec(c, types.Symlink{Target: "", Linkpath: "/x"}), types.ENOENT)
	mustErrs(t, SymlinkSpec(c, types.Symlink{Target: "t", Linkpath: "/f"}), types.EEXIST)
	mustErrs(t, ReadlinkSpec(c, types.Readlink{Path: "/f"}), types.EINVAL)
	mustErrs(t, ReadlinkSpec(c, types.Readlink{Path: "/d"}), types.EINVAL)
	mustErrs(t, ReadlinkSpec(c, types.Readlink{Path: "/missing"}), types.ENOENT)
	// Trailing slash: follows; target dir → EINVAL, target file → ENOTDIR.
	mustErrs(t, ReadlinkSpec(c, types.Readlink{Path: "/sd/"}), types.EINVAL)
	mustErrs(t, ReadlinkSpec(c, types.Readlink{Path: "/s/"}), types.ENOTDIR)
}

func TestStatLstatSpec(t *testing.T) {
	c := linuxCtx(t)
	r := mustOk(t, StatSpec(c, types.Stat{Path: "/s"}))
	st := r.Ret.(types.RvStats).Stats
	if st.Kind != types.KindFile || st.Size != 4 {
		t.Errorf("stat through symlink = %+v", st)
	}
	r = mustOk(t, LstatSpec(c, types.Lstat{Path: "/s"}))
	st = r.Ret.(types.RvStats).Stats
	if st.Kind != types.KindSymlink || st.Size != 1 {
		t.Errorf("lstat of symlink = %+v", st)
	}
	// lstat with trailing slash follows (Linux-observed).
	r = mustOk(t, LstatSpec(c, types.Lstat{Path: "/sd/"}))
	if r.Ret.(types.RvStats).Stats.Kind != types.KindDir {
		t.Error("lstat sd/ should stat the directory")
	}
	mustErrs(t, LstatSpec(c, types.Lstat{Path: "/s/"}), types.ENOTDIR)
	r = mustOk(t, StatSpec(c, types.Stat{Path: "/d"}))
	if r.Ret.(types.RvStats).Stats.Nlink != 2 {
		t.Errorf("dir nlink = %d", r.Ret.(types.RvStats).Stats.Nlink)
	}
}

func TestTruncateSpec(t *testing.T) {
	c, refs := ctx(t, types.DefaultSpec())
	f := refs["f"].(state.FileRef)
	ok := mustOk(t, TruncateSpec(c, types.Truncate{Path: "/f", Len: 2}))
	ok.Apply(c.H)
	if string(c.H.File(f).Bytes) != "da" {
		t.Errorf("shrink = %q", c.H.File(f).Bytes)
	}
	ok = mustOk(t, TruncateSpec(c, types.Truncate{Path: "/f", Len: 5}))
	ok.Apply(c.H)
	if string(c.H.File(f).Bytes) != "da\x00\x00\x00" {
		t.Errorf("grow = %q", c.H.File(f).Bytes)
	}
	mustErrs(t, TruncateSpec(c, types.Truncate{Path: "/f", Len: -1}), types.EINVAL)
	mustErrs(t, TruncateSpec(c, types.Truncate{Path: "/d", Len: 0}), types.EISDIR)
	// Through a symlink.
	ok = mustOk(t, TruncateSpec(c, types.Truncate{Path: "/s", Len: 0}))
	ok.Apply(c.H)
	if len(c.H.File(f).Bytes) != 0 {
		t.Error("truncate through symlink failed")
	}
}

func TestChmodChownSpec(t *testing.T) {
	c, refs := ctx(t, types.DefaultSpec())
	f := refs["f"].(state.FileRef)
	ok := mustOk(t, ChmodSpec(c, types.Chmod{Path: "/f", Perm: 0o600}))
	ok.Apply(c.H)
	if c.H.File(f).Perm != 0o600 {
		t.Error("chmod did not apply")
	}
	ok = mustOk(t, ChownSpec(c, types.Chown{Path: "/f", Uid: 5, Gid: 6}))
	ok.Apply(c.H)
	if c.H.File(f).Uid != 5 || c.H.File(f).Gid != 6 {
		t.Error("chown did not apply")
	}
	// Non-owner, non-root chmod is EPERM.
	c.Euid = 1000
	mustErrs(t, ChmodSpec(c, types.Chmod{Path: "/d", Perm: 0o700}), types.EPERM)
	mustErrs(t, ChownSpec(c, types.Chown{Path: "/d", Uid: 1000, Gid: 1000}), types.EPERM)
}

func TestChdirSpec(t *testing.T) {
	c := linuxCtx(t)
	dir, r := ChdirSpec(c, types.Chdir{Path: "/d"})
	if len(r.Oks) != 1 || dir == 0 {
		t.Fatalf("chdir /d failed: %v", r.Errors.Sorted())
	}
	_, r = ChdirSpec(c, types.Chdir{Path: "/f"})
	mustErrs(t, r, types.ENOTDIR)
	_, r = ChdirSpec(c, types.Chdir{Path: "/missing"})
	mustErrs(t, r, types.ENOENT)
}

func TestParCombinator(t *testing.T) {
	got := Par(
		when(true, types.ENOENT),
		when(false, types.EPERM),
		when(true, types.EACCES, types.EEXIST),
	)
	if len(got) != 3 || !got.Has(types.ENOENT) || !got.Has(types.EACCES) || !got.Has(types.EEXIST) {
		t.Errorf("Par = %v", got.Sorted())
	}
	if got.Has(types.EPERM) {
		t.Error("Par included a passing check's errors")
	}
	if len(Par(when(false, types.EIO))) != 0 {
		t.Error("all-pass Par should be empty")
	}
}

func TestAccessAlgorithm(t *testing.T) {
	c := linuxCtx(t)
	c.Euid, c.Egid = 1000, 1000
	cases := []struct {
		uid  types.Uid
		gid  types.Gid
		perm types.Perm
		req  types.AccessRequest
		want bool
	}{
		{1000, 1000, 0o400, types.AccessRead, true},  // owner read
		{1000, 1000, 0o040, types.AccessRead, false}, // owner class only
		{1, 1000, 0o040, types.AccessRead, true},     // group read
		{1, 1, 0o004, types.AccessRead, true},        // other read
		{1, 1, 0o044, types.AccessWrite, false},      // no write anywhere
		{1000, 1, 0o200, types.AccessWrite, true},    // owner write
		{1, 1, 0o001, types.AccessExec, true},        // other exec
	}
	for i, cs := range cases {
		if got := c.Access(cs.uid, cs.gid, cs.perm, cs.req); got != cs.want {
			t.Errorf("case %d: Access = %v", i, got)
		}
	}
	// Root bypass.
	c.Euid = 0
	if !c.Access(5, 5, 0, types.AccessWrite) {
		t.Error("root bypass missing")
	}
	// Trait disabled.
	c.Euid = 1000
	c.Spec.Permissions = false
	if !c.Access(5, 5, 0, types.AccessWrite) {
		t.Error("disabled trait should allow everything")
	}
}

func TestErrorsNeverMutate(t *testing.T) {
	// Every command evaluated against a state where it fails must leave
	// the heap unchanged — the paper's proved sanity property, checked
	// here at the fsspec layer (Result carries no Apply for errors).
	c := linuxCtx(t)
	cmds := []func() Result{
		func() Result { return MkdirSpec(c, types.Mkdir{Path: "/d", Perm: 0o777}) },
		func() Result { return RmdirSpec(c, types.Rmdir{Path: "/f"}) },
		func() Result { return UnlinkSpec(c, types.Unlink{Path: "/d"}) },
		func() Result { return RenameSpec(c, types.Rename{Src: "/e", Dst: "/d"}) },
		func() Result { return LinkSpec(c, types.Link{Src: "/d", Dst: "/x"}) },
		func() Result { return SymlinkSpec(c, types.Symlink{Target: "t", Linkpath: "/f"}) },
		func() Result { return TruncateSpec(c, types.Truncate{Path: "/d", Len: 0}) },
	}
	fp := c.H.Clone()
	for i, f := range cmds {
		r := f()
		if len(r.Oks) != 0 {
			t.Errorf("cmd %d unexpectedly succeeded", i)
		}
	}
	// Structural equality via entry listings.
	if fp.NumDirs() != c.H.NumDirs() || fp.NumFiles() != c.H.NumFiles() {
		t.Error("an error path mutated the heap")
	}
}
