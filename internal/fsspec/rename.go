package fsspec

import (
	"repro/internal/cov"
	"repro/internal/pathres"
	"repro/internal/state"
	"repro/internal/types"
)

var (
	covRenameSame       = cov.Point("fsspec/rename/same_object")
	covRenameSrcErr     = cov.Point("fsspec/rename/src_error")
	covRenameDstErr     = cov.Point("fsspec/rename/dst_error")
	covRenameRoot       = cov.Point("fsspec/rename/root")
	covRenameSubdir     = cov.Point("fsspec/rename/subdir")
	covRenameParentdirs = cov.Point("fsspec/rename/parentdirs")
	covRenamePerms      = cov.Point("fsspec/rename/perms")
	covRenameKinds      = cov.Point("fsspec/rename/kind_mismatch")
	covRenameNonempty   = cov.Point("fsspec/rename/nonempty_dst")
	covRenameOkFile     = cov.Point("fsspec/rename/ok_file")
	covRenameOkDir      = cov.Point("fsspec/rename/ok_dir")
	covRenameTrailing   = cov.Point("fsspec/rename/trailing_slash")
)

// renameEnds classifies one end of a rename after resolution.
type renameEnd struct {
	rn      pathres.ResName
	isDir   bool
	isFile  bool
	none    bool
	err     types.Errno
	dir     state.DirRef
	file    state.FileRef
	parent  state.DirRef
	name    string
	hasPar  bool
	trail   bool
	dotLike bool // resolved via "." or ".." (no parent binding)
}

func classifyEnd(rn pathres.ResName) renameEnd {
	e := renameEnd{rn: rn}
	switch r := rn.(type) {
	case pathres.RNError:
		e.err = r.Err
	case pathres.RNDir:
		e.isDir = true
		e.dir = r.Dir
		e.parent, e.name, e.hasPar = r.Parent, r.Name, r.HasParent
		e.dotLike = !r.HasParent
	case pathres.RNFile:
		e.isFile = true
		e.file = r.File
		e.parent, e.name, e.hasPar = r.Parent, r.Name, true
		e.trail = r.TrailingSlash
	case pathres.RNNone:
		e.none = true
		e.parent, e.name, e.hasPar = r.Parent, r.Name, true
		e.trail = r.TrailingSlash
	}
	return e
}

// RenameSpec gives the behaviour of rename(src, dst), structured exactly as
// the Fig 6 excerpt: a same-object short-circuit, then the parallel
// combination of the per-concern checks (source/destination combinations,
// root, subdirectory cycles, parent directories, permissions).
func RenameSpec(c *Ctx, cmd types.Rename) Result {
	src := classifyEnd(c.Resolve(cmd.Src, pathres.NoFollowLast))
	dst := classifyEnd(c.Resolve(cmd.Dst, pathres.NoFollowLast))
	// trail records the raw paths' trailing slashes for all result kinds
	// (resolution only reports it for files).
	src.trail = hasTrailingSlash(cmd.Src)
	dst.trail = hasTrailingSlash(cmd.Dst)

	// A trailing slash on either path requires the *renamed object* to be
	// a directory; otherwise ENOTDIR — checked by the kernel before the
	// same-object no-op (observed: rename("f","f/") is ENOTDIR, and
	// rename(file, "dir/") is ENOTDIR, not EISDIR). A root destination
	// ("/", "//", ...) behaves like a trailing slash, with the
	// root-rename errors also in the envelope; "." / ".." endpoints add
	// EBUSY/EINVAL.
	dstRootish := dst.trail || allSlashes(cmd.Dst)
	if src.err == types.EOK && !src.none && !src.isDir && (src.trail || dstRootish) {
		cov.Hit(covRenameTrailing)
		errs := types.NewErrnoSet(types.ENOTDIR)
		if dst.err != types.EOK {
			errs.Add(dst.err)
		}
		if src.dotLike || (dst.isDir && dst.dotLike) {
			errs.Add(types.EBUSY, types.EINVAL)
		}
		if dst.isDir && dst.dir == c.H.Root {
			errs.Add(types.EBUSY, types.EINVAL)
		}
		return Result{Errors: errs}
	}

	// fsop_rename_same: renaming an object onto itself (same entry or two
	// hard links to the same file) is a successful no-op. When the object
	// is the root directory, real systems may instead report the
	// root-rename error (Linux: EBUSY), so both are in the envelope.
	if fsopRenameSame(src, dst) {
		cov.Hit(covRenameSame)
		res := OkResult(types.RvNone{}, nil)
		if src.isDir && src.dir == c.H.Root {
			res.Errors.Add(types.EBUSY, types.EINVAL)
		}
		return res
	}

	errs := Par(
		func() types.ErrnoSet { return fsopRenameChecksRsrcRdst(c, src, dst) },
		func() types.ErrnoSet { return fsopRenameChecksRoot(c, src, dst) },
		func() types.ErrnoSet { return fsopRenameChecksSubdir(c, src, dst) },
		func() types.ErrnoSet { return fsopRenameChecksParentdirs(c, src, dst) },
		func() types.ErrnoSet { return fsopRenameChecksDisconnected(c, dst) },
		func() types.ErrnoSet { return fsopRenameChecksPerms(c, src, dst) },
	)
	if len(errs) > 0 {
		return Result{Errors: errs}
	}

	// Success: move the entry, replacing the destination if present.
	if src.isDir {
		cov.Hit(covRenameOkDir)
	} else {
		cov.Hit(covRenameOkFile)
	}
	s, d := src, dst
	return OkResult(types.RvNone{}, func(h *state.Heap) {
		if d.isFile {
			h.UnlinkFile(d.parent, d.name)
		} else if d.isDir && d.hasPar {
			h.UnlinkDir(d.parent, d.name)
		}
		if s.isDir {
			h.UnlinkDir(s.parent, s.name)
			h.LinkDir(d.parent, d.name, s.dir)
		} else {
			f := s.file
			h.UnlinkFile(s.parent, s.name)
			h.LinkFile(d.parent, d.name, f)
		}
	})
}

func fsopRenameSame(src, dst renameEnd) bool {
	if src.isDir && dst.isDir && src.dir == dst.dir {
		return true
	}
	if src.isFile && dst.isFile && src.file == dst.file {
		return true
	}
	return false
}

// fsopRenameChecksRsrcRdst covers the combinations of source and
// destination kinds that result in errors.
func fsopRenameChecksRsrcRdst(c *Ctx, src, dst renameEnd) types.ErrnoSet {
	errs := types.NewErrnoSet()
	if src.err != types.EOK {
		cov.Hit(covRenameSrcErr)
		errs.Add(src.err)
	}
	if src.none {
		cov.Hit(covRenameSrcErr)
		errs.Add(types.ENOENT)
	}
	if dst.err != types.EOK {
		cov.Hit(covRenameDstErr)
		errs.Add(dst.err)
	}
	if src.isFile && src.trail {
		// rename("f/", ...) — the source is a file reached with a trailing
		// slash; POSIX and Linux agree on ENOTDIR here.
		cov.Hit(covRenameTrailing)
		errs.Add(types.ENOTDIR)
	}
	if dst.isFile && dst.trail {
		// rename onto "f/" (or "s/" with s a symlink): ENOTDIR on all
		// modelled platforms (observed on Linux; the EEXIST quirk of
		// §7.3.2 applies to link, not rename).
		cov.Hit(covRenameTrailing)
		errs.Add(types.ENOTDIR)
	}
	if dst.none && dst.trail && !src.isDir {
		// Creating a non-directory at "name/" cannot succeed.
		cov.Hit(covRenameTrailing)
		errs.Add(types.ENOENT, types.ENOTDIR)
	}
	if src.isFile && dst.isDir {
		cov.Hit(covRenameKinds)
		errs.Add(types.EISDIR)
	}
	if src.isDir && dst.isFile {
		cov.Hit(covRenameKinds)
		errs.Add(types.ENOTDIR)
	}
	if src.isDir && dst.isDir && dst.hasPar && !c.H.IsEmptyDir(dst.dir) {
		// The Fig 4 example: rename of an empty dir onto a non-empty dir
		// allows EEXIST or ENOTEMPTY (and nothing else — the checker
		// rejects SSHFS's EPERM here, exactly as in the paper).
		cov.Hit(covRenameNonempty)
		errs.Add(types.EEXIST, types.ENOTEMPTY)
	}
	return errs
}

// fsopRenameChecksRoot covers attempts to rename the root directory (or
// rename something onto the root).
func fsopRenameChecksRoot(c *Ctx, src, dst renameEnd) types.ErrnoSet {
	errs := types.NewErrnoSet()
	rootInvolved := (src.isDir && src.dir == c.H.Root) || (dst.isDir && dst.dir == c.H.Root)
	if rootInvolved {
		cov.Hit(covRenameRoot)
		if c.isOSX() {
			// OS X returns EISDIR when renaming the root (§7.3.2); the OS X
			// variant of the model describes the observed behaviour.
			errs.Add(types.EISDIR, types.EBUSY, types.EINVAL)
		} else {
			errs.Add(types.EBUSY, types.EINVAL)
		}
	}
	// Renaming "." or ".." is EINVAL (or EBUSY); these resolve without a
	// parent binding.
	if (src.isDir && src.dotLike && src.err == types.EOK && src.dir != c.H.Root) ||
		(dst.isDir && dst.dotLike && dst.err == types.EOK && dst.dir != c.H.Root) {
		cov.Hit(covRenameRoot)
		errs.Add(types.EINVAL, types.EBUSY)
	}
	return errs
}

// fsopRenameChecksSubdir covers renaming a directory to a subdirectory of
// itself (which would disconnect a cycle).
func fsopRenameChecksSubdir(c *Ctx, src, dst renameEnd) types.ErrnoSet {
	if !src.isDir {
		return none()
	}
	dstParent := dst.parent
	if dst.isDir && dst.hasPar {
		dstParent = dst.parent
	}
	if dst.isDir && src.dir != dst.dir && c.H.IsAncestor(src.dir, dst.dir) {
		cov.Hit(covRenameSubdir)
		return raise(types.EINVAL)
	}
	if (dst.none || dst.isFile) && (dstParent == src.dir || c.H.IsAncestor(src.dir, dstParent)) {
		cov.Hit(covRenameSubdir)
		return raise(types.EINVAL)
	}
	return none()
}

// fsopRenameChecksParentdirs checks that the parents of both ends can still
// be found; it fails only when a disconnected file or directory is involved
// in the rename.
func fsopRenameChecksParentdirs(c *Ctx, src, dst renameEnd) types.ErrnoSet {
	errs := types.NewErrnoSet()
	if src.hasPar {
		if c.H.Dir(src.parent) == nil {
			cov.Hit(covRenameParentdirs)
			errs.Add(types.ENOENT)
		}
	}
	if dst.hasPar || dst.none {
		if c.H.Dir(dst.parent) == nil {
			cov.Hit(covRenameParentdirs)
			errs.Add(types.ENOENT)
		}
	}
	if src.isDir && src.err == types.EOK && !src.hasPar && src.dir != c.H.Root {
		// Source resolved via "."/".." to a (possibly disconnected) dir.
		cov.Hit(covRenameParentdirs)
		errs.Add(types.EINVAL, types.EBUSY, types.ENOENT)
	}
	return errs
}

// fsopRenameChecksPerms checks the permissions involved: write+search on
// both parent directories, plus the sticky-bit restrictions.
func fsopRenameChecksPerms(c *Ctx, src, dst renameEnd) types.ErrnoSet {
	if !c.Spec.Permissions {
		return none()
	}
	// Only meaningful when both ends resolved to workable entries.
	if src.err != types.EOK || src.none || dst.err != types.EOK {
		return none()
	}
	errs := types.NewErrnoSet()
	if src.hasPar {
		if !c.dirAccess(src.parent, types.AccessWrite) || !c.dirAccess(src.parent, types.AccessExec) {
			cov.Hit(covRenamePerms)
			errs.Add(types.EACCES)
		}
		var objUid types.Uid
		if src.isDir {
			objUid = c.H.Dir(src.dir).Uid
		} else if f := c.H.File(src.file); f != nil {
			objUid = f.Uid
		}
		if c.stickyDenies(src.parent, objUid) {
			cov.Hit(covRenamePerms)
			errs.Add(types.EACCES, types.EPERM)
		}
	}
	dstParent, ok := dstParentOf(dst)
	if ok {
		if !c.dirAccess(dstParent, types.AccessWrite) || !c.dirAccess(dstParent, types.AccessExec) {
			cov.Hit(covRenamePerms)
			errs.Add(types.EACCES)
		}
	}
	return errs
}

// fsopRenameChecksDisconnected: moving into an unlinked parent is ENOENT.
func fsopRenameChecksDisconnected(c *Ctx, dst renameEnd) types.ErrnoSet {
	if p, ok := dstParentOf(dst); ok && c.parentGone(p) {
		cov.Hit(covRenameParentdirs)
		return raise(types.ENOENT)
	}
	return none()
}

func dstParentOf(dst renameEnd) (state.DirRef, bool) {
	if dst.none || dst.isFile {
		return dst.parent, true
	}
	if dst.isDir && dst.hasPar {
		return dst.parent, true
	}
	return 0, false
}
