// Package fsspec is the paper's "file system module" (§5): the behaviour of
// each command — its envelope of allowed errors and its effect on the state
// — expressed over resolved names. Nondeterministic error envelopes are
// built with the parallel combinator of Fig 6; the permissions trait (§4)
// is implemented here and can be disabled via the Spec.
package fsspec
