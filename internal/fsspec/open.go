package fsspec

import (
	"repro/internal/cov"
	"repro/internal/pathres"
	"repro/internal/state"
	"repro/internal/types"
)

var (
	covOpenErr      = cov.Point("fsspec/open/resolve_error")
	covOpenExcl     = cov.Point("fsspec/open/excl_exists")
	covOpenDirWr    = cov.Point("fsspec/open/dir_writable")
	covOpenNofollow = cov.Point("fsspec/open/nofollow_symlink")
	covOpenNotDir   = cov.Point("fsspec/open/o_directory_file")
	covOpenNoEnt    = cov.Point("fsspec/open/missing_no_creat")
	covOpenPerm     = cov.Point("fsspec/open/perm")
	covOpenCreate   = cov.Point("fsspec/open/create")
	covOpenExisting = cov.Point("fsspec/open/existing")
	covOpenDir      = cov.Point("fsspec/open/dir")
	covOpenTrailing = cov.Point("fsspec/open/trailing")
	covOpendirErr   = cov.Point("fsspec/opendir/error")
	covOpendirOk    = cov.Point("fsspec/opendir/ok")
)

// OpenDecision describes the successful behaviour of an open call; the OS
// layer allocates the descriptor and applies the creation/truncation
// effects. Errs non-empty means the call must fail with one of them.
type OpenDecision struct {
	Errs      types.ErrnoSet
	Undefined bool

	// Exactly one of the following success shapes holds when Errs is empty.
	OpenExisting bool
	File         state.FileRef
	OpenDir      bool
	Dir          state.DirRef
	Create       bool
	Parent       state.DirRef
	Name         string
	CreatePerm   types.Perm

	Truncate bool
	Append   bool
	Writable bool
	Readable bool
}

// OpenSpec gives the behaviour of open(path, flags, perm).
func OpenSpec(c *Ctx, cmd types.Open) OpenDecision {
	d := OpenDecision{Errs: types.NewErrnoSet()}
	flags := cmd.Flags
	d.Append = flags.Has(types.OAppend)
	d.Writable = flags.Writable()
	d.Readable = flags.Readable()
	// chkRead/chkWrite drive the permission and directory checks; they can
	// differ from the descriptor's final capabilities for the kernel's
	// accmode 3 below.
	chkRead, chkWrite := d.Readable, d.Writable

	if flags.Has(types.OWronly) && flags.Has(types.ORdwr) {
		// Both access-mode bits set (the kernel's accmode 3): POSIX leaves
		// this undefined; observed Linux behaviour is that the open
		// succeeds — creating and truncating as usual, demanding both read
		// and write permission — but the resulting descriptor permits
		// neither reads nor writes. All variants model the observed
		// behaviour (an allowed choice for an undefined case).
		d.Readable = false
		d.Writable = false
		chkRead, chkWrite = true, true
	}
	if flags.Has(types.OCreat) && flags.Has(types.ODirectory) && c.isLinux() {
		// Linux rejects O_CREAT|O_DIRECTORY with EINVAL before the path is
		// even looked at (observed against the real kernel; POSIX leaves
		// the combination to normal processing — which is what makes the
		// FreeBSD symlink-replacement defect of §7.3.2 observable).
		cov.Hit(covOpenErr)
		d.Errs.Add(types.EINVAL)
		return d
	}

	trailing := len(cmd.Path) > 0 && cmd.Path[len(cmd.Path)-1] == '/' && !allSlashes(cmd.Path)
	if flags.Has(types.OCreat) && trailing && c.isLinux() {
		// Linux refuses creation-style opens of any trailing-slash path
		// with EISDIR, whether or not the path resolves (observed against
		// the real kernel).
		cov.Hit(covOpenTrailing)
		d.Errs.Add(types.EISDIR)
		return d
	}

	follow := pathres.FollowLast
	if flags.Has(types.ONofollow) || (flags.Has(types.OCreat) && flags.Has(types.OExcl)) {
		follow = pathres.NoFollowLast
	}
	if trailing {
		// A trailing slash forces following even under O_NOFOLLOW:
		// open("s/", O_NOFOLLOW) succeeds on Linux when s leads to a
		// directory (observed).
		follow = pathres.FollowLast
	}
	rn := c.Resolve(cmd.Path, follow)

	switch r := rn.(type) {
	case pathres.RNError:
		cov.Hit(covOpenErr)
		d.Errs.Add(r.Err)
		return d

	case pathres.RNDir:
		if flags.Has(types.OCreat) {
			cov.Hit(covOpenExcl)
			// O_CREAT on an existing directory: POSIX says EEXIST (with
			// O_EXCL); Linux reports EISDIR. Both are in the envelope;
			// FreeBSD's ENOTDIR for the symlink-to-directory case
			// (§7.3.2) is a deviation the checker must flag, so it is
			// deliberately not allowed here.
			if flags.Has(types.OExcl) {
				d.Errs.Add(types.EEXIST, types.EISDIR)
			} else {
				d.Errs.Add(types.EISDIR)
			}
			return d
		}
		if chkWrite || flags.Has(types.OTrunc) {
			cov.Hit(covOpenDirWr)
			d.Errs.Add(types.EISDIR)
			return d
		}
		if !c.dirAccess(r.Dir, types.AccessRead) {
			cov.Hit(covOpenPerm)
			d.Errs.Add(types.EACCES)
			return d
		}
		cov.Hit(covOpenDir)
		d.OpenDir = true
		d.Dir = r.Dir
		return d

	case pathres.RNFile:
		if r.IsSymlink {
			// Unfollowed symlink: either O_NOFOLLOW (ELOOP) or
			// O_CREAT|O_EXCL (EEXIST). With O_DIRECTORY as well, Linux
			// reports ENOTDIR in preference to ELOOP (observed).
			switch {
			case flags.Has(types.OCreat) && flags.Has(types.OExcl):
				cov.Hit(covOpenExcl)
				d.Errs.Add(types.EEXIST)
			case flags.Has(types.ODirectory):
				cov.Hit(covOpenNofollow)
				if c.isLinux() {
					d.Errs.Add(types.ENOTDIR)
				} else {
					d.Errs.Add(types.ENOTDIR, types.ELOOP)
				}
			default:
				cov.Hit(covOpenNofollow)
				d.Errs.Add(types.ELOOP)
			}
			return d
		}
		if flags.Has(types.OCreat) && flags.Has(types.OExcl) {
			cov.Hit(covOpenExcl)
			d.Errs.Add(types.EEXIST)
			return d
		}
		if flags.Has(types.ODirectory) {
			cov.Hit(covOpenNotDir)
			d.Errs.Add(types.ENOTDIR)
			return d
		}
		if r.TrailingSlash {
			cov.Hit(covOpenTrailing)
			d.Errs.Add(types.ENOTDIR)
			if flags.Has(types.OCreat) {
				d.Errs.Add(types.EISDIR)
			}
			return d
		}
		perms := Par(
			when(chkRead && !c.fileAccess(r.File, types.AccessRead), types.EACCES),
			when(chkWrite && !c.fileAccess(r.File, types.AccessWrite), types.EACCES),
		)
		if len(perms) > 0 {
			cov.Hit(covOpenPerm)
			d.Errs.Union(perms)
			return d
		}
		cov.Hit(covOpenExisting)
		d.OpenExisting = true
		d.File = r.File
		// POSIX leaves O_TRUNC|O_RDONLY unspecified; Linux truncates even
		// on read-only opens (observed against the real kernel).
		d.Truncate = flags.Has(types.OTrunc) && (chkWrite || c.isLinux())
		return d

	case pathres.RNNone:
		if !flags.Has(types.OCreat) {
			cov.Hit(covOpenNoEnt)
			d.Errs.Add(types.ENOENT)
			return d
		}
		if r.TrailingSlash {
			cov.Hit(covOpenTrailing)
			// Creating "name/": Linux gives EISDIR, POSIX ENOENT/EISDIR.
			d.Errs.Add(types.EISDIR, types.ENOENT)
			return d
		}
		pe := Par(
			when(!c.dirAccess(r.Parent, types.AccessWrite), types.EACCES),
			when(!c.dirAccess(r.Parent, types.AccessExec), types.EACCES),
			when(c.parentGone(r.Parent), types.ENOENT),
		)
		if len(pe) > 0 {
			cov.Hit(covOpenPerm)
			d.Errs.Union(pe)
			return d
		}
		cov.Hit(covOpenCreate)
		d.Create = true
		d.Parent = r.Parent
		d.Name = r.Name
		d.CreatePerm = c.effPerm(cmd.Perm)
		return d
	}
	panic("fsspec: unreachable open result")
}

// OpendirSpec gives the behaviour of opendir(path): the path must resolve
// to a directory readable by the caller.
func OpendirSpec(c *Ctx, cmd types.Opendir) (state.DirRef, Result) {
	rn := c.Resolve(cmd.Path, pathres.FollowLast)
	switch r := rn.(type) {
	case pathres.RNError:
		cov.Hit(covOpendirErr)
		return 0, ErrResult(r.Err)
	case pathres.RNNone:
		cov.Hit(covOpendirErr)
		return 0, ErrResult(types.ENOENT)
	case pathres.RNFile:
		cov.Hit(covOpendirErr)
		return 0, ErrResult(types.ENOTDIR)
	case pathres.RNDir:
		if !c.dirAccess(r.Dir, types.AccessRead) {
			cov.Hit(covOpendirErr)
			return 0, ErrResult(types.EACCES)
		}
		cov.Hit(covOpendirOk)
		return r.Dir, OkResult(types.RvNone{}, nil)
	}
	panic("fsspec: unreachable opendir result")
}

// allSlashes reports whether the path consists only of '/' characters.
func allSlashes(p string) bool {
	for i := 0; i < len(p); i++ {
		if p[i] != '/' {
			return false
		}
	}
	return len(p) > 0
}
