package fsspec

import (
	"repro/internal/cov"
	"repro/internal/pathres"
	"repro/internal/state"
	"repro/internal/types"
)

var (
	covLinkSrcErr   = cov.Point("fsspec/link/src_error")
	covLinkSrcDir   = cov.Point("fsspec/link/src_dir")
	covLinkSymlink  = cov.Point("fsspec/link/src_symlink")
	covLinkDstErr   = cov.Point("fsspec/link/dst_error")
	covLinkExists   = cov.Point("fsspec/link/dst_exists")
	covLinkTrailing = cov.Point("fsspec/link/trailing")
	covLinkPerm     = cov.Point("fsspec/link/perm")
	covLinkOk       = cov.Point("fsspec/link/ok")

	covUnlinkErr    = cov.Point("fsspec/unlink/resolve_error")
	covUnlinkDir    = cov.Point("fsspec/unlink/is_dir")
	covUnlinkNone   = cov.Point("fsspec/unlink/missing")
	covUnlinkPerm   = cov.Point("fsspec/unlink/perm")
	covUnlinkSticky = cov.Point("fsspec/unlink/sticky")
	covUnlinkOk     = cov.Point("fsspec/unlink/ok")

	covSymlinkExists = cov.Point("fsspec/symlink/exists")
	covSymlinkErr    = cov.Point("fsspec/symlink/resolve_error")
	covSymlinkEmpty  = cov.Point("fsspec/symlink/empty_target")
	covSymlinkPerm   = cov.Point("fsspec/symlink/perm")
	covSymlinkOk     = cov.Point("fsspec/symlink/ok")

	covReadlinkErr  = cov.Point("fsspec/readlink/resolve_error")
	covReadlinkKind = cov.Point("fsspec/readlink/not_symlink")
	covReadlinkOk   = cov.Point("fsspec/readlink/ok")
)

// linkFollowsSrc reports whether link follows a symlink source on this
// platform. POSIX makes it implementation-defined; Linux does not follow
// (hard links to symlinks are created), OS X follows (§7.3.2).
func linkFollowsSrc(c *Ctx) pathres.Follow {
	if c.isOSX() {
		return pathres.FollowLast
	}
	return pathres.NoFollowLast
}

// LinkSpec gives the behaviour of link(src, dst).
func LinkSpec(c *Ctx, cmd types.Link) Result {
	src := c.Resolve(cmd.Src, linkFollowsSrc(c))
	dst := c.Resolve(cmd.Dst, pathres.NoFollowLast)

	errs := types.NewErrnoSet()
	var srcFile state.FileRef
	srcOk := false
	switch r := src.(type) {
	case pathres.RNError:
		cov.Hit(covLinkSrcErr)
		errs.Add(r.Err)
	case pathres.RNNone:
		cov.Hit(covLinkSrcErr)
		errs.Add(types.ENOENT)
	case pathres.RNDir:
		cov.Hit(covLinkSrcDir)
		// Hard links to directories: POSIX says EPERM; Linux EPERM; OS X
		// allows them on HFS+ in principle but the envelope keeps EPERM.
		errs.Add(types.EPERM)
	case pathres.RNFile:
		if r.TrailingSlash {
			cov.Hit(covLinkTrailing)
			errs.Add(types.ENOTDIR)
			if c.isLinux() {
				errs.Add(types.EEXIST, types.ENOENT)
			}
		}
		if r.IsSymlink {
			cov.Hit(covLinkSymlink)
			if c.isPOSIX() {
				// Implementation-defined whether the link is made to the
				// symlink or its target: a special state.
				return UndefinedResult()
			}
		}
		srcFile = r.File
		srcOk = true
	}

	var dstParent state.DirRef
	var dstName string
	dstOk := false
	switch r := dst.(type) {
	case pathres.RNError:
		cov.Hit(covLinkDstErr)
		errs.Add(r.Err)
	case pathres.RNDir:
		cov.Hit(covLinkExists)
		errs.Add(types.EEXIST)
	case pathres.RNFile:
		cov.Hit(covLinkExists)
		errs.Add(types.EEXIST)
		if r.TrailingSlash {
			cov.Hit(covLinkTrailing)
			// Paper §7.3.2: on Linux, link /dir/ /f.txt/ returns EEXIST,
			// which POSIX does not allow (POSIX: ENOTDIR).
			errs.Add(types.ENOTDIR)
		}
	case pathres.RNNone:
		if r.TrailingSlash {
			cov.Hit(covLinkTrailing)
			errs.Add(types.ENOENT, types.ENOTDIR)
		}
		dstParent, dstName, dstOk = r.Parent, r.Name, true
	}

	if dstOk {
		pe := Par(
			when(!c.dirAccess(dstParent, types.AccessWrite), types.EACCES),
			when(!c.dirAccess(dstParent, types.AccessExec), types.EACCES),
			when(c.parentGone(dstParent), types.ENOENT),
		)
		if len(pe) > 0 {
			cov.Hit(covLinkPerm)
		}
		errs.Union(pe)
	}
	if len(errs) > 0 {
		return Result{Errors: errs}
	}
	if !srcOk || !dstOk {
		return ErrResult(types.ENOENT)
	}
	cov.Hit(covLinkOk)
	f := srcFile
	p, n := dstParent, dstName
	return OkResult(types.RvNone{}, func(h *state.Heap) {
		h.LinkFile(p, n, f)
	})
}

// UnlinkSpec gives the behaviour of unlink(path).
func UnlinkSpec(c *Ctx, cmd types.Unlink) Result {
	rn := c.Resolve(cmd.Path, pathres.NoFollowLast)
	switch r := rn.(type) {
	case pathres.RNError:
		cov.Hit(covUnlinkErr)
		return ErrResult(r.Err)
	case pathres.RNNone:
		cov.Hit(covUnlinkNone)
		return ErrResult(types.ENOENT)
	case pathres.RNDir:
		cov.Hit(covUnlinkDir)
		// unlink of a directory: POSIX and OS X give EPERM; Linux follows
		// the LSB and gives EISDIR (§7.3.2). Each variant pins its own
		// value so the checker can flag the other platform's convention.
		switch {
		case c.isLinux():
			return ErrResult(types.EISDIR)
		case c.isPOSIX():
			return ErrResult(types.EPERM, types.EISDIR)
		default:
			return ErrResult(types.EPERM)
		}
	case pathres.RNFile:
		errs := types.NewErrnoSet()
		if r.TrailingSlash {
			errs.Add(types.ENOTDIR)
		}
		fileObj := c.H.File(r.File)
		pe := Par(
			when(!c.dirAccess(r.Parent, types.AccessWrite), types.EACCES),
			when(!c.dirAccess(r.Parent, types.AccessExec), types.EACCES),
		)
		if len(pe) > 0 {
			cov.Hit(covUnlinkPerm)
		}
		errs.Union(pe)
		if fileObj != nil && c.stickyDenies(r.Parent, fileObj.Uid) {
			cov.Hit(covUnlinkSticky)
			errs.Add(types.EACCES, types.EPERM)
		}
		if len(errs) > 0 {
			return Result{Errors: errs}
		}
		cov.Hit(covUnlinkOk)
		p, n := r.Parent, r.Name
		return OkResult(types.RvNone{}, func(h *state.Heap) {
			h.UnlinkFile(p, n)
		})
	}
	panic("fsspec: unreachable unlink result")
}

// SymlinkSpec gives the behaviour of symlink(target, linkpath). The target
// is not resolved; dangling symlinks are created freely.
func SymlinkSpec(c *Ctx, cmd types.Symlink) Result {
	if cmd.Target == "" {
		cov.Hit(covSymlinkEmpty)
		return ErrResult(types.ENOENT)
	}
	rn := c.Resolve(cmd.Linkpath, pathres.NoFollowLast)
	switch r := rn.(type) {
	case pathres.RNError:
		cov.Hit(covSymlinkErr)
		return ErrResult(r.Err)
	case pathres.RNDir:
		cov.Hit(covSymlinkExists)
		return ErrResult(types.EEXIST)
	case pathres.RNFile:
		cov.Hit(covSymlinkExists)
		return ErrResult(types.EEXIST)
	case pathres.RNNone:
		errs := types.NewErrnoSet()
		if r.TrailingSlash {
			errs.Add(types.ENOENT, types.ENOTDIR)
		}
		pe := Par(
			when(!c.dirAccess(r.Parent, types.AccessWrite), types.EACCES),
			when(!c.dirAccess(r.Parent, types.AccessExec), types.EACCES),
			when(c.parentGone(r.Parent), types.ENOENT),
		)
		if len(pe) > 0 {
			cov.Hit(covSymlinkPerm)
		}
		errs.Union(pe)
		if len(errs) > 0 {
			return Result{Errors: errs}
		}
		cov.Hit(covSymlinkOk)
		p, n, tgt := r.Parent, r.Name, cmd.Target
		uid, gid := c.Euid, c.Egid
		perm := symlinkDefaultPerm(c)
		return OkResult(types.RvNone{}, func(h *state.Heap) {
			f := h.AllocSymlink(tgt, perm, uid, gid)
			h.LinkFile(p, n, f)
		})
	}
	panic("fsspec: unreachable symlink result")
}

// symlinkDefaultPerm gives the platform's default symlink permission —
// implementation-defined per POSIX (§7.2 lists it among the divergences).
func symlinkDefaultPerm(c *Ctx) types.Perm {
	switch c.Spec.Platform {
	case types.PlatformOSX, types.PlatformFreeBSD:
		return 0o755 &^ c.Umask // BSDs apply the umask to symlinks
	default:
		return 0o777 // Linux: symlink modes are always 0777
	}
}

// ReadlinkSpec gives the behaviour of readlink(path). A trailing slash
// forces the symlink to be followed: readlink("s/") is EINVAL when s leads
// to a directory and ENOTDIR when it leads to a file (observed on Linux;
// the OS X symlink-chain quirk of §7.3.2 deviates and is flagged).
func ReadlinkSpec(c *Ctx, cmd types.Readlink) Result {
	follow := pathres.NoFollowLast
	if hasTrailingSlash(cmd.Path) {
		follow = pathres.FollowLast
	}
	rn := c.Resolve(cmd.Path, follow)
	switch r := rn.(type) {
	case pathres.RNError:
		cov.Hit(covReadlinkErr)
		return ErrResult(r.Err)
	case pathres.RNNone:
		cov.Hit(covReadlinkErr)
		return ErrResult(types.ENOENT)
	case pathres.RNDir:
		cov.Hit(covReadlinkKind)
		return ErrResult(types.EINVAL)
	case pathres.RNFile:
		f := c.H.File(r.File)
		if r.TrailingSlash && (f == nil || !f.IsSymlink) {
			cov.Hit(covReadlinkKind)
			return ErrResult(types.ENOTDIR)
		}
		if f == nil || !f.IsSymlink {
			cov.Hit(covReadlinkKind)
			return ErrResult(types.EINVAL)
		}
		cov.Hit(covReadlinkOk)
		data := append([]byte(nil), f.Bytes...)
		return OkResult(types.RvBytes{Data: data}, nil)
	}
	panic("fsspec: unreachable readlink result")
}
