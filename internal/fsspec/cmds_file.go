package fsspec

import (
	"repro/internal/cov"
	"repro/internal/pathres"
	"repro/internal/state"
	"repro/internal/types"
)

var (
	covTruncErr    = cov.Point("fsspec/truncate/resolve_error")
	covTruncDir    = cov.Point("fsspec/truncate/is_dir")
	covTruncNeg    = cov.Point("fsspec/truncate/negative")
	covTruncPerm   = cov.Point("fsspec/truncate/perm")
	covTruncOk     = cov.Point("fsspec/truncate/ok")
	covStatErr     = cov.Point("fsspec/stat/resolve_error")
	covStatOk      = cov.Point("fsspec/stat/ok")
	covLstatOk     = cov.Point("fsspec/lstat/ok")
	covChmodErr    = cov.Point("fsspec/chmod/resolve_error")
	covChmodPerm   = cov.Point("fsspec/chmod/not_owner")
	covChmodOk     = cov.Point("fsspec/chmod/ok")
	covChownPerm   = cov.Point("fsspec/chown/not_permitted")
	covChownOk     = cov.Point("fsspec/chown/ok")
	covChdirErr    = cov.Point("fsspec/chdir/resolve_error")
	covChdirNotDir = cov.Point("fsspec/chdir/not_dir")
	covChdirPerm   = cov.Point("fsspec/chdir/perm")
	covChdirOk     = cov.Point("fsspec/chdir/ok")
)

// TruncateSpec gives the behaviour of truncate(path, len).
func TruncateSpec(c *Ctx, cmd types.Truncate) Result {
	if cmd.Len < 0 {
		cov.Hit(covTruncNeg)
		return ErrResult(types.EINVAL)
	}
	rn := c.Resolve(cmd.Path, pathres.FollowLast)
	switch r := rn.(type) {
	case pathres.RNError:
		cov.Hit(covTruncErr)
		return ErrResult(r.Err)
	case pathres.RNNone:
		cov.Hit(covTruncErr)
		return ErrResult(types.ENOENT)
	case pathres.RNDir:
		cov.Hit(covTruncDir)
		return ErrResult(types.EISDIR)
	case pathres.RNFile:
		errs := types.NewErrnoSet()
		if r.TrailingSlash {
			errs.Add(types.ENOTDIR)
		}
		if !c.fileAccess(r.File, types.AccessWrite) {
			cov.Hit(covTruncPerm)
			errs.Add(types.EACCES)
		}
		if len(errs) > 0 {
			return Result{Errors: errs}
		}
		cov.Hit(covTruncOk)
		f, n := r.File, cmd.Len
		return OkResult(types.RvNone{}, func(h *state.Heap) {
			ResizeFile(h, f, n)
		})
	}
	panic("fsspec: unreachable truncate result")
}

// ResizeFile grows (zero-filling) or shrinks a file to n bytes. Shared with
// the OS layer's ftruncate-on-open (O_TRUNC) and write paths.
func ResizeFile(h *state.Heap, f state.FileRef, n int64) {
	fl := h.File(f)
	if fl == nil {
		return
	}
	cur := int64(len(fl.Bytes))
	if n == cur {
		return
	}
	fl = h.MutFile(f)
	switch {
	case n < cur:
		fl.Bytes = fl.Bytes[:n]
	case n > cur:
		fl.Bytes = append(fl.Bytes, make([]byte, n-cur)...)
	}
}

// StatsOfFile builds the Stats observation for a file object.
func StatsOfFile(h *state.Heap, f state.FileRef) types.Stats {
	fl := h.File(f)
	kind := types.KindFile
	if fl.IsSymlink {
		kind = types.KindSymlink
	}
	return types.Stats{
		Kind:  kind,
		Perm:  fl.Perm,
		Size:  int64(len(fl.Bytes)),
		Nlink: fl.Nlink,
		Uid:   fl.Uid,
		Gid:   fl.Gid,
	}
}

// StatsOfDir builds the Stats observation for a directory. Directory sizes
// are implementation-defined, so both the executor and the model normalise
// st_size to 0 for directories; st_nlink follows the POSIX 2+subdirs
// convention (which Btrfs famously does not maintain — §7.3.2).
func StatsOfDir(h *state.Heap, d state.DirRef) types.Stats {
	dir := h.Dir(d)
	return types.Stats{
		Kind:  types.KindDir,
		Perm:  dir.Perm,
		Size:  0,
		Nlink: h.DirLinkCount(d),
		Uid:   dir.Uid,
		Gid:   dir.Gid,
	}
}

// StatSpec gives the behaviour of stat(path) (following symlinks).
func StatSpec(c *Ctx, cmd types.Stat) Result {
	rn := c.Resolve(cmd.Path, pathres.FollowLast)
	return statCommon(c, rn, covStatOk)
}

// LstatSpec gives the behaviour of lstat(path) (not following the last
// symlink). A trailing slash forces following even for lstat: on Linux,
// lstat("s/") where s → dir returns the directory's stats (observed).
func LstatSpec(c *Ctx, cmd types.Lstat) Result {
	follow := pathres.NoFollowLast
	if hasTrailingSlash(cmd.Path) {
		follow = pathres.FollowLast
	}
	rn := c.Resolve(cmd.Path, follow)
	return statCommon(c, rn, covLstatOk)
}

// hasTrailingSlash reports a semantically significant trailing slash.
func hasTrailingSlash(p string) bool {
	return len(p) > 0 && p[len(p)-1] == '/' && !allSlashes(p)
}

func statCommon(c *Ctx, rn pathres.ResName, okPoint *uint64) Result {
	switch r := rn.(type) {
	case pathres.RNError:
		cov.Hit(covStatErr)
		return ErrResult(r.Err)
	case pathres.RNNone:
		cov.Hit(covStatErr)
		return ErrResult(types.ENOENT)
	case pathres.RNDir:
		cov.Hit(okPoint)
		return OkResult(types.RvStats{Stats: StatsOfDir(c.H, r.Dir)}, nil)
	case pathres.RNFile:
		if r.TrailingSlash && !r.IsSymlink {
			cov.Hit(covStatErr)
			return ErrResult(types.ENOTDIR)
		}
		cov.Hit(okPoint)
		return OkResult(types.RvStats{Stats: StatsOfFile(c.H, r.File)}, nil)
	}
	panic("fsspec: unreachable stat result")
}

// ChmodSpec gives the behaviour of chmod(path, perm).
func ChmodSpec(c *Ctx, cmd types.Chmod) Result {
	rn := c.Resolve(cmd.Path, pathres.FollowLast)
	switch r := rn.(type) {
	case pathres.RNError:
		cov.Hit(covChmodErr)
		return ErrResult(r.Err)
	case pathres.RNNone:
		cov.Hit(covChmodErr)
		return ErrResult(types.ENOENT)
	case pathres.RNDir:
		d := c.H.Dir(r.Dir)
		if c.Spec.Permissions && c.Euid != types.RootUid && c.Euid != d.Uid {
			cov.Hit(covChmodPerm)
			return ErrResult(types.EPERM)
		}
		cov.Hit(covChmodOk)
		dr, p := r.Dir, cmd.Perm&types.PermMask
		return OkResult(types.RvNone{}, func(h *state.Heap) {
			if dd := h.MutDir(dr); dd != nil {
				dd.Perm = p
			}
		})
	case pathres.RNFile:
		if r.TrailingSlash && !r.IsSymlink {
			cov.Hit(covChmodErr)
			return ErrResult(types.ENOTDIR)
		}
		f := c.H.File(r.File)
		if c.Spec.Permissions && c.Euid != types.RootUid && c.Euid != f.Uid {
			cov.Hit(covChmodPerm)
			return ErrResult(types.EPERM)
		}
		cov.Hit(covChmodOk)
		fr, p := r.File, cmd.Perm&types.PermMask
		return OkResult(types.RvNone{}, func(h *state.Heap) {
			if ff := h.MutFile(fr); ff != nil {
				ff.Perm = p
			}
		})
	}
	panic("fsspec: unreachable chmod result")
}

// ChownSpec gives the behaviour of chown(path, uid, gid). The model keeps
// the conservative envelope: only root may change ownership arbitrarily; an
// owner may change the group to one of their groups.
func ChownSpec(c *Ctx, cmd types.Chown) Result {
	rn := c.Resolve(cmd.Path, pathres.FollowLast)
	var curUid types.Uid
	var apply func(h *state.Heap)
	switch r := rn.(type) {
	case pathres.RNError:
		return ErrResult(r.Err)
	case pathres.RNNone:
		return ErrResult(types.ENOENT)
	case pathres.RNDir:
		curUid = c.H.Dir(r.Dir).Uid
		dr := r.Dir
		apply = func(h *state.Heap) {
			if dd := h.MutDir(dr); dd != nil {
				dd.Uid, dd.Gid = cmd.Uid, cmd.Gid
			}
		}
	case pathres.RNFile:
		if r.TrailingSlash && !r.IsSymlink {
			return ErrResult(types.ENOTDIR)
		}
		curUid = c.H.File(r.File).Uid
		fr := r.File
		apply = func(h *state.Heap) {
			if ff := h.MutFile(fr); ff != nil {
				ff.Uid, ff.Gid = cmd.Uid, cmd.Gid
			}
		}
	}
	if c.Spec.Permissions && c.Euid != types.RootUid {
		ownerGroupChange := c.Euid == curUid && cmd.Uid == curUid &&
			(cmd.Gid == c.Egid || (c.InGroup != nil && c.InGroup(c.Euid, cmd.Gid)))
		if !ownerGroupChange {
			cov.Hit(covChownPerm)
			return ErrResult(types.EPERM)
		}
	}
	cov.Hit(covChownOk)
	return OkResult(types.RvNone{}, apply)
}

// ChdirSpec resolves and checks chdir(path); the actual cwd mutation lives
// in the OS layer (the cwd is per-process state).
func ChdirSpec(c *Ctx, cmd types.Chdir) (state.DirRef, Result) {
	rn := c.Resolve(cmd.Path, pathres.FollowLast)
	switch r := rn.(type) {
	case pathres.RNError:
		cov.Hit(covChdirErr)
		return 0, ErrResult(r.Err)
	case pathres.RNNone:
		cov.Hit(covChdirErr)
		return 0, ErrResult(types.ENOENT)
	case pathres.RNFile:
		cov.Hit(covChdirNotDir)
		return 0, ErrResult(types.ENOTDIR)
	case pathres.RNDir:
		if !c.dirAccess(r.Dir, types.AccessExec) {
			cov.Hit(covChdirPerm)
			return 0, ErrResult(types.EACCES)
		}
		cov.Hit(covChdirOk)
		return r.Dir, OkResult(types.RvNone{}, nil)
	}
	panic("fsspec: unreachable chdir result")
}
