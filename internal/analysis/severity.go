package analysis

import (
	"strings"

	"repro/internal/checker"
)

// Severity classifies deviations by increasing severity, following the
// structure of §7.3: test-harness artifacts, POSIX-specification issues
// and violations, platform conventions, defects likely to cause
// application failure, and defects causing system halt / data loss /
// resource exhaustion.
type Severity int

// Severity levels, least to most severe (§7.3.1–§7.3.5).
const (
	SeverityJailArtifact Severity = iota // not a real FS deviation (§7.2's 9 failures)
	SeveritySpecIssue                    // looseness/ambiguity in POSIX itself
	SeverityViolation                    // POSIX specification violation
	SeverityConvention                   // platform convention divergence
	SeverityAppFailure                   // likely to cause application failure
	SeverityCritical                     // system halt, data loss, resource exhaustion
)

// String names the severity level.
func (s Severity) String() string {
	switch s {
	case SeverityJailArtifact:
		return "jail_artifact"
	case SeveritySpecIssue:
		return "spec_issue"
	case SeverityViolation:
		return "posix_violation"
	case SeverityConvention:
		return "platform_convention"
	case SeverityAppFailure:
		return "application_failure"
	case SeverityCritical:
		return "critical"
	}
	return "unknown"
}

// Classify assigns a severity to a rejected trace by inspecting the test
// name and the observed/allowed values — the automated counterpart of the
// paper's manual classification.
func Classify(test string, r checker.Result) Severity {
	observed := make([]string, 0, len(r.Errors))
	for _, e := range r.Errors {
		observed = append(observed, e.Observed)
	}
	obs := strings.Join(observed, " ")

	switch {
	// Hangs (EINTR stands for the watchdog-observed spin, Fig 8) and
	// storage exhaustion on an empty volume are critical.
	case strings.Contains(obs, "EINTR"):
		return SeverityCritical
	case strings.Contains(test, "posixovl") || strings.Contains(obs, "ENOSPC"):
		return SeverityCritical

	// The jail artifact: rmdir/rename involving the pseudo-root (as source
	// or destination) observes the backing directory rather than a real
	// root — the paper's §7.2 chroot-jail failure class.
	case (strings.HasPrefix(test, "rmdir___") || strings.HasPrefix(test, "rename___")) &&
		strings.Contains(test, "root"):
		return SeverityJailArtifact

	// Signals observed on what should be simple error returns (the OS X
	// pwrite underflow surfaces as EFBIG/SIGXFSZ).
	case strings.Contains(obs, "EFBIG"):
		return SeverityAppFailure

	// Invariant violations: a failing call changed the state (detected as
	// a wrong observation on a later stat after an allowed error).
	case strings.Contains(test, "invariant"):
		return SeverityAppFailure

	// chmod wholly unsupported breaks applications.
	case strings.Contains(obs, "EOPNOTSUPP"):
		return SeverityAppFailure

	// O_APPEND misbehaviour corrupts data.
	case strings.Contains(test, "o_append"):
		return SeverityCritical

	// Permission bypasses and ownership surprises.
	case strings.Contains(test, "sshfs") || strings.Contains(test, "perm___"):
		return SeverityAppFailure

	// Wrong-but-harmless error codes and stat details are POSIX
	// violations or conventions depending on the platform's intent.
	case strings.Contains(obs, "EISDIR") || strings.Contains(obs, "EPERM"):
		return SeverityConvention

	default:
		return SeverityViolation
	}
}
