// Package analysis implements the result-processing side of SibylFS (§2,
// §7): per-run summaries, multi-configuration merging with differences
// highlighted, severity classification of deviations following the
// taxonomy of §7.3, and HTML rendering of checked traces and indexes.
// MergeCtx is the cancellable form of the survey merge, for callers whose
// deadline may expire mid-aggregation.
package analysis
