package analysis

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/checker"
	"repro/internal/telemetry"
	"repro/internal/testgen"
	"repro/internal/trace"
)

// RunSummary aggregates one configuration's check results.
type RunSummary struct {
	Config    string // configuration name, e.g. "ext4 vs linux"
	Total     int
	Accepted  int
	Rejected  int
	ByGroup   map[string]*GroupSummary
	Deviating []Deviation
	// CovHit/CovTotal report model coverage-point figures for the run
	// (§7.2); zero CovTotal means coverage was not measured.
	CovHit   int
	CovTotal int
	// State-set statistics — how hard the oracle worked (§7.1's MaxStates
	// metric, which concurrent traces finally stress). PeakStates is the
	// largest tracked set across all traces, MeanStates the step-weighted
	// mean set size, TauExpansions the total number of τ-successors
	// explored while closing over internal transitions.
	PeakStates    int
	MeanStates    float64
	TauExpansions int
	// CapHits counts traces whose tracked state set hit the checker's
	// MaxStateSet cap and was truncated: their verdicts are best-effort
	// (see checker.Result.StateSetCapHit) and deserve a second look with a
	// larger cap.
	CapHits int
}

// GroupSummary is the per-command-group breakdown.
type GroupSummary struct {
	Group    string
	Total    int
	Rejected int
}

// Deviation is one non-conformant trace with its classified severity.
type Deviation struct {
	Test     string
	Group    string
	Severity Severity
	Errors   []checker.StepError
}

// Summarise builds a RunSummary from paired traces and results.
func Summarise(config string, traces []*trace.Trace, results []checker.Result) *RunSummary {
	defer telemetry.Default.Histogram("analysis.summarise_ns").ObserveSince(time.Now())
	s := &RunSummary{Config: config, ByGroup: make(map[string]*GroupSummary)}
	var sumStates, steps int
	for i, r := range results {
		name := r.Name
		if name == "" && i < len(traces) {
			name = traces[i].Name
		}
		if r.MaxStates > s.PeakStates {
			s.PeakStates = r.MaxStates
		}
		s.TauExpansions += r.TauExpansions
		if r.StateSetCapHit {
			s.CapHits++
		}
		sumStates += r.SumStates
		steps += r.Steps
		g := testgen.GroupOf(name)
		gs, ok := s.ByGroup[g]
		if !ok {
			gs = &GroupSummary{Group: g}
			s.ByGroup[g] = gs
		}
		s.Total++
		gs.Total++
		if r.Accepted {
			s.Accepted++
			continue
		}
		s.Rejected++
		gs.Rejected++
		s.Deviating = append(s.Deviating, Deviation{
			Test:     name,
			Group:    g,
			Severity: Classify(name, r),
			Errors:   r.Errors,
		})
	}
	if steps > 0 {
		s.MeanStates = float64(sumStates) / float64(steps)
	}
	sort.Slice(s.Deviating, func(i, j int) bool {
		if s.Deviating[i].Severity != s.Deviating[j].Severity {
			return s.Deviating[i].Severity > s.Deviating[j].Severity
		}
		return s.Deviating[i].Test < s.Deviating[j].Test
	})
	return s
}

// Groups returns group summaries sorted by name.
func (s *RunSummary) Groups() []*GroupSummary {
	out := make([]*GroupSummary, 0, len(s.ByGroup))
	for _, g := range s.ByGroup {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// String renders a compact text report.
func (s *RunSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d/%d traces accepted (%d deviations)\n",
		s.Config, s.Accepted, s.Total, s.Rejected)
	for _, g := range s.Groups() {
		if g.Rejected > 0 {
			fmt.Fprintf(&b, "  %-12s %d/%d rejected\n", g.Group, g.Rejected, g.Total)
		}
	}
	counts := map[Severity]int{}
	for _, d := range s.Deviating {
		counts[d.Severity]++
	}
	for sev := SeverityCritical; sev >= SeverityJailArtifact; sev-- {
		if counts[sev] > 0 {
			fmt.Fprintf(&b, "  severity %-22s %d\n", sev, counts[sev])
		}
	}
	if s.CovTotal > 0 {
		fmt.Fprintf(&b, "  model coverage %d/%d points (%.1f%%)\n",
			s.CovHit, s.CovTotal, 100*float64(s.CovHit)/float64(s.CovTotal))
	}
	if s.PeakStates > 0 {
		fmt.Fprintf(&b, "  oracle state-set: peak %d states, mean %.2f, %d τ-expansions\n",
			s.PeakStates, s.MeanStates, s.TauExpansions)
	}
	if s.CapHits > 0 {
		fmt.Fprintf(&b, "  WARNING: %d trace(s) hit the state-set cap; their verdicts are best-effort\n",
			s.CapHits)
	}
	return b.String()
}

// Merged combines summaries from many configurations, highlighting tests
// that deviate on some configurations but not others (the paper's merged
// test runs, §7).
type Merged struct {
	Configs []string
	// PerTest maps test name → set of configs where it deviated.
	PerTest map[string]map[string]bool
}

// Merge combines run summaries.
func Merge(runs []*RunSummary) *Merged {
	m, _ := MergeCtx(context.Background(), runs)
	return m
}

// MergeCtx is Merge with cooperative cancellation, consulted between
// runs: merging a full >40-configuration survey walks every deviating
// test of every run, which is worth interrupting when the caller's
// deadline has already passed. On cancellation the partial merge is
// returned with ctx.Err().
func MergeCtx(ctx context.Context, runs []*RunSummary) (*Merged, error) {
	defer telemetry.Default.Histogram("analysis.merge_ns").ObserveSince(time.Now())
	m := &Merged{PerTest: make(map[string]map[string]bool)}
	for _, r := range runs {
		if err := ctx.Err(); err != nil {
			sort.Strings(m.Configs)
			return m, err
		}
		m.Configs = append(m.Configs, r.Config)
		for _, d := range r.Deviating {
			set, ok := m.PerTest[d.Test]
			if !ok {
				set = make(map[string]bool)
				m.PerTest[d.Test] = set
			}
			set[r.Config] = true
		}
	}
	sort.Strings(m.Configs)
	return m, nil
}

// Distinguishing returns tests that deviate on at least one but not all
// configurations — the behavioural differences between file systems that
// SibylFS is designed to surface.
func (m *Merged) Distinguishing() []string {
	var out []string
	for test, set := range m.PerTest {
		if len(set) > 0 && len(set) < len(m.Configs) {
			out = append(out, test)
		}
	}
	sort.Strings(out)
	return out
}

// DeviationsFor lists the configs on which test deviated.
func (m *Merged) DeviationsFor(test string) []string {
	var out []string
	for cfg := range m.PerTest[test] {
		out = append(out, cfg)
	}
	sort.Strings(out)
	return out
}
