package analysis

import (
	"strings"
	"testing"

	"repro/internal/checker"
	"repro/internal/trace"
)

func mkResult(name string, accepted bool, observed string, allowed ...string) checker.Result {
	r := checker.Result{Name: name, Accepted: accepted}
	if !accepted {
		r.Errors = []checker.StepError{{Line: 1, Observed: observed, Allowed: allowed}}
	}
	return r
}

func TestSummarise(t *testing.T) {
	results := []checker.Result{
		mkResult("rename___a___b", true, ""),
		mkResult("rename___c___d", false, "EPERM", "EEXIST"),
		mkResult("open___x", true, ""),
		mkResult("survey___o_append_pwrite", false, `RV_bytes("XY")`, "RV_bytes(...)"),
	}
	s := Summarise("cfg", nil, results)
	if s.Total != 4 || s.Accepted != 2 || s.Rejected != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.ByGroup["rename"].Rejected != 1 || s.ByGroup["rename"].Total != 2 {
		t.Errorf("rename group = %+v", s.ByGroup["rename"])
	}
	if len(s.Deviating) != 2 {
		t.Fatalf("deviations = %d", len(s.Deviating))
	}
	// Sorted most severe first: the O_APPEND data-loss case is critical.
	if s.Deviating[0].Severity != SeverityCritical {
		t.Errorf("first deviation severity = %v", s.Deviating[0].Severity)
	}
	text := s.String()
	if !strings.Contains(text, "2/4 traces accepted") {
		t.Errorf("report text: %s", text)
	}
}

func TestSummariseStateSetStats(t *testing.T) {
	results := []checker.Result{
		{Name: "conc___a", Accepted: true, Steps: 10, SumStates: 40, MaxStates: 12, TauExpansions: 30},
		{Name: "conc___b", Accepted: true, Steps: 10, SumStates: 10, MaxStates: 3, TauExpansions: 5},
	}
	s := Summarise("conc", nil, results)
	if s.PeakStates != 12 {
		t.Errorf("PeakStates = %d", s.PeakStates)
	}
	if s.MeanStates != 2.5 { // (40+10)/(10+10)
		t.Errorf("MeanStates = %v", s.MeanStates)
	}
	if s.TauExpansions != 35 {
		t.Errorf("TauExpansions = %d", s.TauExpansions)
	}
	text := s.String()
	if !strings.Contains(text, "oracle state-set: peak 12 states, mean 2.50, 35 τ-expansions") {
		t.Errorf("report text missing state-set line:\n%s", text)
	}
	html, err := RenderIndexHTML(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "peak 12 states") {
		t.Errorf("index html missing state-set stats")
	}

	// A run with no state tracking (e.g. loaded legacy results) stays
	// silent rather than printing zeros.
	empty := Summarise("empty", nil, []checker.Result{{Name: "t", Accepted: true}})
	if strings.Contains(empty.String(), "oracle state-set") {
		t.Error("state-set line printed for an unmeasured run")
	}
}

func TestClassifySeverities(t *testing.T) {
	cases := []struct {
		test     string
		observed string
		want     Severity
	}{
		{"survey___fig8_disconnected_create", "EINTR", SeverityCritical},
		{"survey___posixovl_rename_leak", "RV_stats{...}", SeverityCritical},
		{"survey___o_append_pwrite", "RV_bytes(...)", SeverityCritical},
		{"survey___pwrite_negative_offset", "EFBIG", SeverityAppFailure},
		{"survey___chmod_unsupported", "EOPNOTSUPP", SeverityAppFailure},
		{"rmdir___root_3slash", "ENOTEMPTY", SeverityJailArtifact},
		{"unlink___dir_empty", "EISDIR", SeverityConvention},
		{"stat___file", "RV_stats{...}", SeverityViolation},
	}
	for _, c := range cases {
		r := mkResult(c.test, false, c.observed)
		if got := Classify(c.test, r); got != c.want {
			t.Errorf("Classify(%s, %s) = %v, want %v", c.test, c.observed, got, c.want)
		}
	}
}

func TestSeverityOrderingAndNames(t *testing.T) {
	order := []Severity{
		SeverityJailArtifact, SeveritySpecIssue, SeverityViolation,
		SeverityConvention, SeverityAppFailure, SeverityCritical,
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatal("severity ordering broken")
		}
	}
	for _, s := range order {
		if s.String() == "unknown" {
			t.Errorf("severity %d has no name", s)
		}
	}
}

func TestMergeDistinguishing(t *testing.T) {
	a := Summarise("fsA", nil, []checker.Result{
		mkResult("t1", false, "EPERM"),
		mkResult("t2", true, ""),
		mkResult("t3", false, "EIO"),
	})
	b := Summarise("fsB", nil, []checker.Result{
		mkResult("t1", true, ""),
		mkResult("t2", true, ""),
		mkResult("t3", false, "EIO"),
	})
	m := Merge([]*RunSummary{a, b})
	diffs := m.Distinguishing()
	if len(diffs) != 1 || diffs[0] != "t1" {
		t.Fatalf("distinguishing = %v", diffs)
	}
	if devs := m.DeviationsFor("t1"); len(devs) != 1 || devs[0] != "fsA" {
		t.Errorf("DeviationsFor = %v", devs)
	}
	// t3 deviates everywhere: common behaviour, not distinguishing.
	if devs := m.DeviationsFor("t3"); len(devs) != 2 {
		t.Errorf("t3 deviations = %v", devs)
	}
}

func TestRenderIndexHTML(t *testing.T) {
	s := Summarise("ext4 vs linux", nil, []checker.Result{
		mkResult("rename___a___b", false, "EPERM", "EEXIST", "ENOTEMPTY"),
		mkResult("open___x", true, ""),
	})
	html, err := RenderIndexHTML(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<html>", "ext4 vs linux", "rename___a___b", "1 / 2 traces accepted"} {
		if !strings.Contains(html, want) {
			t.Errorf("index html missing %q", want)
		}
	}
}

func TestRenderTraceHTML(t *testing.T) {
	tr, err := trace.ParseTrace(`@type trace
1: mkdir "d" 0o755
1: RV_none
`)
	if err != nil {
		t.Fatal(err)
	}
	tr.Name = "demo"
	r := checker.Result{Name: "demo", Accepted: true}
	html, err := RenderTraceHTML(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "mkdir") || !strings.Contains(html, "demo") {
		t.Errorf("trace html: %s", html)
	}
}
