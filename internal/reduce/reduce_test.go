package reduce

import (
	"testing"

	"repro/internal/fsimpl"
	"repro/internal/trace"
	"repro/internal/types"
)

func linuxSpec() types.Spec { return types.DefaultSpec() }

func call(c types.Command) trace.Step {
	return trace.Step{Label: types.CallLabel{Pid: 1, Cmd: c}}
}

// buggyScript pads the chmod-EOPNOTSUPP deviation (HFS+ on Trusty) with
// irrelevant commands; reduction must strip the noise and keep a script
// that still deviates.
func buggyScript() *trace.Script {
	return &trace.Script{Name: "padded", Steps: []trace.Step{
		call(types.Mkdir{Path: "/noise1", Perm: 0o755}),
		call(types.Mkdir{Path: "/noise2", Perm: 0o755}),
		call(types.Symlink{Target: "noise1", Linkpath: "/sn"}),
		call(types.Stat{Path: "/noise2"}),
		call(types.Open{Path: "/t", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
		call(types.Close{FD: 3}),
		call(types.Chmod{Path: "/t", Perm: 0o600}), // the deviating call
		call(types.Unlink{Path: "/sn"}),
		call(types.Rmdir{Path: "/noise2"}),
	}}
}

func trustyHFS() fsimpl.Factory {
	for _, p := range fsimpl.SurveyProfiles() {
		if p.Name == "hfsplus_linux_trusty" {
			return fsimpl.MemFactory(p)
		}
	}
	panic("profile missing")
}

func TestDeviates(t *testing.T) {
	bad, err := Deviates(buggyScript(), trustyHFS(), linuxSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Fatal("padded script should deviate on the buggy profile")
	}
	good, err := Deviates(buggyScript(), fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")), linuxSpec())
	if err != nil {
		t.Fatal(err)
	}
	if good {
		t.Fatal("padded script should be clean on the conforming profile")
	}
}

func TestMinimizeStripsNoise(t *testing.T) {
	min, err := Minimize(buggyScript(), trustyHFS(), linuxSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Steps) >= len(buggyScript().Steps) {
		t.Fatalf("no reduction: %d steps", len(min.Steps))
	}
	// The result must still deviate ...
	bad, err := Deviates(min, trustyHFS(), linuxSpec())
	if err != nil || !bad {
		t.Fatalf("minimized script no longer deviates (err=%v)", err)
	}
	// ... and must still contain the chmod. With one-step granularity the
	// chmod alone deviates, so the minimum is exactly one step.
	if len(min.Steps) != 1 {
		t.Errorf("minimum = %d steps, want 1 (bare chmod)", len(min.Steps))
	}
	if c, ok := min.Steps[0].Label.(types.CallLabel); !ok || c.Cmd.Op() != "chmod" {
		t.Errorf("minimum kept %v", min.Steps[0].Label)
	}
}

func TestMinimizeLeavesCleanScriptsAlone(t *testing.T) {
	s := buggyScript()
	min, err := Minimize(s, fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")), linuxSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Steps) != len(s.Steps) {
		t.Error("clean script was modified")
	}
}

// TestMinimizeStatefulDependency: when the deviation needs earlier setup
// (the OpenZFS O_APPEND bug needs pre-existing content), reduction keeps
// the dependency chain.
func TestMinimizeStatefulDependency(t *testing.T) {
	var prof fsimpl.Profile
	for _, p := range fsimpl.SurveyProfiles() {
		if p.Name == "openzfs_0.6.3_trusty" {
			prof = p
		}
	}
	s := &trace.Script{Name: "append", Steps: []trace.Step{
		call(types.Mkdir{Path: "/unrelated", Perm: 0o755}),
		call(types.Open{Path: "/t", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}),
		call(types.Write{FD: 3, Data: []byte("precious"), Size: 8}),
		call(types.Close{FD: 3}),
		call(types.Open{Path: "/t", Flags: types.OWronly | types.OAppend}),
		call(types.Write{FD: 4, Data: []byte("XY"), Size: 2}),
		call(types.Close{FD: 4}),
		call(types.Open{Path: "/t", Flags: types.ORdonly}),
		call(types.Read{FD: 5, Size: 16}),
	}}
	min, err := Minimize(s, fsimpl.MemFactory(prof), linuxSpec())
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Deviates(min, fsimpl.MemFactory(prof), linuxSpec())
	if err != nil || !bad {
		t.Fatalf("minimized script no longer deviates")
	}
	// The unrelated mkdir must be gone; the write/append chain must stay.
	for _, st := range min.Steps {
		if c, ok := st.Label.(types.CallLabel); ok && c.Cmd.Op() == "mkdir" {
			t.Error("unrelated mkdir survived reduction")
		}
	}
	if len(min.Steps) >= len(s.Steps) {
		t.Errorf("no reduction: %d steps", len(min.Steps))
	}
}
