// Package reduce implements automatic test-case reduction, one of the
// §9 future-work items ("it could support automatic test case
// reduction"): given a script whose execution on some implementation
// deviates from the model, shrink the script to a minimal command
// sequence that still deviates — delta debugging over script steps.
package reduce
