package reduce

import (
	"context"

	"repro/internal/checker"
	"repro/internal/exec"
	"repro/internal/fsimpl"
	"repro/internal/trace"
	"repro/internal/types"
)

// Oracle reports whether a script still exhibits the behaviour being
// minimized (for spec deviations: executes the script and asks the checker).
// Callers may wrap extra policy around the check — the fuzzer's oracle runs
// under cov.Guard so minimization probes never pollute a concurrent
// coverage-attribution window.
type Oracle func(*trace.Script) (bool, error)

// Deviates executes the script against a fresh instance and reports
// whether the oracle rejects the resulting trace.
func Deviates(s *trace.Script, factory fsimpl.Factory, spec types.Spec) (bool, error) {
	tr, err := exec.Run(context.Background(), s, factory)
	if err != nil {
		return false, err
	}
	r := checker.New(spec).Check(tr)
	return !r.Accepted, nil
}

// Minimize shrinks a deviating script while the deviation persists,
// using one-at-a-time removal passes until a fixed point (ddmin's
// granularity-1 phase, which suffices for our linear scripts). The result
// still deviates; if the input does not deviate it is returned unchanged.
func Minimize(s *trace.Script, factory fsimpl.Factory, spec types.Spec) (*trace.Script, error) {
	return MinimizeWith(s, func(c *trace.Script) (bool, error) {
		return Deviates(c, factory, spec)
	})
}

// MinimizeWith is Minimize with an injected deviation oracle.
func MinimizeWith(s *trace.Script, deviates Oracle) (*trace.Script, error) {
	bad, err := deviates(s)
	if err != nil || !bad {
		return s, err
	}
	cur := s
	for {
		shrunk, err := removalPass(cur, deviates)
		if err != nil {
			return cur, err
		}
		if len(shrunk.Steps) == len(cur.Steps) {
			return cur, nil
		}
		cur = shrunk
	}
}

// removalPass tries dropping each step (and chunks of steps) once.
func removalPass(s *trace.Script, deviates Oracle) (*trace.Script, error) {
	// Coarse first: halves, quarters; then single steps.
	for _, chunk := range []int{len(s.Steps) / 2, len(s.Steps) / 4, 1} {
		if chunk < 1 {
			continue
		}
		i := 0
		for i < len(s.Steps) {
			end := i + chunk
			if end > len(s.Steps) {
				end = len(s.Steps)
			}
			cand := without(s, i, end)
			if len(cand.Steps) == 0 {
				i = end
				continue
			}
			bad, err := deviates(cand)
			if err != nil {
				return s, err
			}
			if bad {
				s = cand // keep the smaller script; retry same index
				continue
			}
			i = end
		}
	}
	return s, nil
}

func without(s *trace.Script, from, to int) *trace.Script {
	out := &trace.Script{Name: s.Name + "_min"}
	out.Steps = append(out.Steps, s.Steps[:from]...)
	out.Steps = append(out.Steps, s.Steps[to:]...)
	return out
}
