// Package reduce implements automatic test-case reduction, one of the
// §9 future-work items ("it could support automatic test case
// reduction"): given a script whose execution on some implementation
// deviates from the model, shrink the script to a minimal command
// sequence that still deviates — delta debugging over script steps.
package reduce

import (
	"repro/internal/checker"
	"repro/internal/exec"
	"repro/internal/fsimpl"
	"repro/internal/trace"
	"repro/internal/types"
)

// Deviates executes the script against a fresh instance and reports
// whether the oracle rejects the resulting trace.
func Deviates(s *trace.Script, factory fsimpl.Factory, spec types.Spec) (bool, error) {
	tr, err := exec.Run(s, factory)
	if err != nil {
		return false, err
	}
	r := checker.New(spec).Check(tr)
	return !r.Accepted, nil
}

// Minimize shrinks a deviating script while the deviation persists,
// using one-at-a-time removal passes until a fixed point (ddmin's
// granularity-1 phase, which suffices for our linear scripts). The result
// still deviates; if the input does not deviate it is returned unchanged.
func Minimize(s *trace.Script, factory fsimpl.Factory, spec types.Spec) (*trace.Script, error) {
	bad, err := Deviates(s, factory, spec)
	if err != nil || !bad {
		return s, err
	}
	cur := s
	for {
		shrunk, err := removalPass(cur, factory, spec)
		if err != nil {
			return cur, err
		}
		if len(shrunk.Steps) == len(cur.Steps) {
			return cur, nil
		}
		cur = shrunk
	}
}

// removalPass tries dropping each step (and chunks of steps) once.
func removalPass(s *trace.Script, factory fsimpl.Factory, spec types.Spec) (*trace.Script, error) {
	// Coarse first: halves, quarters; then single steps.
	for _, chunk := range []int{len(s.Steps) / 2, len(s.Steps) / 4, 1} {
		if chunk < 1 {
			continue
		}
		i := 0
		for i < len(s.Steps) {
			end := i + chunk
			if end > len(s.Steps) {
				end = len(s.Steps)
			}
			cand := without(s, i, end)
			if len(cand.Steps) == 0 {
				i = end
				continue
			}
			bad, err := Deviates(cand, factory, spec)
			if err != nil {
				return s, err
			}
			if bad {
				s = cand // keep the smaller script; retry same index
				continue
			}
			i = end
		}
	}
	return s, nil
}

func without(s *trace.Script, from, to int) *trace.Script {
	out := &trace.Script{Name: s.Name + "_min"}
	out.Steps = append(out.Steps, s.Steps[:from]...)
	out.Steps = append(out.Steps, s.Steps[to:]...)
	return out
}
