// Package exec is the test executor (§6.2): it drives a file system under
// test with the commands of a test script and records the observed trace.
// Where the paper forks interpreter processes into a chroot jail, this
// harness drives fsimpl.FS values in-process; each script execution gets a
// fresh, empty file system, and handle numbering is normalised so traces
// are directly comparable across implementations.
package exec
