// Package exec is the test executor (§6.2): it drives a file system under
// test with the commands of a test script and records the observed trace.
// Where the paper forks interpreter processes into a chroot jail, this
// harness drives fsimpl.FS values in-process; each script execution gets a
// fresh, empty file system, and handle numbering is normalised so traces
// are directly comparable across implementations.
//
// Execution is cancellable: every entry point takes a context.Context and
// checks it between steps (sequential), between per-process events or
// scheduler micro-steps (concurrent), and between scripts (the pools). A
// cancelled run returns ctx.Err() and no trace — a call already handed to
// the implementation completes first, since calls are not interruptible.
package exec
