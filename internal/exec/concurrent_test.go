package exec

import (
	"context"

	"testing"

	"repro/internal/fsimpl"
	"repro/internal/trace"
	"repro/internal/types"
)

// racyScript builds the canonical racy fixture: n processes racing mkdir
// and stat on one shared path plus a private child each.
func racyScript(n int) *trace.Script {
	s := &trace.Script{Name: "racy"}
	for p := 2; p <= n; p++ {
		s.Steps = append(s.Steps, trace.Step{Label: types.CreateLabel{Pid: types.Pid(p), Uid: 0, Gid: 0}})
	}
	for p := 1; p <= n; p++ {
		pid := types.Pid(p)
		s.Steps = append(s.Steps,
			trace.Step{Label: types.CallLabel{Pid: pid, Cmd: types.Mkdir{Path: "/r", Perm: 0o755}}},
			trace.Step{Label: types.CallLabel{Pid: pid, Cmd: types.Mkdir{Path: "/r/c" + itoa(p), Perm: 0o755}}},
			trace.Step{Label: types.CallLabel{Pid: pid, Cmd: types.Stat{Path: "/r"}}},
		)
	}
	for p := 2; p <= n; p++ {
		s.Steps = append(s.Steps, trace.Step{Label: types.DestroyLabel{Pid: types.Pid(p)}})
	}
	return s
}

func memFactory() fsimpl.Factory { return fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")) }

func TestConcurrentSeededDeterministic(t *testing.T) {
	s := racyScript(3)
	for _, seed := range []int64{1, 7, 12345} {
		a, err := RunConcurrent(context.Background(), s, memFactory(), ConcurrentOptions{Seeded: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunConcurrent(context.Background(), s, memFactory(), ConcurrentOptions{Seeded: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if a.Render() != b.Render() {
			t.Fatalf("seed %d: traces differ:\n%s\n---\n%s", seed, a.Render(), b.Render())
		}
	}
}

func TestConcurrentSeedsProduceDifferentInterleavings(t *testing.T) {
	s := racyScript(3)
	seen := make(map[string]bool)
	for seed := int64(1); seed <= 8; seed++ {
		tr, err := RunConcurrent(context.Background(), s, memFactory(), ConcurrentOptions{Seeded: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		seen[tr.Render()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("8 seeds produced %d distinct interleavings on a racy fixture", len(seen))
	}
}

// checkTraceShape verifies the structural invariants any concurrent trace
// must satisfy: per-process program order is preserved, every call is
// answered by exactly one return for that pid before its next call, calls
// appear only between the pid's create and destroy.
func checkTraceShape(t *testing.T, s *trace.Script, tr *trace.Trace) {
	t.Helper()
	wantCalls := make(map[types.Pid][]types.Command)
	for _, st := range s.Steps {
		if cl, ok := st.Label.(types.CallLabel); ok {
			wantCalls[cl.Pid] = append(wantCalls[cl.Pid], cl.Cmd)
		}
	}
	gotCalls := make(map[types.Pid][]types.Command)
	pending := make(map[types.Pid]bool)
	alive := map[types.Pid]bool{1: true}
	for _, st := range tr.Steps {
		switch lbl := st.Label.(type) {
		case types.CreateLabel:
			if alive[lbl.Pid] {
				t.Fatalf("line %d: create of live pid %d", st.Line, lbl.Pid)
			}
			alive[lbl.Pid] = true
		case types.DestroyLabel:
			if !alive[lbl.Pid] || pending[lbl.Pid] {
				t.Fatalf("line %d: destroy of pid %d (alive=%v pending=%v)", st.Line, lbl.Pid, alive[lbl.Pid], pending[lbl.Pid])
			}
			delete(alive, lbl.Pid)
		case types.CallLabel:
			if !alive[lbl.Pid] {
				t.Fatalf("line %d: call from dead pid %d", st.Line, lbl.Pid)
			}
			if pending[lbl.Pid] {
				t.Fatalf("line %d: pid %d issued a second call with one outstanding", st.Line, lbl.Pid)
			}
			pending[lbl.Pid] = true
			gotCalls[lbl.Pid] = append(gotCalls[lbl.Pid], lbl.Cmd)
		case types.ReturnLabel:
			if !pending[lbl.Pid] {
				t.Fatalf("line %d: return for pid %d with no outstanding call", st.Line, lbl.Pid)
			}
			pending[lbl.Pid] = false
		}
	}
	for pid, want := range wantCalls {
		got := gotCalls[pid]
		if len(got) != len(want) {
			t.Fatalf("pid %d: %d calls in trace, script has %d", pid, len(got), len(want))
		}
		for i := range want {
			if got[i].String() != want[i].String() {
				t.Fatalf("pid %d call %d: got %s, want %s (program order broken)", pid, i, got[i], want[i])
			}
		}
	}
}

func TestConcurrentSeededTraceWellFormed(t *testing.T) {
	s := racyScript(4)
	for seed := int64(1); seed <= 5; seed++ {
		tr, err := RunConcurrent(context.Background(), s, memFactory(), ConcurrentOptions{Seeded: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		checkTraceShape(t, s, tr)
	}
}

func TestConcurrentFreeTraceWellFormed(t *testing.T) {
	// The free-running mode is scheduler-dependent; repeat a few times so
	// the -race CI job gets real interleavings to chew on.
	s := racyScript(4)
	for i := 0; i < 10; i++ {
		tr, err := RunConcurrent(context.Background(), s, memFactory(), ConcurrentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkTraceShape(t, s, tr)
	}
}

func TestConcurrentRejectsMalformedScripts(t *testing.T) {
	cases := []struct {
		name  string
		steps []types.Label
	}{
		{"return_label", []types.Label{types.ReturnLabel{Pid: 1, Ret: types.RvNone{}}}},
		{"tau_label", []types.Label{types.TauLabel{}}},
		{"call_before_create", []types.Label{types.CallLabel{Pid: 2, Cmd: types.Stat{Path: "/"}}}},
		{"duplicate_create", []types.Label{
			types.CreateLabel{Pid: 2, Uid: 0, Gid: 0},
			types.CreateLabel{Pid: 2, Uid: 0, Gid: 0},
		}},
		{"create_of_pid1", []types.Label{types.CreateLabel{Pid: 1, Uid: 0, Gid: 0}}},
		{"call_after_destroy", []types.Label{
			types.CreateLabel{Pid: 2, Uid: 0, Gid: 0},
			types.DestroyLabel{Pid: 2},
			types.CallLabel{Pid: 2, Cmd: types.Stat{Path: "/"}},
		}},
		{"destroy_unknown", []types.Label{types.DestroyLabel{Pid: 9}}},
	}
	for _, c := range cases {
		s := &trace.Script{Name: c.name}
		for _, l := range c.steps {
			s.Steps = append(s.Steps, trace.Step{Label: l})
		}
		if _, err := RunConcurrent(context.Background(), s, memFactory(), ConcurrentOptions{Seeded: true, Seed: 1}); err == nil {
			t.Errorf("%s: malformed script accepted", c.name)
		}
	}
}

func TestConcurrentAllowsRecreatedPid(t *testing.T) {
	// The fuzz mutators' lifecycle validator permits destroy-then-create
	// of the same pid (e.g. a splice through one parent's destroy into a
	// donor's create); the concurrent executor must execute it, keeping
	// the pid's events in program order.
	s := &trace.Script{Name: "recreate"}
	s.Steps = append(s.Steps,
		trace.Step{Label: types.CreateLabel{Pid: 2, Uid: 0, Gid: 0}},
		trace.Step{Label: types.CallLabel{Pid: 2, Cmd: types.Mkdir{Path: "/a", Perm: 0o755}}},
		trace.Step{Label: types.DestroyLabel{Pid: 2}},
		trace.Step{Label: types.CreateLabel{Pid: 2, Uid: 1000, Gid: 1000}},
		trace.Step{Label: types.CallLabel{Pid: 2, Cmd: types.Stat{Path: "/a"}}},
		trace.Step{Label: types.DestroyLabel{Pid: 2}},
		trace.Step{Label: types.CallLabel{Pid: 1, Cmd: types.Stat{Path: "/"}}},
	)
	for seed := int64(1); seed <= 4; seed++ {
		tr, err := RunConcurrent(context.Background(), s, memFactory(), ConcurrentOptions{Seeded: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		checkTraceShape(t, s, tr)
	}
	tr, err := RunConcurrent(context.Background(), s, memFactory(), ConcurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkTraceShape(t, s, tr)
}

func TestRunAllConcurrentPreservesOrder(t *testing.T) {
	var scripts []*trace.Script
	for i := 0; i < 30; i++ {
		s := racyScript(2)
		s.Name = "racy" + itoa(i)
		scripts = append(scripts, s)
	}
	traces, err := RunAllConcurrent(context.Background(), scripts, memFactory(), ConcurrentOptions{Seeded: true, Seed: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scripts {
		if traces[i].Name != scripts[i].Name {
			t.Fatalf("order broken at %d", i)
		}
	}
}
