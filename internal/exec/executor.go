package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/fsimpl"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/types"
)

// Run executes one script against a fresh instance from factory and
// records the trace. Cancellation is checked between steps: a cancelled
// ctx abandons the script and returns ctx.Err() (a call already handed to
// the implementation still completes — calls are not interruptible).
func Run(ctx context.Context, s *trace.Script, factory fsimpl.Factory) (*trace.Trace, error) {
	fs, err := factory()
	if err != nil {
		return nil, fmt.Errorf("exec: creating file system: %w", err)
	}
	defer fs.Close()
	t := &trace.Trace{Name: s.Name}
	line := 0
	emit := func(lbl types.Label) {
		line++
		t.Steps = append(t.Steps, trace.Step{Label: lbl, Line: line})
	}
	for _, st := range s.Steps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch lbl := st.Label.(type) {
		case types.CallLabel:
			emit(lbl)
			rv := fs.Apply(lbl.Pid, lbl.Cmd)
			emit(types.ReturnLabel{Pid: lbl.Pid, Ret: rv})
		case types.CreateLabel:
			fs.CreateProcess(lbl.Pid, lbl.Uid, lbl.Gid)
			emit(lbl)
		case types.DestroyLabel:
			fs.DestroyProcess(lbl.Pid)
			emit(lbl)
		case types.CrashLabel:
			// Power loss + remount. The implementation picks which pending
			// effects survived (lbl.Keep, clamped by the backend); the oracle
			// ignores Keep and admits every prefix, so any backend choice is
			// inside the envelope. Backends without persistence simulation
			// cannot execute crash scripts — fail loudly rather than emit a
			// label the trace did not earn.
			cfs, ok := fs.(fsimpl.CrashFS)
			if !ok {
				return nil, fmt.Errorf("exec: script %q line %d: %s does not support crash simulation", s.Name, st.Line, fs.Name())
			}
			if err := cfs.Crash(lbl.Keep); err != nil {
				return nil, fmt.Errorf("exec: script %q line %d: %w", s.Name, st.Line, err)
			}
			emit(lbl)
		case types.TauLabel:
			// Scripts don't contain τ; ignore if present.
		case types.ReturnLabel:
			// A return in a *script* would otherwise be silently re-emitted
			// as if the executor had observed it — reject it loudly instead:
			// returns are executor output, not script input.
			return nil, fmt.Errorf("exec: script %q line %d contains a return label (%s); returns are executor output, not script input", s.Name, st.Line, lbl)
		}
	}
	// Executor throughput is process-global telemetry (exec has no
	// per-session configuration); the pipeline attributes per-job
	// execute timings to its own registry on top.
	telemetry.Default.Counter("exec.traces").Inc()
	telemetry.Default.Counter("exec.steps").Add(int64(len(t.Steps)))
	return t, nil
}

// RunAll executes many scripts concurrently (workers ≤ 0 selects
// GOMAXPROCS), one fresh file system per script, preserving order.
// Implementations with process-global state (HostFS's umask) should be run
// with workers = 1. A cancelled ctx stops dispatching further scripts,
// waits for in-flight ones to notice, and returns ctx.Err() with the
// traces completed so far in place (unstarted slots nil).
func RunAll(ctx context.Context, scripts []*trace.Script, factory fsimpl.Factory, workers int) ([]*trace.Trace, error) {
	return runPool(ctx, len(scripts), workers, func(i int) (*trace.Trace, error) {
		return Run(ctx, scripts[i], factory)
	})
}

// runPool runs fn for every index on a bounded worker pool (workers ≤ 0
// selects GOMAXPROCS), preserving order and reporting the first error.
// Cancellation stops dispatch; already-running fn calls are expected to
// observe ctx themselves.
func runPool(ctx context.Context, n, workers int, fn func(i int) (*trace.Trace, error)) ([]*trace.Trace, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	traces := make([]*trace.Trace, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain
				}
				traces[i], errs[i] = fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return traces, err
	}
	for _, e := range errs {
		if e != nil {
			return traces, e
		}
	}
	return traces, nil
}
