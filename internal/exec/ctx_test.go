package exec

// Cancellation contract of the executors: a cancelled context abandons
// work promptly and surfaces context.Canceled, never a partial trace.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fsimpl"
	"repro/internal/trace"
	"repro/internal/types"
)

func cancelScript(name string, steps int) *trace.Script {
	s := &trace.Script{Name: name}
	for i := 0; i < steps; i++ {
		s.Steps = append(s.Steps, trace.Step{Label: types.CallLabel{
			Pid: 1, Cmd: types.Stat{Path: "/"},
		}})
	}
	return s
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr, err := Run(ctx, cancelScript("c", 4), fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tr != nil {
		t.Fatal("cancelled Run returned a trace")
	}
}

func TestRunAllCancelled(t *testing.T) {
	scripts := make([]*trace.Script, 50)
	for i := range scripts {
		scripts[i] = cancelScript("c", 4)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAll(ctx, scripts, fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")), 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunConcurrentCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, seeded := range []bool{true, false} {
		tr, err := RunConcurrent(ctx, cancelScript("c", 4),
			fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")),
			ConcurrentOptions{Seeded: seeded, Seed: 1})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("seeded=%v: err = %v, want context.Canceled", seeded, err)
		}
		if tr != nil {
			t.Fatalf("seeded=%v: cancelled RunConcurrent returned a trace", seeded)
		}
	}
}
