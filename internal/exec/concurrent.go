package exec

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/fsimpl"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/types"
)

// ConcurrentOptions configure the concurrent executor.
type ConcurrentOptions struct {
	// Seeded selects the deterministic scheduler: the process interleaving
	// is drawn from a PRNG seeded with Seed, so the same (script, seed)
	// pair always yields a byte-identical trace. When false, each process
	// runs as a free goroutine and the interleaving is whatever the Go
	// scheduler produces — genuinely racy, and what the -race CI job
	// exercises.
	Seeded bool
	// Seed picks the interleaving in seeded mode.
	Seed int64
	// Workers bounds script-level parallelism in RunAllConcurrent
	// (≤ 0 selects GOMAXPROCS). Within a script, parallelism is one
	// goroutine per process regardless.
	Workers int
}

// procEvent is one step of a process's program: its own create, a call, or
// its destroy. Keeping creates and destroys in the per-pid event stream
// (rather than hoisting them to a prologue/epilogue) lets a pid be
// destroyed and re-created mid-script — a shape the fuzz mutators'
// lifecycle validator permits.
type procEvent struct {
	create  *types.CreateLabel
	call    *types.CallLabel
	destroy bool
}

// procProgram is one process's slice of a script: its events in script
// order. Concurrent execution preserves program order within each process
// and deliberately drops all cross-process ordering — that is the
// concurrency under test.
type procProgram struct {
	pid    types.Pid
	events []procEvent
}

// splitPrograms decomposes a script into per-process programs, rejecting
// scripts the concurrent interpretation cannot express: return/τ labels
// (executor output, not input) and per-process lifecycle violations
// (calls outside a pid's create..destroy window, create of a live pid,
// destroy of a dead one).
func splitPrograms(s *trace.Script) ([]*procProgram, error) {
	byPid := make(map[types.Pid]*procProgram)
	alive := map[types.Pid]bool{1: true}
	var order []*procProgram
	get := func(pid types.Pid) *procProgram {
		p, ok := byPid[pid]
		if !ok {
			p = &procProgram{pid: pid}
			byPid[pid] = p
			order = append(order, p)
		}
		return p
	}
	get(types.Pid(1)) // implicit root process, even if it issues no calls
	for _, st := range s.Steps {
		switch lbl := st.Label.(type) {
		case types.CallLabel:
			if !alive[lbl.Pid] {
				return nil, fmt.Errorf("exec: script %q line %d: call from pid %d outside its create..destroy window", s.Name, st.Line, lbl.Pid)
			}
			l := lbl
			get(lbl.Pid).events = append(get(lbl.Pid).events, procEvent{call: &l})
		case types.CreateLabel:
			if alive[lbl.Pid] {
				return nil, fmt.Errorf("exec: script %q line %d: create of live pid %d", s.Name, st.Line, lbl.Pid)
			}
			alive[lbl.Pid] = true
			l := lbl
			get(lbl.Pid).events = append(get(lbl.Pid).events, procEvent{create: &l})
		case types.DestroyLabel:
			if !alive[lbl.Pid] {
				return nil, fmt.Errorf("exec: script %q line %d: destroy of pid %d, which is not alive", s.Name, st.Line, lbl.Pid)
			}
			alive[lbl.Pid] = false
			get(lbl.Pid).events = append(get(lbl.Pid).events, procEvent{destroy: true})
		case types.CrashLabel:
			// A crash is a whole-machine event with no per-process program
			// order — the sequential executor owns crash scripts.
			return nil, fmt.Errorf("exec: script %q line %d contains a crash label; crash scripts are sequential-executor only", s.Name, st.Line)
		case types.ReturnLabel:
			return nil, fmt.Errorf("exec: script %q line %d contains a return label; returns are executor output, not script input", s.Name, st.Line)
		case types.TauLabel:
			return nil, fmt.Errorf("exec: script %q line %d contains a τ label; internal steps are the model's, not the script's", s.Name, st.Line)
		}
	}
	return order, nil
}

// RunConcurrent executes one script with its processes running
// concurrently against a fresh instance from factory, recording call and
// return events in observed order — so calls from different processes
// genuinely overlap in the trace and the oracle's τ-closure is exercised.
// Cancellation is checked between events (seeded mode: between
// micro-steps); a cancelled script returns ctx.Err() and no trace.
func RunConcurrent(ctx context.Context, s *trace.Script, factory fsimpl.Factory, opts ConcurrentOptions) (*trace.Trace, error) {
	progs, err := splitPrograms(s)
	if err != nil {
		return nil, err
	}
	fs, err := factory()
	if err != nil {
		return nil, fmt.Errorf("exec: creating file system: %w", err)
	}
	defer fs.Close()
	var t *trace.Trace
	if opts.Seeded {
		t = runSeeded(ctx, s.Name, progs, fs, opts.Seed)
	} else {
		t = runFree(ctx, s.Name, progs, fs)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	telemetry.Default.Counter("exec.traces_concurrent").Inc()
	telemetry.Default.Counter("exec.steps").Add(int64(len(t.Steps)))
	return t, nil
}

// runFree is the racy mode: one goroutine per process, trace appends
// ordered by a mutex (observed wall-clock order). A pid's create is the
// first event of its own goroutine, so the trace never shows a call from
// a not-yet-created pid. The implementation under test must be internally
// synchronized (memfs, hostfs and specfs are).
//
// Create and destroy perform their effect and emit their label in one
// critical section: the model applies those effects at the label itself,
// so a globally observable side effect (destroy closing descriptors and
// freeing an unlinked file's blocks, say) must not become visible to
// another process's call before the label lands in the trace. Calls need
// no such atomicity — their effect may occur anywhere between their call
// and return labels, which is exactly the τ window the oracle explores.
func runFree(ctx context.Context, name string, progs []*procProgram, fs fsimpl.FS) *trace.Trace {
	t := &trace.Trace{Name: name}
	var mu sync.Mutex
	appendStep := func(lbl types.Label) {
		t.Steps = append(t.Steps, trace.Step{Label: lbl, Line: len(t.Steps) + 1})
	}
	emit := func(lbl types.Label) {
		mu.Lock()
		appendStep(lbl)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for _, p := range progs {
		wg.Add(1)
		go func(p *procProgram) {
			defer wg.Done()
			for _, ev := range p.events {
				if ctx.Err() != nil {
					return // the caller discards the partial trace
				}
				switch {
				case ev.create != nil:
					mu.Lock()
					fs.CreateProcess(ev.create.Pid, ev.create.Uid, ev.create.Gid)
					appendStep(*ev.create)
					mu.Unlock()
				case ev.call != nil:
					emit(*ev.call)
					rv := fs.Apply(ev.call.Pid, ev.call.Cmd)
					emit(types.ReturnLabel{Pid: ev.call.Pid, Ret: rv})
				case ev.destroy:
					mu.Lock()
					fs.DestroyProcess(p.pid)
					appendStep(types.DestroyLabel{Pid: p.pid})
					mu.Unlock()
				}
			}
		}(p)
	}
	wg.Wait()
	return t
}

// Micro-step phases of one call under the seeded scheduler. Scheduling the
// call emission, the effect (the τ point, unobserved in the trace) and the
// return emission as three separate events decouples effect order from
// both call order and return order — the full τ-nondeterminism the oracle
// must absorb, reproducible from the seed.
const (
	phEmitCall = iota
	phApply
	phEmitReturn
)

type seededRunner struct {
	prog  *procProgram
	idx   int // next event
	phase int // progress through the current call event
	rv    types.RetValue
}

// runSeeded simulates the concurrent run on a single goroutine: a PRNG
// repeatedly picks one unfinished process and advances it by one
// micro-step.
func runSeeded(ctx context.Context, name string, progs []*procProgram, fs fsimpl.FS, seed int64) *trace.Trace {
	r := rand.New(rand.NewSource(seed))
	t := &trace.Trace{Name: name}
	emit := func(lbl types.Label) {
		t.Steps = append(t.Steps, trace.Step{Label: lbl, Line: len(t.Steps) + 1})
	}
	var live []*seededRunner
	for _, p := range progs {
		if len(p.events) > 0 {
			live = append(live, &seededRunner{prog: p})
		}
	}
	for len(live) > 0 {
		if ctx.Err() != nil {
			return t // abandoned; RunConcurrent reports ctx.Err()
		}
		i := r.Intn(len(live))
		ru := live[i]
		ev := ru.prog.events[ru.idx]
		switch {
		case ev.create != nil:
			fs.CreateProcess(ev.create.Pid, ev.create.Uid, ev.create.Gid)
			emit(*ev.create)
			ru.idx++
		case ev.call != nil:
			switch ru.phase {
			case phEmitCall:
				emit(*ev.call)
				ru.phase = phApply
			case phApply:
				ru.rv = fs.Apply(ev.call.Pid, ev.call.Cmd)
				ru.phase = phEmitReturn
			default:
				emit(types.ReturnLabel{Pid: ev.call.Pid, Ret: ru.rv})
				ru.idx++
				ru.phase = phEmitCall
			}
		case ev.destroy:
			fs.DestroyProcess(ru.prog.pid)
			emit(types.DestroyLabel{Pid: ru.prog.pid})
			ru.idx++
		}
		if ru.idx == len(ru.prog.events) {
			live = append(live[:i], live[i+1:]...)
		}
	}
	return t
}

// RunAllConcurrent executes many scripts with the concurrent executor,
// opts.Workers scripts in flight at once (≤ 0 selects GOMAXPROCS),
// preserving order. In seeded mode every script uses the same scheduler
// seed, so each trace is reproducible from (script, seed) independent of
// its position in the suite. Cancellation behaves as in RunAll.
func RunAllConcurrent(ctx context.Context, scripts []*trace.Script, factory fsimpl.Factory, opts ConcurrentOptions) ([]*trace.Trace, error) {
	return runPool(ctx, len(scripts), opts.Workers, func(i int) (*trace.Trace, error) {
		return RunConcurrent(ctx, scripts[i], factory, opts)
	})
}
