package exec

import (
	"context"

	"strings"
	"testing"

	"repro/internal/fsimpl"
	"repro/internal/trace"
	"repro/internal/types"
)

func script(name string, labels ...types.Label) *trace.Script {
	s := &trace.Script{Name: name}
	for _, l := range labels {
		s.Steps = append(s.Steps, trace.Step{Label: l})
	}
	return s
}

func TestRunRecordsCallReturnPairs(t *testing.T) {
	s := script("demo",
		types.CallLabel{Pid: 1, Cmd: types.Mkdir{Path: "/d", Perm: 0o755}},
		types.CallLabel{Pid: 1, Cmd: types.Stat{Path: "/d"}},
	)
	tr, err := Run(context.Background(), s, fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "demo" || len(tr.Steps) != 4 {
		t.Fatalf("trace = %+v", tr)
	}
	for i := 0; i < len(tr.Steps); i += 2 {
		if _, ok := tr.Steps[i].Label.(types.CallLabel); !ok {
			t.Errorf("step %d not a call", i)
		}
		if _, ok := tr.Steps[i+1].Label.(types.ReturnLabel); !ok {
			t.Errorf("step %d not a return", i+1)
		}
	}
}

func TestRunHandlesProcessEvents(t *testing.T) {
	s := script("procs",
		types.CreateLabel{Pid: 2, Uid: 1000, Gid: 1000},
		types.CallLabel{Pid: 2, Cmd: types.Umask{Mask: 0o077}},
		types.DestroyLabel{Pid: 2},
	)
	tr, err := Run(context.Background(), s, fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != 4 { // create, call, return, destroy
		t.Fatalf("steps = %d", len(tr.Steps))
	}
}

func TestRunRejectsReturnLabels(t *testing.T) {
	s := script("bad",
		types.CallLabel{Pid: 1, Cmd: types.Mkdir{Path: "/d", Perm: 0o755}},
		types.ReturnLabel{Pid: 1, Ret: types.RvNone{}},
	)
	_, err := Run(context.Background(), s, fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")))
	if err == nil {
		t.Fatal("script with return label accepted")
	}
	if !strings.Contains(err.Error(), "return label") || !strings.Contains(err.Error(), `"bad"`) {
		t.Errorf("error does not diagnose the return label: %v", err)
	}
}

func TestRunAllFreshInstancePerScript(t *testing.T) {
	// Both scripts create the same path; with a fresh FS per script both
	// must succeed.
	mk := func(n string) *trace.Script {
		return script(n, types.CallLabel{Pid: 1, Cmd: types.Mkdir{Path: "/same", Perm: 0o755}})
	}
	traces, err := RunAll(context.Background(), []*trace.Script{mk("a"), mk("b")}, fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		ret := tr.Steps[1].Label.(types.ReturnLabel)
		if !ret.Ret.Equal(types.RvNone{}) {
			t.Errorf("%s: mkdir = %v (state leaked between scripts?)", tr.Name, ret.Ret)
		}
	}
}

func TestRunAllPreservesOrder(t *testing.T) {
	var scripts []*trace.Script
	for i := 0; i < 50; i++ {
		scripts = append(scripts, script(string(rune('a'+i%26))+itoa(i),
			types.CallLabel{Pid: 1, Cmd: types.Stat{Path: "/"}}))
	}
	traces, err := RunAll(context.Background(), scripts, fsimpl.MemFactory(fsimpl.LinuxProfile("ext4")), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scripts {
		if traces[i].Name != scripts[i].Name {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
