package fsimpl

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"repro/internal/types"
)

// HostFS drives the real file system of the machine the tests run on, in a
// private temporary directory that plays the role of the paper's chroot
// jail (§6.2). It is the closest equivalent of the paper's real-world test
// targets available in this environment (a Linux kernel). Script paths are
// interpreted relative to the jail: an absolute script path "/d1/f" maps to
// <jail>/d1/f; generated scripts use relative symlink targets so the jail
// boundary is never escaped.
//
// HostFS supports a single test process (the harness process); per-pid
// working contexts (cwd as a jail-relative prefix, descriptor and
// directory-handle tables) make each model process independent, and
// credential switching is not attempted — permission-sensitive scripts are
// run against memfs instead. Calls from concurrent model processes
// linearise under mu; note that umask remains process-global in the real
// kernel, so concurrent scripts mixing umask with creation calls are only
// meaningful against memfs.
type HostFS struct {
	mu   sync.Mutex
	name string
	root string
	pids map[types.Pid]*hproc
}

type hproc struct {
	cwd    string // jail-relative, "" = jail root
	fds    map[types.FD]int
	dhs    map[types.DH]*hostDir
	nextFD types.FD
	nextDH types.DH
}

type hostDir struct {
	names []string
	pos   int
	path  string
}

// NewHostFS creates a fresh jail under the system temp directory. The
// process umask is pinned to the model's initial 0o022 so creation modes
// are comparable; umask is process-global, so HostFS suites must run with
// one executor worker.
func NewHostFS(name string) (*HostFS, error) {
	dir, err := os.MkdirTemp("", "sibylfs-host-")
	if err != nil {
		return nil, err
	}
	// MkdirTemp creates 0700; the model's root is 0755.
	if err := os.Chmod(dir, 0o755); err != nil {
		return nil, err
	}
	syscall.Umask(0o022)
	fs := &HostFS{name: name, root: dir, pids: make(map[types.Pid]*hproc)}
	fs.CreateProcess(1, types.RootUid, types.RootGid)
	return fs, nil
}

// HostFactory returns a Factory producing fresh host jails.
func HostFactory(name string) Factory {
	return func() (FS, error) { return NewHostFS(name) }
}

// Name implements FS.
func (fs *HostFS) Name() string { return fs.name }

// Close implements FS, removing the jail.
func (fs *HostFS) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, p := range fs.pids {
		for _, hfd := range p.fds {
			_ = syscall.Close(hfd)
		}
	}
	return os.RemoveAll(fs.root)
}

// CreateProcess implements FS. Credentials are ignored: HostFS runs
// everything as the harness's own user.
func (fs *HostFS) CreateProcess(pid types.Pid, _ types.Uid, _ types.Gid) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.pids[pid] = &hproc{
		fds:    make(map[types.FD]int),
		dhs:    make(map[types.DH]*hostDir),
		nextFD: 3,
		nextDH: 1,
	}
}

// DestroyProcess implements FS.
func (fs *HostFS) DestroyProcess(pid types.Pid) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := fs.pids[pid]
	if p == nil {
		return
	}
	for _, hfd := range p.fds {
		_ = syscall.Close(hfd)
	}
	delete(fs.pids, pid)
}

// hostPath maps a script path into the jail, preserving trailing slashes
// (they are semantically significant — §7.3.2). In a real chroot the
// root's ".." resolves to the root itself; the temp-dir jail has a real
// parent, so ".." components that would climb above the jail are dropped
// lexically — the only adjustment made to match chroot behaviour. Other
// "." / ".." components pass through untouched so the kernel still
// performs the real resolution (including its error ordering).
func (fs *HostFS) hostPath(p *hproc, path string) string {
	if path == "" {
		return "" // empty path must reach the kernel as empty (ENOENT)
	}
	trailing := strings.HasSuffix(path, "/") && strings.Trim(path, "/") != ""

	var comps []string
	if !strings.HasPrefix(path, "/") && p.cwd != "" {
		comps = append(comps, strings.Split(p.cwd, "/")...)
	}
	for _, c := range strings.Split(path, "/") {
		if c != "" {
			comps = append(comps, c)
		}
	}
	depth := 0
	kept := make([]string, 0, len(comps))
	for _, c := range comps {
		switch c {
		case ".":
			kept = append(kept, c)
		case "..":
			if depth == 0 {
				continue // chroot semantics: the root's ".." is the root
			}
			depth--
			kept = append(kept, c)
		default:
			depth++
			kept = append(kept, c)
		}
	}
	joined := fs.root + "/" + strings.Join(kept, "/")
	if trailing && !strings.HasSuffix(joined, "/") {
		joined += "/"
	}
	return joined
}

// isJailRoot reports whether a host path refers to the jail root itself.
func (fs *HostFS) isJailRoot(hp string) bool {
	return filepath.Clean(hp) == fs.root
}

// mapErrno converts a syscall error into the model's abstract errno.
func mapErrno(e error) types.Errno {
	var errno syscall.Errno
	if !errors.As(e, &errno) {
		return types.EIO
	}
	switch errno {
	case syscall.EPERM:
		return types.EPERM
	case syscall.ENOENT:
		return types.ENOENT
	case syscall.EINTR:
		return types.EINTR
	case syscall.EIO:
		return types.EIO
	case syscall.EBADF:
		return types.EBADF
	case syscall.EACCES:
		return types.EACCES
	case syscall.EBUSY:
		return types.EBUSY
	case syscall.EEXIST:
		return types.EEXIST
	case syscall.EXDEV:
		return types.EXDEV
	case syscall.ENOTDIR:
		return types.ENOTDIR
	case syscall.EISDIR:
		return types.EISDIR
	case syscall.EINVAL:
		return types.EINVAL
	case syscall.ENFILE:
		return types.ENFILE
	case syscall.EMFILE:
		return types.EMFILE
	case syscall.ETXTBSY:
		return types.ETXTBSY
	case syscall.EFBIG:
		return types.EFBIG
	case syscall.ENOSPC:
		return types.ENOSPC
	case syscall.ESPIPE:
		return types.ESPIPE
	case syscall.EROFS:
		return types.EROFS
	case syscall.EMLINK:
		return types.EMLINK
	case syscall.EPIPE:
		return types.EPIPE
	case syscall.ENAMETOOLONG:
		return types.ENAMETOOLONG
	case syscall.ENOTEMPTY:
		return types.ENOTEMPTY
	case syscall.ELOOP:
		return types.ELOOP
	case syscall.EOVERFLOW:
		return types.EOVERFLOW
	case syscall.EOPNOTSUPP:
		return types.EOPNOTSUPP
	case syscall.ERANGE:
		return types.ERANGE
	case syscall.EDQUOT:
		return types.EDQUOT
	case syscall.ENOSYS:
		return types.ENOSYS
	}
	return types.EIO
}

func herr(e error) types.RetValue { return types.RvErr{Err: mapErrno(e)} }

// Apply implements FS by issuing real syscalls inside the jail.
func (fs *HostFS) Apply(pid types.Pid, cmd types.Command) types.RetValue {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := fs.pids[pid]
	if p == nil {
		return err(types.EINVAL)
	}
	switch c := cmd.(type) {
	case types.Mkdir:
		if e := syscall.Mkdir(fs.hostPath(p, c.Path), uint32(c.Perm)); e != nil {
			return herr(e)
		}
		return types.RvNone{}
	case types.Rmdir:
		hp := fs.hostPath(p, c.Path)
		if fs.isJailRoot(hp) {
			// In a real chroot the kernel special-cases rmdir("/") to
			// EBUSY; the temp-dir jail root is an ordinary directory, so
			// emulate the chroot behaviour.
			return err(types.EBUSY)
		}
		if e := syscall.Rmdir(hp); e != nil {
			return herr(e)
		}
		return types.RvNone{}
	case types.Link:
		if e := syscall.Link(fs.hostPath(p, c.Src), fs.hostPath(p, c.Dst)); e != nil {
			return herr(e)
		}
		return types.RvNone{}
	case types.Unlink:
		if e := syscall.Unlink(fs.hostPath(p, c.Path)); e != nil {
			return herr(e)
		}
		return types.RvNone{}
	case types.Rename:
		src, dst := fs.hostPath(p, c.Src), fs.hostPath(p, c.Dst)
		if fs.isJailRoot(src) || fs.isJailRoot(dst) {
			// Renaming the (chroot) root: EBUSY, as a real root gives.
			return err(types.EBUSY)
		}
		if e := syscall.Rename(src, dst); e != nil {
			return herr(e)
		}
		return types.RvNone{}
	case types.Symlink:
		if e := syscall.Symlink(c.Target, fs.hostPath(p, c.Linkpath)); e != nil {
			return herr(e)
		}
		return types.RvNone{}
	case types.Readlink:
		buf := make([]byte, types.PathMax)
		n, e := syscall.Readlink(fs.hostPath(p, c.Path), buf)
		if e != nil {
			return herr(e)
		}
		return types.RvBytes{Data: append([]byte(nil), buf[:n]...)}
	case types.Stat:
		var st syscall.Stat_t
		if e := syscall.Stat(fs.hostPath(p, c.Path), &st); e != nil {
			return herr(e)
		}
		return types.RvStats{Stats: fs.mapStats(&st)}
	case types.Lstat:
		var st syscall.Stat_t
		if e := syscall.Lstat(fs.hostPath(p, c.Path), &st); e != nil {
			return herr(e)
		}
		return types.RvStats{Stats: fs.mapStats(&st)}
	case types.Truncate:
		if e := syscall.Truncate(fs.hostPath(p, c.Path), c.Len); e != nil {
			return herr(e)
		}
		return types.RvNone{}
	case types.Chmod:
		if e := syscall.Chmod(fs.hostPath(p, c.Path), uint32(c.Perm)); e != nil {
			return herr(e)
		}
		return types.RvNone{}
	case types.Chown:
		if e := syscall.Chown(fs.hostPath(p, c.Path), int(c.Uid), int(c.Gid)); e != nil {
			return herr(e)
		}
		return types.RvNone{}
	case types.Chdir:
		// Tracked per-pid, not via the process-global chdir(2).
		hp := fs.hostPath(p, c.Path)
		fi, e := os.Stat(hp)
		if e != nil {
			return herr(underlying(e))
		}
		if !fi.IsDir() {
			return err(types.ENOTDIR)
		}
		rel, e2 := filepath.Rel(fs.root, filepath.Clean(hp))
		if e2 != nil || strings.HasPrefix(rel, "..") {
			return err(types.EACCES)
		}
		if rel == "." {
			rel = ""
		}
		p.cwd = rel
		return types.RvNone{}
	case types.Umask:
		old := syscall.Umask(int(c.Mask))
		return types.RvPerm{Perm: types.Perm(old)}
	case types.AddUserToGroup:
		return types.RvNone{} // not supported on the host; single-user jail
	case types.Open:
		return fs.open(p, c)
	case types.Close:
		hfd, ok := p.fds[c.FD]
		if !ok {
			return err(types.EBADF)
		}
		delete(p.fds, c.FD)
		if e := syscall.Close(hfd); e != nil {
			return herr(e)
		}
		return types.RvNone{}
	case types.Read:
		return fs.read(p, c.FD, c.Size, 0, true)
	case types.Pread:
		return fs.read(p, c.FD, c.Size, c.Off, false)
	case types.Write:
		return fs.write(p, c.FD, c.Data, c.Size, 0, true)
	case types.Pwrite:
		return fs.write(p, c.FD, c.Data, c.Size, c.Off, false)
	case types.Lseek:
		hfd, ok := p.fds[c.FD]
		if !ok {
			return err(types.EBADF)
		}
		var whence int
		switch c.Whence {
		case types.SeekSet:
			whence = 0
		case types.SeekCur:
			whence = 1
		case types.SeekEnd:
			whence = 2
		}
		off, e := syscall.Seek(hfd, c.Off, whence)
		if e != nil {
			return herr(e)
		}
		return types.RvNum{N: off}
	case types.Fsync:
		hfd, ok := p.fds[c.FD]
		if !ok {
			return err(types.EBADF)
		}
		if e := syscall.Fsync(hfd); e != nil {
			return herr(e)
		}
		return types.RvNone{}
	case types.Sync:
		syscall.Sync() // best-effort; sync(2) has no error return
		return types.RvNone{}
	case types.Opendir:
		return fs.opendir(p, c)
	case types.Readdir:
		od, ok := p.dhs[c.DH]
		if !ok {
			return err(types.EBADF)
		}
		for od.pos < len(od.names) {
			name := od.names[od.pos]
			od.pos++
			if _, e := os.Lstat(filepath.Join(od.path, name)); e == nil {
				return types.RvDirent{Name: name}
			}
		}
		return types.RvDirent{End: true}
	case types.Closedir:
		if _, ok := p.dhs[c.DH]; !ok {
			return err(types.EBADF)
		}
		delete(p.dhs, c.DH)
		return types.RvNone{}
	case types.Rewinddir:
		od, ok := p.dhs[c.DH]
		if !ok {
			return err(types.EBADF)
		}
		names, e := readDirNames(od.path)
		if e != nil {
			return herr(underlying(e))
		}
		od.names, od.pos = names, 0
		return types.RvNone{}
	}
	return err(types.ENOSYS)
}

func underlying(e error) error {
	var pe *os.PathError
	if errors.As(e, &pe) {
		return pe.Err
	}
	return e
}

func (fs *HostFS) mapStats(st *syscall.Stat_t) types.Stats {
	out := types.Stats{
		Perm:  types.Perm(st.Mode & 0o7777),
		Nlink: int(st.Nlink),
		Uid:   types.Uid(st.Uid),
		Gid:   types.Gid(st.Gid),
	}
	switch st.Mode & syscall.S_IFMT {
	case syscall.S_IFDIR:
		out.Kind = types.KindDir
		out.Size = 0 // directory sizes are implementation-defined; normalised
	case syscall.S_IFLNK:
		out.Kind = types.KindSymlink
		out.Size = st.Size
	default:
		out.Kind = types.KindFile
		out.Size = st.Size
	}
	return out
}

func (fs *HostFS) open(p *hproc, c types.Open) types.RetValue {
	var flags int
	fl := c.Flags
	switch {
	case fl.Has(types.OWronly) && fl.Has(types.ORdwr):
		flags = syscall.O_WRONLY | syscall.O_RDWR // the kernel's accmode 3
	case fl.Has(types.ORdwr):
		flags = syscall.O_RDWR
	case fl.Has(types.OWronly):
		flags = syscall.O_WRONLY
	default:
		flags = syscall.O_RDONLY
	}
	if fl.Has(types.OCreat) {
		flags |= syscall.O_CREAT
	}
	if fl.Has(types.OExcl) {
		flags |= syscall.O_EXCL
	}
	if fl.Has(types.OTrunc) {
		flags |= syscall.O_TRUNC
	}
	if fl.Has(types.OAppend) {
		flags |= syscall.O_APPEND
	}
	if fl.Has(types.ODirectory) {
		flags |= syscall.O_DIRECTORY
	}
	if fl.Has(types.ONofollow) {
		flags |= syscall.O_NOFOLLOW
	}
	hfd, e := syscall.Open(fs.hostPath(p, c.Path), flags, uint32(c.Perm))
	if e != nil {
		return herr(e)
	}
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = hfd
	return types.RvFD{FD: fd}
}

func (fs *HostFS) read(p *hproc, fd types.FD, size, at int64, seq bool) types.RetValue {
	hfd, ok := p.fds[fd]
	if !ok {
		return err(types.EBADF)
	}
	if size < 0 {
		return err(types.EINVAL)
	}
	buf := make([]byte, size)
	var n int
	var e error
	if seq {
		n, e = syscall.Read(hfd, buf)
	} else {
		n, e = syscall.Pread(hfd, buf, at)
	}
	if e != nil {
		return herr(e)
	}
	return types.RvBytes{Data: append([]byte(nil), buf[:n]...)}
}

func (fs *HostFS) write(p *hproc, fd types.FD, data []byte, size, at int64, seq bool) types.RetValue {
	hfd, ok := p.fds[fd]
	if !ok {
		return err(types.EBADF)
	}
	if size >= 0 && size < int64(len(data)) {
		data = data[:size]
	}
	var n int
	var e error
	if seq {
		n, e = syscall.Write(hfd, data)
	} else {
		n, e = syscall.Pwrite(hfd, data, at)
	}
	if e != nil {
		return herr(e)
	}
	return types.RvNum{N: int64(n)}
}

func (fs *HostFS) opendir(p *hproc, c types.Opendir) types.RetValue {
	hp := fs.hostPath(p, c.Path)
	fi, e := os.Stat(hp)
	if e != nil {
		return herr(underlying(e))
	}
	if !fi.IsDir() {
		return err(types.ENOTDIR)
	}
	names, e := readDirNames(hp)
	if e != nil {
		return herr(underlying(e))
	}
	dh := p.nextDH
	p.nextDH++
	p.dhs[dh] = &hostDir{names: names, path: hp}
	return types.RvDH{DH: dh}
}

func readDirNames(dir string) ([]string, error) {
	ents, e := os.ReadDir(dir)
	if e != nil {
		return nil, e
	}
	names := make([]string, 0, len(ents))
	for _, ent := range ents {
		names = append(names, ent.Name())
	}
	return names, nil
}
