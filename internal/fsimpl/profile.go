package fsimpl

import "repro/internal/types"

// Profile configures memfs's behaviour: which platform's conventions it
// follows and which of the paper's catalogued defects (§7.3) are injected.
// A zero-defect Linux profile behaves like ext4 on Linux 3.19 with glibc.
type Profile struct {
	Name     string
	Platform types.Platform

	// CheckPerms enables permission enforcement (on for local file
	// systems; SSHFS with plain allow_other skips it — §7.3.4).
	CheckPerms bool

	// Crash enables the persistence simulation: memfs tracks a durable
	// tree image plus a log of unsynced effects, honours fsync/sync and
	// O_SYNC as flush barriers, and implements CrashFS. Off by default —
	// the log costs a tree snapshot per mutating call.
	Crash bool

	// ---- Platform conventions (§7.3.3) ----

	// UnlinkDirErrno is returned by unlink on a directory: EISDIR on Linux
	// (LSB), EPERM on POSIX/OS X/FreeBSD.
	UnlinkDirErrno types.Errno
	// OAppendPwriteAppends: pwrite on an O_APPEND descriptor ignores the
	// offset and appends (the long-standing Linux convention).
	OAppendPwriteAppends bool

	// ---- Injected defects (§7.3.2, §7.3.4, §7.3.5) ----

	// ChmodUnsupported: every chmod fails EOPNOTSUPP (HFS+ on Ubuntu
	// Trusty Linux 3.13).
	ChmodUnsupported bool
	// LinkToSymlinkEPERM: link with a symlink source fails EPERM (HFS+ on
	// Linux; a portability compromise for removable volumes).
	LinkToSymlinkEPERM bool
	// FlatDirNlink: directories always report st_nlink = 1 (Btrfs; also
	// SSHFS, which additionally reports regular-file links lazily).
	FlatDirNlink bool
	// OAppendBroken: O_APPEND descriptors do not seek to the end before
	// write/pwrite (OpenZFS 0.6.3 on Trusty), silently overwriting data.
	OAppendBroken bool
	// PwriteNegativeUnderflow: a negative pwrite offset is interpreted as
	// a huge unsigned value (the OS X VFS integer underflow, §7.3.4); the
	// process receives SIGXFSZ, observed in the trace as EFBIG rather
	// than the POSIX-required EINVAL.
	PwriteNegativeUnderflow bool
	// RenameLinkCountLeak: rename over an existing hard link fails to
	// decrement the replaced file's link count, leaking storage
	// (posixovl/VFAT 1.2, §7.3.5). Combined with CapacityBlocks the leak
	// eventually fills the volume even though it looks empty.
	RenameLinkCountLeak bool
	// CapacityBlocks bounds total file bytes (in 4096-byte blocks);
	// 0 = unlimited. Exhaustion surfaces as ENOENT from open(O_CREAT)
	// (the observed posixovl failure mode on Linux 3.19) and ENOSPC from
	// write.
	CapacityBlocks int
	// SpinOnDisconnectedCreate: open(O_CREAT) with the cwd unlinked spins
	// the process unkillably (OpenZFS 1.3.0 on OS X 10.9.5, Fig 8). The
	// harness's watchdog observes the hang and records EINTR (a value the
	// model never allows, so the oracle flags the step); see DESIGN.md.
	SpinOnDisconnectedCreate bool
	// FreeBSDSymlinkReplaceBug: open(O_CREAT|O_DIRECTORY|O_EXCL) on a
	// symlink returns ENOTDIR *and* replaces the symlink with a new file,
	// violating POSIX's errors-don't-change-state invariant (§7.3.2).
	FreeBSDSymlinkReplaceBug bool
	// UmaskORExtra is OR-ed into every process umask (SSHFS without the
	// umask mount option ORs 0022 regardless of the process umask).
	UmaskORExtra types.Perm
	// UmaskForce, when non-nil, replaces the process umask entirely
	// (SSHFS with umask=0000 ignores the process umask).
	UmaskForce *types.Perm
	// CreateOwnerRoot forces created files to be owned by root (SSHFS's
	// unconfigurable default creation ownership = mount owner).
	CreateOwnerRoot bool
	// SymlinkTrailingReadsLink: readlink on "s/" where s is a symlink to
	// a symlink returns the inner symlink's contents instead of EINVAL
	// (the OS X behaviour described in §7.3.2).
	SymlinkTrailingReadsLink bool
}

// LinuxProfile is the conforming baseline: ext4-like behaviour on Linux.
func LinuxProfile(name string) Profile {
	return Profile{
		Name:                 name,
		Platform:             types.PlatformLinux,
		CheckPerms:           true,
		UnlinkDirErrno:       types.EISDIR,
		OAppendPwriteAppends: true,
	}
}

// PosixProfile behaves like a strictly POSIX-conforming implementation.
func PosixProfile(name string) Profile {
	return Profile{
		Name:           name,
		Platform:       types.PlatformPOSIX,
		CheckPerms:     true,
		UnlinkDirErrno: types.EPERM,
	}
}

// OSXProfile behaves like HFS+ on OS X 10.9.
func OSXProfile(name string) Profile {
	return Profile{
		Name:                     name,
		Platform:                 types.PlatformOSX,
		CheckPerms:               true,
		UnlinkDirErrno:           types.EPERM,
		PwriteNegativeUnderflow:  true, // the §7.3.4 VFS defect is in the OS X VFS layer
		SymlinkTrailingReadsLink: true,
	}
}

// FreeBSDProfile behaves like ufs/tmpfs on FreeBSD 10.
func FreeBSDProfile(name string) Profile {
	return Profile{
		Name:                     name,
		Platform:                 types.PlatformFreeBSD,
		CheckPerms:               true,
		UnlinkDirErrno:           types.EPERM,
		FreeBSDSymlinkReplaceBug: true,
	}
}

// SurveyProfiles returns the named memfs configurations used to regenerate
// the paper's survey (§7.3): conforming baselines per platform plus one
// profile per catalogued defect.
func SurveyProfiles() []Profile {
	ext4 := LinuxProfile("ext4")

	btrfs := LinuxProfile("btrfs")
	btrfs.FlatDirNlink = true

	hfsLinux := LinuxProfile("hfsplus_linux_trusty")
	hfsLinux.ChmodUnsupported = true
	hfsLinux.LinkToSymlinkEPERM = true

	zfsTrusty := LinuxProfile("openzfs_0.6.3_trusty")
	zfsTrusty.OAppendBroken = true

	posixovl := LinuxProfile("posixovl_vfat_1.2")
	posixovl.RenameLinkCountLeak = true
	posixovl.CapacityBlocks = 64

	sshfsAllowOther := LinuxProfile("sshfs_tmpfs_allow_other")
	sshfsAllowOther.CheckPerms = false
	sshfsAllowOther.CreateOwnerRoot = true
	sshfsAllowOther.UmaskORExtra = 0o022
	sshfsAllowOther.FlatDirNlink = true

	sshfsDefPerm := LinuxProfile("sshfs_tmpfs_default_permissions")
	sshfsDefPerm.CreateOwnerRoot = true
	sshfsDefPerm.UmaskORExtra = 0o022
	sshfsDefPerm.FlatDirNlink = true

	zeroUmask := types.Perm(0)
	sshfsUmask0 := LinuxProfile("sshfs_tmpfs_umask_0000")
	sshfsUmask0.CreateOwnerRoot = true
	sshfsUmask0.UmaskForce = &zeroUmask
	sshfsUmask0.FlatDirNlink = true

	hfsOSX := OSXProfile("hfsplus_osx_10.9.5")

	zfsOSX := OSXProfile("openzfs_1.3.0_osx")
	zfsOSX.SpinOnDisconnectedCreate = true

	ufs := FreeBSDProfile("ufs_freebsd_10")

	tmpfsBSD := FreeBSDProfile("tmpfs_freebsd_10")

	posix := PosixProfile("posix_reference")

	return []Profile{
		ext4, btrfs, hfsLinux, zfsTrusty, posixovl,
		sshfsAllowOther, sshfsDefPerm, sshfsUmask0,
		hfsOSX, zfsOSX, ufs, tmpfsBSD, posix,
	}
}
