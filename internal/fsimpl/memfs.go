package fsimpl

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/types"
)

// node is a memfs inode. memfs is written independently of the model's
// state module (different structures, pointer-based tree, its own path
// walker) so that checking memfs traces against the model is a genuine
// differential test rather than a tautology.
type node struct {
	dir      bool
	symlink  bool
	mode     types.Perm
	uid      types.Uid
	gid      types.Gid
	data     []byte // file contents, or symlink target
	children map[string]*node
	parent   *node
	nlink    int
}

type openFile struct {
	n        *node
	off      int64
	app      bool
	rd, wr   bool
	sync     bool // O_SYNC: every write flushes (Profile.Crash only)
	isDir    bool
	dirNode  *node
	refBlock int
}

type openDir struct {
	n     *node
	names []string // snapshot at opendir/rewinddir
	pos   int
}

type mproc struct {
	cwd    *node
	umask  types.Perm
	uid    types.Uid
	gid    types.Gid
	fds    map[types.FD]*openFile
	dhs    map[types.DH]*openDir
	nextFD types.FD
	nextDH types.DH
}

// Memfs is the in-memory file system under test.
type Memfs struct {
	// mu makes each call atomic, so memfs can be driven by the concurrent
	// executor: concurrent calls linearise at their Apply, a legal τ point
	// between the observed call and return labels.
	mu         sync.Mutex
	prof       Profile
	root       *node
	procs      map[types.Pid]*mproc
	groups     map[types.Gid]map[types.Uid]bool
	usedBlocks int
	leaked     int

	// Persistence simulation (Profile.Crash only): the last-synced deep
	// copy of the tree plus one snapshot per unsynced mutating call, in
	// order. Kept structurally independent of the model's pending-effect
	// log so crash checking stays a genuine differential test.
	durable *memSnapshot
	pendLog []*memSnapshot
}

const blockSize = 4096

// NewMemfs builds an empty memfs with the given behaviour profile and one
// initial root process (pid 1).
func NewMemfs(prof Profile) *Memfs {
	fs := &Memfs{
		prof:   prof,
		procs:  make(map[types.Pid]*mproc),
		groups: make(map[types.Gid]map[types.Uid]bool),
	}
	fs.root = &node{
		dir:      true,
		mode:     0o755,
		children: make(map[string]*node),
	}
	fs.root.parent = fs.root
	fs.CreateProcess(1, types.RootUid, types.RootGid)
	if prof.Crash {
		fs.durable = fs.takeSnapshot()
	}
	return fs
}

// MemFactory returns a Factory producing fresh Memfs instances.
func MemFactory(prof Profile) Factory {
	return func() (FS, error) { return NewMemfs(prof), nil }
}

// Name implements FS.
func (fs *Memfs) Name() string { return fs.prof.Name }

// Close implements FS.
func (fs *Memfs) Close() error { return nil }

// CreateProcess implements FS.
func (fs *Memfs) CreateProcess(pid types.Pid, uid types.Uid, gid types.Gid) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.procs[pid] = &mproc{
		cwd:    fs.root,
		umask:  0o022,
		uid:    uid,
		gid:    gid,
		fds:    make(map[types.FD]*openFile),
		dhs:    make(map[types.DH]*openDir),
		nextFD: 3,
		nextDH: 1,
	}
}

// DestroyProcess implements FS.
func (fs *Memfs) DestroyProcess(pid types.Pid) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := fs.procs[pid]
	if p == nil {
		return
	}
	for fd := range p.fds {
		fs.closeFD(p, fd)
	}
	delete(fs.procs, pid)
}

func blocksFor(n int) int { return (n + blockSize - 1) / blockSize }

// chargeBlocks accounts bytes against the capacity limit; false = ENOSPC.
func (fs *Memfs) chargeBlocks(delta int) bool {
	if fs.prof.CapacityBlocks == 0 {
		return true
	}
	if delta > 0 && fs.usedBlocks+delta > fs.prof.CapacityBlocks {
		return false
	}
	fs.usedBlocks += delta
	if fs.usedBlocks < 0 {
		fs.usedBlocks = 0
	}
	return true
}

func (fs *Memfs) full() bool {
	return fs.prof.CapacityBlocks > 0 && fs.usedBlocks >= fs.prof.CapacityBlocks
}

// effectiveUmask applies the profile's umask mangling (§7.3.4 SSHFS).
func (fs *Memfs) effectiveUmask(p *mproc) types.Perm {
	if fs.prof.UmaskForce != nil {
		return *fs.prof.UmaskForce
	}
	return p.umask | fs.prof.UmaskORExtra
}

func (fs *Memfs) inGroup(uid types.Uid, gid types.Gid) bool {
	m, ok := fs.groups[gid]
	return ok && m[uid]
}

// access is memfs's own permission algorithm.
func (fs *Memfs) access(p *mproc, n *node, req types.AccessRequest) bool {
	if !fs.prof.CheckPerms || p.uid == types.RootUid {
		return true
	}
	class := 2
	switch {
	case n.uid == p.uid:
		class = 0
	case n.gid == p.gid || fs.inGroup(p.uid, n.gid):
		class = 1
	}
	return n.mode&req.Mask(class) != 0
}

func (fs *Memfs) sticky(p *mproc, parent, obj *node) bool {
	if !fs.prof.CheckPerms || p.uid == types.RootUid {
		return false
	}
	if parent.mode&types.PermISVTX == 0 {
		return false
	}
	return p.uid != parent.uid && p.uid != obj.uid
}

// mres is memfs's path resolution result.
type mres struct {
	err      types.Errno
	n        *node // nil when the leaf is missing
	parent   *node
	name     string
	trailing bool
	symLeaf  bool // leaf is an unfollowed symlink
	viaDot   bool // resolved through "." or ".." (no parent/name binding)
}

// resolve is memfs's independent path walker.
func (fs *Memfs) resolve(p *mproc, path string, followLast bool) mres {
	if path == "" {
		return mres{err: types.ENOENT}
	}
	if len(path) > types.PathMax {
		return mres{err: types.ENAMETOOLONG}
	}
	depth := 0
	var limit int
	if fs.prof.Platform == types.PlatformLinux {
		limit = 40
	} else {
		limit = 32
	}
	start := p.cwd
	if strings.HasPrefix(path, "/") {
		start = fs.root
	} else if !fs.connected(p.cwd) {
		comps := splitComps(path)
		if len(comps) > 0 && comps[0] != "." {
			return mres{err: types.ENOENT}
		}
	}
	comps := splitComps(path)
	trailing := strings.HasSuffix(path, "/") && strings.Trim(path, "/") != ""
	if len(comps) == 0 {
		return mres{n: fs.root, viaDot: true}
	}
	return fs.walk(p, start, comps, trailing, followLast, &depth, limit)
}

func splitComps(path string) []string {
	var out []string
	for _, c := range strings.Split(path, "/") {
		if c != "" {
			out = append(out, c)
		}
	}
	return out
}

func (fs *Memfs) connected(n *node) bool {
	seen := map[*node]bool{}
	for n != fs.root {
		if n == nil || seen[n] {
			return false
		}
		seen[n] = true
		par := n.parent
		if par == nil {
			return false
		}
		found := false
		for _, ch := range par.children {
			if ch == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
		n = par
	}
	return true
}

func (fs *Memfs) walk(p *mproc, cur *node, comps []string, trailing, followLast bool, depth *int, limit int) mres {
	for i := 0; i < len(comps); i++ {
		c := comps[i]
		last := i == len(comps)-1
		if len(c) > types.NameMax {
			return mres{err: types.ENAMETOOLONG}
		}
		if !fs.access(p, cur, types.AccessExec) {
			return mres{err: types.EACCES}
		}
		switch c {
		case ".":
			if last {
				return mres{n: cur, viaDot: true, trailing: trailing}
			}
			continue
		case "..":
			if cur != fs.root && !fs.connected(cur) {
				return mres{err: types.ENOENT}
			}
			cur = cur.parent
			if last {
				return mres{n: cur, viaDot: true, trailing: trailing}
			}
			continue
		}
		child, ok := cur.children[c]
		if !ok {
			if last {
				return mres{parent: cur, name: c, trailing: trailing}
			}
			return mres{err: types.ENOENT}
		}
		switch {
		case child.dir:
			if last {
				return mres{n: child, parent: cur, name: c, trailing: trailing}
			}
			cur = child
		case child.symlink:
			follow := !last || followLast
			if !follow {
				return mres{n: child, parent: cur, name: c, trailing: trailing, symLeaf: true}
			}
			*depth++
			if *depth > limit {
				return mres{err: types.ELOOP}
			}
			target := string(child.data)
			if target == "" {
				return mres{err: types.ENOENT}
			}
			next := cur
			if strings.HasPrefix(target, "/") {
				next = fs.root
			}
			tcomps := splitComps(target)
			ttrail := strings.HasSuffix(target, "/") && strings.Trim(target, "/") != ""
			all := append(append([]string(nil), tcomps...), comps[i+1:]...)
			ft := trailing
			if len(comps[i+1:]) == 0 {
				ft = trailing || ttrail
			}
			if len(all) == 0 {
				return mres{n: next, viaDot: true, trailing: ft}
			}
			return fs.walk(p, next, all, ft, followLast, depth, limit)
		default: // regular file
			if !last {
				return mres{err: types.ENOTDIR}
			}
			return mres{n: child, parent: cur, name: c, trailing: trailing}
		}
	}
	return mres{n: cur, viaDot: true}
}

func (fs *Memfs) closeFD(p *mproc, fd types.FD) {
	of, ok := p.fds[fd]
	if !ok {
		return
	}
	delete(p.fds, fd)
	if !of.isDir && of.n.nlink == 0 && !fs.anyOpen(of.n) {
		// last reference to an unlinked file: release its blocks
		fs.chargeBlocks(-blocksFor(len(of.n.data)))
	}
}

func (fs *Memfs) anyOpen(n *node) bool {
	for _, p := range fs.procs {
		for _, of := range p.fds {
			if of.n == n {
				return true
			}
		}
	}
	return false
}

func sortedNames(n *node) []string {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func err(e types.Errno) types.RetValue { return types.RvErr{Err: e} }

// trailingSlash reports a semantically significant trailing slash.
func trailingSlash(p string) bool {
	return strings.HasSuffix(p, "/") && strings.Trim(p, "/") != ""
}
