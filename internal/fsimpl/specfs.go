package fsimpl

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/osspec"
	"repro/internal/types"
)

// SpecFS determinizes the model and runs it as an implementation — the
// paper mounts previous SibylFS versions as prototype FUSE file systems the
// same way (§8, "Differential testing"). At each call it computes the
// allowed next states from os_trans and picks one deterministically
// (success preferred, then the smallest errno). Traces produced by SpecFS
// are by construction inside the model's envelope, which gives the test
// suite a self-check: the oracle must accept 100% of SpecFS traces.
type SpecFS struct {
	mu   sync.Mutex // linearises concurrent calls on the single model state
	name string
	st   *osspec.OsState
}

// NewSpecFS builds the determinized model for the given variant.
func NewSpecFS(name string, spec types.Spec) *SpecFS {
	return &SpecFS{name: name, st: osspec.NewOsState(spec)}
}

// SpecFactory returns a Factory producing fresh SpecFS instances.
func SpecFactory(name string, spec types.Spec) Factory {
	return func() (FS, error) { return NewSpecFS(name, spec), nil }
}

// Name implements FS.
func (fs *SpecFS) Name() string { return fs.name }

// Close implements FS.
func (fs *SpecFS) Close() error { return nil }

// CreateProcess implements FS.
func (fs *SpecFS) CreateProcess(pid types.Pid, uid types.Uid, gid types.Gid) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	next := osspec.Trans(fs.st, types.CreateLabel{Pid: pid, Uid: uid, Gid: gid})
	if len(next) > 0 {
		fs.st = next[0]
	}
}

// DestroyProcess implements FS.
func (fs *SpecFS) DestroyProcess(pid types.Pid) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	next := osspec.Trans(fs.st, types.DestroyLabel{Pid: pid})
	if len(next) > 0 {
		fs.st = next[0]
	}
}

// Crash implements CrashFS by asking the model itself for the remounted
// state in which the first keep pending effects survived. SpecFS is always
// quiescent between calls (Apply runs call → τ → return to completion), so
// no in-flight effects need resolving here.
func (fs *SpecFS) Crash(keep int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	next := osspec.CrashWithKeep(fs.st, keep)
	if next == nil {
		return fmt.Errorf("specfs %s: crash simulation requires Spec.Crash", fs.name)
	}
	fs.st = next
	return nil
}

// Apply implements FS: call → τ → pick one allowed return.
func (fs *SpecFS) Apply(pid types.Pid, cmd types.Command) types.RetValue {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	called := osspec.Trans(fs.st, types.CallLabel{Pid: pid, Cmd: cmd})
	if len(called) == 0 {
		return types.RvErr{Err: types.EINVAL}
	}
	cands := osspec.TauFor(called[0], pid)
	if len(cands) == 0 {
		return types.RvErr{Err: types.EINVAL}
	}
	// Deterministic choice: prefer a success over an error, then the
	// representation that sorts first; this mirrors "selecting one of the
	// many possible states at each step".
	type choice struct {
		rv   types.RetValue
		next *osspec.OsState
	}
	var choices []choice
	for _, c := range cands {
		for _, rv := range representativeReturns(c, pid) {
			after := osspec.Trans(c, types.ReturnLabel{Pid: pid, Ret: rv})
			if len(after) > 0 {
				choices = append(choices, choice{rv: rv, next: after[0]})
			}
		}
	}
	if len(choices) == 0 {
		return types.RvErr{Err: types.EINVAL}
	}
	sort.Slice(choices, func(i, j int) bool {
		ie, iErr := choices[i].rv.(types.RvErr)
		je, jErr := choices[j].rv.(types.RvErr)
		if iErr != jErr {
			return !iErr // successes first
		}
		if iErr {
			return ie.Err < je.Err
		}
		in, iNum := choices[i].rv.(types.RvNum)
		jn, jNum := choices[j].rv.(types.RvNum)
		if iNum && jNum && in.N != jn.N {
			return in.N > jn.N // prefer the complete write over a short one
		}
		return choices[i].rv.String() < choices[j].rv.String()
	})
	fs.st = choices[0].next
	return choices[0].rv
}

// representativeReturns enumerates concrete allowed returns of a candidate
// state (full reads/writes; every must entry and end-of-dir for readdir).
func representativeReturns(s *osspec.OsState, pid types.Pid) []types.RetValue {
	return osspec.ConcreteReturns(s, pid)
}
