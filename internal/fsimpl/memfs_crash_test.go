package fsimpl

import (
	"testing"

	"repro/internal/types"
)

func crashProfile() Profile {
	p := LinuxProfile("ext4")
	p.Crash = true
	return p
}

func mustRv(t *testing.T, rv types.RetValue) types.RetValue {
	t.Helper()
	if e, ok := rv.(types.RvErr); ok {
		t.Fatalf("unexpected error return: %s", e.Err)
	}
	return rv
}

// TestMemfsCrashKeepPrefixes pins the pending-log semantics: Crash(keep)
// restores the tree exactly keep effects past the last barrier, volatile
// state (processes, descriptors) is gone, and keep clamps to the log.
func TestMemfsCrashKeepPrefixes(t *testing.T) {
	for keep, want := range map[int][]string{
		0: {},
		1: {"/a"},
		2: {"/a", "/b"},
		9: {"/a", "/b"}, // clamped: everything pending survived
	} {
		fs := NewMemfs(crashProfile())
		mustRv(t, fs.Apply(1, types.Mkdir{Path: "/a", Perm: 0o755}))
		mustRv(t, fs.Apply(1, types.Mkdir{Path: "/b", Perm: 0o755}))
		if err := fs.Crash(keep); err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{"/a", "/b"} {
			rv := fs.Apply(1, types.Stat{Path: p})
			_, failed := rv.(types.RvErr)
			wantThere := false
			for _, w := range want {
				if w == p {
					wantThere = true
				}
			}
			if wantThere == failed {
				t.Fatalf("keep=%d: stat %s failed=%v, want present=%v", keep, p, failed, wantThere)
			}
		}
	}
}

// TestMemfsCrashBarriers: fsync and sync move the durable image, so a
// crash keeping nothing still shows everything up to the barrier.
func TestMemfsCrashBarriers(t *testing.T) {
	fs := NewMemfs(crashProfile())
	mustRv(t, fs.Apply(1, types.Mkdir{Path: "/before", Perm: 0o755}))
	mustRv(t, fs.Apply(1, types.Sync{}))
	mustRv(t, fs.Apply(1, types.Mkdir{Path: "/after", Perm: 0o755}))
	if err := fs.Crash(0); err != nil {
		t.Fatal(err)
	}
	if _, failed := fs.Apply(1, types.Stat{Path: "/before"}).(types.RvErr); failed {
		t.Fatal("pre-sync directory lost in crash")
	}
	if _, failed := fs.Apply(1, types.Stat{Path: "/after"}).(types.RvErr); !failed {
		t.Fatal("post-sync directory survived a keep-nothing crash")
	}
	// Descriptors do not survive a crash: the remounted pid 1 is fresh.
	mustRv(t, fs.Apply(1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}))
	if err := fs.Crash(9); err != nil {
		t.Fatal(err)
	}
	if _, failed := fs.Apply(1, types.Write{FD: 3, Data: []byte("x"), Size: 1}).(types.RvErr); !failed {
		t.Fatal("descriptor survived the power cycle")
	}
}

// TestMemfsOSyncWriteDurable is the dormant-flag regression pin on the
// implementation side: a write through an O_SYNC descriptor must survive
// a keep-nothing crash, and an identical plain write must not — if O_SYNC
// goes back to being parsed-and-ignored, both subcases fail.
func TestMemfsOSyncWriteDurable(t *testing.T) {
	run := func(flags types.OpenFlags) bool {
		fs := NewMemfs(crashProfile())
		mustRv(t, fs.Apply(1, types.Open{Path: "/f", Flags: flags, Perm: 0o644, HasPerm: true}))
		mustRv(t, fs.Apply(1, types.Write{FD: 3, Data: []byte("x"), Size: 1}))
		if err := fs.Crash(0); err != nil {
			t.Fatal(err)
		}
		rv := fs.Apply(1, types.Read{FD: 3, Size: 8}) // stale fd: must fail either way
		if _, failed := rv.(types.RvErr); !failed {
			t.Fatal("pre-crash descriptor usable after remount")
		}
		mustRv(t, fs.Apply(1, types.Open{Path: "/", Flags: types.ORdonly}))
		rv = fs.Apply(1, types.Stat{Path: "/f"})
		_, failed := rv.(types.RvErr)
		return !failed
	}
	if !run(types.OCreat | types.OWronly | types.OSync) {
		t.Fatal("O_SYNC write lost in crash: the flag is dormant again")
	}
	if run(types.OCreat | types.OWronly) {
		t.Fatal("plain write survived a keep-nothing crash: every write self-flushes")
	}
}

// TestMemfsFsyncReturns pins the call surface: fsync on a live descriptor
// succeeds, on a stale one is EBADF, and sync never fails.
func TestMemfsFsyncReturns(t *testing.T) {
	fs := NewMemfs(crashProfile())
	mustRv(t, fs.Apply(1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}))
	mustRv(t, fs.Apply(1, types.Fsync{FD: 3}))
	mustRv(t, fs.Apply(1, types.Sync{}))
	rv := fs.Apply(1, types.Fsync{FD: 9})
	if e, ok := rv.(types.RvErr); !ok || e.Err != types.EBADF {
		t.Fatalf("fsync on stale fd returned %s, want EBADF", rv)
	}
	// Crash simulation outside the crash profile is an error, not a wipe.
	plain := NewMemfs(LinuxProfile("ext4"))
	if err := plain.Crash(0); err == nil {
		t.Fatal("Crash succeeded without the crash profile")
	}
}

// TestMemfsCrashPreservesHardLinks: snapshots deep-copy the tree but must
// preserve hard-link aliasing — writing through one name after the crash
// shows through the other.
func TestMemfsCrashPreservesHardLinks(t *testing.T) {
	fs := NewMemfs(crashProfile())
	mustRv(t, fs.Apply(1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}))
	mustRv(t, fs.Apply(1, types.Write{FD: 3, Data: []byte("v1"), Size: 2}))
	mustRv(t, fs.Apply(1, types.Close{FD: 3}))
	mustRv(t, fs.Apply(1, types.Link{Src: "/f", Dst: "/g"}))
	mustRv(t, fs.Apply(1, types.Sync{}))
	if err := fs.Crash(0); err != nil {
		t.Fatal(err)
	}
	wfd := mustRv(t, fs.Apply(1, types.Open{Path: "/f", Flags: types.OWronly})).(types.RvFD)
	mustRv(t, fs.Apply(1, types.Write{FD: wfd.FD, Data: []byte("v2"), Size: 2}))
	mustRv(t, fs.Apply(1, types.Close{FD: wfd.FD}))
	rfd := mustRv(t, fs.Apply(1, types.Open{Path: "/g", Flags: types.ORdonly})).(types.RvFD)
	rv := mustRv(t, fs.Apply(1, types.Read{FD: rfd.FD, Size: 8}))
	data, ok := rv.(types.RvBytes)
	if !ok || string(data.Data) != "v2" {
		t.Fatalf("read through hard link after crash: %s, want v2 (aliasing lost in snapshot)", rv)
	}
}

// TestSpecFSCrashMirrorsModel: the determinized model implements CrashFS
// through the oracle's own persistence layer, so its post-crash answers
// must agree with memfs's for the same keep count.
func TestSpecFSCrashMirrorsModel(t *testing.T) {
	spec := types.DefaultSpec()
	spec.Crash = true
	workload := func(fs FS) {
		mustRv(t, fs.Apply(1, types.Mkdir{Path: "/a", Perm: 0o755}))
		mustRv(t, fs.Apply(1, types.Sync{}))
		mustRv(t, fs.Apply(1, types.Mkdir{Path: "/b", Perm: 0o755}))
		mustRv(t, fs.Apply(1, types.Mkdir{Path: "/c", Perm: 0o755}))
	}
	for keep := 0; keep <= 3; keep++ {
		sfs := NewSpecFS("spec", spec)
		mfs := NewMemfs(crashProfile())
		workload(sfs)
		workload(mfs)
		if err := sfs.Crash(keep); err != nil {
			t.Fatal(err)
		}
		if err := mfs.Crash(keep); err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{"/a", "/b", "/c"} {
			_, sErr := sfs.Apply(1, types.Stat{Path: p}).(types.RvErr)
			_, mErr := mfs.Apply(1, types.Stat{Path: p}).(types.RvErr)
			if sErr != mErr {
				t.Fatalf("keep=%d stat %s: specfs failed=%v, memfs failed=%v", keep, p, sErr, mErr)
			}
		}
	}
	// Outside crash mode SpecFS.Crash must refuse.
	plain := NewSpecFS("spec", types.DefaultSpec())
	if err := plain.Crash(0); err == nil {
		t.Fatal("SpecFS.Crash succeeded without Spec.Crash")
	}
}
