package fsimpl

import "repro/internal/types"

// FS is the libc-level interface the test executor drives. Apply performs
// one call on behalf of a (model) process and returns the observation that
// goes into the trace. Implementations normalise resource handles: file
// descriptors count up from 3 and directory handles from 1, per process,
// exactly as the model does, so that handle values are deterministic.
type FS interface {
	// Name identifies the configuration ("ext4", "posixovl_vfat", ...).
	Name() string
	// Apply executes cmd for pid and returns the observed value.
	Apply(pid types.Pid, cmd types.Command) types.RetValue
	// CreateProcess registers a new process with the given credentials.
	CreateProcess(pid types.Pid, uid types.Uid, gid types.Gid)
	// DestroyProcess removes a process, closing its descriptors.
	DestroyProcess(pid types.Pid)
	// Close releases external resources (temp dirs for hostfs).
	Close() error
}

// Factory creates a fresh, empty file system instance for one test script;
// every script starts from an empty file system (§2).
type Factory func() (FS, error)

// CrashFS is implemented by backends that can simulate a power failure and
// remount. Crash drops all but the first keep pending (unsynced) durable
// effects, discards every process, descriptor and directory handle, and
// comes back up with a fresh initial process — the executor re-drives
// subsequent script steps against the remounted state. keep is clamped to
// the length of the pending-effect log. Backends that cannot crash (the
// real host file system) simply do not implement the interface.
type CrashFS interface {
	Crash(keep int) error
}
