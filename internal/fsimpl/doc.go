// Package fsimpl contains the file systems under test: an independent
// in-memory POSIX implementation (memfs) with per-platform behaviour
// profiles and the injected defects from the paper's survey (§7.3), the
// real host file system (hostfs), and a determinized form of the model
// itself (specfs, playing the role of the paper's "SibylFS mounted as a
// FUSE file system").
package fsimpl
