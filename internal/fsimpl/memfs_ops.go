package fsimpl

import (
	"strings"

	"repro/internal/types"
)

// Apply implements FS: one libc call, deterministic behaviour per profile.
// The whole call runs under fs.mu, so concurrent callers linearise here.
// Under the crash profile every call is followed by a persistence note, so
// the pending log gains (at most) one snapshot per mutating call.
func (fs *Memfs) Apply(pid types.Pid, cmd types.Command) types.RetValue {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	rv := fs.applyLocked(pid, cmd)
	fs.notePersist()
	return rv
}

func (fs *Memfs) applyLocked(pid types.Pid, cmd types.Command) types.RetValue {
	p := fs.procs[pid]
	if p == nil {
		return err(types.EINVAL)
	}
	switch c := cmd.(type) {
	case types.Mkdir:
		return fs.mkdir(p, c)
	case types.Rmdir:
		return fs.rmdir(p, c)
	case types.Link:
		return fs.link(p, c)
	case types.Unlink:
		return fs.unlink(p, c)
	case types.Rename:
		return fs.rename(p, c)
	case types.Symlink:
		return fs.symlink(p, c)
	case types.Readlink:
		return fs.readlink(p, c)
	case types.Stat:
		return fs.stat(p, c.Path, true)
	case types.Lstat:
		return fs.stat(p, c.Path, false)
	case types.Truncate:
		return fs.truncate(p, c)
	case types.Chmod:
		return fs.chmod(p, c)
	case types.Chown:
		return fs.chown(p, c)
	case types.Chdir:
		return fs.chdir(p, c)
	case types.Umask:
		old := p.umask
		p.umask = c.Mask & types.PermMask
		return types.RvPerm{Perm: old}
	case types.AddUserToGroup:
		m, ok := fs.groups[c.Gid]
		if !ok {
			m = make(map[types.Uid]bool)
			fs.groups[c.Gid] = m
		}
		m[c.Uid] = true
		return types.RvNone{}
	case types.Open:
		return fs.open(p, c)
	case types.Close:
		return fs.close(p, c)
	case types.Read:
		return fs.read(p, c.FD, c.Size, -1, true)
	case types.Pread:
		return fs.read(p, c.FD, c.Size, c.Off, false)
	case types.Write:
		return fs.write(p, c.FD, c.Data, c.Size, -1, true)
	case types.Pwrite:
		return fs.write(p, c.FD, c.Data, c.Size, c.Off, false)
	case types.Lseek:
		return fs.lseek(p, c)
	case types.Fsync:
		if _, ok := p.fds[c.FD]; !ok {
			return err(types.EBADF)
		}
		fs.notePersist()
		fs.flushPersist()
		return types.RvNone{}
	case types.Sync:
		fs.notePersist()
		fs.flushPersist()
		return types.RvNone{}
	case types.Opendir:
		return fs.opendir(p, c)
	case types.Readdir:
		return fs.readdir(p, c)
	case types.Closedir:
		return fs.closedir(p, c)
	case types.Rewinddir:
		return fs.rewinddir(p, c)
	}
	return err(types.ENOSYS)
}

func (fs *Memfs) mkdir(p *mproc, c types.Mkdir) types.RetValue {
	r := fs.resolve(p, c.Path, false)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n != nil {
		if !r.n.dir && r.trailing && !r.symLeaf && fs.prof.Platform != types.PlatformLinux {
			return err(types.ENOTDIR)
		}
		return err(types.EEXIST)
	}
	if !fs.access(p, r.parent, types.AccessWrite) || !fs.access(p, r.parent, types.AccessExec) {
		return err(types.EACCES)
	}
	if r.parent != fs.root && !fs.connected(r.parent) {
		return err(types.ENOENT)
	}
	nd := &node{
		dir:      true,
		mode:     c.Perm &^ fs.effectiveUmask(p) & types.PermMask,
		uid:      fs.creatorUid(p),
		gid:      p.gid,
		children: make(map[string]*node),
		parent:   r.parent,
	}
	r.parent.children[r.name] = nd
	return types.RvNone{}
}

func (fs *Memfs) creatorUid(p *mproc) types.Uid {
	if fs.prof.CreateOwnerRoot {
		return types.RootUid
	}
	return p.uid
}

func (fs *Memfs) rmdir(p *mproc, c types.Rmdir) types.RetValue {
	r := fs.resolve(p, c.Path, false)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n == nil {
		return err(types.ENOENT)
	}
	if !r.n.dir {
		return err(types.ENOTDIR)
	}
	if r.n == fs.root {
		return err(types.EBUSY)
	}
	if r.viaDot {
		if !fs.connected(r.n) {
			return err(types.ENOENT)
		}
		return err(types.EINVAL)
	}
	if len(r.n.children) > 0 {
		return err(types.ENOTEMPTY)
	}
	if !fs.access(p, r.parent, types.AccessWrite) || !fs.access(p, r.parent, types.AccessExec) {
		return err(types.EACCES)
	}
	if fs.sticky(p, r.parent, r.n) {
		return err(types.EPERM)
	}
	delete(r.parent.children, r.name)
	return types.RvNone{}
}

func (fs *Memfs) link(p *mproc, c types.Link) types.RetValue {
	followSrc := fs.prof.Platform == types.PlatformOSX
	src := fs.resolve(p, c.Src, followSrc)
	if src.err != 0 {
		return err(src.err)
	}
	if src.n == nil {
		return err(types.ENOENT)
	}
	if src.n.dir {
		return err(types.EPERM)
	}
	if src.symLeaf && fs.prof.LinkToSymlinkEPERM {
		return err(types.EPERM) // HFS+ on Linux (§7.3.2)
	}
	if src.trailing && !src.n.dir {
		return err(types.ENOTDIR)
	}
	dst := fs.resolve(p, c.Dst, false)
	if dst.err != 0 {
		return err(dst.err)
	}
	if dst.n != nil {
		// Linux reports EEXIST even for trailing-slash destinations
		// (§7.3.2: link /dir/ /f.txt/ → EEXIST, not allowed by POSIX).
		if dst.trailing && !dst.n.dir && fs.prof.Platform != types.PlatformLinux {
			return err(types.ENOTDIR)
		}
		return err(types.EEXIST)
	}
	if dst.trailing {
		return err(types.ENOENT)
	}
	if !fs.access(p, dst.parent, types.AccessWrite) || !fs.access(p, dst.parent, types.AccessExec) {
		return err(types.EACCES)
	}
	if dst.parent != fs.root && !fs.connected(dst.parent) {
		return err(types.ENOENT)
	}
	dst.parent.children[dst.name] = src.n
	src.n.nlink++
	return types.RvNone{}
}

func (fs *Memfs) unlink(p *mproc, c types.Unlink) types.RetValue {
	r := fs.resolve(p, c.Path, false)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n == nil {
		return err(types.ENOENT)
	}
	if r.n.dir {
		return err(fs.prof.UnlinkDirErrno)
	}
	if r.trailing {
		return err(types.ENOTDIR)
	}
	if !fs.access(p, r.parent, types.AccessWrite) || !fs.access(p, r.parent, types.AccessExec) {
		return err(types.EACCES)
	}
	if fs.sticky(p, r.parent, r.n) {
		return err(types.EPERM)
	}
	fs.removeFileEntry(r.parent, r.name, r.n, false)
	return types.RvNone{}
}

// removeFileEntry drops one link to n; leak=true simulates the posixovl
// link-count bug (the link count is not decremented and the blocks are
// never reclaimed — §7.3.5).
func (fs *Memfs) removeFileEntry(parent *node, name string, n *node, leak bool) {
	delete(parent.children, name)
	if leak {
		fs.leaked += blocksFor(len(n.data))
		return
	}
	n.nlink--
	if n.nlink <= 0 && !fs.anyOpen(n) {
		fs.chargeBlocks(-blocksFor(len(n.data)))
	}
}

func (fs *Memfs) rename(p *mproc, c types.Rename) types.RetValue {
	src := fs.resolve(p, c.Src, false)
	if src.err != 0 {
		return err(src.err)
	}
	if src.n == nil {
		return err(types.ENOENT)
	}
	// Trailing slash on either path requires the renamed object to be a
	// directory; the kernel checks this before even resolving the
	// destination (Linux-observed: rename("f/","") is ENOTDIR not ENOENT).
	if !src.n.dir && (trailingSlash(c.Src) || trailingSlash(c.Dst)) {
		return err(types.ENOTDIR)
	}
	dst := fs.resolve(p, c.Dst, false)
	if dst.err != 0 {
		return err(dst.err)
	}
	if src.n != nil && dst.n != nil && src.n == dst.n {
		return types.RvNone{} // same object: no-op
	}
	if src.n == fs.root || dst.n == fs.root {
		if fs.prof.Platform == types.PlatformOSX {
			return err(types.EISDIR) // §7.3.2: OS X deviation
		}
		return err(types.EBUSY)
	}
	if src.viaDot || (dst.n != nil && dst.viaDot) {
		return err(types.EINVAL)
	}
	if src.trailing && !src.n.dir {
		return err(types.ENOTDIR)
	}
	if dst.n != nil && dst.trailing && !dst.n.dir {
		return err(types.ENOTDIR)
	}
	if dst.n == nil && dst.trailing && !src.n.dir {
		return err(types.ENOTDIR)
	}
	if !src.n.dir && dst.n != nil && dst.n.dir {
		return err(types.EISDIR)
	}
	if src.n.dir && dst.n != nil && !dst.n.dir {
		return err(types.ENOTDIR)
	}
	if src.n.dir && isAncestorNode(src.n, dst.parent) {
		return err(types.EINVAL)
	}
	if src.n.dir && dst.n != nil && isAncestorNode(src.n, dst.n) {
		return err(types.EINVAL)
	}
	if src.n.dir && dst.n != nil && dst.n.dir && len(dst.n.children) > 0 {
		return err(types.ENOTEMPTY)
	}
	if !fs.access(p, src.parent, types.AccessWrite) || !fs.access(p, src.parent, types.AccessExec) {
		return err(types.EACCES)
	}
	if !fs.access(p, dst.parent, types.AccessWrite) || !fs.access(p, dst.parent, types.AccessExec) {
		return err(types.EACCES)
	}
	if fs.sticky(p, src.parent, src.n) {
		return err(types.EPERM)
	}
	if dst.parent != fs.root && !fs.connected(dst.parent) {
		return err(types.ENOENT)
	}
	// Perform the move, replacing the destination if present.
	if dst.n != nil {
		if dst.n.dir {
			delete(dst.parent.children, dst.name)
		} else {
			fs.removeFileEntry(dst.parent, dst.name, dst.n, fs.prof.RenameLinkCountLeak)
		}
	}
	delete(src.parent.children, src.name)
	dst.parent.children[dst.name] = src.n
	if src.n.dir {
		src.n.parent = dst.parent
	}
	return types.RvNone{}
}

func isAncestorNode(a, b *node) bool {
	if a == nil || b == nil || a == b {
		return a != nil && a == b
	}
	cur := b
	for cur != nil && cur.parent != cur {
		cur = cur.parent
		if cur == a {
			return true
		}
	}
	return false
}

func (fs *Memfs) symlink(p *mproc, c types.Symlink) types.RetValue {
	if c.Target == "" {
		return err(types.ENOENT)
	}
	r := fs.resolve(p, c.Linkpath, false)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n != nil {
		return err(types.EEXIST)
	}
	if r.trailing {
		return err(types.ENOENT)
	}
	if !fs.access(p, r.parent, types.AccessWrite) || !fs.access(p, r.parent, types.AccessExec) {
		return err(types.EACCES)
	}
	if r.parent != fs.root && !fs.connected(r.parent) {
		return err(types.ENOENT)
	}
	mode := types.Perm(0o777)
	if fs.prof.Platform == types.PlatformOSX || fs.prof.Platform == types.PlatformFreeBSD {
		mode = 0o755 &^ fs.effectiveUmask(p)
	}
	nd := &node{
		symlink: true,
		mode:    mode,
		uid:     fs.creatorUid(p),
		gid:     p.gid,
		data:    []byte(c.Target),
		nlink:   1,
	}
	r.parent.children[r.name] = nd
	return types.RvNone{}
}

func (fs *Memfs) readlink(p *mproc, c types.Readlink) types.RetValue {
	// The OS X §7.3.2 quirk: readlink("s2/") where s2 → s1 → dir returns
	// the contents of s1 rather than EINVAL. Detect the shape before
	// normal resolution.
	if fs.prof.SymlinkTrailingReadsLink {
		if v, ok := fs.osxReadlinkQuirk(p, c.Path); ok {
			return v
		}
	}
	if trailingSlash(c.Path) {
		r := fs.resolve(p, c.Path, true)
		switch {
		case r.err != 0:
			return err(r.err)
		case r.n == nil:
			return err(types.ENOENT)
		case r.n.dir:
			return err(types.EINVAL)
		default:
			return err(types.ENOTDIR)
		}
	}
	r := fs.resolve(p, c.Path, false)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n == nil {
		return err(types.ENOENT)
	}
	if !r.n.symlink {
		return err(types.EINVAL)
	}
	return types.RvBytes{Data: append([]byte(nil), r.n.data...)}
}

// osxReadlinkQuirk implements the symlink-to-symlink trailing-slash
// behaviour observed on OS X.
func (fs *Memfs) osxReadlinkQuirk(p *mproc, path string) (types.RetValue, bool) {
	if len(path) < 2 || path[len(path)-1] != '/' {
		return nil, false
	}
	bare := fs.resolve(p, path[:len(path)-1], false)
	if bare.err != 0 || bare.n == nil || !bare.n.symlink {
		return nil, false
	}
	// The outer path is a symlink; if its target is itself a symlink,
	// OS X returns the inner symlink's contents.
	tgt := fs.resolve(p, string(bare.n.data), false)
	if tgt.err == 0 && tgt.n != nil && tgt.n.symlink {
		return types.RvBytes{Data: append([]byte(nil), tgt.n.data...)}, true
	}
	return nil, false
}

func (fs *Memfs) stat(p *mproc, path string, follow bool) types.RetValue {
	if trailingSlash(path) {
		follow = true // lstat("s/") follows the symlink (Linux-observed)
	}
	r := fs.resolve(p, path, follow)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n == nil {
		return err(types.ENOENT)
	}
	if r.trailing && !r.n.dir && !r.n.symlink {
		return err(types.ENOTDIR)
	}
	return types.RvStats{Stats: fs.statsOf(r.n)}
}

func (fs *Memfs) statsOf(n *node) types.Stats {
	st := types.Stats{Perm: n.mode, Uid: n.uid, Gid: n.gid}
	switch {
	case n.dir:
		st.Kind = types.KindDir
		st.Size = 0
		if fs.prof.FlatDirNlink {
			st.Nlink = 1 // Btrfs/SSHFS: no directory link counts (§7.3.2)
		} else {
			nl := 2
			for _, ch := range n.children {
				if ch.dir {
					nl++
				}
			}
			st.Nlink = nl
		}
	case n.symlink:
		st.Kind = types.KindSymlink
		st.Size = int64(len(n.data))
		st.Nlink = n.nlink
	default:
		st.Kind = types.KindFile
		st.Size = int64(len(n.data))
		st.Nlink = n.nlink
	}
	return st
}

func (fs *Memfs) truncate(p *mproc, c types.Truncate) types.RetValue {
	if c.Len < 0 {
		return err(types.EINVAL)
	}
	r := fs.resolve(p, c.Path, true)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n == nil {
		return err(types.ENOENT)
	}
	if r.n.dir {
		return err(types.EISDIR)
	}
	if r.trailing {
		return err(types.ENOTDIR)
	}
	if !fs.access(p, r.n, types.AccessWrite) {
		return err(types.EACCES)
	}
	if !fs.resize(r.n, c.Len) {
		return err(types.ENOSPC)
	}
	return types.RvNone{}
}

func (fs *Memfs) resize(n *node, size int64) bool {
	cur := int64(len(n.data))
	delta := blocksFor(int(size)) - blocksFor(int(cur))
	if !fs.chargeBlocks(delta) {
		return false
	}
	switch {
	case size < cur:
		n.data = n.data[:size]
	case size > cur:
		n.data = append(n.data, make([]byte, size-cur)...)
	}
	return true
}

func (fs *Memfs) chmod(p *mproc, c types.Chmod) types.RetValue {
	if fs.prof.ChmodUnsupported {
		return err(types.EOPNOTSUPP) // HFS+ on Trusty (§7.3.4)
	}
	r := fs.resolve(p, c.Path, true)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n == nil {
		return err(types.ENOENT)
	}
	if r.trailing && !r.n.dir && !r.n.symlink {
		return err(types.ENOTDIR)
	}
	if fs.prof.CheckPerms && p.uid != types.RootUid && p.uid != r.n.uid {
		return err(types.EPERM)
	}
	r.n.mode = c.Perm & types.PermMask
	return types.RvNone{}
}

func (fs *Memfs) chown(p *mproc, c types.Chown) types.RetValue {
	r := fs.resolve(p, c.Path, true)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n == nil {
		return err(types.ENOENT)
	}
	if r.trailing && !r.n.dir {
		return err(types.ENOTDIR)
	}
	if fs.prof.CheckPerms && p.uid != types.RootUid {
		ownerGroup := p.uid == r.n.uid && c.Uid == r.n.uid &&
			(c.Gid == p.gid || fs.inGroup(p.uid, c.Gid))
		if !ownerGroup {
			return err(types.EPERM)
		}
	}
	r.n.uid, r.n.gid = c.Uid, c.Gid
	return types.RvNone{}
}

func (fs *Memfs) chdir(p *mproc, c types.Chdir) types.RetValue {
	r := fs.resolve(p, c.Path, true)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n == nil {
		return err(types.ENOENT)
	}
	if !r.n.dir {
		return err(types.ENOTDIR)
	}
	if !fs.access(p, r.n, types.AccessExec) {
		return err(types.EACCES)
	}
	p.cwd = r.n
	return types.RvNone{}
}

func (fs *Memfs) open(p *mproc, c types.Open) types.RetValue {
	fl := c.Flags
	// The kernel's accmode 3 (O_WRONLY|O_RDWR): the open proceeds with
	// read+write permission checks but yields a descriptor that can
	// neither read nor write (Linux-observed).
	accmode3 := fl.Has(types.OWronly) && fl.Has(types.ORdwr)
	fdRead, fdWrite := fl.Readable(), fl.Writable()
	if accmode3 {
		fdRead, fdWrite = false, false
	}
	// Fig 8, OpenZFS on OS X: creating a file while the cwd is a
	// disconnected directory spins the process; the harness watchdog
	// records the hang as EINTR (see Profile.SpinOnDisconnectedCreate).
	if fs.prof.SpinOnDisconnectedCreate && fl.Has(types.OCreat) &&
		c.Path != "" && !fs.connected(p.cwd) {
		return err(types.EINTR)
	}
	if fl.Has(types.OCreat) && fl.Has(types.ODirectory) && fs.prof.Platform == types.PlatformLinux {
		return err(types.EINVAL) // Linux rejects the combination before path lookup
	}
	if fl.Has(types.OCreat) && fs.prof.Platform == types.PlatformLinux &&
		len(c.Path) > 0 && c.Path[len(c.Path)-1] == '/' && strings.Trim(c.Path, "/") != "" {
		return err(types.EISDIR) // Linux: creation-style open of "x/" is EISDIR
	}
	follow := !(fl.Has(types.ONofollow) || (fl.Has(types.OCreat) && fl.Has(types.OExcl)))
	if trailingSlash(c.Path) {
		follow = true // trailing slash overrides O_NOFOLLOW (Linux-observed)
	}
	r := fs.resolve(p, c.Path, follow)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n != nil {
		if fl.Has(types.OCreat) && fl.Has(types.OExcl) {
			if r.symLeaf && fs.prof.FreeBSDSymlinkReplaceBug && fl.Has(types.ODirectory) {
				// §7.3.2: FreeBSD returns ENOTDIR and *replaces the
				// symlink with a new file*, breaking the POSIX invariant
				// that failing calls leave the state unchanged.
				nd := &node{
					mode:  0o644 &^ fs.effectiveUmask(p),
					uid:   fs.creatorUid(p),
					gid:   p.gid,
					nlink: 1,
				}
				r.parent.children[r.name] = nd
				return err(types.ENOTDIR)
			}
			return err(types.EEXIST)
		}
		if r.symLeaf {
			if fl.Has(types.ODirectory) {
				return err(types.ENOTDIR) // O_DIRECTORY outranks ELOOP
			}
			return err(types.ELOOP) // O_NOFOLLOW
		}
		if r.n.dir {
			if fl.Has(types.OCreat) || fl.Writable() || fl.Has(types.OTrunc) {
				return err(types.EISDIR)
			}
			if !fs.access(p, r.n, types.AccessRead) {
				return err(types.EACCES)
			}
			return fs.allocFD(p, &openFile{n: r.n, isDir: true, dirNode: r.n, rd: true})
		}
		if fl.Has(types.ODirectory) {
			return err(types.ENOTDIR)
		}
		if r.trailing {
			return err(types.ENOTDIR)
		}
		if (fl.Readable() || accmode3) && !fs.access(p, r.n, types.AccessRead) {
			return err(types.EACCES)
		}
		if fl.Writable() && !fs.access(p, r.n, types.AccessWrite) {
			return err(types.EACCES)
		}
		if fl.Has(types.OTrunc) && (fl.Writable() || fs.prof.Platform == types.PlatformLinux) {
			fs.resize(r.n, 0) // Linux truncates even on O_RDONLY|O_TRUNC
		}
		return fs.allocFD(p, &openFile{
			n: r.n, app: fl.Has(types.OAppend), rd: fdRead, wr: fdWrite,
			sync: fl.Has(types.OSync),
		})
	}
	// Missing leaf.
	if !fl.Has(types.OCreat) {
		return err(types.ENOENT)
	}
	if r.trailing {
		return err(types.EISDIR)
	}
	if !fs.access(p, r.parent, types.AccessWrite) || !fs.access(p, r.parent, types.AccessExec) {
		return err(types.EACCES)
	}
	if r.parent != fs.root && !fs.connected(r.parent) {
		return err(types.ENOENT)
	}
	if fs.full() {
		// posixovl on a leaked-full volume: open(O_CREAT) fails ENOENT
		// (the observed Linux 3.19 failure mode, §7.3.5).
		return err(types.ENOENT)
	}
	nd := &node{
		mode:  c.Perm &^ fs.effectiveUmask(p) & types.PermMask,
		uid:   fs.creatorUid(p),
		gid:   p.gid,
		nlink: 1,
	}
	r.parent.children[r.name] = nd
	return fs.allocFD(p, &openFile{
		n: nd, app: fl.Has(types.OAppend), rd: fdRead, wr: fdWrite,
		sync: fl.Has(types.OSync),
	})
}

func (fs *Memfs) allocFD(p *mproc, of *openFile) types.RetValue {
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = of
	return types.RvFD{FD: fd}
}

func (fs *Memfs) close(p *mproc, c types.Close) types.RetValue {
	if _, ok := p.fds[c.FD]; !ok {
		return err(types.EBADF)
	}
	fs.closeFD(p, c.FD)
	return types.RvNone{}
}

func (fs *Memfs) read(p *mproc, fd types.FD, size, at int64, seq bool) types.RetValue {
	of, ok := p.fds[fd]
	if !ok {
		return err(types.EBADF)
	}
	if of.isDir {
		return err(types.EISDIR)
	}
	if !of.rd {
		return err(types.EBADF)
	}
	if size < 0 {
		return err(types.EINVAL)
	}
	if !seq && at < 0 {
		return err(types.EINVAL)
	}
	pos := of.off
	if !seq {
		pos = at
	}
	data := of.n.data
	if pos >= int64(len(data)) {
		return types.RvBytes{Data: nil}
	}
	end := pos + size
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	out := append([]byte(nil), data[pos:end]...)
	if seq {
		of.off = end
	}
	return types.RvBytes{Data: out}
}

func (fs *Memfs) write(p *mproc, fd types.FD, data []byte, size, at int64, seq bool) types.RetValue {
	if size >= 0 && size < int64(len(data)) {
		data = data[:size]
	}
	of, ok := p.fds[fd]
	if !ok {
		return err(types.EBADF)
	}
	if of.isDir || !of.wr {
		if len(data) == 0 && fs.prof.Platform == types.PlatformLinux && !of.isDir {
			return types.RvNum{N: 0} // Linux: zero-length write to RO fd succeeds
		}
		return err(types.EBADF)
	}
	if size < 0 {
		return err(types.EINVAL)
	}
	if !seq && at < 0 {
		if fs.prof.PwriteNegativeUnderflow {
			// §7.3.4: the OS X VFS treats the negative offset as a huge
			// unsigned value; the process gets SIGXFSZ, which the harness
			// observes as EFBIG instead of the POSIX-required EINVAL.
			return err(types.EFBIG)
		}
		return err(types.EINVAL)
	}
	if len(data) == 0 {
		return types.RvNum{N: 0} // zero-length writes have no effect
	}
	pos := at
	if seq {
		pos = of.off
		if of.app && !fs.prof.OAppendBroken {
			pos = int64(len(of.n.data))
		}
	} else if of.app && fs.prof.OAppendPwriteAppends && !fs.prof.OAppendBroken {
		pos = int64(len(of.n.data)) // Linux convention (§7.3.3)
	}
	end := pos + int64(len(data))
	if end > int64(len(of.n.data)) {
		delta := blocksFor(int(end)) - blocksFor(len(of.n.data))
		if !fs.chargeBlocks(delta) {
			return err(types.ENOSPC)
		}
		of.n.data = append(of.n.data, make([]byte, end-int64(len(of.n.data)))...)
	}
	copy(of.n.data[pos:end], data)
	if seq {
		of.off = end
	}
	if of.sync {
		// O_SYNC: this write (and, in the global-barrier model, anything
		// still pending before it) is durable before the call returns.
		fs.notePersist()
		fs.flushPersist()
	}
	return types.RvNum{N: int64(len(data))}
}

func (fs *Memfs) lseek(p *mproc, c types.Lseek) types.RetValue {
	of, ok := p.fds[c.FD]
	if !ok {
		return err(types.EBADF)
	}
	var base int64
	switch c.Whence {
	case types.SeekSet:
		base = 0
	case types.SeekCur:
		base = of.off
	case types.SeekEnd:
		base = int64(len(of.n.data))
	default:
		return err(types.EINVAL)
	}
	target := base + c.Off
	if target < 0 {
		return err(types.EINVAL)
	}
	of.off = target
	return types.RvNum{N: target}
}

func (fs *Memfs) opendir(p *mproc, c types.Opendir) types.RetValue {
	r := fs.resolve(p, c.Path, true)
	if r.err != 0 {
		return err(r.err)
	}
	if r.n == nil {
		return err(types.ENOENT)
	}
	if !r.n.dir {
		return err(types.ENOTDIR)
	}
	if !fs.access(p, r.n, types.AccessRead) {
		return err(types.EACCES)
	}
	dh := p.nextDH
	p.nextDH++
	p.dhs[dh] = &openDir{n: r.n, names: sortedNames(r.n)}
	return types.RvDH{DH: dh}
}

func (fs *Memfs) readdir(p *mproc, c types.Readdir) types.RetValue {
	od, ok := p.dhs[c.DH]
	if !ok {
		return err(types.EBADF)
	}
	// Snapshot semantics: entries captured at opendir/rewinddir; entries
	// deleted since are skipped, entries added since are not reported.
	// Both choices are inside the model's must/may envelope.
	for od.pos < len(od.names) {
		name := od.names[od.pos]
		od.pos++
		if _, present := od.n.children[name]; present {
			return types.RvDirent{Name: name}
		}
	}
	return types.RvDirent{End: true}
}

func (fs *Memfs) closedir(p *mproc, c types.Closedir) types.RetValue {
	if _, ok := p.dhs[c.DH]; !ok {
		return err(types.EBADF)
	}
	delete(p.dhs, c.DH)
	return types.RvNone{}
}

func (fs *Memfs) rewinddir(p *mproc, c types.Rewinddir) types.RetValue {
	od, ok := p.dhs[c.DH]
	if !ok {
		return err(types.EBADF)
	}
	od.names = sortedNames(od.n)
	od.pos = 0
	return types.RvNone{}
}
