package fsimpl

// memfs persistence simulation (Profile.Crash). memfs keeps its own durable
// image and pending-effect log as deep tree copies with a rendered
// fingerprint for change detection — deliberately nothing shared with the
// model's COW-heap persistence layer, so checking crash traces against the
// oracle compares two independent implementations of the same semantics.

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// memSnapshot is one durable candidate: a deep copy of the tree plus the
// fingerprint it was recognised by.
type memSnapshot struct {
	root *node
	fp   string
}

// takeSnapshot deep-copies the current tree. Hard links alias one node;
// the memo map preserves the aliasing in the copy.
func (fs *Memfs) takeSnapshot() *memSnapshot {
	memo := make(map[*node]*node)
	root := copyNode(fs.root, memo)
	root.parent = root
	return &memSnapshot{root: root, fp: treeFingerprint(fs.root)}
}

func copyNode(n *node, memo map[*node]*node) *node {
	if c, ok := memo[n]; ok {
		return c
	}
	c := &node{
		dir:     n.dir,
		symlink: n.symlink,
		mode:    n.mode,
		uid:     n.uid,
		gid:     n.gid,
		data:    append([]byte(nil), n.data...),
		nlink:   n.nlink,
	}
	memo[n] = c
	if n.children != nil {
		c.children = make(map[string]*node, len(n.children))
		for name, ch := range n.children {
			cc := copyNode(ch, memo)
			c.children[name] = cc
			if cc.dir {
				cc.parent = c
			}
		}
	}
	return c
}

// treeFingerprint renders the tree deterministically; ids assigned in
// first-visit order capture hard-link aliasing.
func treeFingerprint(root *node) string {
	var b []byte
	ids := make(map[*node]int)
	var walk func(n *node)
	walk = func(n *node) {
		id, seen := ids[n]
		if !seen {
			id = len(ids)
			ids[n] = id
		}
		b = append(b, fmt.Sprintf("#%d(%v,%v,%o,%d,%d,%q)", id, n.dir, n.symlink, n.mode, n.uid, n.gid, n.data)...)
		if seen || n.children == nil {
			return
		}
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b = append(b, '/')
			b = append(b, name...)
			b = append(b, '=')
			walk(n.children[name])
		}
	}
	walk(root)
	return string(b)
}

// notePersist appends a snapshot to the pending log iff the tree changed
// since the last image. Called after every Apply; no-op unless the crash
// profile is on.
func (fs *Memfs) notePersist() {
	if !fs.prof.Crash {
		return
	}
	last := fs.durable
	if n := len(fs.pendLog); n > 0 {
		last = fs.pendLog[n-1]
	}
	fp := treeFingerprint(fs.root)
	if fp == last.fp {
		return
	}
	memo := make(map[*node]*node)
	root := copyNode(fs.root, memo)
	root.parent = root
	fs.pendLog = append(fs.pendLog, &memSnapshot{root: root, fp: fp})
}

// flushPersist is the sync barrier: pending effects become durable.
func (fs *Memfs) flushPersist() {
	if !fs.prof.Crash || len(fs.pendLog) == 0 {
		return
	}
	fs.durable = fs.pendLog[len(fs.pendLog)-1]
	fs.pendLog = nil
}

// Crash implements CrashFS: power loss, then remount. The first keep
// pending effects survive (clamped); everything volatile — processes,
// descriptors, directory handles, unsynced effects, the group table — is
// gone, and pid 1 comes back as the fresh initial process.
func (fs *Memfs) Crash(keep int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.prof.Crash {
		return fmt.Errorf("memfs %s: crash simulation requires the crash profile", fs.prof.Name)
	}
	if keep < 0 {
		keep = 0
	}
	if keep > len(fs.pendLog) {
		keep = len(fs.pendLog)
	}
	snap := fs.durable
	if keep > 0 {
		snap = fs.pendLog[keep-1]
	}
	memo := make(map[*node]*node)
	fs.root = copyNode(snap.root, memo)
	fs.root.parent = fs.root
	fs.durable = &memSnapshot{root: snap.root, fp: snap.fp}
	fs.pendLog = nil
	fs.usedBlocks = treeBlocks(fs.root)
	fs.leaked = 0
	fs.procs = make(map[types.Pid]*mproc)
	fs.groups = make(map[types.Gid]map[types.Uid]bool)
	fs.procs[1] = &mproc{
		cwd:    fs.root,
		umask:  0o022,
		uid:    types.RootUid,
		gid:    types.RootGid,
		fds:    make(map[types.FD]*openFile),
		dhs:    make(map[types.DH]*openDir),
		nextFD: 3,
		nextDH: 1,
	}
	return nil
}

// treeBlocks recomputes the capacity charge from the linked tree — files
// that were only reachable through (now dead) descriptors no longer count.
func treeBlocks(root *node) int {
	total := 0
	seen := make(map[*node]bool)
	var walk func(n *node)
	walk = func(n *node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if !n.dir && !n.symlink {
			total += blocksFor(len(n.data))
		}
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(root)
	return total
}
