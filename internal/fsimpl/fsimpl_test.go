package fsimpl

import (
	"testing"

	"repro/internal/types"
)

func apply(t *testing.T, fs FS, cmd types.Command) types.RetValue {
	t.Helper()
	return fs.Apply(1, cmd)
}

func wantErr(t *testing.T, rv types.RetValue, e types.Errno) {
	t.Helper()
	got, ok := rv.(types.RvErr)
	if !ok || got.Err != e {
		t.Fatalf("got %v, want %v", rv, e)
	}
}

func wantNone(t *testing.T, rv types.RetValue) {
	t.Helper()
	if !rv.Equal(types.RvNone{}) {
		t.Fatalf("got %v, want RV_none", rv)
	}
}

func TestMemfsBasicLifecycle(t *testing.T) {
	fs := NewMemfs(LinuxProfile("ext4"))
	wantNone(t, apply(t, fs, types.Mkdir{Path: "/d", Perm: 0o755}))
	rv := apply(t, fs, types.Open{Path: "/d/f", Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true})
	fd := rv.(types.RvFD).FD
	if fd != 3 {
		t.Fatalf("fd = %d", fd)
	}
	if n := apply(t, fs, types.Write{FD: fd, Data: []byte("hello"), Size: 5}); !n.Equal(types.RvNum{N: 5}) {
		t.Fatalf("write = %v", n)
	}
	if n := apply(t, fs, types.Lseek{FD: fd, Off: 1, Whence: types.SeekSet}); !n.Equal(types.RvNum{N: 1}) {
		t.Fatalf("lseek = %v", n)
	}
	if b := apply(t, fs, types.Read{FD: fd, Size: 3}); !b.Equal(types.RvBytes{Data: []byte("ell")}) {
		t.Fatalf("read = %v", b)
	}
	st := apply(t, fs, types.Stat{Path: "/d/f"}).(types.RvStats).Stats
	if st.Size != 5 || st.Kind != types.KindFile || st.Perm != 0o644 {
		t.Fatalf("stat = %+v", st)
	}
	wantNone(t, apply(t, fs, types.Close{FD: fd}))
	wantErr(t, apply(t, fs, types.Read{FD: fd, Size: 1}), types.EBADF)
}

func TestMemfsUmask(t *testing.T) {
	fs := NewMemfs(LinuxProfile("ext4"))
	old := apply(t, fs, types.Umask{Mask: 0o077}).(types.RvPerm).Perm
	if old != 0o022 {
		t.Fatalf("old umask = %v", old)
	}
	apply(t, fs, types.Mkdir{Path: "/d", Perm: 0o777})
	st := apply(t, fs, types.Stat{Path: "/d"}).(types.RvStats).Stats
	if st.Perm != 0o700 {
		t.Errorf("perm = %o", st.Perm)
	}
}

func TestMemfsPermissions(t *testing.T) {
	fs := NewMemfs(LinuxProfile("ext4"))
	apply(t, fs, types.Mkdir{Path: "/p", Perm: 0o755})
	rv := apply(t, fs, types.Open{Path: "/p/secret", Flags: types.OCreat | types.OWronly, Perm: 0o600, HasPerm: true})
	apply(t, fs, types.Close{FD: rv.(types.RvFD).FD})
	fs.CreateProcess(2, 1000, 1000)
	wantErr(t, fs.Apply(2, types.Open{Path: "/p/secret", Flags: types.ORdonly}), types.EACCES)
	wantErr(t, fs.Apply(2, types.Open{Path: "/p/new", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}), types.EACCES)
	// Group membership via add_user_to_group.
	apply(t, fs, types.Chown{Path: "/p/secret", Uid: 0, Gid: 500})
	apply(t, fs, types.Chmod{Path: "/p/secret", Perm: 0o640})
	apply(t, fs, types.AddUserToGroup{Uid: 1000, Gid: 500})
	if _, ok := fs.Apply(2, types.Open{Path: "/p/secret", Flags: types.ORdonly}).(types.RvFD); !ok {
		t.Error("supplementary group read denied")
	}
}

func TestMemfsReaddirSnapshot(t *testing.T) {
	fs := NewMemfs(LinuxProfile("ext4"))
	apply(t, fs, types.Mkdir{Path: "/d", Perm: 0o755})
	for _, n := range []string{"a", "b"} {
		rv := apply(t, fs, types.Open{Path: "/d/" + n, Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
		apply(t, fs, types.Close{FD: rv.(types.RvFD).FD})
	}
	dh := apply(t, fs, types.Opendir{Path: "/d"}).(types.RvDH).DH
	first := apply(t, fs, types.Readdir{DH: dh}).(types.RvDirent)
	if first.End {
		t.Fatal("premature end")
	}
	// Delete the not-yet-returned entry: the snapshot skips it.
	other := "b"
	if first.Name == "b" {
		other = "a"
	}
	apply(t, fs, types.Unlink{Path: "/d/" + other})
	second := apply(t, fs, types.Readdir{DH: dh}).(types.RvDirent)
	if !second.End {
		t.Fatalf("deleted entry returned: %v", second)
	}
	wantNone(t, apply(t, fs, types.Closedir{DH: dh}))
	wantErr(t, apply(t, fs, types.Readdir{DH: dh}), types.EBADF)
}

func TestMemfsBugPosixovlLeak(t *testing.T) {
	var prof Profile
	for _, p := range SurveyProfiles() {
		if p.Name == "posixovl_vfat_1.2" {
			prof = p
		}
	}
	fs := NewMemfs(prof)
	data := make([]byte, 8192)
	iter := 0
	for ; iter < 200; iter++ {
		rv := apply(t, fs, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
		fd, ok := rv.(types.RvFD)
		if !ok {
			break // volume "full" although it looks empty — the §7.3.5 defect
		}
		apply(t, fs, types.Write{FD: fd.FD, Data: data, Size: int64(len(data))})
		apply(t, fs, types.Close{FD: fd.FD})
		apply(t, fs, types.Link{Src: "/f", Dst: "/g"})
		rv2 := apply(t, fs, types.Open{Path: "/h", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
		if _, ok := rv2.(types.RvFD); !ok {
			break
		}
		apply(t, fs, types.Close{FD: rv2.(types.RvFD).FD})
		apply(t, fs, types.Rename{Src: "/h", Dst: "/g"})
		// The leak: the replaced link's count was not decremented.
		st := apply(t, fs, types.Stat{Path: "/f"}).(types.RvStats).Stats
		if st.Nlink != 2 {
			t.Fatalf("expected leaked nlink 2, got %d", st.Nlink)
		}
		apply(t, fs, types.Unlink{Path: "/f"})
		apply(t, fs, types.Unlink{Path: "/g"})
	}
	if iter >= 200 {
		t.Fatal("leak never exhausted the volume")
	}
	// Control: the conforming profile never exhausts.
	ctrl := NewMemfs(LinuxProfile("ext4"))
	for i := 0; i < 50; i++ {
		rv := ctrl.Apply(1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
		fd := rv.(types.RvFD).FD
		ctrl.Apply(1, types.Write{FD: fd, Data: data, Size: int64(len(data))})
		ctrl.Apply(1, types.Close{FD: fd})
		ctrl.Apply(1, types.Unlink{Path: "/f"})
	}
}

func TestMemfsBugFig8Spin(t *testing.T) {
	var prof Profile
	for _, p := range SurveyProfiles() {
		if p.Name == "openzfs_1.3.0_osx" {
			prof = p
		}
	}
	fs := NewMemfs(prof)
	wantNone(t, apply(t, fs, types.Mkdir{Path: "deserted", Perm: 0o700}))
	wantNone(t, apply(t, fs, types.Chdir{Path: "deserted"}))
	wantNone(t, apply(t, fs, types.Rmdir{Path: "../deserted"}))
	// The watchdog observes the unkillable spin as EINTR.
	wantErr(t, apply(t, fs, types.Open{Path: "party", Flags: types.OCreat | types.ORdonly, Perm: 0o600, HasPerm: true}), types.EINTR)
	// The conforming OS X profile returns ENOENT.
	ctrl := NewMemfs(OSXProfile("hfs"))
	ctrl.Apply(1, types.Mkdir{Path: "deserted", Perm: 0o700})
	ctrl.Apply(1, types.Chdir{Path: "deserted"})
	ctrl.Apply(1, types.Rmdir{Path: "../deserted"})
	wantErr(t, ctrl.Apply(1, types.Open{Path: "party", Flags: types.OCreat | types.ORdonly, Perm: 0o600, HasPerm: true}), types.ENOENT)
}

func TestMemfsBugPwriteUnderflow(t *testing.T) {
	fs := NewMemfs(OSXProfile("hfs"))
	rv := apply(t, fs, types.Open{Path: "/t", Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true})
	fd := rv.(types.RvFD).FD
	wantErr(t, apply(t, fs, types.Pwrite{FD: fd, Data: []byte("x"), Size: 1, Off: -1}), types.EFBIG)
	lin := NewMemfs(LinuxProfile("ext4"))
	rv = lin.Apply(1, types.Open{Path: "/t", Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true})
	wantErr(t, lin.Apply(1, types.Pwrite{FD: rv.(types.RvFD).FD, Data: []byte("x"), Size: 1, Off: -1}), types.EINVAL)
}

func TestMemfsBugOAppendBroken(t *testing.T) {
	var prof Profile
	for _, p := range SurveyProfiles() {
		if p.Name == "openzfs_0.6.3_trusty" {
			prof = p
		}
	}
	fs := NewMemfs(prof)
	rv := apply(t, fs, types.Open{Path: "/t", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
	fd := rv.(types.RvFD).FD
	apply(t, fs, types.Write{FD: fd, Data: []byte("precious"), Size: 8})
	apply(t, fs, types.Close{FD: fd})
	rv = apply(t, fs, types.Open{Path: "/t", Flags: types.OWronly | types.OAppend})
	fd = rv.(types.RvFD).FD
	apply(t, fs, types.Write{FD: fd, Data: []byte("XY"), Size: 2})
	apply(t, fs, types.Close{FD: fd})
	rv = apply(t, fs, types.Open{Path: "/t", Flags: types.ORdonly})
	fd = rv.(types.RvFD).FD
	got := apply(t, fs, types.Read{FD: fd, Size: 16}).(types.RvBytes)
	if string(got.Data) != "XYecious" {
		t.Errorf("broken O_APPEND should overwrite: %q", got.Data)
	}
}

func TestMemfsBugFreeBSDInvariant(t *testing.T) {
	fs := NewMemfs(FreeBSDProfile("ufs"))
	apply(t, fs, types.Mkdir{Path: "/target", Perm: 0o755})
	apply(t, fs, types.Symlink{Target: "target", Linkpath: "/sl"})
	wantErr(t, apply(t, fs, types.Open{
		Path: "/sl", Flags: types.OCreat | types.OExcl | types.ODirectory | types.OWronly,
		Perm: 0o644, HasPerm: true,
	}), types.ENOTDIR)
	// The POSIX invariant is broken: the symlink was replaced by a file.
	st := apply(t, fs, types.Lstat{Path: "/sl"}).(types.RvStats).Stats
	if st.Kind != types.KindFile {
		t.Errorf("symlink not replaced; kind = %v", st.Kind)
	}
}

func TestMemfsSSHFSProfiles(t *testing.T) {
	var allowOther, umask0 Profile
	for _, p := range SurveyProfiles() {
		switch p.Name {
		case "sshfs_tmpfs_allow_other":
			allowOther = p
		case "sshfs_tmpfs_umask_0000":
			umask0 = p
		}
	}
	// allow_other bypasses permissions and creates root-owned files.
	fs := NewMemfs(allowOther)
	fs.CreateProcess(2, 1000, 1000)
	apply(t, fs, types.Mkdir{Path: "/shared", Perm: 0o777})
	rv := fs.Apply(2, types.Open{Path: "/shared/mine", Flags: types.OCreat | types.OWronly, Perm: 0o666, HasPerm: true})
	if _, ok := rv.(types.RvFD); !ok {
		t.Fatalf("open = %v", rv)
	}
	st := fs.Apply(2, types.Stat{Path: "/shared/mine"}).(types.RvStats).Stats
	if st.Uid != types.RootUid {
		t.Errorf("creation ownership = %d, want root", st.Uid)
	}
	// The umask was OR-ed with 0022 regardless of the process umask.
	if st.Perm != 0o644 {
		t.Errorf("perm = %o, want 644 (umask ORed with 0022)", st.Perm)
	}
	// umask=0000 ignores the process umask entirely.
	fs2 := NewMemfs(umask0)
	fs2.Apply(1, types.Umask{Mask: 0o077})
	rv = fs2.Apply(1, types.Open{Path: "/f", Flags: types.OCreat | types.OWronly, Perm: 0o666, HasPerm: true})
	st = fs2.Apply(1, types.Stat{Path: "/f"}).(types.RvStats).Stats
	if st.Perm != 0o666 {
		t.Errorf("perm = %o, want 666 (process umask ignored)", st.Perm)
	}
}

func TestMemfsFlatDirNlink(t *testing.T) {
	var btrfs Profile
	for _, p := range SurveyProfiles() {
		if p.Name == "btrfs" {
			btrfs = p
		}
	}
	fs := NewMemfs(btrfs)
	apply(t, fs, types.Mkdir{Path: "/d", Perm: 0o755})
	apply(t, fs, types.Mkdir{Path: "/d/sub", Perm: 0o755})
	st := apply(t, fs, types.Stat{Path: "/d"}).(types.RvStats).Stats
	if st.Nlink != 1 {
		t.Errorf("btrfs dir nlink = %d, want 1", st.Nlink)
	}
}

func TestMemfsChmodUnsupported(t *testing.T) {
	var prof Profile
	for _, p := range SurveyProfiles() {
		if p.Name == "hfsplus_linux_trusty" {
			prof = p
		}
	}
	fs := NewMemfs(prof)
	rv := apply(t, fs, types.Open{Path: "/t", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
	apply(t, fs, types.Close{FD: rv.(types.RvFD).FD})
	wantErr(t, apply(t, fs, types.Chmod{Path: "/t", Perm: 0o600}), types.EOPNOTSUPP)
	apply(t, fs, types.Symlink{Target: "t", Linkpath: "/s"})
	wantErr(t, apply(t, fs, types.Link{Src: "/s", Dst: "/hl"}), types.EPERM)
}

func TestSpecFSIsDeterministic(t *testing.T) {
	mk := func() []types.RetValue {
		fs := NewSpecFS("spec", types.DefaultSpec())
		var out []types.RetValue
		out = append(out, fs.Apply(1, types.Mkdir{Path: "/d", Perm: 0o755}))
		out = append(out, fs.Apply(1, types.Open{Path: "/d/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true}))
		out = append(out, fs.Apply(1, types.Write{FD: 3, Data: []byte("abc"), Size: 3}))
		out = append(out, fs.Apply(1, types.Stat{Path: "/d/f"}))
		out = append(out, fs.Apply(1, types.Rename{Src: "/d", Dst: "/e"}))
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHostFSBasics(t *testing.T) {
	fs, err := NewHostFS("host")
	if err != nil {
		t.Skipf("host jail unavailable: %v", err)
	}
	defer fs.Close()
	wantNone(t, apply(t, fs, types.Mkdir{Path: "/d", Perm: 0o755}))
	rv := apply(t, fs, types.Open{Path: "/d/f", Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true})
	fd, ok := rv.(types.RvFD)
	if !ok {
		t.Fatalf("open = %v", rv)
	}
	apply(t, fs, types.Write{FD: fd.FD, Data: []byte("hi"), Size: 2})
	st := apply(t, fs, types.Stat{Path: "/d/f"}).(types.RvStats).Stats
	if st.Size != 2 || st.Kind != types.KindFile {
		t.Fatalf("host stat = %+v", st)
	}
	wantNone(t, apply(t, fs, types.Close{FD: fd.FD}))
	wantErr(t, apply(t, fs, types.Unlink{Path: "/d"}), types.EISDIR)
	wantNone(t, apply(t, fs, types.Chdir{Path: "/d"}))
	st = apply(t, fs, types.Stat{Path: "f"}).(types.RvStats).Stats
	if st.Size != 2 {
		t.Fatal("relative stat after chdir failed")
	}
}

func TestProfilesCatalogue(t *testing.T) {
	profiles := SurveyProfiles()
	if len(profiles) < 12 {
		t.Fatalf("catalogue too small: %d", len(profiles))
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		if p.Name == "" || seen[p.Name] {
			t.Errorf("bad or duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
	}
	for _, want := range []string{"ext4", "btrfs", "posixovl_vfat_1.2", "openzfs_1.3.0_osx", "ufs_freebsd_10"} {
		if !seen[want] {
			t.Errorf("catalogue missing %q", want)
		}
	}
}
