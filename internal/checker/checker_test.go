package checker

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/types"
)

func parse(t *testing.T, text string) *trace.Trace {
	t.Helper()
	tr, err := trace.ParseTrace(text)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAcceptsConformingTrace(t *testing.T) {
	tr := parse(t, `@type trace
1: mkdir "d" 0o755
1: RV_none
1: open "d/f" [O_CREAT;O_WRONLY] 0o644
1: RV_file_descriptor(FD 3)
1: write (FD 3) "hi" 2
1: RV_num(2)
1: close (FD 3)
1: RV_none
1: stat "d/f"
1: RV_stats { st_kind=S_IFREG; st_perm=0o644; st_size=2; st_nlink=1; st_uid=0; st_gid=0 }
`)
	r := New(types.DefaultSpec()).Check(tr)
	if !r.Accepted {
		t.Fatalf("conforming trace rejected: %+v", r.Errors)
	}
	if r.MaxStates < 1 {
		t.Error("state set never populated")
	}
}

func TestRejectsWithDiagnosis(t *testing.T) {
	tr := parse(t, `@type trace
1: mkdir "d" 0o755
1: EEXIST
`)
	r := New(types.DefaultSpec()).Check(tr)
	if r.Accepted {
		t.Fatal("bad trace accepted")
	}
	if len(r.Errors) != 1 {
		t.Fatalf("errors = %+v", r.Errors)
	}
	e := r.Errors[0]
	if e.Observed != "EEXIST" {
		t.Errorf("observed = %q", e.Observed)
	}
	if len(e.Allowed) != 1 || e.Allowed[0] != "RV_none" {
		t.Errorf("allowed = %v", e.Allowed)
	}
	msg := e.Message()
	for _, want := range []string{"# Error:", "unexpected results: EEXIST", "allowed are only: RV_none", "continuing with"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message missing %q:\n%s", want, msg)
		}
	}
}

func TestContinuesAfterError(t *testing.T) {
	// After the wrong mkdir return, checking continues with the allowed
	// value (the dir exists), so the subsequent stat must be accepted.
	tr := parse(t, `@type trace
1: mkdir "d" 0o755
1: EEXIST
1: stat "d"
1: RV_stats { st_kind=S_IFDIR; st_perm=0o755; st_size=0; st_nlink=2; st_uid=0; st_gid=0 }
`)
	r := New(types.DefaultSpec()).Check(tr)
	if len(r.Errors) != 1 {
		t.Fatalf("recovery failed; errors = %+v", r.Errors)
	}
}

func TestLooseErrorEnvelope(t *testing.T) {
	// rename empty dir onto non-empty dir: both ENOTEMPTY and EEXIST are
	// accepted; EPERM is not (the Fig 4 scenario).
	base := `@type trace
1: mkdir "e" 0o755
1: RV_none
1: mkdir "d" 0o755
1: RV_none
1: mkdir "d/x" 0o755
1: RV_none
1: rename "e" "d"
1: %s
`
	for _, errname := range []string{"ENOTEMPTY", "EEXIST"} {
		tr := parse(t, strings.Replace(base, "%s", errname, 1))
		if r := New(types.DefaultSpec()).Check(tr); !r.Accepted {
			t.Errorf("%s rejected: %+v", errname, r.Errors)
		}
	}
	tr := parse(t, strings.Replace(base, "%s", "EPERM", 1))
	if r := New(types.DefaultSpec()).Check(tr); r.Accepted {
		t.Error("EPERM accepted")
	}
}

func TestReaddirNondeterminismResolved(t *testing.T) {
	// The trace returns entries in reverse-alphabetical order — allowed,
	// since readdir order is unspecified.
	tr := parse(t, `@type trace
1: mkdir "d" 0o755
1: RV_none
1: open "d/a" [O_CREAT;O_WRONLY] 0o644
1: RV_file_descriptor(FD 3)
1: close (FD 3)
1: RV_none
1: open "d/b" [O_CREAT;O_WRONLY] 0o644
1: RV_file_descriptor(FD 4)
1: close (FD 4)
1: RV_none
1: opendir "d"
1: RV_dir_handle(DH 1)
1: readdir (DH 1)
1: RV_readdir("b")
1: readdir (DH 1)
1: RV_readdir("a")
1: readdir (DH 1)
1: RV_readdir_end
1: closedir (DH 1)
1: RV_none
`)
	if r := New(types.DefaultSpec()).Check(tr); !r.Accepted {
		t.Fatalf("reverse-order readdir rejected: %+v", r.Errors)
	}
}

func TestMultiProcessInterleaving(t *testing.T) {
	tr := parse(t, `@type trace
1: mkdir "d" 0o755
1: RV_none
create 2 0 0
2: stat "d"
2: RV_stats { st_kind=S_IFDIR; st_perm=0o755; st_size=0; st_nlink=2; st_uid=0; st_gid=0 }
2: rmdir "d"
2: RV_none
1: stat "d"
1: ENOENT
destroy 2
`)
	if r := New(types.DefaultSpec()).Check(tr); !r.Accepted {
		t.Fatalf("cross-process trace rejected: %+v", r.Errors)
	}
}

func TestPlatformVariantsDiffer(t *testing.T) {
	tr := parse(t, `@type trace
1: mkdir "d" 0o755
1: RV_none
1: unlink "d"
1: EISDIR
`)
	if r := New(types.Spec{Platform: types.PlatformLinux, Permissions: true, RootUser: true}).Check(tr); !r.Accepted {
		t.Error("Linux variant must allow EISDIR for unlink(dir)")
	}
	if r := New(types.Spec{Platform: types.PlatformOSX, Permissions: true, RootUser: true}).Check(tr); r.Accepted {
		t.Error("OS X variant must reject EISDIR for unlink(dir)")
	}
}

func TestPermissionsTraitToggle(t *testing.T) {
	tr := parse(t, `@type trace
1: mkdir "p" 0o700
1: RV_none
1: chown "p" 5 5
1: RV_none
create 2 1000 1000
2: opendir "p"
2: EACCES
`)
	withPerms := types.DefaultSpec()
	if r := New(withPerms).Check(tr); !r.Accepted {
		t.Errorf("EACCES rejected with permissions on: %+v", r.Errors)
	}
	noPerms := withPerms
	noPerms.Permissions = false
	if r := New(noPerms).Check(tr); r.Accepted {
		t.Error("EACCES accepted with permissions off (core without permissions)")
	}
}

func TestUnexpectedLabelRecovery(t *testing.T) {
	// A return with no outstanding call: flagged, then skipped.
	tr := parse(t, `@type trace
1: RV_none
1: mkdir "d" 0o755
1: RV_none
`)
	r := New(types.DefaultSpec()).Check(tr)
	if r.Accepted || len(r.Errors) != 1 {
		t.Fatalf("result = %+v", r)
	}
}

func TestCheckAllParallelMatchesSerial(t *testing.T) {
	mk := func() *trace.Trace {
		return parse(t, `@type trace
1: mkdir "d" 0o755
1: RV_none
1: rmdir "d"
1: RV_none
`)
	}
	var traces []*trace.Trace
	for i := 0; i < 64; i++ {
		traces = append(traces, mk())
	}
	c := New(types.DefaultSpec())
	par := c.CheckAll(traces, 8)
	for i, r := range par {
		if !r.Accepted {
			t.Fatalf("trace %d rejected in parallel run", i)
		}
	}
}

func TestRenderChecked(t *testing.T) {
	tr := parse(t, `@type trace
1: mkdir "d" 0o755
1: EEXIST
`)
	r := New(types.DefaultSpec()).Check(tr)
	out := RenderChecked(tr, r)
	for _, want := range []string{"@type checked_trace", "# Error:", "NOT accepted"} {
		if !strings.Contains(out, want) {
			t.Errorf("checked trace missing %q:\n%s", want, out)
		}
	}
	good := parse(t, `@type trace
1: mkdir "d" 0o755
1: RV_none
`)
	out = RenderChecked(good, New(types.DefaultSpec()).Check(good))
	if !strings.Contains(out, "# Trace accepted.") {
		t.Error("accepted marker missing")
	}
}

func TestStateSetStaysSmall(t *testing.T) {
	// Sequential traces must keep the state set tiny (the §3 engineering
	// claim: no blowup without backtracking).
	var b strings.Builder
	b.WriteString("@type trace\n")
	b.WriteString("1: mkdir \"d\" 0o755\n1: RV_none\n")
	for i := 0; i < 20; i++ {
		name := string(rune('a' + i%26))
		b.WriteString("1: open \"d/" + name + "\" [O_CREAT;O_WRONLY] 0o644\n")
		b.WriteString("1: RV_file_descriptor(FD " + itoa(3+i) + ")\n")
	}
	tr := parse(t, b.String())
	r := New(types.DefaultSpec()).Check(tr)
	if !r.Accepted {
		t.Fatalf("trace rejected: %+v", r.Errors)
	}
	if r.MaxStates > 8 {
		t.Errorf("state set grew to %d on a deterministic trace", r.MaxStates)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
