package checker

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/types"
)

// raceTrace builds an n-process mkdir race with simultaneously pending
// calls — the closure-heavy fixture the cap and worker tests drive.
func raceTrace(n int) string {
	var b strings.Builder
	b.WriteString("@type trace\n")
	for p := 2; p <= n; p++ {
		b.WriteString("create " + itoa(p) + " 0 0\n")
	}
	for p := 1; p <= n; p++ {
		b.WriteString(itoa(p) + `: mkdir "/r" 0o755` + "\n")
	}
	b.WriteString("1: RV_none\n")
	for p := 2; p <= n; p++ {
		b.WriteString(itoa(p) + ": EEXIST\n")
	}
	return b.String()
}

// TestStateSetCapHitSurfaced: a tiny cap must truncate the tracked set and
// say so, instead of silently checking against a partial state set; an
// uncapped run of the same trace must not set the flag.
func TestStateSetCapHitSurfaced(t *testing.T) {
	tr := parse(t, raceTrace(4))
	c := New(types.DefaultSpec())
	c.MaxStateSet = 2
	r := c.Check(tr)
	if !r.StateSetCapHit {
		t.Error("cap 2 on a 4-way race did not set StateSetCapHit")
	}

	free := New(types.DefaultSpec())
	rf := free.Check(tr)
	if rf.StateSetCapHit {
		t.Error("uncapped check reported a cap hit")
	}
	if !rf.Accepted {
		t.Fatalf("race trace rejected: %+v", rf.Errors)
	}
}

// TestCapHitAblationPath: the dedup-off reduce path truncates too and must
// report it the same way.
func TestCapHitAblationPath(t *testing.T) {
	tr := parse(t, raceTrace(4))
	c := New(types.DefaultSpec())
	c.DisableDedup = true
	c.MaxStateSet = 2
	if r := c.Check(tr); !r.StateSetCapHit {
		t.Error("ablation reduce truncated silently")
	}
}

// TestWorkerCountDoesNotChangeResults: the parallel τ-closure and
// transition union must be observationally identical for every worker
// count — same acceptance, same diagnoses, same state-set statistics.
func TestWorkerCountDoesNotChangeResults(t *testing.T) {
	traces := []string{raceTrace(4), raceTrace(5), twoWriterTrace,
		strings.Replace(twoWriterTrace, `RV_bytes("aa")`, `RV_bytes("ab")`, 1)}
	for ti, text := range traces {
		tr := parse(t, text)
		base := New(types.DefaultSpec())
		base.TauWorkers = 1
		want := base.Check(tr)
		// TauNanos is wall-clock and TauParallelRounds counts rounds that
		// actually fanned out — both are telemetry, expected to vary with
		// the worker count, and no part of the observational contract.
		want.TauNanos, want.TauParallelRounds = 0, 0
		for _, workers := range []int{2, 4, 8} {
			c := New(types.DefaultSpec())
			c.TauWorkers = workers
			got := c.Check(tr)
			got.TauNanos, got.TauParallelRounds = 0, 0
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trace %d: workers=%d diverged:\n%+v\nwant\n%+v", ti, workers, got, want)
			}
		}
	}
}
