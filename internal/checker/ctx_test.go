package checker

// Cancellation contract of the oracle: CheckCtx/CheckAllCtx stop between
// steps/traces and return context.Canceled; the Background-based Check
// wrappers are unaffected.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/trace"
	"repro/internal/types"
)

func ctxTrace(steps int) *trace.Trace {
	t := &trace.Trace{Name: "ctx"}
	line := 0
	for i := 0; i < steps; i++ {
		line++
		t.Steps = append(t.Steps, trace.Step{Line: line, Label: types.CallLabel{
			Pid: 1, Cmd: types.Stat{Path: "/"},
		}})
		line++
		t.Steps = append(t.Steps, trace.Step{Line: line, Label: types.ReturnLabel{
			Pid: 1, Ret: types.RvStats{},
		}})
	}
	return t
}

func TestCheckCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(types.DefaultSpec())
	_, err := c.CheckCtx(ctx, ctxTrace(3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCheckAllCtxCancelled(t *testing.T) {
	traces := make([]*trace.Trace, 40)
	for i := range traces {
		traces[i] = ctxTrace(2)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(types.DefaultSpec())
	_, err := c.CheckAllCtx(ctx, traces, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCheckCtxBackgroundMatchesCheck: the ctx plumbing must not perturb
// verdicts — CheckCtx with a background context equals Check.
func TestCheckCtxBackgroundMatchesCheck(t *testing.T) {
	c := New(types.DefaultSpec())
	tr := ctxTrace(3)
	want := c.Check(tr)
	got, err := c.CheckCtx(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Accepted != want.Accepted || got.Steps != want.Steps ||
		got.TauExpansions != want.TauExpansions || got.MaxStates != want.MaxStates {
		t.Fatalf("CheckCtx %+v differs from Check %+v", got, want)
	}
}
