package checker

// Golden multi-process trace fixtures: hand-written traces with genuinely
// overlapping calls, pinning down the oracle's τ-closure behaviour — the
// state-set strategy of §3 under real concurrency. These are regression
// tests for the concurrent executor's checker side: acceptance, the
// MaxStates the closure must reach, and byte-stable diagnoses.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/types"
)

// twoWriterTrace: two processes race O_CREAT opens and writes on one path;
// the calls overlap (both calls are outstanding before either return).
// The final read observes "aa" — the linearisation where pid 1 wrote last.
const twoWriterTrace = `@type trace
create 2 0 0
1: open "/f" [O_CREAT;O_WRONLY] 0o644
2: open "/f" [O_CREAT;O_WRONLY] 0o644
1: RV_file_descriptor(FD 3)
2: RV_file_descriptor(FD 3)
1: write (FD 3) "aa" 2
2: write (FD 3) "bb" 2
2: RV_num(2)
1: RV_num(2)
1: close (FD 3)
2: close (FD 3)
2: RV_none
1: RV_none
destroy 2
1: open "/f" [O_RDONLY]
1: RV_file_descriptor(FD 4)
1: read (FD 4) 4
1: RV_bytes("aa")
`

func TestTwoWritersRacingOnePath(t *testing.T) {
	tr := parse(t, twoWriterTrace)
	r := New(types.DefaultSpec()).Check(tr)
	if !r.Accepted {
		t.Fatalf("racing-writers trace rejected:\n%s", RenderChecked(tr, r))
	}
	if r.MaxStates <= 1 {
		t.Errorf("MaxStates = %d, want > 1: the closure never branched on write order", r.MaxStates)
	}
	if r.TauExpansions == 0 {
		t.Error("no τ-expansions on an overlapping-call trace")
	}
}

func TestTwoWritersOtherLinearisationAlsoAccepted(t *testing.T) {
	// "bb" — pid 2 wrote last — is the other allowed outcome.
	tr := parse(t, strings.Replace(twoWriterTrace, `RV_bytes("aa")`, `RV_bytes("bb")`, 1))
	if r := New(types.DefaultSpec()).Check(tr); !r.Accepted {
		t.Fatalf("other write order rejected:\n%s", RenderChecked(tr, r))
	}
}

func TestTwoWritersImpossibleContentRejectedStably(t *testing.T) {
	// "ab" interleaves the two writes byte-wise — no linearisation of
	// whole-call effects produces it, so the oracle must reject, and the
	// diagnosis must be identical on every run (stable over map iteration,
	// closure order, etc.).
	tr := parse(t, strings.Replace(twoWriterTrace, `RV_bytes("aa")`, `RV_bytes("ab")`, 1))
	c := New(types.DefaultSpec())
	first := c.Check(tr)
	if first.Accepted {
		t.Fatal("impossible write interleaving accepted")
	}
	if len(first.Errors) == 0 {
		t.Fatal("rejected without diagnosis")
	}
	if obs := first.Errors[0].Observed; obs != `RV_bytes("ab")` {
		t.Errorf("diagnosis observed %q", obs)
	}
	rendered := RenderChecked(tr, first)
	for i := 0; i < 5; i++ {
		again := c.Check(tr)
		if !reflect.DeepEqual(again.Errors, first.Errors) {
			t.Fatalf("diagnoses unstable:\n%+v\nvs\n%+v", first.Errors, again.Errors)
		}
		if RenderChecked(tr, again) != rendered {
			t.Fatal("checked-trace rendering unstable")
		}
	}
}

// createDestroyOverlapTrace: a process is created, runs and is destroyed
// entirely inside the window where pid 1's mkdir is pending (call issued,
// return not yet observed). The stat's ENOENT answer is the linearisation
// where pid 1's τ had not happened yet.
const createDestroyOverlapTrace = `@type trace
1: mkdir "/y" 0o755
create 3 0 0
3: stat "/y"
3: ENOENT
destroy 3
1: RV_none
1: stat "/y"
1: RV_stats { st_kind=S_IFDIR; st_perm=0o755; st_size=0; st_nlink=2; st_uid=0; st_gid=0 }
`

func TestCreateDestroyOverlappingPendingCall(t *testing.T) {
	tr := parse(t, createDestroyOverlapTrace)
	r := New(types.DefaultSpec()).Check(tr)
	if !r.Accepted {
		t.Fatalf("create/destroy inside a pending call rejected:\n%s", RenderChecked(tr, r))
	}
	if r.MaxStates <= 1 {
		t.Errorf("MaxStates = %d, want > 1", r.MaxStates)
	}

	// The other linearisation: the short-lived process observes the
	// directory because pid 1's τ happened before its stat.
	other := strings.Replace(createDestroyOverlapTrace,
		"3: ENOENT",
		"3: RV_stats { st_kind=S_IFDIR; st_perm=0o755; st_size=0; st_nlink=2; st_uid=0; st_gid=0 }", 1)
	if r := New(types.DefaultSpec()).Check(parse(t, other)); !r.Accepted {
		t.Fatalf("dir-visible linearisation rejected:\n%s", RenderChecked(parse(t, other), r))
	}

	// EACCES is in no linearisation: rejected with a stable diagnosis.
	bad := strings.Replace(createDestroyOverlapTrace, "3: ENOENT", "3: EACCES", 1)
	rb := New(types.DefaultSpec()).Check(parse(t, bad))
	if rb.Accepted {
		t.Fatal("EACCES accepted")
	}
	if len(rb.Errors) == 0 || rb.Errors[0].Observed != "EACCES" {
		t.Fatalf("diagnosis = %+v", rb.Errors)
	}
}

// TestMkdirRaceClosureGrowth: n processes with simultaneously pending
// mkdirs of the same path force the closure to enumerate processing
// orders; MaxStates must grow with n and the mean must exceed 1.
func TestMkdirRaceClosureGrowth(t *testing.T) {
	build := func(n int) string {
		var b strings.Builder
		b.WriteString("@type trace\n")
		for p := 2; p <= n; p++ {
			b.WriteString("create " + itoa(p) + " 0 0\n")
		}
		for p := 1; p <= n; p++ {
			b.WriteString(itoa(p) + `: mkdir "/r" 0o755` + "\n")
		}
		// First return succeeds, the rest observe EEXIST.
		b.WriteString("1: RV_none\n")
		for p := 2; p <= n; p++ {
			b.WriteString(itoa(p) + ": EEXIST\n")
		}
		return b.String()
	}
	prev := 0
	for _, n := range []int{2, 3, 4} {
		r := New(types.DefaultSpec()).Check(parse(t, build(n)))
		if !r.Accepted {
			t.Fatalf("n=%d race rejected: %+v", n, r.Errors)
		}
		if r.MaxStates <= prev {
			t.Errorf("n=%d: MaxStates = %d, not growing past %d", n, r.MaxStates, prev)
		}
		if r.MeanStates() <= 1 {
			t.Errorf("n=%d: mean states %.2f, want > 1", n, r.MeanStates())
		}
		prev = r.MaxStates
	}
}
