package checker

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/trace"
)

// CheckAll checks many traces concurrently with workers goroutines
// (workers ≤ 0 selects GOMAXPROCS), preserving input order in the results.
// Trace independence gives the parallel speedup §7.1 relies on.
func (c *Checker) CheckAll(traces []*trace.Trace, workers int) []Result {
	results, _ := c.CheckAllCtx(context.Background(), traces, workers)
	return results
}

// CheckAllCtx is CheckAll with cooperative cancellation: ctx is consulted
// between traces (and, via CheckCtx, inside each trace). On cancellation
// the results completed so far stay in place (unchecked slots zero) and
// ctx.Err() is returned.
func (c *Checker) CheckAllCtx(ctx context.Context, traces []*trace.Trace, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]Result, len(traces))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain
				}
				results[i], _ = c.CheckCtx(ctx, traces[i])
			}
		}()
	}
feed:
	for i := range traces {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return results, ctx.Err()
}

// RenderChecked interleaves the original trace with the checker's
// diagnostics, producing a checked trace in the style of Fig 4.
func RenderChecked(t *trace.Trace, r Result) string {
	var byLine map[int][]StepError // nil on the common accepted path
	if len(r.Errors) > 0 {
		byLine = make(map[int][]StepError)
		for _, e := range r.Errors {
			byLine[e.Line] = append(byLine[e.Line], e)
		}
	}
	var b strings.Builder
	b.WriteString("@type checked_trace\n")
	if t.Name != "" {
		b.WriteString("# Test ")
		b.WriteString(t.Name)
		b.WriteByte('\n')
	}
	for _, st := range t.Steps {
		b.WriteString(st.Label.String())
		b.WriteByte('\n')
		for _, e := range byLine[st.Line] {
			b.WriteString(e.Message())
		}
	}
	if r.Accepted {
		b.WriteString("# Trace accepted.\n")
	} else {
		fmt.Fprintf(&b, "# Trace NOT accepted: %d error(s).\n", len(r.Errors))
	}
	return b.String()
}
