// Package checker is the SibylFS test oracle: it decides whether an
// observed trace is allowed by the model by maintaining the finite set of
// model states the real-world system might be in and stepping it with
// os_trans — the state-set strategy of §3, with no backtracking search.
//
// State identity is hash-consed (osspec.StateSet): candidate states carry a
// memoised 64-bit digest and deduplication compares digests before
// confirming structurally, instead of rendering and sorting fingerprint
// strings. Within one trace the expensive fan-outs — the τ-closure over
// pending-call interleavings and the per-state transition union — run on a
// worker pool (TauWorkers), with successors merged in deterministic order
// so results are byte-identical for every worker count, including one.
//
// CheckCtx/CheckAllCtx add cooperative cancellation: the context is
// consulted between traces, between trace steps, and between τ-closure
// expansion rounds inside one step's fan-out; on cancellation the partial
// Result is returned with ctx.Err() and must not be read as a verdict.
// Check/CheckAll remain as Background-context conveniences.
package checker
