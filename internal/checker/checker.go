package checker

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/osspec"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/types"
)

// StepError records one non-conformant step and its diagnosis (Fig 4).
type StepError struct {
	Line     int
	Observed string
	Allowed  []string
}

// Message renders the Fig 4 diagnostic block.
func (e StepError) Message() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Error: %d: %s\n", e.Line, e.Observed)
	fmt.Fprintf(&b, "# unexpected results: %s\n", e.Observed)
	if len(e.Allowed) > 0 {
		fmt.Fprintf(&b, "# allowed are only: %s\n", strings.Join(e.Allowed, ", "))
		fmt.Fprintf(&b, "# continuing with %s\n", strings.Join(e.Allowed, ", "))
	} else {
		b.WriteString("# no behaviour allowed here; resetting process state\n")
	}
	return b.String()
}

// Result is the outcome of checking one trace.
type Result struct {
	Name        string
	Accepted    bool
	Errors      []StepError
	Steps       int
	MaxStates   int // peak size of the tracked state set (§7.1's key metric)
	UsedSpecial bool
	// TauExpansions counts the τ-successor states generated while closing
	// the state set over internal transitions. Sequential traces need one
	// expansion round per return; concurrent traces with several pending
	// calls are where the number grows — it measures how much interleaving
	// nondeterminism the oracle had to absorb.
	TauExpansions int
	// SumStates accumulates the state-set size at every step; together with
	// Steps it yields the mean set size (see MeanStates).
	SumStates int
	// StateSetCapHit records that the tracked set reached MaxStateSet and
	// was truncated (or the τ-closure was cut short): states the real
	// system might be in were dropped, so a rejection afterwards may be a
	// false alarm and an acceptance may rest on luck. The cap exists only
	// to bound pathological blowup; a hit is worth surfacing to the user.
	StateSetCapHit bool
	// TauRounds / TauParallelRounds / TauNanos are telemetry: the number
	// of τ-closure frontier-expansion rounds this trace cost, how many of
	// them were large enough to fan across the worker pool, and the wall
	// time spent inside the closure. They never influence the verdict and
	// are not part of the serialized record.
	TauRounds         int
	TauParallelRounds int
	TauNanos          int64
	// CrashPoints counts the crash labels checked in this trace (crash
	// mode only). Telemetry, like TauRounds: not part of the serialized
	// record — the record's byte format is pinned by golden fixtures.
	CrashPoints int
}

// MeanStates is the mean tracked state-set size per step.
func (r Result) MeanStates() float64 {
	if r.Steps == 0 {
		return 0
	}
	return float64(r.SumStates) / float64(r.Steps)
}

// Checker checks traces against one variant of the model.
type Checker struct {
	Spec types.Spec
	// MaxStateSet caps the tracked set to guard against pathological
	// blowup; the paper's engineering keeps real sets tiny. Truncation is
	// reported via Result.StateSetCapHit.
	MaxStateSet int
	// TauWorkers bounds the goroutines used inside a single trace for the
	// τ-closure and the transition union (≤ 0 selects GOMAXPROCS, 1 is
	// fully sequential). Results do not depend on it.
	TauWorkers int
	// DisableDedup turns off deduplication of the state set — only for the
	// ablation benchmarks; never set it in real checking.
	DisableDedup bool
	// Tel receives the checker's telemetry (counters per trace, τ-closure
	// attribution); nil selects telemetry.Default. Purely observational:
	// results are byte-identical whatever registry is installed.
	Tel *telemetry.Registry
	// Memo, when non-nil, is the suite-level cons table: transition
	// fan-outs are interned per (source state object, label) and replayed
	// across traces (scripts share their fixture prefix — and the shared
	// initial state — so most of a suite's τ-closure work walks the same
	// interned object graph). A replay is Trans applied to that very
	// object, so results are byte-identical with the table on or off;
	// the golden parity fixtures pin it. Ignored under DisableDedup (the
	// ablation's unhashed states would race the table's publication
	// protocol).
	Memo *osspec.ConsTable

	// initOnce/initial share one hashed+frozen initial state across every
	// trace this checker checks: all traces start identical, and the
	// pointer-equality fast paths in StateEqual and the cons table make
	// the per-trace first steps cheap.
	initOnce sync.Once
	initial  *osspec.OsState

	// scratch pools per-trace dedup sets: one set serves a whole trace
	// (reset per step) instead of allocating a bucket map per reduce and
	// per τ-closure — the dominant per-step allocation once the cons
	// table absorbs the transition work.
	scratch sync.Pool
}

// New returns a checker for the given spec variant.
func New(spec types.Spec) *Checker {
	return &Checker{Spec: spec, MaxStateSet: 4096}
}

func (c *Checker) workers() int {
	if c.TauWorkers > 0 {
		return c.TauWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// memo returns the cons table to use, nil when memoisation is off. The
// DisableDedup ablation skips pre-hashing, so the table's hashed-and-frozen
// publication protocol would race; it never memoises.
func (c *Checker) memo() *osspec.ConsTable {
	if c.DisableDedup {
		return nil
	}
	return c.Memo
}

// initialState returns the model's initial state, built once per checker
// and published hashed+frozen so concurrently-checked traces share it as a
// pure read.
func (c *Checker) initialState() *osspec.OsState {
	c.initOnce.Do(func() {
		s := osspec.NewOsState(c.Spec)
		s.Hash()
		s.Freeze()
		c.initial = s
	})
	return c.initial
}

// Check runs the oracle over a trace: S_{i+1} = ∪_{s∈S_i} os_trans(s, lbl_i),
// with deduplication by hash-consed state identity. The trace is accepted
// iff the final set is non-empty and no step required recovery.
func (c *Checker) Check(t *trace.Trace) Result {
	res, _ := c.CheckCtx(context.Background(), t)
	return res
}

// CheckCtx is Check with cooperative cancellation: ctx is consulted
// between trace steps and between τ-closure expansion rounds inside each
// step's worker fan-out. On cancellation the partial Result (inspected so
// far, verdict meaningless) is returned with ctx.Err().
func (c *Checker) CheckCtx(ctx context.Context, t *trace.Trace) (Result, error) {
	start := time.Now()
	res := Result{Name: t.Name, Accepted: true}
	states := []*osspec.OsState{c.initialState()}
	workers := c.workers() // hoisted: GOMAXPROCS reads showed up per step
	sc, _ := c.scratch.Get().(*osspec.StateSet)
	if sc == nil {
		sc = osspec.NewStateSet(64)
	}
	defer func() {
		sc.Reset() // drop state references before pooling
		c.scratch.Put(sc)
	}()

	for _, st := range t.Steps {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Steps++
		res.SumStates += len(states)
		if len(states) > res.MaxStates {
			res.MaxStates = len(states)
		}
		switch lbl := st.Label.(type) {
		case types.ReturnLabel:
			states = c.stepReturn(ctx, states, lbl, st, &res, sc, workers)
		default:
			src := states
			_, isDestroy := st.Label.(types.DestroyLabel)
			_, isCrash := st.Label.(types.CrashLabel)
			if isDestroy || isCrash {
				// Close over τ before a destroy so interleavings where a
				// pending call was processed before the process vanished
				// stay represented. Today the model's destroy effects are
				// invisible to other processes (no capacity accounting),
				// so this only pre-computes work the next return's closure
				// would do — but it keeps the oracle sound if destroy ever
				// gains observable effects. Sequential traces have no
				// pending calls here, so it is a no-op for them.
				//
				// Before a crash the closure is load-bearing: a call in
				// flight at power-loss may or may not have had its effect
				// land, so both the pre-τ and post-τ states (with their
				// different pending-effect logs) must contribute crash
				// candidates.
				src = c.tauClosure(ctx, states, &res, sc, workers)
				if len(src) > res.MaxStates {
					res.MaxStates = len(src)
				}
			}
			if isCrash {
				res.CrashPoints++
			}
			next := c.unionTrans(src, st.Label, workers)
			if len(next) == 0 {
				res.Accepted = false
				res.Errors = append(res.Errors, StepError{
					Line:     st.Line,
					Observed: st.Label.String(),
					Allowed:  nil,
				})
				// Recovery: drop the label entirely.
				continue
			}
			states = c.reduce(next, &res, sc)
		}
	}
	if len(states) == 0 {
		res.Accepted = false
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	c.record(res, time.Since(start))
	return res, nil
}

// record attributes one completed trace's work to the checker's registry.
// One batch of atomic adds per trace — never per step — so the oracle's
// hot loop stays unmetered.
func (c *Checker) record(res Result, elapsed time.Duration) {
	tel := telemetry.Or(c.Tel)
	tel.Counter("checker.traces").Inc()
	tel.Counter("checker.steps").Add(int64(res.Steps))
	tel.Counter("checker.states_explored").Add(int64(res.SumStates))
	tel.Counter("checker.tau_expansions").Add(int64(res.TauExpansions))
	tel.Counter("checker.tau_rounds").Add(int64(res.TauRounds))
	tel.Counter("checker.tau_rounds_parallel").Add(int64(res.TauParallelRounds))
	if res.CrashPoints > 0 {
		tel.Counter("checker.crash_points").Add(int64(res.CrashPoints))
	}
	if !res.Accepted {
		tel.Counter("checker.rejected").Inc()
	}
	if res.StateSetCapHit {
		tel.Counter("checker.cap_hits").Inc()
	}
	tel.Gauge("checker.max_states").SetMax(int64(res.MaxStates))
	tel.Histogram("checker.check_ns").Observe(int64(elapsed))
	tel.Histogram("checker.tau_closure_ns").Observe(res.TauNanos)
}

// stepReturn matches an observed return value. The state set is first
// closed over τ steps — every interleaving in which the pending calls of
// any processes were processed internally before this return was observed
// is a legal linearisation. For sequential traces at most one process is
// mid-call and the closure is a single expansion round; for concurrent
// traces this closure is where the §3 state-set strategy does its real
// work, and where MaxStates peaks.
func (c *Checker) stepReturn(ctx context.Context, states []*osspec.OsState, lbl types.ReturnLabel, st trace.Step, res *Result, sc *osspec.StateSet, workers int) []*osspec.OsState {
	expanded := c.tauClosure(ctx, states, res, sc, workers)
	if len(expanded) > res.MaxStates {
		res.MaxStates = len(expanded)
	}

	next := c.unionTrans(expanded, lbl, workers)
	if len(next) > 0 {
		return c.reduce(next, res, sc)
	}

	// Non-conformant: diagnose and continue with the allowed values (Fig 4).
	allowed := allowedSet(expanded, lbl.Pid)
	res.Accepted = false
	res.Errors = append(res.Errors, StepError{
		Line:     st.Line,
		Observed: lbl.Ret.String(),
		Allowed:  allowed,
	})
	var recovered []*osspec.OsState
	for _, s := range expanded {
		recovered = append(recovered, osspec.RecoverReturns(s, lbl.Pid)...)
	}
	if len(recovered) == 0 {
		for _, s := range expanded {
			recovered = append(recovered, osspec.ResetToRunning(s, lbl.Pid))
		}
	}
	return c.reduce(recovered, res, sc)
}

// tauClosure closes the state set over internal transitions (see
// osspec.TauClosureWith), respecting the checker's dedup ablation and set
// cap and accounting the expansions in the result's statistics. A
// cancelled ctx cuts the closure short; CheckCtx notices at the next step
// boundary and abandons the trace, so the truncated set is never used for
// a verdict.
func (c *Checker) tauClosure(ctx context.Context, states []*osspec.OsState, res *Result, sc *osspec.StateSet, workers int) []*osspec.OsState {
	t0 := time.Now()
	var cs osspec.ClosureStats
	out, n, capHit := osspec.TauClosureWith(states, osspec.ClosureOpts{
		Dedup:   !c.DisableDedup,
		Cap:     c.MaxStateSet,
		Workers: workers,
		Ctx:     ctx,
		Stats:   &cs,
		Memo:    c.memo(),
		Scratch: sc,
	})
	res.TauExpansions += n
	res.TauRounds += cs.Rounds
	res.TauParallelRounds += cs.ParallelRounds
	res.TauNanos += int64(time.Since(t0))
	if capHit {
		res.StateSetCapHit = true
	}
	return out
}

// unionTrans applies one label to every tracked state, fanning the
// per-state work across the worker pool (osspec.MapStates). Successors are
// concatenated in source order, so the result — and every later dedup
// decision — is byte-identical to the sequential computation. All source
// states are frozen (Check/reduce/tauClosure guarantee it), which makes
// the shared reads race-free. With a cons table the per-state fan-out is
// interned suite-wide and replayed for equal (state, label) pairs.
func (c *Checker) unionTrans(states []*osspec.OsState, lbl types.Label, workers int) []*osspec.OsState {
	prehash := !c.DisableDedup
	memo := c.memo()
	var key string
	if memo != nil {
		key = osspec.LabelKey(lbl)
	}
	return osspec.UnionStates(states, workers, func(s *osspec.OsState) []*osspec.OsState {
		if memo != nil {
			if succs, ok := memo.Get(s, key); ok {
				return succs
			}
			return memo.Put(s, key, osspec.Trans(s, lbl)) // hashes and freezes
		}
		succs := osspec.Trans(s, lbl)
		if prehash {
			for _, ns := range succs {
				ns.Hash()
			}
		}
		return succs
	})
}

func allowedSet(states []*osspec.OsState, pid types.Pid) []string {
	seen := make(map[string]bool)
	for _, s := range states {
		if d, ok := osspec.AllowedReturn(s, pid); ok {
			seen[d] = true
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// reduce dedupes the state set by hash-consed identity (or only caps it,
// for the ablation benchmark), records cap truncation, and freezes the
// survivors so the next fan-out may share them across goroutines. sc is
// the trace's scratch set, reset here; its previous contents are done with
// by the time reduce runs (the closure/union results only reference
// states, never the set).
func (c *Checker) reduce(states []*osspec.OsState, res *Result, sc *osspec.StateSet) []*osspec.OsState {
	if c.DisableDedup {
		if c.MaxStateSet > 0 && len(states) > c.MaxStateSet {
			states = states[:c.MaxStateSet]
			res.StateSetCapHit = true
		}
		for _, s := range states {
			s.Freeze()
		}
		return states
	}
	set := sc
	if set == nil {
		set = osspec.NewStateSet(len(states))
	} else {
		set.Reset()
	}
	out := states[:0]
	for i, s := range states {
		if !set.Add(s) {
			continue
		}
		s.Freeze()
		out = append(out, s)
		if c.MaxStateSet > 0 && len(out) >= c.MaxStateSet {
			// Only report a truncation if some remaining state is genuinely
			// distinct: a tail of duplicates would have been merged anyway,
			// and a false "best-effort verdict" warning sends the user
			// chasing a larger cap for nothing.
			for _, rest := range states[i+1:] {
				if set.Add(rest) {
					res.StateSetCapHit = true
					break
				}
			}
			break
		}
	}
	return out
}
