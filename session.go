package sibylfs

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/checker"
	"repro/internal/cov"
	"repro/internal/exec"
	"repro/internal/fsimpl"
	"repro/internal/fuzz"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/testgen"
	"repro/internal/types"
)

// Session is the package's front door: one configured handle unifying the
// Fig 1 flow — Generate, Execute/ExecuteConcurrent, Check, Run (the
// sharded cache-backed pipeline), Survey and Fuzz — behind a single set of
// options instead of per-call parameter soups. Every method takes a
// context.Context first and cancels cooperatively: a deadlined or
// interrupted Run stops between (and inside) jobs and leaves its JSONL
// journal valid for resumption.
//
//	s := sibylfs.New(
//	    sibylfs.WithSpec(sibylfs.SpecFor(sibylfs.Linux)),
//	    sibylfs.WithWorkers(8),
//	    sibylfs.WithCacheDir("cache"),
//	    sibylfs.WithJournal("run.jsonl"),
//	    sibylfs.WithObserver(func(r sibylfs.PipelineRecord) { log.Println(r.Name) }),
//	)
//	scripts, _ := s.Generate(ctx)
//	records, stats, err := s.Run(ctx, sibylfs.RunJob{
//	    Name:    "ext4 vs linux",
//	    Scripts: scripts,
//	    Factory: sibylfs.MemFS(sibylfs.LinuxProfile("ext4")),
//	    FSName:  "ext4",
//	})
//
// A Session is safe for concurrent use; several sessions may coexist in
// one process. By default they share the process-wide coverage registry;
// give each its own with WithCoverage(NewCoverageRegistry()) and their
// coverage figures stay fully isolated (see CoverageRegistry). The same
// model applies to metrics: sessions record into telemetry.Default unless
// WithTelemetry(NewTelemetryRegistry()) gives them a private registry.
type Session struct {
	spec        Spec
	workers     int
	tauWorkers  int
	maxStateSet int
	cacheDir    string
	remote      string         // WithRemoteCache base URL ("" = none)
	store       pipeline.Store // nil = open a backend from cacheDir/remote
	journal     string
	journalDir  string
	resume      bool
	observer    func(PipelineRecord)
	reg         *cov.Registry       // nil = shared process-wide registry
	tel         *telemetry.Registry // nil = telemetry.Default
	log         io.Writer

	cacheOnce sync.Once
	cache     *pipeline.Cache
	cacheErr  error
	// hashMu/hashes memoise per-script content hashes (pipeline.ScriptHash
	// re-renders the script — at suite scale the render pass costs several
	// times the generation). Generate seeds the memo from the generation
	// cache; pipeline key computation reads it via Config.HashScript.
	hashMu sync.Mutex
	hashes map[*Script]string
	// journalMu serializes Run calls that share this session's journal:
	// two sinks appending to (or truncating) one file would corrupt it.
	journalMu sync.Mutex
}

// Option configures a Session at construction.
type Option func(*Session)

// New constructs a Session. The zero configuration checks against
// DefaultSpec with GOMAXPROCS workers, no cache, no journal and the
// shared process-wide coverage registry.
func New(opts ...Option) *Session {
	s := &Session{spec: DefaultSpec()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// WithSpec selects the model variant every checking method uses.
func WithSpec(spec Spec) Option { return func(s *Session) { s.spec = spec } }

// WithWorkers bounds cross-trace parallelism (execution and checking
// worker pools; ≤ 0 selects GOMAXPROCS).
func WithWorkers(n int) Option { return func(s *Session) { s.workers = n } }

// WithTauWorkers bounds within-trace parallelism: the goroutines fanning
// out one trace's τ-closure and transition union (≤ 0 lets each method
// pick its default — GOMAXPROCS for direct checking, 1 inside the
// pipeline, whose cross-trace workers already saturate the cores).
func WithTauWorkers(n int) Option { return func(s *Session) { s.tauWorkers = n } }

// WithMaxStateSet caps the oracle's tracked state set (0 = the checker
// default). The cap is part of the pipeline cache key.
func WithMaxStateSet(n int) Option { return func(s *Session) { s.maxStateSet = n } }

// WithCacheDir backs Run, Survey and Fuzz with a content-addressed result
// cache rooted at dir: re-runs skip any trace whose (script, model
// version, run config) key is already cached. The directory is created on
// first use. The default backend is the packed segment store (entries
// append to a few bounded pack files under dir/pack, with group-commit
// durability); a dir that already holds the v1 file-per-key layout keeps
// serving those entries read-through while new results land packed.
func WithCacheDir(dir string) Option { return func(s *Session) { s.cacheDir = dir } }

// WithStore backs the session's result cache with an explicit store
// backend instead of opening one from a directory — the injection seam
// for a forced v1 DirStore (sfs-run -store dir), tuned PackOptions, or a
// future remote store. Takes precedence over WithCacheDir; the session
// owns flushing (it flushes at run and generation boundaries) but the
// caller owns Close.
func WithStore(store ResultStore) Option { return func(s *Session) { s.store = store } }

// WithJournal streams Run's records to the JSONL sink at path. The sink
// doubles as the crash-safe resume journal: with WithResume, a later
// session skips every trace the journal already holds. On success the
// journal is finalized to canonical order; on error (cancellation
// included) it keeps its append order and remains valid for resumption.
// Concurrent Run calls on one session serialize on the journal (each Run
// opens it afresh, and without WithResume opening truncates); to run
// shards in parallel, give each its own journal — one session per shard,
// merged afterwards as sfs-run -merge does.
func WithJournal(path string) Option { return func(s *Session) { s.journal = path } }

// WithJournalDir streams Survey's records to one JSONL sink per
// configuration under dir (Survey runs many configurations; Run's single
// sink is WithJournal).
func WithJournalDir(dir string) Option { return func(s *Session) { s.journalDir = dir } }

// WithResume recovers existing journals instead of replacing them,
// skipping work they already hold.
func WithResume() Option { return func(s *Session) { s.resume = true } }

// WithObserver streams per-record progress: fn is called once per
// pipeline record as Run and Survey complete each job — cache hits and
// journal resumes included — so callers see progress without buffering
// whole suites. Calls are serialized but arrive in completion order,
// which is nondeterministic under parallel workers. fn must not call back
// into the session.
func WithObserver(fn func(PipelineRecord)) Option { return func(s *Session) { s.observer = fn } }

// WithCoverage gives the session its own coverage registry (or shares one
// between chosen sessions): model coverage reached by this session's
// checking, pipeline and fuzzing is attributed to reg, and the session's
// Coverage/CoverageUnhit/ResetCoverage read and reset reg instead of the
// process-wide counters — two sessions with distinct registries never see
// each other's hits, and ResetCoverage loses its process-global blast
// radius. Attribution uses exclusive windows over the shared counters, so
// isolation serializes model evaluation across the process; prefer the
// default shared registry for raw throughput.
func WithCoverage(reg *CoverageRegistry) Option { return func(s *Session) { s.reg = reg } }

// WithLog sends progress lines (pipeline stats, fuzz session progress)
// to w.
func WithLog(w io.Writer) Option { return func(s *Session) { s.log = w } }

// WithTelemetry gives the session its own telemetry registry: counters,
// gauges, latency histograms and spans recorded by this session's
// checking, pipeline and fuzzing land in reg instead of the shared
// telemetry.Default — two sessions with distinct registries never see
// each other's figures. Unlike coverage isolation, telemetry isolation is
// free: registries are just independent sets of atomics. Engine-internal
// totals (state-heap clones, hash computes) remain process-global and are
// published on the default registry only. Read reg with its Snapshot /
// WriteJSON / WritePrometheus methods.
func WithTelemetry(reg *TelemetryRegistry) Option { return func(s *Session) { s.tel = reg } }

// TelemetryRegistry is an isolated metrics/span registry; see
// WithTelemetry.
type TelemetryRegistry = telemetry.Registry

// NewTelemetryRegistry returns a fresh isolated telemetry registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// CoverageRegistry is an isolated model-coverage view; see WithCoverage.
type CoverageRegistry = cov.Registry

// NewCoverageRegistry returns a fresh isolated coverage registry.
func NewCoverageRegistry() *CoverageRegistry { return cov.NewRegistry() }

// Spec returns the model variant the session checks against.
func (s *Session) Spec() Spec { return s.spec }

// openCache lazily opens the session's result cache (nil without
// WithCacheDir/WithStore). The handle is shared by every method of the
// session.
func (s *Session) openCache() (*pipeline.Cache, error) {
	if s.store == nil && s.cacheDir == "" && s.remote == "" {
		return nil, nil
	}
	s.cacheOnce.Do(func() {
		if s.store != nil {
			s.cache = pipeline.NewCache(s.store)
			return
		}
		if s.remote != "" {
			// WithRemoteCache: the shared fleet store, with the local cache
			// dir (if any) demoted to the unreachable-server fallback.
			store, err := OpenHTTPStore(s.remote, s.cacheDir)
			if err != nil {
				s.cacheErr = err
				return
			}
			s.store = store // session-owned; flushed at run boundaries
			s.cache = pipeline.NewCache(store)
			return
		}
		s.cache, s.cacheErr = pipeline.OpenCache(s.cacheDir)
	})
	return s.cache, s.cacheErr
}

// CacheStats describes the session's result-store contents (backend,
// entries, segments, bytes); ok is false when the session has no cache.
// sfs-run -cache-stats prints it next to the run's hit/miss telemetry.
func (s *Session) CacheStats() (StoreStats, bool) {
	cache, err := s.openCache()
	if err != nil || cache == nil {
		return StoreStats{}, false
	}
	return cache.Stats(), true
}

// CacheFallbackStats describes the v1 read-through fallback feeding a
// migrating cache; ok is false when there is no cache or no v1 layout.
func (s *Session) CacheFallbackStats() (StoreStats, bool) {
	cache, err := s.openCache()
	if err != nil || cache == nil {
		return StoreStats{}, false
	}
	return cache.FallbackStats()
}

// Generate builds the full sequential test suite (§6.1). With WithCacheDir
// the suite is served from the content-addressed generation cache — keyed
// by (testgen.Version, universe) — so warm invocations load the rendered
// suite and its precomputed script hashes instead of regenerating; a cold
// invocation generates, then stores the blob for the next process.
func (s *Session) Generate(ctx context.Context) ([]*Script, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer telemetry.Or(s.tel).Span("session.generate").End()
	return s.generateUniverse("sequential", func() []*Script { return testgen.Generate().Scripts })
}

// GenerateConcurrent builds the multi-process concurrency universe; run
// it through ExecuteConcurrent so the calls genuinely interleave. Cached
// like Generate, under its own universe key.
func (s *Session) GenerateConcurrent(ctx context.Context) ([]*Script, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.generateUniverse("concurrent", testgen.ConcurrentScripts)
}

// GenerateCrash builds the crash-consistency universe (crash___ scripts:
// workloads with fsync/sync barriers, crash points and post-remount
// observations). Run it through Execute — crash scripts are
// sequential-executor only — against a crash-profiled implementation, and
// check with a Spec.Crash session. Cached like Generate, under its own
// universe key.
func (s *Session) GenerateCrash(ctx context.Context) ([]*Script, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.generateUniverse("crash", testgen.CrashScripts)
}

// generateUniverse serves one generation universe through the session's
// cache: a hit decodes the stored suite (and seeds the script-hash memo
// from the stored hashes), a miss generates, renders each script once to
// hash and store it, and seeds the memo from that same pass. Without a
// cache it simply generates — hashes then compute lazily if a pipeline
// run needs them. Corrupt blobs count as misses and are overwritten.
func (s *Session) generateUniverse(universe string, gen func() []*Script) ([]*Script, error) {
	tel := telemetry.Or(s.tel)
	cache, err := s.openCache()
	if err != nil {
		return nil, err
	}
	if cache == nil {
		return gen(), nil
	}
	key := pipeline.GenSuiteKey(testgen.Version, universe)
	if blob, ok := cache.GetRaw(key); ok {
		if scripts, hashes, err := pipeline.DecodeSuite(blob); err == nil {
			tel.Counter("testgen.cache_hits").Inc()
			s.rememberHashes(scripts, hashes)
			return scripts, nil
		}
	}
	tel.Counter("testgen.cache_misses").Inc()
	scripts := gen()
	blob, hashes := pipeline.EncodeSuite(scripts)
	if err := cache.PutRaw(key, blob); err != nil {
		return nil, err
	}
	// Group-commit barrier: the rendered suite must be durable before the
	// generation returns — it is what makes the *next* process warm.
	if err := cache.Flush(); err != nil {
		return nil, err
	}
	s.rememberHashes(scripts, hashes)
	return scripts, nil
}

// rememberHashes seeds the script-hash memo (index-aligned slices).
func (s *Session) rememberHashes(scripts []*Script, hashes []string) {
	s.hashMu.Lock()
	if s.hashes == nil {
		s.hashes = make(map[*Script]string, len(scripts))
	}
	for i, sc := range scripts {
		s.hashes[sc] = hashes[i]
	}
	s.hashMu.Unlock()
}

// scriptHash is the pipeline's Config.HashScript hook: memoised per script
// pointer, computing (and caching) pipeline.ScriptHash on first sight.
// Survey's repeated configurations and every warm generation hit pay the
// render cost zero times.
func (s *Session) scriptHash(sc *Script) string {
	s.hashMu.Lock()
	h, ok := s.hashes[sc]
	s.hashMu.Unlock()
	if ok {
		return h
	}
	h = pipeline.ScriptHash(sc)
	s.hashMu.Lock()
	if s.hashes == nil {
		s.hashes = make(map[*Script]string)
	}
	s.hashes[sc] = h
	s.hashMu.Unlock()
	return h
}

// covWrap returns the attribution wrapper for this session's model
// evaluation: with an isolated registry every unit runs in an exclusive
// Collect window attributed to it; with the shared registry units run
// under cov.Guard, so their hits can never land inside another session's
// open attribution window. Either way, concurrent sessions' coverage
// stays exact.
func (s *Session) covWrap() func(func()) {
	if s.reg != nil {
		reg := s.reg
		return func(f func()) { reg.Collect(f) }
	}
	return cov.Guard
}

// covFactory wraps factory so each Apply runs inside the session's
// attribution wrapper — only the determinized model (SpecFS) hits
// coverage points during execution, but wrapping is harmless (a shared
// read-lock) for the others.
func (s *Session) covFactory(factory Factory) Factory {
	wrap := s.covWrap()
	return func() (fsimpl.FS, error) {
		fs, err := factory()
		if err != nil {
			return nil, err
		}
		return &wrapFS{fs: fs, wrap: wrap}, nil
	}
}

// wrapFS routes an implementation's model evaluation through the
// session's coverage-attribution wrapper.
type wrapFS struct {
	fs   fsimpl.FS
	wrap func(func())
}

func (c *wrapFS) Name() string { return c.fs.Name() }
func (c *wrapFS) Apply(pid types.Pid, cmd types.Command) (rv types.RetValue) {
	c.wrap(func() { rv = c.fs.Apply(pid, cmd) })
	return rv
}
func (c *wrapFS) CreateProcess(pid types.Pid, uid types.Uid, gid types.Gid) {
	c.fs.CreateProcess(pid, uid, gid)
}
func (c *wrapFS) DestroyProcess(pid types.Pid) { c.fs.DestroyProcess(pid) }
func (c *wrapFS) Close() error                 { return c.fs.Close() }

// Crash forwards crash simulation through the wrapper (SpecFS evaluates
// the model during remount, so the call runs inside the attribution
// window like Apply does). Backends without persistence simulation keep
// failing loudly, with the same message the unwrapped executor produces.
func (c *wrapFS) Crash(keep int) error {
	cfs, ok := c.fs.(fsimpl.CrashFS)
	if !ok {
		return fmt.Errorf("%s does not support crash simulation", c.fs.Name())
	}
	var err error
	c.wrap(func() { err = cfs.Crash(keep) })
	return err
}

// Execute runs scripts against fresh instances from factory (§6.2) with
// the session's worker pool, cancelling between scripts and between
// steps.
func (s *Session) Execute(ctx context.Context, scripts []*Script, factory Factory) ([]*Trace, error) {
	return exec.RunAll(ctx, scripts, s.covFactory(factory), s.workers)
}

// ExecuteConcurrent runs scripts with one goroutine per script process,
// so calls from different processes genuinely overlap in the recorded
// traces. opts.Workers ≤ 0 falls back to the session's worker bound.
func (s *Session) ExecuteConcurrent(ctx context.Context, scripts []*Script, factory Factory, opts ConcurrentOptions) ([]*Trace, error) {
	if opts.Workers <= 0 {
		opts.Workers = s.workers
	}
	return exec.RunAllConcurrent(ctx, scripts, s.covFactory(factory), opts)
}

// Check runs the oracle over traces with the session's spec and worker
// pool. Each trace's check runs inside the session's coverage wrapper:
// an exclusive attribution window with an isolated registry (the
// registry sees exactly this session's model coverage, at the documented
// cost of serializing the per-trace work), a shared Guard otherwise (the
// pool parallelises as before).
func (s *Session) Check(ctx context.Context, traces []*Trace) ([]CheckResult, error) {
	chk := s.newChecker()
	wrap := s.covWrap()
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]CheckResult, len(traces))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain
				}
				wrap(func() {
					results[i], _ = chk.CheckCtx(ctx, traces[i])
				})
			}
		}()
	}
feed:
	for i := range traces {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return results, ctx.Err()
}

// CheckOne checks a single trace.
func (s *Session) CheckOne(ctx context.Context, t *Trace) (CheckResult, error) {
	chk := s.newChecker()
	var res CheckResult
	var err error
	s.covWrap()(func() { res, err = chk.CheckCtx(ctx, t) })
	return res, err
}

func (s *Session) newChecker() *checker.Checker {
	chk := checker.New(s.spec)
	if s.maxStateSet > 0 {
		chk.MaxStateSet = s.maxStateSet
	}
	chk.TauWorkers = s.tauWorkers
	chk.Tel = s.tel
	return chk
}

// RunJob names one pipeline run: what to execute and how, while the
// session supplies the environment (spec, workers, cache, journal,
// observer, coverage registry). See PipelineConfig for field semantics.
type RunJob struct {
	// Name labels the run in summaries ("ext4 vs linux").
	Name string
	// Scripts is the full job list (identical order across shards).
	Scripts []*Script
	// Factory creates the implementation under test; FSName is its cache
	// identity.
	Factory Factory
	FSName  string
	// Shards/Shard split the job list across invocations or machines.
	Shards int
	Shard  int
	// Concurrent selects the concurrent executor; SchedSeed ≠ 0 its
	// seeded deterministic scheduler.
	Concurrent bool
	SchedSeed  int64
	// ModelVersion overrides the cache key's model version (tests only).
	ModelVersion string
}

// Run executes one shard of a suite through the sharded, cache-backed
// checking pipeline and returns this shard's records in job order. With
// WithJournal the records also stream to the JSONL sink, which is
// finalized on success and left as a valid append-order journal on error
// — cancellation (ctx deadline, Ctrl-C via signal.NotifyContext) stops
// between jobs, and a later session constructed WithResume completes the
// run without re-executing journaled work, yielding byte-identical
// finalized output.
func (s *Session) Run(ctx context.Context, job RunJob) ([]PipelineRecord, PipelineStats, error) {
	cache, err := s.openCache()
	if err != nil {
		return nil, PipelineStats{}, err
	}
	defer telemetry.Or(s.tel).Span("session.run").End()
	cfg := pipeline.Config{
		Name:         job.Name,
		Scripts:      job.Scripts,
		Factory:      job.Factory,
		FSName:       job.FSName,
		Spec:         s.spec,
		ModelVersion: job.ModelVersion,
		Workers:      s.workers,
		TauWorkers:   s.tauWorkers,
		MaxStateSet:  s.maxStateSet,
		Shards:       job.Shards,
		Shard:        job.Shard,
		Concurrent:   job.Concurrent,
		SchedSeed:    job.SchedSeed,
		Cache:        cache,
		Observe:      s.observer,
		Cov:          s.reg,
		Tel:          s.tel,
		Log:          s.log,
		HashScript:   s.scriptHash,
	}
	if s.journal != "" {
		s.journalMu.Lock()
		defer s.journalMu.Unlock()
		sink, err := pipeline.OpenSink(s.journal, s.resume)
		if err != nil {
			return nil, PipelineStats{}, err
		}
		cfg.Sink = sink
	}
	records, stats, err := pipeline.Run(ctx, cfg)
	if cfg.Sink != nil {
		if err != nil {
			cfg.Sink.Close() // keep the append-order journal for -resume
		} else if ferr := cfg.Sink.Finalize(); ferr != nil {
			return records, stats, ferr
		}
	}
	return records, stats, err
}

// Survey executes scripts on every configuration through the pipeline and
// summarises the deviations (the §7.3 survey). Summaries aggregate from
// per-trace records, so no configuration ever holds its full
// ([]Trace, []Result) pair in memory. The session's cache is shared
// across configurations; WithJournalDir adds one resumable JSONL sink per
// configuration. Cancellation stops between jobs and returns the
// configurations completed so far with ctx's error.
func (s *Session) Survey(ctx context.Context, scripts []*Script, configs []Config) ([]SurveyResult, error) {
	cache, err := s.openCache()
	if err != nil {
		return nil, err
	}
	if s.journalDir != "" {
		// Concurrent Surveys of one session would race on the same
		// per-configuration sink files; serialize them, as Run does.
		s.journalMu.Lock()
		defer s.journalMu.Unlock()
		if err := os.MkdirAll(s.journalDir, 0o755); err != nil {
			return nil, err
		}
	}
	defer telemetry.Or(s.tel).Span("session.survey").End()
	var out []SurveyResult
	for _, cfg := range configs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		sel := scripts
		if cfg.SkipUserScripts {
			sel = FilterHostSafe(scripts)
		}
		w := s.workers
		if cfg.Serial {
			w = 1
		}
		pcfg := pipeline.Config{
			Name:       cfg.Name,
			Scripts:    sel,
			Factory:    cfg.Factory,
			FSName:     cfg.Name,
			Spec:       cfg.Spec,
			Workers:    w,
			Cache:      cache,
			Observe:    s.observer,
			Cov:        s.reg,
			Tel:        s.tel,
			Log:        s.log,
			HashScript: s.scriptHash,
		}
		if s.maxStateSet > 0 {
			pcfg.MaxStateSet = s.maxStateSet
		}
		pcfg.TauWorkers = s.tauWorkers
		if cfg.Serial && pcfg.TauWorkers <= 0 {
			// Serial configs (hostfs) must execute one script at a time, but
			// their *checking* needn't be single-threaded too: recover the
			// session's parallelism inside each trace's closure. Resolve the
			// "0 = GOMAXPROCS" convention here — pipeline.Run would clamp a
			// zero TauWorkers to 1.
			tw := s.workers
			if tw <= 0 {
				tw = runtime.GOMAXPROCS(0)
			}
			pcfg.TauWorkers = tw
		}
		if s.journalDir != "" {
			sink, err := pipeline.OpenSink(filepath.Join(s.journalDir, surveySinkName(cfg.Name)), s.resume)
			if err != nil {
				return out, err
			}
			pcfg.Sink = sink
		}
		records, _, err := pipeline.Run(ctx, pcfg)
		if pcfg.Sink != nil {
			if err == nil {
				err = pcfg.Sink.Finalize()
			} else {
				pcfg.Sink.Close()
			}
		}
		if err != nil {
			return out, fmt.Errorf("survey %s: %w", cfg.Name, err)
		}
		out = append(out, SurveyResult{
			Config:  cfg,
			Summary: pipeline.Summarise(cfg.Name, records),
		})
	}
	return out, nil
}

// MergeSurvey merges the per-configuration summaries, exposing the tests
// that distinguish configurations.
func (s *Session) MergeSurvey(ctx context.Context, results []SurveyResult) (*analysis.Merged, error) {
	runs := make([]*analysis.RunSummary, len(results))
	for i, r := range results {
		runs[i] = r.Summary
	}
	return analysis.MergeCtx(ctx, runs)
}

// FuzzJob names one coverage-guided fuzzing session; the session supplies
// spec, workers, result cache, coverage registry and log. The session
// ends when ctx is cancelled or deadlined (the normal stop for a
// time-bounded session — pair with context.WithTimeout) or after MaxRuns
// candidates; one of the two bounds is required.
type FuzzJob struct {
	// Name labels the session in reports and is the result cache's
	// implementation identity — keep it stable across sessions.
	Name string
	// Factory creates the implementation under test, one instance per run.
	Factory Factory
	// Seed makes the session reproducible (with one worker).
	Seed int64
	// MaxRuns bounds the number of candidate executions (0 = until ctx
	// ends).
	MaxRuns int64
	// MaxSteps caps candidate script length (default 30).
	MaxSteps int
	// CorpusDir persists the corpus and findings for resumption.
	CorpusDir string
	// Concurrent executes candidates with the seeded concurrent executor.
	Concurrent bool
	// Crash enables the durability mutation operators (fsync/sync
	// barriers, crash labels). Pair with a crash-capable Factory and a
	// session Spec with Crash set; mutually exclusive with Concurrent.
	Crash bool
	// Seeds are extra initial inputs offered to the corpus at startup.
	Seeds []*Script
	// KeepCoverage keeps the session's coverage counters instead of
	// resetting them at start.
	KeepCoverage bool
}

// Fuzz runs a coverage-guided fuzzing session: mutated scripts are
// executed via the job's Factory, checked against the session's spec,
// admitted to the corpus when they reach new model coverage points, and
// minimized into findings when the oracle rejects them. Cancellation is
// the normal end of a session: the corpus and findings collected so far
// are reported as usual.
func (s *Session) Fuzz(ctx context.Context, job FuzzJob) (*FuzzResult, error) {
	cache, err := s.openCache()
	if err != nil {
		return nil, err
	}
	defer telemetry.Or(s.tel).Span("session.fuzz").End()
	return fuzz.Run(ctx, FuzzConfig{
		Name:         job.Name,
		Factory:      job.Factory,
		Spec:         s.spec,
		Seed:         job.Seed,
		Workers:      s.workers,
		MaxRuns:      job.MaxRuns,
		MaxSteps:     job.MaxSteps,
		CorpusDir:    job.CorpusDir,
		Concurrent:   job.Concurrent,
		Crash:        job.Crash,
		Seeds:        job.Seeds,
		KeepCoverage: job.KeepCoverage,
		ResultCache:  cache,
		Registry:     s.reg,
		Tel:          s.tel,
		Log:          s.log,
	})
}

// Coverage reports the session's model coverage-point statistics (§7.2):
// its registry's with WithCoverage, the process-wide figures otherwise.
func (s *Session) Coverage() (hit, total int) {
	if s.reg != nil {
		return s.reg.Stats()
	}
	return cov.Stats()
}

// CoverageUnhit lists coverage points this session never exercised.
func (s *Session) CoverageUnhit() []string {
	if s.reg != nil {
		return s.reg.Unhit()
	}
	return cov.Unhit()
}

// ResetCoverage zeroes the session's coverage counters. With an isolated
// registry this touches nothing process-global — the footgun the old
// package-level ResetCoverage had.
func (s *Session) ResetCoverage() {
	if s.reg != nil {
		s.reg.Reset()
		return
	}
	cov.Reset()
}

// defaultSession backs the deprecated package-level functions.
var defaultSession = New()

// surveySinkName maps a configuration name to its JSONL file name.
func surveySinkName(config string) string {
	return strings.ReplaceAll(config, " ", "_") + ".jsonl"
}
